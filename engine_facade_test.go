package onion_test

import (
	"testing"

	onion "github.com/onioncurve/onion"
)

// TestOpenEngineFacade exercises the storage engine through the public
// facade: the full Put/Delete/Query/Flush/Compact/Stats/Close lifecycle
// plus a reopen, as a user of the package would drive it.
func TestOpenEngineFacade(t *testing.T) {
	o, err := onion.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	eng, err := onion.OpenEngine(dir, o, onion.EngineOptions{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 64; x++ {
		for y := uint32(0); y < 8; y++ {
			if err := eng.Put(onion.Point{x, y}, uint64(x)<<8|uint64(y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Delete(onion.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	q, err := onion.RectAt(onion.Point{0, 0}, []uint32{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	recs, st, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 63 { // 8x8 corner minus the deleted origin
		t.Fatalf("%d records, want 63", len(recs))
	}
	if st.Planned == 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	es := eng.Stats()
	if es.Segments != 1 || es.SegmentRecords != 64*8-1 {
		t.Fatalf("engine stats %+v", es)
	}
	// Physical stats now match a bulk-loaded Store of the same records.
	recsAll, _, err := eng.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/ref.pst"
	if err := onion.WriteStore(path, o, recsAll, 512); err != nil {
		t.Fatal(err)
	}
	ref, err := onion.OpenStore(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refRecs, refStats, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	engRecs, engStats, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRecs) != len(engRecs) || engStats.Stats != refStats {
		t.Fatalf("engine %d/%+v vs store %d/%+v", len(engRecs), engStats.Stats, len(refRecs), refStats)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything still there.
	eng2, err := onion.OpenEngine(dir, o, onion.EngineOptions{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	recs2, _, err := eng2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 63 {
		t.Fatalf("reopened: %d records, want 63", len(recs2))
	}
}
