package onion_test

import (
	"testing"

	onion "github.com/onioncurve/onion"
)

// TestOpenEngineFacade exercises the storage engine through the public
// facade: the full Put/Delete/Query/Flush/Compact/Stats/Close lifecycle
// plus a reopen, as a user of the package would drive it.
func TestOpenEngineFacade(t *testing.T) {
	o, err := onion.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	eng, err := onion.OpenEngine(dir, o, onion.EngineOptions{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 64; x++ {
		for y := uint32(0); y < 8; y++ {
			if err := eng.Put(onion.Point{x, y}, uint64(x)<<8|uint64(y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Delete(onion.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	q, err := onion.RectAt(onion.Point{0, 0}, []uint32{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	recs, st, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 63 { // 8x8 corner minus the deleted origin
		t.Fatalf("%d records, want 63", len(recs))
	}
	if st.Planned == 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	es := eng.Stats()
	if es.Segments != 1 || es.SegmentRecords != 64*8-1 {
		t.Fatalf("engine stats %+v", es)
	}
	// Physical stats now match a bulk-loaded Store of the same records.
	recsAll, _, err := eng.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/ref.pst"
	if err := onion.WriteStore(path, o, recsAll, 512); err != nil {
		t.Fatal(err)
	}
	ref, err := onion.OpenStore(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refRecs, refStats, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	engRecs, engStats, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRecs) != len(engRecs) || engStats.Stats != refStats {
		t.Fatalf("engine %d/%+v vs store %d/%+v", len(engRecs), engStats.Stats, len(refRecs), refStats)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything still there.
	eng2, err := onion.OpenEngine(dir, o, onion.EngineOptions{PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	recs2, _, err := eng2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 63 {
		t.Fatalf("reopened: %d records, want 63", len(recs2))
	}
}

// TestPageCacheFacade drives the performance layer through the public
// facade: a shared PageCache behind a cached Store and a cached Engine,
// the QueryAppend buffer-reuse path, and the hit-rate summary.
func TestPageCacheFacade(t *testing.T) {
	o, err := onion.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cache := onion.NewPageCache(1 << 20)
	eng, err := onion.OpenEngine(dir, o, onion.EngineOptions{PageBytes: 512, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for x := uint32(0); x < 64; x++ {
		for y := uint32(0); y < 64; y++ {
			if err := eng.Put(onion.Point{x, y}, uint64(x)<<8|uint64(y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	q, err := onion.RectAt(onion.Point{8, 8}, []uint32{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	var dst []onion.Record
	var cold, warm onion.EngineQueryStats
	if dst, cold, err = eng.QueryAppend(dst[:0], q); err != nil {
		t.Fatal(err)
	}
	if dst, warm, err = eng.QueryAppend(dst[:0], q); err != nil {
		t.Fatal(err)
	}
	if len(dst) != 16*16 {
		t.Fatalf("%d records, want %d", len(dst), 16*16)
	}
	// Logical stats identical; the warm pass is served from the cache.
	cold.IO, warm.IO = onion.StoreIOStats{}, onion.StoreIOStats{}
	if cold != warm {
		t.Fatalf("stats changed between passes: %+v vs %+v", cold, warm)
	}
	cst := eng.CacheStats()
	if cst.Hits == 0 || cst.HitRate() <= 0 {
		t.Fatalf("cache stats %+v", cst)
	}

	// The same cache can back a read-only store of the same layout.
	recs := make([]onion.Record, 0, 100)
	for i := 0; i < 100; i++ {
		recs = append(recs, onion.Record{Point: onion.Point{uint32(i % 64), uint32(i / 64)}, Payload: uint64(i)})
	}
	path := t.TempDir() + "/facade.pst"
	if err := onion.WriteStore(path, o, recs, 512); err != nil {
		t.Fatal(err)
	}
	st, err := onion.OpenStoreCached(path, o, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, stats, err := st.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || stats.Results != 100 {
		t.Fatalf("%d records (stats %+v), want 100", len(got), stats)
	}
}
