package onion_test

// Godoc examples for the main public APIs.

import (
	"fmt"
	"os"
	"path/filepath"

	onion "github.com/onioncurve/onion"
)

func ExampleNewOnion2D() {
	o, _ := onion.NewOnion2D(4)
	// The onion curve orders the boundary ring first, then recurses
	// inward (Figure 3 of the paper).
	fmt.Println(o.Index(onion.Point{0, 0}), o.Index(onion.Point{3, 0}), o.Index(onion.Point{1, 1}))
	// Output: 0 3 12
}

func ExampleClusterCount() {
	o, _ := onion.NewOnion2D(1024)
	h, _ := onion.NewHilbert(2, 1024)
	q, _ := onion.RectAt(onion.Point{25, 40}, []uint32{974, 974})
	co, _ := onion.ClusterCount(o, q)
	ch, _ := onion.ClusterCount(h, q)
	fmt.Printf("onion needs %d scans, hilbert %d\n", co, ch)
	// Output: onion needs 30 scans, hilbert 939
}

func ExampleDecompose() {
	z, _ := onion.NewZCurve(2, 8)
	q, _ := onion.RectAt(onion.Point{1, 1}, []uint32{2, 2})
	rs, _ := onion.Decompose(z, q)
	for _, r := range rs {
		fmt.Println(r)
	}
	// Output:
	// [3,3]
	// [6,6]
	// [9,9]
	// [12,12]
}

func ExampleAverageClustering() {
	o, _ := onion.NewOnion2D(64)
	// Exact mean clustering number over ALL translates of a 2x2 query:
	// the classic surface/(2d) = 2 asymptotic.
	avg, _ := onion.AverageClustering(o, []uint32{2, 2})
	fmt.Printf("%.3f\n", avg)
	// Output: 2.000
}

func ExampleNewIndex() {
	o, _ := onion.NewOnion2D(256)
	ix, _ := onion.NewIndex(o)
	ix.Insert(onion.Point{10, 20})
	ix.Insert(onion.Point{200, 250})
	ix.Insert(onion.Point{12, 22})
	q, _ := onion.RectAt(onion.Point{0, 0}, []uint32{64, 64})
	ids, _, _ := ix.Query(q)
	fmt.Printf("%d points found\n", len(ids))
	// Output: 2 points found
}

func ExampleIndex_Nearest() {
	o, _ := onion.NewOnion2D(256)
	ix, _ := onion.BulkIndex(o, []onion.Point{{10, 10}, {11, 12}, {200, 200}, {14, 9}})
	ns, _, _ := ix.Nearest(onion.Point{10, 11}, 2)
	for _, n := range ns {
		fmt.Printf("%v distSq=%d\n", n.Point, n.DistSq)
	}
	// Output:
	// (10,10) distSq=1
	// (11,12) distSq=2
}

func ExampleWriteStore() {
	dir, _ := os.MkdirTemp("", "onion-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "points.tbl")

	o, _ := onion.NewOnion2D(64)
	recs := []onion.Record{
		{Point: onion.Point{1, 2}, Payload: 100},
		{Point: onion.Point{50, 60}, Payload: 200},
		{Point: onion.Point{3, 2}, Payload: 300},
	}
	if err := onion.WriteStore(path, o, recs, 4096); err != nil {
		fmt.Println(err)
		return
	}
	st, _ := onion.OpenStore(path, o)
	defer st.Close()
	q, _ := onion.RectAt(onion.Point{0, 0}, []uint32{10, 10})
	got, stats, _ := st.Query(q)
	fmt.Printf("%d records, %d seek(s)\n", len(got), stats.Seeks)
	// Output: 2 records, 1 seek(s)
}

func ExampleUniformPartition() {
	o, _ := onion.NewOnion2D(16)
	p, _ := onion.UniformPartition(o, 4)
	q, _ := onion.RectAt(onion.Point{0, 0}, []uint32{16, 16})
	fanout, _ := p.FanOut(q)
	fmt.Printf("the whole universe touches all %d shards\n", fanout)
	// Output: the whole universe touches all 4 shards
}

func ExampleDrawCurve() {
	o, _ := onion.NewOnion2D(4)
	grid, _ := onion.DrawCurve(o)
	fmt.Print(grid)
	// Output:
	//  9  8  7  6
	// 10 15 14  5
	// 11 12 13  4
	//  0  1  2  3
}

func ExampleClusterSpread() {
	o, _ := onion.NewOnion2D(64)
	// An off-center query cuts an arc out of many onion rings: few
	// clusters, but spread across the key space.
	q, _ := onion.RectAt(onion.Point{4, 4}, []uint32{16, 16})
	sp, _ := onion.ClusterSpread(o, q)
	fmt.Printf("clusters=%d gaps=%d\n", sp.Clusters, sp.GapCells)
	// Output: clusters=16 gaps=2205
}
