// Package onion implements the onion curve — a space filling curve with
// near-optimal clustering (Xu, Nguyen, Tirthapura, ICDE 2018) — together
// with the classic baseline curves (Hilbert, Z/Morton, Gray-code,
// row/column-major, snake), exact clustering-number analysis, rectangle
// range decomposition, the paper's theoretical bounds, and a complete
// SFC-clustered spatial index with a simulated disk cost model.
//
// # Curves
//
// A Curve is a bijection between the cells of a d-dimensional grid and the
// key range [0, side^d):
//
//	o, _ := onion.NewOnion2D(1024)
//	key := o.Index(onion.Point{3, 5})
//	cell := o.Coords(key, nil)
//
// The onion curve orders cells by increasing L-infinity distance to the
// grid boundary ("layers"), which provably yields near-optimal clustering
// for cube and near-cube range queries: at most 2.32x the optimum in 2D
// and 3.4x in 3D, whereas the Hilbert curve can be Omega(sqrt(n)) from
// optimal.
//
// # Clustering analysis
//
// ClusterCount returns the number of contiguous key runs a rectangle maps
// to (the paper's clustering number = disk seeks needed to retrieve it);
// Decompose returns the runs themselves; AverageClustering computes the
// exact average over all translates of a query shape.
//
// # Indexing
//
// NewIndex builds a B+-tree spatial index clustered by any Curve; range
// queries execute one sequential scan per cluster and report simulated
// disk costs.
package onion

import (
	"sort"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/disksim"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/index"
	"github.com/onioncurve/onion/internal/ingest"
	"github.com/onioncurve/onion/internal/metrics"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/partition"
	"github.com/onioncurve/onion/internal/ranges"
	"github.com/onioncurve/onion/internal/repl"
	"github.com/onioncurve/onion/internal/shard"
	"github.com/onioncurve/onion/internal/stats"
	"github.com/onioncurve/onion/internal/telemetry"
	"github.com/onioncurve/onion/internal/theory"
	"github.com/onioncurve/onion/internal/viz"
)

// Core geometry and curve types, re-exported from the implementation
// packages.
type (
	// Curve is a space filling curve: a bijection between grid cells
	// and the key range [0, Size()).
	Curve = curve.Curve
	// Point is a cell coordinate vector.
	Point = geom.Point
	// Rect is an axis-aligned box of cells with inclusive bounds.
	Rect = geom.Rect
	// Universe is the d-dimensional grid a curve fills.
	Universe = geom.Universe
	// KeyRange is an inclusive range of curve keys; a query's minimal
	// KeyRanges are its clusters.
	KeyRange = ranges.KeyRange
	// RangePlanner is the output-sensitive decomposition capability: a
	// Curve additionally implementing it (every curve in this package
	// does, except Peano) decomposes and counts rectangle queries
	// analytically, in time proportional to the output rather than the
	// query surface. Custom Curve implementations can provide it to opt
	// into the same fast path in Decompose, ClusterCount, indexes and
	// stores.
	RangePlanner = curve.RangePlanner
	// MergeResult is the outcome of merging ranges under a seek budget.
	MergeResult = ranges.MergeResult
	// Summary is a five-number summary plus mean (box-plot statistics).
	Summary = stats.Summary
	// Index is an SFC-clustered spatial index over points.
	Index = index.Index
	// IndexOption configures NewIndex.
	IndexOption = index.Option
	// QueryStats reports the execution profile of an index query.
	QueryStats = index.QueryStats
	// Neighbor is one result of a k-nearest-neighbors search.
	Neighbor = index.Neighbor
	// DiskModel prices seeks and page transfers.
	DiskModel = disksim.Model
	// DiskTally is the access pattern of a query execution.
	DiskTally = disksim.Tally
	// Partitioner splits a curve's key space into contiguous shards.
	Partitioner = partition.Partitioner
	// Spread describes the key-space layout of a query's clusters (the
	// inter-cluster distance metric the paper's conclusion defers).
	Spread = metrics.Spread
	// StretchStats summarizes grid distance at fixed curve distance.
	StretchStats = metrics.StretchStats
	// Record is one point + payload of a disk-backed clustered store.
	Record = pagedstore.Record
	// Store is an open disk-backed clustered table.
	Store = pagedstore.Store
	// StoreStats is the physical access pattern of a Store query.
	StoreStats = pagedstore.Stats
	// StoreCursor streams the records of ascending key ranges out of a
	// Store with the same seek/page accounting as Store.Query; the
	// storage engine drives one per live segment.
	StoreCursor = pagedstore.Cursor
	// PageCache is a shared page cache for Stores and Engine segments:
	// immutable page images under one byte budget with clock eviction,
	// shareable across any number of stores, engines and shards. It
	// changes only physical I/O (StoreIOStats) — the logical Stats
	// contracts hold bit-identically with caching on or off.
	PageCache = pagedstore.Cache
	// PageCacheStats summarizes a PageCache: hits, misses, evictions,
	// resident pages/bytes and the configured budget.
	PageCacheStats = pagedstore.CacheStats
	// StoreIOStats is the physical I/O a query actually performed after
	// the cache and the segment pruning footer absorbed their share:
	// pages fetched from disk and visits served from cache.
	StoreIOStats = pagedstore.IOStats
	// Engine is the mutable LSM-style spatial storage engine: WAL +
	// curve-ordered memtable + immutable clustered segments, opened with
	// OpenEngine.
	Engine = engine.Engine
	// EngineOptions tunes OpenEngine (page size, flush threshold, WAL
	// sync policy, memtable shards, compaction fanout). The zero value
	// selects sensible defaults.
	EngineOptions = engine.Options
	// EngineQueryStats is the physical access pattern of one Engine
	// query: pagedstore-style seeks/pages/records summed over the live
	// segments, plus memtable and planning counters.
	EngineQueryStats = engine.Stats
	// EngineStats is a point-in-time summary of an Engine's shape
	// (memtable entries, segments, WAL bytes, flush/compaction counts).
	EngineStats = engine.EngineStats
	// ShardedEngine is the horizontally partitioned query service:
	// N independent Engines over contiguous curve-key intervals behind a
	// concurrent query router, opened with OpenShardedEngine.
	ShardedEngine = shard.Sharded
	// ShardedEngineOptions tunes OpenShardedEngine (shard count,
	// per-shard engine options, router worker pool size, admission
	// control limits). The zero value selects sensible defaults.
	ShardedEngineOptions = shard.Options
	// ShardedQueryStats is the aggregated physical access pattern of one
	// sharded query: per-shard engine counters summed under the
	// documented stat-aggregation contract, plus the router's fan-out
	// shape and the per-shard breakdown.
	ShardedQueryStats = shard.Stats
	// ShardQueryStats is one shard's contribution to a sharded query.
	ShardQueryStats = shard.ShardStats
	// ShardedEngineStats summarizes a sharded engine's shape: per-shard
	// engine summaries plus totals.
	ShardedEngineStats = shard.EngineStats
	// EngineHealth is an Engine's monotonic degradation state: Healthy,
	// Degraded (a segment was quarantined or compaction keeps failing),
	// ReadOnly (the write path is compromised; queries keep serving) or
	// Failed (a fault could not be contained).
	EngineHealth = engine.Health
	// VerifyReport summarizes one Engine.Verify scrub pass: segments
	// checked and any quarantined as corrupt, with the curve-key
	// interval each quarantine takes out of service.
	VerifyReport = engine.VerifyReport
	// QuarantinedSegment describes one corrupt segment pulled from
	// service: where its file went and the key interval no longer
	// served.
	QuarantinedSegment = engine.QuarantinedSegment
	// ShardHealth is one shard's degradation state within a
	// ShardedEngine.
	ShardHealth = shard.ShardHealth
	// ShardedQueryPolicy selects how a sharded query treats shards that
	// cannot answer: the zero value is strict (any shard failure fails
	// the query); Partial serves what the healthy shards can and
	// reports the gap in ShardedQueryStats.Degraded/FailedShards.
	ShardedQueryPolicy = shard.QueryPolicy
	// EngineSnapshotReport summarizes one Engine.Snapshot or
	// Engine.SnapshotSince export: the snapshot epoch and how many
	// segment files were copied, hardlinked or reused from the parent.
	EngineSnapshotReport = engine.SnapshotReport
	// EngineRestoreReport summarizes one RestoreEngine run: segments
	// materialized from the snapshot chain and archived-WAL records
	// replayed past the snapshot boundary.
	EngineRestoreReport = engine.RestoreReport
	// EngineRepairReport summarizes one Engine.Repair pass over the
	// quarantine: files repaired, records salvaged from CRC-clean pages,
	// records back-filled from the snapshot, and the engine's resulting
	// health.
	EngineRepairReport = engine.RepairReport
	// ShardedSnapshotReport summarizes one ShardedEngine.Snapshot
	// composite export: the epoch, per-shard engine reports and totals.
	ShardedSnapshotReport = shard.SnapshotReport
	// EngineBatchOp is one logical write inside Engine.PutBatch: a put of
	// (Point, Payload) or, with Del set, a blind tombstone at Point. The
	// whole batch rides one WAL group-commit fsync.
	EngineBatchOp = engine.BatchOp
	// IngestPipeline is the asynchronous write front-end: a bounded
	// lock-free MPMC ring feeding a striped per-shard batcher that
	// coalesces ops (last-write-wins per key, curve order per batch) into
	// PutBatch calls, with explicit backpressure and per-op completion
	// handles. Build one with NewIngest (single engine) or
	// ShardedEngine.NewIngest (one stripe per shard). See the README's
	// "Async ingest" section for the ack-durability contract.
	IngestPipeline = ingest.Pipeline
	// IngestConfig tunes an IngestPipeline: ring capacity (the memory
	// bound and backpressure threshold) and max batch size.
	IngestConfig = ingest.Config
	// IngestHandle is the completion side of one asynchronously enqueued
	// op: Wait blocks until the op's batch durably commits or fails.
	IngestHandle = ingest.Handle
	// TelemetryRegistry is a process-local metric registry: atomic
	// counters and gauges plus lock-free log-scale histograms, recorded
	// allocation-free on the hot path and exported as stable-sorted
	// snapshots. Engine.Telemetry and ShardedEngine.Telemetry return the
	// storage stack's registries; see the README's Observability section
	// for the metric name contract.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time export of a registry (plus any
	// attached maintenance events): render it with WriteJSON (expvar-style)
	// or WritePrometheus (text exposition format).
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryMetric is one exported series of a TelemetrySnapshot.
	TelemetryMetric = telemetry.Metric
	// TelemetryHistogram is a mergeable fixed-bucket log-scale histogram
	// snapshot (<= 25% relative bucket error) with quantile estimation.
	TelemetryHistogram = telemetry.HistogramSnapshot
	// MaintenanceEvent is one lifecycle event of the storage stack's
	// background machinery: flush, compaction, snapshot, restore, repair,
	// scrub or health transition, with start/end phases and outcome.
	MaintenanceEvent = telemetry.Event
	// MaintenanceEvents is a bounded in-memory ring of MaintenanceEvents
	// with an optional synchronous listener; Engine.Events returns the
	// engine's stream.
	MaintenanceEvents = telemetry.Events
	// MaintenanceEventKind discriminates MaintenanceEvent kinds.
	MaintenanceEventKind = telemetry.EventKind
	// ReplGroup is a replication leader: an Engine whose WAL ships to a
	// set of followers with quorum acknowledgment. Open one with
	// LeadReplicated, or promote a follower with PromoteReplica.
	ReplGroup = repl.Group
	// ReplConfig tunes a ReplGroup: peer ids, transport, quorum size,
	// resend window, seed refresh and retry shape.
	ReplConfig = repl.Config
	// ReplFollower is the replica side: it persists shipped entries in a
	// CRC-framed replication log and applies the quorum-committed prefix
	// to its engine. Open one with OpenReplFollower.
	ReplFollower = repl.Follower
	// ReplFollowerOptions tunes an OpenReplFollower call.
	ReplFollowerOptions = repl.FollowerOptions
	// ReplTransport routes replication requests to followers by peer id;
	// NewReplLoopback serves in-process replica sets, an RPC transport is
	// the planned other half of the distributed tier.
	ReplTransport = repl.Transport
	// ReplicatedShardedEngine is a ShardedEngine whose every shard is a
	// replication leader; open one with OpenReplicatedShardedEngine.
	ReplicatedShardedEngine = shard.Replicated
)

// Engine health states (see EngineHealth).
const (
	EngineHealthy  = engine.Healthy
	EngineDegraded = engine.Degraded
	EngineReadOnly = engine.ReadOnly
	EngineFailed   = engine.Failed
)

// Maintenance event kinds (see MaintenanceEvent).
const (
	EventFlush      = telemetry.EvFlush
	EventCompaction = telemetry.EvCompaction
	EventSnapshot   = telemetry.EvSnapshot
	EventRestore    = telemetry.EvRestore
	EventRepair     = telemetry.EvRepair
	EventScrub      = telemetry.EvScrub
	EventHealth     = telemetry.EvHealth
)

// Sentinel errors of the storage stack, for errors.Is checks at the
// serving layer.
var (
	// ErrShardBudget reports a query rejected by admission control: its
	// single planner call produced more cluster ranges than
	// ShardedEngineOptions.MaxPlannedRanges allows.
	ErrShardBudget = shard.ErrBudget
	// ErrShardManifest reports a sharded engine directory opened with a
	// shard count or curve different from the one it was created with.
	ErrShardManifest = shard.ErrManifest
	// ErrReadOnly reports a write rejected because its engine (or the
	// shard owning the written key) degraded to ReadOnly after a WAL
	// failure or ENOSPC; the driving cause stays on the error chain.
	ErrReadOnly = engine.ErrReadOnly
	// ErrCorrupt reports on-disk corruption detected by a checksum:
	// queries touching a damaged page return it, and the background
	// scrub quarantines the segment so later queries stop seeing it.
	ErrCorrupt = engine.ErrCorrupt
	// ErrSnapshot reports a malformed, missing or mismatched Engine
	// snapshot: an interrupted export (no manifest), a snapshot of a
	// different store, or a broken parent chain.
	ErrSnapshot = engine.ErrSnapshot
	// ErrShardedSnapshot is ErrSnapshot's composite counterpart for
	// ShardedEngine snapshots.
	ErrShardedSnapshot = shard.ErrSnapshot
	// ErrIngestBackpressure reports a non-blocking ingest enqueue rejected
	// because the ring is full: the pipeline sheds load instead of growing
	// its memory footprint. Retry, drop, or use the blocking form.
	ErrIngestBackpressure = ingest.ErrBackpressure
	// ErrIngestClosed reports an ingest enqueue after the pipeline closed.
	ErrIngestClosed = ingest.ErrClosed
	// ErrQuorum reports a replicated write that could not reach a durable
	// quorum: the batch is refused, the engine latches read-only (reads
	// keep serving), and ReplGroup.TryRecover re-arms writes once a
	// quorum of followers is reachable again.
	ErrQuorum = engine.ErrQuorum
	// ErrReplFenced reports a deposed leader: a newer epoch exists and
	// this node must rejoin as a follower.
	ErrReplFenced = repl.ErrFenced
)

// NewIngest builds and starts an asynchronous ingest pipeline over a
// single engine: ops enqueue into a bounded MPMC ring, a batcher
// coalesces them, and each batch rides one WAL group-commit fsync through
// Engine.PutBatch. Close the pipeline before closing the engine. For a
// ShardedEngine use its NewIngest method, which stripes batches per
// shard.
func NewIngest(e *Engine, cfg IngestConfig) (*IngestPipeline, error) {
	return ingest.NewEngine(e, cfg)
}

// NewUniverse validates and constructs a dims-dimensional grid of
// side^dims cells.
func NewUniverse(dims int, side uint32) (Universe, error) {
	return geom.NewUniverse(dims, side)
}

// NewRect validates inclusive bounds lo <= hi.
func NewRect(lo, hi Point) (Rect, error) { return geom.NewRect(lo, hi) }

// RectAt builds the rectangle with lower corner lo and the given side
// lengths.
func RectAt(lo Point, shape []uint32) (Rect, error) { return geom.RectAt(lo, shape) }

// NewOnion2D returns the paper's two-dimensional onion curve (Section
// III-A) on a side x side grid; any side >= 1.
func NewOnion2D(side uint32) (Curve, error) { return core.NewOnion2D(side) }

// NewOnion3D returns the paper's three-dimensional onion curve (Section
// VI-A); the side must be even.
func NewOnion3D(side uint32) (Curve, error) { return core.NewOnion3D(side) }

// NewOnion3DWithSegmentOrder returns a 3D onion curve visiting the ten
// within-layer segments in a custom order (the paper proves any
// permutation preserves the clustering guarantees).
func NewOnion3DWithSegmentOrder(side uint32, perm [10]int) (Curve, error) {
	return core.NewOnion3DWithSegmentOrder(side, perm)
}

// NewOnionND returns the layer-sequential d-dimensional onion extension
// sketched in the paper's future work. Note: it keeps layer ordering but
// not the within-segment structure, and measurably weaker clustering
// constants come with that (see the package's ablation experiment).
func NewOnionND(dims int, side uint32) (Curve, error) { return core.NewOnionND(dims, side) }

// NewLayerLex returns the layer-lexicographic ablation curve.
func NewLayerLex(dims int, side uint32) (Curve, error) { return core.NewLayerLex(dims, side) }

// NewHilbert returns the d-dimensional Hilbert curve (d >= 2, side a power
// of two) — the paper's principal baseline.
func NewHilbert(dims int, side uint32) (Curve, error) { return baseline.NewHilbert(dims, side) }

// NewZCurve returns the Z (Morton, bit-interleaving) curve; side must be a
// power of two.
func NewZCurve(dims int, side uint32) (Curve, error) { return baseline.NewMorton(dims, side) }

// NewGrayCode returns the Gray-code curve of Faloutsos; side must be a
// power of two.
func NewGrayCode(dims int, side uint32) (Curve, error) { return baseline.NewGray(dims, side) }

// NewRowMajor returns the row-major order (dimension 0 fastest).
func NewRowMajor(dims int, side uint32) (Curve, error) { return baseline.NewRowMajor(dims, side) }

// NewColumnMajor returns the column-major order (dimension d-1 fastest).
func NewColumnMajor(dims int, side uint32) (Curve, error) {
	return baseline.NewColumnMajor(dims, side)
}

// NewSnake returns the boustrophedon order — the simplest continuous
// curve, useful as a lower-bound control.
func NewSnake(dims int, side uint32) (Curve, error) { return baseline.NewSnake(dims, side) }

// NewPeano returns the d-dimensional Peano (serpentine) curve; side must
// be a power of three.
func NewPeano(dims int, side uint32) (Curve, error) { return baseline.NewPeano(dims, side) }

// IsContinuous reports whether consecutive positions of the curve are
// always grid neighbors (the paper's Definition 1).
func IsContinuous(c Curve) bool { return curve.IsContinuous(c) }

// Walker enumerates a curve's cells in key order with amortized O(1)
// incremental stepping (onion family, Z, Gray, linear orders) instead of a
// full inverse-mapping evaluation per key. Whole-curve sweeps — clustering
// analytics, jump scans, visualizations — should walk, not call Coords in
// a loop.
type Walker = curve.Walker

// NewWalker returns a Walker over c positioned at key start (start may be
// anywhere in [0, Size()]; Size() yields an exhausted walker). Curves with
// specialized incremental walkers provide them transparently; every other
// curve gets a generic fallback with the same contract.
func NewWalker(c Curve, start uint64) Walker { return curve.NewWalker(c, start) }

// IndexBatch maps pts[i] to dst[i] = c.Index(pts[i]). Passing a dst of
// length len(pts) fills it in place with zero allocations; otherwise a
// fresh slice is returned. Per-curve batch fast paths skip the per-call
// interface dispatch of the scalar mapping.
func IndexBatch(c Curve, pts []Point, dst []uint64) []uint64 {
	return curve.IndexBatch(c, pts, dst)
}

// CoordsBatch maps keys[i] to dst[i], the inverse of IndexBatch. A dst of
// the right length whose points have the universe's dimensionality is
// reused with zero allocations.
func CoordsBatch(c Curve, keys []uint64, dst []Point) []Point {
	return curve.CoordsBatch(c, keys, dst)
}

// ClusterCount returns the clustering number of r under c: the minimum
// number of contiguous key runs covering exactly the cells of r. The
// cheapest correct strategy is chosen per curve:
//
//   - onion family, Hilbert, Z, Gray and linear orders: an analytic
//     output-sensitive planner — per-layer ring/segment intersection or
//     prefix-tree descent — in O(layers + clusters) (onion) or
//     O(clusters * log side) (prefix trees), with zero per-cell curve
//     evaluations; paper-scale queries (10^8+ cells) count in
//     microseconds.
//   - other continuous curves (e.g. Peano): the Lemma 1 boundary method,
//     O(surface(r)) batched curve evaluations sharded across CPUs.
//   - other almost-continuous curves: the boundary method plus one check
//     per enumerated jump.
//   - anything else: cell enumeration + sort, O(|r| log |r|), subject to
//     the sorted cell budget.
func ClusterCount(c Curve, r Rect) (uint64, error) {
	return cluster.Count(c, r)
}

// AverageClustering returns the exact average clustering number of c over
// the query set of all translates of the given shape (Lemma 1 + a
// generalization of Lemma 2), sweeping the curve's edges once.
//
// The sweep is parallel: the edge range is sharded across GOMAXPROCS
// workers, each driving its own incremental Walker (or, for curves with
// straight-run structure such as the onion and linear orders, closed-form
// per-run summation). Determinism is guaranteed: all partial sums are
// exact 128-bit integers, so the returned float64 is bit-identical across
// runs, worker counts and GOMAXPROCS settings — parallelism never changes
// the result.
func AverageClustering(c Curve, shape []uint32) (float64, error) {
	return cluster.AverageExact(c, shape)
}

// Decompose returns the minimal contiguous key ranges covering exactly the
// cells of r, sorted ascending; len(result) equals ClusterCount. The
// strategy mirrors ClusterCount — analytic planners for the onion family
// and the prefix-tree curves (output-sensitive, no per-cell evaluations),
// the batched boundary sweep for other continuous or almost-continuous
// curves (O(surface(r))), and sorted enumeration as the last resort — and
// every strategy returns bit-identical ranges.
func Decompose(c Curve, r Rect) ([]KeyRange, error) {
	return ranges.Decompose(c, r, 0)
}

// MergeToBudget coalesces ranges (closing smallest gaps first) until at
// most budget remain — fewer seeks for some extra cells scanned.
func MergeToBudget(rs []KeyRange, budget int) (MergeResult, error) {
	return ranges.MergeToBudget(rs, budget)
}

// LowerBoundContinuous returns the exact Theorem 2 lower bound: no
// continuous SFC can average fewer clusters over all translates of the
// shape.
func LowerBoundContinuous(u Universe, shape []uint32) (float64, error) {
	return theory.LowerBoundContinuous(u, shape)
}

// LowerBoundGeneral returns the exact Theorem 3 lower bound valid for
// every SFC.
func LowerBoundGeneral(u Universe, shape []uint32) (float64, error) {
	return theory.LowerBoundGeneral(u, shape)
}

// OnionCubeRatio2D returns the paper's Table I headline: the maximum
// approximation ratio of the 2D onion curve over cube query sets (2.32)
// and the maximizing cube scale phi.
func OnionCubeRatio2D() (phi, eta float64) { return theory.MaxEtaOnion2DCube() }

// OnionCubeRatio3D returns the 3D analogue (3.4 at phi = 0.3967).
func OnionCubeRatio3D() (phi, eta float64) { return theory.MaxEtaOnion3DCube() }

// NewIndex builds an empty spatial index clustered by c.
func NewIndex(c Curve, opts ...IndexOption) (*Index, error) { return index.New(c, opts...) }

// BulkIndex builds an index over a static point set in one bottom-up pass
// with maximally packed B+-tree leaves.
func BulkIndex(c Curve, pts []Point, opts ...IndexOption) (*Index, error) {
	return index.Bulk(c, pts, opts...)
}

// WithTreeOrder sets the index's B+-tree branching factor (default 64).
func WithTreeOrder(order int) IndexOption { return index.WithTreeOrder(order) }

// WithPageSize sets the simulated disk page size in cells (default 256).
func WithPageSize(cells uint64) IndexOption { return index.WithPageSize(cells) }

// DefaultDiskModel returns the default seek/transfer cost model.
func DefaultDiskModel() DiskModel { return disksim.DefaultModel() }

// UniformPartition splits c's key space into k equal shards.
func UniformPartition(c Curve, k int) (*Partitioner, error) { return partition.Uniform(c, k) }

// WeightedPartition splits c's key space into k shards balanced over the
// given sample of keys.
func WeightedPartition(c Curve, keys []uint64, k int) (*Partitioner, error) {
	return partition.ByWeight(c, keys, k)
}

// WriteStore bulk-loads records into a disk file physically clustered in
// curve order; pageBytes is the page size (for example 4096).
func WriteStore(path string, c Curve, recs []Record, pageBytes int) error {
	return pagedstore.Write(path, c, recs, pageBytes)
}

// OpenStore opens a clustered store written by WriteStore; the curve must
// match the one used at write time. A Store is safe for concurrent
// readers: all file access is positioned (pread) and per-query state
// lives in per-call cursors.
func OpenStore(path string, c Curve) (*Store, error) { return pagedstore.Open(path, c) }

// NewPageCache returns a shared page cache with the given byte budget.
// Pass it to OpenStoreCached, EngineOptions.Cache, or size one per
// sharded engine with ShardedEngineOptions.CacheBytes.
func NewPageCache(budgetBytes int64) *PageCache { return pagedstore.NewCache(budgetBytes) }

// OpenStoreCached is OpenStore backed by a shared page cache: logical
// page visits resident in the cache are served from memory, misses
// populate it, and the store's pages are dropped from the cache on
// Close. The logical query Stats are bit-identical to an uncached open;
// only the physical I/O changes.
func OpenStoreCached(path string, c Curve, cache *PageCache) (*Store, error) {
	return pagedstore.OpenCached(path, c, cache)
}

// OpenEngine opens (creating if needed) a mutable spatial storage engine
// rooted at dir and clustered by c: the read-write counterpart of
// WriteStore/OpenStore for workloads that ingest while they serve.
//
// Writes (Put/Delete) are acknowledged after landing in a CRC-framed
// write-ahead log and a curve-key-ordered memtable sharded across
// GOMAXPROCS; memtables flush into immutable curve-ordered segment files
// (the pagedstore layout), and size-tiered background compaction merges
// segments and garbage-collects deletions. Crash recovery replays the
// log, keeping exactly the acknowledged prefix and dropping a torn tail.
//
// Query plans each rectangle with one RangePlanner call and streams a
// k-way merge of memtable + segments per cluster range, so the paper's
// clustering number remains the number of positioned reads the query
// pays — on a fully flushed and compacted engine the physical stats are
// bit-identical to a fresh Store of the same records. All Engine methods
// (Put, Delete, Query, Flush, Compact, Sync, Stats, Close) are safe for
// concurrent use.
func OpenEngine(dir string, c Curve, opts EngineOptions) (*Engine, error) {
	return engine.Open(dir, c, opts)
}

// OpenShardedEngine opens (creating if needed) a horizontally sharded
// engine rooted at dir: the curve's key space is split into
// Options.Shards contiguous intervals and each is served by an
// independent Engine in its own subdirectory — per-shard WAL, memtable,
// segments, flush and compaction — so durability and crash recovery
// compose shard by shard, and a crash damages at most the shards it
// interrupted. The shard count and curve identity are recorded in a
// manifest and verified on reopen.
//
// Writes route by curve key to exactly one shard. Query plans each
// rectangle ONCE with the curve's RangePlanner, splits the resulting
// cluster ranges at shard boundaries, fans them out only to the shards
// whose key intervals they intersect — executed concurrently on a
// bounded worker pool behind admission control (a cap on in-flight
// queries, an optional per-query planned-range budget) — and merges the
// per-shard streams. Because shard boundaries are curve-key intervals,
// the concatenated result is globally key-sorted and bit-identical to a
// single Engine holding the same records; the stat aggregation contract
// is documented on ShardedQueryStats. All methods are safe for
// concurrent use.
func OpenShardedEngine(dir string, c Curve, opts ShardedEngineOptions) (*ShardedEngine, error) {
	return shard.Open(dir, c, opts)
}

// LeadReplicated opens an engine at dir as a replication leader: every
// write's WAL frames tee into a replication log shipped to cfg.Peers,
// and a synchronous write acknowledges only once a quorum (leader
// included) holds it durably — so an acknowledged Put means "fsynced on
// a majority". Losing quorum degrades, never corrupts: writes fail with
// ErrQuorum, the engine latches read-only, and ReplGroup.TryRecover
// re-arms once peers are reachable. A directory that already led an
// epoch refuses to lead again — rejoin it as a follower (its divergent
// suffix is shed by a snapshot re-seed) and promote a clean replica.
func LeadReplicated(dir string, c Curve, cfg ReplConfig) (*ReplGroup, error) {
	return repl.Lead(dir, c, cfg)
}

// OpenReplFollower opens (creating or rejoining) a follower replica.
// Register it on the transport under id so the leader can reach it.
func OpenReplFollower(id, dir string, c Curve, opts ReplFollowerOptions) (*ReplFollower, error) {
	return repl.OpenFollower(id, dir, c, opts)
}

// NewReplLoopback builds the in-process replication transport: followers
// register under their peer id, leaders send by id. Wrap it in a
// fault-injecting transport (internal to the repl tests) or use it
// directly for single-process replica sets.
func NewReplLoopback() *repl.Loopback { return repl.NewLoopback() }

// ReplQuorumWatermark computes the highest log index guaranteed to
// contain every quorum-acknowledged entry, given the last indices of the
// reachable followers — the truncation point for PromoteReplica.
func ReplQuorumWatermark(lasts []uint64, quorum int) uint64 {
	return repl.QuorumWatermark(lasts, quorum)
}

// PromoteReplica turns a follower into the leader of a new epoch:
// its log is truncated to upTo (a ReplQuorumWatermark), fully applied,
// and the node restarts as a leader whose history lets surviving
// followers catch up by resend. The follower is consumed. Failover is
// externally driven: the caller picks the reachable follower with the
// longest log, which by quorum intersection holds every acknowledged
// entry.
func PromoteReplica(f *ReplFollower, upTo uint64, cfg ReplConfig) (*ReplGroup, error) {
	return repl.Promote(f, upTo, cfg)
}

// OpenReplicatedShardedEngine opens a sharded engine with per-shard
// replication: shard i's engine leads the replica set cfg(i) describes.
// Replication degrades shard by shard — a shard that loses quorum
// latches read-only while the others keep accepting writes.
func OpenReplicatedShardedEngine(dir string, c Curve, opts ShardedEngineOptions, cfg func(shard int) ReplConfig) (*ReplicatedShardedEngine, error) {
	return shard.OpenReplicated(dir, c, opts, cfg)
}

// RestoreEngine materializes a fresh engine directory at targetDir from
// the snapshot at snapshotDir (written by Engine.Snapshot or
// Engine.SnapshotSince) plus the source engine's archived WALs — the
// point-in-time restore path.
//
// The snapshot's segments are copied (or hardlinked), then every
// archived WAL the segment set does not already cover is replayed in
// acknowledgement order and the first upTo replayed records are folded
// into one extra segment: upTo < 0 restores to latest, upTo == 0
// restores the snapshot boundary alone, and any value in between is a
// point-in-time boundary — record j of the replay stream is the j-th
// write acknowledged after the snapshot's flush point. How far back the
// archive reaches is bounded by EngineOptions.WALRetention on the
// source engine (the default keeps every retired WAL).
//
// targetDir must not exist; the build is staged in a sibling directory
// renamed into place last, so a crash or failure at any point leaves
// targetDir atomically absent — never a half-built engine — and never
// modifies the snapshot or the source. Open the result with OpenEngine
// and the same curve.
func RestoreEngine(snapshotDir, targetDir string, upTo int, c Curve, opts EngineOptions) (EngineRestoreReport, error) {
	return engine.Restore(snapshotDir, targetDir, upTo, c, opts)
}

// RestoreShardedEngine is RestoreEngine's composite counterpart: it
// validates the epoch-stamped manifest a ShardedEngine.Snapshot wrote,
// restores every shard independently (upTo bounds the replayed records
// PER SHARD; upTo < 0 restores to latest), stamps the directory
// manifest, and commits the whole tree with one atomic rename. Open the
// result with OpenShardedEngine, the same curve and the same shard
// count.
func RestoreShardedEngine(snapshotDir, targetDir string, upTo int, c Curve, opts ShardedEngineOptions) ([]EngineRestoreReport, error) {
	return shard.Restore(snapshotDir, targetDir, upTo, c, opts)
}

// SortPoints orders points in place by their curve keys — the clustered
// layout a bulk loader should write so that range queries read
// sequentially. Points must belong to the curve's universe. Keys are
// computed through the batch forward mapping.
func SortPoints(c Curve, pts []Point) {
	keys := curve.IndexBatch(c, pts, make([]uint64, len(pts)))
	sort.Sort(&pointSorter{keys: keys, pts: pts})
}

type pointSorter struct {
	keys []uint64
	pts  []Point
}

func (s *pointSorter) Len() int           { return len(s.keys) }
func (s *pointSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *pointSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
}

// ClusterSpread measures how far apart in key space a query's clusters
// are — few clusters can still be expensive to fetch if they are distant.
func ClusterSpread(c Curve, r Rect) (Spread, error) { return metrics.ClusterSpread(c, r) }

// Stretch samples the L1 grid distance between cells k apart along the
// curve (Gotsman-Lindenbaum stretch; relevant to near-neighbor search).
func Stretch(c Curve, k uint64, samples int, seed int64) (StretchStats, error) {
	return metrics.Stretch(c, k, samples, seed)
}

// DrawCurve renders the curve's position numbers on a small 2D grid
// (Figure 3 style).
func DrawCurve(c Curve) (string, error) { return viz.CurveGrid(c) }

// DrawQuery renders a query's clusters as letters on a small 2D grid
// (Figure 1/2 style) and returns the picture and the cluster count.
func DrawQuery(c Curve, r Rect) (string, int, error) { return viz.QueryClusters(c, r) }

// DrawCurveSlices renders a small 3D curve as per-z slices of position
// numbers (Figure 4 style).
func DrawCurveSlices(c Curve) (string, error) { return viz.CurveSlices(c) }
