package onion_test

import (
	"testing"

	onion "github.com/onioncurve/onion"
	"github.com/onioncurve/onion/internal/cluster"
)

// TestFacadeWalkerAndBatch exercises the facade-level Walker and batch
// APIs end to end on a mix of curve families.
func TestFacadeWalkerAndBatch(t *testing.T) {
	o, err := onion.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := onion.NewHilbert(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []onion.Curve{o, h} {
		n := c.Universe().Size()
		w := onion.NewWalker(c, 0)
		keys := make([]uint64, 0, n)
		pts := make([]onion.Point, 0, n)
		for {
			k, p, ok := w.Next()
			if !ok {
				break
			}
			keys = append(keys, k)
			pts = append(pts, p.Clone())
		}
		if uint64(len(keys)) != n {
			t.Fatalf("%s: walker yielded %d cells, want %d", c.Name(), len(keys), n)
		}
		back := onion.IndexBatch(c, pts, nil)
		for i := range back {
			if back[i] != keys[i] {
				t.Fatalf("%s: IndexBatch[%d] = %d, want %d", c.Name(), i, back[i], keys[i])
			}
		}
		cells := onion.CoordsBatch(c, keys, nil)
		for i := range cells {
			if !cells[i].Equal(pts[i]) {
				t.Fatalf("%s: CoordsBatch[%d] = %v, want %v", c.Name(), i, cells[i], pts[i])
			}
		}
	}
}

// TestAverageClusteringDeterminism pins the facade documentation claim:
// the parallel sweep is bit-identical to the serial and scalar reference
// paths.
func TestAverageClusteringDeterminism(t *testing.T) {
	o, err := onion.NewOnion2D(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range [][]uint32{{1, 1}, {8, 8}, {63, 5}, {64, 64}} {
		got, err := onion.AverageClustering(o, shape)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := cluster.AverageExactSerial(o, shape)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := cluster.AverageExactScalar(o, shape)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial || got != scalar {
			t.Fatalf("shape %v: parallel %v, serial %v, scalar %v — not bit-identical",
				shape, got, serial, scalar)
		}
	}
}
