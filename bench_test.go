package onion_test

// One benchmark per table and figure of the paper (scaled-down parameters
// so `go test -bench=.` terminates quickly; run cmd/onionbench without
// -quick for paper-scale numbers) plus micro-benchmarks for the curve
// mappings, the clustering counters, range decomposition and the B+-tree.

import (
	"testing"

	onion "github.com/onioncurve/onion"
	"github.com/onioncurve/onion/internal/bptree"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/experiments"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/workload"
)

var benchCfg = experiments.Config{Quick: true, Seed: 1, Side2D: 128, Side3D: 32, Samples2D: 20, Samples3D: 8}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table1(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2()
	}
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5a(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5b(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6a(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7a(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7b(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLemma5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Lemma5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm1(b *testing.B) {
	cfg := benchCfg
	cfg.Side2D = 64
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Thm1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LowerBounds(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexSeeks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Seeks(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fanout(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLayerOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SpreadExp(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Eta(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks ---

func benchCurveIndex(b *testing.B, c onion.Curve) {
	u := c.Universe()
	p := make(onion.Point, u.Dims())
	dst := make(onion.Point, u.Dims())
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := uint64(i) % u.Size()
		c.Coords(h, p)
		sink += c.Index(p)
		c.Coords(sink%u.Size(), dst)
	}
	_ = sink
}

func BenchmarkCurveMap(b *testing.B) {
	o2, _ := onion.NewOnion2D(1 << 10)
	o3, _ := onion.NewOnion3D(1 << 9)
	h2, _ := onion.NewHilbert(2, 1<<10)
	h3, _ := onion.NewHilbert(3, 1<<9)
	z2, _ := onion.NewZCurve(2, 1<<10)
	g2, _ := onion.NewGrayCode(2, 1<<10)
	nd4, _ := onion.NewOnionND(4, 64)
	for _, tc := range []struct {
		name string
		c    onion.Curve
	}{
		{"onion2d-1024", o2}, {"onion3d-512", o3},
		{"hilbert2d-1024", h2}, {"hilbert3d-512", h3},
		{"zcurve2d-1024", z2}, {"gray2d-1024", g2}, {"onionnd4-64", nd4},
	} {
		b.Run(tc.name, func(b *testing.B) { benchCurveIndex(b, tc.c) })
	}
}

func BenchmarkClusterCount(b *testing.B) {
	o, _ := onion.NewOnion2D(1 << 10)
	h, _ := onion.NewHilbert(2, 1<<10)
	o3, _ := onion.NewOnion3D(1 << 8)
	q2, _ := onion.RectAt(onion.Point{30, 40}, []uint32{900, 900})
	q3, _ := onion.RectAt(onion.Point{10, 10, 10}, []uint32{200, 200, 200})
	b.Run("onion2d-900sq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.ClusterCount(o, q2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hilbert2d-900sq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.ClusterCount(h, q2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("onion3d-200cube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.ClusterCount(o3, q3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAverageClustering is the tentpole acceptance benchmark: the
// exact average clustering number of an 8x8 query over the full 1024^2
// onion universe — 2^20 curve edges per op. The "scalar" sub-benchmark is
// the retained pre-walker reference path (one full inverse mapping and one
// general GammaTranslates per edge); the default path sweeps runs/walkers
// in parallel and must beat it by >= 3x.
func BenchmarkAverageClustering(b *testing.B) {
	o, _ := onion.NewOnion2D(1 << 10)
	h2, _ := onion.NewHilbert(2, 1<<10)
	shape := []uint32{8, 8}
	b.Run("onion2d-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.AverageClustering(o, shape); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("onion2d-1024-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.AverageExactScalar(o, shape); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hilbert2d-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.AverageClustering(h2, shape); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAverageClusteringExact(b *testing.B) {
	o, _ := onion.NewOnion2D(256)
	for i := 0; i < b.N; i++ {
		if _, err := onion.AverageClustering(o, []uint32{100, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalker measures full-curve sweeps: incremental walkers versus
// one scalar Coords inversion per key.
func BenchmarkWalker(b *testing.B) {
	o2, _ := onion.NewOnion2D(1 << 10)
	o3, _ := onion.NewOnion3D(1 << 7)
	h2, _ := onion.NewHilbert(2, 1<<10)
	z2, _ := onion.NewZCurve(2, 1<<10)
	nd4, _ := onion.NewOnionND(4, 32)
	for _, tc := range []struct {
		name string
		c    onion.Curve
	}{
		{"onion2d-1024", o2}, {"onion3d-128", o3},
		{"hilbert2d-1024", h2}, {"zcurve2d-1024", z2}, {"onionnd4-32", nd4},
	} {
		n := tc.c.Universe().Size()
		b.Run(tc.name+"/walk", func(b *testing.B) {
			var sink uint32
			for i := 0; i < b.N; i++ {
				w := onion.NewWalker(tc.c, 0)
				for {
					_, p, ok := w.Next()
					if !ok {
						break
					}
					sink += p[0]
				}
			}
			_ = sink
		})
		b.Run(tc.name+"/coords", func(b *testing.B) {
			p := make(onion.Point, tc.c.Universe().Dims())
			var sink uint32
			for i := 0; i < b.N; i++ {
				for h := uint64(0); h < n; h++ {
					tc.c.Coords(h, p)
					sink += p[0]
				}
			}
			_ = sink
		})
	}
}

// BenchmarkBatch measures the batch mappings in steady state: correctly
// sized destinations must report 0 allocs/op.
func BenchmarkBatch(b *testing.B) {
	o2, _ := onion.NewOnion2D(1 << 10)
	h2, _ := onion.NewHilbert(2, 1<<10)
	z2, _ := onion.NewZCurve(2, 1<<10)
	const batch = 4096
	for _, tc := range []struct {
		name string
		c    onion.Curve
	}{{"onion2d-1024", o2}, {"hilbert2d-1024", h2}, {"zcurve2d-1024", z2}} {
		n := tc.c.Universe().Size()
		keys := make([]uint64, batch)
		for i := range keys {
			keys[i] = uint64(i*2654435761) % n
		}
		pts := onion.CoordsBatch(tc.c, keys, nil)
		dst := make([]uint64, batch)
		b.Run(tc.name+"/IndexBatch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				onion.IndexBatch(tc.c, pts, dst)
			}
		})
		b.Run(tc.name+"/CoordsBatch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				onion.CoordsBatch(tc.c, keys, pts)
			}
		})
	}
}

func BenchmarkDecompose(b *testing.B) {
	o, _ := onion.NewOnion2D(1 << 10)
	z, _ := onion.NewZCurve(2, 1<<10)
	q, _ := onion.RectAt(onion.Point{100, 100}, []uint32{300, 300})
	b.Run("onion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.Decompose(o, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zcurve-recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := onion.Decompose(z, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBPTree(b *testing.B) {
	b.Run("insert", func(b *testing.B) {
		tr, _ := bptree.New(64)
		for i := 0; i < b.N; i++ {
			tr.Insert(uint64(i*2654435761)%1_000_000, uint64(i))
		}
	})
	b.Run("get", func(b *testing.B) {
		tr, _ := bptree.New(64)
		for i := 0; i < 100_000; i++ {
			tr.Insert(uint64(i), uint64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Get(uint64(i) % 100_000)
		}
	})
	b.Run("rangescan1000", func(b *testing.B) {
		tr, _ := bptree.New(64)
		for i := 0; i < 100_000; i++ {
			tr.Insert(uint64(i), uint64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := uint64(i) % 99_000
			tr.RangeScan(lo, lo+999, func(k, v uint64) bool { return true })
		}
	})
}

func BenchmarkIndexQuery(b *testing.B) {
	u := geom.MustUniverse(2, 512)
	pts, err := workload.ClusteredPoints(u, 5, 50_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	o, _ := onion.NewOnion2D(512)
	ix, _ := onion.NewIndex(o)
	for _, p := range pts {
		if _, err := ix.Insert(onion.Point(p)); err != nil {
			b.Fatal(err)
		}
	}
	q, _ := onion.RectAt(onion.Point{50, 50}, []uint32{100, 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
