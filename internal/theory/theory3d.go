package theory

// Three-dimensional results: Theorem 4 (onion curve upper bounds), Theorem
// 5 (continuous SFC lower bound) and Theorem 6 (general SFC lower bound)
// for cube query sets Q(l) on a universe of side s = 2m.

// Theorem4 returns the Theorem 4 estimate of the average clustering number
// of the 3D onion curve over Q(l). For l <= s/2 the value is the main term
// of an equality up to o(l^2); for l > s/2 it is an upper bound. upperOnly
// distinguishes the two regimes.
func Theorem4(s, l uint32) (val float64, upperOnly bool, ok bool) {
	if s%2 != 0 || l == 0 || l > s {
		return 0, false, false
	}
	fl := float64(l)
	L := float64(s) - fl + 1
	if fl <= float64(s)/2 {
		return fl*fl - 0.4*fl*fl*fl*fl*fl/(L*L*L), false, true
	}
	return 0.6*L*L + 3.25*L - 13.0/6.0, true, true
}

// Theorem5MainTerm returns the main term of Theorem 5's lower bound for
// continuous SFCs in three dimensions (exact up to o(l^2) for small l and
// up to an additive 3/2+eps for large l). Use LowerBoundContinuous for the
// exact numeric bound.
//
// The bracket's third term reads "-3 m^2 l^2" in the available text of the
// paper, which is inconsistent: it would make the bound exceed l^2 (and the
// onion curve itself) for moderate l. Re-deriving the bound from the
// paper's own case III ratio formula (Section VI-C), whose maximum 3.4 at
// phi = 0.3967 we reproduce exactly, fixes the term to -3 m^2 l^3: with
// phi = l/s the identity 2[(1-phi)^3 - (2/5) phi^3] = 2D + (3/4) phi
// (1/2-phi)(4+3phi) holds exactly for the case III denominator D, which
// requires LB = l^2 + [29/40 l^5 + 15/8 m l^4 - 3 m^2 l^3] / L^3.
func Theorem5MainTerm(s, l uint32) (float64, bool) {
	if s%2 != 0 || l == 0 || l > s {
		return 0, false
	}
	fl := float64(l)
	m := float64(s) / 2
	L := float64(s) - fl + 1
	if l >= 2 && fl <= float64(s)/2 {
		bracket := (29.0/40.0)*fl*fl*fl*fl*fl + (15.0/8.0)*m*fl*fl*fl*fl - 3*m*m*fl*fl*fl
		return fl*fl + bracket/(L*L*L), true
	}
	if fl > float64(s)/2 {
		return 0.6*L*L - 1.5*L, true
	}
	return 0, false
}
