// Package theory implements the analytical results of the paper: the
// closed-form clustering number of the 2D onion curve (Theorem 1), the
// minimum-crossing machinery lambda/T (Lemmas 2, 7, 8), the lower bounds
// for continuous and general SFCs in two and three dimensions (Theorems 2,
// 3, 5, 6), the 3D onion upper bounds (Theorem 4), the approximation-ratio
// formulas behind Tables I and II, and the Hilbert curve's Omega(n^((d-1)/d))
// lower bound of Lemma 5.
//
// Every closed form is cross-validated in the test suite against numeric
// ground truths built from the generalized Lemma 2 edge-crossing counts in
// package cluster. Two constants in the available text of the paper are
// OCR-damaged; they were re-derived and verified numerically (see
// EtaOnion2DCube and EtaOnion3DCaseV).
package theory

import (
	"errors"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/geom"
)

// ErrRange reports parameters outside a formula's domain.
var ErrRange = errors.New("theory: parameters outside formula domain")

// Theorem1 evaluates Theorem 1: the average clustering number of the 2D
// onion curve over the query set Q(l1, l2) of all translates of an l1 x l2
// rectangle in the s x s universe (s even, m = s/2). It returns the main
// term and the epsilon bound such that the true average lies within
// [mean-eps, mean+eps]. The theorem covers l2 <= m and l1 > m (after
// ordering l1 <= l2); ok is false for the mixed case.
func Theorem1(s, l1, l2 uint32) (mean, eps float64, ok bool) {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	if l1 == 0 || l2 > s || s%2 != 0 {
		return 0, 0, false
	}
	m := float64(s) / 2
	fl1, fl2 := float64(l1), float64(l2)
	L1 := float64(s) - fl1 + 1
	L2 := float64(s) - fl2 + 1
	switch {
	case fl2 <= m:
		bracket := (2.0/3.0)*fl2*fl2*fl2 - 3.5*fl1*fl2*fl2 + 2.5*fl1*fl1*fl2 -
			m*(fl2-fl1)*(fl2-3*fl1)
		return 0.5*(fl1+fl2) + bracket/(L1*L2), 5, true
	case fl1 > m:
		return L1 - L2 + (2.0/3.0)*L2*L2/L1, 2, true
	default:
		return 0, 0, false
	}
}

// Lambda is the minimum neighboring crossing number lambda(Q, alpha) of
// Definition 2, computed numerically from the generalized Lemma 2: the
// minimum of gamma(Q, (alpha, beta)) over the grid neighbors beta of alpha.
// It is exact for any dimension, shape and position.
func Lambda(u geom.Universe, shape []uint32, p geom.Point) uint64 {
	best := ^uint64(0)
	q := p.Clone()
	for dim := 0; dim < u.Dims(); dim++ {
		if p[dim] > 0 {
			q[dim] = p[dim] - 1
			if g := cluster.GammaTranslates(u, shape, p, q); g < best {
				best = g
			}
			q[dim] = p[dim]
		}
		if p[dim]+1 < u.Side() {
			q[dim] = p[dim] + 1
			if g := cluster.GammaTranslates(u, shape, p, q); g < best {
				best = g
			}
			q[dim] = p[dim]
		}
	}
	return best
}

// TNumeric sums Lambda over every cell of the universe — the paper's
// quantity T = sum_{i,j} lambda(i,j) (Section V-A), valid in any dimension.
func TNumeric(u geom.Universe, shape []uint32) float64 {
	var total float64
	u.Rect().ForEach(func(p geom.Point) bool {
		total += float64(Lambda(u, shape, p))
		return true
	})
	return total
}

// LambdaMax returns the maximum of Lambda over the universe, needed for the
// exact form of the lower bounds. By symmetry it is attained in the closed
// quadrant nearest the origin, which is enough to scan.
func LambdaMax(u geom.Universe, shape []uint32) uint64 {
	m := (u.Side() + 1) / 2
	lo := make(geom.Point, u.Dims())
	hi := make(geom.Point, u.Dims())
	for i := range hi {
		hi[i] = m - 1
	}
	var best uint64
	(geom.Rect{Lo: lo, Hi: hi}).ForEach(func(p geom.Point) bool {
		if l := Lambda(u, shape, p); l > best {
			best = l
		}
		return true
	})
	return best
}

// Lambda2DClosed evaluates Lemma 7's closed form for lambda(i, j) with
// 0 <= i, j <= m-1 (the quadrant; other cells follow by symmetry). It
// covers the cases l2 <= m and l1 > m with l1 <= l2; ok is false otherwise.
func Lambda2DClosed(s, l1, l2 uint32, i, j uint32) (uint64, bool) {
	if l1 > l2 || s%2 != 0 || l1 < 2 {
		// The paper's machinery assumes sides >= 2 (cf. Theorem 5's
		// "2 <= l"); l = 1 degenerates (queries are single cells).
		return 0, false
	}
	m := s / 2
	if i >= m || j >= m {
		return 0, false
	}
	tau := func(k, l uint32) uint64 {
		v := uint64(k) + 1
		if uint64(l) < v {
			v = uint64(l)
		}
		if r := uint64(s) + 1 - uint64(l); r < v {
			v = r
		}
		return v
	}
	h1 := func(t, l uint32) uint64 {
		if t <= l-1 {
			return 1
		}
		return 2
	}
	h2 := func(t, l uint32) uint64 {
		if t <= s-l {
			return 1
		}
		return 0
	}
	switch {
	case l2 <= m:
		a := h1(i, l1) * tau(j, l2)
		b := h1(j, l2) * tau(i, l1)
		if b < a {
			a = b
		}
		return a, true
	case l1 > m:
		a := h2(i, l1) * tau(j, l2)
		b := h2(j, l2) * tau(i, l1)
		if b < a {
			a = b
		}
		return a, true
	default:
		return 0, false
	}
}

// T2DClosed evaluates Lemma 8's closed forms for T in two dimensions
// (l1 <= l2 assumed after ordering; s even, m = s/2). ok is false for the
// mixed case l1 <= m < l2.
//
// Fidelity notes (established numerically against TNumeric, which is exact
// by construction): for l2 <= m the printed forms are exact when l1 and l2
// are both even and deviate by a lower-order parity term bounded by 2m
// otherwise; for l1 > m the printed form systematically overcounts a
// boundary band of cells whose true minimum crossing number vanishes (the
// query is so wide that edges at the quadrant seam are never crossed), so
// it is an upper bound on the true T. The numeric T is canonical; the
// closed forms are kept as the paper states them.
func T2DClosed(s, l1, l2 uint32) (float64, bool) {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	if s%2 != 0 || l1 < 2 || l2 > s {
		return 0, false
	}
	m := float64(s) / 2
	a, b := float64(l1), float64(l2)
	switch {
	case l2 <= s/2 && 2*l1 <= l2:
		return 4 * (a/6 - a*a/2 + a*a*a/12 - a*b/2 + a*a*b/2 +
			3*a*m/2 - 5*a*a*m/4 - a*b*m + 2*a*m*m), true
	case l2 <= s/2:
		return 4 * (a/6 - a*a/2 + a*a*a/12 + a*b/2 + 3*a*a*b/2 -
			b*b/2 - a*b*b + b*b*b/4 +
			a*m/2 - 9*a*a*m/4 + b*m/2 - b*b*m/4 + 2*a*m*m), true
	case l1 > s/2:
		L1 := float64(s) - a + 1
		L2 := float64(s) - b + 1
		return (2.0 / 3.0) * (1 + 3*L1 - L2) * L2 * (1 + L2), true
	default:
		return 0, false
	}
}

// LowerBoundContinuous is Theorem 2 in its exact form: any continuous SFC
// pi on the universe satisfies c(Q, pi) >= (T - lambda_max) / (2 |Q|).
// Valid in any dimension (the paper states d = 2 and d = 3 separately; the
// proof via Lemma 6 is dimension-independent).
func LowerBoundContinuous(u geom.Universe, shape []uint32) (float64, error) {
	q, err := cluster.TranslateCount(u, shape)
	if err != nil {
		return 0, err
	}
	t := TNumeric(u, shape)
	lmax := float64(LambdaMax(u, shape))
	lb := (t - lmax) / (2 * float64(q))
	if lb < 1 {
		lb = 1 // every non-empty query needs at least one cluster
	}
	return lb, nil
}

// LowerBoundGeneral is Theorem 3 (and Theorem 6 in 3D) in exact form: any
// SFC pi, continuous or not, satisfies
// c(Q, pi) >= (T/2 - lambda_max) / (2 |Q|), via Lemma 9's omega >= lambda/2.
func LowerBoundGeneral(u geom.Universe, shape []uint32) (float64, error) {
	q, err := cluster.TranslateCount(u, shape)
	if err != nil {
		return 0, err
	}
	t := TNumeric(u, shape)
	lmax := float64(LambdaMax(u, shape))
	lb := (t/2 - lmax) / (2 * float64(q))
	if lb < 1 {
		lb = 1
	}
	return lb, nil
}

// Theorem2MainTerm evaluates the explicit main-term expression of Theorem 2
// for d = 2 (continuous SFC lower bound), without the exact T machinery:
//
//	l2 <= m:  (n*l1 + B(l1,l2)) / (L1*L2) with the paper's B term,
//	l1 >  m:  L2 - L2^2/(3 L1).
//
// It is an asymptotic form: accurate up to o(n*l1)/(L1*L2) terms.
func Theorem2MainTerm(s, l1, l2 uint32) (float64, bool) {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	if s%2 != 0 || l1 == 0 || l2 > s {
		return 0, false
	}
	n := float64(s) * float64(s)
	sq := float64(s)
	a, b := float64(l1), float64(l2)
	L1 := sq - a + 1
	L2 := sq - b + 1
	switch {
	case l2 <= s/2 && 2*l1 <= l2:
		B := -sq*(a*b+1.25*a*a) + a*a*b + a*a*a/6
		return (n*a + B) / (L1 * L2), true
	case l2 <= s/2:
		B := -sq/4*(9*a*a+b*b) + a*a*a/6 + 3*a*a*b - 2*a*b*b + b*b*b/2
		return (n*a + B) / (L1 * L2), true
	case l1 > s/2:
		return L2 - L2*L2/(3*L1), true
	default:
		return 0, false
	}
}
