package theory

import (
	"errors"
	"math"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// TestTheorem1WithinEps validates Theorem 1 against the exact average
// clustering number of the real onion curve: |measured - main term| <= eps.
func TestTheorem1WithinEps(t *testing.T) {
	for _, s := range []uint32{16, 32, 64} {
		o, err := core.NewOnion2D(s)
		if err != nil {
			t.Fatal(err)
		}
		m := s / 2
		shapes := [][2]uint32{
			{1, 1}, {2, 2}, {2, m}, {3, 7}, {m / 2, m}, {m, m},
			{m + 1, m + 1}, {m + 2, s - 1}, {s - 3, s - 1}, {s, s}, {s - 1, s - 1},
		}
		for _, ll := range shapes {
			mean, eps, ok := Theorem1(s, ll[0], ll[1])
			if !ok {
				continue
			}
			got, err := cluster.AverageExact(o, []uint32{ll[0], ll[1]})
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got - mean); d > eps {
				t.Errorf("s=%d l=%v: |measured %.4f - theorem %.4f| = %.4f > eps %.0f",
					s, ll, got, mean, d, eps)
			}
		}
	}
}

func TestTheorem1Domain(t *testing.T) {
	if _, _, ok := Theorem1(64, 10, 40); ok {
		t.Error("mixed case l1<=m<l2 should not be covered")
	}
	if _, _, ok := Theorem1(63, 4, 4); ok {
		t.Error("odd side accepted")
	}
	if _, _, ok := Theorem1(64, 0, 4); ok {
		t.Error("zero side accepted")
	}
	// Symmetric in l1, l2.
	a, _, _ := Theorem1(64, 8, 16)
	b, _, _ := Theorem1(64, 16, 8)
	if a != b {
		t.Error("Theorem1 not symmetric under side swap")
	}
}

// TestLambdaClosedMatchesNumericSmallQueries validates Lemma 7 for the
// l2 <= m regime where it is exact.
func TestLambdaClosedMatchesNumericSmallQueries(t *testing.T) {
	for _, s := range []uint32{16, 32} {
		u := geom.MustUniverse(2, s)
		m := s / 2
		for _, ll := range [][2]uint32{{2, 2}, {2, 5}, {3, m}, {m, m}, {4, 7}} {
			for i := uint32(0); i < m; i++ {
				for j := uint32(0); j < m; j++ {
					closed, ok := Lambda2DClosed(s, ll[0], ll[1], i, j)
					if !ok {
						t.Fatalf("Lambda2DClosed rejected valid args s=%d l=%v", s, ll)
					}
					num := Lambda(u, []uint32{ll[0], ll[1]}, geom.Point{i, j})
					if closed != num {
						t.Fatalf("s=%d l=%v cell (%d,%d): closed %d != numeric %d",
							s, ll, i, j, closed, num)
					}
				}
			}
		}
	}
}

// TestLambdaClosedLargeQueriesUpperBound documents the l1 > m regime: the
// printed Lemma 7 value can exceed the true minimum (seam-band cells whose
// edges are never crossed) but never undercounts it.
func TestLambdaClosedLargeQueriesUpperBound(t *testing.T) {
	s := uint32(16)
	u := geom.MustUniverse(2, s)
	m := s / 2
	for _, ll := range [][2]uint32{{m + 1, m + 2}, {m + 2, s - 1}, {s - 1, s - 1}} {
		for i := uint32(0); i < m; i++ {
			for j := uint32(0); j < m; j++ {
				closed, ok := Lambda2DClosed(s, ll[0], ll[1], i, j)
				if !ok {
					t.Fatal("rejected valid args")
				}
				num := Lambda(u, []uint32{ll[0], ll[1]}, geom.Point{i, j})
				if closed < num {
					t.Fatalf("l=%v cell (%d,%d): closed %d undercounts numeric %d",
						ll, i, j, closed, num)
				}
			}
		}
	}
}

func TestLambdaSymmetry(t *testing.T) {
	// lambda(i,j) = lambda(j,i) = lambda(i, s-1-j) etc. for square shapes.
	u := geom.MustUniverse(2, 16)
	shape := []uint32{5, 5}
	for i := uint32(0); i < 16; i++ {
		for j := uint32(0); j < 16; j++ {
			v := Lambda(u, shape, geom.Point{i, j})
			if w := Lambda(u, shape, geom.Point{j, i}); w != v {
				t.Fatalf("transpose symmetry broken at (%d,%d)", i, j)
			}
			if w := Lambda(u, shape, geom.Point{15 - i, j}); w != v {
				t.Fatalf("reflection symmetry broken at (%d,%d)", i, j)
			}
		}
	}
}

// TestT2DClosedVsNumeric pins the fidelity contract documented on
// T2DClosed: exact for even sides below m, within 2m otherwise, and an
// upper bound for l1 > m.
func TestT2DClosedVsNumeric(t *testing.T) {
	for _, s := range []uint32{16, 32} {
		u := geom.MustUniverse(2, s)
		m := s / 2
		for l1 := uint32(2); l1 <= s; l1++ {
			for l2 := l1; l2 <= s; l2++ {
				closed, ok := T2DClosed(s, l1, l2)
				if !ok {
					if l1 <= m && l2 > m {
						continue // mixed case: correctly rejected
					}
					t.Fatalf("T2DClosed rejected s=%d l=(%d,%d)", s, l1, l2)
				}
				num := TNumeric(u, []uint32{l1, l2})
				diff := closed - num
				switch {
				case l2 <= m && l1%2 == 0 && l2%2 == 0:
					if diff != 0 {
						t.Errorf("s=%d l=(%d,%d): even case should be exact, diff %.1f",
							s, l1, l2, diff)
					}
				case l2 <= m:
					if math.Abs(diff) > 2*float64(m) {
						t.Errorf("s=%d l=(%d,%d): parity deviation %.1f > 2m", s, l1, l2, diff)
					}
				default: // l1 > m
					if diff < 0 {
						t.Errorf("s=%d l=(%d,%d): closed form undercounts by %.1f",
							s, l1, l2, -diff)
					}
				}
			}
		}
	}
}

// TestLowerBoundsHoldForAllCurves is the soundness test for Theorems 2/3
// (and their 3D analogues 5/6): no curve may average below the general
// bound, and no continuous curve below the continuous bound.
func TestLowerBoundsHoldForAllCurves(t *testing.T) {
	side := uint32(16)
	o, _ := core.NewOnion2D(side)
	h, _ := baseline.NewHilbert(2, side)
	sn, _ := baseline.NewSnake(2, side)
	z, _ := baseline.NewMorton(2, side)
	g, _ := baseline.NewGray(2, side)
	rm, _ := baseline.NewRowMajor(2, side)
	ll, _ := core.NewLayerLex(2, side)
	u := geom.MustUniverse(2, side)
	shapes := [][]uint32{{1, 1}, {2, 2}, {3, 5}, {8, 8}, {4, 8}, {9, 9}, {12, 15}, {15, 15}, {16, 16}, {5, 16}}
	for _, shape := range shapes {
		lbC, err := LowerBoundContinuous(u, shape)
		if err != nil {
			t.Fatal(err)
		}
		lbG, err := LowerBoundGeneral(u, shape)
		if err != nil {
			t.Fatal(err)
		}
		if lbG > lbC+1e-9 {
			t.Errorf("shape %v: general bound %.4f exceeds continuous bound %.4f", shape, lbG, lbC)
		}
		for _, c := range []curve.Curve{o, h, sn} {
			got, err := cluster.AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if got < lbC-1e-9 {
				t.Errorf("%s shape %v: measured %.4f below continuous LB %.4f",
					c.Name(), shape, got, lbC)
			}
		}
		for _, c := range []curve.Curve{o, h, sn, z, g, rm, ll} {
			got, err := cluster.AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if got < lbG-1e-9 {
				t.Errorf("%s shape %v: measured %.4f below general LB %.4f",
					c.Name(), shape, got, lbG)
			}
		}
	}
}

func TestLowerBoundsHold3D(t *testing.T) {
	side := uint32(8)
	o3, _ := core.NewOnion3D(side)
	h3, _ := baseline.NewHilbert(3, side)
	s3, _ := baseline.NewSnake(3, side)
	z3, _ := baseline.NewMorton(3, side)
	u := geom.MustUniverse(3, side)
	for _, shape := range [][]uint32{{2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {6, 6, 6}, {7, 7, 7}, {2, 4, 6}} {
		lbC, err := LowerBoundContinuous(u, shape)
		if err != nil {
			t.Fatal(err)
		}
		lbG, _ := LowerBoundGeneral(u, shape)
		for _, c := range []curve.Curve{h3, s3} {
			got, _ := cluster.AverageExact(c, shape)
			if got < lbC-1e-9 {
				t.Errorf("%s shape %v: measured %.4f below continuous LB %.4f",
					c.Name(), shape, got, lbC)
			}
		}
		for _, c := range []curve.Curve{o3, h3, s3, z3} {
			got, _ := cluster.AverageExact(c, shape)
			if got < lbG-1e-9 {
				t.Errorf("%s shape %v: measured %.4f below general LB %.4f",
					c.Name(), shape, got, lbG)
			}
		}
	}
}

// TestTheorem4WithinSlack validates the 3D onion estimate: the main term
// tracks the measurement within the o(l^2) slack (10% + small additive for
// the sizes we can afford), and the large-l branch is a true upper bound.
func TestTheorem4WithinSlack(t *testing.T) {
	s := uint32(16)
	o3, err := core.NewOnion3D(s)
	if err != nil {
		t.Fatal(err)
	}
	for l := uint32(2); l <= s; l++ {
		v, upperOnly, ok := Theorem4(s, l)
		if !ok {
			t.Fatalf("Theorem4 rejected l=%d", l)
		}
		got, err := cluster.AverageExact(o3, []uint32{l, l, l})
		if err != nil {
			t.Fatal(err)
		}
		if upperOnly {
			if got > v+1e-9 {
				t.Errorf("l=%d: measured %.3f exceeds Theorem 4 upper bound %.3f", l, got, v)
			}
		} else if math.Abs(got-v) > 0.2*float64(l)*float64(l)+2 {
			t.Errorf("l=%d: measured %.3f far from main term %.3f", l, got, v)
		}
	}
	if _, _, ok := Theorem4(15, 3); ok {
		t.Error("odd side accepted")
	}
}

func TestTheorem5MainTermBelowOnion(t *testing.T) {
	// The lower bound's main term must sit below the onion curve's
	// measured average (up to the small-l additive slack).
	s := uint32(16)
	o3, _ := core.NewOnion3D(s)
	for l := uint32(2); l <= s; l++ {
		lb, ok := Theorem5MainTerm(s, l)
		if !ok {
			t.Fatalf("Theorem5MainTerm rejected l=%d", l)
		}
		got, _ := cluster.AverageExact(o3, []uint32{l, l, l})
		if lb > got+2+0.1*float64(l)*float64(l) {
			t.Errorf("l=%d: LB main term %.3f above measured %.3f", l, lb, got)
		}
	}
}

func TestEtaMaxima(t *testing.T) {
	phi2, eta2 := MaxEtaOnion2DCube()
	if math.Abs(phi2-0.355) > 0.005 {
		t.Errorf("2D maximizer phi = %.4f, paper says 0.355", phi2)
	}
	if math.Abs(eta2-2.32) > 0.01 {
		t.Errorf("2D max eta = %.4f, paper says 2.32", eta2)
	}
	phi3, eta3 := MaxEtaOnion3DCube()
	if math.Abs(phi3-0.3967) > 0.005 {
		t.Errorf("3D maximizer phi = %.4f, paper says 0.3967", phi3)
	}
	if math.Abs(eta3-3.4) > 0.02 {
		t.Errorf("3D max eta = %.4f, paper says 3.4", eta3)
	}
}

func TestEtaDomains(t *testing.T) {
	if _, err := EtaOnion2DCube(0); !errors.Is(err, ErrRange) {
		t.Error("phi=0 accepted")
	}
	if _, err := EtaOnion2DCube(0.6); !errors.Is(err, ErrRange) {
		t.Error("phi>1/2 accepted")
	}
	if _, err := EtaOnion3DCube(-1); !errors.Is(err, ErrRange) {
		t.Error("negative phi accepted")
	}
	if _, err := EtaOnion2DCaseII(0, 1); !errors.Is(err, ErrRange) {
		t.Error("caseII phi1=0 accepted")
	}
	if _, err := EtaOnion2DCaseIV(0.4, 0.6); !errors.Is(err, ErrRange) {
		t.Error("caseIV phi1<=1/2 accepted")
	}
	if _, err := EtaOnion2DCaseV(-1, 1); !errors.Is(err, ErrRange) {
		t.Error("caseV psi2>0 accepted")
	}
	if _, err := EtaOnion3DCaseV(-1); !errors.Is(err, ErrRange) {
		t.Error("3D caseV psi>-2 accepted")
	}
}

func TestEtaKnownValues(t *testing.T) {
	// Case II with phi1 = phi2 gives 2 (paper).
	v, err := EtaOnion2DCaseII(1, 1)
	if err != nil || v != 2 {
		t.Errorf("caseII(1,1) = %v, %v", v, err)
	}
	// Case IV/V with equal parameters give exactly 2.
	if v, _ := EtaOnion2DCaseIV(0.7, 0.7); v != 2 {
		t.Errorf("caseIV equal = %v", v)
	}
	if v, _ := EtaOnion2DCaseV(-3, -3); v != 2 {
		t.Errorf("caseV equal = %v", v)
	}
	// 3D case V: eta <= 3 for psi <= -20 (paper's check).
	v, err = EtaOnion3DCaseV(-20)
	if err != nil || v > 3 {
		t.Errorf("3D caseV(-20) = %.4f, want <= 3", v)
	}
	// ... and decreasing in -psi.
	a, _ := EtaOnion3DCaseV(-10)
	b, _ := EtaOnion3DCaseV(-100)
	if b >= a {
		t.Error("3D caseV should decrease as queries shrink")
	}
}

func TestHilbertCubeLowerBound(t *testing.T) {
	if HilbertCubeLowerBound(2) != 0.5 {
		t.Error("2D exponent")
	}
	if HilbertCubeLowerBound(3) != 2.0/3.0 {
		t.Error("3D exponent")
	}
}

func TestTableII(t *testing.T) {
	rows := TableII()
	if len(rows) != 5 {
		t.Fatalf("Table II has %d rows, want 5", len(rows))
	}
	if rows[0].EtaHilbert != "1" {
		t.Error("mu=0 Hilbert entry")
	}
	if rows[2].Eta2DCube != "<= 2.32" {
		t.Errorf("case III 2D entry = %q", rows[2].Eta2DCube)
	}
	if rows[2].Eta3DCube != "<= 3.4" {
		t.Errorf("case III 3D entry = %q", rows[2].Eta3DCube)
	}
	if rows[4].EtaHilbert != "Omega(n^((d-1)/d))" {
		t.Errorf("case V Hilbert entry = %q", rows[4].EtaHilbert)
	}
}

// TestOnionBeatsGeneralLBByConstant spot-checks the headline claim on a
// real grid: the onion curve's measured average over cube translates stays
// within the paper's constant factor (2.32 plus finite-size slack) of the
// general lower bound.
func TestOnionBeatsGeneralLBByConstant(t *testing.T) {
	s := uint32(32)
	o, _ := core.NewOnion2D(s)
	u := geom.MustUniverse(2, s)
	for _, l := range []uint32{4, 8, 11, 16, 24, 28} {
		lb, err := LowerBoundGeneral(u, []uint32{l, l})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := cluster.AverageExact(o, []uint32{l, l})
		ratio := got / lb
		// 2.32 is asymptotic; allow generous finite-size headroom.
		if ratio > 4.0 {
			t.Errorf("l=%d: onion/LB ratio %.3f implausibly high", l, ratio)
		}
	}
}

func TestTheorem2MainTermTracksExactT(t *testing.T) {
	// The explicit Theorem 2 expression is asymptotic; on finite grids it
	// must stay within 35%+1 of the exact (T - lambda_max)/(2|Q|) bound.
	s := uint32(64)
	u := geom.MustUniverse(2, s)
	for _, ll := range [][2]uint32{{2, 4}, {4, 8}, {8, 8}, {8, 16}, {16, 32}, {40, 40}, {50, 60}} {
		mt, ok := Theorem2MainTerm(s, ll[0], ll[1])
		if !ok {
			t.Fatalf("rejected %v", ll)
		}
		exact, err := LowerBoundContinuous(u, []uint32{ll[0], ll[1]})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mt-exact) > 0.35*exact+1 {
			t.Errorf("l=%v: main term %.3f vs exact %.3f", ll, mt, exact)
		}
	}
}
