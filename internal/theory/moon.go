package theory

// Results from the related work the paper builds on (Section I-B): Moon,
// Jagadish, Faloutsos and Saltz, "Analysis of the clustering properties of
// the Hilbert space-filling curve" (TKDE 2001), as generalized by Xu and
// Tirthapura (TODS 2014) to every continuous SFC.

// MoonAsymptotic returns the asymptotic average clustering number for a
// query region of the given shape under ANY continuous SFC, when the query
// size stays constant as the universe grows: the surface area of the query
// divided by twice the number of dimensions.
//
// In the discrete grid model the "surface area" of a box is the number of
// (d-1)-dimensional unit facets on its boundary: 2 * sum_j prod_{i != j}
// shape_i. For a 2x2 square this gives 8/4 = 2, the classic result of
// Jagadish (1997).
func MoonAsymptotic(shape []uint32) float64 {
	d := len(shape)
	if d == 0 {
		return 0
	}
	surface := 0.0
	for j := 0; j < d; j++ {
		facet := 1.0
		for i := 0; i < d; i++ {
			if i != j {
				facet *= float64(shape[i])
			}
		}
		surface += 2 * facet
	}
	return surface / float64(2*d)
}
