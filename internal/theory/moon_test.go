package theory

import (
	"math"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
)

func TestMoonAsymptoticKnownValues(t *testing.T) {
	// Jagadish 1997: 2x2 queries on the Hilbert curve average 2 clusters.
	if got := MoonAsymptotic([]uint32{2, 2}); got != 2 {
		t.Fatalf("2x2 = %v, want 2", got)
	}
	// 3x3: surface 12, dims 2 -> 3.
	if got := MoonAsymptotic([]uint32{3, 3}); got != 3 {
		t.Fatalf("3x3 = %v", got)
	}
	// 2x2x2 cube in 3D: surface 24, 2d = 6 -> 4.
	if got := MoonAsymptotic([]uint32{2, 2, 2}); got != 4 {
		t.Fatalf("2x2x2 = %v", got)
	}
	// Degenerate 1x1: surface 4 -> 1.
	if got := MoonAsymptotic([]uint32{1, 1}); got != 1 {
		t.Fatalf("1x1 = %v", got)
	}
	if got := MoonAsymptotic(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

// TestMoonMatchesMeasuredForConstantQueries verifies the Moon et al. /
// TODS 2014 asymptotics on our curves. For symmetric curves (Hilbert,
// onion) the per-shape exact average approaches surface/(2d) directly.
// Directionally-biased continuous curves (snake, peano) approach it only
// after averaging a shape with its transpose (a snake answers a w x h
// query with ~h clusters, its transpose with ~w; the mean is the Moon
// value) — measuring that distinction is itself a useful regression test.
func TestMoonMatchesMeasuredForConstantQueries(t *testing.T) {
	shapes := [][]uint32{{2, 2}, {3, 3}, {2, 4}, {5, 3}}
	side := uint32(256)
	o, _ := core.NewOnion2D(side)
	h, _ := baseline.NewHilbert(2, side)
	s, _ := baseline.NewSnake(2, side)
	p, _ := baseline.NewPeano(2, 243)
	for _, shape := range shapes {
		want := MoonAsymptotic(shape)
		for _, c := range []curve.Curve{o, h} {
			got, err := cluster.AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 0.05*want+0.05 {
				t.Errorf("%s shape %v: measured %.4f, Moon asymptotic %.4f",
					c.Name(), shape, got, want)
			}
		}
		transposed := []uint32{shape[1], shape[0]}
		for _, c := range []curve.Curve{s, p} {
			a, err := cluster.AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			b, err := cluster.AverageExact(c, transposed)
			if err != nil {
				t.Fatal(err)
			}
			got := (a + b) / 2
			if math.Abs(got-want) > 0.05*want+0.05 {
				t.Errorf("%s shape %v (orientation-averaged): measured %.4f, Moon %.4f",
					c.Name(), shape, got, want)
			}
		}
	}
}
