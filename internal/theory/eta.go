package theory

import "fmt"

// Approximation-ratio formulas behind Tables I and II (Sections V-D and
// VI-C). eta(Q, pi) = c(Q, pi) / OPT(Q); the paper bounds it by
// 2 * c(Q, O) / LB where LB is the continuous lower bound.

// EtaOnion2DCube is the case III bound for d = 2 cube query sets with side
// l = phi * sqrt(n), 0 < phi <= 1/2:
//
//	eta(phi) = 2 * (1 + phi(1/2-phi) / (1 - (5/2)phi + (5/3)phi^2))
//
// The denominator in the available text of the paper is OCR-garbled
// ("1 − 5/2 φ2 + 5/3 φ2"); the form above is the unique reading that
// reproduces the paper's stated maximum 2.32 at phi = 0.355.
func EtaOnion2DCube(phi float64) (float64, error) {
	if phi <= 0 || phi > 0.5 {
		return 0, fmt.Errorf("%w: phi=%v not in (0, 1/2]", ErrRange, phi)
	}
	den := 1 - 2.5*phi + (5.0/3.0)*phi*phi
	return 2 * (1 + phi*(0.5-phi)/den), nil
}

// MaxEtaOnion2DCube returns the maximizing phi and the maximum of
// EtaOnion2DCube over (0, 1/2] — the paper's headline 2.32 (Table I).
func MaxEtaOnion2DCube() (phi, eta float64) {
	return maximize(func(p float64) float64 {
		v, err := EtaOnion2DCube(p)
		if err != nil {
			return 0
		}
		return v
	}, 1e-6, 0.5)
}

// EtaOnion3DCube is the case III bound for d = 3 cube query sets with side
// l = phi * cbrt(n), 0 < phi <= 1/2:
//
//	eta(phi) = 2 + (3/4) phi (1/2-phi)(4+3phi) /
//	           ((1-phi)^3 + (phi/40)(29 phi^2 + (75/2) phi - 30))
func EtaOnion3DCube(phi float64) (float64, error) {
	if phi <= 0 || phi > 0.5 {
		return 0, fmt.Errorf("%w: phi=%v not in (0, 1/2]", ErrRange, phi)
	}
	num := 0.75 * phi * (0.5 - phi) * (4 + 3*phi)
	den := (1-phi)*(1-phi)*(1-phi) + (phi/40)*(29*phi*phi+37.5*phi-30)
	return 2 + num/den, nil
}

// MaxEtaOnion3DCube returns the maximizing phi and maximum of
// EtaOnion3DCube — the paper's 3.4 at phi = 0.3967 (Table I).
func MaxEtaOnion3DCube() (phi, eta float64) {
	return maximize(func(p float64) float64 {
		v, err := EtaOnion3DCube(p)
		if err != nil {
			return 0
		}
		return v
	}, 1e-6, 0.5)
}

// EtaOnion2DCaseII is the case II bound (0 < mu < 1): 1 + phi2/phi1 for
// l1 <= l2 growing like phi_i * n^(mu/2).
func EtaOnion2DCaseII(phi1, phi2 float64) (float64, error) {
	if phi1 <= 0 || phi2 < phi1 {
		return 0, fmt.Errorf("%w: need 0 < phi1 <= phi2", ErrRange)
	}
	return 1 + phi2/phi1, nil
}

// EtaOnion2DCaseIV is the case IV bound (mu = 1, 1/2 < phi1 <= phi2 < 1):
// 2 + 3((phi2-phi1)/(1-phi2))^2.
func EtaOnion2DCaseIV(phi1, phi2 float64) (float64, error) {
	if !(0.5 < phi1 && phi1 <= phi2 && phi2 < 1) {
		return 0, fmt.Errorf("%w: need 1/2 < phi1 <= phi2 < 1", ErrRange)
	}
	r := (phi2 - phi1) / (1 - phi2)
	return 2 + 3*r*r, nil
}

// EtaOnion2DCaseV is the case V bound (mu = 1, phi = 1, side l_i = sqrt(n)
// + psi_i with constants psi1 <= psi2 <= 0): 2 + 3((psi2-psi1)/(1-psi2))^2.
func EtaOnion2DCaseV(psi1, psi2 float64) (float64, error) {
	if !(psi1 <= psi2 && psi2 <= 0) {
		return 0, fmt.Errorf("%w: need psi1 <= psi2 <= 0", ErrRange)
	}
	r := (psi2 - psi1) / (1 - psi2)
	return 2 + 3*r*r, nil
}

// EtaOnion3DCaseV is the case V bound for d = 3 (l = cbrt(n) + psi):
//
//	eta <= 2 + (95/6) / (-psi - 3/2)
//
// re-derived from 2*(3/5 L^2 + 13/4 L)/(3/5 L^2 - 3/2 L) with L = 1 - psi
// (the text's "9/56" is an OCR garble of 95/6; the re-derived constant
// reproduces the paper's check that eta <= 3 for psi <= -20).
func EtaOnion3DCaseV(psi float64) (float64, error) {
	if psi > -2 {
		return 0, fmt.Errorf("%w: need psi <= -2", ErrRange)
	}
	return 2 + (95.0/6.0)/(-psi-1.5), nil
}

// HilbertCubeLowerBound is Lemma 5: for cube queries of side l = s - O(1),
// the Hilbert curve's average clustering number grows as
// Omega(n^((d-1)/d)); the returned value is the growth exponent.
func HilbertCubeLowerBound(d int) float64 {
	return float64(d-1) / float64(d)
}

// maximize performs a golden-section search for the maximum of f on [a, b]
// (f unimodal on the formulas above).
func maximize(f func(float64) float64, a, b float64) (x, fx float64) {
	const phi = 0.6180339887498949
	for i := 0; i < 200; i++ {
		d := (b - a) * phi
		x1, x2 := b-d, a+d
		if f(x1) < f(x2) {
			a = x1
		} else {
			b = x2
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// TableIIRow is one row of the paper's Table II: the approximation ratios
// of the onion and Hilbert curves for a family of near-cube query sets.
type TableIIRow struct {
	Case       string // the mu/phi/psi regime
	Eta2D      string // eta(Q, O), d=2, l1 <= l2
	Eta2DCube  string // eta(Q, O), d=2, l1 = l2
	Eta3DCube  string // eta(Q, O), d=3, cubes
	EtaHilbert string // eta(Q, H), d in {2,3}
}

// TableII reproduces Table II, evaluating the numeric entries from the
// formulas above.
func TableII() []TableIIRow {
	_, max2 := MaxEtaOnion2DCube()
	_, max3 := MaxEtaOnion3DCube()
	return []TableIIRow{
		{
			Case:       "mu = 0",
			Eta2D:      "1",
			Eta2DCube:  "1",
			Eta3DCube:  "1",
			EtaHilbert: "1",
		},
		{
			Case:       "0 < mu < 1",
			Eta2D:      "1 + phi2/phi1",
			Eta2DCube:  "2",
			Eta3DCube:  "2",
			EtaHilbert: "unknown",
		},
		{
			Case:       "mu = 1, 0 < phi1 <= phi2 <= 1/2",
			Eta2D:      "O(1)",
			Eta2DCube:  fmt.Sprintf("<= %.2f", max2),
			Eta3DCube:  fmt.Sprintf("<= %.1f", max3),
			EtaHilbert: "unknown",
		},
		{
			Case:       "mu = 1, 1/2 < phi1 <= phi2 < 1",
			Eta2D:      "<= 2 + 3((phi2-phi1)/(1-phi2))^2",
			Eta2DCube:  "2",
			Eta3DCube:  "2",
			EtaHilbert: "unknown",
		},
		{
			Case:       "mu = 1, phi1 = phi2 = 1",
			Eta2D:      "<= 2 + 3((psi2-psi1)/(1-psi2))^2",
			Eta2DCube:  "2",
			Eta3DCube:  "<= 3",
			EtaHilbert: "Omega(n^((d-1)/d))",
		},
	}
}
