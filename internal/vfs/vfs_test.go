package vfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func TestOSPassthrough(t *testing.T) {
	fs := OS{}
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(sub, "f1")
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(p, p+".new"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, p+".new")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir %v %v", ents, err)
	}
	if err := fs.Remove(p + ".new"); err != nil {
		t.Fatal(err)
	}
}

func TestInjectingNthOpAndCategories(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjecting(OS{})
	// Count-only rule: N = 0 never fires.
	fs.SetFaults(Fault{Op: OpWrite})
	f, err := fs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		writeAll(t, f, []byte("abcd"))
	}
	if got := fs.Matched(0); got != 5 {
		t.Fatalf("matched %d, want 5", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Fail exactly the 3rd write.
	fs = NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpWrite, N: 3, Kind: KindFail})
	f, err = fs.Create(filepath.Join(dir, "y"))
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	for k := 0; k < 5; k++ {
		if _, err := f.Write([]byte("abcd")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures %d, want 1", failures)
	}
	if inj := fs.Injected(); inj[KindFail] != 1 {
		t.Fatalf("injected %v", inj)
	}
	f.Close()
}

func TestInjectingENOSPC(t *testing.T) {
	fs := NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpSync, N: 1, Kind: KindNoSpace})
	f, err := fs.Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("abcd"))
	err = f.Sync()
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ErrInjected+ENOSPC, got %v", err)
	}
	f.Close()
}

func TestInjectingShortWrite(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x")
	fs := NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpWrite, N: 2, Kind: KindShortWrite})
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("AAAA"))
	n, err := f.Write([]byte("BBBB"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("short write n=%d err=%v", n, err)
	}
	f.Close()
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "AAAABB" {
		t.Fatalf("file %q, want torn AAAABB", got)
	}
}

func TestInjectingSyncLoss(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x")
	fs := NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpSync, N: 2, Kind: KindSyncLoss})
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("durable."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("lost!"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	f.Close()
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// fsyncgate: everything after the last successful fsync is gone.
	if string(got) != "durable." {
		t.Fatalf("file %q, want only the synced prefix", got)
	}
}

func TestInjectingCorruptRead(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x")
	want := bytes.Repeat([]byte{0x11}, 256)
	if err := os.WriteFile(p, want, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpRead, N: 1, Kind: KindCorrupt})
	f, err := fs.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, 256)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("corrupt read must not error: %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("read was not corrupted")
	}
	// The next read is clean.
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("second read should be clean")
	}
}

func TestInjectingCrash(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	fs := NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpWrite, N: 3, Kind: KindCrash})
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("synced|"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("unsynced|"))
	if _, err := f.Write([]byte("crashing")); !errors.Is(err, ErrCrashed) && !errors.Is(err, ErrInjected) {
		t.Fatalf("want crash, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash latch not set")
	}
	// Every later operation fails.
	if _, err := fs.Create(filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	// Close still releases the descriptor.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the synced prefix survived.
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced|" {
		t.Fatalf("file %q, want only the synced prefix", got)
	}
}

func TestInjectingPathFilterAndRepeat(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjecting(OS{})
	fs.SetFaults(Fault{Op: OpWrite, Path: "wal-", N: 2, Repeat: true, Kind: KindFail})
	w, err := fs.Create(filepath.Join(dir, "wal-000.log"))
	if err != nil {
		t.Fatal(err)
	}
	o, err := fs.Create(filepath.Join(dir, "seg-000.pst"))
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	for k := 0; k < 6; k++ {
		if _, err := w.Write([]byte("x")); err != nil {
			failures++
		}
		// Non-matching path never fails.
		if _, err := o.Write([]byte("x")); err != nil {
			t.Fatalf("segment write failed: %v", err)
		}
	}
	if failures != 3 { // writes 2, 4, 6
		t.Fatalf("failures %d, want 3", failures)
	}
	w.Close()
	o.Close()
}
