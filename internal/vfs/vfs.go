// Package vfs is the storage stack's seam to the filesystem: a small
// interface over the handful of operations the engine, the paged store
// and the shard manifest actually perform, with a passthrough OS
// implementation for production and an Injecting implementation that
// turns every operation into a deterministic fault point — fail the Nth
// operation, run out of space, tear a write short, lose unsynced bytes
// on a failed fsync (fsyncgate semantics), flip bits on the read path,
// or crash the process's view of the disk outright.
//
// The interface is deliberately narrow. Everything above it is
// append-or-replace: files are written sequentially and fsynced, then
// read with positioned reads; directories change by create, atomic
// rename and remove, made durable with a directory fsync. Those are the
// only primitives a crash-consistent store needs, and the only ones a
// fault matrix needs to enumerate.
package vfs

import (
	"io"
	"os"
)

// File is an open file. Writers append sequentially with Write and make
// the data durable with Sync; readers use positioned ReadAt calls (no
// shared offset, safe for concurrent use). Truncate exists for the
// fault injector's unsynced-data loss model; production code never
// calls it.
type File interface {
	io.ReaderAt
	io.Writer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// FS is the filesystem surface of the storage stack.
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making its entry updates (renames,
	// removes, creates) durable.
	SyncDir(name string) error
}

// Linker is the optional hardlink capability of an FS. Snapshot export
// links segments into the snapshot directory when the filesystem offers
// it (same-device, copy-free) and falls back to a byte copy when it
// doesn't. The fault injector deliberately does not implement Linker, so
// fault-matrix tests always exercise the fully injectable copy path.
type Linker interface {
	// Link creates newname as a hard link to oldname.
	Link(oldname, newname string) error
}

// OS is the passthrough production filesystem.
type OS struct{}

func (OS) Open(name string) (File, error)   { return os.Open(name) }
func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}
func (OS) Rename(oldname, newname string) error      { return os.Rename(oldname, newname) }
func (OS) Link(oldname, newname string) error        { return os.Link(oldname, newname) }
func (OS) Remove(name string) error                  { return os.Remove(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (OS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads the whole file at name through fs.
func ReadFile(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// Or returns fs, or the passthrough OS filesystem when fs is nil — the
// idiom option structs use to make the zero value production-ready.
func Or(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}
