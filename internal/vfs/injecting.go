package vfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

var (
	// ErrInjected reports a fault injected by an Injecting filesystem.
	// Every injected failure wraps it, so callers (and tests) can
	// distinguish deliberate faults from real ones with errors.Is.
	ErrInjected = errors.New("vfs: injected fault")
	// ErrCrashed reports an operation attempted after an injected crash:
	// the filesystem's view is frozen at the crash point and every later
	// operation fails, the way a dead process can no longer touch disk.
	ErrCrashed = errors.New("vfs: filesystem crashed")
)

// Op classifies a filesystem operation for fault matching.
type Op uint8

const (
	// OpAny matches every operation.
	OpAny Op = iota
	OpOpen
	OpCreate
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpReadDir
	OpMkdir
	OpSyncDir
	opCount
)

var opNames = [...]string{"any", "open", "create", "read", "write", "sync",
	"rename", "remove", "readdir", "mkdir", "syncdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Kind is the failure mode an injected fault produces.
type Kind uint8

const (
	// KindFail makes the operation fail with ErrInjected; nothing is
	// written or read.
	KindFail Kind = iota
	// KindNoSpace makes the operation fail with an error satisfying both
	// errors.Is(err, ErrInjected) and errors.Is(err, syscall.ENOSPC).
	KindNoSpace
	// KindShortWrite writes only the first half of the buffer, then
	// fails — a torn write.
	KindShortWrite
	// KindSyncLoss makes Sync fail AND discards every byte written since
	// the last successful Sync (fsyncgate semantics: after a failed
	// fsync the dirty pages are gone, and retrying the fsync cannot
	// bring them back).
	KindSyncLoss
	// KindCorrupt lets a read succeed but flips bits in the returned
	// buffer — silent on-the-wire corruption the reader must detect
	// itself (checksums), because no error is reported.
	KindCorrupt
	// KindCrash simulates process death at this operation: the operation
	// fails, every unsynced byte of every open file is discarded, and
	// all later operations fail with ErrCrashed. The surviving file
	// state is exactly what a post-crash reopen would find.
	KindCrash
	kindCount
)

var kindNames = [...]string{"fail", "enospc", "shortwrite", "syncloss", "corrupt", "crash"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one injection rule: the Kind fires on the Nth operation
// matching Op and Path.
type Fault struct {
	// Op restricts the rule to one operation class (OpAny matches all).
	Op Op
	// Path restricts the rule to paths containing this substring ("" =
	// every path).
	Path string
	// N fires the rule on the Nth (1-based) matching operation. N <= 0
	// never fires — the rule only counts, which is how a fault matrix
	// enumerates its injection points before iterating over them.
	N int64
	// Repeat re-fires the rule on every further multiple of N (soak
	// mode: every Nth matching operation fails).
	Repeat bool
	// Kind is the failure mode.
	Kind Kind
}

// Injecting wraps a base filesystem and injects deterministic faults.
// All methods are safe for concurrent use; operations are counted in a
// single serialized order, so a fixed workload enumerates fault points
// reproducibly.
type Injecting struct {
	base FS

	mu       sync.Mutex
	rules    []faultState
	crashed  atomic.Bool // mirrors the latch for lock-free re-checks
	injected [kindCount]int64
	open     map[*injFile]struct{}
}

type faultState struct {
	Fault
	matched int64
}

// NewInjecting wraps base with no active faults: every operation passes
// through (and is counted once rules are set).
func NewInjecting(base FS) *Injecting {
	return &Injecting{base: base, open: map[*injFile]struct{}{}}
}

// SetFaults replaces the active rules and resets their match counters.
// The crash latch is NOT reset — a crashed filesystem stays crashed.
func (i *Injecting) SetFaults(faults ...Fault) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = i.rules[:0]
	for _, f := range faults {
		i.rules = append(i.rules, faultState{Fault: f})
	}
}

// Matched returns how many operations rule r has matched since
// SetFaults — with N <= 0 rules, the enumeration count of a recorded
// workload's fault points.
func (i *Injecting) Matched(r int) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	if r < 0 || r >= len(i.rules) {
		return 0
	}
	return i.rules[r].matched
}

// Injected returns how many faults of each kind have fired.
func (i *Injecting) Injected() map[Kind]int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]int64)
	for k := Kind(0); k < kindCount; k++ {
		if i.injected[k] > 0 {
			out[k] = i.injected[k]
		}
	}
	return out
}

// Crashed reports whether an injected crash has fired.
func (i *Injecting) Crashed() bool { return i.crashed.Load() }

// decide serializes one operation: it returns the fault kind to inject
// (ok=false for a clean passthrough), or an error if the filesystem has
// already crashed. A firing KindCrash latches the crash and discards
// unsynced data of every open file before returning.
func (i *Injecting) decide(op Op, path string) (Kind, bool, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed.Load() {
		return 0, false, fmt.Errorf("%w: %s %s", ErrCrashed, op, path)
	}
	fire := -1
	for r := range i.rules {
		rule := &i.rules[r]
		if rule.Op != OpAny && rule.Op != op {
			continue
		}
		if rule.Path != "" && !strings.Contains(path, rule.Path) {
			continue
		}
		rule.matched++
		if rule.N > 0 && fire < 0 {
			if rule.matched == rule.N || (rule.Repeat && rule.matched%rule.N == 0) {
				fire = r
			}
		}
	}
	if fire < 0 {
		return 0, false, nil
	}
	k := i.rules[fire].Kind
	i.injected[k]++
	if k == KindCrash {
		i.crashed.Store(true)
		for f := range i.open {
			f.crashDrop()
		}
	}
	return k, true, nil
}

func failErr(k Kind, op Op, path string) error {
	if k == KindNoSpace {
		return fmt.Errorf("%s %s: %w", op, path, errors.Join(ErrInjected, syscall.ENOSPC))
	}
	if k == KindCrash {
		return fmt.Errorf("%s %s: %w", op, path, errors.Join(ErrInjected, ErrCrashed))
	}
	return fmt.Errorf("%s %s: %w", op, path, ErrInjected)
}

func (i *Injecting) Open(name string) (File, error) {
	k, hit, err := i.decide(OpOpen, name)
	if err != nil {
		return nil, err
	}
	if hit {
		return nil, failErr(k, OpOpen, name)
	}
	f, err := i.base.Open(name)
	if err != nil {
		return nil, err
	}
	return i.track(f, name, false), nil
}

func (i *Injecting) Create(name string) (File, error) {
	k, hit, err := i.decide(OpCreate, name)
	if err != nil {
		return nil, err
	}
	if hit {
		return nil, failErr(k, OpCreate, name)
	}
	f, err := i.base.Create(name)
	if err != nil {
		return nil, err
	}
	return i.track(f, name, true), nil
}

func (i *Injecting) track(f File, name string, writable bool) *injFile {
	inf := &injFile{fs: i, f: f, path: name, writable: writable}
	i.mu.Lock()
	i.open[inf] = struct{}{}
	i.mu.Unlock()
	return inf
}

func (i *Injecting) Rename(oldname, newname string) error {
	k, hit, err := i.decide(OpRename, newname)
	if err != nil {
		return err
	}
	if hit {
		return failErr(k, OpRename, newname)
	}
	return i.base.Rename(oldname, newname)
}

func (i *Injecting) Remove(name string) error {
	k, hit, err := i.decide(OpRemove, name)
	if err != nil {
		return err
	}
	if hit {
		return failErr(k, OpRemove, name)
	}
	return i.base.Remove(name)
}

func (i *Injecting) ReadDir(name string) ([]os.DirEntry, error) {
	k, hit, err := i.decide(OpReadDir, name)
	if err != nil {
		return nil, err
	}
	if hit {
		return nil, failErr(k, OpReadDir, name)
	}
	return i.base.ReadDir(name)
}

func (i *Injecting) MkdirAll(name string, perm os.FileMode) error {
	k, hit, err := i.decide(OpMkdir, name)
	if err != nil {
		return err
	}
	if hit {
		return failErr(k, OpMkdir, name)
	}
	return i.base.MkdirAll(name, perm)
}

func (i *Injecting) SyncDir(name string) error {
	k, hit, err := i.decide(OpSyncDir, name)
	if err != nil {
		return err
	}
	if hit {
		return failErr(k, OpSyncDir, name)
	}
	return i.base.SyncDir(name)
}

// injFile wraps a file with fault decisions and the synced-byte
// tracking the unsynced-loss model needs. Writes in this stack are
// sequential appends, so "unsynced data" is exactly the byte range
// between the last successful Sync and the current size.
type injFile struct {
	fs       *Injecting
	f        File
	path     string
	writable bool

	wmu    sync.Mutex // serializes size accounting (callers already serialize writes)
	size   int64
	synced int64
}

// dropUnsyncedLocked truncates the file back to its last durable size.
// Caller holds wmu.
func (f *injFile) dropUnsyncedLocked() {
	if !f.writable || f.size == f.synced {
		return
	}
	// Best effort: the underlying file still works after an injected
	// crash — only the modeled filesystem is dead.
	if err := f.f.Truncate(f.synced); err == nil {
		f.size = f.synced
	}
}

// crashDrop applies the crash latch's unsynced-data loss to one open
// file. Safe to call while the Injecting lock is held: file methods
// never wait on that lock while holding wmu.
func (f *injFile) crashDrop() {
	f.wmu.Lock()
	f.dropUnsyncedLocked()
	f.wmu.Unlock()
}

func (f *injFile) Write(p []byte) (int, error) {
	k, hit, err := f.fs.decide(OpWrite, f.path)
	if err != nil {
		return 0, err
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.fs.crashed.Load() {
		// The crash latch fired between the decision and the write; a
		// dead process cannot write.
		return 0, fmt.Errorf("%w: write %s", ErrCrashed, f.path)
	}
	if hit {
		switch k {
		case KindShortWrite:
			n, werr := f.f.Write(p[:len(p)/2])
			f.size += int64(n)
			if werr != nil {
				return n, werr
			}
			return n, failErr(KindShortWrite, OpWrite, f.path)
		case KindCrash:
			// The crash latch already dropped unsynced data; this write
			// never lands.
			return 0, failErr(k, OpWrite, f.path)
		default:
			return 0, failErr(k, OpWrite, f.path)
		}
	}
	n, err := f.f.Write(p)
	f.size += int64(n)
	return n, err
}

func (f *injFile) Sync() error {
	k, hit, err := f.fs.decide(OpSync, f.path)
	if err != nil {
		return err
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if f.fs.crashed.Load() {
		return fmt.Errorf("%w: sync %s", ErrCrashed, f.path)
	}
	if hit {
		if k == KindSyncLoss || k == KindCrash {
			f.dropUnsyncedLocked()
		}
		return failErr(k, OpSync, f.path)
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.synced = f.size
	return nil
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	k, hit, err := f.fs.decide(OpRead, f.path)
	if err != nil {
		return 0, err
	}
	if hit && k != KindCorrupt {
		return 0, failErr(k, OpRead, f.path)
	}
	n, err := f.f.ReadAt(p, off)
	if hit && k == KindCorrupt && n > 0 {
		// Silent corruption: flip bits across the returned buffer. No
		// error — detecting this is the reader's job.
		for i := 0; i < n; i += 61 {
			p[i] ^= 0xa5
		}
	}
	return n, err
}

func (f *injFile) Truncate(size int64) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.size = size
	if f.synced > size {
		f.synced = size
	}
	return nil
}

func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }

// Close always releases the underlying descriptor — even after a crash,
// so abandoned engines do not leak file handles — and is not a fault
// point.
func (f *injFile) Close() error {
	f.fs.mu.Lock()
	delete(f.fs.open, f)
	f.fs.mu.Unlock()
	return f.f.Close()
}
