package bptree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func TestBulkLoadBasic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 63, 64, 65, 1000, 4096} {
		for _, order := range []int{4, 8, 64} {
			keys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(i * 3)
				vals[i] = uint64(i)
			}
			tr, err := BulkLoad(order, keys, vals)
			if err != nil {
				t.Fatalf("n=%d order=%d: %v", n, order, err)
			}
			if tr.Len() != n {
				t.Fatalf("n=%d order=%d: len %d", n, order, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d order=%d: %v", n, order, err)
			}
			for i := range keys {
				if v, ok := tr.Get(keys[i]); !ok || v != vals[i] {
					t.Fatalf("n=%d: Get(%d) = %d, %v", n, keys[i], v, ok)
				}
			}
		}
	}
}

func TestBulkLoadWithDuplicates(t *testing.T) {
	keys := []uint64{1, 1, 1, 5, 5, 9}
	vals := []uint64{10, 11, 12, 50, 51, 90}
	tr, err := BulkLoad(4, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	tr.RangeScan(1, 1, func(k, v uint64) bool { got++; return true })
	if got != 3 {
		t.Fatalf("dups = %d", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(4, []uint64{2, 1}, []uint64{0, 0}); !errors.Is(err, ErrUnsorted) {
		t.Error("unsorted accepted")
	}
	if _, err := BulkLoad(4, []uint64{1}, []uint64{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BulkLoad(2, nil, nil); !errors.Is(err, ErrOrder) {
		t.Error("bad order accepted")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	// A bulk-loaded tree must behave identically to an insert-built one
	// under subsequent operations.
	const n = 2000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 2)
		vals[i] = uint64(i)
	}
	tr, err := BulkLoad(8, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	model := map[uint64]bool{}
	for i := range keys {
		model[keys[i]] = true
	}
	for op := 0; op < 2000; op++ {
		k := uint64(rng.Intn(2 * n))
		if rng.Intn(2) == 0 {
			tr.Insert(k, k)
			model[k] = true
		} else {
			_, ok := tr.Delete(k)
			if !ok {
				if model[k] {
					t.Fatalf("delete(%d) failed but model has it", k)
				}
			}
			// model bookkeeping: only flip when the tree agreed.
			if ok && !model[k] {
				t.Fatalf("delete(%d) succeeded but model lacks it", k)
			}
			if ok {
				// Tree may hold duplicates from prior inserts; model
				// tracks presence only — resync below.
				stillHas := tr.Has(k)
				model[k] = stillHas
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var treeKeys []uint64
	tr.RangeScan(0, ^uint64(0), func(k, v uint64) bool {
		treeKeys = append(treeKeys, k)
		return true
	})
	if !sort.SliceIsSorted(treeKeys, func(i, j int) bool { return treeKeys[i] < treeKeys[j] }) {
		t.Fatal("scan out of order after mutations")
	}
}

func TestBulkLoadLeafPacking(t *testing.T) {
	// Bulk-loaded leaves should be near-full: leaf count close to
	// n / maxEntries, far fewer than worst-case insert splits produce.
	const n = 10_000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	tr, err := BulkLoad(64, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	leaves := 0
	tr.Leaves(func(int) bool { leaves++; return true })
	ideal := (n + tr.maxEntries() - 1) / tr.maxEntries()
	if leaves > ideal+1 {
		t.Fatalf("bulk-loaded leaves = %d, ideal %d", leaves, ideal)
	}
}
