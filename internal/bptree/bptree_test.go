package bptree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func mustTree(t *testing.T, order int) *Tree {
	t.Helper()
	tr, err := New(order)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3); !errors.Is(err, ErrOrder) {
		t.Error("order 3 accepted")
	}
	if _, err := New(4); err != nil {
		t.Errorf("order 4 rejected: %v", err)
	}
}

func TestInsertGet(t *testing.T) {
	tr := mustTree(t, 4)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i*2, i*100)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tr.Get(i * 2)
		if !ok || v != i*100 {
			t.Fatalf("Get(%d) = %d, %v", i*2, v, ok)
		}
		if tr.Has(i*2 + 1) {
			t.Fatalf("Has(%d) true", i*2+1)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDescending(t *testing.T) {
	tr := mustTree(t, 5)
	for i := 1000; i > 0; i-- {
		tr.Insert(uint64(i), uint64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	n := tr.RangeScan(0, ^uint64(0), func(k, v uint64) bool {
		if k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		return true
	})
	if n != 1000 {
		t.Fatalf("scanned %d", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := mustTree(t, 4)
	for i := uint64(0); i < 50; i++ {
		tr.Insert(7, i)
		tr.Insert(9, i+1000)
	}
	if tr.Len() != 100 {
		t.Fatal("len")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count7 := 0
	tr.RangeScan(7, 7, func(k, v uint64) bool {
		if k != 7 {
			t.Fatalf("scan leaked key %d", k)
		}
		count7++
		return true
	})
	if count7 != 50 {
		t.Fatalf("found %d entries for key 7", count7)
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := mustTree(t, 6)
	for i := uint64(0); i < 100; i += 10 {
		tr.Insert(i, i)
	}
	var got []uint64
	tr.RangeScan(15, 55, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Early stop.
	visits := 0
	tr.RangeScan(0, 100, func(k, v uint64) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("early stop visited %d", visits)
	}
	// Empty range.
	if n := tr.RangeScan(41, 49, func(k, v uint64) bool { return true }); n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
	// Range past the end.
	if n := tr.RangeScan(1000, 2000, func(k, v uint64) bool { return true }); n != 0 {
		t.Fatalf("past-end range visited %d", n)
	}
}

func TestDeleteSimple(t *testing.T) {
	tr := mustTree(t, 4)
	for i := uint64(0); i < 200; i++ {
		tr.Insert(i, i*3)
	}
	for i := uint64(0); i < 200; i += 2 {
		v, ok := tr.Delete(i)
		if !ok || v != i*3 {
			t.Fatalf("Delete(%d) = %d, %v", i, v, ok)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		want := i%2 == 1
		if tr.Has(i) != want {
			t.Fatalf("Has(%d) = %v", i, !want)
		}
	}
	if _, ok := tr.Delete(1000); ok {
		t.Fatal("deleted missing key")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := mustTree(t, 4)
	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Insert(uint64(i), uint64(i))
	}
	perm2 := rand.New(rand.NewSource(2)).Perm(n)
	for idx, i := range perm2 {
		if _, ok := tr.Delete(uint64(i)); !ok {
			t.Fatalf("delete %d failed", i)
		}
		if idx%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", idx+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Tree must remain usable.
	tr.Insert(42, 7)
	if v, ok := tr.Get(42); !ok || v != 7 {
		t.Fatal("tree unusable after full drain")
	}
}

func TestDeleteDuplicates(t *testing.T) {
	tr := mustTree(t, 4)
	for i := uint64(0); i < 30; i++ {
		tr.Insert(5, i)
	}
	for i := 0; i < 30; i++ {
		if _, ok := tr.Delete(5); !ok {
			t.Fatalf("delete dup %d failed", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after %d dup deletes: %v", i+1, err)
		}
	}
	if tr.Has(5) || tr.Len() != 0 {
		t.Fatal("duplicates not fully removed")
	}
}

// opModel runs a randomized sequence of operations against both the tree
// and a reference multimap, verifying agreement and invariants.
func TestRandomizedAgainstModel(t *testing.T) {
	for _, order := range []int{4, 5, 8, 32} {
		tr := mustTree(t, order)
		model := map[uint64][]uint64{} // key -> multiset of values
		rng := rand.New(rand.NewSource(int64(order)))
		size := 0
		for op := 0; op < 4000; op++ {
			k := uint64(rng.Intn(300))
			switch rng.Intn(3) {
			case 0, 1: // insert twice as often as delete
				v := uint64(rng.Int63())
				tr.Insert(k, v)
				model[k] = append(model[k], v)
				size++
			case 2:
				_, ok := tr.Delete(k)
				if ok != (len(model[k]) > 0) {
					t.Fatalf("order %d op %d: delete(%d) disagreement", order, op, k)
				}
				if ok {
					model[k] = model[k][1:] // tree deletes one occurrence
					size--
				}
			}
			if tr.Len() != size {
				t.Fatalf("order %d: len %d vs model %d", order, tr.Len(), size)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		// Full scan must produce exactly the model's keys, sorted.
		var wantKeys []uint64
		for k, vs := range model {
			for range vs {
				wantKeys = append(wantKeys, k)
			}
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		var gotKeys []uint64
		tr.RangeScan(0, ^uint64(0), func(k, v uint64) bool {
			gotKeys = append(gotKeys, k)
			return true
		})
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("order %d: scan %d keys, model %d", order, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("order %d: key %d: %d vs %d", order, i, gotKeys[i], wantKeys[i])
			}
		}
	}
}

func TestRandomRangeScansAgainstModel(t *testing.T) {
	tr := mustTree(t, 8)
	var keys []uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(5000))
		tr.Insert(k, k)
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for trial := 0; trial < 200; trial++ {
		lo := uint64(rng.Intn(5200))
		hi := lo + uint64(rng.Intn(1000))
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := tr.RangeScan(lo, hi, func(k, v uint64) bool {
			if k < lo || k > hi {
				t.Fatalf("scan [%d,%d] leaked %d", lo, hi, k)
			}
			return true
		})
		if got != want {
			t.Fatalf("scan [%d,%d] = %d entries, want %d", lo, hi, got, want)
		}
	}
}

func TestLeaves(t *testing.T) {
	tr := mustTree(t, 4)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	total := 0
	leaves := 0
	tr.Leaves(func(entries int) bool {
		total += entries
		leaves++
		return true
	})
	if total != 100 {
		t.Fatalf("leaf entries sum to %d", total)
	}
	if leaves < 100/3 {
		t.Fatalf("implausibly few leaves: %d", leaves)
	}
	// Early stop.
	count := 0
	tr.Leaves(func(int) bool { count++; return false })
	if count != 1 {
		t.Fatal("early stop ignored")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := mustTree(t, 4)
	if tr.Len() != 0 {
		t.Fatal("len")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("get on empty")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("delete on empty")
	}
	if n := tr.RangeScan(0, 100, func(k, v uint64) bool { return true }); n != 0 {
		t.Fatal("scan on empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeKeys(t *testing.T) {
	tr := mustTree(t, 4)
	tr.Insert(0, 1)
	tr.Insert(^uint64(0), 2)
	if v, ok := tr.Get(0); !ok || v != 1 {
		t.Fatal("key 0")
	}
	if v, ok := tr.Get(^uint64(0)); !ok || v != 2 {
		t.Fatal("max key")
	}
	n := tr.RangeScan(0, ^uint64(0), func(k, v uint64) bool { return true })
	if n != 2 {
		t.Fatalf("full scan = %d", n)
	}
}

func TestDeleteValue(t *testing.T) {
	tr := mustTree(t, 4)
	for i := uint64(0); i < 40; i++ {
		tr.Insert(7, i)
	}
	tr.Insert(6, 100)
	tr.Insert(8, 200)
	// Delete specific values out of the duplicate run.
	for _, v := range []uint64{39, 0, 20, 21} {
		if !tr.DeleteValue(7, v) {
			t.Fatalf("DeleteValue(7, %d) failed", v)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.DeleteValue(7, 39) {
		t.Fatal("re-delete succeeded")
	}
	if tr.DeleteValue(9, 1) {
		t.Fatal("missing key deleted")
	}
	remaining := map[uint64]bool{}
	tr.RangeScan(7, 7, func(k, v uint64) bool {
		remaining[v] = true
		return true
	})
	if len(remaining) != 36 {
		t.Fatalf("%d values remain, want 36", len(remaining))
	}
	for _, v := range []uint64{39, 0, 20, 21} {
		if remaining[v] {
			t.Fatalf("value %d still present", v)
		}
	}
	if v, ok := tr.Get(6); !ok || v != 100 {
		t.Fatal("neighbor keys disturbed")
	}
}

func TestDeleteValueRandomizedAgainstModel(t *testing.T) {
	tr := mustTree(t, 4)
	type entry struct{ k, v uint64 }
	var model []entry
	rng := rand.New(rand.NewSource(77))
	for op := 0; op < 3000; op++ {
		k := uint64(rng.Intn(40)) // few keys -> long duplicate runs
		if rng.Intn(3) != 0 {
			v := uint64(rng.Intn(50))
			tr.Insert(k, v)
			model = append(model, entry{k, v})
		} else {
			v := uint64(rng.Intn(50))
			got := tr.DeleteValue(k, v)
			want := false
			for i, e := range model {
				if e.k == k && e.v == v {
					model = append(model[:i], model[i+1:]...)
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("op %d: DeleteValue(%d,%d) = %v, want %v", op, k, v, got, want)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: len %d vs model %d", op, tr.Len(), len(model))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
