// Package bptree implements an in-memory B+-tree keyed by uint64 space
// filling curve positions. It is the storage substrate behind the SFC
// spatial index (internal/index): all entries live in leaves, leaves are
// chained for sequential range scans, and the tree supports duplicate keys
// (several points may fall in the same grid cell).
//
// The implementation uses preemptive splitting on the way down for inserts
// and recursive borrow/merge rebalancing for deletes; every structural
// invariant is checkable via CheckInvariants, which the tests run after
// randomized operation sequences.
package bptree

import (
	"errors"
	"fmt"
)

// ErrOrder reports an unsupported branching factor.
var ErrOrder = errors.New("bptree: order must be at least 4")

// Tree is a B+-tree mapping uint64 keys to uint64 values.
type Tree struct {
	root  *node
	order int // max children of an internal node; max entries of a leaf is order-1
	size  int
}

type node struct {
	leaf     bool
	keys     []uint64
	children []*node  // internal nodes only
	vals     []uint64 // leaves only
	next     *node    // leaf chain
}

// New returns an empty tree with the given order (maximum children per
// internal node). Odd orders are rounded down to the nearest even value so
// that node splits always produce two legal halves (minimum-degree
// arithmetic: t = order/2, nodes hold between t-1 and 2t-1 entries). Order
// 64 is a reasonable default for in-memory use.
func New(order int) (*Tree, error) {
	if order < 4 {
		return nil, fmt.Errorf("%w (got %d)", ErrOrder, order)
	}
	return &Tree{root: &node{leaf: true}, order: order &^ 1}, nil
}

// Order returns the tree's branching factor as configured at creation
// (after even rounding) — the order a rebuild must reuse.
func (t *Tree) Order() int { return t.order }

// ErrUnsorted reports keys passed to BulkLoad out of order.
var ErrUnsorted = errors.New("bptree: bulk load requires keys in ascending order")

// BulkLoad builds a tree bottom-up from entries already sorted by key —
// the standard way to load a clustered index, O(n) instead of O(n log n)
// and producing maximally packed leaves.
func BulkLoad(order int, keys, vals []uint64) (*Tree, error) {
	t, err := New(order)
	if err != nil {
		return nil, err
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("bptree: %d keys but %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return t, nil
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return nil, fmt.Errorf("%w: key %d after %d", ErrUnsorted, keys[i], keys[i-1])
		}
	}
	// Build the leaf level: full leaves, with the tail rebalanced so the
	// last leaf never underflows.
	max := t.maxEntries()
	var leaves []*node
	for off := 0; off < len(keys); {
		take := max
		rest := len(keys) - off
		if rest < take {
			take = rest
		}
		// If taking `take` would leave a non-empty underfull tail,
		// equalize the final two leaves.
		if rem := rest - take; rem > 0 && rem < t.minEntries() {
			take = (rest + 1) / 2
		}
		leaf := &node{
			leaf: true,
			keys: append([]uint64(nil), keys[off:off+take]...),
			vals: append([]uint64(nil), vals[off:off+take]...),
		}
		if n := len(leaves); n > 0 {
			leaves[n-1].next = leaf
		}
		leaves = append(leaves, leaf)
		off += take
	}
	// Build internal levels until a single root remains.
	level := leaves
	maxChildren := 2 * t.degree()
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); {
			take := maxChildren
			rest := len(level) - off
			if rest < take {
				take = rest
			}
			if rem := rest - take; rem > 0 && rem < t.degree() {
				take = (rest + 1) / 2
			}
			p := &node{children: append([]*node(nil), level[off:off+take]...)}
			for i := 1; i < take; i++ {
				p.keys = append(p.keys, minKey(level[off+i]))
			}
			parents = append(parents, p)
			off += take
		}
		level = parents
	}
	t.root = level[0]
	t.size = len(keys)
	return t, nil
}

// minKey returns the smallest key in the subtree.
func minKey(n *node) uint64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// degree is the minimum degree t: non-root nodes keep at least t-1 entries
// (leaves) or t children (internal nodes), at most 2t-1 entries.
func (t *Tree) degree() int     { return t.order / 2 }
func (t *Tree) maxEntries() int { return 2*t.degree() - 1 }
func (t *Tree) minEntries() int { return t.degree() - 1 }

// Insert adds the entry (key, value). Duplicate keys are allowed; entries
// with equal keys are adjacent in scan order.
func (t *Tree) Insert(key, value uint64) {
	if t.full(t.root) {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, value)
	t.size++
}

func (t *Tree) full(n *node) bool {
	return len(n.keys) >= t.maxEntries()
}

// splitChild splits the full child i of parent p, copying (leaf) or moving
// (internal) the median key up.
func (t *Tree) splitChild(p *node, i int) {
	child := p.children[i]
	var sep uint64
	right := &node{leaf: child.leaf}
	if child.leaf {
		mid := len(child.keys) / 2
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.vals = child.vals[:mid:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		mid := len(child.keys) / 2
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	p.keys = append(p.keys, 0)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

func (t *Tree) insertNonFull(n *node, key, value uint64) {
	for !n.leaf {
		// Rightmost child whose separator admits the key: first i with
		// keys[i] > key.
		i := upperBound(n.keys, key)
		if t.full(n.children[i]) {
			t.splitChild(n, i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
	i := upperBound(n.keys, key)
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = value
}

// upperBound returns the first index i with keys[i] > key.
func upperBound(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index i with keys[i] >= key.
func lowerBound(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value of the first entry with the given key in scan
// order.
func (t *Tree) Get(key uint64) (uint64, bool) {
	l, i := t.seek(key)
	if l == nil || i >= len(l.keys) || l.keys[i] != key {
		return 0, false
	}
	return l.vals[i], true
}

// Has reports whether any entry has the given key.
func (t *Tree) Has(key uint64) bool {
	_, ok := t.Get(key)
	return ok
}

// seek returns the leaf and position of the first entry with key >= the
// argument, or (nil, 0) when no such entry exists.
func (t *Tree) seek(key uint64) (*node, int) {
	n := t.root
	for !n.leaf {
		n = n.children[lowerBound(n.keys, key)]
	}
	i := lowerBound(n.keys, key)
	if i == len(n.keys) {
		if n.next == nil {
			return nil, 0
		}
		return n.next, 0
	}
	return n, i
}

// RangeScan calls fn for every entry with lo <= key <= hi in ascending key
// order; fn returning false stops the scan. It returns the number of
// entries visited.
func (t *Tree) RangeScan(lo, hi uint64, fn func(key, value uint64) bool) int {
	n, i := t.seek(lo)
	visited := 0
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return visited
			}
			visited++
			if !fn(n.keys[i], n.vals[i]) {
				return visited
			}
		}
		n = n.next
		i = 0
	}
	return visited
}

// Delete removes the first entry with the given key and returns its value.
func (t *Tree) Delete(key uint64) (uint64, bool) {
	val, ok := t.delete(t.root, key, 0, false)
	if ok {
		t.size--
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return val, ok
}

// DeleteValue removes the first entry matching both key and value,
// reporting whether one existed. Needed when duplicate keys carry distinct
// payloads (several points in the same grid cell).
func (t *Tree) DeleteValue(key, value uint64) bool {
	_, ok := t.delete(t.root, key, value, true)
	if ok {
		t.size--
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return ok
}

// delete removes the first occurrence of key (and, if matchVal is set, of
// value) from the subtree rooted at n.
func (t *Tree) delete(n *node, key, value uint64, matchVal bool) (uint64, bool) {
	if n.leaf {
		for i := lowerBound(n.keys, key); i < len(n.keys) && n.keys[i] == key; i++ {
			if matchVal && n.vals[i] != value {
				continue
			}
			val := n.vals[i]
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			return val, true
		}
		return 0, false
	}
	// The matching entry is in the first child that may hold the key; a
	// run of duplicates equal to consecutive separators may force trying
	// the children to the right as well.
	i := lowerBound(n.keys, key)
	for {
		val, ok := t.delete(n.children[i], key, value, matchVal)
		if ok {
			t.fixUnderflow(n, i)
			return val, true
		}
		if i >= len(n.keys) || n.keys[i] != key {
			return 0, false
		}
		i++
	}
}

// fixUnderflow rebalances child i of parent p if it dropped below the
// minimum occupancy.
func (t *Tree) fixUnderflow(p *node, i int) {
	c := p.children[i]
	var under bool
	if c.leaf {
		under = len(c.keys) < t.minEntries()
	} else {
		under = len(c.children) < t.degree()
	}
	if !under {
		return
	}
	// Try borrowing from the left sibling.
	if i > 0 && t.canLend(p.children[i-1]) {
		left := p.children[i-1]
		if c.leaf {
			last := len(left.keys) - 1
			c.keys = prepend(c.keys, left.keys[last])
			c.vals = prepend(c.vals, left.vals[last])
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			p.keys[i-1] = c.keys[0]
		} else {
			c.keys = prepend(c.keys, p.keys[i-1])
			p.keys[i-1] = left.keys[len(left.keys)-1]
			left.keys = left.keys[:len(left.keys)-1]
			c.children = prependNode(c.children, left.children[len(left.children)-1])
			left.children = left.children[:len(left.children)-1]
		}
		return
	}
	// Try borrowing from the right sibling.
	if i+1 < len(p.children) && t.canLend(p.children[i+1]) {
		right := p.children[i+1]
		if c.leaf {
			c.keys = append(c.keys, right.keys[0])
			c.vals = append(c.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			p.keys[i] = right.keys[0]
		} else {
			c.keys = append(c.keys, p.keys[i])
			p.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			c.children = append(c.children, right.children[0])
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(p, i-1)
	} else {
		t.merge(p, i)
	}
}

// canLend reports whether a sibling can give up an entry/child.
func (t *Tree) canLend(n *node) bool {
	if n.leaf {
		return len(n.keys) > t.minEntries()
	}
	return len(n.children) > t.degree()
}

// merge combines children i and i+1 of p into child i.
func (t *Tree) merge(p *node, i int) {
	left, right := p.children[i], p.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, p.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = append(p.keys[:i], p.keys[i+1:]...)
	p.children = append(p.children[:i+1], p.children[i+2:]...)
}

func prepend(s []uint64, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[1:], s)
	s[0] = v
	return s
}

func prependNode(s []*node, v *node) []*node {
	s = append(s, nil)
	copy(s[1:], s)
	s[0] = v
	return s
}

// Leaves visits the leaf chain in order, calling fn with each leaf's entry
// count; used by the disk simulator to lay out pages.
func (t *Tree) Leaves(fn func(entries int) bool) {
	for n := t.leftmostLeaf(); n != nil; n = n.next {
		if !fn(len(n.keys)) {
			return
		}
	}
}

func (t *Tree) leftmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// CheckInvariants validates the structural invariants of the tree; it is
// exported for tests and returns a descriptive error on the first
// violation found.
func (t *Tree) CheckInvariants() error {
	count := 0
	var prevKey uint64
	hasPrev := false
	// Walk the leaf chain and confirm global ordering.
	for n := t.leftmostLeaf(); n != nil; n = n.next {
		if len(n.keys) != len(n.vals) {
			return errors.New("leaf keys/vals length mismatch")
		}
		for _, k := range n.keys {
			if hasPrev && k < prevKey {
				return fmt.Errorf("leaf chain out of order: %d after %d", k, prevKey)
			}
			prevKey, hasPrev = k, true
			count++
		}
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d entries in leaves", t.size, count)
	}
	var depth int
	return t.checkNode(t.root, true, &depth, 0)
}

func (t *Tree) checkNode(n *node, isRoot bool, leafDepth *int, depth int) error {
	if n.leaf {
		if *leafDepth == 0 {
			*leafDepth = depth + 1
		} else if *leafDepth != depth+1 {
			return fmt.Errorf("leaves at different depths: %d vs %d", *leafDepth, depth+1)
		}
		if !isRoot && len(n.keys) < t.minEntries() {
			return fmt.Errorf("leaf underflow: %d < %d", len(n.keys), t.minEntries())
		}
		if len(n.keys) > t.maxEntries() {
			return fmt.Errorf("leaf overflow: %d", len(n.keys))
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("internal node with %d keys, %d children", len(n.keys), len(n.children))
	}
	if !isRoot && len(n.children) < t.degree() {
		return fmt.Errorf("internal underflow: %d children", len(n.children))
	}
	if len(n.keys) > t.maxEntries() {
		return fmt.Errorf("internal overflow: %d keys", len(n.keys))
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] > n.keys[i] {
			return errors.New("separators out of order")
		}
	}
	for i, c := range n.children {
		// Child keys must respect separators (duplicates may equal the
		// separator on either side).
		if i > 0 {
			if err := checkMin(c, n.keys[i-1]); err != nil {
				return err
			}
		}
		if i < len(n.keys) {
			if err := checkMax(c, n.keys[i]); err != nil {
				return err
			}
		}
		if err := t.checkNode(c, false, leafDepth, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func checkMin(n *node, min uint64) error {
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) > 0 && n.keys[0] < min {
		return fmt.Errorf("subtree key %d below separator %d", n.keys[0], min)
	}
	return nil
}

func checkMax(n *node, max uint64) error {
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) > 0 && n.keys[len(n.keys)-1] > max {
		return fmt.Errorf("subtree key %d above separator %d", n.keys[len(n.keys)-1], max)
	}
	return nil
}
