package pagedstore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/workload"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "store.onion")
}

func buildRecords(t *testing.T, u geom.Universe, n int, seed int64) []Record {
	t.Helper()
	pts, err := workload.ClusteredPoints(u, 4, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	for i, p := range pts {
		recs[i] = Record{Point: p, Payload: uint64(i)}
	}
	return recs
}

func TestWriteOpenQueryRoundTrip(t *testing.T) {
	side := uint32(64)
	u := geom.MustUniverse(2, side)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, u, 2000, 41)
	path := tmpPath(t)
	if err := Write(path, o, recs, 512); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 2000 {
		t.Fatalf("len = %d", st.Len())
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		for i := range lo {
			if lo[i] > hi[i] {
				lo[i], hi[i] = hi[i], lo[i]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		got, stats, err := st.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for _, rec := range recs {
			if r.Contains(rec.Point) {
				want = append(want, rec.Payload)
			}
		}
		var gotIDs []uint64
		for _, rec := range got {
			if !r.Contains(rec.Point) {
				t.Fatalf("record %v outside query %v", rec.Point, r)
			}
			gotIDs = append(gotIDs, rec.Payload)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		sort.Slice(gotIDs, func(a, b int) bool { return gotIDs[a] < gotIDs[b] })
		if len(gotIDs) != len(want) {
			t.Fatalf("query %v: %d results, want %d", r, len(gotIDs), len(want))
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("query %v: payload %d vs %d", r, gotIDs[i], want[i])
			}
		}
		if stats.Results != len(want) {
			t.Fatal("stats results")
		}
		// Physical seeks can never exceed the clustering number.
		cn, err := cluster.Count(o, r)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(stats.Seeks) > cn {
			t.Fatalf("query %v: %d seeks exceed clustering number %d", r, stats.Seeks, cn)
		}
	}
}

func TestQueryAcrossCurves(t *testing.T) {
	side := uint32(32)
	u := geom.MustUniverse(2, side)
	o, _ := core.NewOnion2D(side)
	h, _ := baseline.NewHilbert(2, side)
	z, _ := baseline.NewMorton(2, side)
	recs := buildRecords(t, u, 800, 43)
	r := geom.Rect{Lo: geom.Point{4, 4}, Hi: geom.Point{27, 25}}
	for _, c := range []curve.Curve{o, h, z} {
		path := tmpPath(t)
		if err := Write(path, c, recs, 256); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, c)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := st.Query(r)
		st.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, rec := range recs {
			if r.Contains(rec.Point) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("%s: %d results, want %d", c.Name(), len(got), want)
		}
	}
}

func TestEmptyStore(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	path := tmpPath(t)
	if err := Write(path, o, nil, 256); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, stats, err := st.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.PagesRead != 0 {
		t.Fatalf("empty store query: %d results, %+v", len(got), stats)
	}
}

func TestValidationErrors(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	path := tmpPath(t)
	// Page too small.
	if err := Write(path, o, nil, 4); !errors.Is(err, ErrPageBytes) {
		t.Error("tiny page accepted")
	}
	// Point outside universe.
	if err := Write(path, o, []Record{{Point: geom.Point{99, 0}}}, 256); err == nil {
		t.Error("outside point accepted")
	}
	// Curve mismatch on open.
	if err := Write(path, o, []Record{{Point: geom.Point{1, 1}}}, 256); err != nil {
		t.Fatal(err)
	}
	h3, _ := baseline.NewHilbert(3, 16)
	if _, err := Open(path, h3); !errors.Is(err, ErrMismatch) {
		t.Error("mismatched curve accepted")
	}
	o32, _ := core.NewOnion2D(32)
	if _, err := Open(path, o32); !errors.Is(err, ErrMismatch) {
		t.Error("mismatched side accepted")
	}
	// Missing file.
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), o); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCorruptFiles(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	path := tmpPath(t)
	if err := os.WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, o); !errors.Is(err, ErrCorrupt) {
		t.Error("short file accepted")
	}
	bad := make([]byte, 64)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, o); !errors.Is(err, ErrCorrupt) {
		t.Error("bad magic accepted")
	}
}

func TestSeeksReflectClustering(t *testing.T) {
	// A full-width row query is one cluster under rowmajor ordering but
	// many under column-major: the physical seek counts must reflect it.
	side := uint32(32)
	rm, _ := baseline.NewRowMajor(2, side)
	cm, _ := baseline.NewColumnMajor(2, side)
	var recs []Record
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			recs = append(recs, Record{Point: geom.Point{x, y}, Payload: uint64(x)<<32 | uint64(y)})
		}
	}
	row := geom.Rect{Lo: geom.Point{0, 7}, Hi: geom.Point{side - 1, 7}}
	pathRM := tmpPath(t)
	pathCM := tmpPath(t)
	if err := Write(pathRM, rm, recs, 256); err != nil {
		t.Fatal(err)
	}
	if err := Write(pathCM, cm, recs, 256); err != nil {
		t.Fatal(err)
	}
	stRM, err := Open(pathRM, rm)
	if err != nil {
		t.Fatal(err)
	}
	defer stRM.Close()
	stCM, err := Open(pathCM, cm)
	if err != nil {
		t.Fatal(err)
	}
	defer stCM.Close()
	_, sRM, err := stRM.Query(row)
	if err != nil {
		t.Fatal(err)
	}
	_, sCM, err := stCM.Query(row)
	if err != nil {
		t.Fatal(err)
	}
	if sRM.Seeks != 1 {
		t.Errorf("rowmajor row query seeks = %d, want 1", sRM.Seeks)
	}
	if sCM.Seeks <= sRM.Seeks*4 {
		t.Errorf("colmajor row query seeks = %d, expected far more than rowmajor's %d",
			sCM.Seeks, sRM.Seeks)
	}
}

func TestDuplicateCells(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	recs := []Record{
		{Point: geom.Point{5, 5}, Payload: 1},
		{Point: geom.Point{5, 5}, Payload: 2},
		{Point: geom.Point{5, 5}, Payload: 3},
	}
	path := tmpPath(t)
	if err := Write(path, o, recs, 256); err != nil {
		t.Fatal(err)
	}
	st, _ := Open(path, o)
	defer st.Close()
	got, _, err := st.Query(geom.Rect{Lo: geom.Point{5, 5}, Hi: geom.Point{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("duplicates = %d", len(got))
	}
}

// TestEstimateSeeks verifies the I/O-free seek estimate: it must equal the
// exact cluster count, bound the seeks Query actually pays, and answer for
// paper-scale queries that no enumeration could.
func TestEstimateSeeks(t *testing.T) {
	side := uint32(64)
	u := geom.MustUniverse(2, side)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, u, 3000, 23)
	path := tmpPath(t)
	if err := Write(path, o, recs, 512); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		for i := range lo {
			if lo[i] > hi[i] {
				lo[i], hi[i] = hi[i], lo[i]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		est, err := s.EstimateSeeks(r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cluster.Count(o, r)
		if err != nil {
			t.Fatal(err)
		}
		if est != want {
			t.Fatalf("%v: estimate %d, clustering number %d", r, est, want)
		}
		_, st, err := s.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(st.Seeks) > est {
			t.Fatalf("%v: %d seeks exceed estimate %d", r, st.Seeks, est)
		}
	}
	// Paper-scale estimate through the analytic planner: a big store is
	// not needed, only a big universe.
	big, err := core.NewOnion3D(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	bigPath := tmpPath(t)
	if err := Write(bigPath, big, []Record{{Point: geom.Point{5, 5, 5}}}, 512); err != nil {
		t.Fatal(err)
	}
	bs, err := Open(bigPath, big)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	sb := big.Universe().Side()
	r := geom.Rect{Lo: geom.Point{8, 8, 8}, Hi: geom.Point{sb - 9, sb - 9, sb - 9}}
	est, err := bs.EstimateSeeks(r)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Fatalf("paper-scale inset estimate = %d, want 1", est)
	}
}
