// Package pagedstore is a disk-backed table of multi-dimensional points
// physically clustered in space-filling-curve order: the on-disk
// realization of the paper's motivating scenario, where the clustering
// number of a query is the number of real file seeks its execution pays.
//
// The file layout is a fixed header, a page index (first curve key of
// every page), and fixed-size pages of records sorted by curve key. A
// rectangle query decomposes into cluster ranges (internal/ranges), maps
// each range to a run of pages via the index, and reads each run with one
// positioned read — seeks and pages are counted and returned.
//
// Format version 2 (WriteMarked) appends a mark bitmap after the pages:
// one bit per record, in key order. The page layout itself is unchanged.
// Marks are opaque to this package; the LSM storage engine
// (internal/engine) uses them as tombstones in its immutable segments.
//
// An open Store is safe for concurrent use by any number of goroutines:
// every read is a positioned ReadAt (pread) on the shared descriptor — no
// shared file offset is ever moved — and all per-query state (page buffer,
// contiguity tracking, statistics) lives in a per-call Cursor.
package pagedstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

const (
	magic = uint64(0x4f4e494f4e435256) // "ONIONCRV"
	// version 1: header, page index, pages.
	// version 2: version 1 plus a mark bitmap (one bit per record, key
	// order) appended after the pages.
	version       = uint32(1)
	versionMarked = uint32(2)
)

var (
	// ErrCorrupt reports an unreadable or malformed store file.
	ErrCorrupt = errors.New("pagedstore: corrupt store file")
	// ErrMismatch reports a store written under a different curve or
	// universe than the one used to open it.
	ErrMismatch = errors.New("pagedstore: store does not match curve")
	// ErrPageBytes reports an unusable page size.
	ErrPageBytes = errors.New("pagedstore: page size too small for a record")
)

// Record is one stored point with an opaque payload.
type Record struct {
	Point   geom.Point
	Payload uint64
}

// Stats is the physical access pattern of one query.
type Stats struct {
	Seeks          int // positioned reads at non-contiguous offsets
	PagesRead      int
	RecordsScanned int
	Results        int
}

// recordSize returns the on-disk bytes per record: key + coords + payload.
func recordSize(dims int) int { return 8 + 4*dims + 8 }

// Write bulk-loads records into path, clustered by c. Records may be in
// any order; they are sorted by curve key.
func Write(path string, c curve.Curve, recs []Record, pageBytes int) error {
	return writeFile(path, c, recs, nil, pageBytes)
}

// WriteMarked is Write plus a per-record mark bit (format version 2). The
// page layout is identical to Write's; the marks travel in a bitmap after
// the pages and are reported by Cursor.Next. Marks are opaque here — the
// storage engine uses them as tombstones. marked must have one entry per
// record (a nil marked writes a plain version-1 file).
func WriteMarked(path string, c curve.Curve, recs []Record, marked []bool, pageBytes int) error {
	if marked != nil && len(marked) != len(recs) {
		return fmt.Errorf("pagedstore: %d marks for %d records", len(marked), len(recs))
	}
	return writeFile(path, c, recs, marked, pageBytes)
}

func writeFile(path string, c curve.Curve, recs []Record, marked []bool, pageBytes int) error {
	dims := c.Universe().Dims()
	rs := recordSize(dims)
	if pageBytes < rs {
		return fmt.Errorf("%w: %d < %d", ErrPageBytes, pageBytes, rs)
	}
	perPage := pageBytes / rs
	type keyed struct {
		key    uint64
		rec    Record
		marked bool
	}
	ks := make([]keyed, len(recs))
	for i, r := range recs {
		if !c.Universe().Contains(r.Point) {
			return fmt.Errorf("pagedstore: point %v outside universe %v", r.Point, c.Universe())
		}
		ks[i] = keyed{key: c.Index(r.Point), rec: r}
		if marked != nil {
			ks[i].marked = marked[i]
		}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].key < ks[b].key })

	pageCount := (len(ks) + perPage - 1) / perPage
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	defer f.Close()

	ver := version
	if marked != nil {
		ver = versionMarked
	}
	// Header: magic, version, dims, side, pageBytes, recordCount, pageCount.
	head := make([]byte, 8+4+4+4+4+8+8)
	binary.LittleEndian.PutUint64(head[0:], magic)
	binary.LittleEndian.PutUint32(head[8:], ver)
	binary.LittleEndian.PutUint32(head[12:], uint32(dims))
	binary.LittleEndian.PutUint32(head[16:], c.Universe().Side())
	binary.LittleEndian.PutUint32(head[20:], uint32(pageBytes))
	binary.LittleEndian.PutUint64(head[24:], uint64(len(ks)))
	binary.LittleEndian.PutUint64(head[32:], uint64(pageCount))
	if _, err := f.Write(head); err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	// Page index: first key of each page.
	idx := make([]byte, 8*pageCount)
	for p := 0; p < pageCount; p++ {
		binary.LittleEndian.PutUint64(idx[8*p:], ks[p*perPage].key)
	}
	if _, err := f.Write(idx); err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	// Pages.
	buf := make([]byte, pageBytes)
	for p := 0; p < pageCount; p++ {
		for i := range buf {
			buf[i] = 0
		}
		off := 0
		for i := p * perPage; i < (p+1)*perPage && i < len(ks); i++ {
			binary.LittleEndian.PutUint64(buf[off:], ks[i].key)
			off += 8
			for d := 0; d < dims; d++ {
				binary.LittleEndian.PutUint32(buf[off:], ks[i].rec.Point[d])
				off += 4
			}
			binary.LittleEndian.PutUint64(buf[off:], ks[i].rec.Payload)
			off += 8
		}
		if _, err := f.Write(buf); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
	}
	// Mark bitmap (version 2 only), one bit per record in key order.
	if marked != nil {
		bm := make([]byte, (len(ks)+7)/8)
		for i, k := range ks {
			if k.marked {
				bm[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := f.Write(bm); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
	}
	return f.Sync()
}

// Store is an open clustered table. It is safe for concurrent use: reads
// go through positioned ReadAt calls and all mutable query state lives in
// per-query Cursors.
type Store struct {
	f         *os.File
	c         curve.Curve
	dims      int
	pageBytes int
	perPage   int
	count     uint64
	firstKeys []uint64
	dataOff   int64
	marks     []byte // version >= 2: one bit per record in key order; nil otherwise
	anyMarked bool
}

// Open validates the file against the curve and loads the page index.
func Open(path string, c curve.Curve) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pagedstore: %w", err)
	}
	head := make([]byte, 40)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint64(head[0:]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver := binary.LittleEndian.Uint32(head[8:])
	if ver != version && ver != versionMarked {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version", ErrCorrupt)
	}
	dims := int(binary.LittleEndian.Uint32(head[12:]))
	side := binary.LittleEndian.Uint32(head[16:])
	if dims != c.Universe().Dims() || side != c.Universe().Side() {
		f.Close()
		return nil, fmt.Errorf("%w: file is %dD side %d, curve is %v",
			ErrMismatch, dims, side, c.Universe())
	}
	pageBytes := int(binary.LittleEndian.Uint32(head[20:]))
	count := binary.LittleEndian.Uint64(head[24:])
	pageCount := binary.LittleEndian.Uint64(head[32:])
	rs := recordSize(dims)
	if pageBytes < rs {
		f.Close()
		return nil, fmt.Errorf("%w: page bytes %d", ErrCorrupt, pageBytes)
	}
	idx := make([]byte, 8*pageCount)
	if _, err := f.ReadAt(idx, 40); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short page index", ErrCorrupt)
	}
	firstKeys := make([]uint64, pageCount)
	for p := range firstKeys {
		firstKeys[p] = binary.LittleEndian.Uint64(idx[8*p:])
	}
	dataOff := int64(40 + 8*pageCount)
	var marks []byte
	anyMarked := false
	if ver == versionMarked {
		marks = make([]byte, (count+7)/8)
		if _, err := f.ReadAt(marks, dataOff+int64(pageCount)*int64(pageBytes)); err != nil && count > 0 {
			f.Close()
			return nil, fmt.Errorf("%w: short mark bitmap", ErrCorrupt)
		}
		for _, b := range marks {
			if b != 0 {
				anyMarked = true
				break
			}
		}
	}
	return &Store{
		f:         f,
		c:         c,
		dims:      dims,
		pageBytes: pageBytes,
		perPage:   pageBytes / rs,
		count:     count,
		firstKeys: firstKeys,
		dataOff:   dataOff,
		marks:     marks,
		anyMarked: anyMarked,
	}, nil
}

// Marked reports whether any record of the store carries a mark bit.
func (s *Store) Marked() bool { return s.anyMarked }

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// Len returns the number of stored records.
func (s *Store) Len() int { return int(s.count) }

// EstimateSeeks returns the clustering number of r under the store's
// curve — an upper bound on the positioned reads Query will issue —
// without touching the file. Curves with an analytic planner (the onion
// family, Hilbert, Z, Gray, linear orders) answer output-sensitively even
// for queries spanning billions of cells, which is what an admission
// controller or cost-based planner needs per request.
func (s *Store) EstimateSeeks(r geom.Rect) (uint64, error) {
	n, err := cluster.Count(s.c, r)
	if err != nil {
		return 0, fmt.Errorf("pagedstore: %w", err)
	}
	return n, nil
}

// Query returns every record whose point lies in r, reading one page run
// per cluster range and counting the physical access pattern. The range
// decomposition routes through the curve's analytic planner when one
// exists, so planning cost scales with the number of clusters rather than
// the query surface. Records whose mark bit is set (version 2 files) are
// scanned but not returned. Query is safe to call from many goroutines at
// once; each call drives its own Cursor.
func (s *Store) Query(r geom.Rect) ([]Record, Stats, error) {
	krs, err := ranges.Decompose(s.c, r, 0)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("pagedstore: %w", err)
	}
	var out []Record
	cur := s.NewCursor()
	for _, kr := range krs {
		cur.SeekRange(kr)
		for {
			rec, marked, ok, err := cur.Next()
			if err != nil {
				return nil, cur.Stats(), err
			}
			if !ok {
				break
			}
			if marked {
				continue
			}
			out = append(out, rec)
		}
	}
	st := cur.Stats()
	st.Results = len(out)
	return out, st, nil
}

// Cursor streams the records of ascending key ranges out of a Store while
// accounting seeks, pages and records exactly as Query does: a positioned
// read at a non-contiguous page costs one seek, a page shared between the
// tail of one range and the head of the next is read once, and every
// record of every visited page counts as scanned. Each Cursor owns its
// page buffer and contiguity state, so any number of cursors can run over
// the same Store concurrently. The storage engine's merged query path
// drives one Cursor per live segment.
type Cursor struct {
	s        *Store
	st       Stats
	buf      []byte
	lastPage int // page currently in buf; -2 = none
	// state of the in-progress range
	lo, hi uint64
	p      int    // current page
	i      int    // next record slot within the page
	n      int    // records resident in the current page
	key    uint64 // curve key of the last record Next returned
	active bool
}

// NewCursor returns a cursor with zeroed statistics and no page loaded.
func (s *Store) NewCursor() *Cursor {
	return &Cursor{s: s, buf: make([]byte, s.pageBytes), lastPage: -2}
}

// Stats returns the access pattern accumulated so far. Results counts the
// records Next has yielded (marked or not).
func (c *Cursor) Stats() Stats { return c.st }

// SeekRange positions the cursor at the start of the inclusive key range
// kr. Ranges must be visited in ascending, non-overlapping order for the
// contiguity accounting to mirror Query's.
func (c *Cursor) SeekRange(kr curve.KeyRange) {
	c.lo, c.hi = kr.Lo, kr.Hi
	// First page that can contain kr.Lo: the first page whose successor
	// starts at or after kr.Lo (duplicate keys may span page boundaries,
	// so the last page with firstKey <= kr.Lo is not necessarily the
	// earliest holder of kr.Lo).
	c.p = sort.Search(len(c.s.firstKeys), func(i int) bool {
		return i+1 >= len(c.s.firstKeys) || c.s.firstKeys[i+1] >= kr.Lo
	})
	c.i = 0
	c.n = 0
	c.active = true
}

// Next returns the next record of the current range in key order, its mark
// bit, and whether a record was produced; ok == false means the range is
// exhausted. Errors report unreadable pages.
func (c *Cursor) Next() (rec Record, marked bool, ok bool, err error) {
	if !c.active {
		return Record{}, false, false, nil
	}
	s := c.s
	rs := recordSize(s.dims)
	for {
		// Drain the records remaining in the loaded page.
		for c.i < c.n {
			i := c.i
			c.i++
			off := i * rs
			key := binary.LittleEndian.Uint64(c.buf[off:])
			c.st.RecordsScanned++
			if key < c.lo || key > c.hi {
				continue
			}
			pt := make(geom.Point, s.dims)
			for d := 0; d < s.dims; d++ {
				pt[d] = binary.LittleEndian.Uint32(c.buf[off+8+4*d:])
			}
			rec := Record{
				Point:   pt,
				Payload: binary.LittleEndian.Uint64(c.buf[off+8+4*s.dims:]),
			}
			c.st.Results++
			c.key = key
			return rec, s.isMarked(c.p*s.perPage + i), true, nil
		}
		// Advance to the next page of the range. c.n > 0 means a page of
		// this range has been fully consumed and c.p must move past it;
		// right after SeekRange (c.n == 0) c.p already names the first
		// candidate page.
		if c.n > 0 {
			c.p++
			c.n = 0
		}
		if c.p >= len(s.firstKeys) || s.firstKeys[c.p] > c.hi {
			c.active = false
			return Record{}, false, false, nil
		}
		if c.p != c.lastPage && c.p != c.lastPage+1 {
			c.st.Seeks++
		}
		if c.p != c.lastPage { // do not recount a shared boundary page
			c.st.PagesRead++
			if _, err := s.f.ReadAt(c.buf, s.dataOff+int64(c.p)*int64(s.pageBytes)); err != nil {
				c.active = false
				return Record{}, false, false, fmt.Errorf("%w: page %d: %v", ErrCorrupt, c.p, err)
			}
			c.lastPage = c.p
		}
		c.n = s.perPage
		if c.p == len(s.firstKeys)-1 {
			c.n = int(s.count) - c.p*s.perPage
		}
		c.i = 0
	}
}

// Key returns the curve key of the record most recently returned by
// Next — the sort key of the stream, available to k-way merges without
// re-evaluating the curve's forward mapping.
func (c *Cursor) Key() uint64 { return c.key }

// isMarked reports the mark bit of the record at the given key-order
// position (always false for version-1 files).
func (s *Store) isMarked(i int) bool {
	if s.marks == nil {
		return false
	}
	return s.marks[i/8]&(1<<(i%8)) != 0
}
