// Package pagedstore is a disk-backed table of multi-dimensional points
// physically clustered in space-filling-curve order: the on-disk
// realization of the paper's motivating scenario, where the clustering
// number of a query is the number of real file seeks its execution pays.
//
// The file layout is a fixed header, a page index (first curve key of
// every page), and fixed-size pages of records sorted by curve key. A
// rectangle query decomposes into cluster ranges (internal/ranges), maps
// each range to a run of pages via the index, and reads each run with one
// positioned read — seeks and pages are counted and returned.
//
// Format version 2 (historical WriteMarked output) appends a mark bitmap
// after the pages: one bit per record, in key order. The page layout
// itself is unchanged. Marks are opaque to this package; the LSM storage
// engine (internal/engine) uses them as tombstones in its immutable
// segments. Format version 3 (historical WriteMarked output) additionally
// appends a pruning footer: a fence table of per-page maximum keys and a
// Bloom filter over all keys. Format version 4 (current WriteMarked
// output) extends the footer with integrity checksums: a crc32c per page,
// verified on every physical page fetch, and a trailing crc32c over all
// metadata (header, page index, marks, fences, page checksums, filter),
// verified at open — so any single flipped byte anywhere in a v4 file is
// detected, either immediately at open or at the first read of the
// damaged page, and surfaces as ErrCorrupt. Versions 1–3 still open fine:
// the fences degrade to the page index bounds, the filter to "maybe", and
// the checksums to "unverified".
//
// Logical vs physical accounting. Stats counts the LOGICAL access
// pattern: the positioned reads, pages and record scans the query plan
// pays on a bare store — the operational clustering number. That
// accounting is computed from the in-memory page index and never changes
// with caching or pruning, so it is bit-identical however a store is
// opened. The PHYSICAL I/O — pages actually fetched from the file — is
// tracked separately in IOStats: a page served by a Cache or proven
// recordless by the footer fences satisfies its logical visit without a
// disk read.
//
// An open Store is safe for concurrent use by any number of goroutines:
// every read is a positioned ReadAt (pread) on the shared descriptor — no
// shared file offset is ever moved — and all per-query state (page buffer,
// contiguity tracking, statistics) lives in a per-call Cursor.
package pagedstore

import (
	"encoding/binary"
	"errors"
	"io"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
	"github.com/onioncurve/onion/internal/vfs"
)

const (
	magic = uint64(0x4f4e494f4e435256) // "ONIONCRV"
	// version 1: header, page index, pages.
	// version 2: version 1 plus a mark bitmap (one bit per record, key
	// order) appended after the pages.
	// version 3: version 2 plus a pruning footer (per-page max-key
	// fences and a key Bloom filter) appended after the bitmap.
	// version 4: version 3 plus integrity checksums (a crc32c per page
	// between the fences and the filter, and a trailing crc32c over all
	// metadata).
	version         = uint32(1)
	versionMarked   = uint32(2)
	versionFiltered = uint32(3)
	versionChecked  = uint32(4)
)

// pageCRC is the checksum polynomial of the v4 integrity footer —
// crc32c, hardware-accelerated on every platform Go targets.
var pageCRC = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrCorrupt reports an unreadable or malformed store file.
	ErrCorrupt = errors.New("pagedstore: corrupt store file")
	// ErrMismatch reports a store written under a different curve or
	// universe than the one used to open it.
	ErrMismatch = errors.New("pagedstore: store does not match curve")
	// ErrPageBytes reports an unusable page size.
	ErrPageBytes = errors.New("pagedstore: page size too small for a record")
)

// Record is one stored point with an opaque payload.
type Record struct {
	Point   geom.Point
	Payload uint64
}

// Stats is the logical access pattern of one query: the positioned reads
// a bare store pays executing the plan. It is independent of page
// caching and footer pruning — those remove physical I/O (see IOStats),
// never logical accounting — so Stats is bit-identical for the same
// records and plan however the store is opened.
type Stats struct {
	Seeks          int // positioned reads at non-contiguous offsets
	PagesRead      int
	RecordsScanned int
	Results        int
}

// IOStats is the physical I/O a cursor actually performed: the
// disk-touching remainder of the logical plan after the cache and the
// pruning footer have been consulted.
type IOStats struct {
	// PagesFetched counts pages read from the file (cache misses
	// included). Without a cache and without a v3 footer it equals the
	// logical Stats.PagesRead.
	PagesFetched int
	// CacheHits counts logical page visits served from a Cache.
	CacheHits int
}

// Add accumulates b into s.
func (s *IOStats) Add(b IOStats) {
	s.PagesFetched += b.PagesFetched
	s.CacheHits += b.CacheHits
}

// recordSize returns the on-disk bytes per record: key + coords + payload.
func recordSize(dims int) int { return 8 + 4*dims + 8 }

// AppendRecord appends one record to dst, reusing the Point buffer
// already sitting in the slot it lands in when dst has spare capacity.
// It is the allocation-free building block of the QueryAppend-style
// APIs: recycling the same dst across queries reaches a steady state
// where no append allocates.
func AppendRecord(dst []Record, pt geom.Point, payload uint64) []Record {
	if len(dst) < cap(dst) {
		dst = dst[:len(dst)+1]
		r := &dst[len(dst)-1]
		r.Point = append(r.Point[:0], pt...)
		r.Payload = payload
		return dst
	}
	return append(dst, Record{Point: pt.Clone(), Payload: payload})
}

// Write bulk-loads records into path, clustered by c. Records may be in
// any order; they are sorted by curve key. The file is format version 1
// (no marks, no footer) for compatibility with earlier readers.
func Write(path string, c curve.Curve, recs []Record, pageBytes int) error {
	return writeFile(vfs.OS{}, path, c, recs, nil, pageBytes)
}

// WriteMarked is Write plus a per-record mark bit and the checked
// pruning footer (format version 4). The page layout is identical to
// Write's; the marks travel in a bitmap after the pages and are reported
// by Cursor.Next, the footer carries per-page max-key fences plus a key
// Bloom filter so narrow queries skip pages — physically, never
// logically — without touching disk, and the integrity checksums make
// every byte of the file tamper-evident. Marks are opaque here; the
// storage engine uses them as tombstones. marked must have one entry per
// record (a nil marked writes a plain version-1 file).
func WriteMarked(path string, c curve.Curve, recs []Record, marked []bool, pageBytes int) error {
	return WriteMarkedFS(vfs.OS{}, path, c, recs, marked, pageBytes)
}

// WriteMarkedFS is WriteMarked through an explicit filesystem — the seam
// the storage engine's fault injection drives.
func WriteMarkedFS(fsys vfs.FS, path string, c curve.Curve, recs []Record, marked []bool, pageBytes int) error {
	if marked != nil && len(marked) != len(recs) {
		return fmt.Errorf("pagedstore: %d marks for %d records", len(marked), len(recs))
	}
	return writeFile(fsys, path, c, recs, marked, pageBytes)
}

func writeFile(fsys vfs.FS, path string, c curve.Curve, recs []Record, marked []bool, pageBytes int) error {
	dims := c.Universe().Dims()
	rs := recordSize(dims)
	if pageBytes < rs {
		return fmt.Errorf("%w: %d < %d", ErrPageBytes, pageBytes, rs)
	}
	perPage := pageBytes / rs
	type keyed struct {
		key    uint64
		rec    Record
		marked bool
	}
	ks := make([]keyed, len(recs))
	for i, r := range recs {
		if !c.Universe().Contains(r.Point) {
			return fmt.Errorf("pagedstore: point %v outside universe %v", r.Point, c.Universe())
		}
		ks[i] = keyed{key: c.Index(r.Point), rec: r}
		if marked != nil {
			ks[i].marked = marked[i]
		}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].key < ks[b].key })

	pageCount := (len(ks) + perPage - 1) / perPage
	f, err := fsys.Create(path)
	if err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	defer f.Close()

	ver := version
	if marked != nil {
		ver = versionChecked
	}
	// Header: magic, version, dims, side, pageBytes, recordCount, pageCount.
	head := make([]byte, 8+4+4+4+4+8+8)
	binary.LittleEndian.PutUint64(head[0:], magic)
	binary.LittleEndian.PutUint32(head[8:], ver)
	binary.LittleEndian.PutUint32(head[12:], uint32(dims))
	binary.LittleEndian.PutUint32(head[16:], c.Universe().Side())
	binary.LittleEndian.PutUint32(head[20:], uint32(pageBytes))
	binary.LittleEndian.PutUint64(head[24:], uint64(len(ks)))
	binary.LittleEndian.PutUint64(head[32:], uint64(pageCount))
	if _, err := f.Write(head); err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	// metaSum accumulates the v4 trailing checksum over every byte that
	// is not page data: the pages carry their own per-page checksums.
	metaSum := crc32.Update(0, pageCRC, head)
	// Page index: first key of each page.
	idx := make([]byte, 8*pageCount)
	for p := 0; p < pageCount; p++ {
		binary.LittleEndian.PutUint64(idx[8*p:], ks[p*perPage].key)
	}
	if _, err := f.Write(idx); err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	metaSum = crc32.Update(metaSum, pageCRC, idx)
	// Pages.
	buf := make([]byte, pageBytes)
	crcs := make([]byte, 4*pageCount)
	for p := 0; p < pageCount; p++ {
		for i := range buf {
			buf[i] = 0
		}
		off := 0
		for i := p * perPage; i < (p+1)*perPage && i < len(ks); i++ {
			binary.LittleEndian.PutUint64(buf[off:], ks[i].key)
			off += 8
			for d := 0; d < dims; d++ {
				binary.LittleEndian.PutUint32(buf[off:], ks[i].rec.Point[d])
				off += 4
			}
			binary.LittleEndian.PutUint64(buf[off:], ks[i].rec.Payload)
			off += 8
		}
		if _, err := f.Write(buf); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
		binary.LittleEndian.PutUint32(crcs[4*p:], crc32.Checksum(buf, pageCRC))
	}
	// Mark bitmap (version >= 2 only), one bit per record in key order.
	if marked != nil {
		bm := make([]byte, (len(ks)+7)/8)
		for i, k := range ks {
			if k.marked {
				bm[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := f.Write(bm); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
		metaSum = crc32.Update(metaSum, pageCRC, bm)
		// Pruning footer: per-page max-key fences, the per-page
		// checksums, the key Bloom filter, then the metadata checksum.
		fences := make([]byte, 8*pageCount)
		for p := 0; p < pageCount; p++ {
			last := (p+1)*perPage - 1
			if last >= len(ks) {
				last = len(ks) - 1
			}
			binary.LittleEndian.PutUint64(fences[8*p:], ks[last].key)
		}
		if _, err := f.Write(fences); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
		metaSum = crc32.Update(metaSum, pageCRC, fences)
		if _, err := f.Write(crcs); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
		metaSum = crc32.Update(metaSum, pageCRC, crcs)
		keys := make([]uint64, len(ks))
		for i := range ks {
			keys[i] = ks[i].key
		}
		fb := buildFilter(keys).marshal()
		if _, err := f.Write(fb); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
		metaSum = crc32.Update(metaSum, pageCRC, fb)
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], metaSum)
		if _, err := f.Write(tail[:]); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
	}
	return f.Sync()
}

// Store is an open clustered table. It is safe for concurrent use: reads
// go through positioned ReadAt calls and all mutable query state lives in
// per-query Cursors.
type Store struct {
	f         vfs.File
	c         curve.Curve
	dims      int
	pageBytes int
	perPage   int
	count     uint64
	firstKeys []uint64
	dataOff   int64
	marks     []byte // version >= 2: one bit per record in key order; nil otherwise
	anyMarked bool

	// Pruning footer (version 3+; nil/absent for earlier versions).
	pageMax []uint64   // fence: max key of each page
	filter  *keyFilter // Bloom filter over all keys
	// Integrity footer (version 4; nil for earlier versions): crc32c of
	// every page, verified on each physical fetch.
	pageSums []uint32

	id      uint64 // process-unique cache identity
	cache   *Cache // shared page cache, nil when uncached
	curPool sync.Pool
}

// Open validates the file against the curve and loads the page index
// (and, for version-3+ files, the pruning footer). The store is
// uncached; see OpenCached.
func Open(path string, c curve.Curve) (*Store, error) {
	return OpenCached(path, c, nil)
}

// OpenCached is Open with a shared page cache: logical page visits are
// served from cache when resident, and misses populate it. A nil cache
// is equivalent to Open. The cache may back any number of stores; this
// store's pages are dropped from it on Close.
func OpenCached(path string, c curve.Curve, cache *Cache) (*Store, error) {
	return OpenCachedFS(vfs.OS{}, path, c, cache)
}

// OpenCachedFS is OpenCached through an explicit filesystem — the seam
// the storage engine's fault injection drives. For version-4 files every
// piece of metadata is checksum-verified here, so a corrupted header,
// page index or footer is rejected as ErrCorrupt before a single record
// is served; corrupted page data is caught by the per-page checksums at
// fetch time.
func OpenCachedFS(fsys vfs.FS, path string, c curve.Curve, cache *Cache) (*Store, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pagedstore: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagedstore: %w", err)
	}
	fileSize := fi.Size()
	head := make([]byte, 40)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint64(head[0:]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver := binary.LittleEndian.Uint32(head[8:])
	if ver < version || ver > versionChecked {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version", ErrCorrupt)
	}
	dims := int(binary.LittleEndian.Uint32(head[12:]))
	side := binary.LittleEndian.Uint32(head[16:])
	if dims != c.Universe().Dims() || side != c.Universe().Side() {
		f.Close()
		return nil, fmt.Errorf("%w: file is %dD side %d, curve is %v",
			ErrMismatch, dims, side, c.Universe())
	}
	pageBytes := int(binary.LittleEndian.Uint32(head[20:]))
	count := binary.LittleEndian.Uint64(head[24:])
	pageCount := binary.LittleEndian.Uint64(head[32:])
	rs := recordSize(dims)
	if pageBytes < rs {
		f.Close()
		return nil, fmt.Errorf("%w: page bytes %d", ErrCorrupt, pageBytes)
	}
	perPage := pageBytes / rs
	// Structural sanity before any sized allocation: a corrupted count
	// or page count must be rejected, not trusted as an allocation size.
	if pageCount > uint64(fileSize)/8 || count > pageCount*uint64(perPage) ||
		(pageCount > 0 && count <= (pageCount-1)*uint64(perPage)) {
		f.Close()
		return nil, fmt.Errorf("%w: %d records in %d pages", ErrCorrupt, count, pageCount)
	}
	idx := make([]byte, 8*pageCount)
	if _, err := f.ReadAt(idx, 40); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short page index", ErrCorrupt)
	}
	firstKeys := make([]uint64, pageCount)
	for p := range firstKeys {
		firstKeys[p] = binary.LittleEndian.Uint64(idx[8*p:])
	}
	dataOff := int64(40 + 8*pageCount)
	var marks []byte
	anyMarked := false
	marksOff := dataOff + int64(pageCount)*int64(pageBytes)
	if ver >= versionMarked {
		marks = make([]byte, (count+7)/8)
		if _, err := f.ReadAt(marks, marksOff); err != nil && count > 0 {
			f.Close()
			return nil, fmt.Errorf("%w: short mark bitmap", ErrCorrupt)
		}
		for _, b := range marks {
			if b != 0 {
				anyMarked = true
				break
			}
		}
	}
	var pageMax []uint64
	var filter *keyFilter
	var pageSums []uint32
	// Every version has an exact expected length; trailing bytes mean the
	// version field itself is suspect (a v4 file whose header rotted down
	// to v1 must not silently serve its tombstoned records).
	if ver < versionFiltered && fileSize != marksOff+int64(len(marks)) {
		f.Close()
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt,
			fileSize-marksOff-int64(len(marks)))
	}
	if ver >= versionFiltered {
		footOff := marksOff + int64(len(marks))
		sumLen := int64(0)
		if ver >= versionChecked {
			sumLen = 4*int64(pageCount) + 4 // page checksums + metadata checksum
		}
		if fileSize < footOff+8*int64(pageCount)+sumLen+8 {
			f.Close()
			return nil, fmt.Errorf("%w: short pruning footer", ErrCorrupt)
		}
		foot := make([]byte, fileSize-footOff)
		if _, err := f.ReadAt(foot, footOff); err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: short pruning footer", ErrCorrupt)
		}
		filterOff := 8 * pageCount
		if ver >= versionChecked {
			// Verify the metadata checksum before trusting anything in
			// the footer (the fences and page sums steer query
			// execution; a silent flip there would misroute reads).
			body := foot[:len(foot)-4]
			sum := crc32.Update(0, pageCRC, head)
			sum = crc32.Update(sum, pageCRC, idx)
			sum = crc32.Update(sum, pageCRC, marks)
			sum = crc32.Update(sum, pageCRC, body)
			if sum != binary.LittleEndian.Uint32(foot[len(foot)-4:]) {
				f.Close()
				return nil, fmt.Errorf("%w: metadata checksum mismatch", ErrCorrupt)
			}
			pageSums = make([]uint32, pageCount)
			for p := range pageSums {
				pageSums[p] = binary.LittleEndian.Uint32(foot[filterOff+4*uint64(p):])
			}
			filterOff += 4 * pageCount
			foot = body
		}
		pageMax = make([]uint64, pageCount)
		for p := range pageMax {
			pageMax[p] = binary.LittleEndian.Uint64(foot[8*p:])
		}
		var ok bool
		filter, ok = unmarshalFilter(foot[filterOff:])
		if !ok {
			f.Close()
			return nil, fmt.Errorf("%w: malformed key filter", ErrCorrupt)
		}
		flen := uint64(8)
		if filter != nil {
			flen = 8 + 8*uint64(len(filter.words))
		}
		if uint64(len(foot)) != filterOff+flen {
			f.Close()
			return nil, fmt.Errorf("%w: trailing footer bytes", ErrCorrupt)
		}
	}
	return &Store{
		f:         f,
		c:         c,
		dims:      dims,
		pageBytes: pageBytes,
		perPage:   perPage,
		count:     count,
		firstKeys: firstKeys,
		dataOff:   dataOff,
		marks:     marks,
		anyMarked: anyMarked,
		pageMax:   pageMax,
		filter:    filter,
		pageSums:  pageSums,
		id:        storeIDs.Add(1),
		cache:     cache,
	}, nil
}

// Marked reports whether any record of the store carries a mark bit.
func (s *Store) Marked() bool { return s.anyMarked }

// Close releases the underlying file and drops the store's pages from
// its cache.
func (s *Store) Close() error {
	if s.cache != nil {
		s.cache.purge(s.id)
	}
	return s.f.Close()
}

// Len returns the number of stored records.
func (s *Store) Len() int { return int(s.count) }

// EstimateSeeks returns the clustering number of r under the store's
// curve — an upper bound on the positioned reads Query will issue —
// without touching the file. Curves with an analytic planner (the onion
// family, Hilbert, Z, Gray, linear orders) answer output-sensitively even
// for queries spanning billions of cells, which is what an admission
// controller or cost-based planner needs per request.
func (s *Store) EstimateSeeks(r geom.Rect) (uint64, error) {
	n, err := cluster.Count(s.c, r)
	if err != nil {
		return 0, fmt.Errorf("pagedstore: %w", err)
	}
	return n, nil
}

// Query returns every record whose point lies in r, reading one page run
// per cluster range and counting the logical access pattern. The range
// decomposition routes through the curve's analytic planner when one
// exists, so planning cost scales with the number of clusters rather than
// the query surface. Records whose mark bit is set (version >= 2 files)
// are scanned but not returned. Query is safe to call from many
// goroutines at once; each call drives its own Cursor.
func (s *Store) Query(r geom.Rect) ([]Record, Stats, error) {
	return s.QueryAppend(nil, r)
}

// QueryAppend is Query appending into dst: recycling the same dst across
// queries reuses both the record slots and their Point buffers, so a
// steady-state caller allocates nothing per query. Stats.Results counts
// only the records this call appended.
func (s *Store) QueryAppend(dst []Record, r geom.Rect) ([]Record, Stats, error) {
	krs, err := ranges.Decompose(s.c, r, 0)
	if err != nil {
		return dst, Stats{}, fmt.Errorf("pagedstore: %w", err)
	}
	base := len(dst)
	cur := s.AcquireCursor()
	defer cur.Release()
	var rec Record
	for _, kr := range krs {
		cur.SeekRange(kr)
		for {
			marked, ok, err := cur.NextInto(&rec)
			if err != nil {
				return dst[:base], cur.Stats(), err
			}
			if !ok {
				break
			}
			if marked {
				continue
			}
			dst = AppendRecord(dst, rec.Point, rec.Payload)
		}
	}
	st := cur.Stats()
	st.Results = len(dst) - base
	return dst, st, nil
}

// Cursor streams the records of ascending key ranges out of a Store while
// accounting seeks, pages and records exactly as Query does: a positioned
// read at a non-contiguous page costs one seek, a page shared between the
// tail of one range and the head of the next is read once, and every
// record of every visited page counts as scanned. That accounting is
// logical — computed against the in-memory page index — while the page
// bytes themselves come from the cache, from disk, or (when the v3
// fences prove a visited page holds no key of the range) from nowhere at
// all; IO reports the physical remainder. Each Cursor owns its page
// state, so any number of cursors can run over the same Store
// concurrently. The storage engine's merged query path drives one Cursor
// per live segment.
type Cursor struct {
	s  *Store
	st Stats
	io IOStats

	buf      []byte // private page buffer (uncached stores), lazily allocated
	data     []byte // bytes of the most recently fetched page
	dataPage int    // physical page identity of data; -2 = none
	scanning bool   // current logical page is materialized in data (not pruned)
	lastPage int    // last logically visited page; -2 = none
	// state of the in-progress range
	lo, hi  uint64
	p       int    // current page
	i       int    // next record slot within the page
	n       int    // records resident in the current page
	key     uint64 // curve key of the last record Next returned
	active  bool
	skipAll bool // the key filter proved the whole range absent
}

// NewCursor returns a cursor with zeroed statistics and no page loaded.
// For query paths that run hot, AcquireCursor/Release recycle cursors
// through a per-store pool instead.
func (s *Store) NewCursor() *Cursor {
	return &Cursor{s: s, lastPage: -2, dataPage: -2}
}

// AcquireCursor returns a reset cursor from the store's pool (or a fresh
// one). Pair it with Release.
func (s *Store) AcquireCursor() *Cursor {
	if c, ok := s.curPool.Get().(*Cursor); ok {
		c.Reset()
		return c
	}
	return s.NewCursor()
}

// Release returns the cursor to its store's pool, dropping any page
// reference it still holds.
func (c *Cursor) Release() {
	c.data = nil
	c.dataPage = -2
	c.s.curPool.Put(c)
}

// Reset zeroes the cursor's statistics and position so it can be reused
// as if freshly created.
func (c *Cursor) Reset() {
	c.st = Stats{}
	c.io = IOStats{}
	c.data = nil
	c.dataPage = -2
	c.scanning = false
	c.lastPage = -2
	c.active = false
	c.skipAll = false
	c.i, c.n = 0, 0
}

// Stats returns the logical access pattern accumulated so far. Results
// counts the records Next has yielded (marked or not).
func (c *Cursor) Stats() Stats { return c.st }

// IO returns the physical I/O performed so far: the pages actually
// fetched from the file and the visits served by the cache. Unlike
// Stats, it depends on cache state and footer pruning.
func (c *Cursor) IO() IOStats { return c.io }

// SeekRange positions the cursor at the start of the inclusive key range
// kr. Ranges must be visited in ascending, non-overlapping order for the
// contiguity accounting to mirror Query's.
func (c *Cursor) SeekRange(kr curve.KeyRange) {
	c.lo, c.hi = kr.Lo, kr.Hi
	// First page that can contain kr.Lo: the first page whose successor
	// starts at or after kr.Lo (duplicate keys may span page boundaries,
	// so the last page with firstKey <= kr.Lo is not necessarily the
	// earliest holder of kr.Lo).
	c.p = sort.Search(len(c.s.firstKeys), func(i int) bool {
		return i+1 >= len(c.s.firstKeys) || c.s.firstKeys[i+1] >= kr.Lo
	})
	c.i = 0
	c.n = 0
	c.active = true
	// Narrow ranges consult the key filter: if every key of the range is
	// provably absent, the logical page walk below runs without fetching
	// a single page.
	c.skipAll = false
	if f := c.s.filter; f != nil && kr.Hi-kr.Lo < filterMaxProbe {
		c.skipAll = true
		for key := kr.Lo; ; key++ {
			if f.mayContain(key) {
				c.skipAll = false
				break
			}
			if key == kr.Hi {
				break
			}
		}
	}
}

// residentCount returns the number of records stored in page p.
func (s *Store) residentCount(p int) int {
	if p == len(s.firstKeys)-1 {
		return int(s.count) - p*s.perPage
	}
	return s.perPage
}

// pageMaxBound returns an upper bound on the keys of page p: the exact
// fence for v3 files, the next page's first key otherwise (keys are
// globally sorted, so nothing in p exceeds it).
func (s *Store) pageMaxBound(p int) uint64 {
	if s.pageMax != nil {
		return s.pageMax[p]
	}
	if p+1 < len(s.firstKeys) {
		return s.firstKeys[p+1]
	}
	return ^uint64(0)
}

// fetch materializes the bytes of page p into c.data, consulting the
// cache first. The logical statistics are untouched — callers account
// the visit before deciding whether a fetch is needed at all.
func (c *Cursor) fetch(p int) error {
	if c.dataPage == p && c.data != nil {
		return nil
	}
	s := c.s
	if s.cache != nil {
		if b, ok := s.cache.get(s.id, p); ok {
			c.io.CacheHits++
			c.data, c.dataPage = b, p
			return nil
		}
	}
	// Miss (or no cache): a positioned read into the cursor's private
	// buffer. The cache takes its own copy only if admission accepts the
	// page, so a miss the cache declines costs no allocation.
	if c.buf == nil {
		c.buf = make([]byte, s.pageBytes)
	}
	if _, err := s.f.ReadAt(c.buf, s.dataOff+int64(p)*int64(s.pageBytes)); err != nil {
		return pageReadErr(p, err)
	}
	c.io.PagesFetched++
	// Verify before admission: the cache must only ever hold pages that
	// passed their checksum, so a hit never needs re-verification.
	if s.pageSums != nil && crc32.Checksum(c.buf, pageCRC) != s.pageSums[p] {
		return fmt.Errorf("%w: page %d: checksum mismatch", ErrCorrupt, p)
	}
	if s.cache != nil {
		s.cache.addCopy(s.id, p, c.buf)
	}
	c.data, c.dataPage = c.buf, p
	return nil
}

// Next returns the next record of the current range in key order, its mark
// bit, and whether a record was produced; ok == false means the range is
// exhausted. Errors report unreadable pages. Each returned record owns a
// freshly allocated Point; NextInto reuses a caller-supplied one.
func (c *Cursor) Next() (rec Record, marked bool, ok bool, err error) {
	marked, ok, err = c.NextInto(&rec)
	return rec, marked, ok, err
}

// NextInto is Next decoding into rec, reusing rec.Point's capacity: the
// allocation-free form the storage engine's merge loop drives. The
// record is only valid until the next NextInto call with the same rec.
func (c *Cursor) NextInto(rec *Record) (marked bool, ok bool, err error) {
	if !c.active {
		return false, false, nil
	}
	s := c.s
	rs := recordSize(s.dims)
	for {
		// Drain the records remaining in the logically visited page.
		if !c.scanning && c.i < c.n {
			// Pruned page: the fences (or the key filter) prove no key of
			// this page lies in the range, so its scan yields nothing —
			// but it still counts as scanned, exactly as on a bare store.
			c.st.RecordsScanned += c.n - c.i
			c.i = c.n
		}
		for c.i < c.n {
			i := c.i
			c.i++
			off := i * rs
			key := binary.LittleEndian.Uint64(c.data[off:])
			c.st.RecordsScanned++
			if key < c.lo || key > c.hi {
				continue
			}
			pt := rec.Point
			if cap(pt) < s.dims {
				pt = make(geom.Point, s.dims)
			}
			pt = pt[:s.dims]
			for d := 0; d < s.dims; d++ {
				pt[d] = binary.LittleEndian.Uint32(c.data[off+8+4*d:])
			}
			rec.Point = pt
			rec.Payload = binary.LittleEndian.Uint64(c.data[off+8+4*s.dims:])
			c.st.Results++
			c.key = key
			return s.isMarked(c.p*s.perPage + i), true, nil
		}
		// Advance to the next page of the range. c.n > 0 means a page of
		// this range has been fully consumed and c.p must move past it;
		// right after SeekRange (c.n == 0) c.p already names the first
		// candidate page.
		if c.n > 0 {
			c.p++
			c.n = 0
		}
		if c.p >= len(s.firstKeys) || s.firstKeys[c.p] > c.hi {
			c.active = false
			return false, false, nil
		}
		// Logical accounting first — identical to a bare store's.
		if c.p != c.lastPage && c.p != c.lastPage+1 {
			c.st.Seeks++
		}
		if c.p != c.lastPage { // do not recount a shared boundary page
			c.st.PagesRead++
			c.lastPage = c.p
		}
		c.n = s.residentCount(c.p)
		c.i = 0
		// Physical fetch only when the page can hold a key of the range:
		// the filter may have proven the whole range absent, and the max
		// fence prunes a leading page that ends before lo. A pruned visit
		// leaves the previously fetched page in place — a later range may
		// still share it.
		c.scanning = !c.skipAll && s.pageMaxBound(c.p) >= c.lo
		if c.scanning {
			if err := c.fetch(c.p); err != nil {
				c.active = false
				return false, false, err
			}
		}
	}
}

// Key returns the curve key of the record most recently returned by
// Next — the sort key of the stream, available to k-way merges without
// re-evaluating the curve's forward mapping.
func (c *Cursor) Key() uint64 { return c.key }

// isMarked reports the mark bit of the record at the given key-order
// position (always false for version-1 files).
func (s *Store) isMarked(i int) bool {
	if s.marks == nil {
		return false
	}
	return s.marks[i/8]&(1<<(i%8)) != 0
}

// KeySpan returns the inclusive curve-key interval the store covers, and
// ok == false for an empty store. It is the interval a quarantine report
// names when a store is pulled from service.
func (s *Store) KeySpan() (lo, hi uint64, ok bool) {
	if len(s.firstKeys) == 0 {
		return 0, 0, false
	}
	return s.firstKeys[0], s.pageMaxBound(len(s.firstKeys) - 1), true
}

// pageReadErr classifies a failed page read. A short read is structural
// corruption — the metadata promised bytes the file does not have — but
// any other failure is an I/O error that keeps its own identity, so a
// flaky disk does not get healthy segments quarantined as corrupt.
func pageReadErr(p int, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: page %d: %v", ErrCorrupt, p, err)
	}
	return fmt.Errorf("pagedstore: page %d: %w", p, err)
}

// VerifyPages scrubs the page data: every page is read straight from the
// file — bypassing the cache, which may hold a clean copy of a page whose
// disk bytes have since rotted — and checked against its v4 checksum and
// the global key ordering. The first damaged page is reported as
// ErrCorrupt; a nil return means every byte of page data on disk is sound.
// For pre-v4 files only the structural key-order check runs.
func (s *Store) VerifyPages() error {
	buf := make([]byte, s.pageBytes)
	rs := recordSize(s.dims)
	prev := uint64(0)
	for p := range s.firstKeys {
		if _, err := s.f.ReadAt(buf, s.dataOff+int64(p)*int64(s.pageBytes)); err != nil {
			return pageReadErr(p, err)
		}
		if s.pageSums != nil && crc32.Checksum(buf, pageCRC) != s.pageSums[p] {
			return fmt.Errorf("%w: page %d: checksum mismatch", ErrCorrupt, p)
		}
		for i := 0; i < s.residentCount(p); i++ {
			key := binary.LittleEndian.Uint64(buf[i*rs:])
			if (p > 0 || i > 0) && key < prev {
				return fmt.Errorf("%w: page %d: keys out of order", ErrCorrupt, p)
			}
			if key < s.firstKeys[p] || key > s.pageMaxBound(p) {
				return fmt.Errorf("%w: page %d: key outside page bounds", ErrCorrupt, p)
			}
			prev = key
		}
	}
	return nil
}

// Pages returns the number of data pages — the granularity VerifyPage
// (and the engine's rate-limited scrubber) works at.
func (s *Store) Pages() int { return len(s.firstKeys) }

// VerifyPage checks one page directly from disk (bypassing the cache):
// the v4 checksum, in-page key order, and the page-bounds invariant.
// buf is an optional scratch buffer of at least PageBytes; pass nil to
// allocate. It runs the same checks VerifyPages does for that page, so a
// store whose every page passes VerifyPage is clean.
func (s *Store) VerifyPage(p int, buf []byte) error {
	if p < 0 || p >= len(s.firstKeys) {
		return nil
	}
	if len(buf) < s.pageBytes {
		buf = make([]byte, s.pageBytes)
	}
	buf = buf[:s.pageBytes]
	if _, err := s.f.ReadAt(buf, s.dataOff+int64(p)*int64(s.pageBytes)); err != nil {
		return pageReadErr(p, err)
	}
	return s.checkPage(p, buf)
}

// PageBytes returns the store's page size.
func (s *Store) PageBytes() int { return s.pageBytes }

// checkPage validates one materialized page against its checksum and
// key invariants.
func (s *Store) checkPage(p int, buf []byte) error {
	if s.pageSums != nil && crc32.Checksum(buf, pageCRC) != s.pageSums[p] {
		return fmt.Errorf("%w: page %d: checksum mismatch", ErrCorrupt, p)
	}
	rs := recordSize(s.dims)
	prev := uint64(0)
	for i := 0; i < s.residentCount(p); i++ {
		key := binary.LittleEndian.Uint64(buf[i*rs:])
		if i > 0 && key < prev {
			return fmt.Errorf("%w: page %d: keys out of order", ErrCorrupt, p)
		}
		if key < s.firstKeys[p] || key > s.pageMaxBound(p) {
			return fmt.Errorf("%w: page %d: key outside page bounds", ErrCorrupt, p)
		}
		prev = key
	}
	return nil
}

// Salvage is the result of tolerantly reading a damaged store file:
// everything provably intact, plus the key intervals that may have been
// lost. Because records cluster along the curve, the damage of any one
// page is a single contiguous key interval — repair is interval
// arithmetic, not a table scan.
type Salvage struct {
	// MetaOK reports whether the file's metadata (header, page index,
	// fences, checksums) verified. When false nothing was salvaged and
	// Damaged spans the whole key space.
	MetaOK bool
	// Pages and BadPages count the data pages examined and failed.
	Pages, BadPages int
	// Records, Keys and Marked are the records of every CRC-clean page in
	// key order: the record, its curve key, and its tombstone mark.
	Records []Record
	Keys    []uint64
	Marked  []bool
	// Damaged is the sorted, disjoint set of inclusive key intervals
	// whose records may be lost — the bounds of every failed page, with
	// adjacent intervals merged.
	Damaged []curve.KeyRange
}

// SalvageFS reads the store file at path as tolerantly as possible. A
// file whose metadata fails verification yields MetaOK == false and a
// Damaged set covering the entire key space; otherwise each data page is
// checked exactly as VerifyPages would, clean pages contribute their
// records and damaged pages contribute their fence interval to Damaged.
// The error return reports only I/O failures reaching the file at all —
// corruption is data, not an error, here.
func SalvageFS(fsys vfs.FS, path string, c curve.Curve) (Salvage, error) {
	full := Salvage{Damaged: []curve.KeyRange{{Lo: 0, Hi: c.Universe().Size() - 1}}}
	s, err := OpenCachedFS(fsys, path, c, nil)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrMismatch) {
			return full, nil
		}
		return Salvage{}, err
	}
	defer s.Close()
	sv := Salvage{MetaOK: true, Pages: len(s.firstKeys)}
	buf := make([]byte, s.pageBytes)
	rs := recordSize(s.dims)
	for p := range s.firstKeys {
		pageErr := error(nil)
		if _, err := s.f.ReadAt(buf, s.dataOff+int64(p)*int64(s.pageBytes)); err != nil {
			pageErr = pageReadErr(p, err)
			if !errors.Is(pageErr, ErrCorrupt) {
				return Salvage{}, pageErr // I/O trouble, not damage: report it
			}
		} else {
			pageErr = s.checkPage(p, buf)
		}
		if pageErr != nil {
			sv.BadPages++
			lo, hi := s.firstKeys[p], s.pageMaxBound(p)
			if n := len(sv.Damaged); n > 0 && (sv.Damaged[n-1].Hi == ^uint64(0) || lo <= sv.Damaged[n-1].Hi+1) {
				if hi > sv.Damaged[n-1].Hi {
					sv.Damaged[n-1].Hi = hi
				}
			} else {
				sv.Damaged = append(sv.Damaged, curve.KeyRange{Lo: lo, Hi: hi})
			}
			continue
		}
		for i := 0; i < s.residentCount(p); i++ {
			off := i * rs
			key := binary.LittleEndian.Uint64(buf[off:])
			pt := make(geom.Point, s.dims)
			for d := 0; d < s.dims; d++ {
				pt[d] = binary.LittleEndian.Uint32(buf[off+8+4*d:])
			}
			sv.Records = append(sv.Records, Record{Point: pt, Payload: binary.LittleEndian.Uint64(buf[off+8+4*s.dims:])})
			sv.Keys = append(sv.Keys, key)
			sv.Marked = append(sv.Marked, s.isMarked(p*s.perPage+i))
		}
	}
	return sv, nil
}
