// Package pagedstore is a disk-backed table of multi-dimensional points
// physically clustered in space-filling-curve order: the on-disk
// realization of the paper's motivating scenario, where the clustering
// number of a query is the number of real file seeks its execution pays.
//
// The file layout is a fixed header, a page index (first curve key of
// every page), and fixed-size pages of records sorted by curve key. A
// rectangle query decomposes into cluster ranges (internal/ranges), maps
// each range to a run of pages via the index, and reads each run with one
// positioned read — seeks and pages are counted and returned.
package pagedstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

const (
	magic   = uint64(0x4f4e494f4e435256) // "ONIONCRV"
	version = uint32(1)
)

var (
	// ErrCorrupt reports an unreadable or malformed store file.
	ErrCorrupt = errors.New("pagedstore: corrupt store file")
	// ErrMismatch reports a store written under a different curve or
	// universe than the one used to open it.
	ErrMismatch = errors.New("pagedstore: store does not match curve")
	// ErrPageBytes reports an unusable page size.
	ErrPageBytes = errors.New("pagedstore: page size too small for a record")
)

// Record is one stored point with an opaque payload.
type Record struct {
	Point   geom.Point
	Payload uint64
}

// Stats is the physical access pattern of one query.
type Stats struct {
	Seeks          int // positioned reads at non-contiguous offsets
	PagesRead      int
	RecordsScanned int
	Results        int
}

// recordSize returns the on-disk bytes per record: key + coords + payload.
func recordSize(dims int) int { return 8 + 4*dims + 8 }

// Write bulk-loads records into path, clustered by c. Records may be in
// any order; they are sorted by curve key.
func Write(path string, c curve.Curve, recs []Record, pageBytes int) error {
	dims := c.Universe().Dims()
	rs := recordSize(dims)
	if pageBytes < rs {
		return fmt.Errorf("%w: %d < %d", ErrPageBytes, pageBytes, rs)
	}
	perPage := pageBytes / rs
	type keyed struct {
		key uint64
		rec Record
	}
	ks := make([]keyed, len(recs))
	for i, r := range recs {
		if !c.Universe().Contains(r.Point) {
			return fmt.Errorf("pagedstore: point %v outside universe %v", r.Point, c.Universe())
		}
		ks[i] = keyed{key: c.Index(r.Point), rec: r}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].key < ks[b].key })

	pageCount := (len(ks) + perPage - 1) / perPage
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	defer f.Close()

	// Header: magic, version, dims, side, pageBytes, recordCount, pageCount.
	head := make([]byte, 8+4+4+4+4+8+8)
	binary.LittleEndian.PutUint64(head[0:], magic)
	binary.LittleEndian.PutUint32(head[8:], version)
	binary.LittleEndian.PutUint32(head[12:], uint32(dims))
	binary.LittleEndian.PutUint32(head[16:], c.Universe().Side())
	binary.LittleEndian.PutUint32(head[20:], uint32(pageBytes))
	binary.LittleEndian.PutUint64(head[24:], uint64(len(ks)))
	binary.LittleEndian.PutUint64(head[32:], uint64(pageCount))
	if _, err := f.Write(head); err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	// Page index: first key of each page.
	idx := make([]byte, 8*pageCount)
	for p := 0; p < pageCount; p++ {
		binary.LittleEndian.PutUint64(idx[8*p:], ks[p*perPage].key)
	}
	if _, err := f.Write(idx); err != nil {
		return fmt.Errorf("pagedstore: %w", err)
	}
	// Pages.
	buf := make([]byte, pageBytes)
	for p := 0; p < pageCount; p++ {
		for i := range buf {
			buf[i] = 0
		}
		off := 0
		for i := p * perPage; i < (p+1)*perPage && i < len(ks); i++ {
			binary.LittleEndian.PutUint64(buf[off:], ks[i].key)
			off += 8
			for d := 0; d < dims; d++ {
				binary.LittleEndian.PutUint32(buf[off:], ks[i].rec.Point[d])
				off += 4
			}
			binary.LittleEndian.PutUint64(buf[off:], ks[i].rec.Payload)
			off += 8
		}
		if _, err := f.Write(buf); err != nil {
			return fmt.Errorf("pagedstore: %w", err)
		}
	}
	return f.Sync()
}

// Store is an open clustered table.
type Store struct {
	f         *os.File
	c         curve.Curve
	dims      int
	pageBytes int
	perPage   int
	count     uint64
	firstKeys []uint64
	dataOff   int64
}

// Open validates the file against the curve and loads the page index.
func Open(path string, c curve.Curve) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pagedstore: %w", err)
	}
	head := make([]byte, 40)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint64(head[0:]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(head[8:]) != version {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version", ErrCorrupt)
	}
	dims := int(binary.LittleEndian.Uint32(head[12:]))
	side := binary.LittleEndian.Uint32(head[16:])
	if dims != c.Universe().Dims() || side != c.Universe().Side() {
		f.Close()
		return nil, fmt.Errorf("%w: file is %dD side %d, curve is %v",
			ErrMismatch, dims, side, c.Universe())
	}
	pageBytes := int(binary.LittleEndian.Uint32(head[20:]))
	count := binary.LittleEndian.Uint64(head[24:])
	pageCount := binary.LittleEndian.Uint64(head[32:])
	rs := recordSize(dims)
	if pageBytes < rs {
		f.Close()
		return nil, fmt.Errorf("%w: page bytes %d", ErrCorrupt, pageBytes)
	}
	idx := make([]byte, 8*pageCount)
	if _, err := f.ReadAt(idx, 40); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short page index", ErrCorrupt)
	}
	firstKeys := make([]uint64, pageCount)
	for p := range firstKeys {
		firstKeys[p] = binary.LittleEndian.Uint64(idx[8*p:])
	}
	return &Store{
		f:         f,
		c:         c,
		dims:      dims,
		pageBytes: pageBytes,
		perPage:   pageBytes / rs,
		count:     count,
		firstKeys: firstKeys,
		dataOff:   int64(40 + 8*pageCount),
	}, nil
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// Len returns the number of stored records.
func (s *Store) Len() int { return int(s.count) }

// EstimateSeeks returns the clustering number of r under the store's
// curve — an upper bound on the positioned reads Query will issue —
// without touching the file. Curves with an analytic planner (the onion
// family, Hilbert, Z, Gray, linear orders) answer output-sensitively even
// for queries spanning billions of cells, which is what an admission
// controller or cost-based planner needs per request.
func (s *Store) EstimateSeeks(r geom.Rect) (uint64, error) {
	n, err := cluster.Count(s.c, r)
	if err != nil {
		return 0, fmt.Errorf("pagedstore: %w", err)
	}
	return n, nil
}

// Query returns every record whose point lies in r, reading one page run
// per cluster range and counting the physical access pattern. The range
// decomposition routes through the curve's analytic planner when one
// exists, so planning cost scales with the number of clusters rather than
// the query surface.
func (s *Store) Query(r geom.Rect) ([]Record, Stats, error) {
	var st Stats
	krs, err := ranges.Decompose(s.c, r, 0)
	if err != nil {
		return nil, st, fmt.Errorf("pagedstore: %w", err)
	}
	var out []Record
	lastPage := -2 // page index of the previous read's end; -2 = none
	buf := make([]byte, s.pageBytes)
	for _, kr := range krs {
		// First page that can contain kr.Lo: the first page whose
		// successor starts at or after kr.Lo (duplicate keys may span
		// page boundaries, so the last page with firstKey <= kr.Lo is
		// not necessarily the earliest holder of kr.Lo).
		p := sort.Search(len(s.firstKeys), func(i int) bool {
			return i+1 >= len(s.firstKeys) || s.firstKeys[i+1] >= kr.Lo
		})
		for ; p < len(s.firstKeys) && s.firstKeys[p] <= kr.Hi; p++ {
			if p != lastPage && p != lastPage+1 {
				st.Seeks++
			}
			if p != lastPage { // do not recount a shared boundary page
				st.PagesRead++
				if _, err := s.f.ReadAt(buf, s.dataOff+int64(p)*int64(s.pageBytes)); err != nil {
					return nil, st, fmt.Errorf("%w: page %d: %v", ErrCorrupt, p, err)
				}
				lastPage = p
			}
			recs := s.perPage
			if p == len(s.firstKeys)-1 {
				recs = int(s.count) - p*s.perPage
			}
			rs := recordSize(s.dims)
			for i := 0; i < recs; i++ {
				off := i * rs
				key := binary.LittleEndian.Uint64(buf[off:])
				st.RecordsScanned++
				if key < kr.Lo || key > kr.Hi {
					continue
				}
				pt := make(geom.Point, s.dims)
				for d := 0; d < s.dims; d++ {
					pt[d] = binary.LittleEndian.Uint32(buf[off+8+4*d:])
				}
				out = append(out, Record{
					Point:   pt,
					Payload: binary.LittleEndian.Uint64(buf[off+8+4*s.dims:]),
				})
			}
		}
		// The loop advanced p past the last page it read; remember the
		// page we actually read last for contiguity accounting.
	}
	st.Results = len(out)
	return out, st, nil
}
