package pagedstore

import (
	"sync"
	"sync/atomic"
)

// Cache is a shared page cache: immutable page images keyed by (store,
// page number), bounded by a byte budget and evicted with a sharded clock
// (second-chance) policy. One Cache may back any number of Stores — the
// storage engine gives all its segments one cache, and a sharded engine
// can give one cache to every shard — so the budget is a process-level
// knob, not a per-file one.
//
// The cache holds references to immutable page buffers. A hit hands the
// caller the shared buffer without copying; eviction merely drops the
// cache's reference, so a cursor that still holds the page keeps reading
// it safely while the garbage collector reclaims it afterwards. All
// methods are safe for concurrent use.
//
// Caching is invisible to the logical access accounting: Stats keeps
// counting the positioned reads the query plan pays (the paper's
// clustering number), whether the page bytes come from disk or from the
// cache. Only IOStats — the physical counters — change.
type Cache struct {
	shards           []cacheShard
	hits, misses     atomic.Uint64
	evictions        atomic.Uint64
	admissionRejects atomic.Uint64
}

// CacheStats is a point-in-time snapshot of a Cache: a struct copy with
// no reset or delta semantics of its own. Hits, Misses, Evictions and
// AdmissionRejects are monotonic counters over the cache's lifetime —
// subtract two snapshots to get a rate — while Pages and Bytes describe
// the resident set at the moment of the call. The same counters are
// exported live through the engine's telemetry registry
// (cache_hits_total etc.), so a snapshot here and a registry scrape
// read the same underlying atomics and cannot drift apart.
type CacheStats struct {
	Hits             uint64 // page requests served from memory
	Misses           uint64 // page requests that went to disk
	Evictions        uint64 // pages dropped to stay inside the budget
	AdmissionRejects uint64 // candidate inserts refused by the pressure gate
	Pages            int    // resident pages
	Bytes            int64  // resident bytes
	Budget           int64  // configured byte budget
}

// HitRate returns Hits / (Hits + Misses), or 0 before any request.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

const cacheShardCount = 8 // fixed power of two; shard = key hash & mask

type cacheKey struct {
	store uint64
	page  int
}

type cacheSlot struct {
	key  cacheKey
	buf  []byte
	ref  bool // second-chance bit
	live bool
}

type cacheShard struct {
	mu     sync.Mutex
	index  map[cacheKey]int // key -> slot
	slots  []cacheSlot
	free   []int // dead slot indices
	hand   int   // clock hand over slots
	bytes  int64
	budget int64
	tick   uint64 // admission counter while the shard is full
}

// storeIDs hands every opened Store a process-unique cache identity.
var storeIDs atomic.Uint64

// NewCache returns a page cache with the given byte budget, spread over
// internal shards so concurrent queries do not serialize on one lock. A
// budget smaller than one page effectively disables caching (pages that
// do not fit are simply not retained).
func NewCache(budgetBytes int64) *Cache {
	c := &Cache{shards: make([]cacheShard, cacheShardCount)}
	per := budgetBytes / cacheShardCount
	for i := range c.shards {
		c.shards[i].budget = per
		c.shards[i].index = make(map[cacheKey]int)
	}
	return c
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash for
// cache sharding and filter probing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *Cache) shardOf(k cacheKey) *cacheShard {
	h := mix64(k.store ^ mix64(uint64(k.page)))
	return &c.shards[h&(cacheShardCount-1)]
}

// get returns the cached page image, if resident, and marks it recently
// used.
func (c *Cache) get(store uint64, page int) ([]byte, bool) {
	k := cacheKey{store: store, page: page}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if i, ok := sh.index[k]; ok {
		sh.slots[i].ref = true
		buf := sh.slots[i].buf
		sh.mu.Unlock()
		c.hits.Add(1)
		return buf, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// addCopy admits a copy of the borrowed page image, evicting clock
// victims until the shard fits its budget. Pages larger than the shard
// budget are not retained; a racing duplicate insert keeps the resident
// copy. The copy is taken only when the page is actually admitted, so a
// skipped insert costs no allocation.
//
// Admission is pressure-gated: once the shard is full, only every 8th
// candidate displaces a resident page. A cache smaller than a scan's
// working set would otherwise recycle the entire miss traffic through
// insert + eviction for zero hits; gating keeps a thrashing cache cheap
// while still letting genuinely hot pages in — a hot page's repeated
// misses soon cross the gate.
func (c *Cache) addCopy(store uint64, page int, buf []byte) {
	k := cacheKey{store: store, page: page}
	sh := c.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.index[k]; ok {
		return
	}
	need := int64(len(buf))
	if need > sh.budget {
		c.admissionRejects.Add(1)
		return
	}
	if sh.bytes+need > sh.budget {
		sh.tick++
		if sh.tick&7 != 0 {
			c.admissionRejects.Add(1)
			return
		}
	}
	for sh.bytes+need > sh.budget {
		if !sh.evictOne() {
			c.admissionRejects.Add(1)
			return
		}
		c.evictions.Add(1)
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	slot := -1
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		sh.slots = append(sh.slots, cacheSlot{})
		slot = len(sh.slots) - 1
	}
	sh.slots[slot] = cacheSlot{key: k, buf: cp, ref: true, live: true}
	sh.index[k] = slot
	sh.bytes += need
}

// evictOne advances the clock to the first slot without a second chance
// and drops it. It reports whether anything was evicted.
func (sh *cacheShard) evictOne() bool {
	// Two sweeps bound the scan: the first clears every ref bit, the
	// second must find a victim (unless the shard is empty).
	for scanned := 0; scanned < 2*len(sh.slots); scanned++ {
		if len(sh.slots) == 0 {
			return false
		}
		i := sh.hand
		sh.hand = (sh.hand + 1) % len(sh.slots)
		s := &sh.slots[i]
		if !s.live {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		sh.bytes -= int64(len(s.buf))
		delete(sh.index, s.key)
		*s = cacheSlot{}
		sh.free = append(sh.free, i)
		return true
	}
	return false
}

// purge drops every resident page of the given store; Store.Close calls
// it so a closed (or compacted-away) segment stops occupying budget.
// The scan is O(resident pages) across all shards — fine on the
// flush/compaction cadence that retires segments; if profiles ever show
// it, a per-store slot list would make it O(pages of this store).
func (c *Cache) purge(store uint64) {
	for si := range c.shards {
		sh := &c.shards[si]
		sh.mu.Lock()
		for k, i := range sh.index {
			if k.store != store {
				continue
			}
			sh.bytes -= int64(len(sh.slots[i].buf))
			sh.slots[i] = cacheSlot{}
			sh.free = append(sh.free, i)
			delete(sh.index, k)
		}
		sh.mu.Unlock()
	}
}

// Stats sums the shard states plus the global monotonic counters.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	st.Hits, st.Misses, st.Evictions, st.AdmissionRejects = c.Counters()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Budget += sh.budget
		st.Bytes += sh.bytes
		st.Pages += len(sh.index)
		sh.mu.Unlock()
	}
	return st
}

// Counters returns the monotonic lifetime counters without touching any
// shard lock, so telemetry can sample them on every scrape at no cost
// to concurrent readers.
func (c *Cache) Counters() (hits, misses, evictions, admissionRejects uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.admissionRejects.Load()
}
