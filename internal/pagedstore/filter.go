package pagedstore

import "encoding/binary"

// keyFilter is a standard Bloom filter over the store's curve keys,
// persisted in the version-3 segment footer. A negative answer is exact
// (the key is certainly absent), so a point lookup whose key fails the
// filter can skip the store without touching disk; a positive answer
// sends the lookup to the page fences as before. Sized at
// filterBitsPerKey bits per key with filterHashes probes, the false
// positive rate is under 1%.
type keyFilter struct {
	k     uint32
	words []uint64
}

const (
	filterBitsPerKey = 10
	filterHashes     = 7
	// filterMaxProbe bounds how many keys of a narrow range SeekRange
	// probes through the filter before falling back to the fences: a
	// range of at most this many cells can be proven empty key by key.
	filterMaxProbe = 8
)

// buildFilter constructs the filter for the given keys (duplicates are
// fine). It returns nil for an empty key set.
func buildFilter(keys []uint64) *keyFilter {
	if len(keys) == 0 {
		return nil
	}
	words := (len(keys)*filterBitsPerKey + 63) / 64
	f := &keyFilter{k: filterHashes, words: make([]uint64, words)}
	for _, key := range keys {
		f.set(key)
	}
	return f
}

// probe derives the i-th bit index for key by double hashing: two
// independent 64-bit hashes from the splitmix64 finalizer, the second
// forced odd so every probe stride visits all bit positions.
func (f *keyFilter) probe(key uint64, i uint32) uint64 {
	h1 := mix64(key)
	h2 := mix64(key^0x9e3779b97f4a7c15) | 1
	bits := uint64(len(f.words)) * 64
	return (h1 + uint64(i)*h2) % bits
}

func (f *keyFilter) set(key uint64) {
	for i := uint32(0); i < f.k; i++ {
		b := f.probe(key, i)
		f.words[b/64] |= 1 << (b % 64)
	}
}

// mayContain reports whether key could be in the set; false is exact.
func (f *keyFilter) mayContain(key uint64) bool {
	for i := uint32(0); i < f.k; i++ {
		b := f.probe(key, i)
		if f.words[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// marshal renders the filter section of the v3 footer: k, word count,
// words, all little endian. A nil filter marshals as an empty section
// header (k = 0, words = 0).
func (f *keyFilter) marshal() []byte {
	k, n := uint32(0), 0
	if f != nil {
		k, n = f.k, len(f.words)
	}
	out := make([]byte, 8+8*n)
	binary.LittleEndian.PutUint32(out[0:], k)
	binary.LittleEndian.PutUint32(out[4:], uint32(n))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(out[8+8*i:], f.words[i])
	}
	return out
}

// unmarshalFilter parses a filter section; it returns nil (no filter)
// for an empty section and false for a malformed one.
func unmarshalFilter(b []byte) (*keyFilter, bool) {
	if len(b) < 8 {
		return nil, false
	}
	k := binary.LittleEndian.Uint32(b[0:])
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) < 8+8*n {
		return nil, false
	}
	if k == 0 || n == 0 {
		if k != 0 || n != 0 {
			return nil, false // half-empty header
		}
		return nil, true
	}
	if k > 64 {
		return nil, false
	}
	f := &keyFilter{k: k, words: make([]uint64, n)}
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(b[8+8*i:])
	}
	return f, true
}
