package pagedstore

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// runCursorQuery executes a rectangle query through a cursor, returning
// the unmarked records plus both the logical and the physical tallies.
func runCursorQuery(t *testing.T, s *Store, r geom.Rect) ([]Record, Stats, IOStats) {
	t.Helper()
	krs, err := ranges.Decompose(s.c, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := s.AcquireCursor()
	defer cur.Release()
	var out []Record
	var rec Record
	for _, kr := range krs {
		cur.SeekRange(kr)
		for {
			marked, ok, err := cur.NextInto(&rec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if !marked {
				out = AppendRecord(out, rec.Point, rec.Payload)
			}
		}
	}
	st := cur.Stats()
	st.Results = len(out)
	return out, st, cur.IO()
}

func equalRecs(t *testing.T, r geom.Rect, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%v: %d records, want %d", r, len(got), len(want))
	}
	for i := range want {
		if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
			t.Fatalf("%v: record %d = %v/%d, want %v/%d",
				r, i, got[i].Point, got[i].Payload, want[i].Point, want[i].Payload)
		}
	}
}

// TestCachedStoreBitIdentical is the core cache contract: the same
// version-3 file opened bare and opened behind a tiny (eviction-stormy)
// cache must answer every query with bit-identical records AND logical
// Stats, while the cached side's physical page fetches drop below its
// logical page reads once the working set warms.
func TestCachedStoreBitIdentical(t *testing.T) {
	side := uint32(64)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, o.Universe(), 4000, 7)
	path := tmpPath(t)
	if err := WriteMarked(path, o, recs, make([]bool, len(recs)), 512); err != nil {
		t.Fatal(err)
	}
	bare, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	cache := NewCache(16 * 512) // two pages per cache shard: constant eviction
	cached, err := OpenCached(path, o, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()

	rng := rand.New(rand.NewSource(3))
	var logicalPages, fetched int
	for trial := 0; trial < 200; trial++ {
		lo := geom.Point{uint32(rng.Intn(int(side) - 8)), uint32(rng.Intn(int(side) - 8))}
		r := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 7, lo[1] + 7}}
		want, wst, wio := runCursorQuery(t, bare, r)
		got, gst, gio := runCursorQuery(t, cached, r)
		equalRecs(t, r, got, want)
		if gst != wst {
			t.Fatalf("%v: cached stats %+v != bare stats %+v", r, gst, wst)
		}
		// Physical work never exceeds logical work (the fences prune even
		// on the bare store), and the cached side only replaces fetches
		// with hits — it never adds physical reads.
		if wio.PagesFetched > wst.PagesRead || wio.CacheHits != 0 {
			t.Fatalf("%v: bare store io %+v for %d logical reads", r, wio, wst.PagesRead)
		}
		if gio.PagesFetched+gio.CacheHits > gst.PagesRead {
			t.Fatalf("%v: cached store fetched %d + hit %d > %d logical reads",
				r, gio.PagesFetched, gio.CacheHits, gst.PagesRead)
		}
		if gio.PagesFetched > wio.PagesFetched {
			t.Fatalf("%v: cache added physical reads: %d > %d", r, gio.PagesFetched, wio.PagesFetched)
		}
		logicalPages += wio.PagesFetched
		fetched += gio.PagesFetched
	}
	if fetched >= logicalPages {
		t.Fatalf("cache absorbed nothing: %d fetches vs %d bare fetches", fetched, logicalPages)
	}
	cst := cache.Stats()
	if cst.Hits == 0 || cst.Bytes > cst.Budget || cst.Pages > 16 {
		t.Fatalf("cache stats %+v", cst)
	}
}

// TestFilterAndFencePruning: on a version-3 store, point lookups for
// absent keys and ranges that fall in inter-page gaps are answered
// without any physical read, while the logical Stats stay bit-identical
// to a version-1 file of the same records.
func TestFilterAndFencePruning(t *testing.T) {
	side := uint32(64)
	o, _ := core.NewOnion2D(side)
	u := o.Universe()
	// A sparse store: every 5th curve key, so plenty of absent keys.
	var recs []Record
	p := make(geom.Point, 2)
	for key := uint64(0); key < u.Size(); key += 5 {
		o.Coords(key, p)
		recs = append(recs, Record{Point: p.Clone(), Payload: key})
	}
	pathV1, pathV3 := tmpPath(t), tmpPath(t)
	if err := Write(pathV1, o, recs, 512); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarked(pathV3, o, recs, make([]bool, len(recs)), 512); err != nil {
		t.Fatal(err)
	}
	v1, err := Open(pathV1, o)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v3, err := Open(pathV3, o)
	if err != nil {
		t.Fatal(err)
	}
	defer v3.Close()
	if v3.filter == nil || v3.pageMax == nil {
		t.Fatal("version-3 store opened without its pruning footer")
	}

	var pruned int
	for key := uint64(0); key < u.Size(); key++ {
		o.Coords(key, p)
		r := geom.Rect{Lo: p.Clone(), Hi: p.Clone()}
		want, wst, _ := runCursorQuery(t, v1, r)
		got, gst, gio := runCursorQuery(t, v3, r)
		equalRecs(t, r, got, want)
		if gst != wst {
			t.Fatalf("key %d: v3 stats %+v != v1 stats %+v", key, gst, wst)
		}
		if key%5 != 0 {
			// Absent key: the Bloom filter (no false negatives on the
			// present keys is checked above by the record equality) lets
			// most lookups skip the fetch entirely.
			if gio.PagesFetched == 0 && gio.CacheHits == 0 {
				pruned++
			}
		} else if len(got) != 1 {
			t.Fatalf("present key %d returned %d records", key, len(got))
		}
	}
	// With ~10 bits/key the false positive rate is ~1%; demand the
	// overwhelming majority of absent-point lookups were free.
	absent := int(u.Size()) - len(recs)
	if pruned < absent*9/10 {
		t.Fatalf("only %d of %d absent lookups pruned", pruned, absent)
	}
}

// TestFilterNoFalseNegatives: every inserted key answers mayContain.
func TestFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	f := buildFilter(keys)
	for _, k := range keys {
		if !f.mayContain(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
	// And the false positive rate on fresh random keys is sane.
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.mayContain(rng.Uint64()) {
			fp++
		}
	}
	if fp > 500 { // ~1% expected; 5% is a hard failure
		t.Fatalf("%d/10000 false positives", fp)
	}
}

// TestFilterRoundTrip: marshal/unmarshal preserves the filter bit for
// bit, and the empty-section encoding round-trips to nil.
func TestFilterRoundTrip(t *testing.T) {
	f := buildFilter([]uint64{1, 99, 12345, 1 << 40})
	g, ok := unmarshalFilter(f.marshal())
	if !ok || g == nil || g.k != f.k || len(g.words) != len(f.words) {
		t.Fatalf("round trip: %+v -> %+v (ok=%v)", f, g, ok)
	}
	for i := range f.words {
		if f.words[i] != g.words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
	if n, ok := unmarshalFilter((*keyFilter)(nil).marshal()); !ok || n != nil {
		t.Fatalf("empty filter round trip: %v ok=%v", n, ok)
	}
	if _, ok := unmarshalFilter([]byte{1, 2, 3}); ok {
		t.Fatal("truncated filter accepted")
	}
}

// TestCachePurgeOnClose: closing a store drops its pages from the shared
// cache so a dead segment stops occupying budget.
func TestCachePurgeOnClose(t *testing.T) {
	side := uint32(32)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, o.Universe(), 1000, 5)
	path := tmpPath(t)
	if err := WriteMarked(path, o, recs, make([]bool, len(recs)), 512); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(1 << 20)
	s, err := OpenCached(path, o, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(o.Universe().Rect()); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Pages == 0 {
		t.Fatalf("nothing cached: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Pages != 0 || st.Bytes != 0 {
		t.Fatalf("pages survive close: %+v", st)
	}
}

// TestCachedParallelQueryRace hammers one cached store (cache small
// enough for eviction storms) from many goroutines; run under -race this
// pins the concurrency safety of the cache fast paths.
func TestCachedParallelQueryRace(t *testing.T) {
	side := uint32(64)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, o.Universe(), 5000, 21)
	path := tmpPath(t)
	if err := WriteMarked(path, o, recs, make([]bool, len(recs)), 512); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(8 * 512)
	s, err := OpenCached(path, o, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want, wantStats, err := s.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, st, err := s.Query(o.Universe().Rect())
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want) || st != wantStats {
					t.Errorf("goroutine %d: %d records stats %+v, want %d %+v",
						g, len(got), st, len(want), wantStats)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheMonotonicCounters pins the counter semantics of CacheStats:
// hits/misses/evictions/admission-rejects only ever grow, stay
// consistent under concurrent access, and the lock-free Counters()
// accessor reads the same values as a full Stats() snapshot.
func TestCacheMonotonicCounters(t *testing.T) {
	c := NewCache(cacheShardCount * 64) // one tiny 64-byte budget per shard
	page := make([]byte, 64)

	// Miss then hit on the same key.
	if _, ok := c.get(1, 0); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.addCopy(1, 0, page)
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("expected hit after addCopy")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}

	// Oversized pages are rejected by admission, not silently dropped.
	big := make([]byte, 1024)
	c.addCopy(1, 99, big)
	if got := c.Stats().AdmissionRejects; got == 0 {
		t.Fatalf("oversized insert should count as admission reject")
	}

	// Hammer one shard's budget: every insert beyond capacity either
	// evicts (counter grows) or is gated (reject counter grows).
	for i := 0; i < 1000; i++ {
		c.addCopy(2, i, page)
	}
	st = c.Stats()
	if st.Evictions+st.AdmissionRejects < 900 {
		t.Fatalf("expected ~1000 evictions+rejects under pressure, got %d+%d",
			st.Evictions, st.AdmissionRejects)
	}

	// Counters() and Stats() read the same atomics.
	h, m, e, a := c.Counters()
	st = c.Stats()
	if h != st.Hits || m != st.Misses || e != st.Evictions || a != st.AdmissionRejects {
		t.Fatalf("Counters() = %d/%d/%d/%d, Stats = %+v", h, m, e, a, st)
	}

	// Monotonic under concurrency: sample repeatedly while another
	// goroutine churns the cache.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			c.addCopy(3, i, page)
			c.get(3, i)
		}
	}()
	var prev CacheStats
	for i := 0; i < 1000; i++ {
		cur := c.Stats()
		if cur.Hits < prev.Hits || cur.Misses < prev.Misses ||
			cur.Evictions < prev.Evictions || cur.AdmissionRejects < prev.AdmissionRejects {
			t.Fatalf("counters went backwards: %+v then %+v", prev, cur)
		}
		prev = cur
	}
	<-done
}
