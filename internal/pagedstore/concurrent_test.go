package pagedstore

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// TestParallelQueryRace hammers one open Store from many goroutines at
// once. All reads are positioned ReadAt calls and every query owns its
// Cursor, so under -race this must be silent and every query must return
// the same answer it returns single-threaded.
func TestParallelQueryRace(t *testing.T) {
	side := uint32(64)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, geom.MustUniverse(2, side), 3000, 99)
	path := tmpPath(t)
	if err := Write(path, o, recs, 512); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Reference answers, computed single-threaded.
	rects := make([]geom.Rect, 24)
	wantLen := make([]int, len(rects))
	wantStats := make([]Stats, len(rects))
	rng := rand.New(rand.NewSource(7))
	for i := range rects {
		lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		for d := range lo {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		rects[i] = geom.Rect{Lo: lo, Hi: hi}
		got, stats, err := st.Query(rects[i])
		if err != nil {
			t.Fatal(err)
		}
		wantLen[i] = len(got)
		wantStats[i] = stats
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(rects)
				got, stats, err := st.Query(rects[i])
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != wantLen[i] || stats != wantStats[i] {
					t.Errorf("rect %v: parallel query diverged: %d/%+v vs %d/%+v",
						rects[i], len(got), stats, wantLen[i], wantStats[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestWriteMarkedRoundTrip: marked records are persisted, reported by the
// cursor, skipped by Query, and invisible in version-1 files.
func TestWriteMarkedRoundTrip(t *testing.T) {
	side := uint32(16)
	o, _ := core.NewOnion2D(side)
	var recs []Record
	var marks []bool
	for x := uint32(0); x < side; x++ {
		recs = append(recs, Record{Point: geom.Point{x, 3}, Payload: uint64(x)})
		marks = append(marks, x%3 == 0)
	}
	path := tmpPath(t)
	if err := WriteMarked(path, o, recs, marks, 256); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Marked() {
		t.Fatal("Marked() = false on a store with marks")
	}
	row := geom.Rect{Lo: geom.Point{0, 3}, Hi: geom.Point{side - 1, 3}}
	got, stats, err := st.Query(row)
	if err != nil {
		t.Fatal(err)
	}
	wantLive := 0
	for _, m := range marks {
		if !m {
			wantLive++
		}
	}
	if len(got) != wantLive || stats.Results != wantLive {
		t.Fatalf("query returned %d records (stats %d), want %d live", len(got), stats.Results, wantLive)
	}
	for _, rec := range got {
		if rec.Point[0]%3 == 0 {
			t.Fatalf("marked record %v leaked into Query", rec.Point)
		}
	}
	// The cursor surfaces every record with its mark and key.
	cur := st.NewCursor()
	cur.SeekRange(curve.KeyRange{Lo: 0, Hi: o.Universe().Size() - 1})
	seen, seenMarked := 0, 0
	lastKey := uint64(0)
	for {
		rec, marked, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if cur.Key() != o.Index(rec.Point) {
			t.Fatalf("cursor key %d != curve key %d", cur.Key(), o.Index(rec.Point))
		}
		if seen > 0 && cur.Key() < lastKey {
			t.Fatal("cursor out of key order")
		}
		lastKey = cur.Key()
		seen++
		if marked {
			seenMarked++
		}
		wantMarked := rec.Point[0]%3 == 0
		if marked != wantMarked {
			t.Fatalf("record %v: marked=%v, want %v", rec.Point, marked, wantMarked)
		}
	}
	if seen != len(recs) || seenMarked != len(recs)-wantLive {
		t.Fatalf("cursor saw %d records (%d marked)", seen, seenMarked)
	}
}

// TestWriteMarkedNil: a nil mark slice produces a version-1 file,
// byte-identical behavior to Write.
func TestWriteMarkedNil(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	recs := []Record{{Point: geom.Point{1, 2}, Payload: 5}}
	p1, p2 := tmpPath(t), tmpPath(t)
	if err := Write(p1, o, recs, 256); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarked(p2, o, recs, nil, 256); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(p2, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Marked() {
		t.Fatal("nil marks produced a marked store")
	}
	if err := WriteMarked(tmpPath(t), o, recs, []bool{true, false}, 256); err == nil {
		t.Fatal("mismatched mark count accepted")
	}
}

// TestCursorMatchesQueryStats compares Query (now cursor-backed) against
// an inlined copy of the original page-run algorithm: results and every
// stats field must be identical. This pins the exact accounting semantics
// the storage engine's bit-identical seek counting rests on.
func TestCursorMatchesQueryStats(t *testing.T) {
	side := uint32(32)
	o, _ := core.NewOnion2D(side)
	recs := buildRecords(t, geom.MustUniverse(2, side), 1200, 3)
	path := tmpPath(t)
	if err := Write(path, o, recs, 256); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		for d := range lo {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		got, gotStats, err := st.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		want, wantStats, err := referenceQuery(st, r)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Fatalf("%v: stats %+v, reference %+v", r, gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, reference %d", r, len(got), len(want))
		}
		for i := range want {
			if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
				t.Fatalf("%v: record %d diverges", r, i)
			}
		}
	}
}

// referenceQuery is the pre-cursor Query implementation, kept verbatim as
// the semantic reference for page-run iteration and stats accounting.
func referenceQuery(s *Store, r geom.Rect) ([]Record, Stats, error) {
	var st Stats
	krs, err := ranges.Decompose(s.c, r, 0)
	if err != nil {
		return nil, st, err
	}
	var out []Record
	lastPage := -2
	buf := make([]byte, s.pageBytes)
	for _, kr := range krs {
		p := sort.Search(len(s.firstKeys), func(i int) bool {
			return i+1 >= len(s.firstKeys) || s.firstKeys[i+1] >= kr.Lo
		})
		for ; p < len(s.firstKeys) && s.firstKeys[p] <= kr.Hi; p++ {
			if p != lastPage && p != lastPage+1 {
				st.Seeks++
			}
			if p != lastPage {
				st.PagesRead++
				if _, err := s.f.ReadAt(buf, s.dataOff+int64(p)*int64(s.pageBytes)); err != nil {
					return nil, st, err
				}
				lastPage = p
			}
			recs := s.perPage
			if p == len(s.firstKeys)-1 {
				recs = int(s.count) - p*s.perPage
			}
			rs := recordSize(s.dims)
			for i := 0; i < recs; i++ {
				off := i * rs
				key := binary.LittleEndian.Uint64(buf[off:])
				st.RecordsScanned++
				if key < kr.Lo || key > kr.Hi {
					continue
				}
				pt := make(geom.Point, s.dims)
				for d := 0; d < s.dims; d++ {
					pt[d] = binary.LittleEndian.Uint32(buf[off+8+4*d:])
				}
				out = append(out, Record{
					Point:   pt,
					Payload: binary.LittleEndian.Uint64(buf[off+8+4*s.dims:]),
				})
			}
		}
	}
	st.Results = len(out)
	return out, st, nil
}
