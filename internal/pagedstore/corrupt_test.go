package pagedstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
)

// writeV4 builds a marked (format v4) store and returns its path.
func writeV4(t testing.TB, n int) string {
	t.Helper()
	side := uint32(64)
	o, err := core.NewOnion2D(side)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	marks := make([]bool, n)
	for i := range recs {
		recs[i] = Record{
			Point:   geom.Point{uint32(i*7) % side, uint32(i*13) % side},
			Payload: uint64(i),
		}
		marks[i] = i%17 == 0
	}
	path := filepath.Join(t.TempDir(), "store.pst")
	if err := WriteMarked(path, o, recs, marks, 256); err != nil {
		t.Fatal(err)
	}
	return path
}

func flipByte(t testing.TB, path string, off int64, xor byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= xor
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func fullScan(s *Store) (int, error) {
	side := uint32(64)
	r := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{side - 1, side - 1}}
	recs, _, err := s.Query(r)
	return len(recs), err
}

func TestV4PageCorruptionDetected(t *testing.T) {
	path := writeV4(t, 500)
	o, _ := core.NewOnion2D(64)

	// Baseline: clean store opens, scans, verifies.
	s, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	cleanN, err := fullScan(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyPages(); err != nil {
		t.Fatalf("clean store failed verify: %v", err)
	}
	lo, hi, ok := s.KeySpan()
	if !ok || lo > hi {
		t.Fatalf("key span %d..%d ok=%v", lo, hi, ok)
	}
	s.Close()
	if cleanN == 0 {
		t.Fatal("scan returned nothing")
	}

	// Flip one byte in the middle of the page data: open still succeeds
	// (pages are lazily verified), but both the scrubber and any query
	// touching the page report ErrCorrupt.
	s2, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	dataMid := s2.dataOff + int64(len(s2.firstKeys)/2)*int64(s2.pageBytes) + 17
	s2.Close()
	flipByte(t, path, dataMid, 0x40)

	s3, err := Open(path, o)
	if err != nil {
		t.Fatalf("open after page corruption should succeed (lazy verify): %v", err)
	}
	defer s3.Close()
	if err := s3.VerifyPages(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyPages = %v, want ErrCorrupt", err)
	}
	if _, err := fullScan(s3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("query over corrupt page = %v, want ErrCorrupt", err)
	}
}

func TestV4CorruptPageNeverEntersCache(t *testing.T) {
	path := writeV4(t, 500)
	o, _ := core.NewOnion2D(64)
	s, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	dataMid := s.dataOff + int64(len(s.firstKeys)/2)*int64(s.pageBytes) + 3
	s.Close()
	flipByte(t, path, dataMid, 0x81)

	cache := NewCache(1 << 20)
	s2, err := OpenCached(path, o, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 3; i++ {
		if _, err := fullScan(s2); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan %d = %v, want ErrCorrupt (cache must not mask corruption)", i, err)
		}
	}
}

func TestV4MetadataCorruptionDetectedAtOpen(t *testing.T) {
	path := writeV4(t, 300)
	o, _ := core.NewOnion2D(64)
	s, err := Open(path, o)
	if err != nil {
		t.Fatal(err)
	}
	idxOff := int64(40) + 8            // second entry of the page index
	tailOff := s.dataOff - 8           // last index entry
	marksOff := s.dataOff + int64(len(s.firstKeys))*int64(s.pageBytes)
	s.Close()

	for _, off := range []int64{idxOff, tailOff, marksOff} {
		func() {
			cp := filepath.Join(t.TempDir(), "cp.pst")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(cp, b, 0o644); err != nil {
				t.Fatal(err)
			}
			flipByte(t, cp, off, 0x04)
			if _, err := Open(cp, o); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open with metadata flip at %d = %v, want ErrCorrupt", off, err)
			}
		}()
	}
}

// FuzzVerifyCorrupt flips one byte anywhere in a valid v4 file and
// asserts the corruption is always detected: either Open rejects the
// file, or a full scan plus VerifyPages reports ErrCorrupt. A v4 store
// must never serve silently wrong data off a single flipped byte.
func FuzzVerifyCorrupt(f *testing.F) {
	path := writeV4(f, 400)
	orig, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	o, err := core.NewOnion2D(64)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), byte(0x01))    // magic
	f.Add(uint32(9), byte(0x80))    // version
	f.Add(uint32(26), byte(0xff))   // record count
	f.Add(uint32(37), byte(0x7f))   // page count high bytes
	f.Add(uint32(48), byte(0x20))   // page index
	f.Add(uint32(2000), byte(0x01)) // page data
	f.Add(uint32(len(orig)-3), byte(0x10))
	f.Fuzz(func(t *testing.T, off uint32, xor byte) {
		if xor == 0 {
			return
		}
		mut := make([]byte, len(orig))
		copy(mut, orig)
		mut[int(off)%len(mut)] ^= xor
		p := filepath.Join(t.TempDir(), "mut.pst")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(p, o)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMismatch) {
				t.Fatalf("open: unexpected error class: %v", err)
			}
			return
		}
		defer s.Close()
		if _, err := fullScan(s); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("scan: unexpected error class: %v", err)
			}
			return
		}
		if err := s.VerifyPages(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("one-byte flip at %d^%#x survived open, scan and verify: %v",
				int(off)%len(mut), xor, err)
		}
	})
}
