package geom

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewUniverseValidation(t *testing.T) {
	cases := []struct {
		name string
		dims int
		side uint32
		err  error
	}{
		{"zero dims", 0, 4, ErrDims},
		{"negative dims", -1, 4, ErrDims},
		{"zero side", 2, 0, ErrSide},
		{"ok 2d", 2, 1024, nil},
		{"ok 3d", 3, 512, nil},
		{"ok 1d", 1, 1, nil},
		{"too large 2d", 4, 1 << 31, ErrTooLarge},
		{"too large 3d", 3, 1 << 21, ErrTooLarge},
		{"max 2d", 2, 1 << 31, nil},
		{"max 3d", 3, 1 << 20, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewUniverse(tc.dims, tc.side)
			if tc.err == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.err != nil && !errors.Is(err, tc.err) {
				t.Fatalf("want %v, got %v", tc.err, err)
			}
		})
	}
}

func TestUniverseSize(t *testing.T) {
	u := MustUniverse(3, 8)
	if got := u.Size(); got != 512 {
		t.Fatalf("Size() = %d, want 512", got)
	}
	if u.Dims() != 3 || u.Side() != 8 {
		t.Fatalf("accessors wrong: %v", u)
	}
	if u.String() != "8^3" {
		t.Fatalf("String() = %q", u.String())
	}
}

func TestUniverseContains(t *testing.T) {
	u := MustUniverse(2, 4)
	if !u.Contains(Point{0, 0}) || !u.Contains(Point{3, 3}) {
		t.Fatal("corner cells should be contained")
	}
	if u.Contains(Point{4, 0}) || u.Contains(Point{0, 4}) {
		t.Fatal("out-of-range cell contained")
	}
	if u.Contains(Point{1}) || u.Contains(Point{1, 1, 1}) {
		t.Fatal("wrong dimensionality contained")
	}
}

func TestUniverseRect(t *testing.T) {
	u := MustUniverse(2, 5)
	r := u.Rect()
	if r.Cells() != 25 {
		t.Fatalf("full rect cells = %d", r.Cells())
	}
	if !r.In(u) {
		t.Fatal("full rect must be inside its universe")
	}
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(Point{1, 2}, Point{3, 4}); err != nil {
		t.Fatalf("valid rect rejected: %v", err)
	}
	if _, err := NewRect(Point{3, 2}, Point{1, 4}); !errors.Is(err, ErrBounds) {
		t.Fatalf("lo>hi accepted: %v", err)
	}
	if _, err := NewRect(Point{1}, Point{1, 2}); !errors.Is(err, ErrBounds) {
		t.Fatalf("dim mismatch accepted: %v", err)
	}
	if _, err := NewRect(Point{}, Point{}); !errors.Is(err, ErrBounds) {
		t.Fatalf("empty accepted: %v", err)
	}
}

func TestRectAt(t *testing.T) {
	r, err := RectAt(Point{2, 3}, []uint32{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Rect{Lo: Point{2, 3}, Hi: Point{5, 3}}
	if !r.Equal(want) {
		t.Fatalf("got %v want %v", r, want)
	}
	if _, err := RectAt(Point{0}, []uint32{0}); !errors.Is(err, ErrBounds) {
		t.Fatal("zero-side shape accepted")
	}
	if _, err := RectAt(Point{^uint32(0)}, []uint32{2}); !errors.Is(err, ErrBounds) {
		t.Fatal("overflow accepted")
	}
	if _, err := RectAt(Point{0, 0}, []uint32{2}); !errors.Is(err, ErrBounds) {
		t.Fatal("shape dim mismatch accepted")
	}
}

func TestRectAccessors(t *testing.T) {
	r := Rect{Lo: Point{1, 2, 3}, Hi: Point{4, 2, 7}}
	if r.Dims() != 3 {
		t.Fatal("dims")
	}
	if r.Side(0) != 4 || r.Side(1) != 1 || r.Side(2) != 5 {
		t.Fatalf("sides: %v", r.Shape())
	}
	if r.Cells() != 20 {
		t.Fatalf("cells = %d", r.Cells())
	}
	if !r.Contains(Point{1, 2, 3}) || !r.Contains(Point{4, 2, 7}) {
		t.Fatal("corners not contained")
	}
	if r.Contains(Point{0, 2, 3}) || r.Contains(Point{1, 3, 3}) {
		t.Fatal("outside cell contained")
	}
}

func TestRectForEachCount(t *testing.T) {
	r := Rect{Lo: Point{1, 1}, Hi: Point{3, 2}}
	var seen []Point
	r.ForEach(func(p Point) bool {
		seen = append(seen, p.Clone())
		return true
	})
	if uint64(len(seen)) != r.Cells() {
		t.Fatalf("visited %d cells, want %d", len(seen), r.Cells())
	}
	// Row-major: dim 0 fastest.
	want := []Point{{1, 1}, {2, 1}, {3, 1}, {1, 2}, {2, 2}, {3, 2}}
	for i := range want {
		if !seen[i].Equal(want[i]) {
			t.Fatalf("cell %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestRectForEachEarlyStop(t *testing.T) {
	r := Rect{Lo: Point{0, 0}, Hi: Point{9, 9}}
	count := 0
	r.ForEach(func(Point) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("visited %d cells after early stop", count)
	}
}

func TestRectForEachSingleCell(t *testing.T) {
	r := Rect{Lo: Point{7}, Hi: Point{7}}
	count := 0
	r.ForEach(func(p Point) bool {
		if p[0] != 7 {
			t.Fatalf("wrong cell %v", p)
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestFacesPairCount2D(t *testing.T) {
	u := MustUniverse(2, 8)
	// Interior rect: 4 faces exposed, perimeter pairs = 2*(w+h).
	r := Rect{Lo: Point{2, 3}, Hi: Point{4, 5}} // 3x3
	pairs := 0
	r.Faces(u, func(in, out Point) bool {
		if !r.Contains(in) {
			t.Fatalf("inside point %v not in rect", in)
		}
		if r.Contains(out) {
			t.Fatalf("outside point %v in rect", out)
		}
		if !u.Contains(out) {
			t.Fatalf("outside point %v not in universe", out)
		}
		pairs++
		return true
	})
	if pairs != 12 {
		t.Fatalf("pairs = %d, want 12", pairs)
	}
}

func TestFacesAtUniverseBoundary(t *testing.T) {
	u := MustUniverse(2, 8)
	// Rect touching the universe corner: two faces have no outside neighbor.
	r := Rect{Lo: Point{0, 0}, Hi: Point{2, 2}}
	pairs := 0
	r.Faces(u, func(in, out Point) bool { pairs++; return true })
	if pairs != 6 { // only the two high faces: 3+3
		t.Fatalf("pairs = %d, want 6", pairs)
	}
	// Whole universe: no pairs at all.
	pairs = 0
	u.Rect().Faces(u, func(in, out Point) bool { pairs++; return true })
	if pairs != 0 {
		t.Fatalf("whole-universe pairs = %d", pairs)
	}
}

func TestFacesPairCount3D(t *testing.T) {
	u := MustUniverse(3, 16)
	r := Rect{Lo: Point{4, 4, 4}, Hi: Point{7, 8, 9}} // 4x5x6
	pairs := 0
	r.Faces(u, func(in, out Point) bool { pairs++; return true })
	want := 2 * (4*5 + 5*6 + 4*6)
	if pairs != want {
		t.Fatalf("pairs = %d, want %d", pairs, want)
	}
}

func TestFacesEarlyStop(t *testing.T) {
	u := MustUniverse(2, 8)
	r := Rect{Lo: Point{2, 2}, Hi: Point{5, 5}}
	count := 0
	r.Faces(u, func(in, out Point) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSurfaceCells(t *testing.T) {
	cases := []struct {
		r    Rect
		want uint64
	}{
		{Rect{Lo: Point{0, 0}, Hi: Point{4, 4}}, 25 - 9},
		{Rect{Lo: Point{0, 0}, Hi: Point{1, 1}}, 4},
		{Rect{Lo: Point{3}, Hi: Point{9}}, 2},
		{Rect{Lo: Point{0, 0, 0}, Hi: Point{3, 3, 3}}, 64 - 8},
		{Rect{Lo: Point{5, 5}, Hi: Point{5, 9}}, 5},
	}
	for _, tc := range cases {
		if got := tc.r.SurfaceCells(); got != tc.want {
			t.Errorf("SurfaceCells(%v) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{Lo: Point{0, 0}, Hi: Point{5, 5}}
	b := Rect{Lo: Point{3, 4}, Hi: Point{9, 9}}
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := Rect{Lo: Point{3, 4}, Hi: Point{5, 5}}
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	c := Rect{Lo: Point{6, 6}, Hi: Point{7, 7}}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint rects intersected")
	}
	if _, ok := a.Intersect(Rect{Lo: Point{0}, Hi: Point{0}}); ok {
		t.Fatal("dim mismatch intersected")
	}
}

func TestPointCloneEqualString(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("clone aliases original")
	}
	if p.Equal(q) || !p.Equal(Point{1, 2, 3}) || p.Equal(Point{1, 2}) {
		t.Fatal("Equal broken")
	}
	if p.String() != "(1,2,3)" {
		t.Fatalf("String() = %q", p.String())
	}
}

// Property: Faces pair count equals the analytic exposed-surface count for
// rects strictly inside the universe.
func TestFacesCountProperty(t *testing.T) {
	u := MustUniverse(3, 32)
	f := func(lo0, lo1, lo2, s0, s1, s2 uint8) bool {
		lo := Point{uint32(lo0%16) + 1, uint32(lo1%16) + 1, uint32(lo2%16) + 1}
		shape := []uint32{uint32(s0%8) + 1, uint32(s1%8) + 1, uint32(s2%8) + 1}
		r, err := RectAt(lo, shape)
		if err != nil || !r.In(u) {
			return true // skip invalid samples
		}
		pairs := 0
		r.Faces(u, func(in, out Point) bool { pairs++; return true })
		want := 2 * (shape[0]*shape[1] + shape[1]*shape[2] + shape[0]*shape[2])
		return pairs == int(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly Cells() distinct cells, all inside.
func TestForEachProperty(t *testing.T) {
	f := func(lo0, lo1 uint8, s0, s1 uint8) bool {
		r, err := RectAt(Point{uint32(lo0), uint32(lo1)}, []uint32{uint32(s0%6) + 1, uint32(s1%6) + 1})
		if err != nil {
			return true
		}
		seen := make(map[[2]uint32]bool)
		r.ForEach(func(p Point) bool {
			if !r.Contains(p) {
				return false
			}
			seen[[2]uint32{p[0], p[1]}] = true
			return true
		})
		return uint64(len(seen)) == r.Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
