// Package geom provides the discrete geometry primitives shared by every
// space filling curve in this repository: cell coordinates (Point),
// axis-aligned inclusive rectangles (Rect) and the d-dimensional universe
// they live in (Universe).
//
// The model follows the paper exactly: a universe U is a discrete
// d-dimensional grid of n cells with side length s along every dimension
// (n = s^d), and a query is a hyper-rectangle of cells. All rectangle
// bounds are inclusive.
package geom

import (
	"errors"
	"fmt"
)

// MaxKeyBits bounds the total number of addressable cells: a universe must
// satisfy side^dims <= 2^MaxKeyBits so that cell indices fit comfortably in
// a uint64 with headroom for arithmetic.
const MaxKeyBits = 62

var (
	// ErrDims reports an unsupported number of dimensions.
	ErrDims = errors.New("geom: dims must be >= 1")
	// ErrSide reports an unsupported universe side length.
	ErrSide = errors.New("geom: side must be >= 1")
	// ErrTooLarge reports a universe whose cell count overflows MaxKeyBits.
	ErrTooLarge = errors.New("geom: universe exceeds 2^62 cells")
	// ErrBounds reports rectangle bounds that are malformed or outside the
	// universe.
	ErrBounds = errors.New("geom: invalid rectangle bounds")
)

// Point is the coordinate vector of a single cell. Element i is the
// coordinate along dimension i, in [0, side).
type Point []uint32

// Clone returns a fresh copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical length and coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(x0,x1,...)".
func (p Point) String() string {
	s := "("
	for i, v := range p {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}

// Universe is a d-dimensional grid of side^dims cells.
type Universe struct {
	dims int
	side uint32
}

// NewUniverse validates and constructs a universe with the given number of
// dimensions and per-dimension side length.
func NewUniverse(dims int, side uint32) (Universe, error) {
	if dims < 1 {
		return Universe{}, fmt.Errorf("%w (got %d)", ErrDims, dims)
	}
	if side < 1 {
		return Universe{}, fmt.Errorf("%w (got %d)", ErrSide, side)
	}
	// Check side^dims <= 2^MaxKeyBits without overflow.
	size := uint64(1)
	for i := 0; i < dims; i++ {
		if size > (uint64(1)<<MaxKeyBits)/uint64(side) {
			return Universe{}, fmt.Errorf("%w (side %d, dims %d)", ErrTooLarge, side, dims)
		}
		size *= uint64(side)
	}
	return Universe{dims: dims, side: side}, nil
}

// MustUniverse is NewUniverse for parameters known to be valid; it panics on
// error. Intended for tests and package-internal constants.
func MustUniverse(dims int, side uint32) Universe {
	u, err := NewUniverse(dims, side)
	if err != nil {
		panic(err)
	}
	return u
}

// Dims returns the number of dimensions d.
func (u Universe) Dims() int { return u.dims }

// Side returns the per-dimension side length (the paper's d-th root of n).
func (u Universe) Side() uint32 { return u.side }

// Size returns the total number of cells n = side^dims.
func (u Universe) Size() uint64 {
	size := uint64(1)
	for i := 0; i < u.dims; i++ {
		size *= uint64(u.side)
	}
	return size
}

// Contains reports whether p is a valid cell of u.
func (u Universe) Contains(p Point) bool {
	if len(p) != u.dims {
		return false
	}
	for _, v := range p {
		if v >= u.side {
			return false
		}
	}
	return true
}

// Rect returns the rectangle covering the whole universe.
func (u Universe) Rect() Rect {
	lo := make(Point, u.dims)
	hi := make(Point, u.dims)
	for i := range hi {
		hi[i] = u.side - 1
	}
	return Rect{Lo: lo, Hi: hi}
}

// String renders the universe as "side^dims".
func (u Universe) String() string {
	return fmt.Sprintf("%d^%d", u.side, u.dims)
}

// Rect is an axis-aligned box of cells with inclusive bounds:
// it contains every cell p with Lo[i] <= p[i] <= Hi[i] for all i.
type Rect struct {
	Lo, Hi Point
}

// NewRect validates lo <= hi pointwise and equal dimensionality.
func NewRect(lo, hi Point) (Rect, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return Rect{}, fmt.Errorf("%w: lo %v hi %v", ErrBounds, lo, hi)
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("%w: lo %v > hi %v in dim %d", ErrBounds, lo, hi, i)
		}
	}
	return Rect{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// RectAt constructs the rectangle with lower corner lo and the given side
// lengths (shape[i] >= 1 cells along dimension i).
func RectAt(lo Point, shape []uint32) (Rect, error) {
	if len(lo) != len(shape) || len(lo) == 0 {
		return Rect{}, fmt.Errorf("%w: corner %v shape %v", ErrBounds, lo, shape)
	}
	hi := make(Point, len(lo))
	for i := range lo {
		if shape[i] == 0 {
			return Rect{}, fmt.Errorf("%w: zero side in dim %d", ErrBounds, i)
		}
		hi[i] = lo[i] + shape[i] - 1
		if hi[i] < lo[i] { // overflow
			return Rect{}, fmt.Errorf("%w: overflow in dim %d", ErrBounds, i)
		}
	}
	return Rect{Lo: lo.Clone(), Hi: hi}, nil
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Lo) }

// Side returns the number of cells along dimension i.
func (r Rect) Side(i int) uint32 { return r.Hi[i] - r.Lo[i] + 1 }

// Shape returns the side lengths of all dimensions.
func (r Rect) Shape() []uint32 {
	s := make([]uint32, r.Dims())
	for i := range s {
		s[i] = r.Side(i)
	}
	return s
}

// Cells returns the number of cells contained in the rectangle.
func (r Rect) Cells() uint64 {
	n := uint64(1)
	for i := 0; i < r.Dims(); i++ {
		n *= uint64(r.Side(i))
	}
	return n
}

// Contains reports whether the cell p lies inside the rectangle.
func (r Rect) Contains(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// In reports whether the rectangle lies fully inside the universe.
func (r Rect) In(u Universe) bool {
	if r.Dims() != u.Dims() {
		return false
	}
	for i := range r.Hi {
		if r.Hi[i] >= u.Side() {
			return false
		}
	}
	return true
}

// Equal reports whether two rectangles have identical bounds.
func (r Rect) Equal(o Rect) bool {
	return r.Lo.Equal(o.Lo) && r.Hi.Equal(o.Hi)
}

// String renders the rectangle as "[lo..hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%v..%v]", r.Lo, r.Hi)
}

// ForEach visits every cell of the rectangle in row-major order (dimension 0
// fastest) and stops early if fn returns false. The Point passed to fn is
// reused between calls; clone it if it must be retained.
func (r Rect) ForEach(fn func(Point) bool) {
	d := r.Dims()
	p := r.Lo.Clone()
	for {
		if !fn(p) {
			return
		}
		i := 0
		for i < d {
			if p[i] < r.Hi[i] {
				p[i]++
				break
			}
			p[i] = r.Lo[i]
			i++
		}
		if i == d {
			return
		}
	}
}

// Faces visits, for every boundary face of the rectangle that has a neighbor
// cell inside the universe, each (inside, outside) pair of neighboring cells
// straddling that face. Every such unordered pair is visited exactly once.
// The points passed to fn are reused between calls. fn returning false stops
// the iteration.
//
// This is the access pattern needed by the Lemma 1 boundary-crossing
// clustering counter: for a continuous SFC every cluster boundary is such a
// pair.
func (r Rect) Faces(u Universe, fn func(inside, outside Point) bool) {
	d := r.Dims()
	in := make(Point, d)
	out := make(Point, d)
	for dim := 0; dim < d; dim++ {
		// Face at the low side: inside cell has coordinate Lo[dim],
		// outside neighbor Lo[dim]-1.
		if r.Lo[dim] > 0 {
			if !r.faceScan(dim, r.Lo[dim], r.Lo[dim]-1, in, out, fn) {
				return
			}
		}
		// Face at the high side.
		if r.Hi[dim]+1 < u.Side() {
			if !r.faceScan(dim, r.Hi[dim], r.Hi[dim]+1, in, out, fn) {
				return
			}
		}
	}
}

// faceScan iterates all cells of the face of r with fixed coordinate inCoord
// along dimension dim, pairing each with its outside neighbor at outCoord.
func (r Rect) faceScan(dim int, inCoord, outCoord uint32, in, out Point, fn func(inside, outside Point) bool) bool {
	d := r.Dims()
	copy(in, r.Lo)
	in[dim] = inCoord
	for {
		copy(out, in)
		out[dim] = outCoord
		if !fn(in, out) {
			return false
		}
		i := 0
		for i < d {
			if i == dim {
				i++
				continue
			}
			if in[i] < r.Hi[i] {
				in[i]++
				break
			}
			in[i] = r.Lo[i]
			i++
		}
		if i == d {
			return true
		}
	}
}

// SurfaceCells returns the number of cells of r that lie on its boundary
// (cells with at least one coordinate equal to a bound).
func (r Rect) SurfaceCells() uint64 {
	inner := uint64(1)
	for i := 0; i < r.Dims(); i++ {
		s := uint64(r.Side(i))
		if s <= 2 {
			inner = 0
			break
		}
		inner *= s - 2
	}
	return r.Cells() - inner
}

// Intersect returns the intersection of two rectangles and whether it is
// non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	if r.Dims() != o.Dims() {
		return Rect{}, false
	}
	lo := make(Point, r.Dims())
	hi := make(Point, r.Dims())
	for i := range lo {
		lo[i] = max32(r.Lo[i], o.Lo[i])
		hi[i] = min32(r.Hi[i], o.Hi[i])
		if lo[i] > hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
