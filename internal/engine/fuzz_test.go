package engine

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

// FuzzWALReplay drives the WAL through a fuzzed op stream and a fuzzed
// truncation point: the round trip must be exact, and recovery of any
// prefix of the file must yield exactly the ops whose frames are complete
// — the torn-tail contract, explored byte by byte by the fuzzer.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint16(7))
	f.Add([]byte{0xff, 0x00, 0xaa}, uint16(0))
	f.Add([]byte{}, uint16(100))
	f.Fuzz(func(t *testing.T, raw []byte, cutSeed uint16) {
		const dims = 2
		// Decode a deterministic op stream out of the raw bytes.
		var ops []walOp
		for i := 0; i+2 < len(raw) && len(ops) < 64; i += 3 {
			pt := geom.Point{uint32(raw[i]), uint32(raw[i+1])}
			if raw[i+2]%4 == 0 {
				ops = append(ops, walOp{pt: pt, del: true})
			} else {
				ops = append(ops, walOp{pt: pt, payload: uint64(raw[i+2]) << 3})
			}
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		w, err := createWAL(vfs.OS{}, path, dims)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := w.append(op); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		got, err := replayWAL(vfs.OS{}, path, dims)
		if err != nil {
			t.Fatal(err)
		}
		if !walOpsEqual(got, ops) {
			t.Fatalf("round trip: %d ops back, wrote %d", len(got), len(ops))
		}
		// Truncate at a fuzzed point and demand prefix recovery.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			return
		}
		cut := int(cutSeed) % (len(data) + 1)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		torn, err := replayWAL(vfs.OS{}, path, dims)
		if err != nil {
			t.Fatal(err)
		}
		complete, off := 0, 0
		for _, op := range ops {
			off += 8 + walPayloadSize(dims, op.del)
			if off > cut {
				break
			}
			complete++
		}
		if !walOpsEqual(torn, ops[:complete]) {
			t.Fatalf("cut %d: recovered %d ops, want %d", cut, len(torn), complete)
		}
	})
}
