package engine

import (
	"errors"
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// BatchOp is one logical write inside a PutBatch: a put of (Point,
// Payload) or, with Del set, a blind tombstone at Point. PutBatch does
// not retain the ops or their Points; callers may reuse both.
type BatchOp struct {
	Point   geom.Point
	Payload uint64
	Del     bool
}

// PutBatch applies ops as one WAL unit: every op is framed into the log
// under a single WAL-mutex hold — so the batch occupies one contiguous
// sequence-number interval in log order — and, with Options.SyncWrites,
// the whole batch rides one group-commit rendezvous, amortizing a single
// fsync over every op (and over any concurrent writers that landed in the
// same commit window). The memtable inserts still fan out across the
// memtable's key-band shards.
//
// Acknowledgement is all-or-nothing: a nil return means every op is
// acknowledged under the same durability rules as Put. On error no op is
// acknowledged; ops already framed before the failure have indeterminate
// durability, exactly like a single failed Put — each frame is CRC-guarded,
// so recovery keeps a clean per-op prefix of the batch and never a torn op.
//
// An op whose Point lies outside the universe rejects the whole batch
// before anything is written.
func (e *Engine) PutBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	for i := range ops {
		if !e.c.Universe().Contains(ops[i].Point) {
			return fmt.Errorf("%w: %v in %v", ErrPoint, ops[i].Point, e.c.Universe())
		}
	}
	if Health(e.health.state.Load()) >= ReadOnly {
		return e.readOnlyErr()
	}
	e.mu.RLock()
	if e.closed || e.closing {
		e.mu.RUnlock()
		return ErrClosed
	}
	// One walMu hold for the whole batch: sequence order equals log order
	// equals slice order, and concurrent writers see the batch as one
	// contiguous block.
	e.walMu.Lock()
	w := e.wal
	prevN := w.n
	firstSeq := e.seq + 1
	var err error
	for i := range ops {
		e.seq++
		if err = w.append(walOp{pt: ops[i].Point, payload: ops[i].Payload, del: ops[i].Del}); err != nil {
			// Frames after a failed append would sit beyond a torn region
			// recovery cannot cross; stop framing here. The sequence
			// numbers already assigned are committed below so the
			// visibility watermark never wedges.
			break
		}
		if h := e.hook; h != nil {
			h.Append(e.seq, ops[i])
		}
	}
	lastSeq := e.seq
	pos := w.n
	if err == nil && e.opts.SyncWrites && e.opts.noGroupCommit {
		err = e.timedWALSync(w)
	}
	e.walMu.Unlock()
	if err == nil && e.opts.SyncWrites && !e.opts.noGroupCommit {
		// One rendezvous for the batch: the leader's single fsync covers
		// every frame up to pos — the whole batch, plus whatever other
		// writers appended in the window.
		err = e.groupCommit(w, pos)
	}
	if err != nil {
		for s := firstSeq; s <= lastSeq; s++ {
			e.com.commit(s)
		}
		e.mu.RUnlock()
		if errors.Is(err, ErrWAL) || errors.Is(err, ErrQuorum) {
			e.degrade(ReadOnly, err)
			return fmt.Errorf("%w: %w", ErrReadOnly, err)
		}
		return err
	}
	mem := e.mem
	for i := range ops {
		seq := firstSeq + uint64(i)
		mem.put(e.c.Index(ops[i].Point), ops[i].Point, ops[i].Payload, seq, ops[i].Del)
		e.com.commit(seq)
	}
	entries := mem.entries.Load()
	e.mu.RUnlock()
	if tel := e.tel; tel != nil {
		tel.walAppends.Add(uint64(len(ops)))
		tel.walAppendBytes.Add(uint64(pos - prevN))
	}
	if e.opts.FlushEntries > 0 && entries >= int64(e.opts.FlushEntries) {
		select {
		case e.bg <- struct{}{}:
		default:
		}
	}
	return nil
}

// Curve returns the curve the engine clusters by — the one passed to
// Open. Ingest pipelines use it to route ops by curve key before the
// engine sees them.
func (e *Engine) Curve() curve.Curve { return e.c }
