package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/telemetry"
)

// Health is the engine's degradation state. States escalate on faults —
// an engine never silently heals — and lower only through the explicit,
// guarded recovery paths: TryRecover probes the write path and lowers
// ReadOnly once a probe write and a WAL rotation succeed, and Repair
// (or TryRecover after an out-of-band repair) lowers Degraded once the
// quarantine is empty and a fresh Verify passes. Failed is terminal —
// recovery from a containment failure is a reopen, never a guess. A
// fresh Open always starts Healthy.
//
//	Healthy  — full service.
//	Degraded — serving reads and writes, but something was lost at the
//	           edges: a segment was quarantined for corruption, or
//	           background compaction keeps failing. Queries over a
//	           quarantined key interval silently miss its records.
//	ReadOnly — the write path is compromised (WAL append/fsync failure,
//	           out of disk, or background flushes exhausted their
//	           retries). Writes fail with ErrReadOnly; queries serve.
//	Failed   — the engine could not contain a fault (a corrupt segment
//	           could not be quarantined). Reads may be incomplete.
type Health int32

const (
	Healthy Health = iota
	Degraded
	ReadOnly
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

var (
	// ErrReadOnly reports a write rejected because the engine degraded to
	// ReadOnly (or Failed). The cause — the WAL failure, the ENOSPC —
	// stays on the chain, so errors.Is sees both.
	ErrReadOnly = errors.New("engine: read-only")
	// ErrCorrupt is pagedstore's corruption sentinel, re-exported where
	// quarantine reports surface it.
	ErrCorrupt = pagedstore.ErrCorrupt
)

// healthState is the monotonic state machine embedded in the Engine.
type healthState struct {
	state atomic.Int32
	mu    sync.Mutex
	cause error // first error that drove the current state
}

// get returns the current state and the error that caused it (nil while
// Healthy).
func (h *healthState) get() (Health, error) {
	s := Health(h.state.Load())
	if s == Healthy {
		return s, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return Health(h.state.Load()), h.cause
}

// escalate raises the state to at least s, recording cause if the state
// actually rose, and reports whether it did. Lowering goes through
// recoverTo, never through here.
func (h *healthState) escalate(s Health, cause error) bool {
	h.mu.Lock()
	rose := Health(h.state.Load()) < s
	if rose {
		h.state.Store(int32(s))
		h.cause = cause
	}
	h.mu.Unlock()
	return rose
}

// recoverTo lowers the state to s, reporting whether it moved. Failed is
// terminal and raising is escalate's job, so anything else is a no-op.
// Reaching Healthy clears the cause; a partial recovery (ReadOnly down
// to Degraded, say) records why the engine is still impaired.
func (h *healthState) recoverTo(s Health, cause error) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := Health(h.state.Load())
	if cur == Failed || cur <= s {
		return false
	}
	h.state.Store(int32(s))
	if s == Healthy {
		h.cause = nil
	} else {
		h.cause = cause
	}
	return true
}

// Health returns the engine's degradation state and the error that drove
// it there (nil while Healthy). See the Health type for the contract of
// each state.
func (e *Engine) Health() (Health, error) { return e.health.get() }

// degrade escalates the engine's health; see healthState.escalate. An
// actual transition counts toward the labeled transition counter and
// lands in the event stream with its cause.
func (e *Engine) degrade(s Health, cause error) {
	if !e.health.escalate(s, cause) {
		return
	}
	e.noteHealthTransition(s, cause)
}

// recoverHealth lowers the engine's health through the guarded
// recoverTo, emitting the transition when the state actually moved.
func (e *Engine) recoverHealth(s Health, cause error) {
	if !e.health.recoverTo(s, cause) {
		return
	}
	e.noteHealthTransition(s, cause)
}

func (e *Engine) noteHealthTransition(s Health, cause error) {
	if tel := e.tel; tel != nil {
		tel.healthTo[s].Inc()
	}
	e.emitEvent(telemetry.Event{Kind: telemetry.EvHealth, Phase: telemetry.PhasePoint,
		Err: errString(cause), Detail: "-> " + s.String()})
}

// readOnlyErr builds the error a rejected write returns: ErrReadOnly
// wrapping whatever drove the engine out of service.
func (e *Engine) readOnlyErr() error {
	if _, cause := e.health.get(); cause != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, cause)
	}
	return ErrReadOnly
}

// QuarantinedSegment describes one segment pulled from service by Verify:
// where its file went and the inclusive curve-key interval whose records
// are no longer served. Callers that mirror data elsewhere use the
// interval to drive re-replication.
type QuarantinedSegment struct {
	// Path is where the corrupt file now lives (under quarantine/), or
	// its original path if even the quarantine rename failed.
	Path string
	// Lo, Hi bound the curve keys the segment covered; Empty is true for
	// a segment with no records (nothing is missing).
	Lo, Hi uint64
	Empty  bool
	// Records is how many records (tombstones included) the segment held.
	Records int
	// Cause is the corruption error that condemned the segment.
	Cause error
}

// VerifyReport summarizes one Verify pass.
type VerifyReport struct {
	SegmentsChecked int
	Quarantined     []QuarantinedSegment
}

// Verify scrubs every live segment against its checksums (reading
// straight from disk, past the page cache) and quarantines any that fail:
// the corrupt file is moved into the quarantine/ subdirectory, the
// affected key interval is reported, and the remaining segments keep
// serving. A quarantine degrades the engine to Degraded; a quarantine
// that cannot even be executed (the rename fails) degrades it to Failed.
// Verify holds the engine's maintenance lock, so it serializes with
// flushes and compactions but not with queries or writes.
func (e *Engine) Verify() (VerifyReport, error) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	var rep VerifyReport
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return rep, ErrClosed
	}
	segs := append([]*segment{}, e.segs...)
	e.mu.RUnlock()
	start := time.Now()
	e.emitEvent(telemetry.Event{Kind: telemetry.EvScrub, Phase: telemetry.PhaseStart,
		Detail: fmt.Sprintf("verify %d segments", len(segs))})
	var firstErr error
	for _, s := range segs {
		rep.SegmentsChecked++
		verr := s.st.VerifyPages()
		if verr == nil {
			continue
		}
		if !errors.Is(verr, pagedstore.ErrCorrupt) {
			if firstErr == nil {
				firstErr = verr
			}
			continue
		}
		q := e.quarantine(s, verr)
		rep.Quarantined = append(rep.Quarantined, q)
	}
	// Deterministic report order: by key interval, not scan order, so
	// reports and goldens are stable however the segment list shuffles.
	sort.Slice(rep.Quarantined, func(a, b int) bool {
		qa, qb := rep.Quarantined[a], rep.Quarantined[b]
		if qa.Lo != qb.Lo {
			return qa.Lo < qb.Lo
		}
		if qa.Hi != qb.Hi {
			return qa.Hi < qb.Hi
		}
		return qa.Path < qb.Path
	})
	if tel := e.tel; tel != nil {
		tel.verifyPasses.Inc()
	}
	e.emitEvent(telemetry.Event{Kind: telemetry.EvScrub, Phase: telemetry.PhaseEnd,
		Dur: time.Since(start), Err: errString(firstErr),
		Detail: fmt.Sprintf("%d checked, %d quarantined", rep.SegmentsChecked, len(rep.Quarantined))})
	return rep, firstErr
}

// quarantine pulls a condemned segment out of service: it leaves the live
// list immediately (even a failed rename must stop it from serving
// corrupt pages), then its file moves under quarantine/ for offline
// inspection and the directory change is made durable, so a reopen never
// resurrects it.
func (e *Engine) quarantine(s *segment, cause error) QuarantinedSegment {
	q := QuarantinedSegment{Path: s.path, Records: s.recs, Cause: cause}
	var ok bool
	q.Lo, q.Hi, ok = s.st.KeySpan()
	q.Empty = !ok
	if tel := e.tel; tel != nil {
		tel.quarantines.Inc()
	}
	e.emitEvent(telemetry.Event{Kind: telemetry.EvScrub, Phase: telemetry.PhasePoint,
		Err: errString(cause), Records: int64(s.recs),
		Detail: "quarantined " + filepath.Base(s.path)})
	e.mu.Lock()
	for i, t := range e.segs {
		if t == s {
			e.segs = append(e.segs[:i], e.segs[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	s.st.Close() //nolint:errcheck // the file is condemned either way
	qdir := filepath.Join(e.dir, "quarantine")
	dest := filepath.Join(qdir, filepath.Base(s.path))
	err := e.fs.MkdirAll(qdir, 0o755)
	if err == nil {
		err = e.fs.Rename(s.path, dest)
	}
	if err == nil {
		err = e.fs.SyncDir(e.dir)
	}
	if err != nil {
		// The corrupt file is stranded in the data directory; a reopen
		// would serve it again. That is a containment failure.
		e.degrade(Failed, fmt.Errorf("engine: quarantine of %s: %w (corruption: %w)",
			filepath.Base(s.path), err, cause))
		return q
	}
	q.Path = dest
	e.degrade(Degraded, fmt.Errorf("engine: quarantined %s: %w", filepath.Base(s.path), cause))
	return q
}

// quarantinePath returns the engine's quarantine directory.
func (e *Engine) quarantinePath() string { return filepath.Join(e.dir, "quarantine") }

// quarantineEmpty reports whether the quarantine directory holds no
// condemned segment files (a never-created directory counts as empty).
func (e *Engine) quarantineEmpty() (bool, error) {
	ents, err := e.fs.ReadDir(e.quarantinePath())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return true, nil
		}
		return false, fmt.Errorf("engine: %w", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			return false, nil
		}
	}
	return true, nil
}

// probeWrite proves the write path works again: a throwaway file is
// created, written, fsynced and removed in the engine directory through
// the engine's filesystem. ENOSPC, a dead disk or a failing fsync all
// surface here instead of on the next acknowledged write.
func (e *Engine) probeWrite() error {
	p := filepath.Join(e.dir, "health-probe.tmp")
	f, err := e.fs.Create(p)
	if err == nil {
		_, err = f.Write([]byte("onion health probe"))
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = e.fs.Remove(p)
	}
	if err != nil {
		return fmt.Errorf("engine: recovery probe: %w", err)
	}
	return nil
}

// recoverRotateLocked (flushMu held) retires the possibly-poisoned WAL:
// a fresh log and memtable swap in, the old memtable (holding every
// acknowledged write of the old log) freezes for flushing, and the old
// log file is condemned — its close errors are expected and ignored,
// because the frozen memtable is about to persist its content to a
// segment. An empty old log (no acknowledged writes) is deleted so a
// reopen cannot resurrect frames of failed, unacknowledged appends.
func (e *Engine) recoverRotateLocked() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	dims := e.c.Universe().Dims()
	nw, err := createWAL(e.fs, walPath(e.dir, e.gen), dims)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	nm, err := newMemtable(e.c, e.opts.Shards, e.gen)
	if err != nil {
		nw.close()                         //nolint:errcheck
		e.fs.Remove(walPath(e.dir, e.gen)) //nolint:errcheck
		e.mu.Unlock()
		return err
	}
	old, oldMem := e.wal, e.mem
	e.wal, e.mem = nw, nm
	frozen := oldMem.entries.Load() > 0
	if frozen {
		e.imm = append(e.imm, oldMem)
	}
	e.gen++
	e.mu.Unlock()
	old.f.Close() //nolint:errcheck // condemned log; sync errors expected
	if !frozen {
		if err := e.fs.Remove(walPath(e.dir, oldMem.gen)); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	// Flush the frozen memtables — the one just rotated out plus any
	// stranded by earlier failed flushes. Each success writes a segment
	// and retires its WAL into the archive.
	return e.flushLocked()
}

// TryRecover attempts guarded health de-escalation and returns the state
// the engine settled in.
//
//   - Failed is terminal: TryRecover never touches it (reopen instead).
//   - ReadOnly: a probe write proves the disk accepts durable writes
//     again, then the poisoned WAL rotates out and every stranded
//     memtable flushes. Only after all of that succeeds does the state
//     lower — to Healthy, or to Degraded if quarantined segments remain.
//   - Degraded: a full Verify re-scrubs the live segments; the state
//     lowers to Healthy only if nothing new is condemned and the
//     quarantine directory is empty (Repair empties it).
//
// TryRecover is safe to call at any time; a failed attempt changes
// nothing and returns the reason.
func (e *Engine) TryRecover() (Health, error) {
	h, cause := e.health.get()
	switch h {
	case Healthy:
		return Healthy, nil
	case Failed:
		return Failed, cause
	case ReadOnly:
		if err := e.probeWrite(); err != nil {
			return ReadOnly, err
		}
		e.flushMu.Lock()
		err := e.recoverRotateLocked()
		e.flushMu.Unlock()
		if err != nil {
			return ReadOnly, err
		}
	case Degraded:
		rep, err := e.Verify()
		if err != nil {
			h, _ := e.health.get()
			return h, err
		}
		if len(rep.Quarantined) > 0 {
			h, cause := e.health.get()
			return h, cause
		}
	}
	empty, err := e.quarantineEmpty()
	if err != nil {
		h, _ := e.health.get()
		return h, err
	}
	if empty {
		e.recoverHealth(Healthy, nil)
	} else {
		e.recoverHealth(Degraded, fmt.Errorf("engine: quarantine not empty; Repair can salvage it"))
	}
	h, cause = e.health.get()
	return h, cause
}
