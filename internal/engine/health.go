package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/onioncurve/onion/internal/pagedstore"
)

// Health is the engine's degradation state. States only escalate — an
// engine never silently heals — and a fresh Open always starts Healthy:
// recovery is an explicit reopen, never a background guess.
//
//	Healthy  — full service.
//	Degraded — serving reads and writes, but something was lost at the
//	           edges: a segment was quarantined for corruption, or
//	           background compaction keeps failing. Queries over a
//	           quarantined key interval silently miss its records.
//	ReadOnly — the write path is compromised (WAL append/fsync failure,
//	           out of disk, or background flushes exhausted their
//	           retries). Writes fail with ErrReadOnly; queries serve.
//	Failed   — the engine could not contain a fault (a corrupt segment
//	           could not be quarantined). Reads may be incomplete.
type Health int32

const (
	Healthy Health = iota
	Degraded
	ReadOnly
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

var (
	// ErrReadOnly reports a write rejected because the engine degraded to
	// ReadOnly (or Failed). The cause — the WAL failure, the ENOSPC —
	// stays on the chain, so errors.Is sees both.
	ErrReadOnly = errors.New("engine: read-only")
	// ErrCorrupt is pagedstore's corruption sentinel, re-exported where
	// quarantine reports surface it.
	ErrCorrupt = pagedstore.ErrCorrupt
)

// healthState is the monotonic state machine embedded in the Engine.
type healthState struct {
	state atomic.Int32
	mu    sync.Mutex
	cause error // first error that drove the current state
}

// get returns the current state and the error that caused it (nil while
// Healthy).
func (h *healthState) get() (Health, error) {
	s := Health(h.state.Load())
	if s == Healthy {
		return s, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return Health(h.state.Load()), h.cause
}

// escalate raises the state to at least s, recording cause if the state
// actually rose. Lowering never happens.
func (h *healthState) escalate(s Health, cause error) {
	h.mu.Lock()
	if Health(h.state.Load()) < s {
		h.state.Store(int32(s))
		h.cause = cause
	}
	h.mu.Unlock()
}

// Health returns the engine's degradation state and the error that drove
// it there (nil while Healthy). See the Health type for the contract of
// each state.
func (e *Engine) Health() (Health, error) { return e.health.get() }

// degrade escalates the engine's health; see healthState.escalate.
func (e *Engine) degrade(s Health, cause error) { e.health.escalate(s, cause) }

// readOnlyErr builds the error a rejected write returns: ErrReadOnly
// wrapping whatever drove the engine out of service.
func (e *Engine) readOnlyErr() error {
	if _, cause := e.health.get(); cause != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, cause)
	}
	return ErrReadOnly
}

// QuarantinedSegment describes one segment pulled from service by Verify:
// where its file went and the inclusive curve-key interval whose records
// are no longer served. Callers that mirror data elsewhere use the
// interval to drive re-replication.
type QuarantinedSegment struct {
	// Path is where the corrupt file now lives (under quarantine/), or
	// its original path if even the quarantine rename failed.
	Path string
	// Lo, Hi bound the curve keys the segment covered; Empty is true for
	// a segment with no records (nothing is missing).
	Lo, Hi uint64
	Empty  bool
	// Records is how many records (tombstones included) the segment held.
	Records int
	// Cause is the corruption error that condemned the segment.
	Cause error
}

// VerifyReport summarizes one Verify pass.
type VerifyReport struct {
	SegmentsChecked int
	Quarantined     []QuarantinedSegment
}

// Verify scrubs every live segment against its checksums (reading
// straight from disk, past the page cache) and quarantines any that fail:
// the corrupt file is moved into the quarantine/ subdirectory, the
// affected key interval is reported, and the remaining segments keep
// serving. A quarantine degrades the engine to Degraded; a quarantine
// that cannot even be executed (the rename fails) degrades it to Failed.
// Verify holds the engine's maintenance lock, so it serializes with
// flushes and compactions but not with queries or writes.
func (e *Engine) Verify() (VerifyReport, error) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	var rep VerifyReport
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return rep, ErrClosed
	}
	segs := append([]*segment{}, e.segs...)
	e.mu.RUnlock()
	var firstErr error
	for _, s := range segs {
		rep.SegmentsChecked++
		verr := s.st.VerifyPages()
		if verr == nil {
			continue
		}
		if !errors.Is(verr, pagedstore.ErrCorrupt) {
			if firstErr == nil {
				firstErr = verr
			}
			continue
		}
		q := e.quarantine(s, verr)
		rep.Quarantined = append(rep.Quarantined, q)
	}
	return rep, firstErr
}

// quarantine pulls a condemned segment out of service: it leaves the live
// list immediately (even a failed rename must stop it from serving
// corrupt pages), then its file moves under quarantine/ for offline
// inspection and the directory change is made durable, so a reopen never
// resurrects it.
func (e *Engine) quarantine(s *segment, cause error) QuarantinedSegment {
	q := QuarantinedSegment{Path: s.path, Records: s.recs, Cause: cause}
	var ok bool
	q.Lo, q.Hi, ok = s.st.KeySpan()
	q.Empty = !ok
	e.mu.Lock()
	for i, t := range e.segs {
		if t == s {
			e.segs = append(e.segs[:i], e.segs[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	s.st.Close() //nolint:errcheck // the file is condemned either way
	qdir := filepath.Join(e.dir, "quarantine")
	dest := filepath.Join(qdir, filepath.Base(s.path))
	err := e.fs.MkdirAll(qdir, 0o755)
	if err == nil {
		err = e.fs.Rename(s.path, dest)
	}
	if err == nil {
		err = e.fs.SyncDir(e.dir)
	}
	if err != nil {
		// The corrupt file is stranded in the data directory; a reopen
		// would serve it again. That is a containment failure.
		e.degrade(Failed, fmt.Errorf("engine: quarantine of %s: %w (corruption: %w)",
			filepath.Base(s.path), err, cause))
		return q
	}
	q.Path = dest
	e.degrade(Degraded, fmt.Errorf("engine: quarantined %s: %w", filepath.Base(s.path), cause))
	return q
}
