package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/vfs"
)

// ErrDir reports an engine directory whose segment files are mutually
// inconsistent in a way crash recovery cannot repair.
var ErrDir = errors.New("engine: inconsistent engine directory")

// segment is one immutable, curve-ordered on-disk run: a pagedstore file
// (version 2, mark bitmap = tombstones) covering the inclusive generation
// range [lo, hi]. Generations order data age: a segment covering later
// generations holds strictly newer writes, which is what lets the merge
// resolve duplicate keys by source recency alone, with no per-record
// sequence numbers on disk. epoch counts in-place rewrites of the same
// generation range (tombstone GC of a lone segment): the data is the
// same age, but the file name must not collide with its predecessor so
// that the swap stays crash-atomic.
type segment struct {
	st     *pagedstore.Store
	path   string
	lo, hi uint64
	epoch  uint64
	recs   int
}

func segPath(dir string, lo, hi, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%012d-%012d-%03d.pst", lo, hi, epoch))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%012d.log", gen))
}

// segID names a segment file: its generation range plus rewrite epoch.
type segID struct {
	lo, hi, epoch uint64
}

// scanDir inventories an engine directory: segment ids and WAL
// generations, with crash artifacts repaired. A crash between "rename
// compacted segment" and "delete its inputs" leaves both on disk; the
// output's generation range strictly contains each input's (or equals it
// with a higher epoch, for a lone-segment rewrite), so any segment whose
// range is contained in another's — or that shares a range with a higher
// epoch — is a stale input and is deleted. Ranges that partially overlap
// have no legal history and are rejected.
func scanDir(fsys vfs.FS, dir string) (segs []segID, wals []uint64, err error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		var lo, hi, epoch, gen uint64
		name := ent.Name()
		// Sscanf ignores trailing bytes, so a leftover "seg-*.pst.tmp"
		// from a crashed write would parse as a segment; demand the
		// parsed id round-trips to the exact file name.
		if n, _ := fmt.Sscanf(name, "seg-%d-%d-%d.pst", &lo, &hi, &epoch); n == 3 &&
			name == filepath.Base(segPath(dir, lo, hi, epoch)) {
			if lo > hi {
				return nil, nil, fmt.Errorf("%w: segment %s", ErrDir, name)
			}
			segs = append(segs, segID{lo: lo, hi: hi, epoch: epoch})
		} else if n, _ := fmt.Sscanf(name, "wal-%d.log", &gen); n == 1 &&
			name == filepath.Base(walPath(dir, gen)) {
			wals = append(wals, gen)
		}
	}
	// Drop stale compaction inputs: ranges contained in another range, or
	// equal ranges superseded by a higher epoch.
	kept := segs[:0]
	for _, s := range segs {
		stale := false
		for _, t := range segs {
			if s == t {
				continue
			}
			if t.lo == s.lo && t.hi == s.hi {
				if t.epoch > s.epoch {
					stale = true
					break
				}
				continue
			}
			if t.lo <= s.lo && s.hi <= t.hi {
				stale = true
				break
			}
		}
		if stale {
			if err := fsys.Remove(segPath(dir, s.lo, s.hi, s.epoch)); err != nil {
				return nil, nil, fmt.Errorf("engine: removing stale segment: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	segs = kept
	sort.Slice(segs, func(a, b int) bool { return segs[a].lo < segs[b].lo })
	for i := 1; i < len(segs); i++ {
		if segs[i].lo <= segs[i-1].hi {
			return nil, nil, fmt.Errorf("%w: overlapping segments %v and %v", ErrDir, segs[i-1], segs[i])
		}
	}
	sort.Slice(wals, func(a, b int) bool { return wals[a] < wals[b] })
	return segs, wals, nil
}

// openSegment opens the segment file for id against the curve, attached
// to the engine's shared page cache (nil disables caching).
func openSegment(fsys vfs.FS, dir string, c curve.Curve, id segID, cache *pagedstore.Cache) (*segment, error) {
	path := segPath(dir, id.lo, id.hi, id.epoch)
	st, err := pagedstore.OpenCachedFS(fsys, path, c, cache)
	if err != nil {
		return nil, fmt.Errorf("engine: segment %s: %w", filepath.Base(path), err)
	}
	return &segment{st: st, path: path, lo: id.lo, hi: id.hi, epoch: id.epoch, recs: st.Len()}, nil
}

// writeSegment materializes sorted entries as the segment id: records
// plus tombstone marks and the pruning footer in a version-3 pagedstore
// file, written to a temporary name, synced, then atomically renamed
// into place.
func writeSegment(fsys vfs.FS, dir string, c curve.Curve, id segID, ents []memEntry, pageBytes int, cache *pagedstore.Cache) (*segment, error) {
	recs := make([]pagedstore.Record, len(ents))
	marks := make([]bool, len(ents))
	for i, e := range ents {
		recs[i] = pagedstore.Record{Point: e.pt, Payload: e.payload}
		marks[i] = e.del
	}
	path := segPath(dir, id.lo, id.hi, id.epoch)
	tmp := path + ".tmp"
	if err := pagedstore.WriteMarkedFS(fsys, tmp, c, recs, marks, pageBytes); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	// Fsync the directory so the rename is durable before any caller
	// retires a WAL or a compaction input: without the barrier a power
	// loss could persist those unlinks but not this rename.
	if err := syncDir(fsys, dir); err != nil {
		return nil, err
	}
	return openSegment(fsys, dir, c, id, cache)
}

// syncDir fsyncs a directory, making its entry updates durable.
func syncDir(fsys vfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}
