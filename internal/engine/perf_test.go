package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
	"github.com/onioncurve/onion/internal/pagedstore"
)

// TestEngineCacheOnOffIdentical is the acceptance check for the page
// cache: the same engine directory opened with and without a cache must
// answer every query with bit-identical records and logical Stats, while
// the cached side's physical reads (the new IO counter) drop once the
// working set warms.
func TestEngineCacheOnOffIdentical(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := manualOpts()
	e, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	mergeFinals(make(map[uint64]pagedstore.Record), ownerPrograms(t, e, c, 71, 4, 600))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mergeFinals(make(map[uint64]pagedstore.Record), ownerPrograms(t, e, c, 72, 4, 300))
	if err := e.Flush(); err != nil { // two segments: multi-source merges
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	twin := t.TempDir()
	copyDir(t, dir, twin)

	cachedOpts := manualOpts()
	cachedOpts.CacheBytes = 1 << 20 // plenty: the whole working set fits
	cached, err := Open(dir, c, cachedOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	bareOpts := manualOpts()
	bareOpts.CacheBytes = 0
	bare, err := Open(twin, c, bareOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()

	rects := make([]geom.Rect, 25)
	rng := rand.New(rand.NewSource(73))
	for i := range rects {
		rects[i] = randomRect(rng, c.Universe())
	}
	var fetched [2]int // per pass: cached engine's physical page reads
	for pass := 0; pass < 2; pass++ {
		var logical int
		for _, r := range rects {
			got, gst, err := cached.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			want, wst, err := bare.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v: %d records vs %d", r, len(got), len(want))
			}
			for i := range want {
				if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
					t.Fatalf("%v: record %d diverges", r, i)
				}
			}
			gio, wio := gst.IO, wst.IO
			gst.IO, wst.IO = pagedstore.IOStats{}, pagedstore.IOStats{}
			if gst != wst {
				t.Fatalf("%v: cached stats %+v != bare stats %+v", r, gst, wst)
			}
			if wio.CacheHits != 0 {
				t.Fatalf("%v: bare engine reported cache hits %+v", r, wio)
			}
			fetched[pass] += gio.PagesFetched
			logical += gst.PagesRead
		}
		if fetched[pass] > logical {
			t.Fatalf("pass %d: %d physical reads exceed %d logical", pass, fetched[pass], logical)
		}
	}
	// Warm pass: everything is resident, physical reads collapse.
	if fetched[1] != 0 {
		t.Fatalf("warm pass still fetched %d pages (cold pass %d)", fetched[1], fetched[0])
	}
	if cst := cached.CacheStats(); cst.Hits == 0 {
		t.Fatalf("cache never hit: %+v", cst)
	}
}

// TestEngineCacheChurn runs concurrent query/flush/compaction churn over
// an engine with a pathologically small cache (relentless eviction),
// then proves the final state bit-identical — records AND logical
// stats — to a cache-off twin of the same directory and to a fresh
// bulk-loaded pagedstore of the surviving records.
func TestEngineCacheChurn(t *testing.T) {
	c, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{
		PageBytes:     512,
		FlushEntries:  250, // frequent background flushes
		CompactFanout: 2,   // aggressive background compaction
		Shards:        2,
		CacheBytes:    8 * 512, // one page per cache shard: eviction storm
	}
	e, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(500 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := e.Query(randomRect(rng, c.Universe())); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	survivors := make(map[uint64]pagedstore.Record)
	mergeFinals(survivors, ownerPrograms(t, e, c, 81, 4, 800))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mergeFinals(survivors, ownerPrograms(t, e, c, 82, 4, 400))
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	if err := e.BackgroundErr(); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}

	// Reference 1: a fresh pagedstore of exactly the survivors.
	recs := make([]pagedstore.Record, 0, len(survivors))
	for _, r := range survivors {
		recs = append(recs, r)
	}
	refPath := filepath.Join(t.TempDir(), "ref.pst")
	if err := pagedstore.Write(refPath, c, recs, 512); err != nil {
		t.Fatal(err)
	}
	ref, err := pagedstore.Open(refPath, c)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Reference 2: the same directory, cache off. (Close flushes; the
	// compacted state is stable, so the copy equals the live dir.)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	twin := t.TempDir()
	copyDir(t, dir, twin)
	bareOpts := opts
	bareOpts.CacheBytes = 0
	bareOpts.FlushEntries, bareOpts.CompactFanout = -1, -1
	bare, err := Open(twin, c, bareOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	e, err = Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		r := randomRect(rng, c.Universe())
		got, gst, err := e.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		bgot, bst, err := bare.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		want, wst, err := ref.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || len(bgot) != len(want) {
			t.Fatalf("%v: %d/%d records vs reference %d", r, len(got), len(bgot), len(want))
		}
		for i := range want {
			if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
				t.Fatalf("%v: record %d diverges from pagedstore reference", r, i)
			}
		}
		if gst.Stats != wst {
			t.Fatalf("%v: cached engine stats %+v != pagedstore stats %+v", r, gst.Stats, wst)
		}
		gst.IO, bst.IO = pagedstore.IOStats{}, pagedstore.IOStats{}
		if gst != bst {
			t.Fatalf("%v: cached stats %+v != cache-off stats %+v", r, gst, bst)
		}
	}
}

// TestGroupCommitDurability: concurrent SyncWrites writers commit
// through the group path; every acknowledged write must be in the log
// (simulated crash: the directory is copied without closing the engine),
// and the torn-tail guarantee must hold at EVERY byte boundary of the
// group-committed log — each prefix replays to an exact frame-prefix of
// the full history, never a fabricated or reordered op.
func TestGroupCommitDurability(t *testing.T) {
	c, err := core.NewOnion2D(16)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := manualOpts()
	opts.SyncWrites = true
	e, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers, steps = 4, 60
	type acked struct {
		pt      geom.Point
		payload uint64
	}
	ackedOps := make([][]acked, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + g)))
			u := e.c.Universe()
			for i := 0; i < steps; i++ {
				// Writer-owned keys, so final per-cell state is
				// deterministic.
				key := uint64(rng.Int63n(int64(u.Size())))
				key -= key % writers
				key += uint64(g)
				if key >= u.Size() {
					continue
				}
				pt := e.c.Coords(key, make(geom.Point, 2))
				payload := uint64(g)<<32 | uint64(i)
				if err := e.Put(pt, payload); err != nil {
					t.Error(err)
					return
				}
				// Put returned with SyncWrites on: this op is durable NOW.
				ackedOps[g] = append(ackedOps[g], acked{pt: pt, payload: payload})
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Simulated crash: snapshot the directory while the engine is still
	// open — nothing Close would flush may be needed for recovery. The
	// WAL bytes are captured NOW: recovery below replays and then
	// retires the log.
	crash := t.TempDir()
	copyDir(t, dir, crash)
	var data []byte
	ents, err := os.ReadDir(crash)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		var gen uint64
		if n, _ := fmt.Sscanf(ent.Name(), "wal-%d.log", &gen); n == 1 {
			if data, err = os.ReadFile(filepath.Join(crash, ent.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	if data == nil {
		t.Fatal("no WAL in crash snapshot")
	}
	re, err := Open(crash, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _, err := re.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[uint64]uint64, len(got))
	for _, rec := range got {
		state[e.c.Index(rec.Point)] = rec.Payload
	}
	for g, ops := range ackedOps {
		final := make(map[uint64]uint64)
		for _, op := range ops {
			final[e.c.Index(op.pt)] = op.payload
		}
		for key, payload := range final {
			if state[key] != payload {
				t.Fatalf("writer %d: acked write at key %d lost (have %d, want %d)",
					g, key, state[key], payload)
			}
		}
	}

	// Torn-tail at every byte boundary of the group-committed log.
	fullPath := filepath.Join(t.TempDir(), "full.log")
	if err := os.WriteFile(fullPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	full, err := replayWAL(vfs.OS{}, fullPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("empty replay of a synced log")
	}
	torn := filepath.Join(t.TempDir(), "torn.log")
	prev := 0
	for b := 0; b <= len(data); b++ {
		if err := os.WriteFile(torn, data[:b], 0o644); err != nil {
			t.Fatal(err)
		}
		ops, err := replayWAL(vfs.OS{}, torn, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Replay of any prefix is an exact op-prefix of the full history:
		// monotone in the cut point, no fabricated tail ops.
		if len(ops) < prev || len(ops) > len(full) {
			t.Fatalf("cut %d: %d ops (prev %d, full %d)", b, len(ops), prev, len(full))
		}
		for i, op := range ops {
			w := full[i]
			if !op.pt.Equal(w.pt) || op.payload != w.payload || op.del != w.del {
				t.Fatalf("cut %d: op %d = %+v, want %+v", b, i, op, w)
			}
		}
		prev = len(ops)
	}
	if prev != len(full) {
		t.Fatalf("full-length cut replayed %d of %d ops", prev, len(full))
	}
}

// TestGroupCommitWithRotation interleaves SyncWrites group commits with
// flushes (which rotate the log out from under the committers) and
// proves nothing acknowledged is lost across a reopen.
func TestGroupCommitWithRotation(t *testing.T) {
	c, err := core.NewOnion2D(16)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := manualOpts()
	opts.SyncWrites = true
	e, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	survivors := make(map[uint64]pagedstore.Record)
	for round := 0; round < 4; round++ {
		mergeFinals(survivors, ownerPrograms(t, e, c, int64(600+round), 4, 120))
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	mergeFinals(survivors, ownerPrograms(t, e, c, 699, 4, 120))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _, err := re.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(survivors) {
		t.Fatalf("%d records after reopen, want %d", len(got), len(survivors))
	}
	for _, rec := range got {
		key := re.c.Index(rec.Point)
		want, ok := survivors[key]
		if !ok || want.Payload != rec.Payload {
			t.Fatalf("key %d: record %v/%d, want %+v", key, rec.Point, rec.Payload, want)
		}
	}
}

// TestEngineQueryZeroAlloc pins the zero-allocation steady state of the
// cached query path: pooled query scratch, pooled cursors, plan-buffer
// reuse and a recycled record buffer leave nothing to allocate per
// query once warm.
func TestEngineQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c, err := core.NewOnion2D(1 << 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{PageBytes: 4096, FlushEntries: -1, CompactFanout: -1, Shards: 2, CacheBytes: 1 << 22}
	e, err := Open(t.TempDir(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(42))
	side := int32(c.Universe().Side())
	for i := 0; i < 20000; i++ {
		pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
		if err := e.Put(pt, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	r := geom.Rect{Lo: geom.Point{40, 40}, Hi: geom.Point{103, 103}}
	var dst []Record
	// Warm every pool and the cache, and size the record buffer.
	for i := 0; i < 4; i++ {
		dst, _, err = e.QueryAppend(dst[:0], r)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(dst) == 0 {
		t.Fatal("warmup query found nothing")
	}
	// GC off so sync.Pool contents survive the measurement loop.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(100, func() {
		dst, _, err = e.QueryAppend(dst[:0], r)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state query path allocates %.1f objects/op, want 0", allocs)
	}
}
