package engine

import (
	"errors"
	"maps"
	"testing"

	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

// batchManualOpts: no background maintenance, tiny pages — the
// deterministic shape the cross-checks need.
func batchManualOpts() Options {
	return Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2}
}

// TestPutBatchCrossCheck proves PutBatch is observably identical to the
// same ops applied through Put/Delete one by one: after an identical
// flush + compact schedule, records AND logical query stats match
// bit-for-bit.
func TestPutBatchCrossCheck(t *testing.T) {
	o := fwCurve(t)
	ops := fwWorkload()
	ref, err := Open(t.TempDir(), o, batchManualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	bat, err := Open(t.TempDir(), o, batchManualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer bat.Close()

	var batch []BatchOp
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		if err := bat.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	for i, op := range ops {
		if op.del {
			if err := ref.Delete(op.pt); err != nil {
				t.Fatal(err)
			}
		} else if err := ref.Put(op.pt, op.pay); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, BatchOp{Point: op.pt, Payload: op.pay, Del: op.del})
		if len(batch) == 7 { // uneven batch boundary, crosses the flush points
			flushBatch()
		}
		if (i+1)%fwFlushEvery == 0 {
			flushBatch()
			if err := ref.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := bat.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	flushBatch()
	for _, e := range []*Engine{ref, bat} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := e.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	full := o.Universe().Rect()
	rRecs, rSt, err := ref.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	bRecs, bSt, err := bat.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(rRecs) != len(bRecs) {
		t.Fatalf("record counts differ: ref %d, batch %d", len(rRecs), len(bRecs))
	}
	for i := range rRecs {
		if !rRecs[i].Point.Equal(bRecs[i].Point) || rRecs[i].Payload != bRecs[i].Payload {
			t.Fatalf("record %d differs: ref %+v, batch %+v", i, rRecs[i], bRecs[i])
		}
	}
	if rSt.Stats != bSt.Stats || rSt.MemEntries != bSt.MemEntries ||
		rSt.Segments != bSt.Segments || rSt.Planned != bSt.Planned {
		t.Fatalf("stats differ:\n  ref   %+v\n  batch %+v", rSt, bSt)
	}
}

// TestPutBatchDurableRecovery: a synchronously committed batch survives a
// dirty close (no final flush) wholesale — the single group-commit fsync
// covered every frame.
func TestPutBatchDurableRecovery(t *testing.T) {
	o := fwCurve(t)
	dir := t.TempDir()
	opts := batchManualOpts()
	opts.SyncWrites = true
	e, err := Open(dir, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]BatchOp, 40)
	want := make(map[uint64]uint64)
	for i := range ops {
		pt := fwPoint(i)
		ops[i] = BatchOp{Point: pt, Payload: uint64(100 + i)}
		want[o.Index(pt)] = uint64(100 + i)
	}
	if err := e.PutBatch(ops); err != nil {
		t.Fatal(err)
	}
	// Abandon the engine without Close: the WAL alone must carry the batch.
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	close(e.bgStop)
	<-e.bgDone

	e2, err := Open(dir, o, batchManualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs, _, err := e2.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		got[o.Index(r.Point)] = r.Payload
	}
	if !maps.Equal(got, want) {
		t.Fatalf("recovered %d records, want %d (acked batch lost)", len(got), len(want))
	}
}

// TestPutBatchValidation: one out-of-universe op rejects the whole batch
// before anything reaches the log.
func TestPutBatchValidation(t *testing.T) {
	o := fwCurve(t)
	e, err := Open(t.TempDir(), o, batchManualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	err = e.PutBatch([]BatchOp{
		{Point: fwPoint(1), Payload: 1},
		{Point: geom.Point{fwSide + 3, 0}, Payload: 2},
	})
	if !errors.Is(err, ErrPoint) {
		t.Fatalf("batch with bad point = %v, want ErrPoint", err)
	}
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("rejected batch left %d records behind", len(recs))
	}
	if err := e.PutBatch(nil); err != nil {
		t.Fatalf("empty batch = %v, want nil", err)
	}
}

// TestPutBatchWALFaultTurnsReadOnly: a failed group-commit fsync under a
// batch acknowledges nothing, degrades the engine, and a reopen recovers
// an acked-consistent state.
func TestPutBatchWALFaultTurnsReadOnly(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := fwCurve(t)
	dir := t.TempDir()
	opts := batchManualOpts()
	opts.SyncWrites = true
	opts.FS = inj
	e, err := Open(dir, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() //nolint:errcheck
	good := []BatchOp{{Point: fwPoint(0), Payload: 1}, {Point: fwPoint(1), Payload: 2}}
	if err := e.PutBatch(good); err != nil {
		t.Fatal(err)
	}
	inj.SetFaults(vfs.Fault{Op: vfs.OpSync, Path: "wal-", N: 1})
	bad := []BatchOp{{Point: fwPoint(2), Payload: 3}, {Point: fwPoint(3), Payload: 4}}
	err = e.PutBatch(bad)
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, ErrWAL) {
		t.Fatalf("batch under failed fsync = %v, want ErrReadOnly wrapping ErrWAL", err)
	}
	if h, _ := e.Health(); h != ReadOnly {
		t.Fatalf("health = %v, want ReadOnly", h)
	}
	if err := e.PutBatch(good); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("batch after ReadOnly = %v, want ErrReadOnly", err)
	}
	// The acked batch still serves, and survives a reopen.
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil || len(recs) != 2 {
		t.Fatalf("query on ReadOnly engine: %d records, err %v", len(recs), err)
	}
}
