// Package engine is a durable, concurrent, LSM-style spatial storage
// engine keyed by curve index — the mutable counterpart of the write-once
// pagedstore. Writes are acknowledged after landing in a CRC-framed
// write-ahead log and a curve-key-ordered memtable sharded across
// GOMAXPROCS by an internal/partition partitioner; memtables flush into
// immutable curve-ordered segment files that reuse the pagedstore page
// layout (tombstones ride in the version-2 mark bitmap); size-tiered
// background compaction merges segments and garbage-collects tombstones.
//
// A rectangle query consults the curve's range planner exactly once, then
// streams a k-way merge of the memtable and every live segment over each
// cluster range, counting seeks and pages exactly as pagedstore.Stats
// does: the paper's clustering number remains the number of positioned
// reads the query pays, now on a store that absorbs writes while serving.
package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

// ErrWAL reports an unusable write-ahead log file (I/O failure — torn
// tails are not errors, they are truncated away by recovery).
var ErrWAL = errors.New("engine: write-ahead log failure")

// walOp is one logical write: a put of (Point, Payload) or a delete of
// Point, identified by curve key at replay time.
type walOp struct {
	pt      geom.Point
	payload uint64
	del     bool
}

const (
	walOpPut = byte(1)
	walOpDel = byte(2)
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walPayloadSize returns the frame payload length for an op: op byte,
// coords, and (for puts) the 8-byte payload.
func walPayloadSize(dims int, del bool) int {
	if del {
		return 1 + 4*dims
	}
	return 1 + 4*dims + 8
}

// wal is an append-only log of CRC-framed records:
//
//	frame := length(uint32 LE) | crc32c(uint32 LE, over payload) | payload
//	payload := op(1) | coords(4*dims) | payload(8, puts only)
//
// The caller serializes append/sync/close (the engine holds its WAL mutex
// so that log order equals sequence-number order).
type wal struct {
	f      vfs.File
	w      *bufio.Writer
	dims   int
	buf    []byte
	n      int64 // bytes appended (including buffered)
	frames int64 // ops appended; group commit diffs it per fsync
	// failed latches after any write or sync error: the log's tail is in
	// an unknown state, and frames appended after a torn region would be
	// unreachable to recovery (replay stops at the first bad frame). The
	// engine surfaces the error and refuses further appends until a flush
	// rotates in a fresh log.
	failed bool
	gc     groupState
}

// groupState is the log's group-commit rendezvous: concurrent SyncWrites
// callers publish the byte position their frame ends at, one of them
// becomes the leader and performs a single buffered flush + fsync
// covering every frame appended so far, and the rest wait for the
// durable watermark to pass their position. While a leader's fsync is in
// flight, later callers pile up behind the syncing flag, so the next
// fsync amortizes over the whole pile — one disk barrier per batch
// instead of one per write.
type groupState struct {
	mu           sync.Mutex
	wake         sync.Cond
	synced       int64 // bytes of the log durably synced
	syncedFrames int64 // frames covered by fsyncs so far (batch-size telemetry)
	syncing      bool  // a leader's flush+fsync is in flight
	err          error // sticky: a failed group sync poisons the log until rotation
}

func createWAL(fsys vfs.FS, path string, dims int) (*wal, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrWAL, err)
	}
	l := &wal{
		f:    f,
		w:    bufio.NewWriter(f),
		dims: dims,
		buf:  make([]byte, 8+walPayloadSize(dims, false)),
	}
	l.gc.wake.L = &l.gc.mu
	return l, nil
}

// append frames and buffers one op. Durability requires a later sync.
func (l *wal) append(op walOp) error {
	if l.failed {
		return fmt.Errorf("%w: log failed earlier; awaiting rotation", ErrWAL)
	}
	pl := walPayloadSize(l.dims, op.del)
	b := l.buf[:8+pl]
	if op.del {
		b[8] = walOpDel
	} else {
		b[8] = walOpPut
	}
	for d := 0; d < l.dims; d++ {
		binary.LittleEndian.PutUint32(b[9+4*d:], op.pt[d])
	}
	if !op.del {
		binary.LittleEndian.PutUint64(b[9+4*l.dims:], op.payload)
	}
	binary.LittleEndian.PutUint32(b[0:], uint32(pl))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(b[8:8+pl], walCRC))
	if _, err := l.w.Write(b); err != nil {
		l.failed = true
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	l.n += int64(8 + pl)
	l.frames++
	return nil
}

// flushBuf pushes buffered frames into the OS. Durability additionally
// requires an fsync; group commit performs that outside the engine's WAL
// mutex so appends keep buffering while the disk syncs.
func (l *wal) flushBuf() error {
	if err := l.w.Flush(); err != nil {
		l.failed = true
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	return nil
}

// sync flushes buffered frames and fsyncs the file: every previously
// acknowledged append is durable once sync returns.
func (l *wal) sync() error {
	if err := l.flushBuf(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.failed = true
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	return nil
}

func (l *wal) close() error {
	if err := l.sync(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrWAL, err)
	}
	return nil
}

// replayWAL reads every intact frame of the log at path, in order. A torn
// tail — a final frame cut short by a crash, or any framing/CRC damage —
// ends the replay silently: recovery keeps exactly the longest valid
// prefix and drops the rest, so an acknowledged (synced) write is never
// lost and an unacknowledged torn write is never resurrected partially.
func replayWAL(fsys vfs.FS, path string, dims int) ([]walOp, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrWAL, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrWAL, err)
	}
	r := bufio.NewReader(io.NewSectionReader(f, 0, fi.Size()))
	putLen := walPayloadSize(dims, false)
	delLen := walPayloadSize(dims, true)
	head := make([]byte, 8)
	body := make([]byte, putLen)
	var ops []walOp
	for {
		if _, err := io.ReadFull(r, head); err != nil {
			return ops, nil // clean EOF or torn frame header
		}
		pl := int(binary.LittleEndian.Uint32(head[0:]))
		if pl != putLen && pl != delLen {
			return ops, nil // garbage length: torn or corrupt tail
		}
		if _, err := io.ReadFull(r, body[:pl]); err != nil {
			return ops, nil // torn payload
		}
		if crc32.Checksum(body[:pl], walCRC) != binary.LittleEndian.Uint32(head[4:]) {
			return ops, nil // corrupt payload
		}
		ok := (body[0] == walOpPut && pl == putLen) || (body[0] == walOpDel && pl == delLen)
		if !ok {
			return ops, nil // op byte and length disagree
		}
		op := walOp{del: body[0] == walOpDel}
		op.pt = make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			op.pt[d] = binary.LittleEndian.Uint32(body[1+4*d:])
		}
		if !op.del {
			op.payload = binary.LittleEndian.Uint64(body[1+4*dims:])
		}
		ops = append(ops, op)
	}
}
