package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/ranges"
	"github.com/onioncurve/onion/internal/telemetry"
	"github.com/onioncurve/onion/internal/vfs"
)

var (
	// ErrClosed reports use of a closed engine.
	ErrClosed = errors.New("engine: closed")
	// ErrPoint reports a point outside the engine's universe.
	ErrPoint = errors.New("engine: point outside universe")
	// ErrRanges reports a malformed pre-planned range list passed to
	// QueryRanges: unsorted, overlapping, or beyond the key space.
	ErrRanges = errors.New("engine: invalid key ranges")
)

// Options tunes an Engine. The zero value selects the defaults.
type Options struct {
	// PageBytes is the segment page size (default 4096).
	PageBytes int
	// FlushEntries triggers an automatic background flush once the active
	// memtable holds this many versions (default 1 << 16; negative
	// disables automatic flushing — Flush must be called explicitly).
	FlushEntries int
	// SyncWrites fsyncs the WAL on every Put/Delete before acknowledging.
	// Off by default: group durability is available through Sync.
	SyncWrites bool
	// Shards is the number of memtable shards (default GOMAXPROCS).
	Shards int
	// CompactFanout is the size-tiered trigger: a run of at least this
	// many age-adjacent, similar-sized segments is merged in the
	// background (default 4; negative disables background compaction).
	CompactFanout int
	// Cache is a shared page cache for the engine's segments — pass the
	// same cache to several engines (the sharded service does) to share
	// one byte budget across them. Caching changes only the physical I/O
	// (Stats.IO): the logical seek/page accounting is bit-identical with
	// the cache on or off.
	Cache *pagedstore.Cache
	// CacheBytes, when Cache is nil and this is positive, gives the
	// engine a private page cache with this byte budget. 0 disables
	// caching.
	CacheBytes int64
	// FS is the filesystem the engine's files live on. Nil selects the
	// real filesystem; fault-injection tests pass a vfs.Injecting to turn
	// every WAL append, fsync, segment install and directory operation
	// into a deterministic fault point.
	FS vfs.FS
	// WALRetention controls what happens to a WAL once its data reaches a
	// segment. 0 (the default) archives every retired log under
	// dir/archive/ and keeps them all — the history point-in-time restore
	// replays. A positive value archives but caps the archive at that
	// many logs, pruning oldest-first (bounding how far back Restore can
	// reach). A negative value disables archiving and deletes retired
	// logs outright, the pre-archiving behavior.
	WALRetention int
	// ScrubPagesPerSec, when positive, runs a background scrubber that
	// verifies segment pages at most this fast (CRC + key order, the same
	// checks Verify performs), quarantining corruption before a query
	// trips over it. 0 disables the scrubber.
	ScrubPagesPerSec int
	// CommitHook, when non-nil, observes every framed op and gates the
	// group-commit rendezvous on the hook's Commit — the seam WAL
	// replication hangs off. See the CommitHook contract; it is only
	// meaningful together with SyncWrites.
	CommitHook CommitHook

	// noGroupCommit reverts SyncWrites to one fsync per write — the
	// pre-group-commit behavior, kept for benchmark baselines.
	noGroupCommit bool

	// noTelemetry disables hot-path metric recording (the registry stays,
	// empty). Unexported: only the benchmark baseline that quantifies the
	// telemetry overhead sets it.
	noTelemetry bool

	// Background-failure backoff: a failed background flush or compaction
	// is retried retryAttempts times with exponential delay from
	// retryBase capped at retryCap (jittered ±50%) before the engine
	// degrades. Unexported: only fault-injection tests shrink them.
	retryBase     time.Duration
	retryCap      time.Duration
	retryAttempts int
}

func (o Options) withDefaults() Options {
	if o.PageBytes == 0 {
		o.PageBytes = 4096
	}
	if o.FlushEntries == 0 {
		o.FlushEntries = 1 << 16
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.CompactFanout == 0 {
		o.CompactFanout = 4
	}
	if o.retryBase == 0 {
		o.retryBase = 10 * time.Millisecond
	}
	if o.retryCap == 0 {
		o.retryCap = 160 * time.Millisecond
	}
	if o.retryAttempts == 0 {
		o.retryAttempts = 5
	}
	return o
}

// Record is one stored point with an opaque payload (the pagedstore type:
// segments are pagedstore files).
type Record = pagedstore.Record

// Stats is the physical access pattern of one engine query. The embedded
// pagedstore.Stats counts exactly as a pagedstore query does — Seeks is
// the number of positioned reads at non-contiguous segment offsets summed
// over the live segments, PagesRead and RecordsScanned likewise; the
// memtable contributes no seeks (it is RAM). On a fully flushed and
// compacted engine the embedded Stats of a query are bit-identical to the
// Stats of the same query against a pagedstore holding the same records.
type Stats struct {
	pagedstore.Stats
	// MemEntries is the number of memtable entries merged into the result.
	MemEntries int
	// Segments is the number of live segments consulted.
	Segments int
	// Planned is the number of key ranges produced by the single
	// RangePlanner call — the clustering number of the query rectangle.
	Planned int
	// IO is the physical I/O the query actually performed, summed over
	// the segment cursors. Unlike every other counter it depends on
	// cache state and segment-footer pruning, so it is excluded from the
	// bit-identical stat contracts: the logical counters above prove the
	// clustering accounting, IO shows how much of it the performance
	// layer absorbed.
	IO pagedstore.IOStats
}

// EngineStats is a point-in-time summary of the engine's shape.
type EngineStats struct {
	MemEntries     int64  // versions in the active memtable
	ImmMemtables   int    // frozen memtables awaiting flush
	Segments       int    // live immutable segments
	SegmentRecords int    // records across live segments (incl. tombstones)
	WALBytes       int64  // bytes appended to the active WAL
	LastSeq        uint64 // last assigned sequence number
	Flushes        uint64
	Compactions    uint64
}

// committer tracks the contiguous watermark of completed writes: a write
// is visible to queries only once every smaller sequence number has also
// landed in the memtable, so a snapshot is always a prefix of history.
type committer struct {
	mu      sync.Mutex
	done    map[uint64]struct{}
	visible atomic.Uint64
}

func (t *committer) commit(seq uint64) {
	t.mu.Lock()
	if seq == t.visible.Load()+1 {
		v := seq
		for {
			if _, ok := t.done[v+1]; !ok {
				break
			}
			delete(t.done, v+1)
			v++
		}
		t.visible.Store(v)
	} else {
		t.done[seq] = struct{}{}
	}
	t.mu.Unlock()
}

// Engine is a durable LSM-style spatial store keyed by curve index. See
// the package comment for the architecture. All methods are safe for
// concurrent use.
//
// Lock order: mu before walMu; flushMu (held across whole flush or
// compaction) before both.
type Engine struct {
	dir   string
	c     curve.Curve
	opts  Options
	fs    vfs.FS            // all file access funnels through here
	cache *pagedstore.Cache // segment page cache; nil when disabled

	health healthState // monotonic degradation state (health.go)
	scrub  atomic.Bool // a query hit ErrCorrupt; background Verify pending

	// reg/events/tel are the observability layer (telemetry.go): reg and
	// events are always non-nil after Open; tel is nil only under the
	// benchmark-only noTelemetry option, and every hot-path record site
	// guards on that.
	reg    *telemetry.Registry
	events *telemetry.Events
	tel    *engineTelemetry

	walMu sync.Mutex
	wal   *wal
	seq   uint64 // last assigned sequence number (under walMu)
	com   committer
	hook  CommitHook // replication seam; nil for a standalone engine

	// mu guards the engine's structure: memtable identity, segment list,
	// closed flag. Writers and queries hold it shared; flush, compaction
	// installs and close hold it exclusive.
	mu      sync.RWMutex
	mem     *memtable
	imm     []*memtable // frozen memtables, oldest first
	segs    []*segment  // live segments, oldest first
	gen     uint64      // next file generation
	closing bool        // Close in progress (blocks a second Close)
	closed  bool

	flushMu sync.Mutex // serializes flush and compaction bodies

	bgErrMu sync.Mutex
	bgErr   error // last background flush/compaction error, nil after success

	flushes     atomic.Uint64
	compactions atomic.Uint64

	bg        chan struct{} // background flush/compact doorbell
	bgStop    chan struct{}
	bgDone    chan struct{}
	scrubDone chan struct{} // nil unless the rate-limited scrubber runs
}

// Open opens (creating if needed) the engine rooted at dir, clustered by
// c. Any WAL left by a crash is replayed — torn tails are truncated away,
// so exactly the acknowledged writes survive — and immediately flushed to
// a fresh segment.
func Open(dir string, c curve.Curve, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	segIDs, walGens, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	e := &Engine{dir: dir, c: c, opts: opts, fs: fsys, hook: opts.CommitHook}
	e.cache = opts.Cache
	if e.cache == nil && opts.CacheBytes > 0 {
		e.cache = pagedstore.NewCache(opts.CacheBytes)
	}
	e.reg = telemetry.NewRegistry()
	e.events = telemetry.NewEvents(0)
	if !opts.noTelemetry {
		e.tel = newEngineTelemetry(e.reg)
		// Export the cache only when this engine created it: a shared
		// cache (Options.Cache) is exported once by whoever owns it, so
		// per-shard roll-ups never multiply its counters.
		e.registerSampledTelemetry(opts.Cache == nil && e.cache != nil)
	}
	e.com.done = make(map[uint64]struct{})
	for _, id := range segIDs {
		seg, err := openSegment(fsys, dir, c, id, e.cache)
		if err != nil {
			e.releaseSegments()
			return nil, err
		}
		e.segs = append(e.segs, seg)
		if id.hi >= e.gen {
			e.gen = id.hi + 1
		}
	}
	// Replay surviving WALs (oldest first) into a recovery memtable and
	// flush it: after Open the log is empty and the data is in segments.
	var recovered *memtable
	dims := c.Universe().Dims()
	for _, g := range walGens {
		if g >= e.gen {
			e.gen = g + 1
		}
		if walCovered(segIDs, g) {
			// The log's generation already reached a segment: this WAL
			// is the leftover of a retirement that failed after the
			// segment install. Replaying it would re-apply its versions
			// — tombstones included — at the newest priority, shadowing
			// every later write; skip it (the removal loop below still
			// deletes the file).
			continue
		}
		ops, err := replayWAL(fsys, walPath(dir, g), dims)
		if err != nil {
			e.releaseSegments()
			return nil, err
		}
		for _, op := range ops {
			if recovered == nil {
				recovered, err = newMemtable(c, opts.Shards, e.gen)
				if err != nil {
					e.releaseSegments()
					return nil, err
				}
			}
			e.seq++
			recovered.put(c.Index(op.pt), op.pt, op.payload, e.seq, op.del)
		}
	}
	e.com.visible.Store(e.seq)
	if recovered != nil {
		seg, err := writeSegment(fsys, dir, c, segID{lo: e.gen, hi: e.gen}, recovered.flushEntries(), opts.PageBytes, e.cache)
		if err != nil {
			e.releaseSegments()
			return nil, err
		}
		e.segs = append(e.segs, seg)
		e.gen++
		e.flushes.Add(1)
	}
	for _, g := range walGens {
		if err := archiveWAL(fsys, dir, g, opts.WALRetention); err != nil {
			e.releaseSegments()
			return nil, err
		}
	}
	e.mem, err = newMemtable(c, opts.Shards, e.gen)
	if err != nil {
		e.releaseSegments()
		return nil, err
	}
	e.wal, err = createWAL(fsys, walPath(dir, e.gen), dims)
	if err != nil {
		e.releaseSegments()
		return nil, err
	}
	e.gen++
	e.bg = make(chan struct{}, 1)
	e.bgStop = make(chan struct{})
	e.bgDone = make(chan struct{})
	go e.background()
	if opts.ScrubPagesPerSec > 0 {
		e.scrubDone = make(chan struct{})
		go e.scrubLoop()
	}
	return e, nil
}

// walCovered reports whether generation g's data already reached a live
// segment: flush installs segment [g, g] (and compaction may merge it
// into a wider range) strictly before retiring WAL g, so a surviving
// WAL whose generation a segment covers holds nothing the segments
// don't.
func walCovered(segs []segID, g uint64) bool {
	for _, id := range segs {
		if id.lo <= g && g <= id.hi {
			return true
		}
	}
	return false
}

func (e *Engine) releaseSegments() {
	for _, s := range e.segs {
		s.st.Close()
	}
	e.segs = nil
}

// background drains the doorbell: each ring runs a pending corruption
// scrub, flushes the active memtable once it is over the threshold, and
// applies the size-tiered compaction policy until it reaches a fixed
// point. Failures retry with capped jittered backoff; when the retries
// run dry the engine degrades — to ReadOnly for flush failures (acked
// data is stranded in memory and every further write grows the debt),
// to Degraded for compaction failures (the engine is merely getting
// slower and wider, not less durable).
func (e *Engine) background() {
	defer close(e.bgDone)
	for {
		select {
		case <-e.bgStop:
			return
		case <-e.bg:
			if e.scrub.Swap(false) {
				if _, err := e.Verify(); err != nil {
					e.setBgErr(err)
				}
			}
			if e.opts.FlushEntries > 0 && e.memEntries() >= int64(e.opts.FlushEntries) {
				e.setBgErr(e.retryBg(e.Flush, ReadOnly))
			}
			if e.opts.CompactFanout > 0 {
				e.setBgErr(e.retryBg(e.maybeCompact, Degraded))
			}
		}
	}
}

// retryBg runs one background maintenance op, retrying failures with
// exponentially growing, ±50%-jittered, capped delays. If every attempt
// fails the engine degrades to fallback and the last error is returned;
// shutdown interrupts the backoff immediately.
func (e *Engine) retryBg(op func() error, fallback Health) error {
	delay := e.opts.retryBase
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil || errors.Is(err, ErrClosed) {
			return err
		}
		if attempt == e.opts.retryAttempts-1 {
			break
		}
		if tel := e.tel; tel != nil {
			tel.bgRetries.Inc()
		}
		d := delay/2 + rand.N(delay)
		if delay *= 2; delay > e.opts.retryCap {
			delay = e.opts.retryCap
		}
		t := time.NewTimer(d)
		select {
		case <-e.bgStop:
			t.Stop()
			return err
		case <-t.C:
		}
	}
	e.degrade(fallback, err)
	return err
}

// setBgErr records the outcome of a background flush or compaction; a
// success clears an earlier failure (flushLocked retries stranded
// memtables, so transient errors self-heal).
func (e *Engine) setBgErr(err error) {
	if errors.Is(err, ErrClosed) {
		return
	}
	e.bgErrMu.Lock()
	e.bgErr = err
	e.bgErrMu.Unlock()
}

// BackgroundErr returns the most recent error of a background flush or
// compaction, or nil if the last background cycle succeeded. Background
// failures never drop acknowledged data — frozen memtables stay queued
// and WALs stay on disk until a later flush succeeds — but a persistent
// error means memory keeps growing, which this surfaces.
func (e *Engine) BackgroundErr() error {
	e.bgErrMu.Lock()
	defer e.bgErrMu.Unlock()
	return e.bgErr
}

func (e *Engine) memEntries() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0
	}
	return e.mem.entries.Load()
}

// Put inserts or overwrites the record at point p. The write is
// acknowledged after it is framed into the WAL and inserted into the
// memtable; with Options.SyncWrites it is also fsynced first.
func (e *Engine) Put(p geom.Point, payload uint64) error {
	return e.write(p, payload, false)
}

// Delete removes the record at point p (a blind tombstone write: deleting
// an absent point is not an error, matching LSM semantics).
func (e *Engine) Delete(p geom.Point) error {
	return e.write(p, 0, true)
}

func (e *Engine) write(p geom.Point, payload uint64, del bool) error {
	if !e.c.Universe().Contains(p) {
		return fmt.Errorf("%w: %v in %v", ErrPoint, p, e.c.Universe())
	}
	if Health(e.health.state.Load()) >= ReadOnly {
		return e.readOnlyErr()
	}
	key := e.c.Index(p)
	e.mu.RLock()
	if e.closed || e.closing {
		e.mu.RUnlock()
		return ErrClosed
	}
	// Sequence numbers are assigned under walMu so WAL order equals
	// sequence order; the memtable insert happens outside it so concurrent
	// writers contend only on their key's shard.
	e.walMu.Lock()
	e.seq++
	seq := e.seq
	w := e.wal
	prevN := w.n
	err := w.append(walOp{pt: p, payload: payload, del: del})
	pos := w.n
	if err == nil {
		if h := e.hook; h != nil {
			h.Append(seq, BatchOp{Point: p, Payload: payload, Del: del})
		}
	}
	if err == nil && e.opts.SyncWrites && e.opts.noGroupCommit {
		err = e.timedWALSync(w)
	}
	e.walMu.Unlock()
	if err == nil && e.opts.SyncWrites && !e.opts.noGroupCommit {
		// Group commit: wait until a single batched flush + fsync covers
		// this frame. The caller still holds e.mu.RLock, so the log
		// cannot rotate out from under the rendezvous.
		err = e.groupCommit(w, pos)
	}
	if err != nil {
		// The write never happened (the caller gets the error), but its
		// sequence number exists: commit it anyway so the visibility
		// watermark is not wedged below every later successful write.
		e.com.commit(seq)
		e.mu.RUnlock()
		if errors.Is(err, ErrWAL) || errors.Is(err, ErrQuorum) {
			// The log's tail is unknowable (failed append, failed fsync,
			// or a group-commit batch poisoned by either), or the batch
			// is durable here but stranded off a replication quorum:
			// acknowledging any further write would be lying about
			// durability. Degrade to ReadOnly — sticky until a guarded
			// recovery — and surface the transition on this error, cause
			// attached.
			e.degrade(ReadOnly, err)
			return fmt.Errorf("%w: %w", ErrReadOnly, err)
		}
		return err
	}
	mem := e.mem
	mem.put(key, p, payload, seq, del)
	e.com.commit(seq)
	entries := mem.entries.Load()
	e.mu.RUnlock()
	if tel := e.tel; tel != nil {
		tel.walAppends.Inc()
		tel.walAppendBytes.Add(uint64(pos - prevN))
	}
	if e.opts.FlushEntries > 0 && entries >= int64(e.opts.FlushEntries) {
		select {
		case e.bg <- struct{}{}:
		default:
		}
	}
	return nil
}

// groupCommit blocks until the log is durably synced past pos — the byte
// position the caller's frame ends at. The first caller to arrive while
// no sync is in flight becomes the leader: it flushes the buffered
// frames under walMu (serializing with concurrent appends) and fsyncs
// OUTSIDE it, so appends keep buffering while the disk barrier runs;
// everyone whose frame the flush covered is released together. Callers
// that arrive mid-fsync wait, and the next leader's single fsync covers
// the entire pile — turning N solo disk barriers into one per batch.
func (e *Engine) groupCommit(w *wal, pos int64) error {
	g := &w.gc
	g.mu.Lock()
	for {
		if g.err != nil {
			err := g.err
			g.mu.Unlock()
			return err
		}
		if g.synced >= pos {
			g.mu.Unlock()
			return nil
		}
		if g.syncing {
			g.wake.Wait()
			continue
		}
		g.syncing = true
		g.mu.Unlock()

		// Commit window: yield once before capturing the batch, so
		// writers just released by the previous fsync (or racing in
		// right now) get to append their frames first. Without this the
		// batches alternate thin/full — the leader flushes before its
		// co-writers reach the log — and half the disk barriers are
		// wasted on single frames.
		runtime.Gosched()

		e.walMu.Lock()
		target := w.n
		targetFrames := w.frames
		seqTarget := e.seq
		err := w.flushBuf()
		e.walMu.Unlock()
		tel := e.tel
		if err == nil {
			if h, ok := e.hook.(PreCommitHook); ok {
				// Overlap the replicas' barriers with ours: the batch is
				// fully framed in the OS buffer, so the hook can start
				// shipping it now and Commit below finds the quorum acks
				// already (or nearly) in place.
				h.PreCommit(seqTarget)
			}
		}
		if err == nil {
			var syncStart time.Time
			if tel != nil {
				syncStart = time.Now()
			}
			if serr := w.f.Sync(); serr != nil {
				err = fmt.Errorf("%w: %w", ErrWAL, serr)
				e.walMu.Lock()
				w.failed = true
				e.walMu.Unlock()
			} else if tel != nil {
				tel.walFsyncs.Inc()
				tel.walFsyncUS.Record(uint64(time.Since(syncStart).Microseconds()))
			}
		}
		if err == nil {
			if h := e.hook; h != nil {
				// Replication rides the same rendezvous: the batch this
				// fsync covered is released only once it is also durable
				// on a quorum, so the single round-trip amortizes over
				// the whole pile exactly like the single disk barrier. A
				// hook failure poisons the log like a failed fsync — the
				// local tail is fine, but acks would overstate
				// replication.
				err = h.Commit(seqTarget)
			}
		}

		g.mu.Lock()
		g.syncing = false
		if err != nil {
			// Poison the rendezvous: like wal.failed, a torn flush leaves
			// the tail unknown, so every waiter (and every later sync
			// attempt on this log) reports failure until a flush rotates
			// in a fresh log.
			g.err = err
		} else if target > g.synced {
			// The batch this single fsync made durable is every frame
			// appended since the previous watermark — the group-commit
			// batch size distribution.
			if tel != nil && targetFrames > g.syncedFrames {
				tel.walBatch.Record(uint64(targetFrames - g.syncedFrames))
			}
			g.synced = target
			g.syncedFrames = targetFrames
		}
		g.wake.Broadcast()
	}
}

// Sync makes every previously acknowledged write durable. A failed sync
// leaves durability unknowable for the unsynced suffix, so it degrades
// the engine to ReadOnly exactly as a failed synchronous write does.
func (e *Engine) Sync() error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	e.walMu.Lock()
	err := e.timedWALSync(e.wal)
	e.walMu.Unlock()
	e.mu.RUnlock()
	if err != nil {
		e.degrade(ReadOnly, err)
		return fmt.Errorf("%w: %w", ErrReadOnly, err)
	}
	return nil
}

// source priorities for the k-way merge: larger is newer.
type mergeSource struct {
	mem *memIter           // nil for segment sources
	cur *pagedstore.Cursor // nil for memtable sources
	rec pagedstore.Record  // reusable decode target for segment sources
	// peeked head. pt aliases rec.Point for segment sources and the
	// memtable node's point for memtable sources: valid only until the
	// next advance, so sinks that retain it must copy.
	key  uint64
	pt   geom.Point
	pay  uint64
	del  bool
	ok   bool
	prio int
}

func (m *mergeSource) advance() error {
	if m.mem != nil {
		ent, ok := m.mem.peek()
		if ok {
			m.key, m.pt, m.pay, m.del, m.ok = ent.key, ent.pt, ent.payload, ent.del, true
			m.mem.advance()
		} else {
			m.ok = false
		}
		return nil
	}
	marked, ok, err := m.cur.NextInto(&m.rec)
	if err != nil {
		return err
	}
	if !ok {
		m.ok = false
		return nil
	}
	m.key, m.pt, m.pay, m.del, m.ok = m.cur.Key(), m.rec.Point, m.rec.Payload, marked, true
	return nil
}

// queryState is the reusable scratch of one query execution: the plan
// buffer, the per-segment cursors, the merge sources and iterators, and
// the in-flight output. States recycle through a pool, so a steady-state
// query allocates nothing — the cursors come from their stores' pools,
// the records land in the caller's buffer, and everything in between
// lives here.
type queryState struct {
	plan    []curve.KeyRange
	cursors []*pagedstore.Cursor
	segSrcs []mergeSource
	memSrcs []mergeSource
	iters   []memIter
	mems    []*memtable
	pass    []*mergeSource
	live    []*mergeSource
	out     []Record
	memHits int
}

var qsPool = sync.Pool{New: func() any { return new(queryState) }}

// emit implements mergeSink: the merge hands over the newest holder of
// each key; live records append to the output (copying the point — the
// source's is transient) and memtable wins are tallied.
func (q *queryState) emit(win *mergeSource) {
	if !win.del {
		q.out = pagedstore.AppendRecord(q.out, win.pt, win.pay)
	}
	if win.mem != nil {
		q.memHits++
	}
}

// Query returns every live record whose point lies inside r together with
// the logical access pattern. The curve's range planner runs exactly
// once; each resulting cluster range is then answered by one k-way merge
// pass over the memtable and every live segment, newest source winning on
// duplicate keys and tombstones suppressing older versions. The seek and
// page accounting is pagedstore's, summed over segments.
func (e *Engine) Query(r geom.Rect) ([]Record, Stats, error) {
	return e.QueryAppend(nil, r)
}

// QueryAppend is Query appending into dst: recycling the same dst across
// queries reuses the record slots and their Point buffers, so the
// steady-state query path allocates nothing. Stats.Results counts only
// the records this call appended.
func (e *Engine) QueryAppend(dst []Record, r geom.Rect) ([]Record, Stats, error) {
	tel := e.tel
	var start time.Time
	if tel != nil {
		start = time.Now()
	}
	// One planner call per rectangle — the whole query costs
	// O(clusters) planning regardless of its volume.
	qs := qsPool.Get().(*queryState)
	var err error
	qs.plan, err = ranges.DecomposeAppend(e.c, r, 0, qs.plan)
	if err != nil {
		qsPool.Put(qs)
		if tel != nil {
			tel.queryErrors.Inc()
		}
		return dst, Stats{}, fmt.Errorf("engine: %w", err)
	}
	out, st, err := e.queryRanges(context.Background(), qs, dst, qs.plan)
	st.Planned = len(qs.plan)
	qsPool.Put(qs)
	if tel != nil {
		tel.recordQuery(start, st, err)
	}
	return out, st, err
}

// QueryRanges executes a pre-planned list of key ranges: every live record
// whose curve key falls in one of the ranges, in ascending key order,
// together with the logical access pattern. krs must be sorted ascending,
// disjoint and within the curve's key space — the shape RangePlanner
// emits; a query router that plans a rectangle once and fans its ranges
// out to partitioned engines calls this hook so no engine re-plans.
// Stats.Planned is left zero: planning happened (at most once) in the
// caller.
func (e *Engine) QueryRanges(krs []curve.KeyRange) ([]Record, Stats, error) {
	return e.QueryRangesAppendContext(context.Background(), nil, krs)
}

// QueryRangesAppend is QueryRanges appending into dst — the form the
// shard router's fan-out drives with recycled per-shard buffers.
func (e *Engine) QueryRangesAppend(dst []Record, krs []curve.KeyRange) ([]Record, Stats, error) {
	return e.QueryRangesAppendContext(context.Background(), dst, krs)
}

// QueryRangesAppendContext is QueryRangesAppend under a context: the
// merge checks ctx between ranges and (amortized) inside long range
// scans, so a timeout or cancellation stops the worker promptly and
// returns ctx.Err() with whatever statistics had accumulated.
func (e *Engine) QueryRangesAppendContext(ctx context.Context, dst []Record, krs []curve.KeyRange) ([]Record, Stats, error) {
	tel := e.tel
	var start time.Time
	if tel != nil {
		start = time.Now()
	}
	n := e.c.Universe().Size()
	for i, kr := range krs {
		if kr.Lo > kr.Hi || kr.Hi >= n {
			return dst, Stats{}, fmt.Errorf("%w: %v (key space [0,%d))", ErrRanges, kr, n)
		}
		if i > 0 && kr.Lo <= krs[i-1].Hi {
			return dst, Stats{}, fmt.Errorf("%w: %v not after %v", ErrRanges, kr, krs[i-1])
		}
	}
	qs := qsPool.Get().(*queryState)
	out, st, err := e.queryRanges(ctx, qs, dst, krs)
	qsPool.Put(qs)
	if tel != nil {
		// Planned stays 0 on the pre-planned path (the caller planned),
		// so recordQuery skips the planned-ranges and seek-amplification
		// series and tallies latency and the logical counters.
		tel.recordQuery(start, st, err)
	}
	return out, st, err
}

func (e *Engine) queryRanges(ctx context.Context, qs *queryState, dst []Record, krs []curve.KeyRange) ([]Record, Stats, error) {
	var st Stats
	base := len(dst)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return dst, st, ErrClosed
	}
	snap := e.com.visible.Load()
	st.Segments = len(e.segs)

	// Sources, oldest to newest: segments (list order), frozen memtables
	// (list order), then the active memtable. Priority = slice position,
	// so on duplicate keys the newest source is authoritative.
	qs.cursors = qs.cursors[:0]
	if cap(qs.segSrcs) < len(e.segs) {
		qs.segSrcs = make([]mergeSource, len(e.segs))
	}
	qs.segSrcs = qs.segSrcs[:len(e.segs)]
	for i, seg := range e.segs {
		cur := seg.st.AcquireCursor()
		qs.cursors = append(qs.cursors, cur)
		s := &qs.segSrcs[i]
		pt := s.rec.Point // keep the decode buffer across reuses
		*s = mergeSource{cur: cur, prio: i}
		s.rec.Point = pt
	}
	qs.mems = append(qs.mems[:0], e.imm...)
	qs.mems = append(qs.mems, e.mem)
	if cap(qs.memSrcs) < len(qs.mems) {
		qs.memSrcs = make([]mergeSource, len(qs.mems))
	}
	qs.memSrcs = qs.memSrcs[:len(qs.mems)]
	if cap(qs.iters) < len(qs.mems) {
		qs.iters = make([]memIter, len(qs.mems))
	}
	qs.iters = qs.iters[:len(qs.mems)]

	qs.out = dst
	qs.memHits = 0
	cancel := ctx.Done()
	var err error
	for _, kr := range krs {
		if cancel != nil {
			if err = ctx.Err(); err != nil {
				break
			}
		}
		qs.pass = qs.pass[:0]
		for i := range qs.segSrcs {
			s := &qs.segSrcs[i]
			s.cur.SeekRange(kr)
			qs.pass = append(qs.pass, s)
		}
		for j := range qs.mems {
			it := &qs.iters[j]
			it.init(qs.mems[j], kr, snap)
			qs.memSrcs[j] = mergeSource{mem: it, prio: len(qs.pass)}
			qs.pass = append(qs.pass, &qs.memSrcs[j])
		}
		if err = mergeSources(qs.pass, &qs.live, qs, ctx); err != nil {
			break
		}
	}
	out := qs.out
	qs.out = nil
	st.MemEntries = qs.memHits
	st = e.sumStats(st, qs.cursors)
	for _, cur := range qs.cursors {
		cur.Release()
	}
	if err != nil {
		if errors.Is(err, pagedstore.ErrCorrupt) {
			// A segment served a damaged page. Queue a background Verify
			// — it will quarantine the segment so later queries stop
			// tripping over it — and ring the doorbell.
			e.scrub.Store(true)
			select {
			case e.bg <- struct{}{}:
			default:
			}
		}
		return out[:base], st, err
	}
	st.Results = len(out) - base
	return out, st, nil
}

// mergeSink receives the merged stream of mergeSources.
type mergeSink interface{ emit(win *mergeSource) }

// mergeSources primes the given sources and drains them in ascending key
// order: the sink's emit is called exactly once per distinct key, with
// the newest (highest-priority) holder of that key — tombstones
// included, so the sink decides whether they suppress or survive. Both
// the query path and segment compaction resolve duplicates through this
// one routine. scratch is the reusable live-source buffer. A non-nil
// ctx is polled every 1024 emitted keys, so cancellation lands mid-range
// without taxing the per-record hot path; compaction passes nil.
func mergeSources(srcs []*mergeSource, scratch *[]*mergeSource, sink mergeSink, ctx context.Context) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	live := (*scratch)[:0]
	for _, s := range srcs {
		if err := s.advance(); err != nil {
			*scratch = live
			return err
		}
		if s.ok {
			live = append(live, s)
		}
	}
	for emits := 0; len(live) > 0; emits++ {
		if done != nil && emits&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				*scratch = live
				return err
			}
		}
		// Smallest key next; among equals the highest priority (newest)
		// version is authoritative.
		minKey := live[0].key
		for _, s := range live[1:] {
			if s.key < minKey {
				minKey = s.key
			}
		}
		var winner *mergeSource
		for _, s := range live {
			if s.key == minKey && (winner == nil || s.prio > winner.prio) {
				winner = s
			}
		}
		sink.emit(winner)
		// Advance every source sitting on minKey.
		next := live[:0]
		for _, s := range live {
			for s.ok && s.key == minKey {
				if err := s.advance(); err != nil {
					*scratch = live
					return err
				}
			}
			if s.ok {
				next = append(next, s)
			}
		}
		live = next
	}
	*scratch = live
	return nil
}

// sumStats folds the per-segment cursor tallies — logical and physical —
// into st.
func (e *Engine) sumStats(st Stats, cursors []*pagedstore.Cursor) Stats {
	for _, cur := range cursors {
		cs := cur.Stats()
		st.Seeks += cs.Seeks
		st.PagesRead += cs.PagesRead
		st.RecordsScanned += cs.RecordsScanned
		st.IO.Add(cur.IO())
	}
	return st
}

// Flush freezes the active memtable and writes it out as one immutable
// curve-ordered segment, then retires its WAL. Concurrent writers land in
// the fresh memtable; concurrent queries keep seeing the frozen data
// until the segment is installed.
func (e *Engine) Flush() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	// Freeze: swap in a fresh memtable + WAL under the exclusive lock.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	var oldWal *wal
	if e.mem.entries.Load() > 0 {
		frozen := e.mem
		dims := e.c.Universe().Dims()
		newWal, err := createWAL(e.fs, walPath(e.dir, e.gen), dims)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		newMem, err := newMemtable(e.c, e.opts.Shards, e.gen)
		if err != nil {
			newWal.close() //nolint:errcheck
			e.fs.Remove(walPath(e.dir, e.gen)) //nolint:errcheck
			e.mu.Unlock()
			return err
		}
		oldWal = e.wal
		e.wal = newWal
		e.mem = newMem
		e.imm = append(e.imm, frozen)
		e.gen++
	}
	// Flush every frozen memtable, oldest first — including leftovers of
	// an earlier failed flush, so a transient write error never strands
	// data in memory.
	frozen := append([]*memtable{}, e.imm...)
	e.mu.Unlock()

	if oldWal == nil && len(frozen) == 0 {
		return nil
	}
	if tel := e.tel; tel != nil && oldWal != nil {
		tel.walRotations.Inc()
	}
	start := time.Now()
	e.emitEvent(telemetry.Event{Kind: telemetry.EvFlush, Phase: telemetry.PhaseStart})
	recs, err := e.flushFrozen(oldWal, frozen)
	dur := time.Since(start)
	if tel := e.tel; tel != nil && err == nil {
		tel.flushUS.Record(uint64(dur.Microseconds()))
		tel.flushRecords.Add(uint64(recs))
	}
	e.emitEvent(telemetry.Event{Kind: telemetry.EvFlush, Phase: telemetry.PhaseEnd,
		Dur: dur, Records: int64(recs), Err: errString(err)})
	return err
}

// flushFrozen retires the rotated-out WAL and writes every frozen
// memtable to a segment, returning how many records reached disk.
func (e *Engine) flushFrozen(oldWal *wal, frozen []*memtable) (int, error) {
	if oldWal != nil {
		if err := oldWal.close(); err != nil {
			return 0, err
		}
	}
	recs := 0
	for _, m := range frozen {
		// Write the segment outside any lock: queries keep reading the
		// frozen memtable from e.imm meanwhile.
		ents := m.flushEntries()
		seg, err := writeSegment(e.fs, e.dir, e.c, segID{lo: m.gen, hi: m.gen}, ents, e.opts.PageBytes, e.cache)
		if err != nil {
			return recs, err
		}
		// Install the segment, retire the frozen memtable and its WAL.
		e.mu.Lock()
		e.segs = append(e.segs, seg)
		for i, im := range e.imm {
			if im == m {
				e.imm = append(e.imm[:i], e.imm[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
		if err := archiveWAL(e.fs, e.dir, m.gen, e.opts.WALRetention); err != nil {
			return recs, err
		}
		e.flushes.Add(1)
		recs += len(ents)
	}
	return recs, nil
}

// Stats returns a point-in-time summary of the engine's shape.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := EngineStats{
		ImmMemtables: len(e.imm),
		Segments:     len(e.segs),
		Flushes:      e.flushes.Load(),
		Compactions:  e.compactions.Load(),
	}
	if e.closed {
		return st
	}
	st.MemEntries = e.mem.entries.Load()
	for _, s := range e.segs {
		st.SegmentRecords += s.recs
	}
	e.walMu.Lock()
	st.WALBytes = e.wal.n
	st.LastSeq = e.seq
	e.walMu.Unlock()
	return st
}

// WALRetention reports the archived-WAL retention cap this engine was
// opened with (see Options.WALRetention). Subsystems whose correctness
// depends on archived WALs surviving — a replication seed snapshot
// chains its restore through the archive — must read the live value
// here rather than trust a configuration copy that may not match the
// options the engine was actually opened with.
func (e *Engine) WALRetention() int { return e.opts.WALRetention }

// CacheStats summarizes the engine's segment page cache: hit/miss
// counts, resident bytes and evictions. It is zero when caching is
// disabled; with a shared cache (Options.Cache) the numbers span every
// engine on that cache.
func (e *Engine) CacheStats() pagedstore.CacheStats {
	if e.cache == nil {
		return pagedstore.CacheStats{}
	}
	return e.cache.Stats()
}

// Close flushes the memtable, stops the background worker and releases
// every file. The engine is unusable afterwards; reopen with Open.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed || e.closing {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closing = true
	e.mu.Unlock()
	close(e.bgStop)
	<-e.bgDone
	if e.scrubDone != nil {
		<-e.scrubDone
	}
	// flushMu serializes the teardown against any in-flight Flush or
	// Compact body, so segment stores are never closed under a running
	// merge.
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	err := e.flushLocked()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	wal := e.wal
	segs := e.segs
	drained := e.mem.entries.Load() == 0 && len(e.imm) == 0
	e.segs = nil
	e.mu.Unlock()
	if cerr := wal.close(); err == nil {
		err = cerr
	}
	// Remove the final WAL only if every write reached a segment; after a
	// failed flush it is the sole durable copy of the memtable and must
	// survive for the next Open to replay.
	if drained {
		if rerr := e.fs.Remove(walPath(e.dir, e.gen-1)); rerr != nil && err == nil {
			err = fmt.Errorf("engine: %w", rerr)
		}
	}
	for _, s := range segs {
		if cerr := s.st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
