package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

// corruptFile flips one byte in the middle of the file — deep inside the
// page data region for any non-trivial segment.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	off := fi.Size() / 2
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// twoRowEngine builds an engine with two disjoint flushed segments (rows
// y=0 and y=1, 60 points each, payload row*1000+x) on the given
// filesystem and returns it with the first segment's file path.
func twoRowEngine(t *testing.T, dir string, opts Options) (*Engine, curve.Curve, string) {
	t.Helper()
	o := fwCurve(t)
	e, err := Open(dir, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	for row := uint32(0); row < 2; row++ {
		for x := uint32(0); x < 60; x++ {
			if err := e.Put(geom.Point{x, row}, uint64(row*1000+x)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.segs) != 2 {
		t.Fatalf("fixture has %d segments, want 2", len(e.segs))
	}
	return e, o, e.segs[0].path
}

// checkBothRows asserts a full scan returns both complete rows with the
// fixture's payloads.
func checkBothRows(t *testing.T, e *Engine, o curve.Curve) {
	t.Helper()
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(recs) != 120 {
		t.Fatalf("query returned %d records, want 120", len(recs))
	}
	for _, r := range recs {
		if want := uint64(r.Point[1]*1000 + r.Point[0]); r.Payload != want {
			t.Fatalf("record %v payload %d, want %d", r.Point, r.Payload, want)
		}
	}
}

// TestRepairFromSnapshot is the end-to-end repair acceptance path:
// corruption detected, segment quarantined, Repair salvages the clean
// pages, back-fills the damaged interval from a pre-corruption snapshot,
// Verify comes back clean and health returns to Healthy.
func TestRepairFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapDir := filepath.Join(t.TempDir(), "snap")
	// The injector (no faults set) hides the hardlink capability, so the
	// snapshot byte-copies: corrupting the source later must not reach
	// into the backup.
	e, o, victim := twoRowEngine(t, dir, fwOpts(vfs.NewInjecting(vfs.OS{})))
	defer e.Close() //nolint:errcheck
	if _, err := e.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, victim)

	vrep, err := e.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(vrep.Quarantined) != 1 || !errors.Is(vrep.Quarantined[0].Cause, ErrCorrupt) {
		t.Fatalf("verify report %+v, want one corrupt quarantine", vrep)
	}
	if h, _ := e.Health(); h != Degraded {
		t.Fatalf("health after quarantine = %v, want Degraded", h)
	}

	rep, err := e.Repair(snapDir)
	if err != nil {
		t.Fatalf("repair: %v (report %+v)", err, rep)
	}
	if rep.Attempted != 1 || rep.Repaired != 1 || len(rep.Unrepaired) != 0 {
		t.Fatalf("repair report %+v, want 1/1 repaired", rep)
	}
	if rep.Salvaged+rep.Backfilled != 60 || rep.Backfilled == 0 {
		t.Fatalf("repair recovered %d salvaged + %d backfilled records, want 60 total with a non-empty backfill",
			rep.Salvaged, rep.Backfilled)
	}
	if rep.Health != Healthy {
		t.Fatalf("health after repair = %v, want Healthy", rep.Health)
	}
	if h, cause := e.Health(); h != Healthy || cause != nil {
		t.Fatalf("Health() after repair = %v (cause %v), want Healthy", h, cause)
	}
	vrep, err = e.Verify()
	if err != nil || len(vrep.Quarantined) != 0 {
		t.Fatalf("verify after repair: %+v, err %v", vrep, err)
	}
	checkBothRows(t, e, o)

	// The repaired state is durable: a reopen serves both rows.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	checkBothRows(t, e2, o)
	if h, _ := e2.Health(); h != Healthy {
		t.Fatalf("reopened health = %v, want Healthy", h)
	}
}

// TestRepairWithoutSnapshot: pure salvage cannot heal damaged intervals,
// so the file stays quarantined and the engine stays Degraded — then a
// real snapshot finishes the job.
func TestRepairWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapDir := filepath.Join(t.TempDir(), "snap")
	e, o, victim := twoRowEngine(t, dir, fwOpts(vfs.NewInjecting(vfs.OS{})))
	defer e.Close() //nolint:errcheck
	if _, err := e.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, victim)
	if _, err := e.Verify(); err != nil {
		t.Fatal(err)
	}

	rep, err := e.Repair("")
	if err != nil {
		t.Fatalf("salvage-only repair returned a hard error: %v", err)
	}
	if rep.Attempted != 1 || rep.Repaired != 0 || len(rep.Unrepaired) != 1 {
		t.Fatalf("salvage-only report %+v, want the file left quarantined", rep)
	}
	if rep.Health != Degraded {
		t.Fatalf("health after salvage-only repair = %v, want Degraded", rep.Health)
	}

	rep, err = e.Repair(snapDir)
	if err != nil || rep.Repaired != 1 || rep.Health != Healthy {
		t.Fatalf("repair with snapshot: %+v, err %v", rep, err)
	}
	checkBothRows(t, e, o)
}

// TestTryRecoverReadOnly: after the write path heals (the injected fault
// clears), TryRecover probes the disk, rotates out the poisoned WAL,
// flushes the stranded acked writes and lowers ReadOnly to Healthy.
func TestTryRecoverReadOnly(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := fwCurve(t)
	dir := t.TempDir()
	e, err := Open(dir, o, fwOpts(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() //nolint:errcheck
	for i := 0; i < 5; i++ {
		if err := e.Put(fwPoint(i), uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetFaults(vfs.Fault{Op: vfs.OpSync, Path: "wal-", N: 1})
	if err := e.Put(fwPoint(5), 5); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("faulted write = %v, want ErrReadOnly", err)
	}

	// While the disk is still broken, recovery must refuse to lower.
	inj.SetFaults(vfs.Fault{Op: vfs.OpSync, Path: "health-probe", N: 1, Repeat: true})
	if h, rerr := e.TryRecover(); h != ReadOnly || rerr == nil {
		t.Fatalf("recover on a broken disk = %v (err %v), want ReadOnly with the probe failure", h, rerr)
	}

	inj.SetFaults()
	h, rerr := e.TryRecover()
	if h != Healthy || rerr != nil {
		t.Fatalf("recover = %v (err %v), want Healthy", h, rerr)
	}
	if h, cause := e.Health(); h != Healthy || cause != nil {
		t.Fatalf("Health() after recover = %v (cause %v)", h, cause)
	}
	// The write path works again and nothing acked was lost.
	for i := 6; i < 9; i++ {
		if err := e.Put(fwPoint(i), uint64(1000+i)); err != nil {
			t.Fatalf("write after recovery: %v", err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got := fwRecover(t, dir)
	for _, i := range []int{0, 1, 2, 3, 4, 6, 7, 8} {
		if got[o.Index(fwPoint(i))] != uint64(1000+i) {
			t.Fatalf("acked write %d missing after recovery (have %d records)", i, len(got))
		}
	}
}

// TestTryRecoverFailedIsTerminal: a containment failure (quarantine
// rename refused) lands in Failed, and no recovery attempt lowers it.
func TestTryRecoverFailedIsTerminal(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	e, _, victim := twoRowEngine(t, t.TempDir(), fwOpts(inj))
	defer e.Close() //nolint:errcheck
	corruptFile(t, victim)
	inj.SetFaults(vfs.Fault{Op: vfs.OpRename, Path: "quarantine", N: 1, Repeat: true})
	if _, err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if h, cause := e.Health(); h != Failed || cause == nil {
		t.Fatalf("health after failed quarantine = %v (cause %v), want Failed", h, cause)
	}
	inj.SetFaults()
	if h, rerr := e.TryRecover(); h != Failed || rerr == nil {
		t.Fatalf("recover from Failed = %v (err %v), want terminal Failed", h, rerr)
	}
}

// TestScrubberQuarantines: the rate-limited background scrubber finds
// rotting bytes on its own schedule — no query ever has to trip over
// them — and condemns the segment exactly as Verify would.
func TestScrubberQuarantines(t *testing.T) {
	dir := t.TempDir()
	opts := Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1,
		Shards: 2, SyncWrites: true, ScrubPagesPerSec: 5000}
	e, o, victim := twoRowEngine(t, dir, opts)
	defer e.Close() //nolint:errcheck
	corruptFile(t, victim)

	cause := waitHealth(t, e, Degraded)
	if !errors.Is(cause, ErrCorrupt) {
		t.Fatalf("scrub degradation cause = %v, want corruption", cause)
	}
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatalf("query after scrub quarantine: %v", err)
	}
	if rows := rowRecords(recs); rows[0] != 0 || rows[1] != 60 {
		t.Fatalf("rows after scrub %v, want row 1 only", rows)
	}
	// Close must stop the scrubber cleanly.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
