package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/onioncurve/onion/internal/geom"
)

// ErrQuorum reports a synchronous write that became durable locally but
// could not reach a quorum of replicas before the commit hook gave up.
// Like ErrWAL it poisons the current group-commit log: the engine
// degrades to ReadOnly (the error chain carries both sentinels) and
// writes fail fast until a guarded recovery — for a replicated engine,
// the replication layer's TryRecover once peers return — rotates the
// log.
var ErrQuorum = errors.New("engine: replication quorum lost")

// CommitHook observes the engine's durable write path — the seam a
// replication layer hangs off. The contract mirrors the WAL itself:
//
//   - Append is invoked under the engine's WAL mutex, once per framed
//     op, in sequence order — exactly the order the frames occupy in the
//     log. The op's Point aliases the caller's buffer; a hook that
//     retains it must clone. Append must not block on I/O or call back
//     into the engine: it runs on the write hot path.
//
//   - Commit is invoked by the group-commit leader after its fsync, with
//     the highest sequence number the fsync covered, and blocks the
//     release of that whole batch until it returns. A replication hook
//     returns nil once every appended op with seq <= the argument is
//     durable on a quorum, making a synchronous ack mean "fsynced on a
//     majority" — one local fsync and one quorum round-trip per batch.
//     Returning an error (conventionally wrapping ErrQuorum) poisons the
//     rendezvous exactly as a failed fsync does: every waiter fails, the
//     engine turns ReadOnly, and recovery requires a log rotation.
//
// Commit only runs on the SyncWrites group-commit path; an engine
// without SyncWrites never calls it, so replication requires synchronous
// writes.
type CommitHook interface {
	Append(seq uint64, op BatchOp)
	Commit(seq uint64) error
}

// PreCommitHook is an optional CommitHook extension. When the hook
// implements it, the group-commit leader invokes PreCommit after the
// batch's frames are flushed to the OS buffer but before its fsync,
// with the same sequence target the following Commit will carry. A
// replication hook uses the window to start shipping the batch, so the
// followers' log fsyncs run concurrently with the leader's own instead
// of being chained after it — the quorum round then costs roughly the
// slower of the two barriers, not their sum. PreCommit must not block
// on the quorum outcome (Commit does that) and must tolerate the batch
// subsequently failing the local fsync: nothing shipped ahead of
// durability is acknowledged until Commit succeeds.
type PreCommitHook interface {
	PreCommit(seq uint64)
}

// EncodeOp appends the WAL payload encoding of op to dst and returns the
// extended slice: op byte, 4*dims little-endian coords, and the 8-byte
// payload for puts. This is byte-identical to the payload the engine
// frames into its own log, so a replication stream built from it is
// decoded by the same rules as WAL replay.
func EncodeOp(dst []byte, op BatchOp, dims int) []byte {
	if op.Del {
		dst = append(dst, walOpDel)
	} else {
		dst = append(dst, walOpPut)
	}
	var c [4]byte
	for d := 0; d < dims; d++ {
		binary.LittleEndian.PutUint32(c[:], op.Point[d])
		dst = append(dst, c[:]...)
	}
	if !op.Del {
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], op.Payload)
		dst = append(dst, p[:]...)
	}
	return dst
}

// DecodeOp parses one EncodeOp payload — the same validation WAL replay
// applies to a frame body, minus the CRC (the transport or log carrying
// the payload guards integrity).
func DecodeOp(b []byte, dims int) (BatchOp, error) {
	var op BatchOp
	if len(b) < 1 {
		return op, fmt.Errorf("%w: empty op payload", ErrWAL)
	}
	op.Del = b[0] == walOpDel
	want := walPayloadSize(dims, op.Del)
	if (b[0] != walOpPut && b[0] != walOpDel) || len(b) != want {
		return op, fmt.Errorf("%w: malformed op payload (%d bytes, op %d)", ErrWAL, len(b), b[0])
	}
	op.Point = make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		op.Point[d] = binary.LittleEndian.Uint32(b[1+4*d:])
	}
	if !op.Del {
		op.Payload = binary.LittleEndian.Uint64(b[1+4*dims:])
	}
	return op, nil
}
