package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
)

// benchOpts: real pages, background flush on, compaction on — the shape a
// serving deployment would run.
func benchOpts() Options {
	return Options{PageBytes: 4096, FlushEntries: 1 << 15, CompactFanout: 4}
}

func benchEngine(b *testing.B, opts Options) *Engine {
	b.Helper()
	o, err := core.NewOnion2D(1 << 9)
	if err != nil {
		b.Fatal(err)
	}
	e, err := Open(b.TempDir(), o, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// BenchmarkEngineIngest measures the acknowledged write path: WAL frame +
// memtable insert (no per-write fsync), including the background flushes
// it triggers.
func BenchmarkEngineIngest(b *testing.B) {
	e := benchEngine(b, benchOpts())
	side := int32(e.c.Universe().Side())
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 4096)
	for i := range pts {
		pts[i] = geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Put(pts[i%len(pts)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngestParallel drives Put from all procs: the WAL append
// serializes on one mutex, the memtable insert lands on per-shard locks.
func BenchmarkEngineIngestParallel(b *testing.B) {
	e := benchEngine(b, benchOpts())
	side := int32(e.c.Universe().Side())
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
			if err := e.Put(pt, rng.Uint64()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineMixedReadWrite interleaves writes with rectangle queries
// (one planner call + merged scan each) on the shared engine — the
// ingest-while-serving workload the engine exists for.
func BenchmarkEngineMixedReadWrite(b *testing.B) {
	e := benchEngine(b, benchOpts())
	side := int32(e.c.Universe().Side())
	// Pre-load so queries have data to find.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50_000; i++ {
		pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
		if err := e.Put(pt, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(100 + seq.Add(1)))
		for pb.Next() {
			if rng.Intn(4) == 0 { // 25% queries, 75% writes
				lo := geom.Point{uint32(rng.Int31n(side - 32)), uint32(rng.Int31n(side - 32))}
				r := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 31, lo[1] + 31}}
				if _, _, err := e.Query(r); err != nil {
					b.Fatal(err)
				}
			} else {
				pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
				if err := e.Put(pt, rng.Uint64()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// benchSyncIngest drives durable (SyncWrites) puts from at least four
// concurrent writers — the workload group commit exists for.
func benchSyncIngest(b *testing.B, noGroup bool) {
	opts := benchOpts()
	opts.SyncWrites = true
	opts.noGroupCommit = noGroup
	e := benchEngine(b, opts)
	side := int32(e.c.Universe().Side())
	if p := (4 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0); p > 1 {
		b.SetParallelism(p)
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
			if err := e.Put(pt, rng.Uint64()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineIngestSyncSolo is the pre-group-commit baseline: every
// durable write pays its own fsync.
func BenchmarkEngineIngestSyncSolo(b *testing.B) { benchSyncIngest(b, true) }

// benchSyncIngestProducers drives exactly b.N durable puts split across
// an explicit number of producer goroutines, each blocking on its own
// write — the closed-loop synchronous baseline the async ingest pipeline
// is gated against at matching producer counts.
func benchSyncIngestProducers(b *testing.B, producers int) {
	opts := benchOpts()
	opts.SyncWrites = true
	e := benchEngine(b, opts)
	side := int32(e.c.Universe().Side())
	base, extra := b.N/producers, b.N%producers
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		n := base
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < n; i++ {
				pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
				if err := e.Put(pt, rng.Uint64()); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkEngineIngestSyncGroup batches concurrent durable writes into
// one flush + fsync per group; the throughput gain over Solo is the
// number of frames a disk barrier amortizes across, growing with the
// producer count.
func BenchmarkEngineIngestSyncGroup(b *testing.B) {
	for _, p := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) { benchSyncIngestProducers(b, p) })
	}
}

// BenchmarkEngineQueryCached measures the steady-state cached read path
// at increasing cache budgets on a compacted 100k-record engine: 64x64
// rectangle queries through the buffer-reusing QueryAppend, reporting
// physical page fetches alongside the logical page reads. With allocs/op
// at 0 the entire per-query cost is compute plus whatever physical I/O
// the budget could not absorb.
func BenchmarkEngineQueryCached(b *testing.B) { benchQueryCached(b, false) }

// BenchmarkEngineQueryCachedNoTelemetry is the identical workload with
// metric recording compiled out (Options.noTelemetry): the delta against
// BenchmarkEngineQueryCached is the true hot-path cost of telemetry,
// which CI gates at 5%. Both variants must stay at 0 allocs/op.
func BenchmarkEngineQueryCachedNoTelemetry(b *testing.B) { benchQueryCached(b, true) }

func benchQueryCached(b *testing.B, noTelemetry bool) {
	for _, budget := range []int64{0, 256 << 10, 8 << 20} {
		b.Run(fmt.Sprintf("cache=%d", budget), func(b *testing.B) {
			e := benchEngine(b, Options{PageBytes: 4096, FlushEntries: -1, CompactFanout: -1,
				CacheBytes: budget, noTelemetry: noTelemetry})
			side := int32(e.c.Universe().Side())
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 100_000; i++ {
				pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
				if err := e.Put(pt, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := e.Compact(); err != nil {
				b.Fatal(err)
			}
			rects := make([]geom.Rect, 64)
			for i := range rects {
				lo := geom.Point{uint32(rng.Int31n(side - 64)), uint32(rng.Int31n(side - 64))}
				rects[i] = geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 63, lo[1] + 63}}
			}
			var dst []Record
			var err error
			for _, r := range rects { // warm the cache and every pool
				if dst, _, err = e.QueryAppend(dst[:0], r); err != nil {
					b.Fatal(err)
				}
			}
			var logical, fetched, hits int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var st Stats
				dst, st, err = e.QueryAppend(dst[:0], rects[i%len(rects)])
				if err != nil {
					b.Fatal(err)
				}
				logical += int64(st.PagesRead)
				fetched += int64(st.IO.PagesFetched)
				hits += int64(st.IO.CacheHits)
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(logical)/float64(b.N), "logicalpages/op")
				b.ReportMetric(float64(fetched)/float64(b.N), "physpages/op")
				b.ReportMetric(float64(hits)/float64(b.N), "cachehits/op")
			}
		})
	}
}

// BenchmarkEngineQueryCompacted measures the steady-state read path: a
// fully compacted engine answering a 64x64 rectangle.
func BenchmarkEngineQueryCompacted(b *testing.B) {
	e := benchEngine(b, Options{PageBytes: 4096, FlushEntries: -1, CompactFanout: -1})
	side := int32(e.c.Universe().Side())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
		if err := e.Put(pt, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		b.Fatal(err)
	}
	var seeks, results int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := geom.Point{uint32(rng.Int31n(side - 64)), uint32(rng.Int31n(side - 64))}
		r := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 63, lo[1] + 63}}
		recs, st, err := e.Query(r)
		if err != nil {
			b.Fatal(err)
		}
		seeks += int64(st.Seeks)
		results += int64(len(recs))
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(seeks)/float64(b.N), "seeks/op")
		b.ReportMetric(float64(results)/float64(b.N), "results/op")
	}
}
