package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
)

// benchOpts: real pages, background flush on, compaction on — the shape a
// serving deployment would run.
func benchOpts() Options {
	return Options{PageBytes: 4096, FlushEntries: 1 << 15, CompactFanout: 4}
}

func benchEngine(b *testing.B, opts Options) *Engine {
	b.Helper()
	o, err := core.NewOnion2D(1 << 9)
	if err != nil {
		b.Fatal(err)
	}
	e, err := Open(b.TempDir(), o, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// BenchmarkEngineIngest measures the acknowledged write path: WAL frame +
// memtable insert (no per-write fsync), including the background flushes
// it triggers.
func BenchmarkEngineIngest(b *testing.B) {
	e := benchEngine(b, benchOpts())
	side := int32(e.c.Universe().Side())
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 4096)
	for i := range pts {
		pts[i] = geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Put(pts[i%len(pts)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngestParallel drives Put from all procs: the WAL append
// serializes on one mutex, the memtable insert lands on per-shard locks.
func BenchmarkEngineIngestParallel(b *testing.B) {
	e := benchEngine(b, benchOpts())
	side := int32(e.c.Universe().Side())
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
			if err := e.Put(pt, rng.Uint64()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineMixedReadWrite interleaves writes with rectangle queries
// (one planner call + merged scan each) on the shared engine — the
// ingest-while-serving workload the engine exists for.
func BenchmarkEngineMixedReadWrite(b *testing.B) {
	e := benchEngine(b, benchOpts())
	side := int32(e.c.Universe().Side())
	// Pre-load so queries have data to find.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50_000; i++ {
		pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
		if err := e.Put(pt, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(100 + seq.Add(1)))
		for pb.Next() {
			if rng.Intn(4) == 0 { // 25% queries, 75% writes
				lo := geom.Point{uint32(rng.Int31n(side - 32)), uint32(rng.Int31n(side - 32))}
				r := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 31, lo[1] + 31}}
				if _, _, err := e.Query(r); err != nil {
					b.Fatal(err)
				}
			} else {
				pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
				if err := e.Put(pt, rng.Uint64()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkEngineQueryCompacted measures the steady-state read path: a
// fully compacted engine answering a 64x64 rectangle.
func BenchmarkEngineQueryCompacted(b *testing.B) {
	e := benchEngine(b, Options{PageBytes: 4096, FlushEntries: -1, CompactFanout: -1})
	side := int32(e.c.Universe().Side())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
		if err := e.Put(pt, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		b.Fatal(err)
	}
	var seeks, results int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := geom.Point{uint32(rng.Int31n(side - 64)), uint32(rng.Int31n(side - 64))}
		r := geom.Rect{Lo: lo, Hi: geom.Point{lo[0] + 63, lo[1] + 63}}
		recs, st, err := e.Query(r)
		if err != nil {
			b.Fatal(err)
		}
		seeks += int64(st.Seeks)
		results += int64(len(recs))
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(seeks)/float64(b.N), "seeks/op")
		b.ReportMetric(float64(results)/float64(b.N), "results/op")
	}
}
