package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/telemetry"
)

// fill puts an n-point diagonal-ish grid so flushes and compactions have
// material to move.
func fillTelemetry(t *testing.T, e *Engine, salt uint32) {
	t.Helper()
	side := uint32(e.c.Universe().Side())
	for x := uint32(0); x < side; x += 2 {
		for y := salt % 2; y < side; y += 2 {
			if err := e.Put(geom.Point{x, (y + salt) % side}, uint64(x)<<8|uint64(y)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEngineMaintenanceEventOrder drives the lifecycle flush -> compact
// -> snapshot and checks the event stream tells the same story in the
// same order, each phase properly bracketed with start before end and a
// clean outcome.
func TestEngineMaintenanceEventOrder(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	e, err := Open(t.TempDir(), o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fillTelemetry(t, e, 0)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	fillTelemetry(t, e, 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(filepath.Join(t.TempDir(), "snap")); err != nil {
		t.Fatal(err)
	}

	evs := e.Events().Recent(nil)
	// first/last Seq per (kind, phase)
	type key struct {
		k telemetry.EventKind
		p telemetry.EventPhase
	}
	first := map[key]uint64{}
	last := map[key]uint64{}
	for _, ev := range evs {
		if ev.Err != "" {
			t.Errorf("event %v/%v carries error %q on a clean run", ev.Kind, ev.Phase, ev.Err)
		}
		k := key{ev.Kind, ev.Phase}
		if _, ok := first[k]; !ok {
			first[k] = ev.Seq
		}
		last[k] = ev.Seq
	}
	fs := key{telemetry.EvFlush, telemetry.PhaseStart}
	fe := key{telemetry.EvFlush, telemetry.PhaseEnd}
	cs := key{telemetry.EvCompaction, telemetry.PhaseStart}
	ce := key{telemetry.EvCompaction, telemetry.PhaseEnd}
	ss := key{telemetry.EvSnapshot, telemetry.PhaseStart}
	se := key{telemetry.EvSnapshot, telemetry.PhaseEnd}
	for _, k := range []key{fs, fe, cs, ce, ss, se} {
		if _, ok := first[k]; !ok {
			t.Fatalf("missing %v/%v event", k.k, k.p)
		}
	}
	if !(first[fs] < first[fe] && first[fe] < first[cs]) {
		t.Errorf("flush (start %d, end %d) not before compaction start %d", first[fs], first[fe], first[cs])
	}
	if !(first[cs] < first[ce] && last[ce] < first[ss]) {
		t.Errorf("compaction (start %d, end %d) not before snapshot start %d", first[cs], last[ce], first[ss])
	}
	if first[ss] >= first[se] {
		t.Errorf("snapshot start %d not before end %d", first[ss], first[se])
	}
	// Dur rides on the end events.
	for _, ev := range evs {
		if ev.Phase == telemetry.PhaseEnd && ev.Dur < 0 {
			t.Errorf("%v end event with negative duration", ev.Kind)
		}
	}
}

// TestEngineTelemetryExport checks the registry's export surface carries
// what the README promises: query metrics with histograms, WAL and cache
// counters, health state, in both exposition formats.
func TestEngineTelemetryExport(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	e, err := Open(t.TempDir(), o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fillTelemetry(t, e, 0)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := e.Query(o.Universe().Rect()); err != nil {
			t.Fatal(err)
		}
	}

	snap := e.TelemetrySnapshot()
	if got := snap.Counter("engine_queries_total"); got != 5 {
		t.Errorf("engine_queries_total = %d, want 5", got)
	}
	if h := snap.Hist("engine_query_latency_us"); h == nil || h.Count != 5 {
		t.Errorf("engine_query_latency_us count = %v, want 5", h)
	}
	if snap.Counter("engine_wal_appends_total") == 0 {
		t.Error("engine_wal_appends_total is 0 after puts")
	}
	// manualOpts gives the engine its own cache, so the cache series
	// belong to this registry.
	if _, ok := snap.Metric("cache_hits_total"); !ok {
		t.Error("owned cache not exported")
	}
	if m, ok := snap.Metric("engine_health_state"); !ok || m.Int != int64(Healthy) {
		t.Errorf("engine_health_state = %+v, want healthy gauge", m)
	}

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE engine_query_latency_us histogram",
		"engine_query_latency_us_bucket",
		"engine_query_latency_us_count 5",
		"engine_queries_total 5",
		"# TYPE engine_wal_group_commit_batch histogram",
		"cache_hits_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"engine_queries_total": 5`, `"engine_query_latency_us": {"count": 5`, `"events": [`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

// TestEngineSeekAmplification pins the seek-amplification gauge: on a
// flushed, compacted single-segment engine a rectangle query pays
// exactly one seek per planned cluster range, so the ratio is 1.
func TestEngineSeekAmplification(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	e, err := Open(t.TempDir(), o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fillTelemetry(t, e, 0)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(o.Universe().Rect()); err != nil {
		t.Fatal(err)
	}
	m, ok := e.TelemetrySnapshot().Metric("engine_query_seek_amplification")
	if !ok {
		t.Fatal("seek amplification gauge missing")
	}
	if m.Float != 1.0 {
		t.Errorf("seek amplification = %v on a compacted engine, want 1.0", m.Float)
	}
}
