//go:build race

package engine

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation allocates on paths that are allocation-free in
// normal builds.
const raceEnabled = true
