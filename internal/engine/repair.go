package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"time"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/telemetry"
)

// RepairReport summarizes one Repair pass over the quarantine.
type RepairReport struct {
	Attempted  int      // quarantined segment files examined
	Repaired   int      // of those, replaced by a fresh clean segment (or retired empty)
	Salvaged   int      // records recovered from CRC-clean pages of condemned files
	Backfilled int      // records restored from the snapshot chain
	Unrepaired []string // base names still quarantined (and why repair could not finish)
	Health     Health   // the engine's health after the pass
}

// Repair salvages the quarantine: for every condemned segment file it
// recovers the records of all CRC-clean pages, back-fills the damaged
// key intervals from the snapshot at snapshotDir (which must predate the
// corruption), writes the union out as a fresh segment installed in the
// condemned segment's place, and deletes the condemned file. Because
// records cluster along the curve, each damaged page is one contiguous
// key interval, so the back-fill reads only the matching slice of the
// snapshot — interval arithmetic, not a rescan.
//
// A segment is repaired only when the snapshot provably holds the
// damaged intervals' content: its segments must tile the condemned
// file's whole generation range, so the newest-wins merge of that slice
// is exactly what the condemned segment stored there — versions are
// neither resurrected nor lost relative to the rest of the live set.
// Files that cannot be fully repaired stay quarantined and are listed in
// the report; an empty snapshotDir limits Repair to pure salvage (only
// files with no damaged intervals can then be repaired).
//
// After the pass Repair re-runs Verify and, when the quarantine is empty
// and the scrub is clean, lowers Degraded back to Healthy.
func (e *Engine) Repair(snapshotDir string) (RepairReport, error) {
	start := time.Now()
	e.emitEvent(telemetry.Event{Kind: telemetry.EvRepair, Phase: telemetry.PhaseStart, Detail: snapshotDir})
	e.flushMu.Lock()
	rep, err := e.repairLocked(snapshotDir)
	e.flushMu.Unlock()
	if tel := e.tel; tel != nil && err == nil {
		tel.repairs.Inc()
		tel.repairUS.Record(uint64(time.Since(start).Microseconds()))
		tel.salvaged.Add(uint64(rep.Salvaged))
		tel.backfilled.Add(uint64(rep.Backfilled))
	}
	if err != nil {
		e.emitEvent(telemetry.Event{Kind: telemetry.EvRepair, Phase: telemetry.PhaseEnd,
			Dur: time.Since(start), Err: errString(err)})
		rep.Health, _ = e.health.get()
		return rep, err
	}
	if h, _ := e.health.get(); h == Degraded {
		// Re-scrub and de-escalate if the quarantine is now empty. A
		// still-Degraded outcome is state, not failure: it rides in
		// rep.Health and rep.Unrepaired, and TryRecover's reason is the
		// engine's standing cause.
		e.TryRecover() //nolint:errcheck
	}
	rep.Health, _ = e.health.get()
	e.emitEvent(telemetry.Event{Kind: telemetry.EvRepair, Phase: telemetry.PhaseEnd,
		Dur: time.Since(start), Records: int64(rep.Salvaged + rep.Backfilled),
		Detail: fmt.Sprintf("%d/%d repaired, %d salvaged, %d backfilled",
			rep.Repaired, rep.Attempted, rep.Salvaged, rep.Backfilled)})
	return rep, err
}

func (e *Engine) repairLocked(snapshotDir string) (RepairReport, error) {
	var rep RepairReport
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return rep, ErrClosed
	}
	qdir := e.quarantinePath()
	ents, err := e.fs.ReadDir(qdir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return rep, nil // nothing quarantined, nothing to do
		}
		return rep, fmt.Errorf("engine: repair: %w", err)
	}
	var qids []segID
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		var id segID
		name := ent.Name()
		if n, _ := fmt.Sscanf(name, "seg-%d-%d-%d.pst", &id.lo, &id.hi, &id.epoch); n == 3 &&
			name == filepath.Base(segPath(qdir, id.lo, id.hi, id.epoch)) {
			qids = append(qids, id)
		}
	}
	if len(qids) == 0 {
		return rep, nil
	}
	sort.Slice(qids, func(a, b int) bool { return qids[a].lo < qids[b].lo })

	var man *snapManifest
	var snapIDs []segID
	if snapshotDir != "" {
		var err error
		man, err = readSnapshotManifest(e.fs, snapshotDir)
		if err != nil {
			return rep, err
		}
		u := e.c.Universe()
		if man.curveName != e.c.Name() || man.dims != u.Dims() || man.side != int(u.Side()) {
			return rep, fmt.Errorf("%w: snapshot %s is of a different store", ErrSnapshot, snapshotDir)
		}
		for _, s := range man.segs {
			var id segID
			fmt.Sscanf(s.name, "seg-%d-%d-%d.pst", &id.lo, &id.hi, &id.epoch) //nolint:errcheck // validated at parse
			snapIDs = append(snapIDs, id)
		}
	}

	var firstErr error
	for _, qid := range qids {
		rep.Attempted++
		name := filepath.Base(segPath(qdir, qid.lo, qid.hi, qid.epoch))
		salv, backf, err := e.repairOne(qdir, qid, snapshotDir, man, snapIDs)
		if err != nil {
			rep.Unrepaired = append(rep.Unrepaired, fmt.Sprintf("%s: %v", name, err))
			if firstErr == nil && !errors.Is(err, errIrreparable) {
				firstErr = err
			}
			continue
		}
		rep.Repaired++
		rep.Salvaged += salv
		rep.Backfilled += backf
	}
	return rep, firstErr
}

// errIrreparable tags a repair skip that is a property of the inputs (no
// snapshot coverage), not an I/O failure: the file stays quarantined and
// the pass continues without surfacing an error.
var errIrreparable = errors.New("engine: not repairable from this snapshot")

// repairOne salvages and replaces a single quarantined segment,
// returning how many records were salvaged from clean pages and how many
// back-filled from the snapshot.
func (e *Engine) repairOne(qdir string, qid segID, snapshotDir string, man *snapManifest, snapIDs []segID) (salvaged, backfilled int, err error) {
	qpath := segPath(qdir, qid.lo, qid.hi, qid.epoch)

	// A crash of an earlier repair may have installed the replacement but
	// not deleted the condemned file: if the live set already covers this
	// generation range, just retire the leftover.
	e.mu.RLock()
	replaced := false
	for _, s := range e.segs {
		if s.lo == qid.lo && s.hi == qid.hi {
			replaced = true
			break
		}
	}
	e.mu.RUnlock()
	if replaced {
		return 0, 0, e.retireQuarantined(qdir, qpath)
	}

	sv, err := pagedstore.SalvageFS(e.fs, qpath, e.c)
	if err != nil {
		return 0, 0, err
	}
	entries := make([]memEntry, 0, len(sv.Records))
	for i, r := range sv.Records {
		entries = append(entries, memEntry{key: sv.Keys[i], pt: r.Point, payload: r.Payload, del: sv.Marked[i]})
	}

	if len(sv.Damaged) > 0 {
		if snapshotDir == "" {
			return 0, 0, fmt.Errorf("%w: %d damaged intervals and no snapshot", errIrreparable, len(sv.Damaged))
		}
		// The snapshot must tile the condemned segment's generation range:
		// only then is the newest-wins merge of its covering segments,
		// restricted to the damaged intervals, exactly the lost content.
		covering := coveringSegs(snapIDs, qid)
		if covering == nil {
			return 0, 0, fmt.Errorf("%w: snapshot does not cover generations [%d,%d]", errIrreparable, qid.lo, qid.hi)
		}
		fill, err := e.backfill(snapshotDir, man, covering, sv.Damaged)
		if err != nil {
			return 0, 0, err
		}
		backfilled = len(fill)
		entries = append(entries, fill...)
		sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
	}
	salvaged = len(entries) - backfilled

	if len(entries) > 0 {
		seg, err := writeSegment(e.fs, e.dir, e.c, segID{lo: qid.lo, hi: qid.hi, epoch: qid.epoch + 1}, entries, e.opts.PageBytes, e.cache)
		if err != nil {
			return 0, 0, err
		}
		// Install at the segment's age position: list order is merge
		// priority, and generation ranges are disjoint, so sorting by lo
		// is sorting by age.
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			seg.st.Close()
			return 0, 0, ErrClosed
		}
		at := sort.Search(len(e.segs), func(i int) bool { return e.segs[i].lo > seg.lo })
		e.segs = append(e.segs, nil)
		copy(e.segs[at+1:], e.segs[at:])
		e.segs[at] = seg
		e.mu.Unlock()
	}
	return salvaged, backfilled, e.retireQuarantined(qdir, qpath)
}

// retireQuarantined deletes a condemned file whose replacement (if any)
// is durably installed, and makes the removal durable.
func (e *Engine) retireQuarantined(qdir, qpath string) error {
	if err := e.fs.Remove(qpath); err != nil {
		return fmt.Errorf("engine: repair: %w", err)
	}
	return syncDir(e.fs, qdir)
}

// coveringSegs returns the snapshot segments whose generation ranges
// tile qid's range exactly, oldest first — or nil if the snapshot does
// not cover every generation.
func coveringSegs(snapIDs []segID, qid segID) []segID {
	var in []segID
	for _, id := range snapIDs {
		if id.lo >= qid.lo && id.hi <= qid.hi {
			in = append(in, id)
		}
	}
	sort.Slice(in, func(a, b int) bool { return in[a].lo < in[b].lo })
	next := qid.lo
	for _, id := range in {
		if id.lo > next {
			return nil
		}
		if id.hi >= qid.hi {
			return in
		}
		next = id.hi + 1
	}
	return nil
}

// backfill merges the covering snapshot segments (newest wins, tombstones
// kept — the repaired range may shadow older live segments) and keeps
// only the records inside the damaged intervals.
func (e *Engine) backfill(snapshotDir string, man *snapManifest, covering []segID, damaged []curve.KeyRange) ([]memEntry, error) {
	segs := make([]*segment, 0, len(covering))
	defer func() {
		for _, s := range segs {
			s.st.Close()
		}
	}()
	for _, id := range covering {
		name := filepath.Base(segPath(snapshotDir, id.lo, id.hi, id.epoch))
		var want snapSeg
		for _, s := range man.segs {
			if s.name == name {
				want = s
				break
			}
		}
		src, err := resolveSnapshotSegment(e.fs, snapshotDir, man, want)
		if err != nil {
			return nil, err
		}
		st, err := pagedstore.OpenCachedFS(e.fs, src, e.c, nil)
		if err != nil {
			return nil, fmt.Errorf("engine: repair: snapshot segment %s: %w", name, err)
		}
		segs = append(segs, &segment{st: st, path: src, lo: id.lo, hi: id.hi, epoch: id.epoch, recs: st.Len()})
	}
	merged, _, err := mergeSegments(e.c, segs, false)
	if err != nil {
		return nil, err
	}
	fill := merged[:0]
	di := 0
	for _, ent := range merged {
		for di < len(damaged) && damaged[di].Hi < ent.key {
			di++
		}
		if di < len(damaged) && damaged[di].Lo <= ent.key {
			fill = append(fill, ent)
		}
	}
	return fill, nil
}
