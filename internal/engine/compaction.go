package engine

import (
	"fmt"
	"time"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/telemetry"
)

// pickCompaction applies the size-tiered policy to the segment record
// counts (oldest first): it returns the first (oldest) window of fanout
// age-adjacent segments whose sizes are within sizeRatio of the window's
// smallest, or (0, 0) when no window qualifies. Merging only age-adjacent
// runs keeps recency resolvable from file generations alone.
func pickCompaction(recs []int, fanout, sizeRatio int) (lo, hi int) {
	if fanout < 2 || len(recs) < fanout {
		return 0, 0
	}
	for start := 0; start+fanout <= len(recs); start++ {
		min := recs[start]
		max := recs[start]
		ok := true
		for i := start + 1; i < start+fanout; i++ {
			if recs[i] < min {
				min = recs[i]
			}
			if recs[i] > max {
				max = recs[i]
			}
		}
		if min*sizeRatio < max {
			ok = false
		}
		if ok {
			// Extend the window greedily while the ratio holds.
			end := start + fanout
			for end < len(recs) {
				nmin, nmax := min, max
				if recs[end] < nmin {
					nmin = recs[end]
				}
				if recs[end] > nmax {
					nmax = recs[end]
				}
				if nmin*sizeRatio < nmax {
					break
				}
				min, max = nmin, nmax
				end++
			}
			return start, end
		}
	}
	return 0, 0
}

// compactSink collects the merged stream of a compaction. The winning
// source's point is transient (the cursor reuses its decode buffer), so
// every retained entry clones it.
type compactSink struct {
	out            []memEntry
	dropTombstones bool
	dropped        int // tombstones garbage-collected (dropTombstones only)
}

func (cs *compactSink) emit(win *mergeSource) {
	if win.del && cs.dropTombstones {
		cs.dropped++
		return
	}
	cs.out = append(cs.out, memEntry{key: win.key, pt: win.pt.Clone(), payload: win.pay, del: win.del})
}

// mergeSegments k-way merges an age-adjacent run of segments (oldest
// first) into its newest-wins, key-ordered union, through the same
// mergeSources routine the query path uses. Tombstones are dropped when
// dropTombstones is set (legal only when the run includes the engine's
// oldest segment, so nothing older could be shadowed); otherwise they are
// carried into the output.
func mergeSegments(c curve.Curve, segs []*segment, dropTombstones bool) ([]memEntry, int, error) {
	full := curve.KeyRange{Lo: 0, Hi: c.Universe().Size() - 1}
	srcs := make([]*mergeSource, len(segs))
	for i, s := range segs {
		cur := s.st.NewCursor()
		cur.SeekRange(full)
		srcs[i] = &mergeSource{cur: cur, prio: i}
	}
	sink := &compactSink{dropTombstones: dropTombstones}
	var scratch []*mergeSource
	if err := mergeSources(srcs, &scratch, sink, nil); err != nil {
		return nil, 0, err
	}
	return sink.out, sink.dropped, nil
}

// maybeCompact applies the size-tiered policy once and merges the chosen
// run, if any. It is called from the background worker after flushes.
func (e *Engine) maybeCompact() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	recs := make([]int, len(e.segs))
	for i, s := range e.segs {
		recs[i] = s.recs
	}
	e.mu.RUnlock()
	lo, hi := pickCompaction(recs, e.opts.CompactFanout, 4)
	if hi == 0 {
		return nil
	}
	return e.compactRun(lo, hi)
}

// Compact merges every live segment into a single one, garbage-collecting
// all tombstones — a full major compaction. After Compact (and a Flush
// beforehand, if the memtable holds data) the engine's disk state is a
// single curve-ordered segment containing exactly the live records, laid
// out page-for-page as a freshly bulk-loaded pagedstore of those records
// would be.
func (e *Engine) Compact() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.mu.RLock()
	n := len(e.segs)
	closed := e.closed
	hasTombs := false
	for _, s := range e.segs {
		if s.st.Marked() {
			hasTombs = true
		}
	}
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if n == 0 || (n == 1 && !hasTombs) {
		return nil // already fully compacted
	}
	return e.compactRun(0, n)
}

// compactRun merges segments [lo, hi) of the current list into one. The
// caller holds flushMu, which is what freezes the segment list's identity
// in [lo, hi): only flushes append (beyond hi) and only compactions
// remove, and both hold flushMu.
func (e *Engine) compactRun(lo, hi int) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	run := append([]*segment{}, e.segs[lo:hi]...)
	e.mu.RUnlock()
	recsIn := 0
	for _, s := range run {
		recsIn += s.recs
	}
	start := time.Now()
	e.emitEvent(telemetry.Event{Kind: telemetry.EvCompaction, Phase: telemetry.PhaseStart,
		Records: int64(recsIn), Detail: fmt.Sprintf("%d segments", len(run))})
	outRecs, err := e.compactMerge(lo, hi, run, recsIn)
	dur := time.Since(start)
	if tel := e.tel; tel != nil && err == nil {
		tel.compactUS.Record(uint64(dur.Microseconds()))
	}
	e.emitEvent(telemetry.Event{Kind: telemetry.EvCompaction, Phase: telemetry.PhaseEnd,
		Dur: dur, Records: int64(outRecs), Err: errString(err)})
	return err
}

// compactMerge is compactRun's body: merge the run, install the output,
// retire the inputs. It returns the number of records in the merged
// output.
func (e *Engine) compactMerge(lo, hi int, run []*segment, recsIn int) (int, error) {
	dropTombstones := lo == 0
	merged, dropped, err := mergeSegments(e.c, run, dropTombstones)
	if err != nil {
		return 0, err
	}
	id := segID{lo: run[0].lo, hi: run[len(run)-1].hi}
	if len(run) == 1 {
		// In-place rewrite (tombstone GC of a lone segment): same data
		// age, next epoch, so the new file never collides with the old
		// and a crash between rename and delete is repaired by scanDir.
		id.epoch = run[0].epoch + 1
	}
	var out *segment
	if len(merged) > 0 {
		out, err = writeSegment(e.fs, e.dir, e.c, id, merged, e.opts.PageBytes, e.cache)
		if err != nil {
			return 0, err
		}
	}
	// Install: replace the run with the merged segment.
	e.mu.Lock()
	tail := append([]*segment{}, e.segs[hi:]...)
	e.segs = append(e.segs[:lo:lo], append(segList(out), tail...)...)
	e.mu.Unlock()
	// Retire inputs only after the output is installed; a crash in
	// between leaves both, and scanDir removes the contained inputs.
	var firstErr error
	for _, s := range run {
		if err := s.st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := e.fs.Remove(s.path); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: %w", err)
		}
	}
	e.compactions.Add(1)
	if tel := e.tel; tel != nil {
		tel.compactSegsIn.Add(uint64(len(run)))
		tel.compactRecordsIn.Add(uint64(recsIn))
		tel.compactRecordsOut.Add(uint64(len(merged)))
		tel.compactTombsGC.Add(uint64(dropped))
	}
	return len(merged), firstErr
}

func segList(s *segment) []*segment {
	if s == nil {
		return nil
	}
	return []*segment{s}
}
