package engine

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

// walOpsEqual compares two op slices structurally.
func walOpsEqual(a, b []walOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].del != b[i].del || a[i].payload != b[i].payload || !a[i].pt.Equal(b[i].pt) {
			return false
		}
	}
	return true
}

func sampleOps(dims, n int) []walOp {
	ops := make([]walOp, n)
	for i := range ops {
		pt := make(geom.Point, dims)
		for d := range pt {
			pt[d] = uint32(i*7+d) % 16
		}
		if i%3 == 2 {
			ops[i] = walOp{pt: pt, del: true}
		} else {
			ops[i] = walOp{pt: pt, payload: uint64(i) * 1000003}
		}
	}
	return ops
}

func writeOps(t *testing.T, path string, dims int, ops []walOp) {
	t.Helper()
	w, err := createWAL(vfs.OS{}, path, dims)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALRoundTrip replays a cleanly closed log.
func TestWALRoundTrip(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 5} {
		path := filepath.Join(t.TempDir(), "wal.log")
		ops := sampleOps(dims, 50)
		writeOps(t, path, dims, ops)
		got, err := replayWAL(vfs.OS{}, path, dims)
		if err != nil {
			t.Fatal(err)
		}
		if !walOpsEqual(got, ops) {
			t.Fatalf("dims %d: replay mismatch: %d ops vs %d", dims, len(got), len(ops))
		}
	}
}

// TestWALTornTail truncates the log at every byte boundary and asserts
// recovery keeps exactly the complete frames before the cut: acknowledged
// (synced) writes survive, the torn tail is dropped, nothing else.
func TestWALTornTail(t *testing.T) {
	dims := 2
	dir := t.TempDir()
	full := filepath.Join(dir, "wal.log")
	ops := sampleOps(dims, 9)
	writeOps(t, full, dims, ops)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, for computing how many complete frames a cut keeps.
	bounds := []int{0}
	for _, op := range ops {
		bounds = append(bounds, bounds[len(bounds)-1]+8+walPayloadSize(dims, op.del))
	}
	if bounds[len(bounds)-1] != len(data) {
		t.Fatalf("frame accounting: %d vs file %d", bounds[len(bounds)-1], len(data))
	}
	torn := filepath.Join(dir, "torn.log")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := replayWAL(vfs.OS{}, torn, dims)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		complete := 0
		for complete < len(ops) && bounds[complete+1] <= cut {
			complete++
		}
		if !walOpsEqual(got, ops[:complete]) {
			t.Fatalf("cut %d: recovered %d ops, want the %d complete frames", cut, len(got), complete)
		}
	}
}

// TestWALCorruptTail flips a payload byte of the final frame: the CRC must
// reject it and recovery must stop at the preceding frame.
func TestWALCorruptTail(t *testing.T) {
	dims := 3
	path := filepath.Join(t.TempDir(), "wal.log")
	ops := sampleOps(dims, 5)
	writeOps(t, path, dims, ops)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	last := len(data) - walPayloadSize(dims, ops[4].del)
	data[last] ^= 0x40 // corrupt inside the final payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayWAL(vfs.OS{}, path, dims)
	if err != nil {
		t.Fatal(err)
	}
	if !walOpsEqual(got, ops[:4]) {
		t.Fatalf("recovered %d ops after CRC damage, want 4", len(got))
	}
}

// TestWALGarbageLength rejects a frame announcing a nonsense length
// without reading past it.
func TestWALGarbageLength(t *testing.T) {
	dims := 2
	path := filepath.Join(t.TempDir(), "wal.log")
	ops := sampleOps(dims, 3)
	writeOps(t, path, dims, ops)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bogus := make([]byte, 8)
	binary.LittleEndian.PutUint32(bogus, 1<<30)
	data = append(data, bogus...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayWAL(vfs.OS{}, path, dims)
	if err != nil {
		t.Fatal(err)
	}
	if !walOpsEqual(got, ops) {
		t.Fatalf("recovered %d ops, want %d", len(got), len(ops))
	}
}
