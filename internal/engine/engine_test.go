package engine

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
	"github.com/onioncurve/onion/internal/pagedstore"
)

// manualOpts disables all background behavior so tests control the
// lifecycle explicitly. The deliberately tiny page cache (16 pages) runs
// the whole suite under eviction pressure: the logical stat contracts
// must hold bit-identically with caching and footer pruning active.
func manualOpts() Options {
	return Options{PageBytes: 512, FlushEntries: -1, CompactFanout: -1, Shards: 4, CacheBytes: 16 * 512}
}

func randomRect(rng *rand.Rand, u geom.Universe) geom.Rect {
	d := u.Dims()
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		a := uint32(rng.Int31n(int32(u.Side())))
		b := uint32(rng.Int31n(int32(u.Side())))
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func TestEngineBasic(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	e, err := Open(t.TempDir(), o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Put(geom.Point{3, 4}, 42); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(geom.Point{3, 4}, 43); err != nil { // overwrite
		t.Fatal(err)
	}
	if err := e.Put(geom.Point{5, 5}, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(geom.Point{5, 5}); err != nil {
		t.Fatal(err)
	}
	got, st, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload != 43 || !got[0].Point.Equal(geom.Point{3, 4}) {
		t.Fatalf("got %v", got)
	}
	if st.MemEntries == 0 || st.Segments != 0 || st.Seeks != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Flush moves it to a segment; query result is unchanged.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	got2, st2, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0].Payload != 43 {
		t.Fatalf("after flush: %v", got2)
	}
	if st2.Segments != 1 || st2.Seeks == 0 {
		t.Fatalf("after flush stats %+v", st2)
	}
	// The tombstone still exists (not compacted); Compact drops it.
	es := e.Stats()
	if es.SegmentRecords != 2 {
		t.Fatalf("segment records = %d, want 2 (incl. tombstone)", es.SegmentRecords)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if es := e.Stats(); es.SegmentRecords != 1 || es.Segments != 1 {
		t.Fatalf("after compact %+v", es)
	}
	if err := e.Put(geom.Point{0, 0}, 9); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(geom.Point{1, 1}, 1); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
	if err := e.Close(); err != ErrClosed {
		t.Fatalf("second close: %v", err)
	}
}

func TestEngineReopen(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	dir := t.TempDir()
	e, err := Open(dir, o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.Put(geom.Point{uint32(i) % 16, uint32(i) / 16}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, _, err := e2.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("reopened engine has %d records, want 100", len(got))
	}
}

// ownerPrograms runs nWriters concurrent goroutines, each owning a
// disjoint subset of the universe's cells and applying a random put/delete
// program to its own cells — so the final state per cell is deterministic
// regardless of scheduling. It returns each touched key's final op: a
// record for a put, nil for a delete.
func ownerPrograms(t *testing.T, e *Engine, c curve.Curve, seed int64, nWriters, steps int) map[uint64]*pagedstore.Record {
	t.Helper()
	u := c.Universe()
	d := u.Dims()
	var wg sync.WaitGroup
	results := make([]map[uint64]*pagedstore.Record, nWriters)
	errs := make([]error, nWriters)
	for g := 0; g < nWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			final := make(map[uint64]*pagedstore.Record)
			for s := 0; s < steps; s++ {
				// Pick one of this writer's own cells: cells whose curve
				// key is congruent to g mod nWriters.
				key := uint64(rng.Int63n(int64(u.Size())))
				key -= key % uint64(nWriters)
				key += uint64(g)
				if key >= u.Size() {
					continue
				}
				pt := c.Coords(key, make(geom.Point, d))
				if rng.Intn(4) == 0 {
					if err := e.Delete(pt); err != nil {
						errs[g] = err
						return
					}
					final[key] = nil
				} else {
					payload := rng.Uint64()
					if err := e.Put(pt, payload); err != nil {
						errs[g] = err
						return
					}
					final[key] = &pagedstore.Record{Point: pt.Clone(), Payload: payload}
				}
			}
			results[g] = final
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	finals := make(map[uint64]*pagedstore.Record)
	for _, m := range results {
		for k, r := range m {
			finals[k] = r
		}
	}
	return finals
}

// mergeFinals folds one program round's final ops into the survivor set.
func mergeFinals(survivors map[uint64]pagedstore.Record, finals map[uint64]*pagedstore.Record) {
	for k, r := range finals {
		if r != nil {
			survivors[k] = *r
		} else {
			delete(survivors, k)
		}
	}
}

// TestEngineCrossCheck is the acceptance criterion: an engine filled by
// concurrent Put/Delete, then flushed and fully compacted, must answer
// every rectangle with bit-identical records AND physical stats (seeks,
// pages, records scanned) to a fresh pagedstore bulk-loaded with the same
// surviving records, across curve families.
func TestEngineCrossCheck(t *testing.T) {
	curves := []struct {
		name string
		mk   func() (curve.Curve, error)
	}{
		{"onion2d", func() (curve.Curve, error) { return core.NewOnion2D(32) }},
		{"onion3d", func() (curve.Curve, error) { return core.NewOnion3D(16) }},
		{"hilbert", func() (curve.Curve, error) { return baseline.NewHilbert(2, 32) }},
	}
	for ci, tc := range curves {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			e, err := Open(dir, c, manualOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			survivors := make(map[uint64]pagedstore.Record)
			mergeFinals(survivors, ownerPrograms(t, e, c, int64(1000+ci), 4, 600))
			// Interleave a flush with more concurrent traffic so the
			// engine state spans memtable + several segments.
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			mergeFinals(survivors, ownerPrograms(t, e, c, int64(2000+ci), 4, 300))
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := e.Compact(); err != nil {
				t.Fatal(err)
			}
			recs := make([]pagedstore.Record, 0, len(survivors))
			for _, r := range survivors {
				recs = append(recs, r)
			}
			refPath := filepath.Join(t.TempDir(), "ref.pst")
			if err := pagedstore.Write(refPath, c, recs, 512); err != nil {
				t.Fatal(err)
			}
			ref, err := pagedstore.Open(refPath, c)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			rng := rand.New(rand.NewSource(int64(77 + ci)))
			for trial := 0; trial < 40; trial++ {
				r := randomRect(rng, c.Universe())
				got, gst, err := e.Query(r)
				if err != nil {
					t.Fatal(err)
				}
				want, wst, err := ref.Query(r)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: %d results vs %d", r, len(got), len(want))
				}
				for i := range want {
					if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
						t.Fatalf("%v: record %d: %v/%d vs %v/%d",
							r, i, got[i].Point, got[i].Payload, want[i].Point, want[i].Payload)
					}
				}
				if gst.Stats != wst {
					t.Fatalf("%v: engine stats %+v != pagedstore stats %+v", r, gst.Stats, wst)
				}
			}
		})
	}
}

// TestEngineQueryWhileMixed cross-checks results (not physical stats)
// while the engine still holds a mix of memtable, frozen and segment
// data — before any compaction.
func TestEngineQueryWhileMixed(t *testing.T) {
	c, _ := core.NewOnion2D(32)
	e, err := Open(t.TempDir(), c, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	survivors := make(map[uint64]pagedstore.Record)
	mergeFinals(survivors, ownerPrograms(t, e, c, 31, 4, 400))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mergeFinals(survivors, ownerPrograms(t, e, c, 32, 4, 400)) // second layer, unflushed
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		r := randomRect(rng, c.Universe())
		got, _, err := e.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]uint64)
		for k, rec := range survivors {
			if r.Contains(rec.Point) {
				want[k] = rec.Payload
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, want %d", r, len(got), len(want))
		}
		for _, rec := range got {
			k := c.Index(rec.Point)
			if p, ok := want[k]; !ok || p != rec.Payload {
				t.Fatalf("%v: unexpected record %v/%d", r, rec.Point, rec.Payload)
			}
		}
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineCrashRecovery simulates a crash by snapshotting the engine
// directory while the engine is live (WAL not cleanly closed), tearing
// the WAL tail, and reopening: every acknowledged (synced) write must
// survive; the torn trailing garbage must not.
func TestEngineCrashRecovery(t *testing.T) {
	c, _ := core.NewOnion2D(32)
	dir := t.TempDir()
	opts := manualOpts()
	opts.SyncWrites = true
	e, err := Open(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]uint64)
	for i := 0; i < 150; i++ {
		pt := geom.Point{uint32(i) % 32, (uint32(i) * 7) % 32}
		if err := e.Put(pt, uint64(i)); err != nil {
			t.Fatal(err)
		}
		want[c.Index(pt)] = uint64(i)
	}
	// A couple of acknowledged deletes too.
	for i := 0; i < 10; i++ {
		pt := geom.Point{uint32(i) % 32, (uint32(i) * 7) % 32}
		if err := e.Delete(pt); err != nil {
			t.Fatal(err)
		}
		delete(want, c.Index(pt))
	}
	// Crash snapshot: copy the directory while the engine is running.
	crash := t.TempDir()
	copyDir(t, dir, crash)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the WAL in the snapshot: chop half of the final frame and
	// append garbage, as an in-flight unacknowledged write would leave.
	wals, err := filepath.Glob(filepath.Join(crash, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wals %v err %v", wals, err)
	}
	data, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	frame := 8 + walPayloadSize(2, true)
	torn := append(append([]byte{}, data...), data[:frame/2]...)
	torn = append(torn, 0xde, 0xad)
	if err := os.WriteFile(wals[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(crash, c, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, _, err := re.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for _, rec := range got {
		if want[c.Index(rec.Point)] != rec.Payload {
			t.Fatalf("recovered %v/%d diverges", rec.Point, rec.Payload)
		}
	}
}

// TestEngineIngestWhileQuerying hammers the engine with concurrent
// writers, readers, flushes and background compaction; correctness of the
// final state is checked against the deterministic ownership model. Run
// under -race this is the engine's concurrency test.
func TestEngineIngestWhileQuerying(t *testing.T) {
	c, _ := core.NewOnion2D(32)
	opts := Options{PageBytes: 512, FlushEntries: 500, CompactFanout: 2, Shards: 4}
	e, err := Open(t.TempDir(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(900 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rect := randomRect(rng, c.Universe())
				if _, _, err := e.Query(rect); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	survivors := make(map[uint64]pagedstore.Record)
	mergeFinals(survivors, ownerPrograms(t, e, c, 71, 4, 1500))
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(survivors) {
		t.Fatalf("%d records after churn, want %d", len(got), len(survivors))
	}
	for _, rec := range got {
		if survivors[c.Index(rec.Point)].Payload != rec.Payload {
			t.Fatalf("record %v/%d diverges", rec.Point, rec.Payload)
		}
	}
	if es := e.Stats(); es.Flushes == 0 {
		t.Error("automatic flush never ran")
	}
}

// TestQueryRanges: the exported per-range hook must reproduce Query
// bit for bit (records and physical stats) when handed the same plan,
// and reject malformed plans.
func TestQueryRanges(t *testing.T) {
	c, _ := core.NewOnion2D(32)
	e, err := Open(t.TempDir(), c, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	survivors := make(map[uint64]pagedstore.Record)
	mergeFinals(survivors, ownerPrograms(t, e, c, 55, 4, 500))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mergeFinals(survivors, ownerPrograms(t, e, c, 56, 4, 200)) // memtable layer too
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		r := randomRect(rng, c.Universe())
		plan := c.DecomposeRect(r)
		want, wst, err := e.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		got, gst, err := e.QueryRanges(plan)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d records via ranges, %d via rect", r, len(got), len(want))
		}
		for i := range want {
			if !got[i].Point.Equal(want[i].Point) || got[i].Payload != want[i].Payload {
				t.Fatalf("%v: record %d diverges", r, i)
			}
		}
		gst.Planned = wst.Planned // QueryRanges documents Planned = 0
		// The physical IO counters are cache-state dependent (the first
		// query warmed the cache for the second), so they are outside the
		// bit-identical contract.
		gst.IO, wst.IO = pagedstore.IOStats{}, pagedstore.IOStats{}
		if gst != wst {
			t.Fatalf("%v: stats %+v vs %+v", r, gst, wst)
		}
	}
	n := c.Universe().Size()
	for _, bad := range [][]curve.KeyRange{
		{{Lo: 5, Hi: 4}},                   // inverted
		{{Lo: 0, Hi: n}},                   // beyond key space
		{{Lo: 0, Hi: 9}, {Lo: 9, Hi: 12}},  // overlapping
		{{Lo: 10, Hi: 12}, {Lo: 0, Hi: 5}}, // unsorted
	} {
		if _, _, err := e.QueryRanges(bad); err == nil {
			t.Errorf("plan %v accepted", bad)
		}
	}
}

// TestCommitterWatermark: a write becomes visible only after all earlier
// sequence numbers landed, so a query snapshot is always a prefix of
// history — verified here through the committer unit.
func TestCommitterWatermark(t *testing.T) {
	var com committer
	com.done = make(map[uint64]struct{})
	com.commit(2)
	if v := com.visible.Load(); v != 0 {
		t.Fatalf("visible %d before seq 1 lands", v)
	}
	com.commit(3)
	com.commit(1)
	if v := com.visible.Load(); v != 3 {
		t.Fatalf("visible %d, want 3", v)
	}
	com.commit(4)
	if v := com.visible.Load(); v != 4 {
		t.Fatalf("visible %d, want 4", v)
	}
}

func TestPickCompaction(t *testing.T) {
	cases := []struct {
		recs   []int
		fanout int
		lo, hi int
	}{
		{nil, 4, 0, 0},
		{[]int{100, 100, 100}, 4, 0, 0},              // not enough segments
		{[]int{100, 100, 100, 100}, 4, 0, 4},         // perfect tier
		{[]int{1000, 10, 10, 10, 10}, 4, 1, 5},       // old big segment left alone
		{[]int{1000, 10, 10, 10, 10, 9000}, 4, 1, 5}, // new big flush excluded
		{[]int{8, 10, 10, 10, 12, 11}, 4, 0, 6},      // greedy extension
		{[]int{1000, 10, 400, 10, 10}, 4, 0, 0},      // no similar adjacent run
	}
	for i, tc := range cases {
		lo, hi := pickCompaction(tc.recs, tc.fanout, 4)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("case %d %v: got [%d,%d), want [%d,%d)", i, tc.recs, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestScanDirCrashArtifacts(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte{1}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A compaction of generations 3..5 crashed after renaming its output
	// but before deleting its inputs; a lone-segment rewrite of 7..7
	// crashed the same way, leaving two epochs of the same range.
	touch("seg-000000000003-000000000005-000.pst")
	touch("seg-000000000003-000000000003-000.pst")
	touch("seg-000000000005-000000000005-000.pst")
	touch("seg-000000000007-000000000007-000.pst")
	touch("seg-000000000007-000000000007-001.pst")
	touch("wal-000000000008.log")
	touch("unrelated.txt")
	segs, wals, err := scanDir(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []segID{{lo: 3, hi: 5}, {lo: 7, hi: 7, epoch: 1}}
	if len(segs) != 2 || segs[0] != want[0] || segs[1] != want[1] {
		t.Fatalf("segs %v", segs)
	}
	if len(wals) != 1 || wals[0] != 8 {
		t.Fatalf("wals %v", wals)
	}
	// The stale inputs are gone from disk.
	for _, stale := range []string{
		"seg-000000000003-000000000003-000.pst",
		"seg-000000000007-000000000007-000.pst",
	} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Errorf("stale %s survived", stale)
		}
	}
	// Partial overlap is unrecoverable.
	touch("seg-000000000004-000000000009-000.pst")
	if _, _, err := scanDir(vfs.OS{}, dir); err == nil {
		t.Error("overlap accepted")
	}
}

func TestMemtableSnapshotFilter(t *testing.T) {
	c, _ := core.NewOnion2D(16)
	m, err := newMemtable(c, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pt := geom.Point{3, 3}
	key := c.Index(pt)
	m.put(key, pt, 10, 1, false)
	m.put(key, pt, 20, 3, false)
	m.put(key, pt, 0, 5, true)
	full := curve.KeyRange{Lo: 0, Hi: c.Universe().Size() - 1}
	for _, tc := range []struct {
		snap uint64
		want int64 // -1 = invisible, -2 = tombstone
	}{{0, -1}, {1, 10}, {2, 10}, {3, 20}, {4, 20}, {5, -2}, {99, -2}} {
		it := m.seek(full, tc.snap)
		ent, ok := it.peek()
		switch tc.want {
		case -1:
			if ok {
				t.Fatalf("snap %d: entry visible", tc.snap)
			}
		case -2:
			if !ok || !ent.del {
				t.Fatalf("snap %d: want tombstone, got %+v ok=%v", tc.snap, ent, ok)
			}
		default:
			if !ok || ent.del || ent.payload != uint64(tc.want) {
				t.Fatalf("snap %d: got %+v ok=%v, want payload %d", tc.snap, ent, ok, tc.want)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	e, err := Open(t.TempDir(), o, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Put(geom.Point{99, 0}, 1); err == nil {
		t.Error("point outside universe accepted")
	}
	if err := e.Delete(geom.Point{0}); err == nil {
		t.Error("wrong dims accepted")
	}
	// Query rectangle outside the universe.
	if _, _, err := e.Query(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{99, 99}}); err == nil {
		t.Error("oversized rect accepted")
	}
}

// TestCompactLoneSegmentSurvivesReopen is the regression test for the
// in-place rewrite: a full compaction of a single tombstoned segment must
// produce a file that survives reopening (the output must never share the
// input's name, or retiring the input deletes the output).
func TestCompactLoneSegmentSurvivesReopen(t *testing.T) {
	c, _ := core.NewOnion2D(16)
	dir := t.TempDir()
	e, err := Open(dir, c, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := e.Put(geom.Point{uint32(i) % 16, uint32(i) / 16}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Delete(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// One segment containing 50 records + 1 tombstone; compact it alone.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if es := e.Stats(); es.Segments != 1 || es.SegmentRecords != 49 {
		t.Fatalf("after lone compact: %+v", es)
	}
	// Compacting again is a no-op (no tombstones left).
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, c, manualOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, _, err := e2.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 49 {
		t.Fatalf("reopen after lone-segment compact: %d records, want 49", len(got))
	}
}

// TestMemtableOutOfOrderSeqs: sequence numbers are assigned before the
// shard lock is taken, so versions of one key can arrive out of order;
// the newest (highest-seq) write must still win reads and flushes.
func TestMemtableOutOfOrderSeqs(t *testing.T) {
	c, _ := core.NewOnion2D(16)
	m, err := newMemtable(c, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pt := geom.Point{4, 4}
	key := c.Index(pt)
	m.put(key, pt, 600, 6, false) // seq 6 lands first
	m.put(key, pt, 500, 5, false) // seq 5 arrives late
	full := curve.KeyRange{Lo: 0, Hi: c.Universe().Size() - 1}
	ent, ok := m.seek(full, 10).peek()
	if !ok || ent.payload != 600 {
		t.Fatalf("read resolved %+v, want payload 600 (seq 6)", ent)
	}
	if ent, ok = m.seek(full, 5).peek(); !ok || ent.payload != 500 {
		t.Fatalf("snapshot 5 resolved %+v, want payload 500", ent)
	}
	fl := m.flushEntries()
	if len(fl) != 1 || fl[0].payload != 600 {
		t.Fatalf("flush entries %+v, want the seq-6 write", fl)
	}
}

// TestScanDirIgnoresTmp: a crashed segment write leaves a "*.pst.tmp"
// file whose name prefix parses like a real segment; it must be ignored,
// not treated as a higher-epoch replacement that deletes good data.
func TestScanDirIgnoresTmp(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte{1}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	touch("seg-000000000001-000000000001-000.pst")
	touch("seg-000000000001-000000000001-001.pst.tmp") // crashed rewrite
	touch("wal-000000000002.log.tmp")
	segs, wals, err := scanDir(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != (segID{lo: 1, hi: 1}) {
		t.Fatalf("segs %v, want only the real epoch-0 segment", segs)
	}
	if len(wals) != 0 {
		t.Fatalf("wals %v", wals)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-000000000001-000000000001-000.pst")); err != nil {
		t.Fatal("the real segment was deleted")
	}
}
