package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"maps"
	"os"
	"path/filepath"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/vfs"
)

// These matrices extend TestFaultMatrix's contract to the recovery
// subsystem: every file operation a snapshot export, a WAL archive move,
// a point-in-time restore or a quarantine repair performs is enumerated
// with count-only rules, then failed and crashed one sampled point at a
// time. The invariants: the SOURCE engine always reopens clean with an
// acked-consistent prefix, a committed snapshot (manifest present) is
// always restorable, a restore target is atomically absent-or-complete,
// and an interrupted repair converges on retry.

// rwPrefix relaxes fwCheck: the recovered state must equal fwStateAfter
// for SOME prefix j — used where the floor is not the acked count (a
// restore reaches only archived history, a snapshot only its flush
// point).
func rwPrefix(t *testing.T, c curve.Curve, ops []fwOp, got map[uint64]uint64, what string) {
	t.Helper()
	for j := 0; j <= len(ops); j++ {
		if maps.Equal(got, fwStateAfter(c, ops, j)) {
			return
		}
	}
	t.Fatalf("%s matches no workload prefix: %d records", what, len(got))
}

// rwRun drives the fixed workload with two snapshot exports in the
// middle (a full one, then an incremental against it) so the matrix
// covers snapshot and archive operations. Export errors are tolerated —
// the injected fault must not damage the engine — but write acks must
// still form a prefix.
func rwRun(t *testing.T, dir, snap1, snap2 string, fsys vfs.FS, ops []fwOp) int {
	t.Helper()
	e, err := Open(dir, fwCurve(t), fwOpts(fsys))
	if err != nil {
		return 0
	}
	acked, failed := 0, false
	for i, op := range ops {
		var werr error
		if op.del {
			werr = e.Delete(op.pt)
		} else {
			werr = e.Put(op.pt, op.pay)
		}
		if werr == nil {
			if failed {
				t.Fatalf("op %d acked after an earlier write failed", i)
			}
			acked++
		} else {
			failed = true
		}
		switch i + 1 {
		case 25, 75:
			e.Flush() //nolint:errcheck // fault runs flush into injected errors
		case 45:
			e.Snapshot(snap1) //nolint:errcheck // export may fail; engine must survive
		case 90:
			e.SnapshotSince(snap2, snap1) //nolint:errcheck
		}
	}
	e.Close() //nolint:errcheck // a crashed filesystem cannot close cleanly
	return acked
}

// rwCheckSnapshot asserts absent-or-complete: either the snapshot never
// committed (no manifest — any other debris is fine), or it restores on
// the real filesystem to a consistent workload prefix.
func rwCheckSnapshot(t *testing.T, snapDir string, o curve.Curve, ops []fwOp) {
	t.Helper()
	if _, err := os.Stat(filepath.Join(snapDir, snapshotManifestName)); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatal(err)
		}
		return // not committed: correctly absent
	}
	target := filepath.Join(t.TempDir(), "restored")
	if _, err := Restore(snapDir, target, -1, fwCurve(t), snapOpts(nil)); err != nil {
		t.Fatalf("committed snapshot %s does not restore: %v", snapDir, err)
	}
	rwPrefix(t, o, ops, fwRecover(t, target), "restored snapshot state")
}

func TestSnapshotFaultMatrix(t *testing.T) {
	ops := fwWorkload()
	o := fwCurve(t)

	// The recovery fault-point classes: everything under the snapshot
	// directories (segment copies, manifest tmp + rename), and everything
	// under archive/ (WAL retirement renames and fsyncs, archive listing).
	filters := []vfs.Fault{
		{Op: vfs.OpAny, Path: "snap"},
		{Op: vfs.OpAny, Path: "archive"},
	}

	inj := vfs.NewInjecting(vfs.OS{})
	inj.SetFaults(filters...)
	enumRoot := t.TempDir()
	enumDir := filepath.Join(enumRoot, "db")
	if acked := rwRun(t, enumDir, filepath.Join(enumRoot, "snap1"), filepath.Join(enumRoot, "snap2"), inj, ops); acked != len(ops) {
		t.Fatalf("enumeration run dropped writes: %d/%d acked", acked, len(ops))
	}
	fwCheck(t, o, ops, len(ops), fwRecover(t, enumDir))
	rwCheckSnapshot(t, filepath.Join(enumRoot, "snap1"), o, ops)
	rwCheckSnapshot(t, filepath.Join(enumRoot, "snap2"), o, ops)

	maxPoints := int64(10)
	if testing.Short() {
		maxPoints = 4
	}
	for fi, f := range filters {
		total := inj.Matched(fi)
		if total == 0 {
			t.Fatalf("filter %+v matched no operations — the workload no longer exercises it", f)
		}
		stride := (total + maxPoints - 1) / maxPoints
		for _, kind := range []vfs.Kind{vfs.KindFail, vfs.KindCrash} {
			for n := int64(1); n <= total; n += stride {
				name := fmt.Sprintf("%s-%s-%s-n%d", f.Op, f.Path, kind, n)
				t.Run(name, func(t *testing.T) {
					root := t.TempDir()
					dir := filepath.Join(root, "db")
					snap1, snap2 := filepath.Join(root, "snap1"), filepath.Join(root, "snap2")
					ifs := vfs.NewInjecting(vfs.OS{})
					ifs.SetFaults(vfs.Fault{Op: f.Op, Path: f.Path, N: n, Kind: kind})
					acked := rwRun(t, dir, snap1, snap2, ifs, ops)
					if len(ifs.Injected()) == 0 {
						t.Fatalf("fault point %d of %d never fired", n, total)
					}
					// The source engine survives with its acked prefix...
					fwCheck(t, o, ops, acked, fwRecover(t, dir))
					// ...and each snapshot is atomically absent-or-complete.
					rwCheckSnapshot(t, snap1, o, ops)
					rwCheckSnapshot(t, snap2, o, ops)
				})
			}
		}
	}
}

func TestRestoreFaultMatrix(t *testing.T) {
	ops := fwWorkload()
	o := fwCurve(t)

	// Fixture built once, fault-free: a source engine whose snapshot
	// needs archived-WAL replay to reach the final state.
	root := t.TempDir()
	srcDir := filepath.Join(root, "db")
	snapDir := filepath.Join(root, "snap")
	e, err := Open(srcDir, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.del {
			err = e.Delete(op.pt)
		} else {
			err = e.Put(op.pt, op.pay)
		}
		if err != nil {
			t.Fatal(err)
		}
		switch i + 1 {
		case 25, 75:
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		case 50:
			if _, err := e.Snapshot(snapDir); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	want := fwStateAfter(o, ops, len(ops))

	// Enumeration: every operation a full restore performs is a fault
	// point (the restore touches nothing but its own staging tree and the
	// read-only snapshot chain + archive).
	inj := vfs.NewInjecting(vfs.OS{})
	inj.SetFaults(vfs.Fault{Op: vfs.OpAny})
	enumTarget := filepath.Join(t.TempDir(), "restored")
	if _, err := Restore(snapDir, enumTarget, -1, o, snapOpts(inj)); err != nil {
		t.Fatalf("enumeration restore: %v", err)
	}
	if !maps.Equal(fwRecover(t, enumTarget), want) {
		t.Fatal("enumeration restore diverges from the source state")
	}
	total := inj.Matched(0)
	if total == 0 {
		t.Fatal("restore performed no injectable operations")
	}

	maxPoints := int64(12)
	if testing.Short() {
		maxPoints = 4
	}
	stride := (total + maxPoints - 1) / maxPoints
	for _, kind := range []vfs.Kind{vfs.KindFail, vfs.KindCrash} {
		for n := int64(1); n <= total; n += stride {
			t.Run(fmt.Sprintf("%s-n%d", kind, n), func(t *testing.T) {
				target := filepath.Join(t.TempDir(), "restored")
				ifs := vfs.NewInjecting(vfs.OS{})
				ifs.SetFaults(vfs.Fault{Op: vfs.OpAny, N: n, Kind: kind})
				if _, err := Restore(snapDir, target, -1, o, snapOpts(ifs)); err == nil {
					t.Fatalf("restore with fault point %d of %d succeeded", n, total)
				}
				// Absent-or-complete: the target never exists after a failure.
				if _, err := os.Stat(target); !errors.Is(err, fs.ErrNotExist) {
					t.Fatalf("failed restore left target behind: stat err %v", err)
				}
				// A retry on the healed filesystem clears the staging debris
				// and completes.
				if _, err := Restore(snapDir, target, -1, o, snapOpts(nil)); err != nil {
					t.Fatalf("retry after fault: %v", err)
				}
				if !maps.Equal(fwRecover(t, target), want) {
					t.Fatal("retried restore diverges from the source state")
				}
			})
		}
	}

	// The read-only inputs took no damage from any of that.
	if !maps.Equal(fwRecover(t, srcDir), want) {
		t.Fatal("source engine changed during restore faults")
	}
}

func TestRepairFaultMatrix(t *testing.T) {
	o := fwCurve(t)

	// buildFixture creates, deterministically: an engine with two row
	// segments, a byte-copied snapshot, a corrupt first segment already
	// moved to quarantine, closed cleanly.
	buildFixture := func(t *testing.T, root string) (dir, snapDir string) {
		t.Helper()
		dir = filepath.Join(root, "db")
		snapDir = filepath.Join(root, "snap")
		e, _, victim := twoRowEngine(t, dir, fwOpts(vfs.NewInjecting(vfs.OS{})))
		if _, err := e.Snapshot(snapDir); err != nil {
			t.Fatal(err)
		}
		corruptFile(t, victim)
		if rep, err := e.Verify(); err != nil || len(rep.Quarantined) != 1 {
			t.Fatalf("fixture verify: %+v, err %v", rep, err)
		}
		e.Close() //nolint:errcheck // Degraded close still flushes
		return dir, snapDir
	}

	// checkConsistent asserts the invariant every fault point must leave:
	// the engine reopens, and serves either just the intact row (repair
	// incomplete) or both full rows (repair committed) — never a torn
	// in-between, never corrupt reads.
	checkConsistent := func(t *testing.T, dir string) {
		t.Helper()
		e, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
		if err != nil {
			t.Fatalf("reopen after repair fault: %v", err)
		}
		defer e.Close()
		recs, _, err := e.Query(o.Universe().Rect())
		if err != nil {
			t.Fatalf("query after repair fault: %v", err)
		}
		rows := rowRecords(recs)
		if rows[1] != 60 || (rows[0] != 0 && rows[0] != 60) {
			t.Fatalf("rows after repair fault %v, want {1:60} or {0:60, 1:60}", rows)
		}
	}

	// repairOnce opens the quarantined fixture through fsys and runs one
	// Repair pass; all errors are tolerated (that's the point).
	repairOnce := func(dir, snapDir string, fsys vfs.FS) {
		e, err := Open(dir, o, fwOpts(fsys))
		if err != nil {
			return
		}
		e.Repair(snapDir) //nolint:errcheck
		e.Close()         //nolint:errcheck
	}

	// The repair-specific fault-point classes: quarantine scans and
	// retirement, snapshot chain reads, and the replacement segment build.
	filters := []vfs.Fault{
		{Op: vfs.OpAny, Path: "quarantine"},
		{Op: vfs.OpAny, Path: "snap"},
		{Op: vfs.OpAny, Path: ".pst.tmp"},
		{Op: vfs.OpRemove},
	}

	enumRoot := t.TempDir()
	enumDir, enumSnap := buildFixture(t, enumRoot)
	inj := vfs.NewInjecting(vfs.OS{})
	inj.SetFaults(filters...)
	repairOnce(enumDir, enumSnap, inj)
	// The fault-free pass heals completely.
	e, err := Open(enumDir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkBothRows(t, e, o)
	e.Close()

	maxPoints := int64(6)
	if testing.Short() {
		maxPoints = 2
	}
	for fi, f := range filters {
		total := inj.Matched(fi)
		if total == 0 {
			t.Fatalf("filter %+v matched no operations — repair no longer exercises it", f)
		}
		stride := (total + maxPoints - 1) / maxPoints
		for _, kind := range []vfs.Kind{vfs.KindFail, vfs.KindCrash} {
			for n := int64(1); n <= total; n += stride {
				name := fmt.Sprintf("%s-%s-%s-n%d", f.Op, f.Path, kind, n)
				t.Run(name, func(t *testing.T) {
					dir, snapDir := buildFixture(t, t.TempDir())
					ifs := vfs.NewInjecting(vfs.OS{})
					ifs.SetFaults(vfs.Fault{Op: f.Op, Path: f.Path, N: n, Kind: kind})
					repairOnce(dir, snapDir, ifs)
					// Whatever the fault interrupted, the store is consistent...
					checkConsistent(t, dir)
					// ...and a clean retry converges: fully repaired, Healthy.
					e, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
					if err != nil {
						t.Fatalf("reopen for retry: %v", err)
					}
					defer e.Close()
					rep, err := e.Repair(snapDir)
					if err != nil {
						t.Fatalf("retry repair: %v (report %+v)", err, rep)
					}
					if rep.Health != Healthy {
						t.Fatalf("health after retry = %v (report %+v), want Healthy", rep.Health, rep)
					}
					checkBothRows(t, e, o)
				})
			}
		}
	}
}
