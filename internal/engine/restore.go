package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/vfs"
)

// RestoreReport summarizes one point-in-time restore.
type RestoreReport struct {
	Dir      string // the materialized engine directory
	Segments int    // segment files restored from the snapshot chain
	Copied   int    // of those, byte-copied
	Linked   int    // of those, hardlinked
	WALs     int    // archived WALs replayed (fully or partially)
	Replayed int    // WAL records applied
	Records  int    // records in the restored engine (incl. tombstones)
}

// Restore materializes a fresh engine directory at targetDir from the
// snapshot at snapshotDir plus the source's archived WALs: the snapshot's
// segments are copied (or hardlinked), then every archived WAL the
// segment set does not already cover is replayed in generation order —
// the same torn-tail and walCovered rules Open applies — and the first
// upTo replayed records are folded into one extra segment. upTo < 0
// replays everything (restore-to-latest); upTo == 0 restores the
// snapshot alone. The boundary is exact for cleanly flushed history:
// record j of the replay stream is the j-th write acknowledged after the
// snapshot's flush point.
//
// targetDir must not exist. The build happens in a sibling directory
// renamed into place as the last step, so an injected failure or crash
// at any point leaves targetDir atomically absent — never a half-built
// engine — and never modifies the snapshot or the source engine.
func Restore(snapshotDir, targetDir string, upTo int, c curve.Curve, opts Options) (RestoreReport, error) {
	opts = opts.withDefaults()
	fsys := vfs.Or(opts.FS)
	rep := RestoreReport{Dir: targetDir}

	man, err := readSnapshotManifest(fsys, snapshotDir)
	if err != nil {
		return rep, err
	}
	u := c.Universe()
	if man.curveName != c.Name() || man.dims != u.Dims() || man.side != int(u.Side()) {
		return rep, fmt.Errorf("%w: snapshot %s is of a different store (curve %s dims %d side %d)",
			ErrSnapshot, snapshotDir, man.curveName, man.dims, man.side)
	}
	if _, err := fsys.ReadDir(targetDir); err == nil {
		return rep, fmt.Errorf("engine: restore: target %s already exists", targetDir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return rep, fmt.Errorf("engine: restore: %w", err)
	}

	// Build in a sibling staging directory; clear debris of an earlier
	// interrupted restore (only flat files ever land here).
	tmp := targetDir + ".restore-tmp"
	if ents, err := fsys.ReadDir(tmp); err == nil {
		for _, ent := range ents {
			if err := fsys.Remove(filepath.Join(tmp, ent.Name())); err != nil {
				return rep, fmt.Errorf("engine: restore: %w", err)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return rep, fmt.Errorf("engine: restore: %w", err)
	}
	if err := fsys.MkdirAll(tmp, 0o755); err != nil {
		return rep, fmt.Errorf("engine: restore: %w", err)
	}

	var segIDs []segID
	var nextGen uint64
	for _, s := range man.segs {
		src, err := resolveSnapshotSegment(fsys, snapshotDir, man, s)
		if err != nil {
			return rep, err
		}
		linked, _, err := copyFileOrLink(fsys, src, filepath.Join(tmp, s.name))
		if err != nil {
			return rep, err
		}
		if linked {
			rep.Linked++
		} else {
			rep.Copied++
		}
		rep.Segments++
		rep.Records += s.recs
		var id segID
		fmt.Sscanf(s.name, "seg-%d-%d-%d.pst", &id.lo, &id.hi, &id.epoch) //nolint:errcheck // validated at parse
		segIDs = append(segIDs, id)
		if id.hi >= nextGen {
			nextGen = id.hi + 1
		}
	}

	// Replay the archive past the snapshot: WALs whose generation a
	// snapshot segment covers hold nothing the segments don't (the Open
	// rule); the rest carry the writes acknowledged after the snapshot,
	// in generation order = acknowledgement order.
	gens, err := archivedWALs(fsys, man.archive)
	if err != nil {
		return rep, err
	}
	var mem *memtable
	var seq uint64
	dims := u.Dims()
	for _, g := range gens {
		if walCovered(segIDs, g) {
			continue
		}
		if upTo >= 0 && rep.Replayed >= upTo {
			break
		}
		ops, err := replayWAL(fsys, walPath(man.archive, g), dims)
		if err != nil {
			return rep, err
		}
		if len(ops) == 0 {
			continue
		}
		rep.WALs++
		if g >= nextGen {
			nextGen = g + 1
		}
		for _, op := range ops {
			if upTo >= 0 && rep.Replayed >= upTo {
				break
			}
			if mem == nil {
				mem, err = newMemtable(c, opts.Shards, nextGen)
				if err != nil {
					return rep, err
				}
			}
			seq++
			mem.put(c.Index(op.pt), op.pt, op.payload, seq, op.del)
			rep.Replayed++
		}
	}
	if mem != nil {
		ents := mem.flushEntries()
		seg, err := writeSegment(fsys, tmp, c, segID{lo: nextGen, hi: nextGen}, ents, opts.PageBytes, nil)
		if err != nil {
			return rep, err
		}
		rep.Records += len(ents)
		seg.st.Close()
	}

	// Commit: fsync the staged entries, then atomically rename the whole
	// directory into place and fsync the parent.
	if err := syncDir(fsys, tmp); err != nil {
		return rep, err
	}
	if err := fsys.Rename(tmp, targetDir); err != nil {
		return rep, fmt.Errorf("engine: restore: %w", err)
	}
	if err := syncDir(fsys, filepath.Dir(targetDir)); err != nil {
		return rep, err
	}
	return rep, nil
}
