package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"

	"github.com/onioncurve/onion/internal/vfs"
)

// archiveDirName is the subdirectory of an engine dir that holds retired
// WALs. scanDir skips directories, so archived logs are invisible to the
// normal Open path; Restore replays them for point-in-time recovery.
const archiveDirName = "archive"

func archiveDir(dir string) string { return filepath.Join(dir, archiveDirName) }

// archiveWAL retires the WAL of generation g. With retention < 0 the log
// is deleted outright (the pre-archiving behavior); otherwise it moves
// into dir/archive/ under its own name — rename is atomic, so a crash
// leaves the log in exactly one of the two directories and replay finds
// it either way — and, with retention > 0, the oldest archived logs
// beyond the cap are pruned.
//
// The engine-dir fsync makes the unlink durable only after the archive
// entry exists; the archive-dir fsync then pins the new entry. Ordering
// matters: persisting the removal without the archive entry would lose
// the log.
func archiveWAL(fsys vfs.FS, dir string, g uint64, retention int) error {
	if retention < 0 {
		if err := fsys.Remove(walPath(dir, g)); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
		return nil
	}
	adir := archiveDir(dir)
	if err := fsys.MkdirAll(adir, 0o755); err != nil {
		return fmt.Errorf("engine: archive: %w", err)
	}
	src := walPath(dir, g)
	dst := filepath.Join(adir, filepath.Base(src))
	if err := fsys.Rename(src, dst); err != nil {
		return fmt.Errorf("engine: archive: %w", err)
	}
	if err := fsys.SyncDir(adir); err != nil {
		return fmt.Errorf("engine: archive: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("engine: archive: %w", err)
	}
	if retention > 0 {
		return pruneArchive(fsys, adir, retention)
	}
	return nil
}

// pruneArchive enforces the retention cap: keep the newest `keep`
// archived WALs, remove the rest (oldest first). Pruned history limits
// how far back point-in-time restore can reach; the default retention of
// 0 (keep everything) never gets here.
func pruneArchive(fsys vfs.FS, adir string, keep int) error {
	gens, err := archivedWALs(fsys, adir)
	if err != nil {
		return err
	}
	if len(gens) <= keep {
		return nil
	}
	for _, g := range gens[:len(gens)-keep] {
		if err := fsys.Remove(filepath.Join(adir, filepath.Base(walPath(adir, g)))); err != nil {
			return fmt.Errorf("engine: archive: %w", err)
		}
	}
	return syncDir(fsys, adir)
}

// archivedWALs lists the WAL generations present in the archive
// directory, ascending. A missing archive directory is an empty history,
// not an error.
func archivedWALs(fsys vfs.FS, adir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(adir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // archive never created: empty history
		}
		return nil, fmt.Errorf("engine: archive: %w", err)
	}
	var gens []uint64
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		var g uint64
		name := ent.Name()
		if n, _ := fmt.Sscanf(name, "wal-%d.log", &g); n == 1 &&
			name == filepath.Base(walPath(adir, g)) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens, nil
}
