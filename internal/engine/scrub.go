package engine

import (
	"errors"
	"time"

	"github.com/onioncurve/onion/internal/pagedstore"
)

// scrubLoop is the background scrubber: one page verified per tick, the
// tick rate capped at Options.ScrubPagesPerSec, cycling forever over the
// live segments. Verification is the same check Verify performs (page
// checksum + key invariants, read straight from disk past the cache), so
// rotting bytes are condemned on the scrubber's schedule instead of a
// query's — the query path then never serves, or trips over, the damage.
func (e *Engine) scrubLoop() {
	defer close(e.scrubDone)
	interval := time.Second / time.Duration(e.opts.ScrubPagesPerSec)
	if interval < time.Microsecond {
		interval = time.Microsecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var segIdx, pageIdx int
	var buf []byte
	for {
		select {
		case <-e.bgStop:
			return
		case <-t.C:
			e.scrubStep(&segIdx, &pageIdx, &buf)
		}
	}
}

// scrubStep verifies one page. flushMu serializes it with flushes,
// compactions, Verify and Repair, so the segment under scrutiny cannot
// be retired mid-check; the position is (segment index, page index) and
// tolerates the list shifting between steps — a scrubber only needs to
// keep cycling, not to enumerate a frozen set.
func (e *Engine) scrubStep(segIdx, pageIdx *int, buf *[]byte) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.mu.RLock()
	if e.closed || len(e.segs) == 0 {
		e.mu.RUnlock()
		*segIdx, *pageIdx = 0, 0
		return
	}
	if *segIdx >= len(e.segs) {
		*segIdx, *pageIdx = 0, 0
	}
	s := e.segs[*segIdx]
	e.mu.RUnlock()
	if *pageIdx >= s.st.Pages() {
		*segIdx++
		*pageIdx = 0
		return
	}
	if pb := s.st.PageBytes(); len(*buf) < pb {
		*buf = make([]byte, pb)
	}
	err := s.st.VerifyPage(*pageIdx, *buf)
	*pageIdx++
	if tel := e.tel; tel != nil {
		tel.scrubPages.Inc()
	}
	if err == nil {
		return
	}
	if errors.Is(err, pagedstore.ErrCorrupt) {
		// Condemn it now, exactly as Verify would: out of the live list,
		// into quarantine/, engine Degraded.
		e.quarantine(s, err)
		*segIdx = 0
		*pageIdx = 0
		return
	}
	e.setBgErr(err)
}
