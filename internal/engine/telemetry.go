package engine

import (
	"time"

	"github.com/onioncurve/onion/internal/pagedstore"
	"github.com/onioncurve/onion/internal/telemetry"
)

// engineTelemetry holds pre-resolved handles into the engine's metric
// registry, so hot-path recording is a handful of atomic operations on
// preallocated memory — no map lookups, no allocation, no locks. The
// query path pins this with TestEngineQueryZeroAlloc.
//
// The metric names below are a stable contract, documented in the
// README's Observability section; renaming one is a breaking change.
type engineTelemetry struct {
	queries        *telemetry.Counter
	queryErrors    *telemetry.Counter
	queryLatencyUS *telemetry.Histogram
	plannedRanges  *telemetry.Histogram
	seeks          *telemetry.Counter
	pagesRead      *telemetry.Counter
	recordsOut     *telemetry.Counter
	seekAmp        *telemetry.FloatGauge

	walAppends     *telemetry.Counter
	walAppendBytes *telemetry.Counter
	walFsyncs      *telemetry.Counter
	walFsyncUS     *telemetry.Histogram
	walBatch       *telemetry.Histogram
	walRotations   *telemetry.Counter

	flushUS      *telemetry.Histogram
	flushRecords *telemetry.Counter

	compactUS         *telemetry.Histogram
	compactSegsIn     *telemetry.Counter
	compactRecordsIn  *telemetry.Counter
	compactRecordsOut *telemetry.Counter
	compactTombsGC    *telemetry.Counter

	bgRetries *telemetry.Counter

	scrubPages   *telemetry.Counter
	verifyPasses *telemetry.Counter
	quarantines  *telemetry.Counter

	snapshots  *telemetry.Counter
	snapshotUS *telemetry.Histogram
	repairs    *telemetry.Counter
	repairUS   *telemetry.Histogram
	salvaged   *telemetry.Counter
	backfilled *telemetry.Counter

	// healthTo counts state transitions by target state, indexed by
	// Health (escalations and recoveries alike).
	healthTo [Failed + 1]*telemetry.Counter
}

func newEngineTelemetry(reg *telemetry.Registry) *engineTelemetry {
	t := &engineTelemetry{
		queries:        reg.Counter("engine_queries_total"),
		queryErrors:    reg.Counter("engine_query_errors_total"),
		queryLatencyUS: reg.Histogram("engine_query_latency_us"),
		plannedRanges:  reg.Histogram("engine_query_planned_ranges"),
		seeks:          reg.Counter("engine_query_seeks_total"),
		pagesRead:      reg.Counter("engine_query_pages_read_total"),
		recordsOut:     reg.Counter("engine_query_records_total"),
		seekAmp:        reg.FloatGauge("engine_query_seek_amplification"),

		walAppends:     reg.Counter("engine_wal_appends_total"),
		walAppendBytes: reg.Counter("engine_wal_append_bytes_total"),
		walFsyncs:      reg.Counter("engine_wal_fsyncs_total"),
		walFsyncUS:     reg.Histogram("engine_wal_fsync_us"),
		walBatch:       reg.Histogram("engine_wal_group_commit_batch"),
		walRotations:   reg.Counter("engine_wal_rotations_total"),

		flushUS:      reg.Histogram("engine_flush_us"),
		flushRecords: reg.Counter("engine_flush_records_total"),

		compactUS:         reg.Histogram("engine_compaction_us"),
		compactSegsIn:     reg.Counter("engine_compaction_segments_in_total"),
		compactRecordsIn:  reg.Counter("engine_compaction_records_in_total"),
		compactRecordsOut: reg.Counter("engine_compaction_records_out_total"),
		compactTombsGC:    reg.Counter("engine_compaction_tombstones_dropped_total"),

		bgRetries: reg.Counter("engine_bg_retries_total"),

		scrubPages:   reg.Counter("engine_scrub_pages_total"),
		verifyPasses: reg.Counter("engine_verify_passes_total"),
		quarantines:  reg.Counter("engine_quarantined_segments_total"),

		snapshots:  reg.Counter("engine_snapshots_total"),
		snapshotUS: reg.Histogram("engine_snapshot_us"),
		repairs:    reg.Counter("engine_repairs_total"),
		repairUS:   reg.Histogram("engine_repair_us"),
		salvaged:   reg.Counter("engine_repair_salvaged_records_total"),
		backfilled: reg.Counter("engine_repair_backfilled_records_total"),
	}
	for h := Healthy; h <= Failed; h++ {
		t.healthTo[h] = reg.Counter(telemetry.WithLabel("engine_health_transitions_total", "to", h.String()))
	}
	return t
}

// recordQuery tallies one finished query. start is when the public call
// began; st is the final logical stat set. Errors count separately and
// contribute no latency sample, so the histograms describe served
// queries only.
func (t *engineTelemetry) recordQuery(start time.Time, st Stats, err error) {
	if err != nil {
		t.queryErrors.Inc()
		return
	}
	t.queries.Inc()
	t.queryLatencyUS.Record(uint64(time.Since(start).Microseconds()))
	if st.Planned > 0 {
		t.plannedRanges.Record(uint64(st.Planned))
		// Seek amplification: positioned reads per planned cluster range.
		// The planner's range count is the paper's clustering number, so
		// 1.0 means the engine pays exactly the clustering-optimal seek
		// cost; the LSM's extra sorted runs push it above 1.
		t.seekAmp.Set(float64(st.Seeks) / float64(st.Planned))
	}
	t.seeks.Add(uint64(st.Seeks))
	t.pagesRead.Add(uint64(st.PagesRead))
	t.recordsOut.Add(uint64(st.Results))
}

// registerSampledTelemetry wires the gauges and counters whose truth
// lives elsewhere in the engine — shape gauges sampled at scrape time,
// and lifetime counters already maintained for EngineStats. ownedCache
// gates the cache series: an engine only exports a cache it created
// itself, so a cache shared across shards is exported exactly once (by
// the shard router), never multiplied by the roll-up.
func (e *Engine) registerSampledTelemetry(ownedCache bool) {
	reg := e.reg
	reg.GaugeFunc("engine_health_state", func() int64 { return int64(e.health.state.Load()) })
	reg.GaugeFunc("engine_memtable_entries", e.memEntries)
	reg.GaugeFunc("engine_imm_memtables", func() int64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return int64(len(e.imm))
	})
	reg.GaugeFunc("engine_segments", func() int64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return int64(len(e.segs))
	})
	reg.GaugeFunc("engine_segment_records", func() int64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		var n int64
		for _, s := range e.segs {
			n += int64(s.recs)
		}
		return n
	})
	reg.GaugeFunc("engine_wal_bytes", func() int64 {
		e.mu.RLock()
		defer e.mu.RUnlock()
		if e.closed {
			return 0
		}
		e.walMu.Lock()
		n := e.wal.n
		e.walMu.Unlock()
		return n
	})
	reg.CounterFunc("engine_flushes_total", e.flushes.Load)
	reg.CounterFunc("engine_compactions_total", e.compactions.Load)
	if ownedCache {
		RegisterCacheTelemetry(reg, e.cache)
	}
}

// RegisterCacheTelemetry exports a page cache's monotonic counters and
// resident-set gauges on the given registry. The counters are sampled
// from the same atomics CacheStats reads, so a registry scrape and a
// CacheStats snapshot can never disagree. The shard router calls this
// for the cache it shares across its engines; Open calls it for a
// private cache.
func RegisterCacheTelemetry(reg *telemetry.Registry, cache *pagedstore.Cache) {
	reg.CounterFunc("cache_hits_total", func() uint64 { h, _, _, _ := cache.Counters(); return h })
	reg.CounterFunc("cache_misses_total", func() uint64 { _, m, _, _ := cache.Counters(); return m })
	reg.CounterFunc("cache_evictions_total", func() uint64 { _, _, ev, _ := cache.Counters(); return ev })
	reg.CounterFunc("cache_admission_rejects_total", func() uint64 { _, _, _, a := cache.Counters(); return a })
	reg.GaugeFunc("cache_resident_bytes", func() int64 { return cache.Stats().Bytes })
	reg.GaugeFunc("cache_resident_pages", func() int64 { return int64(cache.Stats().Pages) })
}

// Telemetry returns the engine's metric registry. It is always non-nil;
// see the README's Observability section for the metric name contract.
func (e *Engine) Telemetry() *telemetry.Registry { return e.reg }

// Events returns the engine's maintenance event stream: flush,
// compaction, snapshot, repair, scrub and health lifecycle events in a
// bounded ring, with an optional synchronous listener.
func (e *Engine) Events() *telemetry.Events { return e.events }

// TelemetrySnapshot snapshots the registry with the recent maintenance
// events attached — the form WriteJSON and WritePrometheus consume.
func (e *Engine) TelemetrySnapshot() telemetry.Snapshot {
	s := e.reg.Snapshot()
	if e.events != nil {
		s.Events = e.events.Recent(nil)
	}
	return s
}

// emitEvent stamps and stores a maintenance event. Shard is set to -1
// here; the shard router rewrites it when merging per-shard streams.
func (e *Engine) emitEvent(ev telemetry.Event) {
	if e.events == nil {
		return
	}
	ev.Shard = -1
	e.events.Emit(ev)
}

// errString renders an error for an event field ("" for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// timedWALSync is wal.sync with fsync telemetry; the caller holds walMu.
func (e *Engine) timedWALSync(w *wal) error {
	tel := e.tel
	if tel == nil {
		return w.sync()
	}
	start := time.Now()
	err := w.sync()
	if err == nil {
		tel.walFsyncs.Inc()
		tel.walFsyncUS.Record(uint64(time.Since(start).Microseconds()))
	}
	return err
}
