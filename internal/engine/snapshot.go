package engine

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/onioncurve/onion/internal/telemetry"
	"github.com/onioncurve/onion/internal/vfs"
)

// ErrSnapshot reports a malformed, missing or mismatched snapshot
// manifest.
var ErrSnapshot = errors.New("engine: invalid snapshot")

// snapshotManifestName is the file whose atomic appearance commits a
// snapshot: a snapshot directory without it is garbage from an
// interrupted export and is never read.
const snapshotManifestName = "SNAPSHOT"

// SnapshotReport summarizes one snapshot export.
type SnapshotReport struct {
	Dir      string // the snapshot directory
	Epoch    uint64 // 1 for a full snapshot, parent epoch + 1 for incremental
	Segments int    // segments in the snapshot's full set
	Copied   int    // segment files byte-copied this export
	Linked   int    // segment files hardlinked this export
	Reused   int    // segment files inherited from the parent snapshot
	Records  int    // records across the snapshot's segments (incl. tombstones)
}

// snapSeg is one segment line of a snapshot manifest.
type snapSeg struct {
	name string
	size int64
	recs int
}

// snapManifest is a parsed snapshot manifest. The segment list is the
// snapshot's FULL segment set; incremental snapshots store only the
// set-difference against the parent on disk, so resolving a segment file
// walks the parent chain.
type snapManifest struct {
	curveName  string
	dims, side int
	epoch      uint64
	parent     string // parent snapshot dir, "" for a full snapshot
	archive    string // source engine's WAL archive dir (for PITR)
	segs       []snapSeg
}

func (m *snapManifest) body() string {
	var b strings.Builder
	fmt.Fprintf(&b, "onion-snapshot v1\ncurve %s\ndims %d\nside %d\nepoch %d\n",
		m.curveName, m.dims, m.side, m.epoch)
	parent := m.parent
	if parent == "" {
		parent = "-"
	}
	fmt.Fprintf(&b, "parent %s\narchive %s\nsegments %d\n", parent, m.archive, len(m.segs))
	for _, s := range m.segs {
		fmt.Fprintf(&b, "%s %d %d\n", s.name, s.size, s.recs)
	}
	return b.String()
}

func parseSnapshotManifest(data []byte) (*snapManifest, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	bad := func(what string) error {
		return fmt.Errorf("%w: manifest %s", ErrSnapshot, what)
	}
	if len(lines) < 7 || lines[0] != "onion-snapshot v1" {
		return nil, bad("header")
	}
	m := &snapManifest{}
	if _, err := fmt.Sscanf(lines[1], "curve %s", &m.curveName); err != nil {
		return nil, bad("curve line")
	}
	if _, err := fmt.Sscanf(lines[2], "dims %d", &m.dims); err != nil {
		return nil, bad("dims line")
	}
	if _, err := fmt.Sscanf(lines[3], "side %d", &m.side); err != nil {
		return nil, bad("side line")
	}
	if _, err := fmt.Sscanf(lines[4], "epoch %d", &m.epoch); err != nil {
		return nil, bad("epoch line")
	}
	// parent and archive are paths (may contain spaces): everything after
	// the first space is the value.
	key, val, ok := strings.Cut(lines[5], " ")
	if !ok || key != "parent" {
		return nil, bad("parent line")
	}
	if val != "-" {
		m.parent = val
	}
	key, val, ok = strings.Cut(lines[6], " ")
	if !ok || key != "archive" {
		return nil, bad("archive line")
	}
	m.archive = val
	var n int
	if len(lines) < 8 {
		return nil, bad("segments line")
	}
	if _, err := fmt.Sscanf(lines[7], "segments %d", &n); err != nil {
		return nil, bad("segments line")
	}
	if len(lines) != 8+n {
		return nil, bad("segment count")
	}
	for _, ln := range lines[8:] {
		var s snapSeg
		if _, err := fmt.Sscanf(ln, "%s %d %d", &s.name, &s.size, &s.recs); err != nil {
			return nil, bad("segment line")
		}
		var lo, hi, epoch uint64
		if n, _ := fmt.Sscanf(s.name, "seg-%d-%d-%d.pst", &lo, &hi, &epoch); n != 3 ||
			s.name != filepath.Base(segPath(".", lo, hi, epoch)) {
			return nil, bad("segment name")
		}
		m.segs = append(m.segs, s)
	}
	return m, nil
}

// readSnapshotManifest loads and parses dir's SNAPSHOT manifest.
func readSnapshotManifest(fsys vfs.FS, dir string) (*snapManifest, error) {
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, snapshotManifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: no manifest in %s (interrupted export?)", ErrSnapshot, dir)
		}
		return nil, fmt.Errorf("engine: snapshot: %w", err)
	}
	return parseSnapshotManifest(data)
}

// copyFileOrLink materializes src at dst: a hardlink when the filesystem
// offers vfs.Linker (same bytes, no copy — segments are immutable so
// sharing is safe), a byte copy otherwise. Any pre-existing dst (debris
// of an interrupted export) is replaced.
func copyFileOrLink(fsys vfs.FS, src, dst string) (linked bool, size int64, err error) {
	if err := fsys.Remove(dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return false, 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if l, ok := fsys.(vfs.Linker); ok {
		if err := l.Link(src, dst); err == nil {
			f, err := fsys.Open(dst)
			if err != nil {
				return true, 0, fmt.Errorf("engine: snapshot: %w", err)
			}
			fi, err := f.Stat()
			f.Close()
			if err != nil {
				return true, 0, fmt.Errorf("engine: snapshot: %w", err)
			}
			return true, fi.Size(), nil
		}
		// Link can fail across devices or filesystems: fall through to a
		// byte copy.
	}
	size, err = copyFile(fsys, src, dst)
	return false, size, err
}

func copyFile(fsys vfs.FS, src, dst string) (int64, error) {
	in, err := fsys.Open(src)
	if err != nil {
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	defer in.Close()
	out, err := fsys.Create(dst)
	if err != nil {
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	buf := make([]byte, 1<<16)
	var off int64
	for {
		n, rerr := in.ReadAt(buf, off)
		if n > 0 {
			if _, werr := out.Write(buf[:n]); werr != nil {
				out.Close()
				return 0, fmt.Errorf("engine: snapshot: %w", werr)
			}
			off += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			out.Close()
			return 0, fmt.Errorf("engine: snapshot: %w", rerr)
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := out.Close(); err != nil {
		return 0, fmt.Errorf("engine: snapshot: %w", err)
	}
	return off, nil
}

// Snapshot exports a full, consistent snapshot of the engine into dir:
// every live segment plus a manifest. The export is crash-atomic — the
// manifest is written tmp + fsync + rename + directory fsync as the last
// step, so an interrupted export leaves a directory without a manifest,
// which Restore refuses; the source engine is never modified beyond a
// leading flush. Writes proceed concurrently; the snapshot captures
// exactly the writes acknowledged before the call's internal flush.
func (e *Engine) Snapshot(dir string) (SnapshotReport, error) {
	return e.SnapshotSince(dir, "")
}

// SnapshotSince is Snapshot with incremental export: segments already
// listed in the parent snapshot's manifest are referenced, not copied, so
// the new snapshot directory holds only the set-difference. Restoring an
// incremental snapshot resolves segment files through the parent chain,
// so parents must outlive their children. An empty parent selects a full
// export.
func (e *Engine) SnapshotSince(dir, parent string) (SnapshotReport, error) {
	// flushMu freezes the segment set: flush and compaction bodies hold it
	// for their whole duration, so the live segment list cannot change
	// under the export.
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	start := time.Now()
	e.emitEvent(telemetry.Event{Kind: telemetry.EvSnapshot, Phase: telemetry.PhaseStart, Detail: dir})
	rep, err := e.snapshotSinceLocked(dir, parent)
	dur := time.Since(start)
	if tel := e.tel; tel != nil && err == nil {
		tel.snapshots.Inc()
		tel.snapshotUS.Record(uint64(dur.Microseconds()))
	}
	e.emitEvent(telemetry.Event{Kind: telemetry.EvSnapshot, Phase: telemetry.PhaseEnd,
		Dur: dur, Records: int64(rep.Records), Err: errString(err),
		Detail: fmt.Sprintf("%d segments (%d copied, %d linked, %d reused)",
			rep.Segments, rep.Copied, rep.Linked, rep.Reused)})
	return rep, err
}

// snapshotSinceLocked is SnapshotSince's body; the caller holds flushMu.
func (e *Engine) snapshotSinceLocked(dir, parent string) (SnapshotReport, error) {
	// Flush first: the snapshot then contains every write acknowledged
	// before this point, and the active WAL rotates into the archive where
	// point-in-time restore can replay it.
	if err := e.flushLocked(); err != nil {
		return SnapshotReport{}, err
	}

	var parentMan *snapManifest
	parentSegs := map[string]snapSeg{}
	if parent != "" {
		var err error
		parentMan, err = readSnapshotManifest(e.fs, parent)
		if err != nil {
			return SnapshotReport{}, err
		}
		u := e.c.Universe()
		if parentMan.curveName != e.c.Name() || parentMan.dims != u.Dims() || parentMan.side != int(u.Side()) {
			return SnapshotReport{}, fmt.Errorf("%w: parent %s is of a different store (curve %s dims %d side %d)",
				ErrSnapshot, parent, parentMan.curveName, parentMan.dims, parentMan.side)
		}
		for _, s := range parentMan.segs {
			parentSegs[s.name] = s
		}
	}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return SnapshotReport{}, ErrClosed
	}
	segs := append([]*segment{}, e.segs...)
	e.mu.RUnlock()

	if err := e.fs.MkdirAll(dir, 0o755); err != nil {
		return SnapshotReport{}, fmt.Errorf("engine: snapshot: %w", err)
	}
	u := e.c.Universe()
	man := &snapManifest{
		curveName: e.c.Name(),
		dims:      u.Dims(),
		side:      int(u.Side()),
		epoch:     1,
		parent:    parent,
		archive:   archiveDir(e.dir),
	}
	if parentMan != nil {
		man.epoch = parentMan.epoch + 1
	}
	rep := SnapshotReport{Dir: dir, Epoch: man.epoch}
	for _, s := range segs {
		name := filepath.Base(s.path)
		if ps, ok := parentSegs[name]; ok {
			man.segs = append(man.segs, ps)
			rep.Reused++
			rep.Records += ps.recs
			continue
		}
		linked, size, err := copyFileOrLink(e.fs, s.path, filepath.Join(dir, name))
		if err != nil {
			return SnapshotReport{}, err
		}
		if linked {
			rep.Linked++
		} else {
			rep.Copied++
		}
		man.segs = append(man.segs, snapSeg{name: name, size: size, recs: s.recs})
		rep.Records += s.recs
	}
	sort.Slice(man.segs, func(a, b int) bool { return man.segs[a].name < man.segs[b].name })
	rep.Segments = len(man.segs)
	// Make the segment copies durable before the manifest that references
	// them can appear.
	if err := syncDir(e.fs, dir); err != nil {
		return SnapshotReport{}, err
	}
	if err := writeSnapshotManifest(e.fs, dir, man); err != nil {
		return SnapshotReport{}, err
	}
	return rep, nil
}

// writeSnapshotManifest commits the manifest: tmp + fsync + rename +
// directory fsync, the same discipline as every other install in the
// store. The rename is the snapshot's commit point.
func writeSnapshotManifest(fsys vfs.FS, dir string, m *snapManifest) error {
	path := filepath.Join(dir, snapshotManifestName)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if _, err := f.Write([]byte(m.body())); err != nil {
		f.Close()
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	return syncDir(fsys, dir)
}

// resolveSnapshotSegment finds the file backing a manifest segment: the
// snapshot's own directory first, then the parent chain (incremental
// snapshots store only their delta). The size check catches a truncated
// copy or a mismatched parent.
func resolveSnapshotSegment(fsys vfs.FS, dir string, man *snapManifest, want snapSeg) (string, error) {
	for {
		p := filepath.Join(dir, want.name)
		if f, err := fsys.Open(p); err == nil {
			fi, serr := f.Stat()
			f.Close()
			if serr != nil {
				return "", fmt.Errorf("engine: snapshot: %w", serr)
			}
			if fi.Size() != want.size {
				return "", fmt.Errorf("%w: %s is %d bytes, manifest records %d",
					ErrSnapshot, p, fi.Size(), want.size)
			}
			return p, nil
		} else if !errors.Is(err, fs.ErrNotExist) {
			return "", fmt.Errorf("engine: snapshot: %w", err)
		}
		if man.parent == "" {
			return "", fmt.Errorf("%w: segment %s not found in snapshot chain", ErrSnapshot, want.name)
		}
		var err error
		dir = man.parent
		man, err = readSnapshotManifest(fsys, dir)
		if err != nil {
			return "", err
		}
	}
}
