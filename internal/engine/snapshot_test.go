package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"maps"
	"os"
	"path/filepath"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/vfs"
)

// snapOpts disables compaction so segment generation ranges (and hence
// which archived WALs a snapshot covers) are fully deterministic.
func snapOpts(fsys vfs.FS) Options {
	return Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1,
		Shards: 2, SyncWrites: true, FS: fsys}
}

// TestSnapshotPITRRoundTrip is the point-in-time acceptance test: the
// fixed workload runs with a snapshot in the middle, and for a range of
// boundaries j the snapshot plus archived-WAL replay up to j must be
// bit-identical — records and cache-on/cache-off logical stats — to
// applying ops[:j] directly.
func TestSnapshotPITRRoundTrip(t *testing.T) {
	ops := fwWorkload()
	o := fwCurve(t)
	dir := t.TempDir()
	snapDir := filepath.Join(t.TempDir(), "snap")
	const snapAt = 50

	e, err := Open(dir, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	var snapRep SnapshotReport
	for i, op := range ops {
		var werr error
		if op.del {
			werr = e.Delete(op.pt)
		} else {
			werr = e.Put(op.pt, op.pay)
		}
		if werr != nil {
			t.Fatalf("op %d: %v", i, werr)
		}
		switch i + 1 {
		case 25, 75:
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		case snapAt:
			// Snapshot flushes internally: it captures exactly ops[:snapAt].
			if snapRep, err = e.Snapshot(snapDir); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if snapRep.Epoch != 1 || snapRep.Segments == 0 || snapRep.Records == 0 {
		t.Fatalf("snapshot report %+v", snapRep)
	}

	for _, j := range []int{snapAt, snapAt + 1, snapAt + 13, 77, len(ops)} {
		target := filepath.Join(t.TempDir(), fmt.Sprintf("restored-%02d", j))
		rep, err := Restore(snapDir, target, j-snapAt, o, snapOpts(nil))
		if err != nil {
			t.Fatalf("restore to op %d: %v", j, err)
		}
		if rep.Replayed != j-snapAt {
			t.Fatalf("restore to op %d replayed %d records, want %d", j, rep.Replayed, j-snapAt)
		}
		got := fwRecover(t, target)
		if want := fwStateAfter(o, ops, j); !maps.Equal(got, want) {
			t.Fatalf("restore to op %d: %d records, want %d (state of ops[:%d])",
				j, len(got), len(want), j)
		}
	}

	// upTo < 0 restores to latest: every archived record replays.
	target := filepath.Join(t.TempDir(), "restored-all")
	rep, err := Restore(snapDir, target, -1, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != len(ops)-snapAt {
		t.Fatalf("restore-to-latest replayed %d records, want %d", rep.Replayed, len(ops)-snapAt)
	}
	got := fwRecover(t, target)
	if !maps.Equal(got, fwStateAfter(o, ops, len(ops))) {
		t.Fatalf("restore-to-latest state diverges: %d records", len(got))
	}

	// Reference cross-check: a restored engine answers a full query with
	// the exact record set (points and payloads) of an engine that simply
	// applied the same prefix.
	ref, err := Open(t.TempDir(), o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, op := range ops {
		if op.del {
			err = ref.Delete(op.pt)
		} else {
			err = ref.Put(op.pt, op.pay)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(target, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	full := o.Universe().Rect()
	wantRecs, _, err := ref.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	gotRecs, _, err := re.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("restored query: %d records, want %d", len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		if o.Index(gotRecs[i].Point) != o.Index(wantRecs[i].Point) || gotRecs[i].Payload != wantRecs[i].Payload {
			t.Fatalf("restored record %d = %+v, want %+v", i, gotRecs[i], wantRecs[i])
		}
	}
}

// TestSnapshotIncremental exercises set-difference export: the child
// snapshot reuses every parent segment, stores only new ones on disk,
// and restores through the parent chain.
func TestSnapshotIncremental(t *testing.T) {
	o := fwCurve(t)
	dir := t.TempDir()
	snaps := t.TempDir()
	s1, s2 := filepath.Join(snaps, "s1"), filepath.Join(snaps, "s2")
	e, err := Open(dir, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ops := fwWorkload()
	apply := func(from, to int) {
		t.Helper()
		for _, op := range ops[from:to] {
			var werr error
			if op.del {
				werr = e.Delete(op.pt)
			} else {
				werr = e.Put(op.pt, op.pay)
			}
			if werr != nil {
				t.Fatal(werr)
			}
		}
	}
	apply(0, 40)
	r1, err := e.Snapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Epoch != 1 || r1.Reused != 0 || r1.Copied+r1.Linked != r1.Segments {
		t.Fatalf("full snapshot report %+v", r1)
	}
	apply(40, 90)
	r2, err := e.SnapshotSince(s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != 2 {
		t.Fatalf("incremental epoch = %d, want 2", r2.Epoch)
	}
	if r2.Reused != r1.Segments {
		t.Fatalf("incremental reused %d segments, want all %d parent segments", r2.Reused, r1.Segments)
	}
	if r2.Copied+r2.Linked == 0 {
		t.Fatal("incremental snapshot exported nothing new")
	}
	// The child directory holds only the delta: reused segments resolve
	// through the parent.
	ents, err := os.ReadDir(s2)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, ent := range ents {
		if !ent.IsDir() && ent.Name() != snapshotManifestName {
			files++
		}
	}
	if files != r2.Copied+r2.Linked {
		t.Fatalf("child snapshot holds %d segment files, want only the %d-file delta",
			files, r2.Copied+r2.Linked)
	}

	target := filepath.Join(t.TempDir(), "restored")
	if _, err := Restore(s2, target, -1, o, snapOpts(nil)); err != nil {
		t.Fatalf("restore through parent chain: %v", err)
	}
	got := fwRecover(t, target)
	if !maps.Equal(got, fwStateAfter(o, ops, 90)) {
		t.Fatalf("incremental restore diverges: %d records", len(got))
	}
}

// TestSnapshotHardlinksOnOS verifies the copy-free path: the production
// filesystem offers Link, so a snapshot on one device hardlinks instead
// of copying.
func TestSnapshotHardlinksOnOS(t *testing.T) {
	o := fwCurve(t)
	root := t.TempDir() // snapshot beside the engine: same device
	e, err := Open(filepath.Join(root, "db"), o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 30; i++ {
		if err := e.Put(fwPoint(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.Snapshot(filepath.Join(root, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Linked == 0 || rep.Copied != 0 {
		t.Fatalf("snapshot on the same device: %+v, want hardlinks", rep)
	}
}

func TestRestoreRefusals(t *testing.T) {
	o := fwCurve(t)
	dir := t.TempDir()
	snapDir := filepath.Join(t.TempDir(), "snap")
	e, err := Open(dir, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 10; i++ {
		if err := e.Put(fwPoint(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}

	// An existing target is refused, not clobbered.
	occupied := t.TempDir()
	if _, err := Restore(snapDir, occupied, -1, o, snapOpts(nil)); err == nil {
		t.Fatal("restore into an existing directory succeeded")
	}

	// A snapshot of a different store is refused.
	other, err := core.NewOnion2D(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(snapDir, filepath.Join(t.TempDir(), "x"), -1, other, snapOpts(nil)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("restore with mismatched curve = %v, want ErrSnapshot", err)
	}

	// A directory without a manifest is an interrupted export: refused.
	if err := os.Remove(filepath.Join(snapDir, snapshotManifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(snapDir, filepath.Join(t.TempDir(), "y"), -1, o, snapOpts(nil)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("restore of uncommitted snapshot = %v, want ErrSnapshot", err)
	}

	// SnapshotSince against the now-manifestless parent is refused too.
	if _, err := e.SnapshotSince(filepath.Join(t.TempDir(), "z"), snapDir); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("incremental against uncommitted parent = %v, want ErrSnapshot", err)
	}
}

// TestWALRetention drives several flush cycles under each retention
// policy and checks the archive directory's population.
func TestWALRetention(t *testing.T) {
	o := fwCurve(t)
	archived := func(retention int) []uint64 {
		t.Helper()
		dir := t.TempDir()
		opts := snapOpts(nil)
		opts.WALRetention = retention
		e, err := Open(dir, o, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for cycle := 0; cycle < 4; cycle++ {
			for i := 0; i < 5; i++ {
				if err := e.Put(fwPoint(cycle*5+i), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		gens, err := archivedWALs(vfs.OS{}, archiveDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		return gens
	}
	if gens := archived(0); len(gens) != 4 {
		t.Fatalf("retention 0 kept %d WALs, want all 4", len(gens))
	}
	if gens := archived(2); len(gens) != 2 {
		t.Fatalf("retention 2 kept %d WALs, want 2", len(gens))
	} else if gens[0] >= gens[1] {
		t.Fatalf("retention kept out-of-order generations %v", gens)
	}
	if gens := archived(-1); len(gens) != 0 {
		t.Fatalf("retention -1 archived %d WALs, want none", len(gens))
	}
}

// TestArchiveInvisibleToOpen: archived WALs and quarantine entries are
// subdirectory contents, which the engine's directory scan must skip.
func TestArchiveInvisibleToOpen(t *testing.T) {
	o := fwCurve(t)
	dir := t.TempDir()
	e, err := Open(dir, o, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := e.Put(fwPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if gens, err := archivedWALs(vfs.OS{}, archiveDir(dir)); err != nil || len(gens) == 0 {
		t.Fatalf("archive after flush: gens %v, err %v", gens, err)
	}
	// Reopening must not replay the archived history on top of the
	// segments that already cover it.
	got := fwRecover(t, dir)
	if len(got) != 20 {
		t.Fatalf("reopen with populated archive: %d records, want 20", len(got))
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-000000000001.log")); err != nil && !errors.Is(err, fs.ErrNotExist) {
		t.Fatal(err)
	}
}

func TestSnapshotManifestRoundTrip(t *testing.T) {
	m := &snapManifest{
		curveName: "onion2d", dims: 2, side: 64, epoch: 3,
		parent:  "/tmp/with space/s2",
		archive: "/tmp/db/archive",
		segs: []snapSeg{
			{name: filepath.Base(segPath(".", 1, 2, 0)), size: 4096, recs: 17},
			{name: filepath.Base(segPath(".", 3, 3, 1)), size: 512, recs: 2},
		},
	}
	got, err := parseSnapshotManifest([]byte(m.body()))
	if err != nil {
		t.Fatal(err)
	}
	if got.curveName != m.curveName || got.dims != m.dims || got.side != m.side ||
		got.epoch != m.epoch || got.parent != m.parent || got.archive != m.archive ||
		len(got.segs) != len(m.segs) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	for i := range m.segs {
		if got.segs[i] != m.segs[i] {
			t.Fatalf("segment %d: %+v != %+v", i, got.segs[i], m.segs[i])
		}
	}
	for _, bad := range []string{
		"",
		"onion-snapshot v2\n",
		"onion-snapshot v1\ncurve onion2d\ndims 2\nside 64\nepoch 1\nparent -\narchive a\nsegments 1\n",
		"onion-snapshot v1\ncurve onion2d\ndims 2\nside 64\nepoch 1\nparent -\narchive a\nsegments 0\nstray line\n",
	} {
		if _, err := parseSnapshotManifest([]byte(bad)); !errors.Is(err, ErrSnapshot) {
			t.Fatalf("parse %q = %v, want ErrSnapshot", bad, err)
		}
	}
}
