package engine

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

// The fault matrix drives one fixed, fully deterministic workload —
// synchronous writes (acked means durable), explicit flushes, explicit
// compactions — against an Injecting filesystem, enumerates every
// injectable operation it performs, then re-runs it once per fault
// point with that operation failing (or crashing the filesystem) and
// asserts the recovery contract: a clean reopen succeeds, every
// acknowledged write is present, nothing beyond the attempted ops is
// present, and the logical query stats stay bit-identical with the page
// cache on and off.

const (
	fwSide       = 64
	fwOps        = 90
	fwFlushEvery = 25
)

type fwOp struct {
	pt  geom.Point
	pay uint64
	del bool
}

func fwCurve(t testing.TB) curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(fwSide)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func fwPoint(i int) geom.Point {
	return geom.Point{uint32(i*7) % fwSide, uint32(i*13+5) % fwSide}
}

// fwWorkload is the fixed op sequence: mostly puts (with some points
// recurring, so newest-wins resolution is exercised), and every ninth
// op a delete of a point written four ops earlier, so tombstones cross
// flush and compaction boundaries.
func fwWorkload() []fwOp {
	ops := make([]fwOp, 0, fwOps)
	for i := 0; i < fwOps; i++ {
		if i%9 == 8 {
			ops = append(ops, fwOp{pt: fwPoint(i - 4), del: true})
		} else {
			ops = append(ops, fwOp{pt: fwPoint(i), pay: uint64(1000 + i)})
		}
	}
	return ops
}

// fwStateAfter applies the first j ops and returns key → payload.
func fwStateAfter(c curve.Curve, ops []fwOp, j int) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, op := range ops[:j] {
		k := c.Index(op.pt)
		if op.del {
			delete(m, k)
		} else {
			m[k] = op.pay
		}
	}
	return m
}

func fwOpts(fsys vfs.FS) Options {
	return Options{PageBytes: 256, FlushEntries: -1, CompactFanout: 2,
		Shards: 2, SyncWrites: true, FS: fsys}
}

// fwRun drives the workload against dir through fsys and returns how
// many leading ops were acknowledged. Maintenance runs inline at fixed
// points (background is idle: FlushEntries < 0 never rings the
// doorbell), so the operation sequence is identical on every run until
// the injected fault fires. Once one write fails, every later one must
// fail too — the engine is ReadOnly or the filesystem is crashed —
// which is what makes "the acked ops" a prefix the matrix can verify
// against.
func fwRun(t *testing.T, dir string, fsys vfs.FS, ops []fwOp) int {
	t.Helper()
	e, err := Open(dir, fwCurve(t), fwOpts(fsys))
	if err != nil {
		return 0
	}
	acked, failed := 0, false
	for i, op := range ops {
		var werr error
		if op.del {
			werr = e.Delete(op.pt)
		} else {
			werr = e.Put(op.pt, op.pay)
		}
		if werr == nil {
			if failed {
				t.Fatalf("op %d acked after an earlier write failed", i)
			}
			acked++
		} else {
			failed = true
		}
		if (i+1)%fwFlushEvery == 0 {
			e.Flush()        //nolint:errcheck // fault runs flush into injected errors
			e.maybeCompact() //nolint:errcheck
		}
	}
	e.Close() //nolint:errcheck // a crashed filesystem cannot close cleanly
	return acked
}

// fwRecover reopens dir on the real filesystem — twice, with the page
// cache off and on — and returns the surviving record set, asserting
// the reopen works, the query works, both reopens agree, and the
// logical stats are bit-identical across cache states.
func fwRecover(t *testing.T, dir string) map[uint64]uint64 {
	t.Helper()
	o := fwCurve(t)
	full := o.Universe().Rect()
	open := func(cacheBytes int64) (map[uint64]uint64, Stats) {
		e, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1,
			CompactFanout: -1, Shards: 2, CacheBytes: cacheBytes})
		if err != nil {
			t.Fatalf("reopen after fault: %v", err)
		}
		defer e.Close()
		recs, st, err := e.Query(full)
		if err != nil {
			t.Fatalf("query after fault: %v", err)
		}
		m := make(map[uint64]uint64, len(recs))
		for _, r := range recs {
			m[o.Index(r.Point)] = r.Payload
		}
		return m, st
	}
	got, st0 := open(0)
	got2, st1 := open(1 << 20)
	if !maps.Equal(got, got2) {
		t.Fatalf("cached reopen disagrees: %d vs %d records", len(got), len(got2))
	}
	if st0.Stats != st1.Stats || st0.MemEntries != st1.MemEntries || st0.Segments != st1.Segments {
		t.Fatalf("logical stats differ across cache states:\n  off %+v\n  on  %+v", st0, st1)
	}
	return got
}

// fwCheck asserts the recovered state is consistent with the acked
// prefix: it must equal the state after some j ops with acked <= j <=
// len(ops) (an errored write has indeterminate durability, so any
// prefix covering every acked op is legal — but nothing else is).
func fwCheck(t *testing.T, c curve.Curve, ops []fwOp, acked int, got map[uint64]uint64) {
	t.Helper()
	for j := acked; j <= len(ops); j++ {
		if maps.Equal(got, fwStateAfter(c, ops, j)) {
			return
		}
	}
	t.Fatalf("recovered state matches no acked-consistent prefix: acked %d/%d ops, recovered %d records",
		acked, len(ops), len(got))
}

func TestFaultMatrix(t *testing.T) {
	ops := fwWorkload()
	o := fwCurve(t)

	// Every fault point class the storage stack owns: WAL appends and
	// fsyncs, segment builds (flush and compaction write through the
	// same tmp files), segment installs (rename + directory fsync), and
	// WAL/input retirement.
	filters := []vfs.Fault{
		{Op: vfs.OpWrite, Path: "wal-"},
		{Op: vfs.OpSync, Path: "wal-"},
		{Op: vfs.OpAny, Path: ".pst.tmp"},
		{Op: vfs.OpRename},
		{Op: vfs.OpSyncDir},
		{Op: vfs.OpRemove},
	}

	// Enumeration pass: count-only rules (N == 0 never fires) tally how
	// many operations each filter matches under the recorded workload.
	inj := vfs.NewInjecting(vfs.OS{})
	inj.SetFaults(filters...)
	enumDir := t.TempDir()
	if acked := fwRun(t, enumDir, inj, ops); acked != len(ops) {
		t.Fatalf("enumeration run dropped writes: %d/%d acked", acked, len(ops))
	}
	fwCheck(t, o, ops, len(ops), fwRecover(t, enumDir))

	maxPoints := int64(12)
	if testing.Short() {
		maxPoints = 4
	}
	for fi, f := range filters {
		total := inj.Matched(fi)
		if total == 0 {
			t.Fatalf("filter %+v matched no operations — the workload no longer exercises it", f)
		}
		stride := (total + maxPoints - 1) / maxPoints
		for _, kind := range []vfs.Kind{vfs.KindFail, vfs.KindCrash} {
			for n := int64(1); n <= total; n += stride {
				name := fmt.Sprintf("%s-%s-%s-n%d", f.Op, f.Path, kind, n)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					ifs := vfs.NewInjecting(vfs.OS{})
					ifs.SetFaults(vfs.Fault{Op: f.Op, Path: f.Path, N: n, Kind: kind})
					acked := fwRun(t, dir, ifs, ops)
					if len(ifs.Injected()) == 0 {
						t.Fatalf("fault point %d of %d never fired", n, total)
					}
					fwCheck(t, o, ops, acked, fwRecover(t, dir))
				})
			}
		}
	}
}

// waitHealth polls until the engine reaches at least want, returning
// the driving cause.
func waitHealth(t *testing.T, e *Engine, want Health) error {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h, cause := e.Health(); h >= want {
			return cause
		}
		time.Sleep(2 * time.Millisecond)
	}
	h, cause := e.Health()
	t.Fatalf("engine never reached %v: still %v (cause %v)", want, h, cause)
	return nil
}

func TestWALFsyncFailureTurnsReadOnly(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := fwCurve(t)
	e, err := Open(t.TempDir(), o, fwOpts(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() //nolint:errcheck
	for i := 0; i < 5; i++ {
		if err := e.Put(fwPoint(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetFaults(vfs.Fault{Op: vfs.OpSync, Path: "wal-", N: 1})
	err = e.Put(fwPoint(5), 5)
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, ErrWAL) || !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("failed-fsync write error = %v, want ErrReadOnly wrapping ErrWAL and the injected fault", err)
	}
	if h, cause := e.Health(); h != ReadOnly || cause == nil {
		t.Fatalf("health after fsync failure = %v (cause %v), want ReadOnly", h, cause)
	}
	// Sticky: the next write is rejected without touching the log.
	if err := e.Put(fwPoint(6), 6); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after ReadOnly = %v, want ErrReadOnly", err)
	}
	// Queries keep serving the acknowledged data.
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil || len(recs) != 5 {
		t.Fatalf("query on ReadOnly engine: %d records, err %v", len(recs), err)
	}
}

func TestENOSPCTurnsReadOnly(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := fwCurve(t)
	e, err := Open(t.TempDir(), o, fwOpts(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() //nolint:errcheck
	for i := 0; i < 5; i++ {
		if err := e.Put(fwPoint(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetFaults(vfs.Fault{Op: vfs.OpWrite, Path: "wal-", N: 1, Kind: vfs.KindNoSpace})
	err = e.Put(fwPoint(5), 5)
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC write error = %v, want ErrReadOnly wrapping ENOSPC", err)
	}
	if err := e.Put(fwPoint(6), 6); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after ENOSPC = %v, want ErrReadOnly", err)
	}
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil || len(recs) != 5 {
		t.Fatalf("query on full disk: %d records, err %v", len(recs), err)
	}
}

func TestFlushRetriesThenReadOnly(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := fwCurve(t)
	dir := t.TempDir()
	opts := Options{PageBytes: 256, FlushEntries: 8, CompactFanout: -1, Shards: 2, FS: inj,
		retryBase: time.Millisecond, retryCap: 4 * time.Millisecond, retryAttempts: 3}
	e, err := Open(dir, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every segment build fails: the background flush retries with
	// backoff, runs out of attempts, and the engine goes ReadOnly —
	// acked data is stranded in memory and further writes only grow the
	// unflushable debt.
	inj.SetFaults(vfs.Fault{Path: ".pst.tmp", N: 1, Repeat: true})
	for i := 0; i < 8; i++ {
		if err := e.Put(fwPoint(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cause := waitHealth(t, e, ReadOnly)
	if !errors.Is(cause, vfs.ErrInjected) {
		t.Fatalf("degradation cause = %v, want the injected fault", cause)
	}
	if err := e.BackgroundErr(); err == nil {
		t.Fatal("BackgroundErr = nil after exhausted flush retries")
	}
	if err := e.Put(fwPoint(20), 20); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after flush exhaustion = %v, want ErrReadOnly", err)
	}
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil || len(recs) != 8 {
		t.Fatalf("query on ReadOnly engine: %d records, err %v", len(recs), err)
	}
	// The fault clears (space freed); Close flushes the stranded
	// memtables and nothing acked is lost.
	inj.SetFaults()
	if err := e.Close(); err != nil {
		t.Fatalf("close after fault cleared: %v", err)
	}
	e2, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs, _, err = e2.Query(o.Universe().Rect())
	if err != nil || len(recs) != 8 {
		t.Fatalf("reopen after recovery: %d records, err %v", len(recs), err)
	}
}

func TestCompactionFailureDegrades(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := fwCurve(t)
	opts := Options{PageBytes: 256, FlushEntries: -1, CompactFanout: 2, Shards: 2, FS: inj,
		retryBase: time.Millisecond, retryCap: 4 * time.Millisecond, retryAttempts: 2}
	e, err := Open(t.TempDir(), o, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() //nolint:errcheck
	for phase := 0; phase < 2; phase++ {
		for i := 0; i < 20; i++ {
			if err := e.Put(fwPoint(phase*20+i), uint64(phase*20+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	inj.SetFaults(vfs.Fault{Path: ".pst.tmp", N: 1, Repeat: true})
	if err := e.retryBg(e.maybeCompact, Degraded); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("compaction under injection = %v, want the injected fault", err)
	}
	if h, cause := e.Health(); h != Degraded || !errors.Is(cause, vfs.ErrInjected) {
		t.Fatalf("health = %v (cause %v), want Degraded", h, cause)
	}
	// Degraded keeps full service: writes and queries both work — the
	// engine is just getting wider, not less durable.
	if err := e.Put(fwPoint(50), 50); err != nil {
		t.Fatalf("write on Degraded engine: %v", err)
	}
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatalf("query on Degraded engine: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("degraded query returned nothing")
	}
	// Health is monotonic: a later successful compaction does not heal.
	inj.SetFaults()
	if err := e.maybeCompact(); err != nil {
		t.Fatal(err)
	}
	if h, _ := e.Health(); h != Degraded {
		t.Fatalf("health after recovery = %v, want still Degraded", h)
	}
}

// quarantineFixture builds an engine with two disjoint flushed segments
// (row y=0 and row y=1, 60 points each) and corrupts a byte in the
// middle of the first segment's page data.
func quarantineFixture(t *testing.T, dir string) (*Engine, curve.Curve) {
	t.Helper()
	o := fwCurve(t)
	e, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for row := uint32(0); row < 2; row++ {
		for x := uint32(0); x < 60; x++ {
			if err := e.Put(geom.Point{x, row}, uint64(row*1000+x)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.segs) != 2 {
		t.Fatalf("fixture has %d segments, want 2", len(e.segs))
	}
	victim := e.segs[0].path
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The middle of the file is deep inside the page data region (the
	// header, index and footer are a small fraction of 60 records).
	var b [1]byte
	off := fi.Size() / 2
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	return e, o
}

// rowRecords counts records per row in a full-scan result.
func rowRecords(recs []Record) map[uint32]int {
	rows := make(map[uint32]int)
	for _, r := range recs {
		rows[r.Point[1]]++
	}
	return rows
}

func TestVerifyQuarantinesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	e, o := quarantineFixture(t, dir)
	defer e.Close() //nolint:errcheck

	rep, err := e.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.SegmentsChecked != 2 || len(rep.Quarantined) != 1 {
		t.Fatalf("report %+v, want 2 checked / 1 quarantined", rep)
	}
	q := rep.Quarantined[0]
	if q.Empty || q.Lo > q.Hi || q.Records != 60 || !errors.Is(q.Cause, ErrCorrupt) {
		t.Fatalf("quarantine report %+v", q)
	}
	if filepath.Base(filepath.Dir(q.Path)) != "quarantine" {
		t.Fatalf("quarantined file at %s, want under quarantine/", q.Path)
	}
	if _, err := os.Stat(q.Path); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if h, cause := e.Health(); h != Degraded || !errors.Is(cause, ErrCorrupt) {
		t.Fatalf("health = %v (cause %v), want Degraded with the corruption cause", h, cause)
	}

	// The remaining segment keeps serving: row 1 intact, row 0 gone.
	recs, _, err := e.Query(o.Universe().Rect())
	if err != nil {
		t.Fatalf("query after quarantine: %v", err)
	}
	if rows := rowRecords(recs); rows[0] != 0 || rows[1] != 60 {
		t.Fatalf("rows after quarantine %v, want row 1 only", rows)
	}

	// A reopen must not resurrect the quarantined file.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs, _, err = e2.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if rows := rowRecords(recs); rows[0] != 0 || rows[1] != 60 {
		t.Fatalf("rows after reopen %v, want row 1 only", rows)
	}
}

func TestQueryTriggersBackgroundScrub(t *testing.T) {
	e, o := quarantineFixture(t, t.TempDir())
	defer e.Close() //nolint:errcheck

	// The first scan trips over the damaged page and reports it...
	_, _, err := e.Query(o.Universe().Rect())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("query over corrupt segment = %v, want ErrCorrupt", err)
	}
	// ...which queues a background Verify that quarantines the segment.
	cause := waitHealth(t, e, Degraded)
	if !errors.Is(cause, ErrCorrupt) {
		t.Fatalf("degradation cause = %v, want corruption", cause)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		recs, _, err := e.Query(o.Universe().Rect())
		if err == nil {
			if rows := rowRecords(recs); rows[0] != 0 || rows[1] != 60 {
				t.Fatalf("rows after scrub %v, want row 1 only", rows)
			}
			break
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("query while scrub pending = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("query never recovered after background scrub")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestQueryRangesContextCanceled(t *testing.T) {
	o := fwCurve(t)
	e, err := Open(t.TempDir(), o, Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Put(fwPoint(1), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = e.QueryRangesAppendContext(ctx, nil, []curve.KeyRange{{Lo: 0, Hi: 100}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query = %v, want context.Canceled", err)
	}
	// The background context path still works.
	if _, _, err := e.QueryRanges([]curve.KeyRange{{Lo: 0, Hi: 100}}); err != nil {
		t.Fatal(err)
	}
}
