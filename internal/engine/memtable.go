package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/partition"
)

const maxSkipLevel = 16

// version is one write to a cell: a payload or a tombstone, stamped with
// the engine-wide sequence number that orders it.
type version struct {
	seq     uint64
	payload uint64
	del     bool
}

// memNode is a skiplist node holding every version of one curve key.
// Nodes are never removed and version slices only grow, so readers that
// hold a node may drop and retake the shard lock between steps.
type memNode struct {
	key  uint64
	pt   geom.Point
	vers []version // ascending seq
	next []*memNode
}

// memShard is one skiplist over a contiguous band of the key space.
// Writers take mu; readers take it as RLock for O(1) windows per step —
// snapshot consistency comes from sequence filtering, not from holding
// the lock across a scan.
type memShard struct {
	mu   sync.RWMutex
	head *memNode
	rng  *rand.Rand
}

// memtable is the mutable, curve-key-ordered write buffer. The key space
// is split into contiguous bands by an internal/partition Uniform
// partitioner — one shard per band — so concurrent Put/Delete traffic on
// different regions of space contends on different locks while a range
// scan still sees globally sorted keys by walking shards in order.
type memtable struct {
	part    *partition.Partitioner
	shards  []memShard
	gen     uint64       // file generation of the WAL backing this table
	entries atomic.Int64 // total versions ever inserted
}

func newMemtable(c curve.Curve, shards int, gen uint64) (*memtable, error) {
	part, err := partition.Uniform(c, shards)
	if err != nil {
		return nil, err
	}
	m := &memtable{part: part, shards: make([]memShard, shards), gen: gen}
	for i := range m.shards {
		m.shards[i].head = &memNode{next: make([]*memNode, maxSkipLevel)}
		m.shards[i].rng = rand.New(rand.NewSource(int64(gen)<<16 + int64(i) + 1))
	}
	return m, nil
}

// put inserts one version. pt is cloned; callers may reuse it.
func (m *memtable) put(key uint64, pt geom.Point, payload uint64, seq uint64, del bool) {
	sh := &m.shards[m.part.Of(key)]
	sh.mu.Lock()
	var prev [maxSkipLevel]*memNode
	n := sh.head
	for lvl := maxSkipLevel - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].key < key {
			n = n.next[lvl]
		}
		prev[lvl] = n
	}
	if tgt := n.next[0]; tgt != nil && tgt.key == key {
		// Sequence numbers are assigned before the shard lock is taken,
		// so two racing writers can arrive here out of order; keep the
		// slice ascending (resolve and flushEntries rely on it). The
		// common case is a plain append.
		i := len(tgt.vers)
		for i > 0 && tgt.vers[i-1].seq > seq {
			i--
		}
		tgt.vers = append(tgt.vers, version{})
		copy(tgt.vers[i+1:], tgt.vers[i:])
		tgt.vers[i] = version{seq: seq, payload: payload, del: del}
	} else {
		h := 1
		for h < maxSkipLevel && sh.rng.Intn(2) == 0 {
			h++
		}
		nn := &memNode{
			key:  key,
			pt:   pt.Clone(),
			vers: []version{{seq: seq, payload: payload, del: del}},
			next: make([]*memNode, h),
		}
		for lvl := 0; lvl < h; lvl++ {
			nn.next[lvl] = prev[lvl].next[lvl]
			prev[lvl].next[lvl] = nn
		}
	}
	sh.mu.Unlock()
	m.entries.Add(1)
}

// resolve returns the newest version visible at snapshot snap. Versions
// are appended in ascending seq order (under the shard's exclusive lock,
// while every reader holds at least the read lock), so scan from the tail.
func resolve(vers []version, snap uint64) (version, bool) {
	for i := len(vers) - 1; i >= 0; i-- {
		if vers[i].seq <= snap {
			return vers[i], true
		}
	}
	return version{}, false
}

// memEntry is one resolved memtable record surfaced to the merge.
type memEntry struct {
	key     uint64
	pt      geom.Point
	payload uint64
	del     bool
}

// memIter streams the resolved entries of one key range in ascending key
// order at a fixed snapshot. The shard lock is held only inside next().
type memIter struct {
	m        *memtable
	snap     uint64
	lo, hi   uint64
	shard    int // current shard
	endShard int
	cur      *memNode // last visited node in the current shard, nil = before first
	head     memEntry
	ok       bool
}

// seek positions an iterator over [lo, hi] and loads its first entry.
func (m *memtable) seek(kr curve.KeyRange, snap uint64) *memIter {
	it := &memIter{}
	it.init(m, kr, snap)
	return it
}

// init (re)positions an existing iterator over [lo, hi] at snapshot snap
// and loads its first entry — the reusable form the pooled query state
// drives, one reset per (range, memtable) pass with no allocation.
func (it *memIter) init(m *memtable, kr curve.KeyRange, snap uint64) {
	*it = memIter{
		m:        m,
		snap:     snap,
		lo:       kr.Lo,
		hi:       kr.Hi,
		shard:    m.part.Of(kr.Lo),
		endShard: m.part.Of(kr.Hi),
	}
	it.advance()
}

// peek returns the iterator's current entry.
func (it *memIter) peek() (memEntry, bool) { return it.head, it.ok }

// advance loads the next visible entry with key in [lo, hi], walking
// shards in key-band order.
func (it *memIter) advance() {
	for it.shard <= it.endShard {
		sh := &it.m.shards[it.shard]
		sh.mu.RLock()
		n := it.cur
		if n == nil {
			// First entry of this shard: skiplist search for lo.
			n = sh.head
			for lvl := maxSkipLevel - 1; lvl >= 0; lvl-- {
				for n.next[lvl] != nil && n.next[lvl].key < it.lo {
					n = n.next[lvl]
				}
			}
		}
		for {
			n = n.next[0]
			if n == nil || n.key > it.hi {
				sh.mu.RUnlock()
				it.cur = nil
				it.shard++
				n = nil
				break
			}
			it.cur = n
			if v, ok := resolve(n.vers, it.snap); ok {
				it.head = memEntry{key: n.key, pt: n.pt, payload: v.payload, del: v.del}
				it.ok = true
				sh.mu.RUnlock()
				return
			}
		}
	}
	it.ok = false
}

// flushEntries returns every key's newest version in ascending key order —
// the sorted run a flush writes out. Tombstones are included (they must
// shadow older segments until compaction drops them at the bottom level).
// The memtable must be frozen (no concurrent writers) when this runs.
func (m *memtable) flushEntries() []memEntry {
	var out []memEntry
	for s := range m.shards {
		for n := m.shards[s].head.next[0]; n != nil; n = n.next[0] {
			v := n.vers[len(n.vers)-1]
			out = append(out, memEntry{key: n.key, pt: n.pt, payload: v.payload, del: v.del})
		}
	}
	return out
}
