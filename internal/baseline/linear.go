// Package baseline implements the space filling curves the paper compares
// the onion curve against or discusses: the Hilbert curve, the Z (Morton)
// curve, the Gray-code curve, and the row-major / column-major / snake
// orders of Section V-C.
package baseline

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// linearKind distinguishes the three lexicographic-style curves.
type linearKind int

const (
	kindRowMajor linearKind = iota
	kindColMajor
	kindSnake
)

// Linear is a row-major, column-major or snake (boustrophedon) order over a
// universe of any side length. Row-major and column-major are discontinuous
// (the curve jumps when a row ends); the snake order is continuous.
type Linear struct {
	curve.Base
	kind linearKind
	// pow[i] = side^i, precomputed strides.
	pow []uint64
}

// NewRowMajor returns the row-major order: dimension 0 varies fastest. In
// two dimensions cell (x, y) gets key y*side + x, scanning row by row.
func NewRowMajor(dims int, side uint32) (*Linear, error) {
	return newLinear(dims, side, kindRowMajor, "rowmajor", false)
}

// NewColumnMajor returns the column-major order: dimension d-1 varies
// fastest. In two dimensions cell (x, y) gets key x*side + y.
func NewColumnMajor(dims int, side uint32) (*Linear, error) {
	return newLinear(dims, side, kindColMajor, "colmajor", false)
}

// NewSnake returns the boustrophedon order: row-major but with alternate
// rows (recursively, alternate hyperplanes) reversed so that consecutive
// cells are always grid neighbors. It is the simplest continuous SFC and a
// useful control for the continuous-curve lower bounds of Theorem 2.
func NewSnake(dims int, side uint32) (*Linear, error) {
	return newLinear(dims, side, kindSnake, "snake", true)
}

func newLinear(dims int, side uint32, kind linearKind, name string, cont bool) (*Linear, error) {
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	pow := make([]uint64, dims+1)
	pow[0] = 1
	for i := 1; i <= dims; i++ {
		pow[i] = pow[i-1] * uint64(side)
	}
	return &Linear{
		Base: curve.Base{U: u, Id: name, Cont: cont},
		kind: kind,
		pow:  pow,
	}, nil
}

// Index implements curve.Curve.
func (l *Linear) Index(p geom.Point) uint64 {
	l.CheckPoint(p)
	d := l.U.Dims()
	switch l.kind {
	case kindRowMajor:
		var h uint64
		for i := d - 1; i >= 0; i-- {
			h = h*uint64(l.U.Side()) + uint64(p[i])
		}
		return h
	case kindColMajor:
		var h uint64
		for i := 0; i < d; i++ {
			h = h*uint64(l.U.Side()) + uint64(p[i])
		}
		return h
	default: // snake
		return l.snakeIndex(p, d)
	}
}

// snakeIndex computes the boustrophedon key over the first dims dimensions:
// the highest dimension selects a hyperplane; odd hyperplanes traverse their
// (dims-1)-dimensional snake in reverse.
func (l *Linear) snakeIndex(p geom.Point, dims int) uint64 {
	if dims == 1 {
		return uint64(p[0])
	}
	v := p[dims-1]
	sub := l.snakeIndex(p, dims-1)
	if v&1 == 1 {
		sub = l.pow[dims-1] - 1 - sub
	}
	return uint64(v)*l.pow[dims-1] + sub
}

// Coords implements curve.Curve.
func (l *Linear) Coords(h uint64, dst geom.Point) geom.Point {
	l.CheckIndex(h)
	d := l.U.Dims()
	p := curve.Dst(dst, d)
	side := uint64(l.U.Side())
	switch l.kind {
	case kindRowMajor:
		for i := 0; i < d; i++ {
			p[i] = uint32(h % side)
			h /= side
		}
	case kindColMajor:
		for i := d - 1; i >= 0; i-- {
			p[i] = uint32(h % side)
			h /= side
		}
	default:
		l.snakeCoords(h, p, d)
	}
	return p
}

func (l *Linear) snakeCoords(h uint64, p geom.Point, dims int) {
	if dims == 1 {
		p[0] = uint32(h)
		return
	}
	v := h / l.pow[dims-1]
	r := h % l.pow[dims-1]
	if v&1 == 1 {
		r = l.pow[dims-1] - 1 - r
	}
	p[dims-1] = uint32(v)
	l.snakeCoords(r, p, dims-1)
}

var (
	_ curve.Curve = (*Linear)(nil)
)
