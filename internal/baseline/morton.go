package baseline

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// Morton is the Z curve of Orenstein and Merrett: the key of a cell is the
// bit-interleaving of its coordinates. It requires a power-of-two side and
// is not continuous (consecutive cells may be arbitrarily far apart in the
// grid), but its recursive quadrant structure admits efficient range
// decomposition (see internal/ranges).
type Morton struct {
	curve.Base
	order int
}

// NewMorton constructs the Z curve over a dims-dimensional universe whose
// side must be a power of two.
func NewMorton(dims int, side uint32) (*Morton, error) {
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("morton: %w", err)
	}
	order, err := curve.PowerOfTwoOrder(side)
	if err != nil {
		return nil, fmt.Errorf("morton: %w", err)
	}
	return &Morton{Base: curve.Base{U: u, Id: "zcurve", Cont: false}, order: order}, nil
}

// Order returns the number of bits per dimension.
func (m *Morton) Order() int { return m.order }

// Index implements curve.Curve.
func (m *Morton) Index(p geom.Point) uint64 {
	m.CheckPoint(p)
	return curve.Interleave(p, m.order, m.U.Dims())
}

// Coords implements curve.Curve.
func (m *Morton) Coords(h uint64, dst geom.Point) geom.Point {
	m.CheckIndex(h)
	p := curve.Dst(dst, m.U.Dims())
	curve.Deinterleave(h, m.order, m.U.Dims(), p)
	return p
}

// Gray is the Gray-code curve suggested by Faloutsos for partial-match and
// range queries: cell coordinates are bit-interleaved and the result is
// interpreted as a binary-reflected Gray code; the key is the rank of that
// code. Consecutive cells differ in exactly one interleaved bit (a single
// coordinate bit), which improves over the Z curve but does not make the
// curve continuous in the grid sense.
type Gray struct {
	curve.Base
	order int
}

// NewGray constructs the Gray-code curve over a power-of-two universe.
func NewGray(dims int, side uint32) (*Gray, error) {
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("gray: %w", err)
	}
	order, err := curve.PowerOfTwoOrder(side)
	if err != nil {
		return nil, fmt.Errorf("gray: %w", err)
	}
	return &Gray{Base: curve.Base{U: u, Id: "graycode", Cont: false}, order: order}, nil
}

// Order returns the number of bits per dimension.
func (g *Gray) Order() int { return g.order }

// Index implements curve.Curve.
func (g *Gray) Index(p geom.Point) uint64 {
	g.CheckPoint(p)
	return curve.GrayInverse(curve.Interleave(p, g.order, g.U.Dims()))
}

// Coords implements curve.Curve.
func (g *Gray) Coords(h uint64, dst geom.Point) geom.Point {
	g.CheckIndex(h)
	p := curve.Dst(dst, g.U.Dims())
	curve.Deinterleave(curve.Gray(h), g.order, g.U.Dims(), p)
	return p
}

var (
	_ curve.Curve = (*Morton)(nil)
	_ curve.Curve = (*Gray)(nil)
)
