package baseline

import (
	"fmt"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// Hilbert is the d-dimensional Hilbert curve, the paper's principal
// baseline ("the gold standard of SFCs", Section I). The implementation
// uses Skilling's transpose algorithm ("Programming the Hilbert curve",
// AIP Conf. Proc. 707, 2004), which provides both directions of the mapping
// for any number of dimensions d >= 2 and any order b (side = 2^b).
//
// The Hilbert curve is continuous (Definition 1): consecutive cells along
// the curve are grid neighbors, a property the test suite verifies
// exhaustively on small universes and probabilistically on large ones.
type Hilbert struct {
	curve.Base
	order int

	// Prefix-tree planner state (internal/baseline/planner.go), derived
	// lazily at most once per instance so query planning is lock-free in
	// steady state.
	treeOnce sync.Once
	tree     *hilbertTree
	treeErr  error
}

// NewHilbert constructs a Hilbert curve over a dims-dimensional universe
// whose side must be a power of two. dims must be at least 2.
func NewHilbert(dims int, side uint32) (*Hilbert, error) {
	if dims < 2 {
		return nil, fmt.Errorf("hilbert: %w: need dims >= 2, got %d", curve.ErrSideUnsupported, dims)
	}
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("hilbert: %w", err)
	}
	order, err := curve.PowerOfTwoOrder(side)
	if err != nil {
		return nil, fmt.Errorf("hilbert: %w", err)
	}
	if order == 0 {
		// A 1-cell universe: degenerate but valid.
		order = 0
	}
	return &Hilbert{Base: curve.Base{U: u, Id: "hilbert", Cont: true}, order: order}, nil
}

// Order returns the number of bits per dimension.
func (hc *Hilbert) Order() int { return hc.order }

// Index implements curve.Curve.
func (hc *Hilbert) Index(p geom.Point) uint64 {
	hc.CheckPoint(p)
	if hc.order == 0 {
		return 0
	}
	d := hc.U.Dims()
	var buf [8]uint32
	X := buf[:d]
	copy(X, p)
	axesToTranspose(X, hc.order, d)
	return packTranspose(X, hc.order, d)
}

// Coords implements curve.Curve.
func (hc *Hilbert) Coords(h uint64, dst geom.Point) geom.Point {
	hc.CheckIndex(h)
	d := hc.U.Dims()
	p := curve.Dst(dst, d)
	if hc.order == 0 {
		for i := range p {
			p[i] = 0
		}
		return p
	}
	unpackTranspose(h, hc.order, d, p)
	transposeToAxes(p, hc.order, d)
	return p
}

// axesToTranspose converts grid coordinates into the Hilbert transpose form
// in place (Skilling 2004).
func axesToTranspose(X []uint32, b, n int) {
	M := uint32(1) << uint(b-1)
	// Inverse undo of the excess work.
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < n; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P // invert low bits of X[0]
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		X[i] ^= X[i-1]
	}
	t := uint32(0)
	for Q := M; Q > 1; Q >>= 1 {
		if X[n-1]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < n; i++ {
		X[i] ^= t
	}
}

// transposeToAxes converts the Hilbert transpose form back into grid
// coordinates in place (Skilling 2004).
func transposeToAxes(X []uint32, b, n int) {
	N := uint32(2) << uint(b-1)
	// Gray decode by H ^ (H/2).
	t := X[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for Q := uint32(2); Q != N; Q <<= 1 {
		P := Q - 1
		for i := n - 1; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
}

// packTranspose assembles the Hilbert key from the transpose form: the key
// read from most significant bit downward is X[0] bit b-1, X[1] bit b-1,
// ..., X[n-1] bit b-1, X[0] bit b-2, and so on.
func packTranspose(X []uint32, b, n int) uint64 {
	var h uint64
	for g := b - 1; g >= 0; g-- {
		for i := 0; i < n; i++ {
			h = h<<1 | uint64((X[i]>>uint(g))&1)
		}
	}
	return h
}

// unpackTranspose splits a Hilbert key into the transpose form; inverse of
// packTranspose.
func unpackTranspose(h uint64, b, n int, X []uint32) {
	for i := 0; i < n; i++ {
		X[i] = 0
	}
	pos := uint(b*n - 1)
	for g := b - 1; g >= 0; g-- {
		for i := 0; i < n; i++ {
			bit := (h >> pos) & 1
			X[i] |= uint32(bit) << uint(g)
			if pos == 0 {
				return
			}
			pos--
		}
	}
}

var _ curve.Curve = (*Hilbert)(nil)
