package baseline

import (
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
)

// walkerCurves builds one instance of every baseline curve, including the
// generic-walker Peano, across power-of-two, odd and degenerate sides.
func walkerCurves(t *testing.T) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	mk := func(c curve.Curve, err error) {
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	for _, side := range []uint32{1, 2, 4, 16} {
		mk(NewHilbert(2, side))
		mk(NewMorton(2, side))
		mk(NewGray(2, side))
	}
	mk(NewHilbert(3, 8))
	mk(NewMorton(3, 8))
	mk(NewGray(3, 8))
	mk(NewMorton(4, 4))
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 7}, {2, 1}, {2, 5}, {2, 8}, {3, 4}, {3, 5}, {4, 3}} {
		mk(NewRowMajor(tc.dims, tc.side))
		mk(NewColumnMajor(tc.dims, tc.side))
		mk(NewSnake(tc.dims, tc.side))
	}
	mk(NewPeano(2, 9))
	mk(NewPeano(3, 3))
	return cs
}

func TestWalkerMatchesScalar(t *testing.T) {
	for _, c := range walkerCurves(t) {
		curvetest.CheckWalker(t, c)
	}
}

func TestWalkerSeeded(t *testing.T) {
	for _, c := range walkerCurves(t) {
		curvetest.CheckWalkerSeeded(t, c, 50, 64, 3)
	}
	big, err := NewHilbert(2, 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, big, 100, 128, 4)
	bigZ, err := NewMorton(3, 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, bigZ, 100, 128, 5)
	bigS, err := NewSnake(3, 99)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, bigS, 100, 128, 6)
}

func TestBatchMatchesScalar(t *testing.T) {
	for _, c := range walkerCurves(t) {
		curvetest.CheckBatch(t, c, 200, 12)
	}
}

func TestLinearRuns(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 6}, {2, 1}, {2, 4}, {2, 7}, {3, 3}, {3, 4}} {
		r, err := NewRowMajor(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckRuns(t, r, 21)
		c, err := NewColumnMajor(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckRuns(t, c, 22)
		s, err := NewSnake(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckRuns(t, s, 23)
	}
}
