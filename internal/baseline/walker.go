package baseline

// Incremental walkers for the baseline curves. Morton and Gray keys change
// in O(1) amortized bits per step, so their walkers fold exactly the
// flipped bits into the coordinates; the Hilbert walker updates the
// Skilling transpose form incrementally and pays only the axes transform
// per step; the linear orders step an odometer and additionally expose
// their rows as straight runs for the run-based analytics.

import (
	"math/bits"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// mortonWalker folds the bits flipped by each key increment into the
// deinterleaved coordinates: key bit j*dims+i is bit j of dimension i.
type mortonWalker struct {
	h, n    uint64
	started bool
	d       int
	p       geom.Point
}

// Walk implements curve.WalkerProvider.
func (m *Morton) Walk(start uint64) curve.Walker {
	n := m.U.Size()
	if start > n {
		m.CheckIndex(start)
	}
	w := &mortonWalker{h: start, n: n, d: m.U.Dims(), p: make(geom.Point, m.U.Dims())}
	if start < n {
		m.Coords(start, w.p)
	}
	return w
}

func (w *mortonWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	if w.started {
		// Incrementing h-1 flips its trailing ones plus the next zero.
		m := (w.h - 1) ^ w.h
		for m != 0 {
			pos := bits.TrailingZeros64(m)
			m &= m - 1
			w.p[pos%w.d] ^= 1 << uint(pos/w.d)
		}
	} else {
		w.started = true
	}
	h := w.h
	w.h++
	return h, w.p, true
}

// grayWalker exploits that consecutive Gray codes differ in exactly one
// bit: bit TrailingZeros(h) of the interleaved code flips between h-1
// and h.
type grayWalker struct {
	h, n    uint64
	started bool
	d       int
	p       geom.Point
}

// Walk implements curve.WalkerProvider.
func (g *Gray) Walk(start uint64) curve.Walker {
	n := g.U.Size()
	if start > n {
		g.CheckIndex(start)
	}
	w := &grayWalker{h: start, n: n, d: g.U.Dims(), p: make(geom.Point, g.U.Dims())}
	if start < n {
		g.Coords(start, w.p)
	}
	return w
}

func (w *grayWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	if w.started {
		pos := bits.TrailingZeros64(w.h)
		w.p[pos%w.d] ^= 1 << uint(pos/w.d)
	} else {
		w.started = true
	}
	h := w.h
	w.h++
	return h, w.p, true
}

// hilbertWalker keeps the Skilling transpose form of the current key and
// updates it incrementally (amortized O(1) flipped bits per increment);
// each step then pays one transposeToAxes pass, with no per-step
// allocation or key unpacking.
type hilbertWalker struct {
	h, n    uint64
	started bool
	d, b    int
	X       []uint32 // transpose form of the current key
	p       geom.Point
}

// Walk implements curve.WalkerProvider.
func (hc *Hilbert) Walk(start uint64) curve.Walker {
	n := hc.U.Size()
	if start > n {
		hc.CheckIndex(start)
	}
	d := hc.U.Dims()
	w := &hilbertWalker{h: start, n: n, d: d, b: hc.order,
		X: make([]uint32, d), p: make(geom.Point, d)}
	if start < n && w.b > 0 {
		unpackTranspose(start, w.b, d, w.X)
	}
	return w
}

func (w *hilbertWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	if w.started && w.b > 0 {
		// Key bit pos lives at transpose word q%d, bit b-1-q/d, where
		// q = b*d-1-pos is the bit's rank from the top (see packTranspose).
		m := (w.h - 1) ^ w.h
		bn := w.b * w.d
		for m != 0 {
			pos := bits.TrailingZeros64(m)
			m &= m - 1
			q := bn - 1 - pos
			w.X[q%w.d] ^= 1 << uint(w.b-1-q/w.d)
		}
	} else {
		w.started = true
	}
	h := w.h
	w.h++
	if w.b == 0 {
		for i := range w.p {
			w.p[i] = 0
		}
		return h, w.p, true
	}
	// The axes transform runs in place directly on the output point.
	copy(w.p, w.X)
	transposeToAxes(w.p, w.b, w.d)
	return h, w.p, true
}

// linearWalker is the odometer of the row-major, column-major and snake
// orders, with per-dimension direction flags for the snake.
type linearWalker struct {
	h, n    uint64
	started bool
	kind    linearKind
	side    uint32
	d       int
	p       geom.Point
	dirUp   []bool // snake only
}

// Walk implements curve.WalkerProvider.
func (l *Linear) Walk(start uint64) curve.Walker {
	n := l.U.Size()
	if start > n {
		l.CheckIndex(start)
	}
	d := l.U.Dims()
	w := &linearWalker{h: start, n: n, kind: l.kind, side: l.U.Side(), d: d, p: make(geom.Point, d)}
	if l.kind == kindSnake {
		w.dirUp = make([]bool, d)
	}
	if start < n {
		l.Coords(start, w.p)
		if l.kind == kindSnake {
			// Dimension i increases exactly when the sum of the higher
			// coordinates is even (each odd higher coordinate reverses
			// the boustrophedon below it).
			for i := 0; i < d; i++ {
				sum := uint32(0)
				for j := i + 1; j < d; j++ {
					sum += w.p[j]
				}
				w.dirUp[i] = sum%2 == 0
			}
		}
	}
	return w
}

func (w *linearWalker) advance() {
	switch w.kind {
	case kindRowMajor:
		for i := 0; i < w.d; i++ {
			if w.p[i]+1 < w.side {
				w.p[i]++
				return
			}
			w.p[i] = 0
		}
	case kindColMajor:
		for i := w.d - 1; i >= 0; i-- {
			if w.p[i]+1 < w.side {
				w.p[i]++
				return
			}
			w.p[i] = 0
		}
	default: // snake
		for i := 0; i < w.d; i++ {
			if w.dirUp[i] {
				if w.p[i]+1 < w.side {
					w.p[i]++
					return
				}
			} else {
				if w.p[i] > 0 {
					w.p[i]--
					return
				}
			}
			w.dirUp[i] = !w.dirUp[i]
		}
	}
}

func (w *linearWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	if w.started {
		w.advance()
	} else {
		w.started = true
	}
	h := w.h
	w.h++
	return h, w.p, true
}

// VisitRuns implements curve.RunVisitor for all three linear orders: each
// row of the fastest dimension is one straight run; the step between rows
// goes through the edge callback (a jump for row/column-major, a neighbor
// move for the snake — both handled exactly by the caller).
func (l *Linear) VisitRuns(lo, hi uint64, run func(start geom.Point, dim, dir int, edges uint64), edge func(a, b geom.Point)) {
	n := l.U.Size()
	if hi >= n {
		hi = n - 1
	}
	side := uint64(l.U.Side())
	d := l.U.Dims()
	fast := 0
	if l.kind == kindColMajor {
		fast = d - 1
	}
	if side == 1 {
		// Degenerate rows: every edge is a between-row step.
		a := make(geom.Point, d)
		b := make(geom.Point, d)
		for h := lo; h < hi; h++ {
			l.Coords(h, a)
			l.Coords(h+1, b)
			edge(a, b)
		}
		return
	}
	a := make(geom.Point, d)
	b := make(geom.Point, d)
	h := lo
	for h < hi {
		row := h / side
		last := row*side + side - 1 // last key of this row
		runEnd := last
		if runEnd > hi {
			runEnd = hi
		}
		if h < runEnd {
			l.Coords(h, a)
			dir := +1
			if l.kind == kindSnake {
				sum := uint32(0)
				for j := 0; j < d; j++ {
					if j != fast {
						sum += a[j]
					}
				}
				if sum%2 == 1 {
					dir = -1
				}
			}
			run(a, fast, dir, runEnd-h)
		}
		if last < hi {
			l.Coords(last, a)
			l.Coords(last+1, b)
			edge(a, b)
		}
		h = last + 1
	}
}

var (
	_ curve.WalkerProvider = (*Morton)(nil)
	_ curve.WalkerProvider = (*Gray)(nil)
	_ curve.WalkerProvider = (*Hilbert)(nil)
	_ curve.WalkerProvider = (*Linear)(nil)
	_ curve.RunVisitor     = (*Linear)(nil)
)
