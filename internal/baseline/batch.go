package baseline

// Batch fast paths for the baseline curves: the loops share validation and
// scratch buffers across cells and never allocate.

import (
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// IndexBatch implements curve.IndexBatcher.
func (hc *Hilbert) IndexBatch(pts []geom.Point, dst []uint64) {
	d := hc.U.Dims()
	if hc.order == 0 {
		for i, p := range pts {
			hc.CheckPoint(p)
			dst[i] = 0
		}
		return
	}
	var buf [8]uint32
	X := buf[:d]
	for i, p := range pts {
		hc.CheckPoint(p)
		copy(X, p)
		axesToTranspose(X, hc.order, d)
		dst[i] = packTranspose(X, hc.order, d)
	}
}

// CoordsBatch implements curve.CoordsBatcher.
func (hc *Hilbert) CoordsBatch(keys []uint64, dst []geom.Point) {
	d := hc.U.Dims()
	for i, h := range keys {
		hc.CheckIndex(h)
		if hc.order == 0 {
			for j := range dst[i] {
				dst[i][j] = 0
			}
			continue
		}
		unpackTranspose(h, hc.order, d, dst[i])
		transposeToAxes(dst[i], hc.order, d)
	}
}

// IndexBatch implements curve.IndexBatcher.
func (m *Morton) IndexBatch(pts []geom.Point, dst []uint64) {
	d := m.U.Dims()
	for i, p := range pts {
		m.CheckPoint(p)
		dst[i] = curve.Interleave(p, m.order, d)
	}
}

// CoordsBatch implements curve.CoordsBatcher.
func (m *Morton) CoordsBatch(keys []uint64, dst []geom.Point) {
	d := m.U.Dims()
	for i, h := range keys {
		m.CheckIndex(h)
		curve.Deinterleave(h, m.order, d, dst[i])
	}
}

// IndexBatch implements curve.IndexBatcher.
func (g *Gray) IndexBatch(pts []geom.Point, dst []uint64) {
	d := g.U.Dims()
	for i, p := range pts {
		g.CheckPoint(p)
		dst[i] = curve.GrayInverse(curve.Interleave(p, g.order, d))
	}
}

// CoordsBatch implements curve.CoordsBatcher.
func (g *Gray) CoordsBatch(keys []uint64, dst []geom.Point) {
	d := g.U.Dims()
	for i, h := range keys {
		g.CheckIndex(h)
		curve.Deinterleave(curve.Gray(h), g.order, d, dst[i])
	}
}

var (
	_ curve.IndexBatcher  = (*Hilbert)(nil)
	_ curve.CoordsBatcher = (*Hilbert)(nil)
	_ curve.IndexBatcher  = (*Morton)(nil)
	_ curve.CoordsBatcher = (*Morton)(nil)
	_ curve.IndexBatcher  = (*Gray)(nil)
	_ curve.CoordsBatcher = (*Gray)(nil)
)
