package baseline

import (
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
)

// The planner conformance logic (brute-force reference, structural
// invariants, degenerate + random rectangle sweeps) lives in the shared
// curvetest.CheckPlanner harness; these tests only pick instances.

func TestMortonPlanner(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 16}, {2, 1}, {2, 2}, {2, 32}, {3, 8}, {4, 4}} {
		m, err := NewMorton(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, m, 80, int64(tc.dims)*100+int64(tc.side))
	}
}

func TestGrayPlanner(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 16}, {2, 2}, {2, 32}, {3, 8}, {4, 4}} {
		g, err := NewGray(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, g, 80, int64(tc.dims)*100+int64(tc.side))
	}
}

// TestHilbertPlanner cross-validates the orientation-carrying prefix-tree
// planner: any failure of the probed self-similarity model would show up
// as a mismatch against the brute-force decomposition.
func TestHilbertPlanner(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{2, 2}, {2, 4}, {2, 32}, {2, 64}, {3, 8}, {3, 16}, {4, 4}, {4, 8}} {
		h, err := NewHilbert(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, h, 80, int64(tc.dims)*100+int64(tc.side))
	}
}

func TestLinearPlanners(t *testing.T) {
	mks := []func(int, uint32) (*Linear, error){NewRowMajor, NewColumnMajor, NewSnake}
	for mi, mk := range mks {
		for _, tc := range []struct {
			dims int
			side uint32
		}{{1, 1}, {1, 9}, {2, 1}, {2, 7}, {2, 16}, {3, 5}, {3, 6}, {4, 3}} {
			l, err := mk(tc.dims, tc.side)
			if err != nil {
				t.Fatal(err)
			}
			curvetest.ExercisePlanner(t, l, 60, int64(mi)*10000+int64(tc.dims)*100+int64(tc.side))
		}
	}
}

// TestHilbertPlannerWholeUniverse makes sure a fully contained root is a
// single range even at orders where the orientation machine is never
// consulted.
func TestHilbertPlannerWholeUniverse(t *testing.T) {
	h, err := NewHilbert(2, 1) // order-0 degenerate universe
	if err != nil {
		t.Fatal(err)
	}
	rs := h.DecomposeRect(h.Universe().Rect())
	if len(rs) != 1 || rs[0] != (curve.KeyRange{Lo: 0, Hi: 0}) {
		t.Fatalf("order-0 universe = %v", rs)
	}
}
