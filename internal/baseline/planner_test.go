package baseline

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// sortedRanges is the brute-force reference decomposition.
func sortedRanges(c curve.Curve, r geom.Rect) []curve.KeyRange {
	keys := make([]uint64, 0, r.Cells())
	r.ForEach(func(p geom.Point) bool {
		keys = append(keys, c.Index(p))
		return true
	})
	slices.Sort(keys)
	var out []curve.KeyRange
	for i, k := range keys {
		if i == 0 || keys[i-1]+1 != k {
			out = append(out, curve.KeyRange{Lo: k, Hi: k})
		} else {
			out[len(out)-1].Hi = k
		}
	}
	return out
}

func checkPlanner(t *testing.T, c curve.Curve, r geom.Rect) {
	t.Helper()
	p, ok := c.(curve.RangePlanner)
	if !ok {
		t.Fatalf("%s does not implement curve.RangePlanner", c.Name())
	}
	got := p.DecomposeRect(r)
	want := sortedRanges(c, r)
	if !slices.Equal(got, want) {
		t.Fatalf("%s %v: planner %v, want %v", c.Name(), r, got, want)
	}
	if n := p.ClusterCount(r); n != uint64(len(want)) {
		t.Fatalf("%s %v: ClusterCount %d, want %d", c.Name(), r, n, len(want))
	}
}

func exercisePlanner(t *testing.T, c curve.Curve, trials int, seed int64) {
	t.Helper()
	u := c.Universe()
	d := u.Dims()
	s := u.Side()
	// Degenerate rects: corner cells, full universe, boundary slabs.
	corner := func(v uint32) geom.Rect {
		p := make(geom.Point, d)
		for i := range p {
			p[i] = v
		}
		return geom.Rect{Lo: p, Hi: p.Clone()}
	}
	checkPlanner(t, c, corner(0))
	checkPlanner(t, c, corner(s-1))
	checkPlanner(t, c, u.Rect())
	for dim := 0; dim < d; dim++ {
		for _, at := range []uint32{0, s - 1} {
			r := u.Rect()
			r.Lo[dim], r.Hi[dim] = at, at
			checkPlanner(t, c, r)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			a := uint32(rng.Int31n(int32(s)))
			b := uint32(rng.Int31n(int32(s)))
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		checkPlanner(t, c, geom.Rect{Lo: lo, Hi: hi})
	}
}

func TestMortonPlanner(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 16}, {2, 1}, {2, 2}, {2, 32}, {3, 8}, {4, 4}} {
		m, err := NewMorton(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, m, 80, int64(tc.dims)*100+int64(tc.side))
	}
}

func TestGrayPlanner(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 16}, {2, 2}, {2, 32}, {3, 8}, {4, 4}} {
		g, err := NewGray(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, g, 80, int64(tc.dims)*100+int64(tc.side))
	}
}

// TestHilbertPlanner cross-validates the orientation-carrying prefix-tree
// planner: any failure of the probed self-similarity model would show up
// as a mismatch against the brute-force decomposition.
func TestHilbertPlanner(t *testing.T) {
	for _, tc := range []struct {
		dims int
		side uint32
	}{{2, 2}, {2, 4}, {2, 32}, {2, 64}, {3, 8}, {3, 16}, {4, 4}, {4, 8}} {
		h, err := NewHilbert(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, h, 80, int64(tc.dims)*100+int64(tc.side))
	}
}

func TestLinearPlanners(t *testing.T) {
	mks := []func(int, uint32) (*Linear, error){NewRowMajor, NewColumnMajor, NewSnake}
	for mi, mk := range mks {
		for _, tc := range []struct {
			dims int
			side uint32
		}{{1, 1}, {1, 9}, {2, 1}, {2, 7}, {2, 16}, {3, 5}, {3, 6}, {4, 3}} {
			l, err := mk(tc.dims, tc.side)
			if err != nil {
				t.Fatal(err)
			}
			exercisePlanner(t, l, 60, int64(mi)*10000+int64(tc.dims)*100+int64(tc.side))
		}
	}
}

// TestHilbertPlannerWholeUniverse makes sure a fully contained root is a
// single range even at orders where the orientation machine is never
// consulted.
func TestHilbertPlannerWholeUniverse(t *testing.T) {
	h, err := NewHilbert(2, 1) // order-0 degenerate universe
	if err != nil {
		t.Fatal(err)
	}
	rs := h.DecomposeRect(h.Universe().Rect())
	if len(rs) != 1 || rs[0] != (curve.KeyRange{Lo: 0, Hi: 0}) {
		t.Fatalf("order-0 universe = %v", rs)
	}
}
