package baseline

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// Peano is the classic Peano curve (1890) generalized to d dimensions (the
// "serpentine" curve family): the universe is divided into 3^d sub-blocks
// visited in boustrophedon order, with sub-blocks reflected so that the
// path stays continuous; because the base is odd, the recursion preserves
// continuity at every level. Requires side = 3^k.
//
// Peano predates Hilbert's curve and completes the set of classic
// continuous baselines (hilbert, snake, peano) used by the lower-bound
// experiments.
type Peano struct {
	curve.Base
	levels int
	pow3   []uint64 // 3^i
	blockP []uint64 // (3^d)^i
}

// NewPeano constructs the d-dimensional Peano curve; side must be a power
// of three.
func NewPeano(dims int, side uint32) (*Peano, error) {
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("peano: %w", err)
	}
	levels := 0
	for s := side; s > 1; s /= 3 {
		if s%3 != 0 {
			return nil, fmt.Errorf("peano: %w: side %d is not a power of three",
				curve.ErrSideUnsupported, side)
		}
		levels++
	}
	pow3 := make([]uint64, levels+1)
	pow3[0] = 1
	for i := 1; i <= levels; i++ {
		pow3[i] = pow3[i-1] * 3
	}
	blockP := make([]uint64, levels+1)
	blockP[0] = 1
	block := uint64(1)
	for i := 0; i < dims; i++ {
		block *= 3
	}
	for i := 1; i <= levels; i++ {
		blockP[i] = blockP[i-1] * block
	}
	return &Peano{
		Base:   curve.Base{U: u, Id: "peano", Cont: true},
		levels: levels,
		pow3:   pow3,
		blockP: blockP,
	}, nil
}

// blockSnakeIndex returns the position of the digit vector eff (values in
// 0..2, dimension 0 fastest) along the continuous boustrophedon order of
// the 3^d block.
func blockSnakeIndex(eff []int) uint64 {
	var idx uint64
	span := uint64(1)
	for j := 0; j < len(eff); j++ {
		v := uint64(eff[j])
		sub := idx
		if v%2 == 1 {
			sub = span - 1 - sub
		}
		idx = v*span + sub
		span *= 3
	}
	return idx
}

// blockSnakeCoords inverts blockSnakeIndex.
func blockSnakeCoords(idx uint64, d int, eff []int) {
	span := uint64(1)
	for j := 0; j < d-1; j++ {
		span *= 3
	}
	for j := d - 1; j >= 0; j-- {
		v := idx / span
		rem := idx % span
		if v%2 == 1 {
			rem = span - 1 - rem
		}
		eff[j] = int(v)
		idx = rem
		span /= 3
	}
}

// Index implements curve.Curve.
func (pc *Peano) Index(p geom.Point) uint64 {
	pc.CheckPoint(p)
	d := pc.U.Dims()
	var key uint64
	flips := make([]bool, d)
	eff := make([]int, d)
	for i := pc.levels - 1; i >= 0; i-- {
		for j := 0; j < d; j++ {
			dj := int(uint64(p[j]) / pc.pow3[i] % 3)
			if flips[j] {
				dj = 2 - dj
			}
			eff[j] = dj
		}
		key = key*pc.blockP[1] + blockSnakeIndex(eff)
		pc.updateFlips(flips, eff)
	}
	return key
}

// Coords implements curve.Curve.
func (pc *Peano) Coords(h uint64, dst geom.Point) geom.Point {
	pc.CheckIndex(h)
	d := pc.U.Dims()
	p := curve.Dst(dst, d)
	for j := range p {
		p[j] = 0
	}
	flips := make([]bool, d)
	eff := make([]int, d)
	for i := pc.levels - 1; i >= 0; i-- {
		local := h / pc.blockP[i]
		h %= pc.blockP[i]
		blockSnakeCoords(local, d, eff)
		for j := 0; j < d; j++ {
			dj := eff[j]
			if flips[j] {
				dj = 2 - dj
			}
			p[j] += uint32(uint64(dj) * pc.pow3[i])
		}
		pc.updateFlips(flips, eff)
	}
	return p
}

// updateFlips advances the reflection state after consuming one digit
// level: axis j's direction flips iff the effective digits of the other
// axes sum to an odd value (the serpentine rule that keeps odd-base
// boustrophedon recursion continuous).
func (pc *Peano) updateFlips(flips []bool, eff []int) {
	total := 0
	for _, v := range eff {
		total += v
	}
	for j := range flips {
		if (total-eff[j])%2 == 1 {
			flips[j] = !flips[j]
		}
	}
}

var _ curve.Curve = (*Peano)(nil)
