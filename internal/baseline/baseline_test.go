package baseline

import (
	"errors"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
	"github.com/onioncurve/onion/internal/geom"
)

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewHilbert(1, 8); err == nil {
		t.Error("hilbert accepted dims=1")
	}
	if _, err := NewHilbert(2, 12); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Errorf("hilbert accepted non power-of-two side: %v", err)
	}
	if _, err := NewMorton(2, 10); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("morton accepted non power-of-two side")
	}
	if _, err := NewGray(2, 7); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("gray accepted non power-of-two side")
	}
	if _, err := NewRowMajor(0, 8); err == nil {
		t.Error("rowmajor accepted dims=0")
	}
	if _, err := NewSnake(2, 0); err == nil {
		t.Error("snake accepted side=0")
	}
	if _, err := NewHilbert(4, 1<<16); !errors.Is(err, geom.ErrTooLarge) {
		t.Error("oversized universe accepted")
	}
}

func allSmallCurves(t *testing.T, dims int, side uint32) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	type ctor struct {
		name string
		fn   func() (curve.Curve, error)
	}
	ctors := []ctor{
		{"rowmajor", func() (curve.Curve, error) { return NewRowMajor(dims, side) }},
		{"colmajor", func() (curve.Curve, error) { return NewColumnMajor(dims, side) }},
		{"snake", func() (curve.Curve, error) { return NewSnake(dims, side) }},
	}
	if side&(side-1) == 0 {
		ctors = append(ctors,
			ctor{"morton", func() (curve.Curve, error) { return NewMorton(dims, side) }},
			ctor{"gray", func() (curve.Curve, error) { return NewGray(dims, side) }},
		)
		if dims >= 2 {
			ctors = append(ctors, ctor{"hilbert", func() (curve.Curve, error) { return NewHilbert(dims, side) }})
		}
	}
	for _, c := range ctors {
		cv, err := c.fn()
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", c.name, dims, side, err)
		}
		cs = append(cs, cv)
	}
	return cs
}

func TestBijectionExhaustiveSmall(t *testing.T) {
	for _, cfg := range []struct {
		dims int
		side uint32
	}{
		{1, 1}, {1, 7}, {1, 8},
		{2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {2, 8}, {2, 16}, {2, 32},
		{3, 2}, {3, 3}, {3, 4}, {3, 8}, {3, 16},
		{4, 2}, {4, 4}, {4, 8},
		{5, 2}, {5, 4},
	} {
		for _, c := range allSmallCurves(t, cfg.dims, cfg.side) {
			t.Run(c.Name()+"/"+c.Universe().String(), func(t *testing.T) {
				curvetest.CheckBijectionExhaustive(t, c)
			})
		}
	}
}

func TestBijectionSampledLarge(t *testing.T) {
	h2, err := NewHilbert(2, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, h2, 2000, 1)
	h3, err := NewHilbert(3, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, h3, 2000, 2)
	m, err := NewMorton(3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, m, 2000, 3)
	g, err := NewGray(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, g, 2000, 4)
	s, err := NewSnake(3, 100000)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, s, 2000, 5)
}

func TestContinuity(t *testing.T) {
	// Hilbert and snake are continuous; verify exhaustively on small
	// grids and sampled on larger ones.
	for _, cfg := range []struct {
		dims int
		side uint32
	}{{2, 2}, {2, 4}, {2, 16}, {2, 64}, {3, 4}, {3, 16}, {4, 4}} {
		h, err := NewHilbert(cfg.dims, cfg.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckContinuityExhaustive(t, h)
	}
	for _, cfg := range []struct {
		dims int
		side uint32
	}{{1, 9}, {2, 3}, {2, 4}, {2, 5}, {2, 17}, {3, 3}, {3, 4}, {3, 6}, {4, 3}, {4, 5}} {
		s, err := NewSnake(cfg.dims, cfg.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckContinuityExhaustive(t, s)
	}
	hBig, err := NewHilbert(2, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckContinuitySampled(t, hBig, 3000, 7)
	h3Big, err := NewHilbert(3, 1<<9)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckContinuitySampled(t, h3Big, 3000, 8)
}

func TestContinuityFlags(t *testing.T) {
	h, _ := NewHilbert(2, 8)
	s, _ := NewSnake(2, 8)
	r, _ := NewRowMajor(2, 8)
	cmaj, _ := NewColumnMajor(2, 8)
	m, _ := NewMorton(2, 8)
	g, _ := NewGray(2, 8)
	if !curve.IsContinuous(h) || !curve.IsContinuous(s) {
		t.Error("hilbert/snake must be continuous")
	}
	if curve.IsContinuous(r) || curve.IsContinuous(m) || curve.IsContinuous(g) || curve.IsContinuous(cmaj) {
		t.Error("rowmajor/colmajor/morton/gray must not be continuous")
	}
}

func TestRowMajorKnownOrder(t *testing.T) {
	r, _ := NewRowMajor(2, 3)
	// (x,y) -> y*3+x
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {2, 0}: 2,
		{0, 1}: 3, {1, 1}: 4, {2, 1}: 5,
		{0, 2}: 6, {2, 2}: 8,
	}
	for xy, h := range want {
		if got := r.Index(geom.Point{xy[0], xy[1]}); got != h {
			t.Errorf("rowmajor(%v) = %d, want %d", xy, got, h)
		}
	}
	c, _ := NewColumnMajor(2, 3)
	if c.Index(geom.Point{1, 0}) != 3 || c.Index(geom.Point{0, 1}) != 1 {
		t.Error("colmajor order wrong")
	}
}

func TestSnakeKnownOrder(t *testing.T) {
	s, _ := NewSnake(2, 3)
	// Row 0 left-to-right, row 1 right-to-left, row 2 left-to-right.
	want := []geom.Point{
		{0, 0}, {1, 0}, {2, 0},
		{2, 1}, {1, 1}, {0, 1},
		{0, 2}, {1, 2}, {2, 2},
	}
	for h, p := range want {
		if got := s.Index(p); got != uint64(h) {
			t.Errorf("snake(%v) = %d, want %d", p, got, h)
		}
	}
}

func TestMortonKnownOrder(t *testing.T) {
	m, _ := NewMorton(2, 4)
	// Z curve quadrant order: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3 (2,0)=4.
	cases := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {0, 1}: 2, {1, 1}: 3,
		{2, 0}: 4, {3, 0}: 5, {2, 1}: 6, {3, 1}: 7,
		{0, 2}: 8, {3, 3}: 15,
	}
	for xy, h := range cases {
		if got := m.Index(geom.Point{xy[0], xy[1]}); got != h {
			t.Errorf("morton(%v) = %d, want %d", xy, got, h)
		}
	}
}

func TestGraySingleBitSteps(t *testing.T) {
	g, _ := NewGray(2, 8)
	// Consecutive positions along the Gray curve differ in exactly one
	// bit of the interleaved key, i.e. one bit of one coordinate.
	a := make(geom.Point, 2)
	b := make(geom.Point, 2)
	for h := uint64(0); h < g.Universe().Size()-1; h++ {
		g.Coords(h, a)
		g.Coords(h+1, b)
		diffBits := 0
		for i := range a {
			x := a[i] ^ b[i]
			for ; x != 0; x &= x - 1 {
				diffBits++
			}
		}
		if diffBits != 1 {
			t.Fatalf("gray steps from %v to %v (h=%d) flip %d bits", a, b, h, diffBits)
		}
	}
}

func TestHilbertOrder1Snapshot(t *testing.T) {
	// Pin the orientation of our Hilbert implementation so accidental
	// changes are caught. For order 1 (2x2), Skilling's algorithm visits
	// (0,0) (1,0) (1,1) (0,1) or a fixed rotation thereof; assert the
	// exact order observed at construction time of this test suite.
	h, _ := NewHilbert(2, 2)
	var order []geom.Point
	for k := uint64(0); k < 4; k++ {
		order = append(order, h.Coords(k, nil).Clone())
	}
	// Whatever the orientation, it must start at a corner and be
	// continuous; pin the exact sequence for stability.
	want := []geom.Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for i := range want {
		if !order[i].Equal(want[i]) {
			t.Fatalf("hilbert 2x2 order = %v, want %v (orientation changed?)", order, want)
		}
	}
}

func TestHilbertLocality(t *testing.T) {
	// Classic sanity check: on a 8x8 grid the average grid distance
	// between consecutive keys is exactly 1 (continuity), and the curve
	// visits all 4 quadrants in contiguous blocks of 16.
	h, _ := NewHilbert(2, 8)
	quadrant := func(p geom.Point) int {
		q := 0
		if p[0] >= 4 {
			q |= 1
		}
		if p[1] >= 4 {
			q |= 2
		}
		return q
	}
	seen := map[int]bool{}
	for block := 0; block < 4; block++ {
		q0 := quadrant(h.Coords(uint64(block*16), nil))
		for k := 0; k < 16; k++ {
			p := h.Coords(uint64(block*16+k), nil)
			if quadrant(p) != q0 {
				t.Fatalf("block %d leaves its quadrant at offset %d", block, k)
			}
		}
		if seen[q0] {
			t.Fatalf("quadrant %d visited twice", q0)
		}
		seen[q0] = true
	}
}

func TestPanicBehavior(t *testing.T) {
	for _, c := range allSmallCurves(t, 2, 8) {
		curvetest.CheckPanicsOnBadInput(t, c)
	}
}

func TestCoordsDstReuse(t *testing.T) {
	h, _ := NewHilbert(2, 8)
	dst := make(geom.Point, 2)
	got := h.Coords(17, dst)
	if &got[0] != &dst[0] {
		t.Error("Coords did not reuse dst of correct length")
	}
	got2 := h.Coords(17, nil)
	if !got2.Equal(got) {
		t.Error("Coords(nil) differs from Coords(dst)")
	}
}

func TestHilbertOneCellUniverse(t *testing.T) {
	h, err := NewHilbert(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Index(geom.Point{0, 0}) != 0 {
		t.Error("1-cell index")
	}
	if !h.Coords(0, nil).Equal(geom.Point{0, 0}) {
		t.Error("1-cell coords")
	}
}
