package baseline

import (
	"errors"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
	"github.com/onioncurve/onion/internal/geom"
)

func TestPeanoValidation(t *testing.T) {
	if _, err := NewPeano(2, 8); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("side 8 accepted")
	}
	if _, err := NewPeano(2, 0); err == nil {
		t.Error("side 0 accepted")
	}
	if _, err := NewPeano(0, 9); err == nil {
		t.Error("dims 0 accepted")
	}
	for _, side := range []uint32{1, 3, 9, 27, 81} {
		if _, err := NewPeano(2, side); err != nil {
			t.Errorf("side %d rejected: %v", side, err)
		}
	}
}

func TestPeanoBijectionAndContinuity(t *testing.T) {
	for _, cfg := range []struct {
		dims int
		side uint32
	}{{1, 27}, {2, 3}, {2, 9}, {2, 27}, {3, 3}, {3, 9}, {4, 3}} {
		p, err := NewPeano(cfg.dims, cfg.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckBijectionExhaustive(t, p)
		curvetest.CheckContinuityExhaustive(t, p)
	}
	big, err := NewPeano(2, 3*3*3*3*3*3*3) // 3^7 = 2187
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, big, 2000, 31)
	curvetest.CheckContinuitySampled(t, big, 2000, 32)
}

func TestPeanoKnownOrder3x3(t *testing.T) {
	// Peano's 3x3 curve: columns traversed boustrophedon, so the path is
	// (0,0)(0,1)(0,2)(1,2)(1,1)(1,0)(2,0)(2,1)(2,2) with dimension 0
	// slowest in our block order... assert whatever the construction
	// yields is the column snake with dim 0 fastest instead:
	// (0,0)(1,0)(2,0)(2,1)(1,1)(0,1)(0,2)(1,2)(2,2).
	p, _ := NewPeano(2, 3)
	want := []geom.Point{
		{0, 0}, {1, 0}, {2, 0},
		{2, 1}, {1, 1}, {0, 1},
		{0, 2}, {1, 2}, {2, 2},
	}
	for h, w := range want {
		if got := p.Coords(uint64(h), nil); !got.Equal(w) {
			t.Fatalf("peano 3x3 position %d = %v, want %v", h, got, w)
		}
	}
}

func TestPeanoIsContinuousFlag(t *testing.T) {
	p, _ := NewPeano(2, 9)
	if !curve.IsContinuous(p) {
		t.Error("peano must declare continuity")
	}
}

func TestPeanoPanics(t *testing.T) {
	p, _ := NewPeano(2, 9)
	curvetest.CheckPanicsOnBadInput(t, p)
}
