package baseline

// Prefix-tree range planners (curve.RangePlanner) for the bit-interleaved
// curves, generalizing the classic BIGMIN/LITMAX quadrant decomposition of
// the Z curve: a query rectangle is split along the curve's prefix tree,
// visiting children in curve order so ranges come out sorted, emitting a
// fully contained sub-block as one whole key interval and never descending
// into blocks the query misses. The cost is proportional to the boundary
// blocks visited — output-sensitive — instead of the query surface.
//
// All three curves share the engine; they differ only in how a node maps
// its i-th child (in curve order) to a spatial octant, and what state the
// child inherits:
//
//   - Morton: child i IS octant i; no state.
//   - Gray: one reflection bit. A node whose own child index was odd
//     enumerates its children along the reversed Gray sequence; child i
//     occupies the octant with interleaved pattern gray(i) ^ (state<<(d-1))
//     and passes i&1 down.
//   - Hilbert: the orientation (a signed axis permutation) is carried down
//     the subdivision. The per-child transition table is not hard-coded:
//     it is derived once per curve by probing order-1 and order-2 instances
//     of the same family, exploiting exact self-similarity of Skilling's
//     construction (verified for every dimension by the planner tests).
//
// The linear orders (row-major, column-major, snake) get a direct
// row-arithmetic planner instead: each grid row the query touches is one
// contiguous key run whose bounds are closed-form, so decomposition costs
// O(rows) with zero curve evaluations.

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// planTree decomposes r over the 2^order-side prefix tree of a d-dim
// bit-interleaved curve. child maps (state, child index in curve order) to
// (octant bits, child state); octant bit j selects the upper half of
// dimension j.
func planTree[S any](d, order int, r geom.Rect, root S, child func(s S, i int) (uint32, S), e *curve.RangeEmitter) {
	if order == 0 {
		e.Emit(0, 0) // 1-cell universe
		return
	}
	nch := 1 << uint(d)
	boxLo := make(geom.Point, d)
	var rec func(level int, keyLo uint64, boxLo geom.Point, st S)
	rec = func(level int, keyLo uint64, boxLo geom.Point, st S) {
		side := uint32(1) << uint(level)
		contained := true
		for i := 0; i < d; i++ {
			lo, hi := boxLo[i], boxLo[i]+side-1
			if hi < r.Lo[i] || lo > r.Hi[i] {
				return // disjoint
			}
			if lo < r.Lo[i] || hi > r.Hi[i] {
				contained = false
			}
		}
		if contained {
			e.Emit(keyLo, keyLo+(uint64(1)<<uint(level*d))-1)
			return
		}
		// level >= 1 here: a level-0 box is a single cell, which is either
		// disjoint or contained.
		childCells := uint64(1) << uint((level-1)*d)
		half := side / 2
		childLo := make(geom.Point, d)
		for i := 0; i < nch; i++ {
			oct, cst := child(st, i)
			for j := 0; j < d; j++ {
				childLo[j] = boxLo[j]
				if oct&(1<<uint(j)) != 0 {
					childLo[j] += half
				}
			}
			rec(level-1, keyLo+uint64(i)*childCells, childLo, cst)
		}
	}
	rec(order, 0, boxLo, root)
}

// DecomposeRect implements curve.RangePlanner via the recursive quadrant
// split (child i of every node is octant i).
func (m *Morton) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return m.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (m *Morton) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	m.plan(r, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner.
func (m *Morton) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	m.plan(r, e)
	return e.Count()
}

func (m *Morton) plan(r geom.Rect, e *curve.RangeEmitter) {
	planTree(m.U.Dims(), m.order, r, struct{}{},
		func(_ struct{}, i int) (uint32, struct{}) { return uint32(i), struct{}{} }, e)
}

// DecomposeRect implements curve.RangePlanner. A Gray node's children
// follow the Gray sequence, reflected when the node's own child index was
// odd (the reflected Gray code is the reversed sequence, which flips only
// the top interleaved bit).
func (g *Gray) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return g.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (g *Gray) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	g.plan(r, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner.
func (g *Gray) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	g.plan(r, e)
	return e.Count()
}

func (g *Gray) plan(r geom.Rect, e *curve.RangeEmitter) {
	d := g.U.Dims()
	top := uint32(1) << uint(d-1)
	planTree(d, g.order, r, uint32(0),
		func(reflect uint32, i int) (uint32, uint32) {
			oct := uint32(i) ^ uint32(i)>>1 ^ reflect*top
			return oct, uint32(i) & 1
		}, e)
}

// sperm is a signed axis permutation: the orientation of a Hilbert
// sub-block. Input axis j maps to output axis perm[j], reflected when flip
// bit j is set.
type sperm struct {
	perm []int
	flip uint32
}

// compose returns the transform applying tau first, then sigma.
func compose(sigma, tau sperm) sperm {
	d := len(sigma.perm)
	out := sperm{perm: make([]int, d)}
	for j := 0; j < d; j++ {
		out.perm[j] = sigma.perm[tau.perm[j]]
		fb := (tau.flip>>uint(j))&1 ^ (sigma.flip>>uint(tau.perm[j]))&1
		out.flip |= fb << uint(j)
	}
	return out
}

// applyOctant maps an octant bit-vector through the signed permutation.
func (s sperm) applyOctant(o uint32) uint32 {
	var r uint32
	for j := range s.perm {
		b := (o>>uint(j))&1 ^ (s.flip>>uint(j))&1
		r |= b << uint(s.perm[j])
	}
	return r
}

// hilbertTree is the probed orientation machine of a d-dimensional Hilbert
// curve: g is the canonical child-octant sequence (the order-1 curve) and
// tau[i] the orientation each child composes onto its parent's.
type hilbertTree struct {
	g   []uint32
	tau []sperm
}

// deriveHilbertTree derives the orientation machine by probing order-1 and
// order-2 instances of the curve itself, so the planner is guaranteed to
// match this implementation's bit conventions rather than a published
// variant's. Each Hilbert instance derives its machine at most once
// (hc.tree below), so query planning takes no locks in steady state.
func deriveHilbertTree(d int) (*hilbertTree, error) {
	c1, err := NewHilbert(d, 2)
	if err != nil {
		return nil, err
	}
	c2, err := NewHilbert(d, 4)
	if err != nil {
		c2 = nil // d too large for a side-4 probe: only order-1 curves
		// exist at this dimensionality, which never consult tau.
	}
	nch := 1 << uint(d)
	ht := &hilbertTree{g: make([]uint32, nch), tau: make([]sperm, nch)}
	p := make(geom.Point, d)
	for i := 0; i < nch; i++ {
		c1.Coords(uint64(i), p)
		var o uint32
		for j := 0; j < d; j++ {
			o |= p[j] << uint(j)
		}
		ht.g[i] = o
	}
	if c2 == nil {
		ht.tau = nil
		// order-1 only: tau never consulted
		return ht, nil
	}
	// B[j] = bit string over q of bit j of g[q]: how the canonical curve
	// toggles axis j across one level. Distinct per axis for the Hilbert
	// family, which makes the signed-permutation solution unique.
	B := make([]uint32, d)
	for q := 0; q < nch; q++ {
		for j := 0; j < d; j++ {
			B[j] |= ((ht.g[q] >> uint(j)) & 1) << uint(q)
		}
	}
	mask := uint32(1)<<uint(nch) - 1
	for i := 0; i < nch; i++ {
		// S[l] = bit string over q of the low coordinate bit of axis l in
		// child i of the order-2 curve; the top bits must equal g[i].
		S := make([]uint32, d)
		for q := 0; q < nch; q++ {
			c2.Coords(uint64(i*nch+q), p)
			var top uint32
			for j := 0; j < d; j++ {
				top |= (p[j] >> 1) << uint(j)
				S[j] |= (p[j] & 1) << uint(q)
			}
			if top != ht.g[i] {
				return nil, fmt.Errorf("hilbert: child %d is not octant-aligned (d=%d)", i, d)
			}
		}
		tau := sperm{perm: make([]int, d)}
		for j := 0; j < d; j++ {
			found := -1
			for l := 0; l < d; l++ {
				switch S[l] {
				case B[j]:
					if found >= 0 {
						return nil, fmt.Errorf("hilbert: ambiguous orientation (d=%d)", d)
					}
					found = l
				case B[j] ^ mask:
					if found >= 0 {
						return nil, fmt.Errorf("hilbert: ambiguous orientation (d=%d)", d)
					}
					found = l
					tau.flip |= 1 << uint(j)
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("hilbert: no orientation solution (d=%d, child %d)", d, i)
			}
			tau.perm[j] = found
		}
		ht.tau[i] = tau
	}

	return ht, nil
}

// DecomposeRect implements curve.RangePlanner: prefix-tree descent with the
// orientation state carried down the subdivision, so fully contained
// sub-blocks are emitted as whole key intervals in curve order.
func (hc *Hilbert) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return hc.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (hc *Hilbert) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	hc.plan(r, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner.
func (hc *Hilbert) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	hc.plan(r, e)
	return e.Count()
}

func (hc *Hilbert) plan(r geom.Rect, e *curve.RangeEmitter) {
	d := hc.U.Dims()
	hc.treeOnce.Do(func() { hc.tree, hc.treeErr = deriveHilbertTree(d) })
	if hc.treeErr != nil {
		// The derivation can only fail if the curve implementation loses
		// self-similarity, which the tests rule out; treat as programmer
		// error like an invalid Index argument.
		panic(hc.treeErr)
	}
	ht := hc.tree
	ident := sperm{perm: make([]int, d)}
	for j := range ident.perm {
		ident.perm[j] = j
	}
	planTree(d, hc.order, r, ident,
		func(st sperm, i int) (uint32, sperm) {
			if ht.tau == nil { // order-1 curve: children are leaves
				return st.applyOctant(ht.g[i]), st
			}
			return st.applyOctant(ht.g[i]), compose(st, ht.tau[i])
		}, e)
}

// planLinear emits the decomposition of r under a linear order: every grid
// row (a run of cells along the fastest-varying dimension) the query
// touches is one contiguous key run with closed-form bounds. Rows are
// visited in ascending key order, so full-width adjacent rows merge into
// larger ranges in the emitter.
func (l *Linear) planLinear(r geom.Rect, e *curve.RangeEmitter) {
	d := l.U.Dims()
	switch l.kind {
	case kindRowMajor:
		l.planLex(r, e, func(i int) int { return i })
	case kindColMajor:
		l.planLex(r, e, func(i int) int { return d - 1 - i })
	default:
		l.planSnake(r, e, d-1, false, 0)
	}
}

// planLex handles the purely lexicographic orders. axis(i) is the
// dimension with significance side^i (axis(0) varies fastest).
func (l *Linear) planLex(r geom.Rect, e *curve.RangeEmitter, axis func(int) int) {
	d := l.U.Dims()
	f := axis(0)
	p := make([]uint32, d) // p[i] = coordinate of the axis with significance i
	for i := 1; i < d; i++ {
		p[i] = r.Lo[axis(i)]
	}
	for {
		var rowBase uint64
		for i := d - 1; i >= 1; i-- {
			rowBase = rowBase*uint64(l.U.Side()) + uint64(p[i])
		}
		rowBase *= uint64(l.U.Side())
		e.Emit(rowBase+uint64(r.Lo[f]), rowBase+uint64(r.Hi[f]))
		i := 1
		for i < d {
			a := axis(i)
			if p[i] < r.Hi[a] {
				p[i]++
				break
			}
			p[i] = r.Lo[a]
			i++
		}
		if i == d {
			return
		}
	}
}

// planSnake recursively visits the hyperplanes of dimension dim in key
// order (ascending coordinate when the accumulated reflection is even,
// descending when odd — the boustrophedon) and emits one run per grid row.
// base is the key of the hyperplane block's first position.
func (l *Linear) planSnake(r geom.Rect, e *curve.RangeEmitter, dim int, flip bool, base uint64) {
	s := l.U.Side()
	if dim == 0 {
		if flip {
			lo := base + uint64(s-1-r.Hi[0])
			e.Emit(lo, lo+uint64(r.Hi[0]-r.Lo[0]))
		} else {
			e.Emit(base+uint64(r.Lo[0]), base+uint64(r.Hi[0]))
		}
		return
	}
	lo, hi := r.Lo[dim], r.Hi[dim]
	if !flip {
		for v := lo; v <= hi; v++ {
			l.planSnake(r, e, dim-1, v&1 == 1, base+uint64(v)*l.pow[dim])
		}
		return
	}
	// Reflected: digit s-1-v, and the sub-block is reflected again when the
	// digit parity keeps the accumulated reflection odd.
	for v := hi; ; v-- {
		l.planSnake(r, e, dim-1, v&1 == 0, base+uint64(s-1-v)*l.pow[dim])
		if v == lo {
			return
		}
	}
}

// DecomposeRect implements curve.RangePlanner: O(rows touched) with
// closed-form run bounds, replacing the cell-enumeration fallback.
func (l *Linear) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return l.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (l *Linear) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	l.planLinear(r, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner.
func (l *Linear) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	l.planLinear(r, e)
	return e.Count()
}

var (
	_ curve.RangePlanner  = (*Morton)(nil)
	_ curve.RangePlanner  = (*Gray)(nil)
	_ curve.RangePlanner  = (*Hilbert)(nil)
	_ curve.RangePlanner  = (*Linear)(nil)
	_ curve.RangeAppender = (*Morton)(nil)
	_ curve.RangeAppender = (*Gray)(nil)
	_ curve.RangeAppender = (*Hilbert)(nil)
	_ curve.RangeAppender = (*Linear)(nil)
)
