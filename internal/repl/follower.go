package repl

import (
	"fmt"
	"os"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/telemetry"
)

// Follower holds a replica: a durable replication log (the follower's
// ground truth — an entry is acknowledged once it is fsynced there) and
// an engine the quorum-committed prefix is applied to. The engine runs
// without SyncWrites; its durability comes from the log, which replays
// idempotently after a crash (puts and tombstones are last-writer-wins
// by key, so re-applying an already-applied entry is a no-op in effect).
//
// A Follower is driven entirely by its Handler methods; register it
// with the group's transport under its peer id.
type Follower struct {
	id   string
	dir  string
	c    curve.Curve
	opts FollowerOptions

	mu      sync.Mutex
	eng     *engine.Engine
	log     *replLog
	st      nodeState
	applied uint64 // in-memory apply watermark; >= st.applied, persisted lazily
	// mustSeed latches when the durable state says this node was a
	// leader: its engine holds writes no quorum may have acknowledged,
	// and an LSM cannot truncate, so the only way back into the group is
	// a full re-seed. Every Append is answered NeedSeed until then.
	mustSeed bool
	closed   bool
	seeds    uint64
}

// FollowerStatus is a point-in-time view for lag accounting and tests.
type FollowerStatus struct {
	ID       string
	Epoch    uint64
	Base     uint64
	Applied  uint64
	Last     uint64 // highest index held durably in the replication log
	MustSeed bool
	Seeds    uint64 // completed snapshot seeds
}

// OpenFollower opens (or creates) a replica at dir. The id is the peer
// id the leader routes to; the curve must match the leader's.
func OpenFollower(id, dir string, c curve.Curve, opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repl: follower %s: %w", id, err)
	}
	st, ok, err := readState(dir)
	if err != nil {
		return nil, err
	}
	mustSeed := false
	if ok && st.role == "leader" {
		// An ex-leader's engine may hold a divergent, un-acknowledged
		// suffix; latch until the current leader re-seeds us.
		mustSeed = true
		st = nodeState{role: "follower", epoch: st.epoch}
	}
	if !ok {
		st = nodeState{role: "follower"}
	}
	log, err := openReplLog(dir)
	if err != nil {
		return nil, err
	}
	eng, err := engine.Open(dir, c, opts.Engine)
	if err != nil {
		log.close() //nolint:errcheck
		return nil, err
	}
	return &Follower{
		id: id, dir: dir, c: c, opts: opts,
		eng: eng, log: log, st: st,
		applied:  st.applied,
		mustSeed: mustSeed,
	}, nil
}

// Engine exposes the replica's engine for reads. Treat it as read-only:
// local writes would diverge from the leader.
func (f *Follower) Engine() *engine.Engine { return f.eng }

// Status reports the replica's durable position.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	last := f.st.base
	if li, _, ok := f.log.last(); ok {
		last = li
	}
	return FollowerStatus{
		ID: f.id, Epoch: f.st.epoch, Base: f.st.base,
		Applied: f.applied, Last: last, MustSeed: f.mustSeed, Seeds: f.seeds,
	}
}

// Close syncs the applied prefix into the engine and closes it.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.eng.Close()
	if f.applied > f.st.applied {
		f.st.applied = f.applied
		if serr := writeState(f.dir, f.st); err == nil {
			err = serr
		}
	}
	if cerr := f.log.close(); err == nil {
		err = cerr
	}
	return err
}

// HandleAppend implements the follower half of log shipping.
//
// Epoch fencing first: a request from a stale epoch is refused (the
// response's higher epoch tells the old leader it is deposed); a higher
// epoch is adopted durably before anything else. Then the consistency
// check: the follower's log after PrevIndex must be a prefix of the
// shipped run. Held entries that match shipped ones are skipped
// (duplicate delivery); at the first divergence the un-applied suffix
// is truncated and the shipped entries take its place — unless the
// divergence reaches into the applied prefix, which an LSM cannot take
// back, in which case the reply asks for a seed. Acknowledged entries
// are fsynced in the replication log before the response is built; the
// quorum-committed prefix (capped at what this follower holds) is
// folded into the engine in amortized batches, driven by the leader's
// bare watermark pushes and the log-compaction threshold rather than
// by every entry-bearing append.
func (f *Follower) HandleAppend(req AppendRequest) (AppendResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return AppendResponse{}, ErrClosed
	}
	if req.Epoch < f.st.epoch {
		return AppendResponse{Epoch: f.st.epoch}, nil
	}
	if req.Epoch > f.st.epoch {
		f.st.epoch = req.Epoch
		if err := writeState(f.dir, f.persistable()); err != nil {
			return AppendResponse{}, err
		}
	}
	if f.mustSeed {
		return AppendResponse{Epoch: f.st.epoch, NeedSeed: true}, nil
	}

	last := f.st.base
	if li, _, ok := f.log.last(); ok {
		last = li
	}

	// Locate PrevIndex in our history.
	prevEpoch, held := f.epochAt(req.PrevIndex)
	if !held {
		if req.PrevIndex < f.st.base {
			// Below our compacted horizon: either a stale re-delivery
			// (harmless — the resend hint recovers) or a leader whose
			// history diverges under our applied state; the resend from
			// our ack will tell which.
			return AppendResponse{Epoch: f.st.epoch, Ack: last}, nil
		}
		// Behind: we never saw PrevIndex. Hint a resend from our ack.
		return AppendResponse{Epoch: f.st.epoch, Ack: last}, nil
	}
	if prevEpoch != req.PrevEpoch {
		// We hold a different history at PrevIndex itself.
		if f.applied >= req.PrevIndex {
			return AppendResponse{Epoch: f.st.epoch, NeedSeed: true}, nil
		}
		if err := f.log.truncateAfter(req.PrevIndex - 1); err != nil {
			return AppendResponse{}, err
		}
		last = f.lastIndex()
		return AppendResponse{Epoch: f.st.epoch, Ack: last}, nil
	}

	// Tandem walk: our entries after PrevIndex against the shipped run.
	// Matching (index, epoch) pairs are duplicates already durable; the
	// first divergence truncates our suffix in favor of the leader's.
	pos := f.log.search(req.PrevIndex + 1)
	i := 0
	prevMatched := req.PrevIndex
	for i < len(req.Entries) && pos < len(f.log.entries) {
		h, s := f.log.entries[pos], req.Entries[i]
		if h.Index == s.Index && h.Epoch == s.Epoch {
			prevMatched = h.Index
			pos++
			i++
			continue
		}
		// Divergence: drop everything we hold past the last matched
		// point (this also removes orphans occupying indices the leader
		// abandoned, so the commit watermark can never apply them).
		if f.applied > prevMatched {
			return AppendResponse{Epoch: f.st.epoch, NeedSeed: true}, nil
		}
		if err := f.log.truncateAfter(prevMatched); err != nil {
			return AppendResponse{}, err
		}
		break
	}
	if fresh := req.Entries[i:]; len(fresh) > 0 {
		// Durable clones: the request's entries alias transport buffers.
		es := make([]Entry, len(fresh))
		for j, e := range fresh {
			es[j] = Entry{Index: e.Index, Epoch: e.Epoch, Op: append([]byte(nil), e.Op...)}
		}
		if err := f.log.append(es); err != nil {
			return AppendResponse{}, err
		}
	}
	last = f.lastIndex()

	// The ack means log durability; folding the committed prefix into
	// the engine is kept off the entry-bearing path, where it would put
	// a decode-and-insert pass on every quorum round trip. The leader's
	// periodic bare watermark push (and the compaction threshold) picks
	// the backlog up in one amortized batch instead, so a replica's
	// engine trails its log by at most the catch-up interval.
	if len(req.Entries) == 0 || len(f.log.entries) > f.opts.MaxLogEntries {
		if err := f.applyCommitted(min(req.Commit, last)); err != nil {
			return AppendResponse{}, err
		}
	}
	if len(f.log.entries) > f.opts.MaxLogEntries {
		if err := f.compact(); err != nil {
			return AppendResponse{}, err
		}
	}
	return AppendResponse{Epoch: f.st.epoch, Ok: true, Ack: last}, nil
}

// persistable is the durable state with the lazily-tracked applied
// watermark folded in (never ahead of what the log can replay).
func (f *Follower) persistable() nodeState {
	st := f.st
	if f.applied > st.applied {
		st.applied = f.applied
	}
	return st
}

func (f *Follower) lastIndex() uint64 {
	if li, _, ok := f.log.last(); ok {
		return li
	}
	return f.st.base
}

// epochAt resolves the epoch of index in our history: the base point,
// a held log entry, or genesis (index 0 when our history starts there).
func (f *Follower) epochAt(index uint64) (uint64, bool) {
	if index == f.st.base {
		return f.st.baseEpoch, true
	}
	if index == 0 {
		return 0, f.st.base == 0
	}
	return f.log.at(index)
}

// applyCommitted folds held entries in (applied, upTo] into the engine.
// The caller has verified every held entry <= upTo matches the leader.
func (f *Follower) applyCommitted(upTo uint64) error {
	if upTo <= f.applied {
		return nil
	}
	dims := f.c.Universe().Dims()
	es := f.log.slice(f.applied, upTo)
	ops := make([]engine.BatchOp, 0, len(es))
	for _, e := range es {
		op, err := engine.DecodeOp(e.Op, dims)
		if err != nil {
			return fmt.Errorf("repl: follower %s: entry %d: %w", f.id, e.Index, err)
		}
		ops = append(ops, op)
	}
	if err := f.eng.PutBatch(ops); err != nil {
		return fmt.Errorf("repl: follower %s: apply: %w", f.id, err)
	}
	f.applied = upTo
	return nil
}

// compact makes the applied prefix durable in the engine, then drops it
// from the replication log and advances the base.
func (f *Follower) compact() error {
	if f.applied <= f.st.base {
		return nil
	}
	if err := f.eng.Sync(); err != nil {
		return fmt.Errorf("repl: follower %s: compact: %w", f.id, err)
	}
	baseEpoch, ok := f.log.at(f.applied)
	if !ok {
		baseEpoch = f.st.baseEpoch
	}
	if err := f.log.compactThrough(f.applied); err != nil {
		return err
	}
	f.st.base = f.applied
	f.st.baseEpoch = baseEpoch
	f.st.applied = f.applied
	return writeState(f.dir, f.st)
}

// HandleSeed wipes the replica and restores it from the leader's
// snapshot: engine.Restore copies the snapshot's segments and replays
// the source's archived WALs, so the rebuilt engine holds everything
// through req.Base (and possibly a little beyond; re-application is
// idempotent). The replication log restarts empty at base = req.Base.
//
// The wipe-and-rename is not crash-atomic; a process crash mid-seed
// leaves a fresh follower that simply seeds again.
func (f *Follower) HandleSeed(req SeedRequest) (SeedResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return SeedResponse{}, ErrClosed
	}
	if req.Epoch < f.st.epoch {
		return SeedResponse{Epoch: f.st.epoch}, nil
	}
	if err := f.eng.Close(); err != nil {
		return SeedResponse{}, fmt.Errorf("repl: follower %s: seed: %w", f.id, err)
	}
	f.log.close() //nolint:errcheck
	restored := f.dir + ".seed-restore"
	os.RemoveAll(restored) //nolint:errcheck // debris from an interrupted seed
	if _, err := engine.Restore(req.Snapshot, restored, -1, f.c, f.opts.Engine); err != nil {
		return SeedResponse{}, f.reopen(fmt.Errorf("repl: follower %s: seed restore: %w", f.id, err))
	}
	if err := os.RemoveAll(f.dir); err != nil {
		return SeedResponse{}, fmt.Errorf("repl: follower %s: seed: %w", f.id, err)
	}
	if err := os.Rename(restored, f.dir); err != nil {
		return SeedResponse{}, fmt.Errorf("repl: follower %s: seed: %w", f.id, err)
	}
	f.st = nodeState{
		role: "follower", epoch: req.Epoch,
		base: req.Base, baseEpoch: req.BaseEpoch, applied: req.Base,
	}
	f.applied = req.Base
	if err := writeState(f.dir, f.st); err != nil {
		return SeedResponse{}, err
	}
	if err := f.reopen(nil); err != nil {
		return SeedResponse{}, err
	}
	f.mustSeed = false
	f.seeds++
	f.eng.Events().Emit(telemetry.Event{
		Kind: telemetry.EvRepl, Phase: telemetry.PhasePoint, Shard: -1,
		Detail: fmt.Sprintf("seeded from %s through index %d epoch %d", req.LeaderID, req.Base, req.Epoch),
	})
	return SeedResponse{Epoch: f.st.epoch, Ok: true, Ack: req.Base}, nil
}

// reopen rebuilds the log and engine handles after a seed (or restores
// them after a failed one, keeping the passed error primary).
func (f *Follower) reopen(prior error) error {
	log, err := openReplLog(f.dir)
	if err != nil {
		if prior != nil {
			return prior
		}
		return err
	}
	eng, err := engine.Open(f.dir, f.c, f.opts.Engine)
	if err != nil {
		log.close() //nolint:errcheck
		if prior != nil {
			return prior
		}
		return err
	}
	f.log = log
	f.eng = eng
	return prior
}
