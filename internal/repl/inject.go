package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected reports a fault injected by an Injecting transport. Every
// injected failure wraps it, so tests can distinguish deliberate faults
// from real transport errors with errors.Is.
var ErrInjected = errors.New("repl: injected fault")

// FaultOp classifies a transport operation for fault matching.
type FaultOp uint8

const (
	// FaultAny matches every operation.
	FaultAny FaultOp = iota
	FaultAppend
	FaultSeed
	FaultProbe
)

var faultOpNames = [...]string{"any", "append", "seed", "probe"}

func (o FaultOp) String() string {
	if int(o) < len(faultOpNames) {
		return faultOpNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// FaultKind is the failure mode an injected transport fault produces.
type FaultKind uint8

const (
	// KindDrop loses the request: the follower never sees it and the
	// leader gets an ErrInjected error.
	KindDrop FaultKind = iota
	// KindDropAck delivers the request but loses the response: the
	// follower holds the entries, the leader sees an error and retries —
	// the duplicate-delivery case followers must absorb idempotently.
	KindDropAck
	// KindDup delivers the request twice back to back; the second
	// response wins. Exercises exact re-delivery.
	KindDup
	// KindStale re-delivers the previous request to the same peer after
	// the current one — an old packet arriving late, out of order.
	KindStale
	// KindDelay stalls the send briefly before delivering, simulating a
	// slow link without losing anything.
	KindDelay
	// KindCrash latches the transport dead: this send and every later
	// one fails, the way a killed leader stops reaching anyone. The
	// fault-matrix uses it to model leader death before a delivery.
	KindCrash
	// KindCrashAck delivers this request, loses its response, and then
	// latches the transport dead — leader death one instant after the
	// follower made the entries durable.
	KindCrashAck
	faultKindCount
)

var faultKindNames = [...]string{"drop", "dropack", "dup", "stale", "delay", "crash", "crashack"}

func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one injection rule: the Kind fires on the Nth transport
// operation matching Op and Peer.
type Fault struct {
	// Op restricts the rule to one operation class (FaultAny matches all).
	Op FaultOp
	// Peer restricts the rule to one destination ("" = every peer).
	Peer string
	// N fires the rule on the Nth (1-based) matching operation. N <= 0
	// never fires — the rule only counts, which is how a fault matrix
	// enumerates its injection points before iterating over them.
	N int64
	// Repeat re-fires the rule on every further multiple of N.
	Repeat bool
	// Kind is the failure mode.
	Kind FaultKind
}

// Injecting wraps a base transport and injects deterministic faults:
// dropped requests, lost acks, duplicated and reordered deliveries,
// delays, and named-peer partitions. Operations are counted in a single
// serialized order, so a fixed workload enumerates fault points
// reproducibly — the transport-level analogue of the vfs Injecting
// filesystem.
type Injecting struct {
	base Transport

	mu          sync.Mutex
	rules       []transportFaultState
	partitioned map[string]bool
	crashed     bool
	lastAppend  map[string]*AppendRequest // previous request per peer, for KindStale
	injected    [faultKindCount]int64

	// Delay is how long KindDelay stalls a send. Defaults to 1ms.
	Delay time.Duration
}

type transportFaultState struct {
	Fault
	matched int64
}

// NewInjectingTransport wraps base with no active faults.
func NewInjectingTransport(base Transport) *Injecting {
	return &Injecting{
		base:        base,
		partitioned: make(map[string]bool),
		lastAppend:  make(map[string]*AppendRequest),
		Delay:       time.Millisecond,
	}
}

// SetFaults replaces the active rules and resets their match counters.
// Partitions are unaffected.
func (t *Injecting) SetFaults(faults ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = t.rules[:0]
	for _, f := range faults {
		t.rules = append(t.rules, transportFaultState{Fault: f})
	}
}

// Matched returns how many operations rule r has matched since
// SetFaults — with N <= 0 rules, the enumeration count of a recorded
// workload's fault points.
func (t *Injecting) Matched(r int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r < 0 || r >= len(t.rules) {
		return 0
	}
	return t.rules[r].matched
}

// Injected returns how many faults of each kind have fired.
func (t *Injecting) Injected() map[FaultKind]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[FaultKind]int64)
	for k := FaultKind(0); k < faultKindCount; k++ {
		if t.injected[k] > 0 {
			out[k] = t.injected[k]
		}
	}
	return out
}

// Partition cuts the named peers off: every send to them (and Probe)
// fails with ErrPartitioned until Heal.
func (t *Injecting) Partition(peers ...string) {
	t.mu.Lock()
	for _, p := range peers {
		t.partitioned[p] = true
	}
	t.mu.Unlock()
}

// Heal reconnects the named peers; with no arguments it heals all.
func (t *Injecting) Heal(peers ...string) {
	t.mu.Lock()
	if len(peers) == 0 {
		t.partitioned = make(map[string]bool)
	} else {
		for _, p := range peers {
			delete(t.partitioned, p)
		}
	}
	t.mu.Unlock()
}

// decide serializes one operation and returns the fault to inject
// (fire=false for a clean passthrough) or the partition error.
func (t *Injecting) decide(op FaultOp, peer string) (FaultKind, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.crashed {
		return 0, false, fmt.Errorf("%w: transport crashed", ErrInjected)
	}
	if t.partitioned[peer] {
		return 0, false, fmt.Errorf("%w: %q", ErrPartitioned, peer)
	}
	fire := -1
	for r := range t.rules {
		rule := &t.rules[r]
		if rule.Op != FaultAny && rule.Op != op {
			continue
		}
		if rule.Peer != "" && rule.Peer != peer {
			continue
		}
		rule.matched++
		if rule.N > 0 && fire < 0 {
			if rule.matched == rule.N || (rule.Repeat && rule.matched%rule.N == 0) {
				fire = r
			}
		}
	}
	if fire < 0 {
		return 0, false, nil
	}
	k := t.rules[fire].Kind
	t.injected[k]++
	if k == KindCrash || k == KindCrashAck {
		t.crashed = true
	}
	return k, true, nil
}

// Crashed reports whether a crash fault has latched the transport dead.
func (t *Injecting) Crashed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed
}

// Revive clears the crash latch (a new process takes over the link).
// The fault-matrix revives the transport for the promoted leader.
func (t *Injecting) Revive() {
	t.mu.Lock()
	t.crashed = false
	t.mu.Unlock()
}

// Append applies the fault decision around the base send.
func (t *Injecting) Append(peer string, req AppendRequest) (AppendResponse, error) {
	k, hit, err := t.decide(FaultAppend, peer)
	if err != nil {
		return AppendResponse{}, err
	}
	var prev *AppendRequest
	if hit && k == KindStale {
		t.mu.Lock()
		prev = t.lastAppend[peer]
		t.mu.Unlock()
	}
	t.mu.Lock()
	cp := req
	cp.Entries = append([]Entry(nil), req.Entries...)
	t.lastAppend[peer] = &cp
	t.mu.Unlock()
	if hit {
		switch k {
		case KindDrop, KindCrash:
			return AppendResponse{}, fmt.Errorf("%w: %s append to %q", ErrInjected, k, peer)
		case KindDropAck, KindCrashAck:
			t.base.Append(peer, req) //nolint:errcheck // delivered; ack lost
			return AppendResponse{}, fmt.Errorf("%w: drop ack from %q", ErrInjected, peer)
		case KindDup:
			t.base.Append(peer, req) //nolint:errcheck
			return t.base.Append(peer, req)
		case KindStale:
			resp, err := t.base.Append(peer, req)
			if prev != nil {
				t.base.Append(peer, *prev) //nolint:errcheck // late re-delivery
			}
			return resp, err
		case KindDelay:
			time.Sleep(t.Delay)
		}
	}
	return t.base.Append(peer, req)
}

// Seed applies the fault decision around the base send. Dup, stale and
// delay degrade to plain delivery — seeding is already idempotent.
func (t *Injecting) Seed(peer string, req SeedRequest) (SeedResponse, error) {
	k, hit, err := t.decide(FaultSeed, peer)
	if err != nil {
		return SeedResponse{}, err
	}
	if hit {
		switch k {
		case KindDrop, KindCrash:
			return SeedResponse{}, fmt.Errorf("%w: %s seed to %q", ErrInjected, k, peer)
		case KindDropAck, KindCrashAck:
			t.base.Seed(peer, req) //nolint:errcheck
			return SeedResponse{}, fmt.Errorf("%w: drop ack from %q", ErrInjected, peer)
		case KindDelay:
			time.Sleep(t.Delay)
		}
	}
	return t.base.Seed(peer, req)
}

// Probe respects partitions and drop faults.
func (t *Injecting) Probe(peer string) error {
	k, hit, err := t.decide(FaultProbe, peer)
	if err != nil {
		return err
	}
	if hit && k != KindDup && k != KindStale && k != KindDelay {
		return fmt.Errorf("%w: %s probe to %q", ErrInjected, k, peer)
	}
	return t.base.Probe(peer)
}
