package repl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
)

const rtSide = 32

func rtCurve(t testing.TB) curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(rtSide)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func rtPoint(i int) geom.Point {
	return geom.Point{uint32(i*7) % rtSide, uint32(i*13+5) % rtSide}
}

func rtEngOpts() engine.Options {
	return engine.Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1, Shards: 2}
}

// cluster is a leader plus followers wired through a fault-injecting
// loopback transport.
type cluster struct {
	t   *testing.T
	c   curve.Curve
	lb  *Loopback
	tr  *Injecting
	g   *Group
	fs  []*Follower
	ids []string
}

func newCluster(t *testing.T, followers int, cfg Config) *cluster {
	t.Helper()
	cl := &cluster{t: t, c: rtCurve(t), lb: NewLoopback()}
	cl.tr = NewInjectingTransport(cl.lb)
	base := t.TempDir()
	for i := 0; i < followers; i++ {
		id := fmt.Sprintf("f%d", i+1)
		f, err := OpenFollower(id, filepath.Join(base, id), cl.c, FollowerOptions{Engine: rtEngOpts()})
		if err != nil {
			t.Fatal(err)
		}
		cl.lb.Register(id, f)
		cl.fs = append(cl.fs, f)
		cl.ids = append(cl.ids, id)
	}
	cfg.ID = "leader"
	cfg.Peers = cl.ids
	cfg.Transport = cl.tr
	if cfg.Engine.PageBytes == 0 {
		cfg.Engine = rtEngOpts()
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	g, err := Lead(filepath.Join(base, "leader"), cl.c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.g = g
	t.Cleanup(func() {
		if cl.g != nil {
			cl.g.Close() //nolint:errcheck
		}
		for _, f := range cl.fs {
			f.Close() //nolint:errcheck
		}
	})
	return cl
}

// stateOf reads an engine's entire logical content as key → payload.
func stateOf(t testing.TB, c curve.Curve, e *engine.Engine) map[uint64]uint64 {
	t.Helper()
	recs, _, err := e.Query(c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		m[c.Index(r.Point)] = r.Payload
	}
	return m
}

func assertSameState(t *testing.T, c curve.Curve, want map[uint64]uint64, e *engine.Engine, who string) {
	t.Helper()
	got := stateOf(t, c, e)
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", who, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %d = %d, want %d", who, k, got[k], v)
		}
	}
}

// TestReplBasic: a three-replica group converges bit-identically under
// a mixed workload of puts, deletes and batches.
func TestReplBasic(t *testing.T) {
	cl := newCluster(t, 2, Config{})
	e := cl.g.Engine()
	for i := 0; i < 40; i++ {
		if i%9 == 8 {
			if err := e.Delete(rtPoint(i - 4)); err != nil {
				t.Fatalf("del %d: %v", i, err)
			}
		} else if err := e.Put(rtPoint(i), uint64(1000+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	batch := make([]engine.BatchOp, 10)
	for i := range batch {
		batch[i] = engine.BatchOp{Point: rtPoint(100 + i), Payload: uint64(5000 + i)}
	}
	if err := e.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	cl.g.Heartbeat()

	want := stateOf(t, cl.c, e)
	if len(want) == 0 {
		t.Fatal("leader is empty")
	}
	for i, f := range cl.fs {
		assertSameState(t, cl.c, want, f.Engine(), cl.ids[i])
		st := f.Status()
		if st.Applied == 0 || st.Applied != st.Last {
			t.Fatalf("%s: applied %d, last %d", cl.ids[i], st.Applied, st.Last)
		}
	}
	for id, lag := range cl.g.Lag() {
		if lag != 0 {
			t.Fatalf("%s lag %d after heartbeat", id, lag)
		}
	}
	snap := cl.g.Telemetry().Snapshot()
	if n := snap.Counter("repl_batches_total"); n == 0 {
		t.Fatal("repl_batches_total is zero")
	}
	if n := snap.Counter("repl_entries_shipped_total"); n < 50 {
		t.Fatalf("repl_entries_shipped_total = %d, want >= 50 per follower", n)
	}
}

// TestReplQuorumLossDegrades: losing quorum fails the write with
// ErrQuorum, latches the engine ReadOnly (reads keep serving, writes
// fail fast), TryRecover refuses while partitioned, and recovery after
// healing restores Healthy with no resurrected orphan anywhere.
func TestReplQuorumLossDegrades(t *testing.T) {
	cl := newCluster(t, 2, Config{RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, RetryAttempts: 2})
	e := cl.g.Engine()
	for i := 0; i < 10; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	orphan := geom.Point{rtSide - 1, rtSide - 1}
	orphanKey := cl.c.Index(orphan)
	if _, clash := stateOf(t, cl.c, e)[orphanKey]; clash {
		t.Fatal("workload clashes with the orphan probe point")
	}

	cl.tr.Partition(cl.ids...)
	err := e.Put(orphan, 999999)
	if !errors.Is(err, engine.ErrQuorum) {
		t.Fatalf("partitioned put: %v, want ErrQuorum", err)
	}
	if !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("partitioned put: %v, want ErrReadOnly wrap", err)
	}
	// Reads still serve, without the failed write.
	if _, ok := stateOf(t, cl.c, e)[orphanKey]; ok {
		t.Fatal("failed write visible on leader")
	}
	// Later writes fail fast on the ReadOnly latch.
	if err := e.Put(rtPoint(50), 1); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("degraded put: %v, want ErrReadOnly", err)
	}
	if _, err := cl.g.TryRecover(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned TryRecover: %v, want ErrPartitioned", err)
	}

	cl.tr.Heal()
	h, err := cl.g.TryRecover()
	if err != nil || h != engine.Healthy {
		t.Fatalf("TryRecover after heal: %v, %v", h, err)
	}
	for i := 10; i < 20; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatalf("post-recovery put %d: %v", i, err)
		}
	}
	cl.g.Heartbeat()
	want := stateOf(t, cl.c, e)
	if _, ok := want[orphanKey]; ok {
		t.Fatal("orphan resurrected on leader")
	}
	for i, f := range cl.fs {
		assertSameState(t, cl.c, want, f.Engine(), cl.ids[i])
	}
}

// TestReplOrphanTruncatedOnFollower: a batch that reaches a minority
// before the quorum round fails leaves real entries on one follower.
// After recovery those indices are permanent gaps; the next append must
// make the follower detect the divergence and drop the orphans, so the
// refused write never reaches any follower's engine.
func TestReplOrphanTruncatedOnFollower(t *testing.T) {
	cl := newCluster(t, 3, Config{RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, RetryAttempts: 2})
	e := cl.g.Engine()
	for i := 0; i < 8; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.g.Heartbeat()

	orphan := geom.Point{rtSide - 1, rtSide - 1}
	orphanKey := cl.c.Index(orphan)
	// Quorum is 3 of 4: with two followers cut off, the batch lands on
	// f1's replication log (2 replicas) but fails its round.
	cl.tr.Partition("f2", "f3")
	if err := e.Put(orphan, 999999); !errors.Is(err, engine.ErrQuorum) {
		t.Fatalf("minority put: %v, want ErrQuorum", err)
	}
	if st := cl.fs[0].Status(); st.Last <= st.Applied {
		t.Fatalf("orphan did not reach f1's log: %+v", st)
	}

	cl.tr.Heal()
	if h, err := cl.g.TryRecover(); err != nil || h != engine.Healthy {
		t.Fatalf("TryRecover: %v, %v", h, err)
	}
	for i := 8; i < 16; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatalf("post-recovery put %d: %v", i, err)
		}
	}
	cl.g.Heartbeat()
	want := stateOf(t, cl.c, e)
	if _, ok := want[orphanKey]; ok {
		t.Fatal("orphan on leader")
	}
	for i, f := range cl.fs {
		assertSameState(t, cl.c, want, f.Engine(), cl.ids[i])
		if _, ok := stateOf(t, cl.c, f.Engine())[orphanKey]; ok {
			t.Fatalf("orphan resurrected on %s", cl.ids[i])
		}
		st := f.Status()
		if st.Applied != st.Last {
			t.Fatalf("%s: applied %d != last %d", cl.ids[i], st.Applied, st.Last)
		}
	}
}

// TestReplSeedCatchup: a follower partitioned past the leader's history
// window rejoins by snapshot seed and converges.
func TestReplSeedCatchup(t *testing.T) {
	cl := newCluster(t, 2, Config{HistoryEntries: 4, SeedRefreshEntries: 1 << 20})
	e := cl.g.Engine()
	cl.tr.Partition("f2")
	for i := 0; i < 30; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.tr.Heal()
	cl.g.Heartbeat()
	want := stateOf(t, cl.c, e)
	assertSameState(t, cl.c, want, cl.fs[1].Engine(), "f2")
	if st := cl.fs[1].Status(); st.Seeds == 0 {
		t.Fatalf("f2 was not seeded: %+v", st)
	}
	if n := cl.g.Telemetry().Snapshot().Counter("repl_seeds_total"); n == 0 {
		t.Fatal("repl_seeds_total is zero")
	}
}

// TestReplLogRecovery: the follower log keeps its longest valid prefix
// across torn tails, and truncate/compact round-trip durably.
func TestReplLogRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := openReplLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	var es []Entry
	for i := 1; i <= 10; i++ {
		es = append(es, Entry{Index: uint64(i), Epoch: 1, Op: []byte{byte(i), 0xab, 0xcd}})
	}
	if err := l.append(es); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-entry: replay must keep exactly the prefix.
	path := filepath.Join(dir, logName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	l, err = openReplLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if li, _, _ := l.last(); li != 9 {
		t.Fatalf("after torn tail: last = %d, want 9", li)
	}

	if err := l.truncateAfter(6); err != nil {
		t.Fatal(err)
	}
	if err := l.compactThrough(2); err != nil {
		t.Fatal(err)
	}
	if err := l.append([]Entry{{Index: 8, Epoch: 2, Op: []byte{8}}}); err != nil {
		t.Fatal(err)
	}
	l.close() //nolint:errcheck
	l, err = openReplLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.close() //nolint:errcheck
	wantIdx := []uint64{3, 4, 5, 6, 8}
	if len(l.entries) != len(wantIdx) {
		t.Fatalf("%d entries, want %d", len(l.entries), len(wantIdx))
	}
	for i, w := range wantIdx {
		if l.entries[i].Index != w {
			t.Fatalf("entry %d: index %d, want %d", i, l.entries[i].Index, w)
		}
	}
	if ep, ok := l.at(8); !ok || ep != 2 {
		t.Fatalf("at(8) = %d, %v", ep, ok)
	}
	if _, ok := l.at(7); ok {
		t.Fatal("at(7) found a gap index")
	}
}

// TestQuorumWatermark pins the promotion safety rule.
func TestQuorumWatermark(t *testing.T) {
	cases := []struct {
		lasts  []uint64
		quorum int
		want   uint64
	}{
		{[]uint64{10, 7}, 2, 10},        // 3 replicas: acked needs 1 follower
		{[]uint64{10, 7, 3}, 3, 7},      // 5 replicas (one down): needs 2 followers
		{[]uint64{10, 7, 3, 2}, 3, 7},   // 5 replicas: needs 2 followers
		{[]uint64{5}, 3, 0},             // too few survivors to attest anything
		{[]uint64{12}, 1, 12},           // degenerate single-node quorum
		{[]uint64{4, 4, 4, 4, 4}, 4, 4}, // unanimous
	}
	for i, tc := range cases {
		if got := QuorumWatermark(tc.lasts, tc.quorum); got != tc.want {
			t.Errorf("case %d: QuorumWatermark(%v, %d) = %d, want %d", i, tc.lasts, tc.quorum, got, tc.want)
		}
	}
}
