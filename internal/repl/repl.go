// Package repl replicates an engine's write-ahead log to a set of
// followers with quorum acknowledgment — the durability half of the
// distributed serving tier.
//
// The leader is an ordinary engine whose CommitHook tees every framed op
// into an in-memory replication log and gates the group-commit
// rendezvous on quorum: the leader's single fsync and a single
// round-trip to the followers cover the whole batch, so an acknowledged
// synchronous write means "fsynced on a majority". Followers persist the
// shipped entries in their own CRC-framed replication log (fsynced
// before acknowledging) and apply the quorum-committed prefix to their
// engine through the same op encoding WAL replay uses, so a follower's
// engine converges bit-identically to the leader's.
//
// Entries carry explicit (index, epoch) pairs. Epochs fence leadership:
// a follower rejects traffic from a stale epoch, and promotion bumps the
// epoch so a deposed leader cannot ack. Indices may have gaps — a batch
// that failed its quorum round occupies indices the leader abandons when
// it recovers — and the follower-side consistency check (match at
// PrevIndex/PrevEpoch, truncate un-applied conflicting suffixes) repairs
// followers that received such orphans. A node whose *applied* state
// diverges — canonically an ex-leader rejoining with writes no quorum
// ever acknowledged — cannot truncate its engine, so it re-seeds: the
// leader ships a snapshot (engine.Snapshot + engine.Restore, which also
// replays the leader's archived WALs), wiping the divergent history
// rather than resurrecting it.
//
// Failover is deterministic and externally driven: the controller (a
// test, an operator, a future consensus layer) picks the reachable
// follower with the longest log — which holds every quorum-acknowledged
// entry, by the quorum intersection argument — and Promote turns it into
// a leader under a higher epoch.
//
// Losing quorum degrades, never corrupts: the commit hook retries with
// capped jittered backoff, then fails the batch with engine.ErrQuorum;
// the engine latches ReadOnly (reads keep serving) and Group.TryRecover
// re-probes the peers, drops the un-acked orphan suffix, and rotates the
// engine's log once a quorum is reachable again.
//
// Transports are pluggable. The in-process Loopback transport serves
// single-process replica sets (and every test, wrapped in the
// fault-injecting Injecting transport); an RPC transport is the planned
// other half of the distributed tier.
package repl

import (
	"errors"
	"time"

	"github.com/onioncurve/onion/internal/engine"
)

var (
	// ErrClosed reports use of a closed Group or Follower.
	ErrClosed = errors.New("repl: closed")
	// ErrFenced reports a request carrying a stale epoch: a newer leader
	// exists and the sender must stop acknowledging writes.
	ErrFenced = errors.New("repl: stale epoch (fenced)")
	// ErrUnknownPeer reports a transport send to a peer id the transport
	// has no route for.
	ErrUnknownPeer = errors.New("repl: unknown peer")
	// ErrPartitioned reports a send dropped by an injected network
	// partition.
	ErrPartitioned = errors.New("repl: peer partitioned")
)

// Entry is one replicated op: the leader-assigned log index, the epoch
// the entry was appended under, and the engine's WAL payload encoding of
// the op (engine.EncodeOp / engine.DecodeOp).
type Entry struct {
	Index uint64
	Epoch uint64
	Op    []byte
}

// Config tunes a leader Group. The zero value of every optional field
// selects a default.
type Config struct {
	// ID is this node's identity, echoed in requests so followers know
	// their leader.
	ID string
	// Peers are the follower ids writes must reach. Quorum counts the
	// leader itself, so N peers form an N+1-replica group.
	Peers []string
	// Transport routes requests to peers. Required when Peers is
	// non-empty.
	Transport Transport
	// Quorum is how many replicas (leader included) must hold a batch
	// durably before it acknowledges. Default: majority of 1+len(Peers).
	Quorum int
	// Engine tunes the leader engine for Lead and Promote (SyncWrites is
	// forced on — replication rides the group-commit path).
	Engine engine.Options
	// HistoryEntries bounds the in-memory resend window. A follower
	// whose ack falls behind the window is caught up by snapshot seed
	// instead of resend. Default 1 << 14.
	HistoryEntries int
	// MaxBatchEntries caps entries per Append request during catch-up
	// streaming. Default 512.
	MaxBatchEntries int
	// SeedRefreshEntries re-exports the catch-up seed snapshot once the
	// leader has moved this many entries past it. With a WAL retention
	// cap the seed is always refreshed, since the archived gap a stale
	// seed depends on may have been pruned. Default HistoryEntries.
	SeedRefreshEntries int
	// Epoch is the starting epoch (Promote passes the successor epoch;
	// a fresh group starts at 1).
	Epoch uint64
	// RetryBase/RetryCap/RetryAttempts shape the quorum retry: failed
	// rounds back off exponentially from RetryBase, capped at RetryCap,
	// jittered ±50%, for RetryAttempts rounds before the batch fails
	// with engine.ErrQuorum. Defaults: 2ms, 20ms, 3.
	RetryBase     time.Duration
	RetryCap      time.Duration
	RetryAttempts int
	// CatchUpInterval is the coalescing window of the catch-up loop: how
	// long the loop sits on a rung bell before serving the lagging tail,
	// so that one resend run (one follower log fsync) covers every batch
	// that landed in the window. Longer windows keep catch-up barrier
	// traffic off the device the commit path is fsyncing; shorter windows
	// bound the lag replicas' staleness tighter. Default 10ms.
	CatchUpInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Quorum <= 0 {
		c.Quorum = (1+len(c.Peers))/2 + 1
	}
	if c.HistoryEntries <= 0 {
		c.HistoryEntries = 1 << 14
	}
	if c.MaxBatchEntries <= 0 {
		c.MaxBatchEntries = 512
	}
	if c.SeedRefreshEntries <= 0 {
		c.SeedRefreshEntries = c.HistoryEntries
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 20 * time.Millisecond
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.CatchUpInterval <= 0 {
		c.CatchUpInterval = 10 * time.Millisecond
	}
	c.Engine.SyncWrites = true
	return c
}

// FollowerOptions tunes a Follower.
type FollowerOptions struct {
	// Engine tunes the follower's engine. SyncWrites stays off by
	// default: the follower's durable truth is its replication log, and
	// the engine catches up on compaction and close.
	Engine engine.Options
	// MaxLogEntries triggers replication-log compaction: once the log
	// holds more than this many entries, the applied prefix is synced
	// into the engine and dropped. Default 1 << 14.
	MaxLogEntries int
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.MaxLogEntries <= 0 {
		o.MaxLogEntries = 1 << 14
	}
	return o
}
