package repl

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/engine"
)

// TestReplSeedWithArchivedWALs partitions a follower until the leader's
// resend window has rolled past it AND the leader's WAL history has
// rotated into the archive across several flush cycles, then heals and
// proves the rejoin path — snapshot restore plus archived-WAL replay
// plus resend of the live tail — converges bit-identically. This is the
// WALRetention-enabled variant of seeding: the restored engine may land
// ahead of the seed base because the archive replays past the snapshot's
// flush point, and the follower's LWW re-application of the resend
// window must absorb that overlap.
func TestReplSeedWithArchivedWALs(t *testing.T) {
	opts := engine.Options{
		PageBytes:     256,
		FlushEntries:  8, // frequent flushes rotate WALs into the archive
		CompactFanout: -1,
		Shards:        2,
		WALRetention:  0, // archive every retired WAL, keep all
	}
	cl := newCluster(t, 2, Config{
		HistoryEntries:     4, // tiny resend window: a lagging peer must seed
		SeedRefreshEntries: 1 << 20,
		Engine:             opts,
		RetryBase:          time.Millisecond,
		RetryCap:           2 * time.Millisecond,
		RetryAttempts:      2,
	})
	e := cl.g.Engine()

	// A few committed writes, then f2 drops off the network.
	for i := 0; i < 10; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.g.Heartbeat()
	cl.tr.Partition("f2")

	// Enough writes to blow past the resend window and cycle several
	// memtable flushes, so retired WALs pile up in the archive that the
	// seed restore will replay.
	for i := 10; i < 70; i++ {
		if err := e.Put(rtPoint(i%40), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	leaderDir := filepath.Join(filepath.Dir(cl.fs[0].dir), "leader")
	wals, err := os.ReadDir(filepath.Join(leaderDir, "archive"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("expected archived WALs on the leader (err %v, %d files): the test must exercise archive replay", err, len(wals))
	}

	cl.tr.Heal()
	for i := 0; i < 30; i++ {
		cl.g.Heartbeat()
		if st := cl.fs[1].Status(); st.Seeds > 0 && st.Applied == st.Last && cl.g.Lag()["f2"] == 0 {
			break
		}
	}
	st := cl.fs[1].Status()
	if st.Seeds == 0 {
		t.Fatalf("f2 rejoined without seeding (applied %d last %d)", st.Applied, st.Last)
	}
	if st.Applied != st.Last || cl.g.Lag()["f2"] != 0 {
		t.Fatalf("f2 did not converge: applied %d last %d lag %d", st.Applied, st.Last, cl.g.Lag()["f2"])
	}
	want := stateOf(t, cl.c, e)
	assertSameState(t, cl.c, want, cl.fs[0].Engine(), "f1")
	assertSameState(t, cl.c, want, cl.fs[1].Engine(), "f2")
}
