package repl

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
)

const benchSide = 64

func benchEngOpts() engine.Options {
	return engine.Options{PageBytes: 4096, SyncWrites: true}
}

// benchProducers drives exactly b.N durable puts split across 16
// closed-loop producer goroutines — the group-commit workload both
// variants below share, so the only delta between them is the
// replication tax per committed batch.
func benchProducers(b *testing.B, put func(geom.Point, uint64) error) {
	b.Helper()
	const producers = 16
	base, extra := b.N/producers, b.N%producers
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		n := base
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < n; i++ {
				pt := geom.Point{uint32(rng.Int31n(benchSide)), uint32(rng.Int31n(benchSide))}
				if err := put(pt, rng.Uint64()); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkReplIngest compares durable group-committed ingest without
// replication (solo) against the same workload quorum-committed across
// a 3-replica group (r3: leader + 2 in-process followers, majority
// quorum 2). The ratio is the price of "fsynced on a quorum" over
// "fsynced here" — CI gates it at 2.5x.
func BenchmarkReplIngest(b *testing.B) {
	c, err := core.NewOnion2D(benchSide)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("solo", func(b *testing.B) {
		e, err := engine.Open(b.TempDir(), c, benchEngOpts())
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close() //nolint:errcheck
		benchProducers(b, e.Put)
	})

	b.Run("r3", func(b *testing.B) {
		dir := b.TempDir()
		lb := NewLoopback()
		var followers []*Follower
		var peers []string
		for i := 1; i <= 2; i++ {
			id := fmt.Sprintf("f%d", i)
			f, err := OpenFollower(id, filepath.Join(dir, id), c, FollowerOptions{Engine: benchEngOpts()})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close() //nolint:errcheck
			lb.Register(id, f)
			followers = append(followers, f)
			peers = append(peers, id)
		}
		g, err := Lead(filepath.Join(dir, "leader"), c, Config{
			ID: "leader", Peers: peers, Transport: lb, Engine: benchEngOpts(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close() //nolint:errcheck
		benchProducers(b, g.Engine().Put)
		b.StopTimer()
		// Convergence outside the timed region: the gate measures the
		// quorum-commit path, not end-of-run catch-up.
		g.Heartbeat()
		for _, f := range followers {
			if st := f.Status(); st.Applied != st.Last {
				b.Fatalf("follower %s did not converge: applied %d last %d", st.ID, st.Applied, st.Last)
			}
		}
	})
}
