package repl

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/pagedstore"
)

// mxOp is one step of the deterministic fault-matrix workload.
type mxOp struct {
	p       geom.Point
	payload uint64
	del     bool
}

// mxWorkload mixes puts, overwrites and deletes over a small key set so
// last-writer-wins convergence is actually exercised, not just inserts.
func mxWorkload() []mxOp {
	ops := make([]mxOp, 0, 24)
	for i := 0; i < 24; i++ {
		op := mxOp{p: rtPoint(i % 16), payload: uint64(1000 + i)}
		if i%7 == 3 {
			op.del = true
		}
		ops = append(ops, op)
	}
	return ops
}

func mxApply(e *engine.Engine, op mxOp) error {
	if op.del {
		return e.Delete(op.p)
	}
	return e.Put(op.p, op.payload)
}

// mxRun drives the workload against the leader and returns how many
// leading ops were acknowledged. Once one op fails (quorum loss latches
// the engine read-only) every later op must fail too — a success after a
// failure would mean an un-acked write slipped past the degraded latch.
func mxRun(t *testing.T, g *Group, ops []mxOp) int {
	t.Helper()
	acked := 0
	failed := false
	for i, op := range ops {
		err := mxApply(g.Engine(), op)
		if err == nil {
			if failed {
				t.Fatalf("op %d succeeded after an earlier quorum failure", i)
			}
			acked++
			continue
		}
		if !errors.Is(err, engine.ErrQuorum) && !errors.Is(err, engine.ErrReadOnly) {
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
		failed = true
	}
	return acked
}

// mxOracle replays ops[:j] serially into a fresh solo engine and returns
// its fully compacted records and seek stats — the ground truth a
// promoted leader must be bit-identical to.
func mxOracle(t *testing.T, cl *cluster, ops []mxOp, j int) ([]engine.Record, engine.Stats) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), fmt.Sprintf("oracle-%d", j))
	e, err := engine.Open(dir, cl.c, rtEngOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() //nolint:errcheck
	for _, op := range ops[:j] {
		if err := mxApply(e, op); err != nil {
			t.Fatal(err)
		}
	}
	return mxNormalized(t, cl, e)
}

// mxNormalized flushes and compacts e, then queries the whole universe.
// Compaction lays every engine out page-for-page like a bulk load, so
// two engines holding the same logical records return bit-identical
// seek stats — the clustering-accounting contract from the engine docs.
func mxNormalized(t *testing.T, cl *cluster, e *engine.Engine) ([]engine.Record, engine.Stats) {
	t.Helper()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := e.Query(cl.c.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	stats.IO = pagedstore.IOStats{} // cache-dependent, excluded from the contract
	return recs, stats
}

func mxEqual(cl *cluster, a, b []engine.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cl.c.Index(a[i].Point) != cl.c.Index(b[i].Point) || a[i].Payload != b[i].Payload {
			return false
		}
	}
	return true
}

// mxScenario kills the leader transport at the n-th Append with the
// given kind, promotes the longest surviving follower at the quorum
// watermark, and proves the promoted state is bit-identical to a serial
// oracle of an acked-consistent prefix.
func mxScenario(t *testing.T, ops []mxOp, kind FaultKind, n int64) {
	cl := newCluster(t, 2, Config{
		RetryBase: 200 * time.Microsecond, RetryCap: time.Millisecond, RetryAttempts: 2,
	})
	cl.tr.SetFaults(Fault{Op: FaultAppend, N: n, Kind: kind})
	acked := mxRun(t, cl.g, ops)

	// The leader is dead. Close its group (the transport latch already
	// stopped it reaching anyone) and bring the network back for the
	// survivors.
	cl.g.Close() //nolint:errcheck
	cl.g = nil
	cl.tr.SetFaults()
	cl.tr.Revive()

	s1, s2 := cl.fs[0].Status(), cl.fs[1].Status()
	w := QuorumWatermark([]uint64{s1.Last, s2.Last}, 2)
	pick := 0
	if s2.Last > s1.Last {
		pick = 1
	}
	other := 1 - pick
	cl.lb.Unregister(cl.ids[pick])
	ng, err := Promote(cl.fs[pick], w, Config{
		ID: "leader2", Peers: []string{cl.ids[other]}, Transport: cl.tr,
		Engine: rtEngOpts(), RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("promote %s at %d (lasts %d/%d, acked %d): %v",
			cl.ids[pick], w, s1.Last, s2.Last, acked, err)
	}
	defer ng.Close() //nolint:errcheck

	// Every quorum-acked op must survive; at most one in-flight op may
	// additionally appear (its ack was lost, e.g. crashack fired after
	// the follower made it durable). Nothing past that may resurrect.
	gotRecs, gotStats := mxNormalized(t, cl, ng.Engine())
	matched := -1
	for _, j := range []int{acked, acked + 1} {
		if j > len(ops) {
			continue
		}
		wantRecs, wantStats := mxOracle(t, cl, ops, j)
		if mxEqual(cl, gotRecs, wantRecs) {
			if gotStats != wantStats {
				t.Fatalf("records match oracle(%d) but stats diverge: got %+v want %+v", j, gotStats, wantStats)
			}
			matched = j
			break
		}
	}
	if matched < 0 {
		t.Fatalf("promoted state (%d records) matches neither oracle(%d) nor oracle(%d); lasts %d/%d watermark %d",
			len(gotRecs), acked, acked+1, s1.Last, s2.Last, w)
	}

	// The new leader must be live: a post-failover write reaches quorum
	// and converges on the surviving follower.
	probe := geom.Point{rtSide - 1, rtSide - 1}
	if err := ng.Engine().Put(probe, 424242); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	ng.Heartbeat()
	st := stateOf(t, cl.c, cl.fs[other].Engine())
	if st[cl.c.Index(probe)] != 424242 {
		t.Fatalf("surviving follower missed the post-failover write")
	}
	if fs := cl.fs[other].Status(); fs.Applied != fs.Last {
		t.Fatalf("surviving follower lag: applied %d last %d", fs.Applied, fs.Last)
	}
}

// TestFailoverFaultMatrix kills the leader at every replication step —
// both before a delivery (crash) and one instant after the follower made
// it durable but before the ack returned (crashack) — then promotes a
// survivor and proves every quorum-acked batch survives, no un-acked
// suffix resurrects, and records and seek stats are bit-identical to a
// serial replay oracle.
func TestFailoverFaultMatrix(t *testing.T) {
	ops := mxWorkload()

	// Rehearsal: a clean run with a count-only rule enumerates how many
	// Append deliveries the workload generates, i.e. the injection points.
	cl := newCluster(t, 2, Config{})
	cl.tr.SetFaults(Fault{Op: FaultAppend}) // N=0: count, never fire
	if acked := mxRun(t, cl.g, ops); acked != len(ops) {
		t.Fatalf("rehearsal acked %d/%d", acked, len(ops))
	}
	total := cl.tr.Matched(0)
	if total < int64(len(ops)) {
		t.Fatalf("rehearsal counted %d appends for %d ops", total, len(ops))
	}
	cl.g.Close() //nolint:errcheck
	cl.g = nil

	stride := int64(1)
	if testing.Short() {
		stride = total/6 + 1
	}
	for _, kind := range []FaultKind{KindCrash, KindCrashAck} {
		for n := int64(1); n <= total; n += stride {
			t.Run(fmt.Sprintf("%s/append%d", kind, n), func(t *testing.T) {
				mxScenario(t, ops, kind, n)
			})
		}
	}
}

// TestFailoverRejoin walks the full leader-death story once, linearly:
// quorum loss degrades the old leader, a survivor is promoted, the old
// leader is fenced by the higher epoch when the partition heals, and it
// rejoins as a follower only through a full re-seed — converging
// bit-identically and shedding the orphaned suffix it refused.
func TestFailoverRejoin(t *testing.T) {
	cl := newCluster(t, 2, Config{
		RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond, RetryAttempts: 2,
	})
	ops := mxWorkload()
	for _, op := range ops {
		if err := mxApply(cl.g.Engine(), op); err != nil {
			t.Fatal(err)
		}
	}
	cl.g.Heartbeat()

	// Cut the old leader off and write an orphan it can never commit.
	cl.tr.Partition(cl.ids...)
	orphan := geom.Point{rtSide - 1, 0}
	if err := cl.g.Engine().Put(orphan, 666); err == nil {
		t.Fatal("orphan write committed under total partition")
	} else if !errors.Is(err, engine.ErrQuorum) {
		t.Fatalf("orphan write: %v", err)
	}

	// Promote f1 behind the old leader's back. "ex" — the id the old
	// leader will rejoin under — is a peer from the start; until it
	// registers, sends to it simply fail and are retried. f1 stays
	// registered (its consumed handler answers ErrClosed) so the old
	// leader's probes still see a reachable cluster.
	s1, s2 := cl.fs[0].Status(), cl.fs[1].Status()
	w := QuorumWatermark([]uint64{s1.Last, s2.Last}, 2)
	ng, err := Promote(cl.fs[0], w, Config{
		ID: "leader2", Peers: []string{"f2", "ex"}, Transport: cl.tr,
		Engine: rtEngOpts(), RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ng.Close() //nolint:errcheck
	if ng.Epoch() <= 1 {
		t.Fatalf("promotion kept epoch %d", ng.Epoch())
	}

	// The partition heals with two leaders alive. The new epoch must win:
	// the new leader's write commits, and the old leader — whether its
	// own background catch-up already ran into epoch 2, or its next
	// explicit quorum round does — ends up fenced.
	cl.tr.Heal()
	if err := ng.Engine().Put(geom.Point{0, rtSide - 1}, 777); err != nil {
		t.Fatalf("new leader write: %v", err)
	}
	ng.Heartbeat()
	if _, err := cl.g.TryRecover(); err == nil {
		err = cl.g.Engine().Put(geom.Point{1, 1}, 888)
		if !errors.Is(err, engine.ErrQuorum) || !errors.Is(err, ErrFenced) {
			t.Fatalf("stale leader write: %v, want quorum+fenced", err)
		}
	} else if !errors.Is(err, ErrFenced) {
		t.Fatalf("old leader recover: %v", err)
	}
	if _, err := cl.g.TryRecover(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced TryRecover: %v", err)
	}

	// The ex-leader rejoins as a follower. Its durable role says leader,
	// so it must be re-seeded before serving — its divergent suffix (the
	// orphan, plus the fenced 888 write sitting in its WAL) is shed
	// wholesale by the snapshot restore.
	dir := filepath.Join(filepath.Dir(cl.fs[0].dir), "leader")
	if err := cl.g.Close(); err != nil {
		t.Fatal(err)
	}
	cl.g = nil
	exf, err := OpenFollower("ex", dir, cl.c, FollowerOptions{Engine: rtEngOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer exf.Close() //nolint:errcheck
	if !exf.Status().MustSeed {
		t.Fatal("ex-leader rejoined without the re-seed latch")
	}
	cl.lb.Register("ex", exf)
	// The first heartbeat discovers the NeedSeed answer, the next one
	// ships the snapshot; give the exchange a few rounds.
	for i := 0; i < 20 && exf.Status().Seeds == 0; i++ {
		ng.Heartbeat()
	}
	if exf.Status().Seeds == 0 {
		t.Fatal("ex-leader was not re-seeded")
	}
	ng.Heartbeat()

	want := stateOf(t, cl.c, ng.Engine())
	if _, ok := want[cl.c.Index(orphan)]; ok {
		t.Fatal("orphan resurrected on the new leader")
	}
	assertSameState(t, cl.c, want, exf.Engine(), "ex-leader")
	assertSameState(t, cl.c, want, cl.fs[1].Engine(), "f2")
	if st := exf.Status(); st.MustSeed {
		t.Fatal("re-seed latch still set after seeding")
	}
}
