package repl

import "github.com/onioncurve/onion/internal/telemetry"

// groupTelemetry owns the repl_* series. They live on the Group's own
// registry — not the engine's — mirroring the cache-ownership rule:
// whoever creates a shared subsystem exports its metrics exactly once,
// so shard roll-ups that merge per-engine registries never double-count
// replication counters.
type groupTelemetry struct {
	reg *telemetry.Registry

	batches    *telemetry.Counter   // quorum rounds acknowledged
	entries    *telemetry.Counter   // entries shipped inside Ok appends
	appends    *telemetry.Counter   // Append requests sent (incl. retries, heartbeats)
	seeds      *telemetry.Counter   // snapshot seeds served
	quorumLost *telemetry.Counter   // batches failed with ErrQuorum
	sendErrors *telemetry.Counter   // transport errors (drops, partitions, crashes)
	failovers  *telemetry.Counter   // promotions that produced this leader
	quorumLat  *telemetry.Histogram // µs from fsync to quorum ack, per batch
}

func newGroupTelemetry(g *Group) *groupTelemetry {
	reg := telemetry.NewRegistry()
	t := &groupTelemetry{
		reg:        reg,
		batches:    reg.Counter("repl_batches_total"),
		entries:    reg.Counter("repl_entries_shipped_total"),
		appends:    reg.Counter("repl_appends_total"),
		seeds:      reg.Counter("repl_seeds_total"),
		quorumLost: reg.Counter("repl_quorum_lost_total"),
		sendErrors: reg.Counter("repl_send_errors_total"),
		failovers:  reg.Counter("repl_failovers_total"),
		quorumLat:  reg.Histogram("repl_quorum_latency_us"),
	}
	reg.GaugeFunc("repl_epoch", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.epoch)
	})
	reg.GaugeFunc("repl_commit_index", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.commit)
	})
	reg.GaugeFunc("repl_last_index", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.lastEntryIndex())
	})
	reg.GaugeFunc("repl_follower_lag_entries", func() int64 {
		return int64(g.maxLag())
	})
	return t
}
