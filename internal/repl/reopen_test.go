package repl

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/engine"
)

// leadEngineCluster wires followers plus a LeadEngine-led leader whose
// engine is opened by the test (the shard.OpenReplicated shape), so the
// engine's real options and cfg.Engine can differ.
type leadEngineCluster struct {
	*cluster
	eng *engine.Engine
}

func newLeadEngineCluster(t *testing.T, followers int, opts engine.Options, cfg Config) *leadEngineCluster {
	t.Helper()
	cl := &cluster{t: t, c: rtCurve(t), lb: NewLoopback()}
	cl.tr = NewInjectingTransport(cl.lb)
	base := t.TempDir()
	for i := 0; i < followers; i++ {
		id := fmt.Sprintf("f%d", i+1)
		f, err := OpenFollower(id, filepath.Join(base, id), cl.c, FollowerOptions{Engine: rtEngOpts()})
		if err != nil {
			t.Fatal(err)
		}
		cl.lb.Register(id, f)
		cl.fs = append(cl.fs, f)
		cl.ids = append(cl.ids, id)
	}
	lc := &leadEngineCluster{cluster: cl}
	hook := NewHook(cl.c.Universe().Dims())
	opts.CommitHook = hook
	opts.SyncWrites = true
	eng, err := engine.Open(filepath.Join(base, "leader"), cl.c, opts)
	if err != nil {
		t.Fatal(err)
	}
	lc.eng = eng
	cfg.ID = "leader"
	cfg.Peers = cl.ids
	cfg.Transport = cl.tr
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	g, err := LeadEngine(eng, filepath.Join(base, "leader"), hook, cfg)
	if err != nil {
		eng.Close() //nolint:errcheck
		t.Fatal(err)
	}
	cl.g = g
	t.Cleanup(func() {
		if cl.g != nil {
			cl.g.Close() //nolint:errcheck
		}
		eng.Close() //nolint:errcheck
		for _, f := range cl.fs {
			f.Close() //nolint:errcheck
		}
	})
	return lc
}

// TestLeadEngineReopenReseeds: the documented reopen path — LeadEngine
// over an ex-leader directory under a higher epoch — restarts the
// replication index namespace at zero while the followers still hold
// high old-epoch indices. Every follower must be re-seeded: a follower
// whose log has compacted (base > 0) answers the reopened leader's
// first Append with a resend hint Ack = its old last index, and
// adopting that hint would satisfy ack >= target and acknowledge
// quorum for writes no follower holds.
func TestLeadEngineReopenReseeds(t *testing.T) {
	c := rtCurve(t)
	lb := NewLoopback()
	tr := NewInjectingTransport(lb)
	base := t.TempDir()
	var fs []*Follower
	ids := []string{"f1", "f2"}
	for _, id := range ids {
		// Tiny log cap: the followers compact during the first life, so
		// the reopened leader meets base > 0 — the exact state whose
		// resend hint used to be adopted as a fake ack.
		f, err := OpenFollower(id, filepath.Join(base, id), c,
			FollowerOptions{Engine: rtEngOpts(), MaxLogEntries: 4})
		if err != nil {
			t.Fatal(err)
		}
		lb.Register(id, f)
		fs = append(fs, f)
	}
	defer func() {
		for _, f := range fs {
			f.Close() //nolint:errcheck
		}
	}()
	leaderDir := filepath.Join(base, "leader")
	g, err := Lead(leaderDir, c, Config{
		ID: "leader", Peers: ids, Transport: tr,
		Engine: rtEngOpts(), RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Engine()
	for i := 0; i < 20; i++ {
		if err := e.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
		g.Heartbeat() // watermark pushes drive apply + compaction
	}
	for i, f := range fs {
		if st := f.Status(); st.Base == 0 {
			t.Fatalf("%s never compacted (base 0): the test must meet the compacted-follower state", ids[i])
		} else if st.Last < 20 {
			t.Fatalf("%s holds %d entries, want 20", ids[i], st.Last)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	hook := NewHook(c.Universe().Dims())
	opts := rtEngOpts()
	opts.CommitHook = hook
	opts.SyncWrites = true
	eng, err := engine.Open(leaderDir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck
	ng, err := LeadEngine(eng, leaderDir, hook, Config{
		ID: "leader", Peers: ids, Transport: tr, Epoch: 2,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ng.Close() //nolint:errcheck

	// A post-reopen write's ack must mean real follower durability —
	// checked before any catch-up round runs, since a later heartbeat
	// would repair the divergence and hide a fake quorum ack. The write
	// is the reopened namespace's first entry (index 1, epoch 2) and the
	// quorum's fast-path follower is the first peer.
	if err := eng.Put(rtPoint(50), 4242); err != nil {
		t.Fatalf("post-reopen put: %v", err)
	}
	fs[0].mu.Lock()
	ep, held := fs[0].log.at(1)
	fs[0].mu.Unlock()
	if !held || ep != 2 {
		t.Fatalf("acked post-reopen write is not durable on f1: at(1) = epoch %d, held %v", ep, held)
	}
	ng.Heartbeat()
	want := stateOf(t, c, eng)
	if len(want) < 20 {
		t.Fatalf("leader lost pre-reopen data: %d records", len(want))
	}
	for i, f := range fs {
		if st := f.Status(); st.Seeds == 0 {
			t.Fatalf("%s rejoined the reopened leader without a seed: %+v", ids[i], st)
		}
		assertSameState(t, c, want, f.Engine(), ids[i])
	}
	for id, lag := range ng.Lag() {
		if lag != 0 {
			t.Fatalf("%s lag %d after reopen heartbeat", id, lag)
		}
	}
}

// TestLeadNonEmptyEngineSeedsPeers: Lead over a directory holding a
// pre-existing (never-replicated) engine must push the pre-existing
// dataset to the followers by snapshot seed — it never flows through
// the commit hook, so quorum acks for new writes alone would leave a
// promoted follower silently missing everything that predated Lead.
func TestLeadNonEmptyEngineSeedsPeers(t *testing.T) {
	c := rtCurve(t)
	base := t.TempDir()
	leaderDir := filepath.Join(base, "leader")
	pre, err := engine.Open(leaderDir, c, rtEngOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pre.Put(rtPoint(i), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pre.Close(); err != nil {
		t.Fatal(err)
	}

	lb := NewLoopback()
	tr := NewInjectingTransport(lb)
	var fs []*Follower
	ids := []string{"f1", "f2"}
	for _, id := range ids {
		f, err := OpenFollower(id, filepath.Join(base, id), c, FollowerOptions{Engine: rtEngOpts()})
		if err != nil {
			t.Fatal(err)
		}
		lb.Register(id, f)
		fs = append(fs, f)
	}
	defer func() {
		for _, f := range fs {
			f.Close() //nolint:errcheck
		}
	}()
	g, err := Lead(leaderDir, c, Config{
		ID: "leader", Peers: ids, Transport: tr,
		Engine: rtEngOpts(), RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck

	if err := g.Engine().Put(rtPoint(20), 777); err != nil {
		t.Fatal(err)
	}
	g.Heartbeat()
	want := stateOf(t, c, g.Engine())
	if len(want) < 10 {
		t.Fatalf("leader lost pre-existing data: %d records", len(want))
	}
	for i, f := range fs {
		if st := f.Status(); st.Seeds == 0 {
			t.Fatalf("%s was not seeded with the pre-existing dataset: %+v", ids[i], st)
		}
		assertSameState(t, c, want, f.Engine(), ids[i])
	}
}

// TestReplBatchLargerThanHistory: a single batch larger than the resend
// window must not trim its own uncommitted entries — that would force
// its followers into a seed that cannot be exported while the write is
// in flight, failing the quorum round against healthy replicas (and, in
// the extreme, trimming every entry of the rendezvous window and
// acknowledging with no quorum check at all). The window is allowed to
// balloon for the batch's lifetime and snaps back afterwards.
func TestReplBatchLargerThanHistory(t *testing.T) {
	cl := newCluster(t, 2, Config{HistoryEntries: 4})
	e := cl.g.Engine()
	batch := make([]engine.BatchOp, 30)
	for i := range batch {
		batch[i] = engine.BatchOp{Point: rtPoint(i), Payload: uint64(1000 + i)}
	}
	if err := e.PutBatch(batch); err != nil {
		t.Fatalf("oversized batch: %v", err)
	}
	if h, err := e.Health(); err != nil || h != engine.Healthy {
		t.Fatalf("health after oversized batch: %v, %v", h, err)
	}
	cl.g.Heartbeat()
	want := stateOf(t, cl.c, e)
	for i, f := range cl.fs {
		assertSameState(t, cl.c, want, f.Engine(), cl.ids[i])
	}
	// The batch was covered by live history, never by seed.
	for i, f := range cl.fs {
		if st := f.Status(); st.Seeds != 0 {
			t.Fatalf("%s needed a seed for an in-window batch: %+v", cl.ids[i], st)
		}
	}
	// The ballooned window snaps back once the watermark passes.
	if err := e.Put(rtPoint(40), 1); err != nil {
		t.Fatal(err)
	}
	cl.g.mu.Lock()
	histLen := len(cl.g.hist)
	cl.g.mu.Unlock()
	if histLen > 4 {
		t.Fatalf("history window did not snap back: %d entries, cap 4", histLen)
	}
}

// TestReplLogAppendAfterHandleLoss: once the log's file handle is gone
// (a rewrite that renamed but could not reopen poisons it, close nils
// it), append must fail loudly — never "succeed" against a missing or
// unlinked file and let acknowledged entries vanish on restart.
func TestReplLogAppendAfterHandleLoss(t *testing.T) {
	l, err := openReplLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append([]Entry{{Index: 1, Epoch: 1, Op: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	if err := l.append([]Entry{{Index: 2, Epoch: 1, Op: []byte{2}}}); err == nil {
		t.Fatal("append with a lost handle reported success")
	}
}

// TestSeedRefreshReadsEngineRetention: with LeadEngine the engine's real
// options live on the engine, not on cfg.Engine (which may be zero). A
// leader whose engine prunes archived WALs must refresh the seed
// snapshot for every seed round — reusing a cached seed whose restore
// chain depends on pruned archives would under-fill the follower while
// Base overstates its coverage.
func TestSeedRefreshReadsEngineRetention(t *testing.T) {
	opts := rtEngOpts()
	opts.FlushEntries = 8 // frequent flushes rotate WALs into the archive
	opts.WALRetention = 1 // prune aggressively: stale seeds go bad
	lc := newLeadEngineCluster(t, 2, opts, Config{
		HistoryEntries:     4,
		SeedRefreshEntries: 1 << 20, // reuse would kick in absent the retention gate
		RetryBase:          time.Millisecond,
		RetryCap:           2 * time.Millisecond,
		RetryAttempts:      2,
	})
	e := lc.eng

	seedRound := func(round, from, to int) uint64 {
		lc.tr.Partition("f2")
		for i := from; i < to; i++ {
			if err := e.Put(rtPoint(i%40), uint64(100+i)); err != nil {
				lc.t.Fatal(err)
			}
		}
		lc.tr.Heal()
		for i := 0; i < 50; i++ {
			lc.g.Heartbeat()
			if st := lc.fs[1].Status(); int(st.Seeds) >= round && st.Applied == st.Last && lc.g.Lag()["f2"] == 0 {
				break
			}
		}
		st := lc.fs[1].Status()
		if int(st.Seeds) < round {
			lc.t.Fatalf("round %d: f2 not seeded (%+v)", round, st)
		}
		return st.Base
	}

	b1 := seedRound(1, 0, 30)
	b2 := seedRound(2, 30, 60)
	if b2 <= b1 {
		t.Fatalf("second seed reused a stale snapshot: base %d after %d", b2, b1)
	}
	want := stateOf(t, lc.c, e)
	assertSameState(t, lc.c, want, lc.fs[0].Engine(), "f1")
	assertSameState(t, lc.c, want, lc.fs[1].Engine(), "f2")
}
