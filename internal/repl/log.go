package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The follower's replication log is a single append-only file of
// CRC-framed entries:
//
//	entry := index(8 LE) | epoch(8 LE) | len(4 LE) | crc32c(4 LE, payload) | payload
//
// Replay keeps the longest valid prefix and truncates torn tails, the
// same rule the engine WAL applies, so an entry acknowledged to the
// leader (appended + fsynced) always survives and a torn entry never
// resurrects partially. Truncation and compaction rewrite the file
// through a tmp + rename, so the log is always either the old or the
// new version.

const (
	logName   = "REPL_LOG"
	stateName = "REPL_STATE"

	entryHeader = 8 + 8 + 4 + 4
)

var logCRC = crc32.MakeTable(crc32.Castagnoli)

var errLog = errors.New("repl: replication log failure")

// replLog is the durable entry store plus its in-memory index. The
// caller (Follower) serializes access.
type replLog struct {
	path    string
	f       *os.File
	entries []Entry // in log order; indices strictly increasing, gaps legal
}

func openReplLog(dir string) (*replLog, error) {
	l := &replLog{path: filepath.Join(dir, logName)}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errLog, err)
	}
	l.f = f
	valid, err := l.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn tail now, so appends land after the last valid entry.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %w", errLog, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %w", errLog, err)
	}
	return l, nil
}

// replay loads every intact entry and returns the byte offset of the end
// of the valid prefix.
func (l *replLog) replay() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("%w: %w", errLog, err)
	}
	r := bufio.NewReader(l.f)
	head := make([]byte, entryHeader)
	var off int64
	for {
		if _, err := io.ReadFull(r, head); err != nil {
			return off, nil // clean EOF or torn header
		}
		pl := int(binary.LittleEndian.Uint32(head[16:]))
		if pl <= 0 || pl > 1<<20 {
			return off, nil // garbage length: torn tail
		}
		body := make([]byte, pl)
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(body, logCRC) != binary.LittleEndian.Uint32(head[20:]) {
			return off, nil // corrupt payload
		}
		e := Entry{
			Index: binary.LittleEndian.Uint64(head[0:]),
			Epoch: binary.LittleEndian.Uint64(head[8:]),
			Op:    body,
		}
		if n := len(l.entries); n > 0 && e.Index <= l.entries[n-1].Index {
			return off, nil // ordering violation: treat as tail damage
		}
		l.entries = append(l.entries, e)
		off += int64(entryHeader + pl)
	}
}

// append frames the entries and fsyncs; on return every entry is durable.
func (l *replLog) append(es []Entry) error {
	if len(es) == 0 {
		return nil
	}
	if l.f == nil {
		return fmt.Errorf("%w: log handle lost by a failed rewrite", errLog)
	}
	var buf []byte
	for _, e := range es {
		var h [entryHeader]byte
		binary.LittleEndian.PutUint64(h[0:], e.Index)
		binary.LittleEndian.PutUint64(h[8:], e.Epoch)
		binary.LittleEndian.PutUint32(h[16:], uint32(len(e.Op)))
		binary.LittleEndian.PutUint32(h[20:], crc32.Checksum(e.Op, logCRC))
		buf = append(buf, h[:]...)
		buf = append(buf, e.Op...)
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	l.entries = append(l.entries, es...)
	return nil
}

// last returns the final entry's (index, epoch), or (0, 0, false) when
// the log is empty.
func (l *replLog) last() (uint64, uint64, bool) {
	if len(l.entries) == 0 {
		return 0, 0, false
	}
	e := l.entries[len(l.entries)-1]
	return e.Index, e.Epoch, true
}

// at returns the epoch of the entry with the exact index, if present.
func (l *replLog) at(index uint64) (uint64, bool) {
	i := l.search(index)
	if i < len(l.entries) && l.entries[i].Index == index {
		return l.entries[i].Epoch, true
	}
	return 0, false
}

// search returns the position of the first entry with Index >= index.
func (l *replLog) search(index uint64) int {
	lo, hi := 0, len(l.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.entries[mid].Index < index {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// slice returns the entries with lo < Index <= hi, aliasing the log's
// backing store (valid until the next mutation).
func (l *replLog) slice(lo, hi uint64) []Entry {
	i := l.search(lo + 1)
	j := l.search(hi + 1)
	return l.entries[i:j]
}

// rewrite replaces the log's content with keep via tmp + fsync + rename.
func (l *replLog) rewrite(keep []Entry) error {
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	nl := &replLog{path: tmp, f: f}
	if err := nl.append(keep); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("%w: %w", errLog, err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	// The rename replaced the path: the old handle now points at an
	// unlinked inode, where appends (and their fsyncs) would "succeed"
	// invisibly and the acknowledged entries would vanish on restart.
	// Drop it before anything else can fail, so an error below leaves
	// l.f nil and later appends fail loudly instead of lying.
	l.f.Close() //nolint:errcheck
	l.f = nil
	l.entries = append(l.entries[:0], keep...)
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		return err
	}
	f, err = os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	l.f = f
	return nil
}

// truncateAfter drops every entry with Index > index.
func (l *replLog) truncateAfter(index uint64) error {
	i := l.search(index + 1)
	if i == len(l.entries) {
		return nil
	}
	return l.rewrite(append([]Entry{}, l.entries[:i]...))
}

// compactThrough drops every entry with Index <= index (the caller has
// made their effect durable in the engine).
func (l *replLog) compactThrough(index uint64) error {
	i := l.search(index + 1)
	if i == 0 {
		return nil
	}
	return l.rewrite(append([]Entry{}, l.entries[i:]...))
}

func (l *replLog) close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("%w: %w", errLog, err)
	}
	return nil
}

// nodeState is the small durable identity record both roles keep inside
// the engine directory: who we last were, under which epoch, and (for
// followers) how the replication log relates to the engine. It is
// written through tmp + fsync + rename on role and epoch changes and on
// log compaction — never on the per-batch path.
type nodeState struct {
	role      string // "leader" | "follower"
	epoch     uint64
	base      uint64 // entries <= base are durably applied in the engine
	baseEpoch uint64
	applied   uint64 // highest index applied (may lag after a crash; re-apply is idempotent)
}

func statePath(dir string) string { return filepath.Join(dir, stateName) }

func readState(dir string) (nodeState, bool, error) {
	b, err := os.ReadFile(statePath(dir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nodeState{}, false, nil
		}
		return nodeState{}, false, fmt.Errorf("repl: state: %w", err)
	}
	var st nodeState
	var header string
	n, err := fmt.Sscanf(string(b), "onion repl state v1\nrole %s\nepoch %d\nbase %d\nbaseEpoch %d\napplied %d\n",
		&header, &st.epoch, &st.base, &st.baseEpoch, &st.applied)
	if err != nil || n != 5 {
		return nodeState{}, false, fmt.Errorf("repl: state %s: malformed", statePath(dir))
	}
	st.role = header
	if st.role != "leader" && st.role != "follower" {
		return nodeState{}, false, fmt.Errorf("repl: state %s: unknown role %q", statePath(dir), st.role)
	}
	return st, true, nil
}

func writeState(dir string, st nodeState) error {
	body := fmt.Sprintf("onion repl state v1\nrole %s\nepoch %d\nbase %d\nbaseEpoch %d\napplied %d\n",
		st.role, st.epoch, st.base, st.baseEpoch, st.applied)
	tmp := statePath(dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("repl: state: %w", err)
	}
	if _, err = f.WriteString(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, statePath(dir))
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("repl: state: %w", err)
	}
	return nil
}
