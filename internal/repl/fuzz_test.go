package repl

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplLog builds a replication log from fuzz-derived entries, damages
// the file (truncation, and optionally a byte flip), and checks the
// recovery invariants that the follower's durability story rests on:
//
//   - recovery never errors and never panics, whatever the damage;
//   - recovered indices are strictly increasing with sane payloads;
//   - recovery is idempotent — reopening the recovered file yields the
//     same entries;
//   - the recovered log accepts appends, and they survive a reopen;
//   - pure truncation (no flip) recovers an exact prefix of what was
//     written — a torn tail can only shorten history, never corrupt it.
func FuzzReplLog(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(0), false)
	f.Add([]byte{0xff, 0x00, 0x10, 0x20, 0x30, 0x40}, uint16(17), true)
	f.Add([]byte{}, uint16(5), false)
	f.Fuzz(func(t *testing.T, data []byte, cut uint16, flip bool) {
		dir := t.TempDir()
		l, err := openReplLog(dir)
		if err != nil {
			t.Fatal(err)
		}

		// Deterministically derive a log from the input: 3 bytes drive
		// one entry (index stride with gaps, epoch, payload).
		var written []Entry
		idx := uint64(0)
		for i := 0; i+2 < len(data) && len(written) < 64; i += 3 {
			idx += uint64(data[i]%4) + 1
			e := Entry{
				Index: idx,
				Epoch: uint64(data[i+1]%4) + 1,
				Op:    append([]byte(nil), data[i:i+3]...),
			}
			if err := l.append([]Entry{e}); err != nil {
				t.Fatal(err)
			}
			written = append(written, e)
		}
		if err := l.close(); err != nil {
			t.Fatal(err)
		}

		// Damage the file: truncate somewhere, maybe flip one byte.
		path := filepath.Join(dir, logName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > 0 {
			raw = raw[:int(cut)%(len(raw)+1)]
		}
		if flip && len(raw) > 0 {
			raw[int(cut)%len(raw)] ^= 0x5a
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		// Invariant 1–2: recovery succeeds and yields a sane log.
		l2, err := openReplLog(dir)
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		rec := append([]Entry(nil), l2.entries...)
		for i, e := range rec {
			if i > 0 && e.Index <= rec[i-1].Index {
				t.Fatalf("recovered indices not increasing: %d then %d", rec[i-1].Index, e.Index)
			}
			if len(e.Op) <= 0 || len(e.Op) > 1<<20 {
				t.Fatalf("recovered entry %d has payload length %d", e.Index, len(e.Op))
			}
		}

		// Invariant 5: without a flip, recovery is an exact prefix.
		if !flip {
			if len(rec) > len(written) {
				t.Fatalf("recovered %d entries from %d written", len(rec), len(written))
			}
			for i, e := range rec {
				w := written[i]
				if e.Index != w.Index || e.Epoch != w.Epoch || !bytes.Equal(e.Op, w.Op) {
					t.Fatalf("entry %d diverged after truncation: got %+v want %+v", i, e, w)
				}
			}
		}

		// Invariant 4: the recovered log is live — an append lands after
		// the valid prefix and survives a reopen.
		next := uint64(1)
		if n := len(rec); n > 0 {
			next = rec[n-1].Index + 1
		}
		fresh := Entry{Index: next, Epoch: 99, Op: []byte("post-recovery")}
		if err := l2.append([]Entry{fresh}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l2.close(); err != nil {
			t.Fatal(err)
		}

		// Invariant 3: reopening is stable.
		l3, err := openReplLog(dir)
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer l3.close() //nolint:errcheck
		if len(l3.entries) != len(rec)+1 {
			t.Fatalf("reopen holds %d entries, want %d", len(l3.entries), len(rec)+1)
		}
		for i, e := range rec {
			g := l3.entries[i]
			if g.Index != e.Index || g.Epoch != e.Epoch || !bytes.Equal(g.Op, e.Op) {
				t.Fatalf("entry %d unstable across reopen", i)
			}
		}
		if tail := l3.entries[len(rec)]; tail.Index != fresh.Index || !bytes.Equal(tail.Op, fresh.Op) {
			t.Fatal("post-recovery append lost on reopen")
		}
	})
}
