package repl

import (
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/telemetry"
)

// Hook is the engine.CommitHook a leader engine is opened with. It is
// created unbound (Append buffers, Commit acknowledges immediately —
// single-node behavior) so the engine can be opened before the Group
// exists; LeadEngine binds it. Bind before serving writes: buffered
// appends are replayed into the group at bind time, but commits that
// already returned were not quorum-checked.
type Hook struct {
	mu      sync.Mutex
	g       *Group
	dims    int
	pending []pendingOp
}

type pendingOp struct {
	seq uint64
	op  []byte
}

// NewHook returns an unbound commit hook for dims-dimensional points.
func NewHook(dims int) *Hook {
	return &Hook{dims: dims}
}

// Append implements engine.CommitHook. It runs under the engine's WAL
// mutex: encode and hand off, nothing blocking.
func (h *Hook) Append(seq uint64, op engine.BatchOp) {
	h.mu.Lock()
	g := h.g
	if g == nil {
		h.pending = append(h.pending, pendingOp{seq, engine.EncodeOp(nil, op, h.dims)})
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	g.appendOp(seq, engine.EncodeOp(nil, op, h.dims))
}

// PreCommit implements engine.PreCommitHook: it fires the batch at the
// followers while the leader's own fsync is still in flight, so the two
// log barriers overlap. Fire-and-forget — Commit below collects (or
// redoes) the acks.
func (h *Hook) PreCommit(seq uint64) {
	h.mu.Lock()
	g := h.g
	h.mu.Unlock()
	if g != nil {
		g.preShip(seq)
	}
}

// Commit implements engine.CommitHook: it blocks the group-commit
// rendezvous until every entry the batch covers is durable on a quorum.
func (h *Hook) Commit(seq uint64) error {
	h.mu.Lock()
	g := h.g
	h.mu.Unlock()
	if g == nil {
		return nil
	}
	return g.commitSeq(seq)
}

func (h *Hook) bind(g *Group) {
	h.mu.Lock()
	pending := h.pending
	h.pending = nil
	h.g = g
	h.mu.Unlock()
	for _, p := range pending {
		g.appendOp(p.seq, p.op)
	}
}

type histEntry struct {
	e    Entry
	eseq uint64 // engine sequence number the entry was appended under
}

type epochMark struct {
	from  uint64
	epoch uint64
}

// peerState tracks one follower. The send mutex serializes requests to
// the peer (so entries arrive in order per connection); the scalar
// fields are guarded by the Group mutex.
type peerState struct {
	send sync.Mutex
	id   string

	ack        uint64 // highest index durable on the peer, as far as we know
	sentCommit uint64 // highest commit watermark delivered to the peer
	needSeed   bool
}

// Group is a leader: an engine plus the replication state machine that
// ships its WAL to the configured peers and gates acknowledgment on
// quorum. Create one with Lead (fresh engine), LeadEngine (an engine
// you opened with a NewHook) or Promote (failover).
type Group struct {
	cfg        Config
	eng        *engine.Engine
	dir        string
	hook       *Hook
	ownsEngine bool
	tel        *groupTelemetry

	mu        sync.Mutex
	epoch     uint64
	nextIndex uint64 // last assigned index; gaps are legal and permanent
	commit    uint64 // highest quorum-committed index
	hist      []histEntry
	histBase  uint64 // highest index trimmed off the front of hist
	marks     []epochMark
	peers     []*peerState
	fencedBy  uint64 // epoch of the leader that deposed us; 0 while leading
	closed    bool

	seedMu    sync.Mutex
	seedDir   string
	seedBase  uint64
	seedEpoch uint64

	bell chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// Lead opens a fresh leader engine at dir and starts replicating to
// cfg.Peers. The directory may hold an existing engine — its
// pre-existing dataset never flows through the commit hook, so every
// peer is seeded with a snapshot before the group serves writes — but
// not one that was already a replication leader: a deposed or crashed
// leader may hold writes no quorum acknowledged, and rejoins as a
// follower (OpenFollower re-seeds it) instead of resuming.
func Lead(dir string, c curve.Curve, cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	st, ok, err := readState(dir)
	if err != nil {
		return nil, err
	}
	if ok {
		return nil, fmt.Errorf("repl: %s was a replication %s (epoch %d); rejoin as a follower and promote instead", dir, st.role, st.epoch)
	}
	hook := NewHook(c.Universe().Dims())
	opts := cfg.Engine
	opts.CommitHook = hook
	eng, err := engine.Open(dir, c, opts)
	if err != nil {
		return nil, err
	}
	g, err := newGroup(eng, dir, hook, cfg, groupInit{epoch: cfg.Epoch, seedPeers: engineNonEmpty(eng)})
	if err != nil {
		eng.Close() //nolint:errcheck
		return nil, err
	}
	g.ownsEngine = true
	return g, nil
}

// LeadEngine binds an already-open engine to a new Group. The engine
// must have been opened with hook as its Options.CommitHook. The caller
// keeps ownership of the engine (Close does not close it).
//
// The engine may hold pre-existing data — including the reopen path,
// where an ex-leader directory is re-led under a higher cfg.Epoch. In
// both cases the replication index namespace starts at zero and the
// engine's existing dataset never flows through the commit hook, so
// every peer is flagged for a snapshot seed and seeded (synchronously,
// for the peers that are reachable) before LeadEngine returns: a
// follower holding old-epoch indices must be wiped and re-based, never
// trusted to already cover the restarted namespace.
func LeadEngine(eng *engine.Engine, dir string, hook *Hook, cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	st, ok, err := readState(dir)
	if err != nil {
		return nil, err
	}
	if ok && st.role == "leader" && st.epoch >= cfg.Epoch {
		return nil, fmt.Errorf("repl: %s already led epoch %d; rejoin as a follower and promote instead", dir, st.epoch)
	}
	return newGroup(eng, dir, hook, cfg, groupInit{epoch: cfg.Epoch, seedPeers: ok || engineNonEmpty(eng)})
}

// engineNonEmpty reports whether the engine holds data (or has assigned
// sequence numbers) at group-creation time. Such data predates the
// commit hook and can only reach followers by snapshot seed.
func engineNonEmpty(e *engine.Engine) bool {
	st := e.Stats()
	return st.MemEntries > 0 || st.ImmMemtables > 0 || st.Segments > 0 || st.LastSeq > 0
}

// groupInit seeds the replication state (Promote preloads history).
type groupInit struct {
	epoch     uint64
	nextIndex uint64
	commit    uint64
	hist      []histEntry
	histBase  uint64
	marks     []epochMark
	failover  bool
	// seedPeers flags every peer for a snapshot seed at creation: set
	// when the engine holds data that never passed through the commit
	// hook (a pre-existing dataset, or an ex-leader reopen restarting
	// the index namespace), which resend can never deliver. Promote
	// leaves it unset — its preloaded history lets survivors resync by
	// resend.
	seedPeers bool
}

func newGroup(eng *engine.Engine, dir string, hook *Hook, cfg Config, init groupInit) (*Group, error) {
	if len(cfg.Peers) > 0 && cfg.Transport == nil {
		return nil, fmt.Errorf("repl: %d peers but no transport", len(cfg.Peers))
	}
	if cfg.Quorum > 1+len(cfg.Peers) {
		return nil, fmt.Errorf("repl: quorum %d exceeds group size %d", cfg.Quorum, 1+len(cfg.Peers))
	}
	if err := writeState(dir, nodeState{role: "leader", epoch: init.epoch}); err != nil {
		return nil, err
	}
	g := &Group{
		cfg: cfg, eng: eng, dir: dir, hook: hook,
		epoch: init.epoch, nextIndex: init.nextIndex, commit: init.commit,
		hist: init.hist, histBase: init.histBase, marks: init.marks,
		bell: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	for _, id := range cfg.Peers {
		// A promoted leader does not know where its peers are; their
		// first response (or NeedSeed) resynchronizes them. Starting
		// from the history base forces a resend-or-seed conversation
		// rather than assuming they hold anything.
		g.peers = append(g.peers, &peerState{id: id, ack: init.histBase, needSeed: init.seedPeers})
	}
	g.tel = newGroupTelemetry(g)
	if init.failover {
		g.tel.failovers.Inc()
	}
	hook.bind(g)
	g.wg.Add(1)
	go g.catchUpLoop()
	if init.seedPeers {
		// Seed reachable peers before returning: no write is in flight
		// yet, so the snapshot export cannot block behind one, and the
		// first write after open finds real followers instead of racing
		// the seed and latching ReadOnly on a fake quorum loss. Peers
		// that are unreachable now keep their needSeed flag and are
		// seeded by the catch-up loop when they return.
		g.Heartbeat()
	}
	g.ring()
	return g, nil
}

// Engine exposes the leader engine for reads and writes.
func (g *Group) Engine() *engine.Engine { return g.eng }

// Telemetry exposes the group's own registry (repl_* series). It is
// separate from the engine's registry so roll-ups that merge engine
// registries never double-count replication counters.
func (g *Group) Telemetry() *telemetry.Registry { return g.tel.reg }

// Epoch returns the group's current epoch.
func (g *Group) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Close stops replication. The engine is closed only if the Group
// opened it (Lead, Promote).
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.done)
	g.wg.Wait()
	var err error
	if g.ownsEngine {
		err = g.eng.Close()
	}
	if g.seedDir != "" {
		os.RemoveAll(g.seedDir) //nolint:errcheck
	}
	return err
}

// appendOp records one engine write as a replication entry. Runs under
// the engine's WAL mutex via the hook: keep it non-blocking.
func (g *Group) appendOp(eseq uint64, op []byte) {
	g.mu.Lock()
	g.nextIndex++
	if n := len(g.marks); n == 0 || g.marks[n-1].epoch != g.epoch {
		g.marks = append(g.marks, epochMark{from: g.nextIndex, epoch: g.epoch})
	}
	g.hist = append(g.hist, histEntry{
		e:    Entry{Index: g.nextIndex, Epoch: g.epoch, Op: op},
		eseq: eseq,
	})
	if len(g.hist) > g.cfg.HistoryEntries {
		drop := len(g.hist) - g.cfg.HistoryEntries
		// Only the quorum-committed prefix is trimmable. An uncommitted
		// entry is the rendezvous target of an in-flight (or imminent)
		// commit round: trimming it would force its followers into a
		// snapshot seed that cannot be exported while the write is still
		// holding the WAL path, so the round would exhaust its retries
		// against healthy replicas. The window may therefore exceed
		// HistoryEntries transiently (one batch larger than the window);
		// it snaps back once the commit watermark passes.
		if committed := g.histSearch(g.commit + 1); drop > committed {
			drop = committed
		}
		if drop > 0 {
			g.histBase = g.hist[drop-1].e.Index
			g.hist = append(g.hist[:0:0], g.hist[drop:]...)
		}
	}
	g.mu.Unlock()
}

// histSearch returns the position of the first hist entry with index >=
// idx. Caller holds g.mu.
func (g *Group) histSearch(idx uint64) int {
	return sort.Search(len(g.hist), func(i int) bool { return g.hist[i].e.Index >= idx })
}

// lastEntryIndex is the index of the newest live history entry — unlike
// nextIndex it never points at an abandoned (quorum-failed) index.
// Caller holds g.mu.
func (g *Group) lastEntryIndex() uint64 {
	if n := len(g.hist); n > 0 {
		return g.hist[n-1].e.Index
	}
	return g.histBase
}

// epochOf resolves the epoch an index was appended under: 0 for the
// genesis index, else the epoch of the covering mark. Caller holds g.mu.
func (g *Group) epochOf(index uint64) uint64 {
	if index == 0 {
		return 0
	}
	var e uint64
	for _, m := range g.marks {
		if m.from > index {
			break
		}
		e = m.epoch
	}
	return e
}

// commitSeq is the hook's Commit: every entry appended at or below the
// engine sequence number must be quorum-durable before it returns.
func (g *Group) commitSeq(seq uint64) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("%w: %w", engine.ErrQuorum, ErrClosed)
	}
	if g.fencedBy != 0 {
		fenced := g.fencedBy
		g.mu.Unlock()
		return fmt.Errorf("%w: %w by epoch %d", engine.ErrQuorum, ErrFenced, fenced)
	}
	// Last entry with eseq <= seq; entries are appended in eseq order.
	i := sort.Search(len(g.hist), func(i int) bool { return g.hist[i].eseq > seq })
	if i == 0 {
		// Nothing of ours in this rendezvous window. Safe even when the
		// front of hist has been trimmed: appendOp never trims above
		// g.commit, so any trimmed entry was already quorum-durable and
		// needs no rendezvous of its own.
		g.mu.Unlock()
		return nil
	}
	target := g.hist[i-1].e.Index
	if target <= g.commit {
		g.mu.Unlock()
		return nil // a later rendezvous already covered it
	}
	quorum, peers := g.cfg.Quorum, g.peers
	g.mu.Unlock()
	return g.commitTo(target, quorum, peers)
}

// preShip starts streaming every entry at or below the engine sequence
// seq to all peers without waiting for the outcome. It runs in the
// group-commit leader's pre-fsync window: by the time the local barrier
// lands and commitSeq asks for the quorum, the followers' fsyncs have
// (mostly) already happened, so the commit round finds the acks in
// place instead of chaining a full replica round-trip after the local
// one. Re-shipping is idempotent — the per-peer send lock serializes
// the racers and shipLocked returns without a transport call once the
// ack covers the target.
func (g *Group) preShip(seq uint64) {
	g.mu.Lock()
	if g.closed || g.fencedBy != 0 {
		g.mu.Unlock()
		return
	}
	i := sort.Search(len(g.hist), func(i int) bool { return g.hist[i].eseq > seq })
	if i == 0 {
		g.mu.Unlock()
		return
	}
	target := g.hist[i-1].e.Index
	if target <= g.commit {
		g.mu.Unlock()
		return
	}
	quorum, peers := g.cfg.Quorum, g.peers
	g.mu.Unlock()
	for _, p := range preferredRound(target, quorum, peers) {
		go func(p *peerState) {
			p.send.Lock()
			g.shipLocked(p, target)
			p.send.Unlock()
		}(p)
	}
	// Yield so the shippers reach their followers' log barriers before
	// the caller (the group-commit leader) enters its own. When the
	// replicas share a filesystem, the journal then commits both log
	// writes in one transaction and the second fsync rides the first's
	// commit; spawned after the leader's fsync is already in flight, the
	// follower's write misses the transaction and pays a full extra
	// journal commit in series.
	runtime.Gosched()
}

// preferredRound picks the quorum-1 followers a batch is shipped to on
// the fast path. Only that many follower fsyncs are needed per commit;
// shipping to everyone would put every replica's log barrier on the
// shared device for every batch, which is exactly the contention that
// makes colocated replication slow. The pick is the stable head of the
// peer list: a fixed fast set keeps the catch-up goroutine (which
// serves the lagging tail in coalesced multi-batch runs, one fsync
// each) off the fast peers' send locks, where rotating the pick would
// make every batch race its own commit against a resend. A follower's
// log is always a prefix of the leader's, so QuorumWatermark stays
// exact under the skew: an acked entry is durable on quorum-1
// followers, hence at or below the (quorum-1)-th longest follower log.
func preferredRound(target uint64, quorum int, peers []*peerState) []*peerState {
	_ = target
	need := quorum - 1
	if need <= 0 {
		return nil
	}
	if need >= len(peers) {
		return peers
	}
	return peers[:need]
}

// commitTo drives quorum rounds (with capped jittered backoff between
// attempts) until target is durable on quorum replicas or the attempts
// run out, in which case the batch fails with engine.ErrQuorum and the
// engine latches ReadOnly.
func (g *Group) commitTo(target uint64, quorum int, peers []*peerState) error {
	start := time.Now()
	delay := g.cfg.RetryBase
	for attempt := 1; ; attempt++ {
		// First attempt: collect acks from the preferred round preShip
		// already fired at — usually the shippers find the acks in place
		// and return without a transport call. Any failure escalates the
		// retries to the full peer set, so a dead preferred replica only
		// costs one backoff before the others take over. Shippers run
		// concurrently and the loop returns as soon as a quorum is
		// durable; stragglers drain into the buffered channel on their
		// own (the per-peer send lock serializes them against the next
		// batch's shipper). Waiting for the slowest replica would put
		// its entire fsync on the commit path for no durability gain —
		// quorum means quorum.
		round := peers
		if attempt == 1 {
			round = preferredRound(target, quorum, peers)
		}
		acks := 1 // self: the engine fsynced before calling the hook
		results := make(chan bool, len(round))
		for _, p := range round {
			go func(p *peerState) {
				p.send.Lock()
				ok := g.shipLocked(p, target)
				p.send.Unlock()
				results <- ok
			}(p)
		}
		for replies := 0; replies < len(round) && acks < quorum; replies++ {
			if <-results {
				acks++
			}
		}
		g.mu.Lock()
		fenced := g.fencedBy
		g.mu.Unlock()
		if fenced != 0 {
			return fmt.Errorf("%w: %w by epoch %d", engine.ErrQuorum, ErrFenced, fenced)
		}
		if acks >= quorum {
			g.mu.Lock()
			if target > g.commit {
				g.commit = target
			}
			g.mu.Unlock()
			g.tel.batches.Inc()
			g.tel.quorumLat.Record(uint64(time.Since(start).Microseconds()))
			g.ring() // push the new commit watermark out of band
			return nil
		}
		if attempt >= g.cfg.RetryAttempts {
			g.tel.quorumLost.Inc()
			g.eng.Events().Emit(telemetry.Event{
				Kind: telemetry.EvRepl, Phase: telemetry.PhasePoint, Shard: -1,
				Err:    "quorum lost",
				Detail: fmt.Sprintf("index %d: %d/%d replicas after %d attempts", target, acks, 1+len(peers), attempt),
			})
			return fmt.Errorf("%w: index %d reached %d/%d replicas after %d attempts",
				engine.ErrQuorum, target, acks, 1+len(peers), attempt)
		}
		// Jittered backoff in [delay/2, delay*3/2), doubling up to the cap.
		time.Sleep(delay/2 + time.Duration(rand.Int64N(int64(delay))))
		if delay *= 2; delay > g.cfg.RetryCap {
			delay = g.cfg.RetryCap
		}
	}
}

// shipLocked (peer send lock held) streams entries to p until its ack
// reaches target. Returns whether it did. Follower hints reposition the
// stream; a peer that falls behind the history window is flagged for
// seeding and handled by the catch-up goroutine — never on the commit
// path, where the snapshot's flush could deadlock against the engine.
func (g *Group) shipLocked(p *peerState, target uint64) bool {
	lastAck := ^uint64(0)
	for round := 0; round < 64; round++ {
		g.mu.Lock()
		if g.closed || g.fencedBy != 0 || p.needSeed {
			g.mu.Unlock()
			return false
		}
		ack := p.ack
		if ack >= target {
			g.mu.Unlock()
			return true
		}
		if ack < g.histBase {
			p.needSeed = true
			g.mu.Unlock()
			g.ring()
			return false
		}
		i := g.histSearch(ack + 1)
		j := g.histSearch(target + 1)
		if j > i+g.cfg.MaxBatchEntries {
			j = i + g.cfg.MaxBatchEntries
		}
		if i == j {
			// Nothing real to ship below target. Targets are always live
			// entry indices, so this is unreachable; never advance the
			// ack over a gap — a trimmed orphan index must not become a
			// Prev-match point.
			g.mu.Unlock()
			return false
		}
		entries := make([]Entry, j-i)
		for k := i; k < j; k++ {
			entries[k-i] = g.hist[k].e
		}
		upTo := entries[len(entries)-1].Index
		req := AppendRequest{
			Epoch:     g.epoch,
			LeaderID:  g.cfg.ID,
			PrevIndex: ack,
			PrevEpoch: g.epochOf(ack),
			Entries:   entries,
			Commit:    g.commit,
		}
		g.mu.Unlock()

		resp, err := g.cfg.Transport.Append(p.id, req)
		g.tel.appends.Inc()
		if err != nil {
			g.tel.sendErrors.Inc()
			return false
		}
		g.mu.Lock()
		if resp.Epoch > req.Epoch {
			g.deposeLocked(resp.Epoch)
			g.mu.Unlock()
			return false
		}
		if resp.NeedSeed {
			p.needSeed = true
			g.mu.Unlock()
			g.ring()
			return false
		}
		if resp.Ok {
			if upTo > p.ack {
				p.ack = upTo
			}
			if req.Commit > p.sentCommit {
				p.sentCommit = req.Commit
			}
			g.tel.entries.Add(uint64(len(entries)))
			g.mu.Unlock()
			continue
		}
		// Resend hint. Never adopt an ack beyond our own history: a
		// follower reporting indices this leader never assigned holds a
		// divergent namespace (canonically old-epoch entries from before
		// a leader reopen restarted the index space) that resend cannot
		// repair — adopting it would satisfy ack >= target and fake a
		// quorum ack for entries the follower does not hold. Re-seed.
		if resp.Ack > g.lastEntryIndex() {
			p.needSeed = true
			g.mu.Unlock()
			g.ring()
			return false
		}
		// No forward progress twice in a row means the conversation is
		// stuck (e.g. repeated truncation); give up and let the
		// retry/backoff or catch-up loop take over.
		p.ack = resp.Ack
		g.mu.Unlock()
		if resp.Ack == lastAck {
			return false
		}
		lastAck = resp.Ack
	}
	return false
}

// deposeLocked (g.mu held) latches the fence: a higher epoch exists, so
// this leader must never acknowledge again. Its durable role stays
// "leader", which is exactly what forces a full re-seed when the node
// rejoins the group as a follower.
func (g *Group) deposeLocked(epoch uint64) {
	if g.fencedBy == 0 || epoch > g.fencedBy {
		g.fencedBy = epoch
	}
}

func (g *Group) ring() {
	select {
	case g.bell <- struct{}{}:
	default:
	}
}

// catchUpLoop serves the slow paths off the commit path: seeding peers
// that fell behind the history window (or diverged), re-streaming
// laggards, and pushing the commit watermark (heartbeats) so followers
// apply the final batch without waiting for the next write.
func (g *Group) catchUpLoop() {
	defer g.wg.Done()
	for {
		select {
		case <-g.done:
			return
		case <-g.bell:
		}
		// Debounce: under continuous load the bell rings once per batch,
		// and serving a lagging peer immediately would fsync its log per
		// batch — the very barrier traffic preferredRound keeps off the
		// device. The coalescing window lets a run of batches pile up so
		// one resend (one fsync) covers them all; at idle it only delays
		// the final watermark push by the same hair.
		timer := time.NewTimer(g.cfg.CatchUpInterval)
		select {
		case <-g.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		select {
		case <-g.bell:
		default:
		}
		// Fast-set peers are the commit path's job: preShip streams every
		// batch to them and failed rounds escalate the retries to the full
		// peer set, so a routine resend from here would only fight the
		// in-flight commit for their send locks (and put an extra log
		// barrier on the device). They still get seeded and still receive
		// the watermark push; only the resend leg is skipped.
		fast := preferredRound(0, g.cfg.Quorum, g.peers)
		for _, p := range g.peers {
			select {
			case <-g.done:
				return
			default:
			}
			resend := true
			for _, fp := range fast {
				if fp == p {
					resend = false
					break
				}
			}
			g.servePeer(p, resend)
		}
	}
}

func (g *Group) servePeer(p *peerState, resend bool) {
	g.servePeerOnce(p, resend)
	// A pass can discover mid-flight that the peer needs a seed — the
	// resend finds its ack below the history window, or a response asks
	// for one — after the entry check that would have exported the
	// snapshot. Run one more pass so a synchronous drain (Heartbeat)
	// converges the peer instead of leaving the seed to the next bell;
	// if the retry fails too, the flag stays and the catch-up loop gets
	// another shot later.
	g.mu.Lock()
	again := !g.closed && g.fencedBy == 0 && p.needSeed
	g.mu.Unlock()
	if again {
		g.servePeerOnce(p, resend)
	}
}

func (g *Group) servePeerOnce(p *peerState, resend bool) {
	g.mu.Lock()
	stopped := g.closed || g.fencedBy != 0
	needSeed := p.needSeed
	g.mu.Unlock()
	if stopped {
		return
	}
	// Export the seed snapshot BEFORE taking the peer's send lock: the
	// snapshot's flush waits for in-flight writes, and an in-flight
	// write's quorum round may be waiting on that very send lock.
	var seedDir string
	var seedBase, seedEpoch uint64
	if needSeed {
		var err error
		seedDir, seedBase, seedEpoch, err = g.ensureSeed()
		if err != nil {
			g.tel.sendErrors.Inc()
			return
		}
	}
	p.send.Lock()
	defer p.send.Unlock()
	g.mu.Lock()
	if g.closed || g.fencedBy != 0 {
		g.mu.Unlock()
		return
	}
	needSeed, ack, sent := p.needSeed, p.ack, p.sentCommit
	last, commit, epoch := g.lastEntryIndex(), g.commit, g.epoch
	g.mu.Unlock()
	if needSeed {
		if seedDir == "" {
			g.ring() // flagged after the snapshot check; come back around
			return
		}
		if !g.seedPeerLocked(p, seedDir, seedBase, seedEpoch) {
			return
		}
		g.mu.Lock()
		ack, sent = p.ack, p.sentCommit
		g.mu.Unlock()
	}
	shipped := false
	if resend && ack < last {
		g.shipLocked(p, last)
		shipped = true
		g.mu.Lock()
		sent = p.sentCommit
		g.mu.Unlock()
	}
	// The bare watermark push doubles as the apply trigger: followers
	// defer folding committed entries into their engine until a push
	// arrives, so one is owed not just when the watermark is stale but
	// also right after a resend delivered entries alongside a current
	// watermark.
	if sent < commit || shipped {
		// Heartbeat: empty append carrying the watermark.
		g.mu.Lock()
		ack = p.ack
		prevEpoch := g.epochOf(ack)
		g.mu.Unlock()
		resp, err := g.cfg.Transport.Append(p.id, AppendRequest{
			Epoch: epoch, LeaderID: g.cfg.ID,
			PrevIndex: ack, PrevEpoch: prevEpoch, Commit: commit,
		})
		if err != nil {
			g.tel.sendErrors.Inc()
			return
		}
		g.mu.Lock()
		switch {
		case resp.Epoch > epoch:
			g.deposeLocked(resp.Epoch)
		case resp.NeedSeed:
			p.needSeed = true
			g.ring()
		case resp.Ok && commit > p.sentCommit:
			p.sentCommit = commit
		}
		g.mu.Unlock()
	}
}

// seedPeerLocked (peer send lock held) ships the already-exported seed
// snapshot to the peer.
func (g *Group) seedPeerLocked(p *peerState, dir string, base, baseEpoch uint64) bool {
	g.mu.Lock()
	epoch, commit := g.epoch, g.commit
	g.mu.Unlock()
	resp, err := g.cfg.Transport.Seed(p.id, SeedRequest{
		Epoch: epoch, LeaderID: g.cfg.ID,
		Snapshot: dir, Base: base, BaseEpoch: baseEpoch, Commit: commit,
	})
	if err != nil {
		g.tel.sendErrors.Inc()
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if resp.Epoch > epoch {
		g.deposeLocked(resp.Epoch)
		return false
	}
	if !resp.Ok {
		return false
	}
	p.needSeed = false
	if resp.Ack > p.ack {
		p.ack = resp.Ack
	}
	if commit > p.sentCommit {
		p.sentCommit = commit
	}
	g.tel.seeds.Inc()
	g.eng.Events().Emit(telemetry.Event{
		Kind: telemetry.EvRepl, Phase: telemetry.PhasePoint, Shard: -1,
		Detail: fmt.Sprintf("seeded %s through index %d", p.id, base),
	})
	return true
}

// ensureSeed exports (or reuses) the catch-up snapshot. The base index
// is captured before the snapshot, so the snapshot holds at least every
// entry up to it — entries past it re-apply idempotently on the
// follower. A cached seed is reused only while the leader runs with
// unbounded WAL retention: with a retention cap, the archived WALs a
// stale snapshot's restore depends on may have been pruned, so every
// seed is exported fresh. The retention is read from the engine itself,
// not from cfg.Engine — with LeadEngine the engine was opened by the
// caller and cfg.Engine may not reflect its real options.
func (g *Group) ensureSeed() (string, uint64, uint64, error) {
	g.seedMu.Lock()
	defer g.seedMu.Unlock()
	g.mu.Lock()
	base := g.nextIndex
	epoch := g.epoch
	last := g.nextIndex
	histBase := g.histBase
	g.mu.Unlock()
	// A cached seed is reusable only if it still bridges to the resend
	// window (a follower seeded below histBase would just need another
	// seed) and the archived history it depends on cannot have been
	// pruned (unbounded WAL retention).
	if g.seedDir != "" && g.seedEpoch == epoch &&
		g.eng.WALRetention() == 0 &&
		g.seedBase >= histBase &&
		last-g.seedBase < uint64(g.cfg.SeedRefreshEntries) {
		g.mu.Lock()
		be := g.epochOf(g.seedBase)
		g.mu.Unlock()
		return g.seedDir, g.seedBase, be, nil
	}
	dir := g.dir + "-seed"
	if err := os.RemoveAll(dir); err != nil {
		return "", 0, 0, err
	}
	if _, err := g.eng.Snapshot(dir); err != nil {
		return "", 0, 0, err
	}
	g.seedDir, g.seedBase, g.seedEpoch = dir, base, epoch
	g.mu.Lock()
	be := g.epochOf(base)
	g.mu.Unlock()
	return dir, base, be, nil
}

// Heartbeat pushes the current commit watermark to every peer and waits
// for the round to finish; after it, followers that answered have
// applied everything committed. Tests and orderly shutdowns use it to
// drain follower lag without writing.
func (g *Group) Heartbeat() {
	g.mu.Lock()
	peers := g.peers
	g.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			g.servePeer(p, true)
		}(p)
	}
	wg.Wait()
}

// Lag reports, per peer, how many entries the leader holds beyond the
// peer's last durable ack.
func (g *Group) Lag() map[string]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]uint64, len(g.peers))
	last := g.lastEntryIndex()
	for _, p := range g.peers {
		lag := uint64(0)
		if last > p.ack {
			lag = last - p.ack
		}
		out[p.id] = lag
	}
	return out
}

// maxLag is Lag's ceiling, for the lag gauge.
func (g *Group) maxLag() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	last := g.lastEntryIndex()
	var m uint64
	for _, p := range g.peers {
		if last > p.ack && last-p.ack > m {
			m = last - p.ack
		}
	}
	return m
}

// TryRecover attempts to leave degraded mode after a quorum loss. It
// probes the peers for reachability; once a quorum of replicas (self
// included) answers, it abandons the un-committed orphan suffix —
// quorum-failed batches the engine already refused, which must never
// ship — and runs the engine's own recovery (probe write, WAL rotation,
// stranded flushes). The indices the orphans occupied are never reused:
// they stay as permanent gaps, so a follower that did receive an orphan
// detects the divergence and truncates it.
func (g *Group) TryRecover() (engine.Health, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return 0, ErrClosed
	}
	if g.fencedBy != 0 {
		fenced := g.fencedBy
		g.mu.Unlock()
		return 0, fmt.Errorf("%w by epoch %d: rejoin as a follower", ErrFenced, fenced)
	}
	peers := g.peers
	quorum := g.cfg.Quorum
	g.mu.Unlock()

	reachable := 1
	for _, p := range peers {
		if err := g.cfg.Transport.Probe(p.id); err == nil {
			reachable++
		}
	}
	if reachable < quorum {
		return g.engHealth(), fmt.Errorf("%w: %d/%d replicas reachable, quorum %d",
			ErrPartitioned, reachable, 1+len(peers), quorum)
	}

	g.mu.Lock()
	if i := g.histSearch(g.commit + 1); i < len(g.hist) {
		g.hist = g.hist[:i]
	}
	// Re-base every peer conversation at the commit watermark. A
	// follower that acked an orphan must not have that orphan used as a
	// Prev-match point (it would sit silently below later entries and be
	// applied once the watermark passes it); resending from commit makes
	// the follower's tandem walk see the divergence and truncate it.
	for _, p := range g.peers {
		if p.ack > g.commit {
			p.ack = g.commit
		}
		if p.sentCommit > g.commit {
			p.sentCommit = g.commit
		}
	}
	g.mu.Unlock()

	h, err := g.eng.TryRecover()
	if err != nil {
		return h, err
	}
	g.eng.Events().Emit(telemetry.Event{
		Kind: telemetry.EvRepl, Phase: telemetry.PhasePoint, Shard: -1,
		Detail: fmt.Sprintf("quorum recovered: %d/%d replicas reachable", reachable, 1+len(peers)),
	})
	g.ring()
	return h, nil
}

func (g *Group) engHealth() engine.Health {
	h, _ := g.eng.Health()
	return h
}

// QuorumWatermark computes, from the last-held indices of the dead
// leader's followers, the highest index that provably reached a quorum:
// with quorum Q (leader included), a quorum-acknowledged entry is
// durable on at least Q-1 followers, so the (Q-1)-th largest last-index
// bounds the acknowledged prefix from above — and a batch the old
// leader refused with ErrQuorum reached at most Q-2 followers, so it
// always falls beyond the watermark and is truncated by Promote.
//
// lasts must cover every follower that may hold entries (an unreachable
// follower's copy cannot be counted, which can only under-estimate —
// safe for the no-resurrection guarantee, lossy for indeterminate
// in-flight batches).
func QuorumWatermark(lasts []uint64, quorum int) uint64 {
	k := quorum - 1
	if k <= 0 {
		k = 1
	}
	if len(lasts) < k {
		return 0
	}
	s := append([]uint64(nil), lasts...)
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
	return s[k-1]
}

// Promote turns a follower into the leader for a new epoch: the
// replication log is truncated to upTo (QuorumWatermark of the
// surviving replicas — dropping any suffix that provably never reached
// a quorum), fully applied to the engine, synced, and the node restarts
// as a leader whose in-memory history is preloaded from the log, so
// surviving followers catch up by resend rather than re-seed.
//
// The leader role is persisted before the log is applied: if the
// process dies mid-promotion the node rejoins as an ex-leader and is
// re-seeded, never serving a half-promoted state.
//
// Promote consumes the follower (its handles move into the Group); on
// error the follower is left closed.
func Promote(f *Follower, upTo uint64, cfg Config) (*Group, error) {
	cfg = cfg.withDefaults()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if f.mustSeed {
		return nil, fmt.Errorf("repl: %s is an un-reseeded ex-leader; promote a clean follower", f.id)
	}
	if upTo < f.applied {
		return nil, fmt.Errorf("repl: promote watermark %d below applied %d", upTo, f.applied)
	}
	epoch := cfg.Epoch
	if epoch <= f.st.epoch {
		epoch = f.st.epoch + 1
	}
	f.closed = true // the follower identity ends here, whatever happens next

	if err := f.log.truncateAfter(upTo); err != nil {
		f.eng.Close() //nolint:errcheck
		f.log.close() //nolint:errcheck
		return nil, err
	}
	// Point of no return: once the durable role says leader, a crash
	// rejoins as an ex-leader (full re-seed) instead of replaying a
	// partially promoted follower state.
	if err := writeState(f.dir, nodeState{role: "leader", epoch: epoch}); err != nil {
		f.eng.Close() //nolint:errcheck
		f.log.close() //nolint:errcheck
		return nil, err
	}
	last := f.lastIndex()
	if err := f.applyCommitted(last); err != nil {
		f.eng.Close() //nolint:errcheck
		f.log.close() //nolint:errcheck
		return nil, err
	}
	if err := f.eng.Sync(); err != nil {
		f.eng.Close() //nolint:errcheck
		f.log.close() //nolint:errcheck
		return nil, err
	}

	// Preload the leader history from the log so surviving followers
	// resync by resend. Epoch marks reconstruct fencing for indices at
	// and below the base.
	hist := make([]histEntry, len(f.log.entries))
	var marks []epochMark
	if f.st.base > 0 {
		marks = append(marks, epochMark{from: f.st.base, epoch: f.st.baseEpoch})
	}
	for i, e := range f.log.entries {
		hist[i] = histEntry{e: Entry{Index: e.Index, Epoch: e.Epoch, Op: append([]byte(nil), e.Op...)}}
		if n := len(marks); n == 0 || marks[n-1].epoch != e.Epoch {
			marks = append(marks, epochMark{from: e.Index, epoch: e.Epoch})
		}
	}
	histBase := f.st.base
	if err := f.log.close(); err != nil {
		f.eng.Close() //nolint:errcheck
		return nil, err
	}
	os.Remove(f.log.path) //nolint:errcheck // applied and synced; leaders keep no replication log

	// Reopen the engine as a leader engine: commit hook installed,
	// synchronous writes on.
	if err := f.eng.Close(); err != nil {
		return nil, err
	}
	hook := NewHook(f.c.Universe().Dims())
	opts := cfg.Engine
	opts.CommitHook = hook
	eng, err := engine.Open(f.dir, f.c, opts)
	if err != nil {
		return nil, err
	}
	g, err := newGroup(eng, f.dir, hook, cfg, groupInit{
		epoch:     epoch,
		nextIndex: last,
		commit:    last,
		hist:      hist,
		histBase:  histBase,
		marks:     marks,
		failover:  true,
	})
	if err != nil {
		eng.Close() //nolint:errcheck
		return nil, err
	}
	g.ownsEngine = true
	g.eng.Events().Emit(telemetry.Event{
		Kind: telemetry.EvRepl, Phase: telemetry.PhasePoint, Shard: -1,
		Detail: fmt.Sprintf("promoted %s to leader at index %d epoch %d", f.id, last, epoch),
	})
	return g, nil
}
