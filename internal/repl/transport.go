package repl

import (
	"fmt"
	"sync"
)

// AppendRequest ships a run of entries to a follower. PrevIndex and
// PrevEpoch identify the entry immediately preceding Entries in the
// leader's log (0, 0 at the very beginning); the follower acknowledges
// only when its log matches at that point, which is what makes an ack
// mean "my log is a prefix-plus-Entries of yours". Commit is the
// highest quorum-committed index: the follower may apply entries up to
// it. An empty Entries slice is a heartbeat carrying the commit
// watermark.
type AppendRequest struct {
	Epoch     uint64
	LeaderID  string
	PrevIndex uint64
	PrevEpoch uint64
	Entries   []Entry
	Commit    uint64
}

// AppendResponse is the follower's verdict. Ok means the entries are
// durable in the follower's replication log. Ack is the highest index
// the follower holds contiguously from its base — on Ok it advances
// past the shipped entries; on a mismatch it is a resend hint. NeedSeed
// asks the leader for a snapshot: the follower's log cannot be
// reconciled by resend (diverged below its applied watermark, or fell
// behind the leader's history window). Epoch is the follower's current
// epoch, so a deposed leader learns it has been fenced.
type AppendResponse struct {
	Epoch    uint64
	Ok       bool
	Ack      uint64
	NeedSeed bool
}

// SeedRequest offers a follower a full state transfer: an engine
// snapshot directory to restore from, covering indices up to Base
// (appended under BaseEpoch). The follower wipes its engine and
// replication log and restarts from the snapshot; entries after Base
// arrive by ordinary Append.
type SeedRequest struct {
	Epoch     uint64
	LeaderID  string
	Snapshot  string
	Base      uint64
	BaseEpoch uint64
	Commit    uint64
}

// SeedResponse reports the restore. Ack echoes the new base on success.
type SeedResponse struct {
	Epoch uint64
	Ok    bool
	Ack   uint64
}

// Handler is the follower side of the protocol.
type Handler interface {
	HandleAppend(req AppendRequest) (AppendResponse, error)
	HandleSeed(req SeedRequest) (SeedResponse, error)
}

// Transport routes leader requests to followers by peer id. Probe is a
// cheap reachability check used by quorum recovery; it must not touch
// follower state. Implementations must be safe for concurrent use.
type Transport interface {
	Append(peer string, req AppendRequest) (AppendResponse, error)
	Seed(peer string, req SeedRequest) (SeedResponse, error)
	Probe(peer string) error
}

// Loopback is an in-process transport: a registry of handlers keyed by
// peer id. It serves single-process replica sets — every engine in one
// OS process, calls delivered synchronously — and is the substrate the
// fault-injecting transport wraps in tests. An RPC transport replacing
// it is the remaining half of the distributed tier.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: make(map[string]Handler)}
}

// Register routes requests for peer id to h. Re-registering replaces
// the previous handler (a follower restarting under the same id).
func (t *Loopback) Register(id string, h Handler) {
	t.mu.Lock()
	t.handlers[id] = h
	t.mu.Unlock()
}

// Unregister removes the route; subsequent sends fail with
// ErrUnknownPeer, which is how a crashed follower looks to the leader.
func (t *Loopback) Unregister(id string) {
	t.mu.Lock()
	delete(t.handlers, id)
	t.mu.Unlock()
}

func (t *Loopback) handler(id string) (Handler, error) {
	t.mu.RLock()
	h := t.handlers[id]
	t.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, id)
	}
	return h, nil
}

// Append delivers the request to the registered handler synchronously.
func (t *Loopback) Append(peer string, req AppendRequest) (AppendResponse, error) {
	h, err := t.handler(peer)
	if err != nil {
		return AppendResponse{}, err
	}
	return h.HandleAppend(req)
}

// Seed delivers the request to the registered handler synchronously.
func (t *Loopback) Seed(peer string, req SeedRequest) (SeedResponse, error) {
	h, err := t.handler(peer)
	if err != nil {
		return SeedResponse{}, err
	}
	return h.HandleSeed(req)
}

// Probe reports whether the peer is registered.
func (t *Loopback) Probe(peer string) error {
	_, err := t.handler(peer)
	return err
}
