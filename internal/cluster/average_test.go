package cluster

import (
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
)

// averageCurves covers every sweep strategy: run-visiting curves (onion2d,
// the linear orders), walker curves (onion3d, onionnd, layerlex, hilbert,
// morton, gray) and a generic-walker curve (peano).
func averageCurves(t *testing.T) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	mk := func(c curve.Curve, err error) {
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	mk(core.NewOnion2D(16))
	mk(core.NewOnion2D(17))
	mk(core.NewOnion3D(8))
	mk(core.NewOnionND(3, 5))
	mk(core.NewLayerLex(2, 9))
	mk(baseline.NewHilbert(2, 16))
	mk(baseline.NewMorton(2, 16))
	mk(baseline.NewGray(2, 16))
	mk(baseline.NewRowMajor(2, 12))
	mk(baseline.NewColumnMajor(3, 5))
	mk(baseline.NewSnake(2, 13))
	mk(baseline.NewPeano(2, 9))
	return cs
}

// TestAverageExactBitIdentical asserts the tentpole determinism guarantee:
// the parallel sweep, the serial sweep and the scalar reference return the
// exact same float64 for every curve family and worker count.
func TestAverageExactBitIdentical(t *testing.T) {
	for _, c := range averageCurves(t) {
		d := c.Universe().Dims()
		side := c.Universe().Side()
		shapes := [][]uint32{make([]uint32, d), make([]uint32, d), make([]uint32, d)}
		for i := 0; i < d; i++ {
			shapes[0][i] = 1
			shapes[1][i] = 3
			shapes[2][i] = side
		}
		shapes[2][0] = side - 1 + side%2 // keep at least one translate direction
		if shapes[2][0] == 0 {
			shapes[2][0] = 1
		}
		for _, shape := range shapes {
			want, err := AverageExactScalar(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := AverageExactSerial(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if serial != want {
				t.Fatalf("%s shape %v: serial %v != scalar %v", c.Name(), shape, serial, want)
			}
			for _, workers := range []int{2, 3, 7, 16} {
				got, err := averageExact(c, shape, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s shape %v workers %d: %v != scalar %v", c.Name(), shape, workers, got, want)
				}
			}
			got, err := AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s shape %v: parallel %v != scalar %v", c.Name(), shape, got, want)
			}
		}
	}
}

// TestAcc128 pins the exact accumulator against hand-computed values,
// including carries and wide products.
func TestAcc128(t *testing.T) {
	var a acc128
	a.add(^uint64(0))
	a.add(1)
	if a.lo != 0 || a.hi != 1 {
		t.Fatalf("carry: got (%d,%d)", a.hi, a.lo)
	}
	var b acc128
	b.addMul(1<<33, 1<<33) // 2^66 = 4 * 2^64
	if b.lo != 0 || b.hi != 4 {
		t.Fatalf("mul: got (%d,%d)", b.hi, b.lo)
	}
	a.merge(b)
	if a.lo != 0 || a.hi != 5 {
		t.Fatalf("merge: got (%d,%d)", a.hi, a.lo)
	}
	if f := b.toFloat(); f != 0x1p66 {
		t.Fatalf("toFloat: got %v", f)
	}
}
