package cluster

// Batched boundary sweep: the fallback query planner for curves without an
// analytic curve.RangePlanner. The Lemma 1 strategies need, for every
// (inside, outside) neighbor pair straddling a boundary face of the query,
// the two curve keys of the pair. The scalar path paid two interface
// Curve.Index calls per pair; here the face enumeration is chunked through
// curve.IndexBatch (amortizing dispatch and enabling per-curve batch fast
// paths) and the global pair range is sharded across workers, mirroring the
// shard discipline of the AverageExact edge sweep. Results are exact
// integer sets merged and sorted at the end, so the output is deterministic
// and bit-identical for every worker count.

import (
	"runtime"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// sweepChunk is the number of face pairs evaluated per IndexBatch call.
const sweepChunk = 2048

// serialSweepCutoff is the pair count below which sharding overhead is not
// worth paying.
const serialSweepCutoff = 4 * sweepChunk

// faceSpan describes one boundary face of the query: the face cells have
// coordinate inCoord along dim, their outside neighbors outCoord, and the
// face holds cells pairs (the product of the query sides over other dims).
type faceSpan struct {
	dim               int
	inCoord, outCoord uint32
	cells             uint64
}

// faceSpans enumerates the query faces that have outside neighbors inside
// the universe, in the fixed order low-then-high per dimension.
func faceSpans(r geom.Rect, u geom.Universe) []faceSpan {
	d := r.Dims()
	cellsOther := func(dim int) uint64 {
		n := uint64(1)
		for i := 0; i < d; i++ {
			if i != dim {
				n *= uint64(r.Side(i))
			}
		}
		return n
	}
	var spans []faceSpan
	for dim := 0; dim < d; dim++ {
		if r.Lo[dim] > 0 {
			spans = append(spans, faceSpan{dim, r.Lo[dim], r.Lo[dim] - 1, cellsOther(dim)})
		}
		if r.Hi[dim]+1 < u.Side() {
			spans = append(spans, faceSpan{dim, r.Hi[dim], r.Hi[dim] + 1, cellsOther(dim)})
		}
	}
	return spans
}

// crossingSink accumulates the boundary crossings of one shard.
type crossingSink struct {
	collect        bool
	starts, ends   []uint64
	nStarts, nEnds uint64
}

func (s *crossingSink) add(hi, ho uint64) {
	switch {
	case ho+1 == hi: // predecessor outside: a run starts at hi
		s.nStarts++
		if s.collect {
			s.starts = append(s.starts, hi)
		}
	case hi+1 == ho: // successor outside: a run ends at hi
		s.nEnds++
		if s.collect {
			s.ends = append(s.ends, hi)
		}
	}
}

// sweepShard evaluates the face pairs with global indices [lo, hi) in
// batches. Pair indices are assigned in span order, row-major within each
// face (dimension 0 fastest, skipping the face dimension).
func sweepShard(c curve.Curve, r geom.Rect, spans []faceSpan, lo, hi uint64, sink *crossingSink) {
	if lo >= hi {
		return
	}
	d := r.Dims()
	n := int(hi - lo)
	chunk := sweepChunk
	if n < chunk {
		chunk = n
	}
	// One point buffer serves both directions: the inside cells are
	// evaluated first, then each point's face coordinate is flipped to its
	// outside neighbor in place and the buffer is evaluated again, saving
	// a full copy per pair.
	flat := make([]uint32, chunk*d)
	pts := make([]geom.Point, chunk)
	for i := 0; i < chunk; i++ {
		pts[i] = geom.Point(flat[i*d : (i+1)*d : (i+1)*d])
	}
	keysIn := make([]uint64, chunk)
	keysOut := make([]uint64, chunk)
	fill := 0
	// flush evaluates the pending pairs, all from the face whose outside
	// side is (dim, outCoord).
	flush := func(dim int, outCoord uint32) {
		if fill == 0 {
			return
		}
		curve.IndexBatch(c, pts[:fill], keysIn[:fill])
		for i := 0; i < fill; i++ {
			pts[i][dim] = outCoord
		}
		curve.IndexBatch(c, pts[:fill], keysOut[:fill])
		for i := 0; i < fill; i++ {
			sink.add(keysIn[i], keysOut[i])
		}
		fill = 0
	}
	p := make(geom.Point, d)
	remaining := hi - lo
	pos := lo
	for _, sp := range spans {
		if pos >= sp.cells {
			pos -= sp.cells
			continue
		}
		// Unrank the starting offset within this face.
		off := pos
		p[sp.dim] = sp.inCoord
		for i := 0; i < d; i++ {
			if i == sp.dim {
				continue
			}
			extent := uint64(r.Side(i))
			p[i] = r.Lo[i] + uint32(off%extent)
			off /= extent
		}
		// Iterate face cells from the start, odometer over dims != dim.
		for {
			copy(pts[fill], p)
			fill++
			if fill == chunk {
				flush(sp.dim, sp.outCoord)
			}
			remaining--
			if remaining == 0 {
				flush(sp.dim, sp.outCoord)
				return
			}
			i := 0
			for i < d {
				if i == sp.dim {
					i++
					continue
				}
				if p[i] < r.Hi[i] {
					p[i]++
					break
				}
				p[i] = r.Lo[i]
				i++
			}
			if i == d {
				break // face exhausted, next span
			}
		}
		flush(sp.dim, sp.outCoord) // face boundary: pending pairs share it
		pos = 0
	}
}

// sweepCrossings runs the batched boundary sweep with the given worker
// count (0 means GOMAXPROCS) and reports every run start and end among the
// face pairs. With collect set the keys themselves are returned, in no
// particular order: the key SET is deterministic for every worker count
// and callers sort exactly once after appending their endpoint keys.
func sweepCrossings(c curve.Curve, r geom.Rect, workers int, collect bool) (starts, ends []uint64, nStarts, nEnds uint64) {
	u := c.Universe()
	spans := faceSpans(r, u)
	var total uint64
	for _, sp := range spans {
		total += sp.cells
	}
	if total == 0 {
		return nil, nil, 0, 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total < serialSweepCutoff || workers == 1 {
		sink := crossingSink{collect: collect}
		sweepShard(c, r, spans, 0, total, &sink)
		return sink.starts, sink.ends, sink.nStarts, sink.nEnds
	}
	if uint64(workers) > total {
		workers = int(total)
	}
	sinks := make([]crossingSink, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sinks[k].collect = collect
			lo := total * uint64(k) / uint64(workers)
			hi := total * uint64(k+1) / uint64(workers)
			sweepShard(c, r, spans, lo, hi, &sinks[k])
		}(k)
	}
	wg.Wait()
	for k := range sinks {
		nStarts += sinks[k].nStarts
		nEnds += sinks[k].nEnds
		if collect {
			starts = append(starts, sinks[k].starts...)
			ends = append(ends, sinks[k].ends...)
		}
	}
	return starts, ends, nStarts, nEnds
}

// BoundaryCrossings returns the curve keys at which a run of the query
// starts (the key's predecessor cell lies outside r) and ends (successor
// outside), among the O(surface) boundary neighbor pairs of r, in no
// particular order (callers that need order sort once, typically after
// appending the curve-endpoint keys). Continuity of the curve makes the
// set exhaustive (Lemma 1); for almost-continuous curves the enumerated
// jumps must be checked separately. The sweep is batched through
// curve.IndexBatch and sharded across GOMAXPROCS workers; the returned
// set is deterministic regardless of worker count.
func BoundaryCrossings(c curve.Curve, r geom.Rect) (starts, ends []uint64) {
	starts, ends, _, _ = sweepCrossings(c, r, 0, true)
	return starts, ends
}
