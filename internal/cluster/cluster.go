// Package cluster computes clustering numbers, the paper's central metric:
// the clustering number c(q, pi) of a query q under an SFC pi is the
// minimum number of runs of consecutive curve positions that exactly cover
// the cells of q (Section I).
//
// Three strategies are provided and cross-validated by the test suite:
//
//   - CountSorted enumerates all cells, sorts their keys and counts runs.
//     Works for every curve but costs O(|q| log |q|) time and O(|q|) space.
//   - CountContinuous implements Lemma 1 for continuous curves: every
//     cluster boundary is a curve edge crossing the query boundary, so only
//     the O(surface) inside/outside neighbor pairs need to be inspected.
//     This is what makes 10^8-cell queries (Figure 5b) countable.
//   - AverageExact computes the exact average clustering number over the
//     query set of all translates of a shape, for any curve, continuous or
//     not, by walking the curve once and applying a generalization of
//     Lemma 2 to arbitrary directed edges.
package cluster

import (
	"errors"
	"fmt"
	"slices"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

var (
	// ErrNotContinuous reports that a continuous-only strategy was asked
	// to handle a discontinuous curve.
	ErrNotContinuous = errors.New("cluster: curve is not continuous")
	// ErrRectOutside reports a query rectangle not fully inside the
	// curve's universe.
	ErrRectOutside = errors.New("cluster: rectangle outside universe")
	// ErrTooManyCells reports a query too large for the sorted strategy.
	ErrTooManyCells = errors.New("cluster: query exceeds cell budget for sorted counting")
	// ErrShape reports an invalid translate shape.
	ErrShape = errors.New("cluster: invalid query shape")
)

// DefaultMaxSortedCells bounds the memory used by CountSorted when invoked
// through Count: 2^24 cells is 128 MiB of keys.
const DefaultMaxSortedCells = 1 << 24

// Count returns the exact clustering number of r under c, choosing the
// cheapest correct strategy:
//
//   - curves with an analytic planner (curve.RangePlanner: the onion
//     family, Hilbert, Z, Gray, the linear orders): output-sensitive
//     counting, no curve evaluations;
//   - continuous curves: the Lemma 1 boundary method, O(surface) batched
//     curve evaluations;
//   - almost-continuous curves (cluster.JumpLister): the boundary method
//     plus one check per enumerated jump;
//   - anything else: sorted run counting, O(|r| log |r|).
func Count(c curve.Curve, r geom.Rect) (uint64, error) {
	if !r.In(c.Universe()) {
		return 0, fmt.Errorf("%w: %v in %v", ErrRectOutside, r, c.Universe())
	}
	if p, ok := c.(curve.RangePlanner); ok {
		return p.ClusterCount(r), nil
	}
	if curve.IsContinuous(c) {
		return CountContinuous(c, r)
	}
	if _, ok := c.(JumpLister); ok {
		return CountNearContinuous(c, r)
	}
	return CountSorted(c, r, DefaultMaxSortedCells)
}

// CountSorted enumerates the cells of r, sorts their curve keys and counts
// maximal runs of consecutive keys. maxCells guards memory; pass 0 for the
// default budget.
func CountSorted(c curve.Curve, r geom.Rect, maxCells uint64) (uint64, error) {
	if maxCells == 0 {
		maxCells = DefaultMaxSortedCells
	}
	if !r.In(c.Universe()) {
		return 0, fmt.Errorf("%w: %v in %v", ErrRectOutside, r, c.Universe())
	}
	cells := r.Cells()
	if cells > maxCells {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooManyCells, cells, maxCells)
	}
	// Enumerate cells in fixed-size chunks routed through the batch
	// forward mapping: one IndexBatch per chunk instead of one interface
	// call per cell, with a single flat coordinate buffer sized to the
	// query.
	chunk := 4096
	if cells < uint64(chunk) {
		chunk = int(cells)
	}
	d := r.Dims()
	flat := make([]uint32, chunk*d)
	pts := make([]geom.Point, chunk)
	for i := range pts {
		pts[i] = geom.Point(flat[i*d : (i+1)*d : (i+1)*d])
	}
	keys := make([]uint64, cells)
	fill := 0
	off := 0
	r.ForEach(func(p geom.Point) bool {
		copy(pts[fill], p)
		fill++
		if fill == chunk {
			curve.IndexBatch(c, pts, keys[off:off+chunk])
			off += chunk
			fill = 0
		}
		return true
	})
	if fill > 0 {
		curve.IndexBatch(c, pts[:fill], keys[off:off+fill])
	}
	slices.Sort(keys)
	var runs uint64
	for i, k := range keys {
		if i == 0 || keys[i-1]+1 != k {
			runs++
		}
	}
	return runs, nil
}

// CountContinuous counts clusters via Lemma 1: for a continuous SFC,
// c(q, pi) = (gamma(q, pi) + I(q, pi_s) + I(q, pi_e)) / 2 where gamma
// counts curve edges crossing the boundary of q. Because the curve is
// continuous, every crossing edge is a grid-neighbor pair straddling a face
// of q, so only O(surface(q)) pairs need checking. The pairs are evaluated
// through the batched boundary sweep: chunked curve.IndexBatch calls
// sharded across GOMAXPROCS workers, with exact integer counting, so the
// result is identical to the scalar walk at a fraction of the cost.
func CountContinuous(c curve.Curve, r geom.Rect) (uint64, error) {
	if !curve.IsContinuous(c) {
		return 0, fmt.Errorf("%w: %s", ErrNotContinuous, c.Name())
	}
	u := c.Universe()
	if !r.In(u) {
		return 0, fmt.Errorf("%w: %v in %v", ErrRectOutside, r, u)
	}
	_, _, nStarts, nEnds := sweepCrossings(c, r, 0, false)
	gamma := nStarts + nEnds
	var ends uint64
	p := make(geom.Point, u.Dims())
	if r.Contains(c.Coords(0, p)) {
		ends++
	}
	if r.Contains(c.Coords(u.Size()-1, p)) {
		ends++
	}
	return (gamma + ends) / 2, nil
}

// CoverCount returns the number of translates of a query of the given
// shape (inside universe u) that contain the cell p — the paper's I(Q, p)
// summed over the whole translate family.
func CoverCount(u geom.Universe, shape []uint32, p geom.Point) uint64 {
	prod := uint64(1)
	for i := range shape {
		prod *= coverCount1(u.Side(), shape[i], p[i])
	}
	return prod
}

// coverCount1 counts positions pos in [0, side-l] with pos <= x <= pos+l-1.
func coverCount1(side, l, x uint32) uint64 {
	lo := int64(x) - int64(l) + 1
	if lo < 0 {
		lo = 0
	}
	hi := int64(x)
	if m := int64(side) - int64(l); hi > m {
		hi = m
	}
	if hi < lo {
		return 0
	}
	return uint64(hi - lo + 1)
}

// coverPair1 counts positions covering both coordinates a and b.
func coverPair1(side, l, a, b uint32) uint64 {
	mn, mx := a, b
	if mn > mx {
		mn, mx = mx, mn
	}
	lo := int64(mx) - int64(l) + 1
	if lo < 0 {
		lo = 0
	}
	hi := int64(mn)
	if m := int64(side) - int64(l); hi > m {
		hi = m
	}
	if hi < lo {
		return 0
	}
	return uint64(hi - lo + 1)
}

// GammaTranslates returns gamma(Q, e) for the directed edge e = (alpha,
// beta) and the query set Q of all translates of the given shape: the
// number of translates containing exactly one endpoint. This generalizes
// Lemma 2 to arbitrary (not necessarily neighboring) cell pairs, which is
// what discontinuous curves like the Z curve require.
func GammaTranslates(u geom.Universe, shape []uint32, alpha, beta geom.Point) uint64 {
	a := uint64(1)
	b := uint64(1)
	both := uint64(1)
	for i := range shape {
		a *= coverCount1(u.Side(), shape[i], alpha[i])
		b *= coverCount1(u.Side(), shape[i], beta[i])
		both *= coverPair1(u.Side(), shape[i], alpha[i], beta[i])
	}
	return a + b - 2*both
}

// AverageExact returns the exact average clustering number of c over the
// query set formed by all translates of the given shape, using Lemma 1:
//
//	avg = (sum_e gamma(Q, e) + I(Q, pi_s) + I(Q, pi_e)) / (2 |Q|)
//
// The curve's n-1 edges are swept in parallel across GOMAXPROCS workers,
// each driving an incremental curve.Walker seeded at its shard boundary
// (or, for curves exposing run structure via curve.RunVisitor, summing
// whole straight runs in O(1) with per-axis prefix tables). All partial
// sums are exact 128-bit integers, so the result is bit-identical to
// AverageExactSerial and AverageExactScalar regardless of worker count.
func AverageExact(c curve.Curve, shape []uint32) (float64, error) {
	return averageExact(c, shape, defaultWorkers())
}

// TranslateCount returns |Q|, the number of distinct translates of the
// shape inside the universe.
func TranslateCount(u geom.Universe, shape []uint32) (uint64, error) {
	if len(shape) != u.Dims() {
		return 0, fmt.Errorf("%w: %d dims for universe %v", ErrShape, len(shape), u)
	}
	count := uint64(1)
	for _, l := range shape {
		if l == 0 || l > u.Side() {
			return 0, fmt.Errorf("%w: side %d in universe %v", ErrShape, l, u)
		}
		count *= uint64(u.Side()-l) + 1
	}
	return count, nil
}
