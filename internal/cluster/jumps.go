package cluster

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// JumpLister is implemented by curves that are continuous except at an
// explicitly enumerable set of positions ("almost continuous", like the 3D
// onion curve). Jumps must return, sorted, every h for which the step
// h -> h+1 is not a grid-neighbor move.
type JumpLister interface {
	Jumps() []uint64
}

// ErrNoJumps reports a curve that neither is continuous nor enumerates its
// discontinuities.
var ErrNoJumps = fmt.Errorf("cluster: curve does not enumerate jumps")

// CountNearContinuous counts clusters of r for an almost-continuous curve:
// a run of the query starts either at the global curve start, after a
// grid-neighbor boundary crossing (found among the O(surface) face pairs,
// swept batched and in parallel), or after one of the curve's enumerated
// jumps. Cost is O(surface(r) + jumps).
func CountNearContinuous(c curve.Curve, r geom.Rect) (uint64, error) {
	u := c.Universe()
	if !r.In(u) {
		return 0, fmt.Errorf("%w: %v in %v", ErrRectOutside, r, u)
	}
	var jumps []uint64
	if jl, ok := c.(JumpLister); ok {
		jumps = jl.Jumps()
	} else if !curve.IsContinuous(c) {
		return 0, fmt.Errorf("%w: %s", ErrNoJumps, c.Name())
	}
	// A run start among the face pairs is a pair whose outside cell is the
	// key predecessor of the inside cell. A jump step cannot be such a
	// pair (a jump is not a neighbor move, face pairs are), so the jump
	// pass below never double-counts.
	_, _, starts, _ := sweepCrossings(c, r, 0, false)
	p := make(geom.Point, u.Dims())
	q := make(geom.Point, u.Dims())
	for _, h := range jumps {
		// Successor cell of the jump starts a run iff it is inside and
		// the jump cell itself is outside.
		c.Coords(h+1, p)
		if !r.Contains(p) {
			continue
		}
		c.Coords(h, q)
		if !r.Contains(q) {
			starts++
		}
	}
	if r.Contains(c.Coords(0, p)) {
		starts++
	}
	return starts, nil
}

// ScanJumps walks the whole curve and returns every discontinuity — the
// brute-force counterpart of JumpLister for tests and for small curves
// that do not enumerate their jumps analytically. The sweep drives an
// incremental curve.Walker, so it costs amortized O(1) per cell instead of
// one full inversion.
func ScanJumps(c curve.Curve) []uint64 {
	u := c.Universe()
	n := u.Size()
	var jumps []uint64
	w := curve.NewWalker(c, 0)
	_, p, ok := w.Next()
	if !ok {
		return nil
	}
	prev := p.Clone()
	for h := uint64(1); h < n; h++ {
		_, p, _ = w.Next()
		if !areNeighbors(prev, p) {
			jumps = append(jumps, h-1)
		}
		copy(prev, p)
	}
	return jumps
}

func areNeighbors(a, b geom.Point) bool {
	diff := 0
	for i := range a {
		switch {
		case a[i] == b[i]:
		case a[i]+1 == b[i] || b[i]+1 == a[i]:
			diff++
		default:
			return false
		}
	}
	return diff == 1
}
