package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
)

// TestOnion3DJumpsMatchScan verifies the analytic jump enumeration of the
// 3D onion curve against a brute-force curve walk.
func TestOnion3DJumpsMatchScan(t *testing.T) {
	for _, side := range []uint32{2, 4, 6, 8, 16, 32} {
		o, err := core.NewOnion3D(side)
		if err != nil {
			t.Fatal(err)
		}
		want := ScanJumps(o)
		got := o.Jumps()
		if len(got) != len(want) {
			t.Fatalf("side %d: %d analytic jumps, %d scanned", side, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("side %d: jump %d: %d vs %d", side, i, got[i], want[i])
			}
		}
	}
}

func TestOnion3DJumpCountIsSmall(t *testing.T) {
	// O(m) jumps: the almost-continuity that makes huge queries countable.
	o, _ := core.NewOnion3D(64)
	jumps := o.Jumps()
	if len(jumps) == 0 {
		t.Fatal("expected some jumps (onion3d is not continuous)")
	}
	if len(jumps) > 11*32 {
		t.Fatalf("too many jumps: %d", len(jumps))
	}
}

func TestScanJumpsContinuousCurveEmpty(t *testing.T) {
	h, _ := baseline.NewHilbert(2, 16)
	if js := ScanJumps(h); len(js) != 0 {
		t.Fatalf("hilbert has %d jumps", len(js))
	}
	o, _ := core.NewOnion2D(15)
	if js := ScanJumps(o); len(js) != 0 {
		t.Fatalf("onion2d has %d jumps", len(js))
	}
}

// TestCountNearContinuousMatchesSorted is the correctness proof of the
// jump-aware counter on the 3D onion curve.
func TestCountNearContinuousMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, side := range []uint32{8, 16} {
		o, err := core.NewOnion3D(side)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 120; trial++ {
			r := randRect(rng, 3, side)
			want, err := CountSorted(o, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountNearContinuous(o, r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("side %d %v: jump counter %d, sorted %d", side, r, got, want)
			}
		}
	}
}

// TestCountNearContinuousOnContinuousCurve: with no jumps the method
// degenerates to the Lemma 1 boundary counter.
func TestCountNearContinuousOnContinuousCurve(t *testing.T) {
	h, _ := baseline.NewHilbert(2, 32)
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 60; trial++ {
		r := randRect(rng, 2, 32)
		want, _ := CountSorted(h, r, 0)
		got, err := CountNearContinuous(h, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: %d vs %d", r, got, want)
		}
	}
}

func TestCountNearContinuousRejectsUnknownCurves(t *testing.T) {
	z, _ := baseline.NewMorton(2, 8)
	r := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{3, 3}}
	if _, err := CountNearContinuous(z, r); !errors.Is(err, ErrNoJumps) {
		t.Error("morton accepted without jump list")
	}
	o, _ := core.NewOnion3D(8)
	outside := geom.Rect{Lo: geom.Point{4, 4, 4}, Hi: geom.Point{8, 8, 8}}
	if _, err := CountNearContinuous(o, outside); !errors.Is(err, ErrRectOutside) {
		t.Error("outside rect accepted")
	}
}

func TestCountNearContinuousWholeUniverse(t *testing.T) {
	o, _ := core.NewOnion3D(16)
	got, err := CountNearContinuous(o, o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("whole universe = %d clusters", got)
	}
}

func TestOnion3DPermutedJumpsMatchScan(t *testing.T) {
	perm := [10]int{9, 1, 3, 4, 5, 2, 6, 7, 8, 10}
	for _, side := range []uint32{4, 8, 16} {
		o, err := core.NewOnion3DWithSegmentOrder(side, perm)
		if err != nil {
			t.Fatal(err)
		}
		want := ScanJumps(o)
		got := o.Jumps()
		if len(got) != len(want) {
			t.Fatalf("side %d: %d analytic jumps, %d scanned", side, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("side %d: jump %d: %d vs %d", side, i, got[i], want[i])
			}
		}
	}
}
