package cluster

// The exact average clustering number (Lemma 1 plus the generalized
// Lemma 2) requires walking every edge of the curve. This file implements
// that sweep three ways, all producing bit-identical results:
//
//   - a per-axis table + prefix-sum formulation of GammaTranslates, so a
//     straight run of r curve edges contributes in O(1) via
//     curve.RunVisitor (the onion rings, the linear orders' rows);
//   - an incremental curve.Walker sweep for curves without run structure,
//     sharded across workers, each walker seeded at its shard boundary;
//   - the original scalar Coords-per-key loop, retained as the reference.
//
// Determinism: every path accumulates the gamma sum in 128-bit integer
// arithmetic, which is associative, so the result is exactly the same
// float64 regardless of worker count, sharding or evaluation strategy.

import (
	"math/bits"
	"runtime"
	"sync"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// acc128 is an exact unsigned 128-bit accumulator.
type acc128 struct {
	lo, hi uint64
}

func (a *acc128) add(v uint64) {
	var c uint64
	a.lo, c = bits.Add64(a.lo, v, 0)
	a.hi += c
}

// addMul adds the full 128-bit product x*y.
func (a *acc128) addMul(x, y uint64) {
	hi, lo := bits.Mul64(x, y)
	var c uint64
	a.lo, c = bits.Add64(a.lo, lo, 0)
	a.hi += hi + c
}

func (a *acc128) merge(b acc128) {
	var c uint64
	a.lo, c = bits.Add64(a.lo, b.lo, 0)
	a.hi += b.hi + c
}

func (a acc128) toFloat() float64 {
	return float64(a.hi)*0x1p64 + float64(a.lo)
}

// gammaTables precomputes, per dimension, the translate cover counts and
// the prefix sums of per-edge gamma values, turning GammaTranslates for a
// unit step along dimension j into two lookups and turning a straight run
// of edges into a prefix-sum difference.
type gammaTables struct {
	u     geom.Universe
	shape []uint32
	// cover[j][x] = coverCount1(side, shape[j], x).
	cover [][]uint64
	// pre[j][x] = sum over k < x of the gamma of a unit edge (k, k+1)
	// along dimension j: cover[k] + cover[k+1] - 2*coverPair1(k, k+1).
	pre [][]uint64
}

func newGammaTables(u geom.Universe, shape []uint32) *gammaTables {
	side := u.Side()
	d := u.Dims()
	g := &gammaTables{u: u, shape: shape,
		cover: make([][]uint64, d), pre: make([][]uint64, d)}
	for j := 0; j < d; j++ {
		cov := make([]uint64, side)
		for x := uint32(0); x < side; x++ {
			cov[x] = coverCount1(side, shape[j], x)
		}
		pre := make([]uint64, side)
		for x := uint32(0); x+1 < side; x++ {
			e := cov[x] + cov[x+1] - 2*coverPair1(side, shape[j], x, x+1)
			pre[x+1] = pre[x] + e
		}
		g.cover[j] = cov
		g.pre[j] = pre
	}
	return g
}

// coverOther returns the product of the cover counts of every dimension
// except j — the shared factor of all edges of a run along j.
func (g *gammaTables) coverOther(p geom.Point, j int) uint64 {
	prod := uint64(1)
	for i, x := range p {
		if i != j {
			prod *= g.cover[i][x]
		}
	}
	return prod
}

// addRun accumulates the gamma of `edges` consecutive unit steps along
// dimension dim starting at cell start, in O(d).
func (g *gammaTables) addRun(acc *acc128, start geom.Point, dim, dir int, edges uint64) {
	x := uint64(start[dim])
	var sum uint64
	if dir > 0 {
		sum = g.pre[dim][x+edges] - g.pre[dim][x]
	} else {
		sum = g.pre[dim][x] - g.pre[dim][x-edges]
	}
	acc.addMul(g.coverOther(start, dim), sum)
}

// addEdge accumulates the gamma of a single arbitrary edge (a, b). Unit
// steps use the table fast path; anything else falls back to the general
// GammaTranslates.
func (g *gammaTables) addEdge(acc *acc128, a, b geom.Point) {
	dim := -1
	for i := range a {
		if a[i] != b[i] {
			if dim >= 0 || (a[i]+1 != b[i] && b[i]+1 != a[i]) {
				acc.add(GammaTranslates(g.u, g.shape, a, b))
				return
			}
			dim = i
		}
	}
	if dim < 0 {
		return // a == b: no edge
	}
	mn := a[dim]
	if b[dim] < mn {
		mn = b[dim]
	}
	acc.addMul(g.coverOther(a, dim), g.pre[dim][mn+1]-g.pre[dim][mn])
}

// sweepEdges accumulates the gamma of curve edges (h, h+1) for h in
// [lo, hi) into acc, using the curve's run structure when available and an
// incremental walker otherwise.
func (g *gammaTables) sweepEdges(c curve.Curve, lo, hi uint64, acc *acc128) {
	if lo >= hi {
		return
	}
	if rv, ok := c.(curve.RunVisitor); ok {
		rv.VisitRuns(lo, hi,
			func(start geom.Point, dim, dir int, edges uint64) {
				g.addRun(acc, start, dim, dir, edges)
			},
			func(a, b geom.Point) {
				g.addEdge(acc, a, b)
			})
		return
	}
	w := curve.NewWalker(c, lo)
	_, p, ok := w.Next()
	if !ok {
		return
	}
	prev := p.Clone()
	for h := lo; h < hi; h++ {
		_, p, _ = w.Next()
		g.addEdge(acc, prev, p)
		copy(prev, p)
	}
}

// averageExact is the shared implementation of AverageExact and
// AverageExactSerial: the curve's n-1 edges are split into `workers`
// contiguous shards, each swept independently, and the exact integer
// partial sums are merged.
func averageExact(c curve.Curve, shape []uint32, workers int) (float64, error) {
	u := c.Universe()
	count, err := TranslateCount(u, shape)
	if err != nil {
		return 0, err
	}
	n := u.Size()
	g := newGammaTables(u, shape)
	edges := n - 1
	if workers < 1 {
		workers = 1
	}
	if uint64(workers) > edges {
		workers = int(edges)
	}
	var total acc128
	if workers <= 1 {
		g.sweepEdges(c, 0, edges, &total)
	} else {
		accs := make([]acc128, workers)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				lo := edges * uint64(k) / uint64(workers)
				hi := edges * uint64(k+1) / uint64(workers)
				g.sweepEdges(c, lo, hi, &accs[k])
			}(k)
		}
		wg.Wait()
		for _, a := range accs {
			total.merge(a)
		}
	}
	p := make(geom.Point, u.Dims())
	total.add(CoverCount(u, shape, c.Coords(0, p)))
	total.add(CoverCount(u, shape, c.Coords(n-1, p)))
	return total.toFloat() / (2 * float64(count)), nil
}

// AverageExactSerial computes the same exact average on a single
// goroutine; AverageExact is guaranteed to return a bit-identical float64.
func AverageExactSerial(c curve.Curve, shape []uint32) (float64, error) {
	return averageExact(c, shape, 1)
}

// AverageExactScalar is the pre-walker reference implementation: one
// scalar Coords inversion per key and one general GammaTranslates per
// edge. It is retained to cross-validate (and benchmark against) the
// incremental paths and returns bit-identical results.
func AverageExactScalar(c curve.Curve, shape []uint32) (float64, error) {
	u := c.Universe()
	count, err := TranslateCount(u, shape)
	if err != nil {
		return 0, err
	}
	n := u.Size()
	prev := c.Coords(0, nil)
	cur := make(geom.Point, u.Dims())
	var total acc128
	for h := uint64(1); h < n; h++ {
		c.Coords(h, cur)
		total.add(GammaTranslates(u, shape, prev, cur))
		prev, cur = cur, prev
	}
	total.add(CoverCount(u, shape, c.Coords(0, cur)))
	total.add(CoverCount(u, shape, c.Coords(n-1, cur)))
	return total.toFloat() / (2 * float64(count)), nil
}

// defaultWorkers returns the sweep parallelism: one worker per available
// CPU.
func defaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}
