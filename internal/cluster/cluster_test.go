package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// curves2d returns a mixed bag of continuous and discontinuous 2D curves on
// a power-of-two side.
func curves2d(t *testing.T, side uint32) []curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(side)
	if err != nil {
		t.Fatal(err)
	}
	h, err := baseline.NewHilbert(2, side)
	if err != nil {
		t.Fatal(err)
	}
	z, err := baseline.NewMorton(2, side)
	if err != nil {
		t.Fatal(err)
	}
	g, err := baseline.NewGray(2, side)
	if err != nil {
		t.Fatal(err)
	}
	s, err := baseline.NewSnake(2, side)
	if err != nil {
		t.Fatal(err)
	}
	r, err := baseline.NewRowMajor(2, side)
	if err != nil {
		t.Fatal(err)
	}
	return []curve.Curve{o, h, z, g, s, r}
}

func TestCountFigure1(t *testing.T) {
	// Figure 1 shows a query where the Hilbert curve needs 2 clusters and
	// the Z curve 4. The centered 2x2 query at (1,1) on a 4x4 grid
	// realizes exactly those numbers: Hilbert keys form 2 runs, Z keys
	// {3,6,9,12} form 4 singleton runs.
	h, _ := baseline.NewHilbert(2, 4)
	z, _ := baseline.NewMorton(2, 4)
	r := geom.Rect{Lo: geom.Point{1, 1}, Hi: geom.Point{2, 2}}
	ch, err := Count(h, r)
	if err != nil {
		t.Fatal(err)
	}
	cz, err := Count(z, r)
	if err != nil {
		t.Fatal(err)
	}
	if cz != 4 {
		t.Errorf("z curve centered 2x2 clusters = %d, want 4", cz)
	}
	if ch >= cz {
		t.Errorf("hilbert (%d) should beat z curve (%d); exact hilbert count depends on orientation", ch, cz)
	}
	// Queries realizing Figure 1's exact pair (hilbert 2, z 4) exist on
	// the 8x8 grid; the 1x4 window at the origin is one of them.
	h8, _ := baseline.NewHilbert(2, 8)
	z8, _ := baseline.NewMorton(2, 8)
	fig1 := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0, 3}}
	chh, _ := Count(h8, fig1)
	czz, _ := Count(z8, fig1)
	if chh != 2 || czz != 4 {
		t.Errorf("1x4 at origin: hilbert=%d z=%d, want 2 and 4", chh, czz)
	}
}

func TestCountWholeUniverse(t *testing.T) {
	for _, c := range curves2d(t, 8) {
		got, err := Count(c, c.Universe().Rect())
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got != 1 {
			t.Errorf("%s: whole universe clusters = %d, want 1", c.Name(), got)
		}
	}
}

func TestCountSingleCell(t *testing.T) {
	for _, c := range curves2d(t, 8) {
		r := geom.Rect{Lo: geom.Point{3, 5}, Hi: geom.Point{3, 5}}
		got, err := Count(c, r)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got != 1 {
			t.Errorf("%s: single cell clusters = %d, want 1", c.Name(), got)
		}
	}
}

func TestCountSingleRowUnderRowMajor(t *testing.T) {
	r, _ := baseline.NewRowMajor(2, 16)
	cmaj, _ := baseline.NewColumnMajor(2, 16)
	row := geom.Rect{Lo: geom.Point{0, 7}, Hi: geom.Point{15, 7}}
	if got, _ := Count(r, row); got != 1 {
		t.Errorf("row under rowmajor = %d, want 1", got)
	}
	if got, _ := Count(cmaj, row); got != 16 {
		t.Errorf("row under colmajor = %d, want 16 (Section V-C)", got)
	}
}

// TestContinuousMatchesSorted is the key cross-validation: the Lemma 1
// boundary method must agree with brute-force sorted counting on random
// queries for every continuous curve.
func TestContinuousMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	side := uint32(32)
	o, _ := core.NewOnion2D(side)
	h, _ := baseline.NewHilbert(2, side)
	s, _ := baseline.NewSnake(2, side)
	for _, c := range []curve.Curve{o, h, s} {
		for trial := 0; trial < 200; trial++ {
			r := randRect(rng, 2, side)
			want, err := CountSorted(c, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountContinuous(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s on %v: boundary=%d sorted=%d", c.Name(), r, got, want)
			}
		}
	}
}

func TestContinuousMatchesSorted3D(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	o3, _ := core.NewOnion3D(16)
	h3, _ := baseline.NewHilbert(3, 16)
	s3, _ := baseline.NewSnake(3, 16)
	for _, c := range []curve.Curve{h3, s3} {
		for trial := 0; trial < 100; trial++ {
			r := randRect(rng, 3, 16)
			want, _ := CountSorted(c, r, 0)
			got, err := CountContinuous(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s on %v: boundary=%d sorted=%d", c.Name(), r, got, want)
			}
		}
	}
	// Onion3D is not continuous; Count must fall back to sorted and the
	// continuous method must refuse it.
	if _, err := CountContinuous(o3, geom.Rect{Lo: geom.Point{0, 0, 0}, Hi: geom.Point{3, 3, 3}}); !errors.Is(err, ErrNotContinuous) {
		t.Error("onion3d accepted by CountContinuous")
	}
}

func randRect(rng *rand.Rand, dims int, side uint32) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := 0; i < dims; i++ {
		a := uint32(rng.Int31n(int32(side)))
		b := uint32(rng.Int31n(int32(side)))
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func TestCountErrors(t *testing.T) {
	h, _ := baseline.NewHilbert(2, 8)
	outside := geom.Rect{Lo: geom.Point{5, 5}, Hi: geom.Point{9, 9}}
	if _, err := CountContinuous(h, outside); !errors.Is(err, ErrRectOutside) {
		t.Error("rect outside universe accepted by CountContinuous")
	}
	if _, err := CountSorted(h, outside, 0); !errors.Is(err, ErrRectOutside) {
		t.Error("rect outside universe accepted by CountSorted")
	}
	big := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{7, 7}}
	if _, err := CountSorted(h, big, 8); !errors.Is(err, ErrTooManyCells) {
		t.Error("cell budget not enforced")
	}
}

// bruteAverage computes the average clustering number over all translates
// by explicit enumeration — the oracle for AverageExact.
func bruteAverage(t *testing.T, c curve.Curve, shape []uint32) float64 {
	t.Helper()
	u := c.Universe()
	var total, count uint64
	pos := make(geom.Point, u.Dims())
	var rec func(dim int)
	rec = func(dim int) {
		if dim == u.Dims() {
			r, err := geom.RectAt(pos, shape)
			if err != nil {
				t.Fatal(err)
			}
			n, err := CountSorted(c, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += n
			count++
			return
		}
		for v := uint32(0); v+shape[dim] <= u.Side(); v++ {
			pos[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	return float64(total) / float64(count)
}

func TestAverageExactMatchesBruteForce2D(t *testing.T) {
	for _, c := range curves2d(t, 16) {
		for _, shape := range [][]uint32{{1, 1}, {2, 2}, {3, 2}, {5, 5}, {7, 3}, {16, 16}, {15, 1}, {9, 12}} {
			want := bruteAverage(t, c, shape)
			got, err := AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s shape %v: exact=%.12f brute=%.12f", c.Name(), shape, got, want)
			}
		}
	}
}

func TestAverageExactMatchesBruteForce3D(t *testing.T) {
	o3, _ := core.NewOnion3D(8)
	h3, _ := baseline.NewHilbert(3, 8)
	z3, _ := baseline.NewMorton(3, 8)
	for _, c := range []curve.Curve{o3, h3, z3} {
		for _, shape := range [][]uint32{{2, 2, 2}, {3, 5, 2}, {8, 8, 8}, {7, 7, 7}} {
			want := bruteAverage(t, c, shape)
			got, err := AverageExact(c, shape)
			if err != nil {
				t.Fatal(err)
			}
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s shape %v: exact=%.12f brute=%.12f", c.Name(), shape, got, want)
			}
		}
	}
}

func TestAverageExactShapeValidation(t *testing.T) {
	h, _ := baseline.NewHilbert(2, 8)
	if _, err := AverageExact(h, []uint32{0, 2}); !errors.Is(err, ErrShape) {
		t.Error("zero side accepted")
	}
	if _, err := AverageExact(h, []uint32{9, 2}); !errors.Is(err, ErrShape) {
		t.Error("oversized side accepted")
	}
	if _, err := AverageExact(h, []uint32{2}); !errors.Is(err, ErrShape) {
		t.Error("wrong dims accepted")
	}
}

func TestGammaTranslatesBruteForce(t *testing.T) {
	// Compare the closed form against explicit translate enumeration for
	// random (not necessarily neighboring) cell pairs.
	u := geom.MustUniverse(2, 12)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		shape := []uint32{uint32(rng.Int31n(12)) + 1, uint32(rng.Int31n(12)) + 1}
		alpha := geom.Point{uint32(rng.Int31n(12)), uint32(rng.Int31n(12))}
		beta := geom.Point{uint32(rng.Int31n(12)), uint32(rng.Int31n(12))}
		if alpha.Equal(beta) {
			continue
		}
		var want uint64
		for x := uint32(0); x+shape[0] <= 12; x++ {
			for y := uint32(0); y+shape[1] <= 12; y++ {
				r, _ := geom.RectAt(geom.Point{x, y}, shape)
				ina, inb := r.Contains(alpha), r.Contains(beta)
				if ina != inb {
					want++
				}
			}
		}
		if got := GammaTranslates(u, shape, alpha, beta); got != want {
			t.Fatalf("shape %v alpha %v beta %v: got %d want %d", shape, alpha, beta, got, want)
		}
	}
}

func TestCoverCountBruteForce(t *testing.T) {
	u := geom.MustUniverse(2, 10)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		shape := []uint32{uint32(rng.Int31n(10)) + 1, uint32(rng.Int31n(10)) + 1}
		p := geom.Point{uint32(rng.Int31n(10)), uint32(rng.Int31n(10))}
		var want uint64
		for x := uint32(0); x+shape[0] <= 10; x++ {
			for y := uint32(0); y+shape[1] <= 10; y++ {
				r, _ := geom.RectAt(geom.Point{x, y}, shape)
				if r.Contains(p) {
					want++
				}
			}
		}
		if got := CoverCount(u, shape, p); got != want {
			t.Fatalf("shape %v p %v: got %d want %d", shape, p, got, want)
		}
	}
}

func TestTranslateCount(t *testing.T) {
	u := geom.MustUniverse(2, 10)
	n, err := TranslateCount(u, []uint32{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("got %d want 8", n)
	}
	if _, err := TranslateCount(u, []uint32{11, 1}); err == nil {
		t.Error("oversize shape accepted")
	}
}

// TestLemma1Identity verifies the paper's Lemma 1 on random queries for a
// continuous curve: clusters == (crossing edges + endpoint terms) / 2,
// counting crossing edges by brute force over the whole curve.
func TestLemma1Identity(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	rng := rand.New(rand.NewSource(9))
	n := o.Universe().Size()
	for trial := 0; trial < 50; trial++ {
		r := randRect(rng, 2, 16)
		var gamma uint64
		prev := o.Coords(0, nil).Clone()
		cur := make(geom.Point, 2)
		for h := uint64(1); h < n; h++ {
			o.Coords(h, cur)
			if r.Contains(prev) != r.Contains(cur) {
				gamma++
			}
			copy(prev, cur)
		}
		var ends uint64
		if r.Contains(o.Coords(0, cur)) {
			ends++
		}
		if r.Contains(o.Coords(n-1, cur)) {
			ends++
		}
		want, _ := CountSorted(o, r, 0)
		if got := (gamma + ends) / 2; got != want {
			t.Fatalf("Lemma 1 violated on %v: (%d+%d)/2 != %d", r, gamma, ends, want)
		}
	}
}
