package cluster

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// scalarCrossings is the reference implementation of the boundary sweep:
// one face-pair callback at a time, two scalar Index calls per pair.
func scalarCrossings(c curve.Curve, r geom.Rect) (starts, ends []uint64) {
	r.Faces(c.Universe(), func(in, out geom.Point) bool {
		hi, ho := c.Index(in), c.Index(out)
		switch {
		case ho+1 == hi:
			starts = append(starts, hi)
		case hi+1 == ho:
			ends = append(ends, hi)
		}
		return true
	})
	slices.Sort(starts)
	slices.Sort(ends)
	return starts, ends
}

func sweepRandRect(rng *rand.Rand, dims int, side uint32) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := 0; i < dims; i++ {
		a := uint32(rng.Int31n(int32(side)))
		b := uint32(rng.Int31n(int32(side)))
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// TestSweepMatchesScalar cross-validates the batched sharded sweep against
// the scalar face walk, for every worker count, on continuous and
// discontinuous curves alike.
func TestSweepMatchesScalar(t *testing.T) {
	o2, _ := core.NewOnion2D(67)
	o3, _ := core.NewOnion3D(14)
	h, _ := baseline.NewHilbert(2, 64)
	z, _ := baseline.NewMorton(3, 16)
	s, _ := baseline.NewSnake(2, 41)
	rng := rand.New(rand.NewSource(11))
	for _, c := range []curve.Curve{o2, o3, h, z, s} {
		u := c.Universe()
		for trial := 0; trial < 40; trial++ {
			r := sweepRandRect(rng, u.Dims(), u.Side())
			wantStarts, wantEnds := scalarCrossings(c, r)
			for _, workers := range []int{1, 2, 3, 8} {
				starts, ends, nStarts, nEnds := sweepCrossings(c, r, workers, true)
				slices.Sort(starts) // returned in shard order; the set is what is contractual
				slices.Sort(ends)
				if !slices.Equal(starts, wantStarts) || !slices.Equal(ends, wantEnds) {
					t.Fatalf("%s %v workers=%d: sweep (%v, %v), want (%v, %v)",
						c.Name(), r, workers, starts, ends, wantStarts, wantEnds)
				}
				if nStarts != uint64(len(wantStarts)) || nEnds != uint64(len(wantEnds)) {
					t.Fatalf("%s %v workers=%d: counts (%d, %d), want (%d, %d)",
						c.Name(), r, workers, nStarts, nEnds, len(wantStarts), len(wantEnds))
				}
				// Count-only mode must agree without collecting.
				_, _, cs, ce := sweepCrossings(c, r, workers, false)
				if cs != nStarts || ce != nEnds {
					t.Fatalf("%s %v workers=%d: count-only (%d, %d) vs (%d, %d)",
						c.Name(), r, workers, cs, ce, nStarts, nEnds)
				}
			}
		}
	}
}

// TestSweepWholeUniverse: a query covering the universe has no faces with
// outside neighbors, so the sweep must report nothing.
func TestSweepWholeUniverse(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	starts, ends := BoundaryCrossings(o, o.Universe().Rect())
	if len(starts) != 0 || len(ends) != 0 {
		t.Fatalf("whole-universe sweep: %v, %v", starts, ends)
	}
}

// TestCountContinuousLargeMatchesPlanner pits the batched Lemma 1 counter
// against the analytic planner on a universe far too large to enumerate:
// both must agree exactly.
func TestCountContinuousLargeMatchesPlanner(t *testing.T) {
	o, err := core.NewOnion2D(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	side := o.Universe().Side()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		r := sweepRandRect(rng, 2, side)
		want := o.ClusterCount(r)
		got, err := CountContinuous(o, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: CountContinuous %d, planner %d", r, got, want)
		}
	}
}

// TestCountNearContinuousLargeMatchesPlanner does the same for the jump
// based counter on the 3D onion curve.
func TestCountNearContinuousLargeMatchesPlanner(t *testing.T) {
	o, err := core.NewOnion3D(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 12; trial++ {
		r := sweepRandRect(rng, 3, 128)
		want := o.ClusterCount(r)
		got, err := CountNearContinuous(o, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: CountNearContinuous %d, planner %d", r, got, want)
		}
	}
}
