// Package metrics implements secondary SFC quality metrics beyond the
// clustering number: the key-space spread between a query's clusters (the
// inter-cluster distance the paper's conclusion names as important future
// work for disk fetches) and the stretch of Gotsman and Lindenbaum
// (related work [14]): how far apart in the grid cells with nearby curve
// positions can be.
package metrics

import (
	"fmt"
	"math/rand"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// Spread describes how a query's clusters are laid out in key space.
type Spread struct {
	// Clusters is the clustering number.
	Clusters int
	// Span is the key distance from the first cluster's start to the
	// last cluster's end (inclusive).
	Span uint64
	// GapCells is Span minus the cells of the query: keys a sequential
	// reader would skip (or seek over) between clusters.
	GapCells uint64
	// MaxGap is the largest single gap between consecutive clusters.
	MaxGap uint64
}

// ClusterSpread measures the inter-cluster layout of r under c. A curve
// can have few clusters yet spread them across the whole key space (the
// onion curve's clusters sit on distant layers); Span and GapCells
// quantify that, complementing the clustering number exactly as the
// paper's conclusion suggests.
func ClusterSpread(c curve.Curve, r geom.Rect) (Spread, error) {
	rs, err := ranges.Decompose(c, r, 0)
	if err != nil {
		return Spread{}, fmt.Errorf("metrics: %w", err)
	}
	s := Spread{Clusters: len(rs)}
	if len(rs) == 0 {
		return s, nil
	}
	s.Span = rs[len(rs)-1].Hi - rs[0].Lo + 1
	s.GapCells = s.Span - ranges.TotalCells(rs)
	for i := 1; i < len(rs); i++ {
		if g := rs[i].Lo - rs[i-1].Hi - 1; g > s.MaxGap {
			s.MaxGap = g
		}
	}
	return s, nil
}

// StretchStats summarizes the grid distance between cells at curve
// distance k.
type StretchStats struct {
	K    uint64
	Mean float64 // mean L1 grid distance between pi^-1(h) and pi^-1(h+k)
	Max  uint64
}

// Stretch estimates the k-stretch of the curve by sampling positions: the
// L1 grid distance between cells k apart along the curve. For a continuous
// curve and k = 1 the mean and max are exactly 1.
func Stretch(c curve.Curve, k uint64, samples int, seed int64) (StretchStats, error) {
	n := c.Universe().Size()
	if k == 0 || k >= n {
		return StretchStats{}, fmt.Errorf("metrics: k must be in [1, size)")
	}
	if samples <= 0 {
		return StretchStats{}, fmt.Errorf("metrics: samples must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	a := make(geom.Point, c.Universe().Dims())
	b := make(geom.Point, c.Universe().Dims())
	st := StretchStats{K: k}
	var total float64
	for i := 0; i < samples; i++ {
		h := uint64(rng.Int63n(int64(n - k)))
		c.Coords(h, a)
		c.Coords(h+k, b)
		var d uint64
		for j := range a {
			if a[j] > b[j] {
				d += uint64(a[j] - b[j])
			} else {
				d += uint64(b[j] - a[j])
			}
		}
		total += float64(d)
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = total / float64(samples)
	return st, nil
}
