package metrics

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
	"github.com/onioncurve/onion/internal/stats"
)

// RunLengths returns the sizes of a query's clusters in key order. The
// distribution of cluster lengths determines page utilization: many
// one-cell clusters read almost-empty pages even when the cluster count
// looks acceptable.
func RunLengths(c curve.Curve, r geom.Rect) ([]uint64, error) {
	rs, err := ranges.Decompose(c, r, 0)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	out := make([]uint64, len(rs))
	for i, kr := range rs {
		out[i] = kr.Cells()
	}
	return out, nil
}

// RunLengthSummary summarizes the cluster-length distribution of a query.
func RunLengthSummary(c curve.Curve, r geom.Rect) (stats.Summary, error) {
	ls, err := RunLengths(c, r)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.SummarizeUints(ls), nil
}
