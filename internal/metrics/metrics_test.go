package metrics

import (
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

func TestClusterSpreadSingleCluster(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	s, err := ClusterSpread(o, o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if s.Clusters != 1 || s.GapCells != 0 || s.MaxGap != 0 || s.Span != 256 {
		t.Fatalf("spread = %+v", s)
	}
}

func TestClusterSpreadConsistency(t *testing.T) {
	// Span = cells + gaps; MaxGap <= GapCells; verified on random rects
	// against the raw decomposition.
	o, _ := core.NewOnion2D(32)
	h, _ := baseline.NewHilbert(2, 32)
	z, _ := baseline.NewMorton(2, 32)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		lo := geom.Point{uint32(rng.Int31n(32)), uint32(rng.Int31n(32))}
		hi := geom.Point{uint32(rng.Int31n(32)), uint32(rng.Int31n(32))}
		for i := range lo {
			if lo[i] > hi[i] {
				lo[i], hi[i] = hi[i], lo[i]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		for _, c := range []interface {
			Universe() geom.Universe
			Name() string
			Index(geom.Point) uint64
			Coords(uint64, geom.Point) geom.Point
		}{o, h, z} {
			s, err := ClusterSpread(c, r)
			if err != nil {
				t.Fatal(err)
			}
			rs, _ := ranges.Decompose(c, r, 0)
			if s.Clusters != len(rs) {
				t.Fatalf("%s: clusters %d vs %d", c.Name(), s.Clusters, len(rs))
			}
			if s.Span != ranges.TotalCells(rs)+s.GapCells {
				t.Fatalf("%s: span %d != cells %d + gaps %d", c.Name(), s.Span, ranges.TotalCells(rs), s.GapCells)
			}
			if s.MaxGap > s.GapCells {
				t.Fatalf("%s: max gap %d > total gaps %d", c.Name(), s.MaxGap, s.GapCells)
			}
		}
	}
}

func TestOnionSpreadStructure(t *testing.T) {
	// The structural fact behind the paper's future-work remark about
	// inter-cluster distance. A centered query covers the innermost
	// layers, which end the onion curve: one contiguous cluster, less
	// spread than Hilbert. An off-center query cuts an arc out of many
	// consecutive rings: few extra clusters but each separated by the
	// rest of its ring's perimeter, so the spread exceeds Hilbert's.
	o, _ := core.NewOnion2D(64)
	h, _ := baseline.NewHilbert(2, 64)
	centered := geom.Rect{Lo: geom.Point{24, 24}, Hi: geom.Point{39, 39}}
	so, _ := ClusterSpread(o, centered)
	sh, _ := ClusterSpread(h, centered)
	if so.Clusters != 1 || so.GapCells != 0 {
		t.Errorf("centered query should be one onion cluster: %+v", so)
	}
	if so.Span >= sh.Span {
		t.Errorf("centered: onion span %d should beat hilbert %d", so.Span, sh.Span)
	}
	offCenter := geom.Rect{Lo: geom.Point{4, 4}, Hi: geom.Point{19, 19}}
	so, _ = ClusterSpread(o, offCenter)
	sh, _ = ClusterSpread(h, offCenter)
	if so.GapCells <= sh.GapCells {
		t.Errorf("off-center: onion gaps %d should exceed hilbert %d", so.GapCells, sh.GapCells)
	}
}

func TestStretchContinuousK1(t *testing.T) {
	o, _ := core.NewOnion2D(64)
	h, _ := baseline.NewHilbert(2, 64)
	for _, tc := range []struct {
		name string
		c    interface {
			Universe() geom.Universe
			Index(geom.Point) uint64
			Coords(uint64, geom.Point) geom.Point
			Name() string
		}
	}{{"onion", o}, {"hilbert", h}} {
		st, err := Stretch(tc.c, 1, 500, 7)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mean != 1 || st.Max != 1 {
			t.Errorf("%s: k=1 stretch mean %.2f max %d, want 1/1", tc.name, st.Mean, st.Max)
		}
	}
}

func TestStretchZCurveExceedsOne(t *testing.T) {
	z, _ := baseline.NewMorton(2, 64)
	st, err := Stretch(z, 1, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Max <= 1 {
		t.Errorf("z curve k=1 max stretch %d should exceed 1", st.Max)
	}
}

func TestStretchValidation(t *testing.T) {
	o, _ := core.NewOnion2D(8)
	if _, err := Stretch(o, 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Stretch(o, 64, 10, 1); err == nil {
		t.Error("k=size accepted")
	}
	if _, err := Stretch(o, 1, 0, 1); err == nil {
		t.Error("samples=0 accepted")
	}
}

func TestStretchGrowsWithK(t *testing.T) {
	h, _ := baseline.NewHilbert(2, 64)
	s1, _ := Stretch(h, 1, 1000, 9)
	s64, _ := Stretch(h, 64, 1000, 9)
	if s64.Mean <= s1.Mean {
		t.Errorf("stretch should grow with k: %.2f vs %.2f", s1.Mean, s64.Mean)
	}
}

func TestRunLengths(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	// Whole universe: one run of 256.
	ls, err := RunLengths(o, o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 || ls[0] != 256 {
		t.Fatalf("runs = %v", ls)
	}
	// Sum of run lengths equals the query cell count for random rects.
	rng := rand.New(rand.NewSource(5))
	z, _ := baseline.NewMorton(2, 16)
	for trial := 0; trial < 50; trial++ {
		lo := geom.Point{uint32(rng.Int31n(16)), uint32(rng.Int31n(16))}
		hi := geom.Point{uint32(rng.Int31n(16)), uint32(rng.Int31n(16))}
		for i := range lo {
			if lo[i] > hi[i] {
				lo[i], hi[i] = hi[i], lo[i]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		ls, err := RunLengths(z, r)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, l := range ls {
			sum += l
		}
		if sum != r.Cells() {
			t.Fatalf("run lengths sum %d, cells %d", sum, r.Cells())
		}
	}
}

func TestRunLengthSummary(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	r := geom.Rect{Lo: geom.Point{2, 2}, Hi: geom.Point{9, 9}}
	s, err := RunLengthSummary(o, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count < 1 || s.Min < 1 {
		t.Fatalf("summary = %+v", s)
	}
}
