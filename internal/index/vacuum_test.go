package index

import (
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
)

// TestVacuumReclaimsHoles: Delete must not leak point-table slots forever —
// once dead slots outnumber half the live records the table compacts, and
// every surviving id keeps resolving to its point.
func TestVacuumReclaimsHoles(t *testing.T) {
	side := uint32(32)
	o, _ := core.NewOnion2D(side)
	ix, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	type rec struct {
		id uint64
		pt geom.Point
	}
	var live []rec
	for i := 0; i < 400; i++ {
		pt := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		id, err := ix.Insert(pt)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, rec{id: id, pt: pt.Clone()})
	}
	// Delete ~80% in random order: several automatic vacuums must fire.
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for _, r := range live[:320] {
		if !ix.Delete(r.id) {
			t.Fatalf("delete id %d failed", r.id)
		}
	}
	live = live[320:]
	if got := len(ix.points) - ix.deleted; got != len(live) {
		t.Fatalf("live accounting: %d vs %d", got, len(live))
	}
	// The table must have compacted: dead slots bounded by half the live.
	if ix.deleted > len(live)/2 {
		t.Fatalf("vacuum never fired: %d dead slots, %d live", ix.deleted, len(live))
	}
	if len(ix.points) > len(live)+len(live)/2 {
		t.Fatalf("point table still holds %d slots for %d live records", len(ix.points), len(live))
	}
	// Every surviving id still resolves, deleted ids do not.
	for _, r := range live {
		p, ok := ix.Point(r.id)
		if !ok || !p.Equal(r.pt) {
			t.Fatalf("id %d lost after vacuum: %v ok=%v want %v", r.id, p, ok, r.pt)
		}
	}
	// Queries agree with a brute-force scan of the survivors.
	for trial := 0; trial < 20; trial++ {
		lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		for d := range lo {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		ids, _, err := ix.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, rc := range live {
			if r.Contains(rc.pt) {
				want++
			}
		}
		if len(ids) != want {
			t.Fatalf("query %v after vacuum: %d ids, want %d", r, len(ids), want)
		}
		for _, id := range ids {
			p, ok := ix.Point(id)
			if !ok || !r.Contains(p) {
				t.Fatalf("query %v returned dead or outside id %d", r, id)
			}
		}
	}
	// Inserting after vacuum hands out fresh ids that resolve.
	id, err := ix.Insert(geom.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range live {
		if id == r.id {
			t.Fatalf("id %d reused", id)
		}
	}
	if p, ok := ix.Point(id); !ok || !p.Equal(geom.Point{1, 1}) {
		t.Fatalf("post-vacuum insert lost: %v %v", p, ok)
	}
	if !ix.Delete(id) {
		t.Fatal("post-vacuum delete failed")
	}
}

// TestVacuumExplicit: calling Vacuum eagerly is harmless and idempotent.
func TestVacuumExplicit(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	ix, err := Bulk(o, []geom.Point{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(0) {
		t.Fatal("delete")
	}
	for i := 0; i < 3; i++ {
		if err := ix.Vacuum(); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 2 || ix.deleted != 0 || len(ix.points) != 2 {
		t.Fatalf("after vacuum: len %d deleted %d slots %d", ix.Len(), ix.deleted, len(ix.points))
	}
	if _, ok := ix.Point(0); ok {
		t.Fatal("deleted id resolves after vacuum")
	}
	for _, id := range []uint64{1, 2} {
		if _, ok := ix.Point(id); !ok {
			t.Fatalf("id %d lost", id)
		}
	}
	ids, _, err := ix.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("query after vacuum: %v", ids)
	}
}

// TestVacuumKNN: nearest-neighbor search keeps working through the
// id -> slot indirection a vacuum introduces.
func TestVacuumKNN(t *testing.T) {
	o, _ := core.NewOnion2D(32)
	ix, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for x := uint32(0); x < 16; x++ {
		id, err := ix.Insert(geom.Point{x * 2, 5})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:12] {
		if !ix.Delete(id) {
			t.Fatal("delete")
		}
	}
	// Survivors sit at x = 24, 26, 28, 30.
	nn, _, err := ix.Nearest(geom.Point{31, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 {
		t.Fatalf("knn returned %d", len(nn))
	}
	if p, ok := ix.Point(nn[0].ID); !ok || p[0] != 30 {
		t.Fatalf("nearest = %v", p)
	}
}
