package index

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/workload"
)

// bruteNearest returns the sorted squared distances of the k nearest
// points (the oracle; ids may differ under ties, distances may not).
func bruteNearest(points []geom.Point, p geom.Point, k int) []uint64 {
	var d2s []uint64
	for _, q := range points {
		if q == nil {
			continue
		}
		var d2 uint64
		for i := range p {
			var d uint64
			if p[i] > q[i] {
				d = uint64(p[i] - q[i])
			} else {
				d = uint64(q[i] - p[i])
			}
			d2 += d * d
		}
		d2s = append(d2s, d2)
	}
	sort.Slice(d2s, func(a, b int) bool { return d2s[a] < d2s[b] })
	if len(d2s) > k {
		d2s = d2s[:k]
	}
	return d2s
}

func TestNearestMatchesBruteForce(t *testing.T) {
	side := uint32(128)
	u := geom.MustUniverse(2, side)
	pts, err := workload.ClusteredPoints(u, 4, 800, 21)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := core.NewOnion2D(side)
	ix, _ := New(o)
	for _, p := range pts {
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		q := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
		k := rng.Intn(10) + 1
		got, _, err := ix.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteNearest(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d neighbors, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].DistSq != want[i] {
				t.Fatalf("k=%d neighbor %d: dist %d, want %d", k, i, got[i].DistSq, want[i])
			}
		}
		// Results must be sorted by distance.
		for i := 1; i < len(got); i++ {
			if got[i].DistSq < got[i-1].DistSq {
				t.Fatal("neighbors not sorted")
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	ix, _ := New(o)
	// Empty index.
	ns, _, err := ix.Nearest(geom.Point{3, 3}, 5)
	if err != nil || len(ns) != 0 {
		t.Fatalf("empty index: %v, %v", ns, err)
	}
	// k larger than the point count.
	ix.Insert(geom.Point{1, 1})
	ix.Insert(geom.Point{10, 10})
	ns, _, err = ix.Nearest(geom.Point{0, 0}, 10)
	if err != nil || len(ns) != 2 {
		t.Fatalf("k>n: %d neighbors, %v", len(ns), err)
	}
	if !ns[0].Point.Equal(geom.Point{1, 1}) {
		t.Fatal("nearest should be (1,1)")
	}
	// Query point on a stored point: distance zero first.
	ns, _, _ = ix.Nearest(geom.Point{10, 10}, 1)
	if ns[0].DistSq != 0 {
		t.Fatal("self distance")
	}
	// Invalid arguments.
	if _, _, err := ix.Nearest(geom.Point{99, 0}, 1); err == nil {
		t.Error("out-of-universe query accepted")
	}
	if _, _, err := ix.Nearest(geom.Point{0, 0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestNearestAfterDelete(t *testing.T) {
	o, _ := core.NewOnion2D(32)
	ix, _ := New(o)
	idA, _ := ix.Insert(geom.Point{5, 5})
	idB, _ := ix.Insert(geom.Point{6, 6})
	if !ix.Delete(idA) {
		t.Fatal("delete failed")
	}
	ns, _, err := ix.Nearest(geom.Point{5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].ID != idB {
		t.Fatalf("neighbors after delete = %+v", ns)
	}
}

func TestDeleteSemantics(t *testing.T) {
	o, _ := core.NewOnion2D(32)
	ix, _ := New(o)
	ids := make([]uint64, 0, 20)
	for i := 0; i < 10; i++ {
		id, _ := ix.Insert(geom.Point{5, 5}) // duplicates in one cell
		ids = append(ids, id)
	}
	for i := 0; i < 10; i++ {
		id, _ := ix.Insert(geom.Point{uint32(i), uint32(i + 10)})
		ids = append(ids, id)
	}
	if ix.Len() != 20 {
		t.Fatal("len")
	}
	// Delete a specific duplicate: only that id disappears.
	if !ix.Delete(ids[3]) {
		t.Fatal("delete dup")
	}
	if ix.Delete(ids[3]) {
		t.Fatal("double delete succeeded")
	}
	if ix.Len() != 19 {
		t.Fatal("len after delete")
	}
	if _, ok := ix.Point(ids[3]); ok {
		t.Fatal("deleted point still resolvable")
	}
	got, _, err := ix.Query(geom.Rect{Lo: geom.Point{5, 5}, Hi: geom.Point{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("cell query after delete = %d ids", len(got))
	}
	for _, id := range got {
		if id == ids[3] {
			t.Fatal("deleted id returned")
		}
	}
	if ix.Delete(999) {
		t.Fatal("deleting unknown id succeeded")
	}
}

func TestIsqrtCeil(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 2: 2, 3: 2, 4: 2, 5: 3, 99: 10, 100: 10, 101: 11, 1 << 40: 1 << 20}
	for v, want := range cases {
		if got := isqrtCeil(v); got != want {
			t.Errorf("isqrtCeil(%d) = %d, want %d", v, got, want)
		}
	}
	// Property: r = isqrtCeil(v) satisfies (r-1)^2 < v <= r^2.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		v := uint64(rng.Int63n(1 << 40))
		r := isqrtCeil(v)
		if r*r < v || (r > 0 && (r-1)*(r-1) >= v) {
			t.Fatalf("isqrtCeil(%d) = %d out of bounds", v, r)
		}
	}
}
