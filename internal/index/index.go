// Package index implements the application the paper motivates: a spatial
// index for multi-dimensional points built by mapping each point to its
// position along a space filling curve and storing the keys in a B+-tree.
// A rectangular query is answered by decomposing the rectangle into its
// clusters (contiguous key ranges) and running one 1-D scan per cluster —
// so the paper's clustering number is exactly the number of seeks the
// query pays.
package index

import (
	"errors"
	"fmt"
	"sort"

	"github.com/onioncurve/onion/internal/bptree"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/disksim"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// ErrPoint reports a point outside the index's universe.
var ErrPoint = errors.New("index: point outside universe")

// Index is an SFC-clustered spatial index over d-dimensional points.
type Index struct {
	c       curve.Curve
	tree    *bptree.Tree
	store   *disksim.Store
	points  []geom.Point // id -> point; nil after deletion
	deleted int
}

// Option configures an Index.
type Option func(*config)

type config struct {
	treeOrder int
	pageSize  uint64
}

// WithTreeOrder sets the B+-tree branching factor (default 64).
func WithTreeOrder(order int) Option { return func(c *config) { c.treeOrder = order } }

// WithPageSize sets the simulated disk page size in cells (default 256).
func WithPageSize(cells uint64) Option { return func(c *config) { c.pageSize = cells } }

// parseConfig applies the options over the defaults, once per entry point.
func parseConfig(opts []Option) config {
	cfg := config{treeOrder: 64, pageSize: 256}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// newIndex builds the empty index for an already parsed configuration.
func newIndex(c curve.Curve, cfg config) (*Index, error) {
	tree, err := bptree.New(cfg.treeOrder)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	store, err := disksim.NewStore(cfg.pageSize)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Index{c: c, tree: tree, store: store}, nil
}

// New builds an empty index clustered by the given curve.
func New(c curve.Curve, opts ...Option) (*Index, error) {
	return newIndex(c, parseConfig(opts))
}

// Bulk builds an index over the given points in one bottom-up pass
// (O(n log n) for the key sort, O(n) tree construction) — the preferred
// path for loading a static data set. Record ids are assigned in input
// order, exactly as repeated Insert calls would.
func Bulk(c curve.Curve, pts []geom.Point, opts ...Option) (*Index, error) {
	cfg := parseConfig(opts)
	ix, err := newIndex(c, cfg)
	if err != nil {
		return nil, err
	}
	ix.points = make([]geom.Point, len(pts))
	for i, p := range pts {
		if !c.Universe().Contains(p) {
			return nil, fmt.Errorf("%w: %v in %v", ErrPoint, p, c.Universe())
		}
		ix.points[i] = p.Clone()
	}
	type kv struct{ key, id uint64 }
	kvs := make([]kv, len(pts))
	allKeys := curve.IndexBatch(c, pts, make([]uint64, len(pts)))
	for i, key := range allKeys {
		kvs[i] = kv{key: key, id: uint64(i)}
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].key < kvs[b].key })
	keys := make([]uint64, len(kvs))
	vals := make([]uint64, len(kvs))
	for i, e := range kvs {
		keys[i], vals[i] = e.key, e.id
	}
	tree, err := bptree.BulkLoad(cfg.treeOrder, keys, vals)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix.tree = tree
	return ix, nil
}

// Curve returns the clustering curve.
func (ix *Index) Curve() curve.Curve { return ix.c }

// Len returns the number of live (non-deleted) indexed points.
func (ix *Index) Len() int { return len(ix.points) - ix.deleted }

// Insert adds a point and returns its record id.
func (ix *Index) Insert(p geom.Point) (uint64, error) {
	if !ix.c.Universe().Contains(p) {
		return 0, fmt.Errorf("%w: %v in %v", ErrPoint, p, ix.c.Universe())
	}
	id := uint64(len(ix.points))
	ix.points = append(ix.points, p.Clone())
	ix.tree.Insert(ix.c.Index(p), id)
	return id, nil
}

// Point returns the point stored under the given record id.
func (ix *Index) Point(id uint64) (geom.Point, bool) {
	if id >= uint64(len(ix.points)) || ix.points[id] == nil {
		return nil, false
	}
	return ix.points[id], true
}

// Delete removes the point with the given record id, reporting whether it
// existed. Ids are not reused.
func (ix *Index) Delete(id uint64) bool {
	if id >= uint64(len(ix.points)) || ix.points[id] == nil {
		return false
	}
	key := ix.c.Index(ix.points[id])
	if !ix.tree.DeleteValue(key, id) {
		return false
	}
	ix.points[id] = nil
	ix.deleted++
	return true
}

// QueryStats describes the execution of one range query.
type QueryStats struct {
	// Ranges is the number of 1-D scans issued — the clustering number
	// of the query under the index's curve (unless a budget merged them).
	Ranges int
	// Disk is the simulated access pattern of reading the clustered
	// table.
	Disk disksim.Tally
	// Entries is the number of B+-tree entries visited.
	Entries int
	// Results is the number of points returned.
	Results int
	// FalsePositives counts scanned entries whose points fell outside
	// the query (possible only with a merge budget).
	FalsePositives int
}

// Query returns the ids of all points inside r, using the exact cluster
// decomposition (no false positives).
func (ix *Index) Query(r geom.Rect) ([]uint64, QueryStats, error) {
	return ix.query(r, 0)
}

// QueryBudget answers r with at most maxRanges scans, merging the
// decomposition's smallest gaps (the superset-query tradeoff of Asano et
// al. discussed in the paper's related work). Points in merged gaps are
// filtered out and counted as false positives.
func (ix *Index) QueryBudget(r geom.Rect, maxRanges int) ([]uint64, QueryStats, error) {
	if maxRanges < 1 {
		return nil, QueryStats{}, fmt.Errorf("index: %w", ranges.ErrBudget)
	}
	return ix.query(r, maxRanges)
}

func (ix *Index) query(r geom.Rect, budget int) ([]uint64, QueryStats, error) {
	var stats QueryStats
	rs, err := ranges.Decompose(ix.c, r, 0)
	if err != nil {
		return nil, stats, fmt.Errorf("index: %w", err)
	}
	// An exact decomposition covers exactly the keys of cells inside r, so
	// every scanned entry is a hit and the per-entry containment re-check
	// is pure overhead; only a budgeted merge can introduce false
	// positives that need filtering.
	filter := false
	if budget > 0 {
		merged, err := ranges.MergeToBudget(rs, budget)
		if err != nil {
			return nil, stats, fmt.Errorf("index: %w", err)
		}
		rs = merged.Ranges
		filter = merged.ExtraCells > 0
	}
	stats.Ranges = len(rs)
	stats.Disk = ix.store.Execute(rs)
	var ids []uint64
	for _, kr := range rs {
		ix.tree.RangeScan(kr.Lo, kr.Hi, func(key, id uint64) bool {
			stats.Entries++
			if filter && !r.Contains(ix.points[id]) {
				stats.FalsePositives++
				return true
			}
			ids = append(ids, id)
			return true
		})
	}
	stats.Results = len(ids)
	return ids, stats, nil
}
