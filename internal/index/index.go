// Package index implements the application the paper motivates: a spatial
// index for multi-dimensional points built by mapping each point to its
// position along a space filling curve and storing the keys in a B+-tree.
// A rectangular query is answered by decomposing the rectangle into its
// clusters (contiguous key ranges) and running one 1-D scan per cluster —
// so the paper's clustering number is exactly the number of seeks the
// query pays.
package index

import (
	"errors"
	"fmt"
	"sort"

	"github.com/onioncurve/onion/internal/bptree"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/disksim"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/ranges"
)

// ErrPoint reports a point outside the index's universe.
var ErrPoint = errors.New("index: point outside universe")

// Index is an SFC-clustered spatial index over d-dimensional points.
//
// Record ids are stable for the lifetime of the index: deletions punch
// holes in the internal point table, and once more than half of it is
// dead Vacuum rebuilds the table and the B+-tree, compacting the holes
// away behind an id -> slot map so external ids keep resolving.
type Index struct {
	c       curve.Curve
	tree    *bptree.Tree
	store   *disksim.Store
	points  []geom.Point // slot -> point; nil after deletion
	deleted int          // dead slots in points
	nextID  uint64       // next record id to hand out
	// Before the first Vacuum a record's id equals its slot and both maps
	// are nil; afterwards ids[slot] names the slot's record and
	// slots[id] finds a record's slot.
	ids   []uint64
	slots map[uint64]int
}

// Option configures an Index.
type Option func(*config)

type config struct {
	treeOrder int
	pageSize  uint64
}

// WithTreeOrder sets the B+-tree branching factor (default 64).
func WithTreeOrder(order int) Option { return func(c *config) { c.treeOrder = order } }

// WithPageSize sets the simulated disk page size in cells (default 256).
func WithPageSize(cells uint64) Option { return func(c *config) { c.pageSize = cells } }

// parseConfig applies the options over the defaults, once per entry point.
func parseConfig(opts []Option) config {
	cfg := config{treeOrder: 64, pageSize: 256}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// newIndex builds the empty index for an already parsed configuration.
func newIndex(c curve.Curve, cfg config) (*Index, error) {
	tree, err := bptree.New(cfg.treeOrder)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	store, err := disksim.NewStore(cfg.pageSize)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Index{c: c, tree: tree, store: store}, nil
}

// slotOf resolves a record id to its position in the point table.
func (ix *Index) slotOf(id uint64) (int, bool) {
	if ix.slots == nil {
		if id >= uint64(len(ix.points)) {
			return 0, false
		}
		return int(id), true
	}
	s, ok := ix.slots[id]
	return s, ok
}

// pointByID returns the live point stored under id, or nil.
func (ix *Index) pointByID(id uint64) geom.Point {
	s, ok := ix.slotOf(id)
	if !ok {
		return nil
	}
	return ix.points[s]
}

// New builds an empty index clustered by the given curve.
func New(c curve.Curve, opts ...Option) (*Index, error) {
	return newIndex(c, parseConfig(opts))
}

// Bulk builds an index over the given points in one bottom-up pass
// (O(n log n) for the key sort, O(n) tree construction) — the preferred
// path for loading a static data set. Record ids are assigned in input
// order, exactly as repeated Insert calls would.
func Bulk(c curve.Curve, pts []geom.Point, opts ...Option) (*Index, error) {
	cfg := parseConfig(opts)
	ix, err := newIndex(c, cfg)
	if err != nil {
		return nil, err
	}
	ix.points = make([]geom.Point, len(pts))
	for i, p := range pts {
		if !c.Universe().Contains(p) {
			return nil, fmt.Errorf("%w: %v in %v", ErrPoint, p, c.Universe())
		}
		ix.points[i] = p.Clone()
	}
	ix.nextID = uint64(len(pts))
	type kv struct{ key, id uint64 }
	kvs := make([]kv, len(pts))
	allKeys := curve.IndexBatch(c, pts, make([]uint64, len(pts)))
	for i, key := range allKeys {
		kvs[i] = kv{key: key, id: uint64(i)}
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].key < kvs[b].key })
	keys := make([]uint64, len(kvs))
	vals := make([]uint64, len(kvs))
	for i, e := range kvs {
		keys[i], vals[i] = e.key, e.id
	}
	tree, err := bptree.BulkLoad(cfg.treeOrder, keys, vals)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	ix.tree = tree
	return ix, nil
}

// Curve returns the clustering curve.
func (ix *Index) Curve() curve.Curve { return ix.c }

// Len returns the number of live (non-deleted) indexed points.
func (ix *Index) Len() int { return len(ix.points) - ix.deleted }

// Insert adds a point and returns its record id. Ids are stable across
// Vacuum and are never reused.
func (ix *Index) Insert(p geom.Point) (uint64, error) {
	if !ix.c.Universe().Contains(p) {
		return 0, fmt.Errorf("%w: %v in %v", ErrPoint, p, ix.c.Universe())
	}
	id := ix.nextID
	ix.nextID++
	if ix.slots != nil {
		ix.slots[id] = len(ix.points)
		ix.ids = append(ix.ids, id)
	}
	ix.points = append(ix.points, p.Clone())
	ix.tree.Insert(ix.c.Index(p), id)
	return id, nil
}

// Point returns the point stored under the given record id.
func (ix *Index) Point(id uint64) (geom.Point, bool) {
	p := ix.pointByID(id)
	if p == nil {
		return nil, false
	}
	return p, true
}

// Delete removes the point with the given record id, reporting whether it
// existed. Ids are not reused. Once more than half of the point table is
// dead, the index vacuums itself: deletions never leak memory for the
// lifetime of the index.
func (ix *Index) Delete(id uint64) bool {
	slot, ok := ix.slotOf(id)
	if !ok || ix.points[slot] == nil {
		return false
	}
	key := ix.c.Index(ix.points[slot])
	if !ix.tree.DeleteValue(key, id) {
		return false
	}
	ix.points[slot] = nil
	if ix.slots != nil {
		delete(ix.slots, id)
	}
	ix.deleted++
	if ix.deleted > ix.Len()/2 {
		ix.Vacuum() //nolint:errcheck // rebuild of in-memory state
	}
	return true
}

// Vacuum compacts the hole-punched point table and rebuilds the B+-tree
// bottom-up over the live entries, releasing the memory dead slots pin.
// Record ids remain valid. Delete triggers it automatically once the dead
// slots outnumber half the live records; calling it eagerly is harmless.
func (ix *Index) Vacuum() error {
	live := ix.Len()
	points := make([]geom.Point, 0, live)
	ids := make([]uint64, 0, live)
	slots := make(map[uint64]int, live)
	type kv struct{ key, id uint64 }
	kvs := make([]kv, 0, live)
	for slot, p := range ix.points {
		if p == nil {
			continue
		}
		var id uint64
		if ix.ids != nil {
			id = ix.ids[slot]
		} else {
			id = uint64(slot)
		}
		slots[id] = len(points)
		ids = append(ids, id)
		points = append(points, p)
		kvs = append(kvs, kv{key: ix.c.Index(p), id: id})
	}
	sort.Slice(kvs, func(a, b int) bool {
		if kvs[a].key != kvs[b].key {
			return kvs[a].key < kvs[b].key
		}
		return kvs[a].id < kvs[b].id
	})
	keys := make([]uint64, len(kvs))
	vals := make([]uint64, len(kvs))
	for i, e := range kvs {
		keys[i], vals[i] = e.key, e.id
	}
	tree, err := bptree.BulkLoad(ix.tree.Order(), keys, vals)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	ix.points = points
	ix.ids = ids
	ix.slots = slots
	ix.tree = tree
	ix.deleted = 0
	return nil
}

// QueryStats describes the execution of one range query.
type QueryStats struct {
	// Ranges is the number of 1-D scans issued — the clustering number
	// of the query under the index's curve (unless a budget merged them).
	Ranges int
	// Disk is the simulated access pattern of reading the clustered
	// table.
	Disk disksim.Tally
	// Entries is the number of B+-tree entries visited.
	Entries int
	// Results is the number of points returned.
	Results int
	// FalsePositives counts scanned entries whose points fell outside
	// the query (possible only with a merge budget).
	FalsePositives int
}

// Query returns the ids of all points inside r, using the exact cluster
// decomposition (no false positives).
func (ix *Index) Query(r geom.Rect) ([]uint64, QueryStats, error) {
	return ix.query(r, 0)
}

// QueryBudget answers r with at most maxRanges scans, merging the
// decomposition's smallest gaps (the superset-query tradeoff of Asano et
// al. discussed in the paper's related work). Points in merged gaps are
// filtered out and counted as false positives.
func (ix *Index) QueryBudget(r geom.Rect, maxRanges int) ([]uint64, QueryStats, error) {
	if maxRanges < 1 {
		return nil, QueryStats{}, fmt.Errorf("index: %w", ranges.ErrBudget)
	}
	return ix.query(r, maxRanges)
}

func (ix *Index) query(r geom.Rect, budget int) ([]uint64, QueryStats, error) {
	var stats QueryStats
	rs, err := ranges.Decompose(ix.c, r, 0)
	if err != nil {
		return nil, stats, fmt.Errorf("index: %w", err)
	}
	// An exact decomposition covers exactly the keys of cells inside r, so
	// every scanned entry is a hit and the per-entry containment re-check
	// is pure overhead; only a budgeted merge can introduce false
	// positives that need filtering.
	filter := false
	if budget > 0 {
		merged, err := ranges.MergeToBudget(rs, budget)
		if err != nil {
			return nil, stats, fmt.Errorf("index: %w", err)
		}
		rs = merged.Ranges
		filter = merged.ExtraCells > 0
	}
	stats.Ranges = len(rs)
	stats.Disk = ix.store.Execute(rs)
	var ids []uint64
	for _, kr := range rs {
		ix.tree.RangeScan(kr.Lo, kr.Hi, func(key, id uint64) bool {
			stats.Entries++
			if filter && !r.Contains(ix.pointByID(id)) {
				stats.FalsePositives++
				return true
			}
			ids = append(ids, id)
			return true
		})
	}
	stats.Results = len(ids)
	return ids, stats, nil
}
