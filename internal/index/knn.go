package index

import (
	"fmt"
	"math"
	"sort"

	"github.com/onioncurve/onion/internal/geom"
)

// Neighbor is one k-nearest-neighbors result.
type Neighbor struct {
	ID     uint64
	Point  geom.Point
	DistSq uint64 // squared Euclidean distance
}

// Nearest returns the k nearest stored points to p under Euclidean
// distance (ties broken by record id), using expanding box queries over
// the SFC index: a box of Chebyshev radius r contains every point whose
// Euclidean distance is at most r, so once k candidates are found the
// radius is tightened to the k-th candidate distance and one final query
// makes the result exact. This is the multi-dimensional similarity-search
// application from the paper's introduction (Li et al.).
func (ix *Index) Nearest(p geom.Point, k int) ([]Neighbor, QueryStats, error) {
	var total QueryStats
	if !ix.c.Universe().Contains(p) {
		return nil, total, fmt.Errorf("%w: %v in %v", ErrPoint, p, ix.c.Universe())
	}
	if k <= 0 {
		return nil, total, fmt.Errorf("index: k must be positive (got %d)", k)
	}
	if ix.Len() == 0 {
		return nil, total, nil
	}
	if k > ix.Len() {
		k = ix.Len()
	}
	u := ix.c.Universe()
	maxSide := uint64(u.Side())
	r := uint64(1)
	for {
		box := ix.boxAround(p, r)
		ids, stats, err := ix.Query(box)
		if err != nil {
			return nil, total, err
		}
		accumulate(&total, stats)
		covers := box.Equal(u.Rect())
		if len(ids) >= k || covers {
			ns := ix.rank(p, ids, k)
			if covers {
				return ns, total, nil
			}
			// Exact if the k-th distance fits inside the searched box.
			dk := ns[len(ns)-1].DistSq
			if dk <= r*r {
				return ns, total, nil
			}
			// One tightening pass with the certified radius.
			r = isqrtCeil(dk)
			box = ix.boxAround(p, r)
			ids, stats, err = ix.Query(box)
			if err != nil {
				return nil, total, err
			}
			accumulate(&total, stats)
			return ix.rank(p, ids, k), total, nil
		}
		r *= 2
		if r > maxSide {
			r = maxSide
		}
	}
}

// boxAround clips [p-r, p+r] to the universe.
func (ix *Index) boxAround(p geom.Point, r uint64) geom.Rect {
	u := ix.c.Universe()
	lo := make(geom.Point, len(p))
	hi := make(geom.Point, len(p))
	for i, v := range p {
		if uint64(v) > r {
			lo[i] = v - uint32(r)
		}
		h := uint64(v) + r
		if h > uint64(u.Side()-1) {
			h = uint64(u.Side() - 1)
		}
		hi[i] = uint32(h)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// rank returns the k nearest of the candidate ids.
func (ix *Index) rank(p geom.Point, ids []uint64, k int) []Neighbor {
	ns := make([]Neighbor, 0, len(ids))
	for _, id := range ids {
		q := ix.pointByID(id)
		var d2 uint64
		for i := range p {
			var d uint64
			if p[i] > q[i] {
				d = uint64(p[i] - q[i])
			} else {
				d = uint64(q[i] - p[i])
			}
			d2 += d * d
		}
		ns = append(ns, Neighbor{ID: id, Point: q, DistSq: d2})
	}
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].DistSq != ns[b].DistSq {
			return ns[a].DistSq < ns[b].DistSq
		}
		return ns[a].ID < ns[b].ID
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

func accumulate(total *QueryStats, s QueryStats) {
	total.Ranges += s.Ranges
	total.Entries += s.Entries
	total.Results += s.Results
	total.FalsePositives += s.FalsePositives
	total.Disk.Add(s.Disk)
}

// isqrtCeil returns ceil(sqrt(v)).
func isqrtCeil(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	// Float seed is within 1 ulp for the distances this package produces
	// (v <= dims * side^2 < 2^53); fix up exactly.
	r := uint64(math.Sqrt(float64(v)))
	for r > 0 && r*r >= v {
		r--
	}
	for r*r < v {
		r++
	}
	return r
}
