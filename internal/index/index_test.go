package index

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/workload"
)

func testCurves(t *testing.T, side uint32) []curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(side)
	if err != nil {
		t.Fatal(err)
	}
	h, err := baseline.NewHilbert(2, side)
	if err != nil {
		t.Fatal(err)
	}
	z, err := baseline.NewMorton(2, side)
	if err != nil {
		t.Fatal(err)
	}
	return []curve.Curve{o, h, z}
}

// bruteQuery returns the ids of points inside r.
func bruteQuery(points []geom.Point, r geom.Rect) []uint64 {
	var ids []uint64
	for id, p := range points {
		if r.Contains(p) {
			ids = append(ids, uint64(id))
		}
	}
	return ids
}

func TestQueryMatchesBruteForce(t *testing.T) {
	side := uint32(64)
	rng := rand.New(rand.NewSource(5))
	u := geom.MustUniverse(2, side)
	pts, err := workload.ClusteredPoints(u, 4, 3000, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range testCurves(t, side) {
		ix, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if _, err := ix.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		if ix.Len() != len(pts) {
			t.Fatal("len")
		}
		for trial := 0; trial < 60; trial++ {
			r := randRect(rng, side)
			got, stats, err := ix.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteQuery(pts, r)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("%s %v: %d results, want %d", c.Name(), r, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %v: result %d = %d, want %d", c.Name(), r, i, got[i], want[i])
				}
			}
			if stats.FalsePositives != 0 {
				t.Fatalf("%s: exact query had %d false positives", c.Name(), stats.FalsePositives)
			}
			if stats.Results != len(want) {
				t.Fatal("stats.Results mismatch")
			}
		}
	}
}

func randRect(rng *rand.Rand, side uint32) geom.Rect {
	lo := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
	hi := geom.Point{uint32(rng.Int31n(int32(side))), uint32(rng.Int31n(int32(side)))}
	for i := range lo {
		if lo[i] > hi[i] {
			lo[i], hi[i] = hi[i], lo[i]
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// TestSeeksEqualClusteringNumber verifies the paper's core operational
// claim: the number of scans a query issues equals the clustering number.
func TestSeeksEqualClusteringNumber(t *testing.T) {
	side := uint32(32)
	rng := rand.New(rand.NewSource(7))
	for _, c := range testCurves(t, side) {
		ix, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			r := randRect(rng, side)
			_, stats, err := ix.Query(r)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cluster.Count(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(stats.Ranges) != want {
				t.Fatalf("%s %v: %d ranges, clustering number %d", c.Name(), r, stats.Ranges, want)
			}
			if stats.Disk.Seeks > uint64(stats.Ranges) {
				t.Fatalf("%s: seeks %d exceed ranges %d", c.Name(), stats.Disk.Seeks, stats.Ranges)
			}
		}
	}
}

func TestQueryBudget(t *testing.T) {
	side := uint32(64)
	u := geom.MustUniverse(2, side)
	pts, _ := workload.ClusteredPoints(u, 3, 2000, 8)
	z, _ := baseline.NewMorton(2, side)
	ix, _ := New(z)
	for _, p := range pts {
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		r := randRect(rng, side)
		exact, exactStats, err := ix.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := ix.QueryBudget(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Ranges > 2 {
			t.Fatalf("budget exceeded: %d", stats.Ranges)
		}
		if len(got) != len(exact) {
			t.Fatalf("budget query lost results: %d vs %d", len(got), len(exact))
		}
		if exactStats.Ranges > 2 && stats.Entries < exactStats.Entries {
			t.Fatal("merged query cannot scan fewer entries than exact")
		}
	}
	if _, _, err := ix.QueryBudget(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}}, 0); err == nil {
		t.Error("budget 0 accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	ix, _ := New(o)
	if _, err := ix.Insert(geom.Point{16, 0}); !errors.Is(err, ErrPoint) {
		t.Error("out-of-universe point accepted")
	}
	if _, err := ix.Insert(geom.Point{1}); !errors.Is(err, ErrPoint) {
		t.Error("wrong-dims point accepted")
	}
}

func TestPointLookup(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	ix, _ := New(o)
	id, err := ix.Insert(geom.Point{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := ix.Point(id)
	if !ok || !p.Equal(geom.Point{3, 4}) {
		t.Fatalf("Point(%d) = %v, %v", id, p, ok)
	}
	if _, ok := ix.Point(99); ok {
		t.Error("missing id found")
	}
}

func TestDuplicatePoints(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	ix, _ := New(o)
	for i := 0; i < 10; i++ {
		if _, err := ix.Insert(geom.Point{5, 5}); err != nil {
			t.Fatal(err)
		}
	}
	ids, _, err := ix.Query(geom.Rect{Lo: geom.Point{5, 5}, Hi: geom.Point{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("got %d duplicates", len(ids))
	}
}

func TestOptionsValidation(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	if _, err := New(o, WithTreeOrder(2)); err == nil {
		t.Error("tree order 2 accepted")
	}
	if _, err := New(o, WithPageSize(0)); err == nil {
		t.Error("page size 0 accepted")
	}
	if _, err := New(o, WithTreeOrder(8), WithPageSize(64)); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestOnionFewerSeeksThanHilbertOnLargeCubes reproduces the paper's
// macro-claim end-to-end on the index: for near-full-size square queries
// the onion-clustered index pays far fewer seeks than the Hilbert one.
func TestOnionFewerSeeksThanHilbertOnLargeCubes(t *testing.T) {
	side := uint32(64)
	u := geom.MustUniverse(2, side)
	o, _ := core.NewOnion2D(side)
	h, _ := baseline.NewHilbert(2, side)
	qs, err := workload.RandomTranslates(u, []uint32{side - 7, side - 7}, 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	var onionRanges, hilbertRanges int
	ixo, _ := New(o)
	ixh, _ := New(h)
	for _, q := range qs {
		_, so, err := ixo.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		_, sh, err := ixh.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		onionRanges += so.Ranges
		hilbertRanges += sh.Ranges
	}
	if onionRanges*3 > hilbertRanges {
		t.Errorf("onion %d vs hilbert %d ranges: expected onion to win by >3x on near-full squares",
			onionRanges, hilbertRanges)
	}
}

func TestBulkEquivalentToInserts(t *testing.T) {
	side := uint32(64)
	u := geom.MustUniverse(2, side)
	pts, err := workload.ClusteredPoints(u, 3, 3000, 31)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := core.NewOnion2D(side)
	bulk, err := Bulk(o, pts)
	if err != nil {
		t.Fatal(err)
	}
	incr, _ := New(o)
	for _, p := range pts {
		if _, err := incr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != incr.Len() {
		t.Fatal("len mismatch")
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		r := randRect(rng, side)
		a, _, err := bulk.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := incr.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			t.Fatalf("%v: bulk %d vs incremental %d results", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: id %d vs %d", r, a[i], b[i])
			}
		}
	}
	// A bulk index must remain fully mutable.
	id, err := bulk.Insert(geom.Point{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bulk.Delete(id) {
		t.Fatal("delete after bulk failed")
	}
}

// TestBulkHonorsOptions verifies the single-parse configuration path: a
// bulk build with a custom tree order and page size must behave exactly
// like the incremental build under the same options.
func TestBulkHonorsOptions(t *testing.T) {
	side := uint32(32)
	u := geom.MustUniverse(2, side)
	pts, err := workload.ClusteredPoints(u, 2, 1200, 17)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := core.NewOnion2D(side)
	bulk, err := Bulk(o, pts, WithTreeOrder(8), WithPageSize(32))
	if err != nil {
		t.Fatal(err)
	}
	incr, err := New(o, WithTreeOrder(8), WithPageSize(32))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := incr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		r := randRect(rng, side)
		a, aStats, err := bulk.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		b, bStats, err := incr.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: bulk %d vs incremental %d results", r, len(a), len(b))
		}
		if aStats.Ranges != bStats.Ranges || aStats.Disk != bStats.Disk {
			t.Fatalf("%v: stats diverge: %+v vs %+v", r, aStats, bStats)
		}
	}
	if _, err := Bulk(o, pts, WithTreeOrder(1)); err == nil {
		t.Error("invalid tree order accepted by Bulk")
	}
}

// TestQueryBudgetFiltersExactly verifies that skipping the containment
// re-check on exact decompositions never leaks a wrong id, and that merged
// (budgeted) queries still filter every false positive out of the results.
func TestQueryBudgetFiltersExactly(t *testing.T) {
	side := uint32(64)
	u := geom.MustUniverse(2, side)
	pts, _ := workload.ClusteredPoints(u, 3, 2500, 11)
	rng := rand.New(rand.NewSource(13))
	for _, c := range testCurves(t, side) {
		ix, err := Bulk(c, pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			r := randRect(rng, side)
			want := bruteQuery(pts, r)
			for _, budget := range []int{0, 1, 3} {
				var got []uint64
				var stats QueryStats
				if budget == 0 {
					got, stats, err = ix.Query(r)
				} else {
					got, stats, err = ix.QueryBudget(r, budget)
				}
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("%s %v budget %d: %d results, want %d",
						c.Name(), r, budget, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s %v budget %d: wrong id at %d", c.Name(), r, budget, i)
					}
				}
				if budget == 0 && stats.FalsePositives != 0 {
					t.Fatalf("%s: exact query reported false positives", c.Name())
				}
				if stats.Entries != stats.Results+stats.FalsePositives {
					t.Fatalf("%s %v budget %d: entries %d != results %d + false positives %d",
						c.Name(), r, budget, stats.Entries, stats.Results, stats.FalsePositives)
				}
			}
		}
	}
}

func TestBulkValidation(t *testing.T) {
	o, _ := core.NewOnion2D(16)
	if _, err := Bulk(o, []geom.Point{{99, 0}}); !errors.Is(err, ErrPoint) {
		t.Error("outside point accepted")
	}
	empty, err := Bulk(o, nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty bulk: %v", err)
	}
}
