package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 || s.StdDev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatal("empty should have count 0")
	}
}

func TestSummarizeUnsorted(t *testing.T) {
	a := Summarize([]float64{5, 1, 4, 2, 3})
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if a != b {
		t.Fatal("order should not matter")
	}
}

func TestSummarizeUints(t *testing.T) {
	s := SummarizeUints([]uint64{2, 4, 6})
	if s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v", got)
	}
	if got := Quantile(sorted, 0.25); got != 2.5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Fatal("q0")
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Fatal("q1.0")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, frag := range []string{"n=3", "min=1.0", "med=2.0", "max=3.0"} {
		if !strings.Contains(str, frag) {
			t.Fatalf("summary string %q missing %q", str, frag)
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bbbb"}, [][]string{{"xx", "y"}, {"z", "wwwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "bbbb") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "xx") {
		t.Fatalf("row = %q", lines[2])
	}
}
