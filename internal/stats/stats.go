// Package stats provides the summary statistics the paper's box plots
// encode (minimum, quartiles, median, maximum — Figure 5's caption spells
// this out) plus means and simple fixed-width table rendering for the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Summary is a five-number summary plus mean and standard deviation.
type Summary struct {
	Count  int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes the summary of xs. An empty input yields a zero
// Summary with Count 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := slices.Clone(xs)
	slices.Sort(sorted)
	var sum, sumsq float64
	for _, x := range sorted {
		sum += x
		sumsq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}
}

// SummarizeUints converts and summarizes.
func SummarizeUints(xs []uint64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted data using linear
// interpolation between order statistics (type 7, the spreadsheet/NumPy
// default).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary in the compact form used by the harness.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f mean=%.2f",
		s.Count, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// FormatTable renders rows as a fixed-width text table with a header line.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
