// Package ranges decomposes rectangular queries into the minimal set of
// contiguous key ranges ("clusters") along a space filling curve. This is
// the operational counterpart of the paper's clustering number: an index
// clustered by the curve answers a rectangle query with exactly one
// sequential scan per range, so len(Decompose(...)) disk seeks.
//
// Strategies, cheapest first:
//
//   - curves implementing curve.RangePlanner (the onion family, Hilbert,
//     Z, Gray, the linear orders): output-sensitive analytic planning —
//     per-layer ring/segment intersection or prefix-tree descent — with
//     zero per-cell curve evaluations.
//   - continuous curves: derived from Lemma 1 — run starts and ends can
//     only occur at the query boundary, so both are recovered from the
//     O(surface) inside/outside neighbor pairs, swept in batches across
//     GOMAXPROCS workers.
//   - almost-continuous curves (cluster.JumpLister): the same boundary
//     sweep plus one check per enumerated discontinuity.
//   - any other curve: cell enumeration + sort.
//
// All strategies return exactly the same minimal ranges; the test suite
// and FuzzDecompose cross-validate them bit for bit.
package ranges

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// ErrBudget reports an invalid merge budget.
var ErrBudget = errors.New("ranges: merge budget must be >= 1")

// KeyRange is an inclusive range [Lo, Hi] of curve positions. It is an
// alias of curve.KeyRange, the type planners emit.
type KeyRange = curve.KeyRange

// TotalCells sums the sizes of the given ranges.
func TotalCells(rs []KeyRange) uint64 {
	var n uint64
	for _, r := range rs {
		n += r.Cells()
	}
	return n
}

// Decompose returns the minimal contiguous key ranges covering exactly the
// cells of r under curve c, sorted by Lo. The number of ranges equals the
// clustering number c(r, curve). maxCells bounds only the sorted fallback
// strategy; the planner and boundary-sweep strategies handle queries of
// any size.
func Decompose(c curve.Curve, r geom.Rect, maxCells uint64) ([]KeyRange, error) {
	if !r.In(c.Universe()) {
		return nil, fmt.Errorf("%w: %v in %v", cluster.ErrRectOutside, r, c.Universe())
	}
	if p, ok := c.(curve.RangePlanner); ok {
		return p.DecomposeRect(r), nil
	}
	if curve.IsContinuous(c) {
		return decomposeContinuous(c, r)
	}
	if _, ok := c.(cluster.JumpLister); ok {
		return decomposeNearContinuous(c, r)
	}
	return decomposeSorted(c, r, maxCells)
}

// DecomposeAppend is Decompose appending into dst (truncated to length
// zero first): for curves implementing curve.RangeAppender — every
// planner-equipped curve in this module — a steady-state caller that
// recycles the same plan buffer allocates nothing. Other curves fall
// back to Decompose and copy into dst.
func DecomposeAppend(c curve.Curve, r geom.Rect, maxCells uint64, dst []KeyRange) ([]KeyRange, error) {
	if p, ok := c.(curve.RangeAppender); ok {
		if !r.In(c.Universe()) {
			return dst, fmt.Errorf("%w: %v in %v", cluster.ErrRectOutside, r, c.Universe())
		}
		return p.DecomposeRectAppend(r, dst), nil
	}
	krs, err := Decompose(c, r, maxCells)
	if err != nil {
		return dst, err
	}
	return append(dst[:0], krs...), nil
}

// decomposeContinuous finds run starts (cells whose predecessor lies
// outside the query) and run ends (successor outside) among the boundary
// pairs; continuity guarantees no other cell can start or end a run. The
// pairs are evaluated through the batched parallel boundary sweep.
func decomposeContinuous(c curve.Curve, r geom.Rect) ([]KeyRange, error) {
	u := c.Universe()
	starts, ends := cluster.BoundaryCrossings(c, r)
	p := make(geom.Point, u.Dims())
	if r.Contains(c.Coords(0, p)) {
		starts = append(starts, 0)
	}
	if r.Contains(c.Coords(u.Size()-1, p)) {
		ends = append(ends, u.Size()-1)
	}
	return pairRuns(starts, ends)
}

// decomposeNearContinuous extends the boundary sweep to almost-continuous
// curves: run boundaries occur either at grid-neighbor boundary crossings
// (the sweep) or across one of the curve's enumerated jump steps, checked
// individually. Cost is O(surface(r) + jumps).
func decomposeNearContinuous(c curve.Curve, r geom.Rect) ([]KeyRange, error) {
	jl, ok := c.(cluster.JumpLister)
	if !ok {
		return nil, fmt.Errorf("%w: %s", cluster.ErrNoJumps, c.Name())
	}
	u := c.Universe()
	starts, ends := cluster.BoundaryCrossings(c, r)
	p := make(geom.Point, u.Dims())
	q := make(geom.Point, u.Dims())
	for _, h := range jl.Jumps() {
		// The key step h -> h+1 is not a neighbor move, so the sweep never
		// saw it; it bounds a run iff it crosses the query boundary.
		hin := r.Contains(c.Coords(h, p))
		sin := r.Contains(c.Coords(h+1, q))
		switch {
		case hin && !sin:
			ends = append(ends, h)
		case !hin && sin:
			starts = append(starts, h+1)
		}
	}
	if r.Contains(c.Coords(0, p)) {
		starts = append(starts, 0)
	}
	if r.Contains(c.Coords(u.Size()-1, p)) {
		ends = append(ends, u.Size()-1)
	}
	return pairRuns(starts, ends)
}

// pairRuns sorts the collected run starts and ends and zips them into
// ranges, validating the one-start-one-end invariant.
func pairRuns(starts, ends []uint64) ([]KeyRange, error) {
	slices.Sort(starts)
	slices.Sort(ends)
	if len(starts) != len(ends) {
		return nil, fmt.Errorf("ranges: internal error: %d starts vs %d ends", len(starts), len(ends))
	}
	out := make([]KeyRange, len(starts))
	for i := range starts {
		if starts[i] > ends[i] {
			return nil, fmt.Errorf("ranges: internal error: start %d after end %d", starts[i], ends[i])
		}
		out[i] = KeyRange{Lo: starts[i], Hi: ends[i]}
	}
	return out, nil
}

// decomposeContinuousScalar is the pre-sweep reference implementation: two
// scalar interface Curve.Index calls per boundary pair. Retained to
// cross-validate the batched sweep and as the benchmark baseline the
// analytic planners are measured against.
func decomposeContinuousScalar(c curve.Curve, r geom.Rect) ([]KeyRange, error) {
	u := c.Universe()
	var starts, ends []uint64
	r.Faces(u, func(in, out geom.Point) bool {
		hi, ho := c.Index(in), c.Index(out)
		switch {
		case ho+1 == hi: // predecessor outside -> run starts at hi
			starts = append(starts, hi)
		case hi+1 == ho: // successor outside -> run ends at hi
			ends = append(ends, hi)
		}
		return true
	})
	p := make(geom.Point, u.Dims())
	if r.Contains(c.Coords(0, p)) {
		starts = append(starts, 0)
	}
	if r.Contains(c.Coords(u.Size()-1, p)) {
		ends = append(ends, u.Size()-1)
	}
	return pairRuns(starts, ends)
}

// decomposeSorted enumerates, sorts and splits into runs.
func decomposeSorted(c curve.Curve, r geom.Rect, maxCells uint64) ([]KeyRange, error) {
	if maxCells == 0 {
		maxCells = cluster.DefaultMaxSortedCells
	}
	if r.Cells() > maxCells {
		return nil, fmt.Errorf("%w: %d > %d", cluster.ErrTooManyCells, r.Cells(), maxCells)
	}
	keys := make([]uint64, 0, r.Cells())
	r.ForEach(func(p geom.Point) bool {
		keys = append(keys, c.Index(p))
		return true
	})
	slices.Sort(keys)
	var out []KeyRange
	for i, k := range keys {
		if i == 0 || keys[i-1]+1 != k {
			out = append(out, KeyRange{Lo: k, Hi: k})
		} else {
			out[len(out)-1].Hi = k
		}
	}
	return out, nil
}

// MergeResult reports the outcome of a budgeted merge.
type MergeResult struct {
	// Ranges is the merged range list, at most Budget entries.
	Ranges []KeyRange
	// ExtraCells counts keys covered by the merged ranges that were not
	// part of the original decomposition (potential false positives a
	// query processor must filter).
	ExtraCells uint64
}

// MergeToBudget coalesces the sorted range list rs until at most budget
// ranges remain, always closing the smallest gaps first. This implements
// the superset-query tradeoff of Asano et al. discussed in the paper's
// related work: fewer seeks in exchange for reading extra cells.
func MergeToBudget(rs []KeyRange, budget int) (MergeResult, error) {
	if budget < 1 {
		return MergeResult{}, fmt.Errorf("%w: %d", ErrBudget, budget)
	}
	if len(rs) <= budget {
		return MergeResult{Ranges: slices.Clone(rs)}, nil
	}
	type gap struct {
		idx  int // gap between rs[idx] and rs[idx+1]
		size uint64
	}
	gaps := make([]gap, len(rs)-1)
	for i := 0; i+1 < len(rs); i++ {
		gaps[i] = gap{idx: i, size: rs[i+1].Lo - rs[i].Hi - 1}
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size < gaps[b].size })
	// Close the len(rs)-budget smallest gaps.
	toClose := make([]bool, len(rs)-1)
	var extra uint64
	for i := 0; i < len(rs)-budget; i++ {
		toClose[gaps[i].idx] = true
		extra += gaps[i].size
	}
	var out []KeyRange
	cur := rs[0]
	for i := 0; i+1 < len(rs); i++ {
		if toClose[i] {
			cur.Hi = rs[i+1].Hi
		} else {
			out = append(out, cur)
			cur = rs[i+1]
		}
	}
	out = append(out, cur)
	return MergeResult{Ranges: out, ExtraCells: extra}, nil
}
