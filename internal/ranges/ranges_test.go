package ranges

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

func randRect(rng *rand.Rand, dims int, side uint32) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := 0; i < dims; i++ {
		a := uint32(rng.Int31n(int32(side)))
		b := uint32(rng.Int31n(int32(side)))
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// checkExact verifies the fundamental decomposition contract: ranges are
// sorted, disjoint, non-adjacent (minimal), and cover exactly the cells of
// the query.
func checkExact(t *testing.T, c curve.Curve, r geom.Rect, rs []KeyRange) {
	t.Helper()
	for i, kr := range rs {
		if kr.Lo > kr.Hi {
			t.Fatalf("%s %v: inverted range %v", c.Name(), r, kr)
		}
		if i > 0 && rs[i-1].Hi+1 >= kr.Lo {
			t.Fatalf("%s %v: ranges %v and %v overlap or touch", c.Name(), r, rs[i-1], kr)
		}
	}
	if TotalCells(rs) != r.Cells() {
		t.Fatalf("%s %v: ranges cover %d cells, query has %d", c.Name(), r, TotalCells(rs), r.Cells())
	}
	// Every cell's key must fall in some range.
	r.ForEach(func(p geom.Point) bool {
		h := c.Index(p)
		ok := false
		for _, kr := range rs {
			if h >= kr.Lo && h <= kr.Hi {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%s %v: key %d of cell %v not covered", c.Name(), r, h, p)
		}
		return true
	})
}

func TestDecomposeAllStrategies2D(t *testing.T) {
	side := uint32(16)
	o, _ := core.NewOnion2D(side)
	h, _ := baseline.NewHilbert(2, side)
	z, _ := baseline.NewMorton(2, side)
	g, _ := baseline.NewGray(2, side)
	s, _ := baseline.NewSnake(2, side)
	rm, _ := baseline.NewRowMajor(2, side)
	cm, _ := baseline.NewColumnMajor(2, side)
	lex, _ := core.NewLayerLex(2, side)
	rng := rand.New(rand.NewSource(1))
	for _, c := range []curve.Curve{o, h, z, g, s, rm, cm, lex, opaque{g}} {
		for trial := 0; trial < 150; trial++ {
			r := randRect(rng, 2, side)
			rs, err := Decompose(c, r, 0)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			checkExact(t, c, r, rs)
			// Range count must equal the clustering number.
			want, err := cluster.Count(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(len(rs)) != want {
				t.Fatalf("%s %v: %d ranges, clustering number %d", c.Name(), r, len(rs), want)
			}
		}
	}
}

func TestDecomposeAllStrategies3D(t *testing.T) {
	o3, _ := core.NewOnion3D(8)
	h3, _ := baseline.NewHilbert(3, 8)
	z3, _ := baseline.NewMorton(3, 8)
	nd, _ := core.NewOnionND(3, 8)
	lex3, _ := core.NewLayerLex(3, 7)
	s3, _ := baseline.NewSnake(3, 8)
	rng := rand.New(rand.NewSource(2))
	for _, c := range []curve.Curve{o3, h3, z3, nd, lex3, s3} {
		for trial := 0; trial < 60; trial++ {
			r := randRect(rng, 3, c.Universe().Side())
			rs, err := Decompose(c, r, 0)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			checkExact(t, c, r, rs)
		}
	}
}

// opaque hides every capability of the wrapped curve (planner, continuity,
// jump listing) behind the bare Curve interface, forcing the sorted
// fallback — the built-in curves all plan or sweep now.
type opaque struct{ curve.Curve }

func TestDecomposePlannersMatchSorted(t *testing.T) {
	// Every planner's output must agree with brute force bit for bit.
	z, _ := baseline.NewMorton(2, 32)
	g, _ := baseline.NewGray(2, 32)
	h, _ := baseline.NewHilbert(2, 32)
	o, _ := core.NewOnion2D(33)
	lex, _ := core.NewLayerLex(2, 20)
	rng := rand.New(rand.NewSource(3))
	for _, c := range []curve.Curve{z, g, h, o, lex} {
		side := c.Universe().Side()
		for trial := 0; trial < 150; trial++ {
			r := randRect(rng, 2, side)
			fast, err := Decompose(c, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := decomposeSorted(c, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(slow) {
				t.Fatalf("%s %v: fast %d ranges, slow %d", c.Name(), r, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("%s %v: range %d: %v vs %v", c.Name(), r, i, fast[i], slow[i])
				}
			}
		}
	}
}

// TestDecomposeSweepStrategies cross-validates the batched boundary sweep
// (continuous and near-continuous) and its scalar reference against the
// analytic planners, which the strategy tests above tie to brute force.
func TestDecomposeSweepStrategies(t *testing.T) {
	o, _ := core.NewOnion2D(48)
	s, _ := baseline.NewSnake(2, 37)
	h, _ := baseline.NewHilbert(2, 64)
	rng := rand.New(rand.NewSource(7))
	for _, c := range []curve.Curve{o, s, h} {
		side := c.Universe().Side()
		for trial := 0; trial < 100; trial++ {
			r := randRect(rng, 2, side)
			want, err := Decompose(c, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := decomposeContinuous(c, r)
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := decomposeContinuousScalar(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if !equalRanges(batched, want) || !equalRanges(scalar, want) {
				t.Fatalf("%s %v: sweep %v scalar %v want %v", c.Name(), r, batched, scalar, want)
			}
		}
	}
	// Near-continuous: the 3D onion has enumerable jumps.
	o3, _ := core.NewOnion3D(10)
	for trial := 0; trial < 80; trial++ {
		r := randRect(rng, 3, 10)
		want, err := Decompose(o3, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		near, err := decomposeNearContinuous(o3, r)
		if err != nil {
			t.Fatal(err)
		}
		if !equalRanges(near, want) {
			t.Fatalf("onion3d %v: near-continuous %v want %v", r, near, want)
		}
	}
}

func equalRanges(a, b []KeyRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecomposeWholeUniverse(t *testing.T) {
	z, _ := baseline.NewMorton(3, 8)
	rs, err := Decompose(z, z.Universe().Rect(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0] != (KeyRange{Lo: 0, Hi: 511}) {
		t.Fatalf("whole universe = %v", rs)
	}
	o, _ := core.NewOnion2D(64)
	rs, err = Decompose(o, o.Universe().Rect(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0] != (KeyRange{Lo: 0, Hi: 4095}) {
		t.Fatalf("whole onion universe = %v", rs)
	}
}

func TestDecomposeErrors(t *testing.T) {
	z, _ := baseline.NewMorton(2, 8)
	outside := geom.Rect{Lo: geom.Point{4, 4}, Hi: geom.Point{8, 8}}
	if _, err := Decompose(z, outside, 0); !errors.Is(err, cluster.ErrRectOutside) {
		t.Error("outside rect accepted")
	}
	g, _ := baseline.NewGray(2, 8)
	big := g.Universe().Rect()
	if _, err := Decompose(opaque{g}, big, 4); !errors.Is(err, cluster.ErrTooManyCells) {
		t.Error("budget not enforced for sorted fallback")
	}
	// The Gray curve itself plans analytically, so no budget applies.
	if rs, err := Decompose(g, big, 4); err != nil || len(rs) != 1 {
		t.Errorf("planner subject to sorted budget: %v, %v", rs, err)
	}
}

func TestMergeToBudget(t *testing.T) {
	rs := []KeyRange{{Lo: 0, Hi: 3}, {Lo: 6, Hi: 7}, {Lo: 20, Hi: 29}, {Lo: 31, Hi: 31}}
	res, err := MergeToBudget(rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Gaps: 2 (3->6), 12 (7->20), 1 (29->31). Closing the two smallest
	// (sizes 1 and 2) leaves {0,7} and {20,31}.
	want := []KeyRange{{Lo: 0, Hi: 7}, {Lo: 20, Hi: 31}}
	if len(res.Ranges) != 2 || res.Ranges[0] != want[0] || res.Ranges[1] != want[1] {
		t.Fatalf("merged = %v", res.Ranges)
	}
	if res.ExtraCells != 3 {
		t.Fatalf("extra cells = %d, want 3", res.ExtraCells)
	}
}

func TestMergeToBudgetNoop(t *testing.T) {
	rs := []KeyRange{{Lo: 0, Hi: 1}, {Lo: 5, Hi: 6}}
	res, err := MergeToBudget(rs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranges) != 2 || res.ExtraCells != 0 {
		t.Fatalf("noop merge changed ranges: %+v", res)
	}
	if _, err := MergeToBudget(rs, 0); !errors.Is(err, ErrBudget) {
		t.Error("budget 0 accepted")
	}
}

func TestMergeToBudgetOne(t *testing.T) {
	rs := []KeyRange{{Lo: 0, Hi: 0}, {Lo: 10, Hi: 10}, {Lo: 20, Hi: 20}}
	res, err := MergeToBudget(rs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranges) != 1 || res.Ranges[0] != (KeyRange{Lo: 0, Hi: 20}) {
		t.Fatalf("merge-to-one = %v", res.Ranges)
	}
	if res.ExtraCells != 18 {
		t.Fatalf("extra = %d", res.ExtraCells)
	}
}

func TestMergePreservesCoverage(t *testing.T) {
	// Property: merged ranges must cover every original range.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		var rs []KeyRange
		cur := uint64(0)
		for i := 0; i < 10; i++ {
			cur += uint64(rng.Int63n(20)) + 2
			lo := cur
			cur += uint64(rng.Int63n(10))
			rs = append(rs, KeyRange{Lo: lo, Hi: cur})
		}
		budget := rng.Intn(10) + 1
		res, err := MergeToBudget(rs, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Ranges) > budget {
			t.Fatalf("budget exceeded: %d > %d", len(res.Ranges), budget)
		}
		covered := func(k uint64) bool {
			for _, r := range res.Ranges {
				if k >= r.Lo && k <= r.Hi {
					return true
				}
			}
			return false
		}
		for _, r := range rs {
			if !covered(r.Lo) || !covered(r.Hi) {
				t.Fatalf("range %v lost after merge to %d: %v", r, budget, res.Ranges)
			}
		}
		if TotalCells(res.Ranges) != TotalCells(rs)+res.ExtraCells {
			t.Fatalf("extra cells accounting wrong")
		}
	}
}

func TestKeyRangeHelpers(t *testing.T) {
	k := KeyRange{Lo: 3, Hi: 7}
	if k.Cells() != 5 {
		t.Fatal("cells")
	}
	if k.String() != "[3,7]" {
		t.Fatalf("string = %q", k.String())
	}
	if TotalCells([]KeyRange{{Lo: 0, Hi: 0}, {Lo: 2, Hi: 3}}) != 3 {
		t.Fatal("total")
	}
}
