package ranges

// Paper-scale decomposition benchmarks (Figure 5b regime: queries of 10^8+
// cells). "analytic" is the output-sensitive curve.RangePlanner, "sweep" the
// batched parallel boundary sweep, "sweep-scalar" the pre-batching baseline
// with two interface Index calls per boundary pair. CI publishes these as
// BENCH_2.json via cmd/benchjson.

import (
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// bench2D is a 2^15-side 2D universe (2^30 cells ~ 10^9).
func bench2D(b *testing.B) (*core.Onion2D, geom.Universe) {
	b.Helper()
	o, err := core.NewOnion2D(1 << 15)
	if err != nil {
		b.Fatal(err)
	}
	return o, o.Universe()
}

// insetRect2D is the paper-scale showcase: ~1.07*10^9 cells, 16 cells in
// from every boundary, so the decomposition is a single tail range. The
// planner pays O(1); the sweep pays the full 2*10^5-pair surface.
func insetRect2D(u geom.Universe) geom.Rect {
	s := u.Side()
	return geom.Rect{Lo: geom.Point{16, 16}, Hi: geom.Point{s - 17, s - 17}}
}

// offsetRect2D is the adversarial case: ~2.7*10^8 cells straddling the
// universe center off-axis, so thousands of rings intersect partially and
// the output itself is tens of thousands of ranges.
func offsetRect2D(u geom.Universe) geom.Rect {
	s := u.Side()
	return geom.Rect{Lo: geom.Point{s / 4, s/4 + 1000}, Hi: geom.Point{s/4 + s/2 - 1, s/4 + s/2 + 999}}
}

func reportRanges(b *testing.B, n int) {
	b.Helper()
	b.ReportMetric(float64(n), "ranges/op")
}

func BenchmarkDecompose2DPaperScale(b *testing.B) {
	o, u := bench2D(b)
	for _, bc := range []struct {
		name string
		r    geom.Rect
	}{
		{"inset", insetRect2D(u)},
		{"offset", offsetRect2D(u)},
	} {
		if c := bc.r.Cells(); c < 1e8 {
			b.Fatalf("%s query too small: %d cells", bc.name, c)
		}
		b.Run(bc.name+"/analytic", func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(o.DecomposeRect(bc.r))
			}
			reportRanges(b, n)
		})
		b.Run(bc.name+"/sweep", func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				rs, err := decomposeContinuous(o, bc.r)
				if err != nil {
					b.Fatal(err)
				}
				n = len(rs)
			}
			reportRanges(b, n)
		})
		b.Run(bc.name+"/sweep-scalar", func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				rs, err := decomposeContinuousScalar(o, bc.r)
				if err != nil {
					b.Fatal(err)
				}
				n = len(rs)
			}
			reportRanges(b, n)
		})
	}
}

func BenchmarkDecompose3DPaperScale(b *testing.B) {
	o, err := core.NewOnion3D(1 << 9)
	if err != nil {
		b.Fatal(err)
	}
	s := o.Universe().Side()
	// ~1.2*10^8 cells, 8 cells in from every face: single tail range.
	r := geom.Rect{Lo: geom.Point{8, 8, 8}, Hi: geom.Point{s - 9, s - 9, s - 9}}
	if c := r.Cells(); c < 1e8 {
		b.Fatalf("query too small: %d cells", c)
	}
	b.Run("inset/analytic", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(o.DecomposeRect(r))
		}
		reportRanges(b, n)
	})
	b.Run("inset/sweep", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			rs, err := decomposeNearContinuous(o, r)
			if err != nil {
				b.Fatal(err)
			}
			n = len(rs)
		}
		reportRanges(b, n)
	})
}

// BenchmarkClusterCount2DPaperScale measures counting alone (no range
// materialization), the facade ClusterCount path.
func BenchmarkClusterCount2DPaperScale(b *testing.B) {
	o, u := bench2D(b)
	r := offsetRect2D(u)
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = o.ClusterCount(r)
		}
	})
}

// BenchmarkDecomposeHilbertPrefixTree measures the orientation-carrying
// prefix-tree planner against the boundary sweep on a large Hilbert query.
func BenchmarkDecomposeHilbertPrefixTree(b *testing.B) {
	h, err := baseline.NewHilbert(2, 1<<13)
	if err != nil {
		b.Fatal(err)
	}
	s := h.Universe().Side()
	r := geom.Rect{Lo: geom.Point{100, 200}, Hi: geom.Point{s - 101, s - 201}}
	b.Run("prefix-tree", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(h.DecomposeRect(r))
		}
		reportRanges(b, n)
	})
	b.Run("sweep", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			rs, err := decomposeContinuous(h, r)
			if err != nil {
				b.Fatal(err)
			}
			n = len(rs)
		}
		reportRanges(b, n)
	})
}

// BenchmarkDecomposeMid2D is the mid-size regime (10^6-cell query) where
// constant factors, not asymptotics, decide.
func BenchmarkDecomposeMid2D(b *testing.B) {
	o, err := core.NewOnion2D(4096)
	if err != nil {
		b.Fatal(err)
	}
	r := geom.Rect{Lo: geom.Point{1000, 1200}, Hi: geom.Point{2023, 2223}}
	var cs = []struct {
		name string
		c    curve.Curve
	}{{"onion", o}}
	if z, err := baseline.NewMorton(2, 4096); err == nil {
		cs = append(cs, struct {
			name string
			c    curve.Curve
		}{"zcurve", z})
	}
	for _, tc := range cs {
		p := tc.c.(curve.RangePlanner)
		b.Run(tc.name+"/analytic", func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(p.DecomposeRect(r))
			}
			reportRanges(b, n)
		})
	}
	b.Run("onion/sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := decomposeContinuous(o, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
