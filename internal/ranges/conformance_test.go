package ranges

import (
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
)

// TestDecomposeConformanceAllCurves runs the shared curvetest
// decomposition conformance harness table-driven over the full
// 22-instance curve roster (the same instances the fuzzer uses: the
// onion family at odd/even/non-power-of-two sides, the prefix-tree
// baselines, the linear orders, Peano, and the opaque fallback wrapper).
// Decompose's output — whichever strategy served the curve — must be
// sorted, disjoint, non-adjacent, cover the query exactly, match the
// brute-force reference bit for bit, and agree with cluster.Count;
// curves that implement RangePlanner additionally have DecomposeRect and
// ClusterCount checked directly through curvetest.CheckPlanner.
func TestDecomposeConformanceAllCurves(t *testing.T) {
	for _, c := range fuzzCurves(t) {
		t.Run(c.Name(), func(t *testing.T) {
			u := c.Universe()
			rects := curvetest.DegenerateRects(u)
			rng := rand.New(rand.NewSource(int64(u.Size())))
			for i := 0; i < 25; i++ {
				rects = append(rects, curvetest.RandomRect(rng, u))
			}
			_, isPlanner := c.(curve.RangePlanner)
			for _, r := range rects {
				got, err := Decompose(c, r, 0)
				if err != nil {
					t.Fatal(err)
				}
				n, err := cluster.Count(c, r)
				if err != nil {
					t.Fatal(err)
				}
				curvetest.CheckDecomposition(t, c, r, got, n)
				if isPlanner {
					curvetest.CheckPlanner(t, c, r)
				}
			}
		})
	}
}
