package ranges

// FuzzDecompose cross-validates every decomposition strategy — analytic
// planners (onion family, prefix trees, linear orders), the batched
// boundary sweep (continuous and near-continuous) and the sorted fallback
// — bit for bit on fuzzer-chosen rectangles across every curve
// constructor, including odd, even and non-power-of-two sides.

import (
	"testing"

	"github.com/onioncurve/onion/internal/baseline"
	"github.com/onioncurve/onion/internal/cluster"
	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// fuzzCurves builds one instance per curve family, spanning odd, even and
// non-power-of-two sides and 1-4 dimensions — the 22-instance roster the
// fuzzer and the table-driven conformance sweep share. Construction
// happens once; the fuzz body picks by index.
func fuzzCurves(tb testing.TB) []curve.Curve {
	tb.Helper()
	var cs []curve.Curve
	add := func(c curve.Curve, err error) {
		if err != nil {
			tb.Fatal(err)
		}
		cs = append(cs, c)
	}
	add(core.NewOnion2D(31)) // odd side
	add(core.NewOnion2D(32)) // even side
	add(core.NewOnion2D(1))  // degenerate 1-cell universe
	add(core.NewOnion3D(10)) // non-power-of-two even side
	add(core.NewOnion3DWithSegmentOrder(8, [10]int{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}))
	add(core.NewOnionND(1, 17))
	add(core.NewOnionND(3, 9))
	add(core.NewOnionND(4, 5))
	add(core.NewLayerLex(2, 21))
	add(core.NewLayerLex(3, 6))
	add(baseline.NewHilbert(2, 32))
	add(baseline.NewHilbert(3, 8))
	add(baseline.NewMorton(2, 32))
	add(baseline.NewMorton(3, 8))
	add(baseline.NewGray(2, 32))
	add(baseline.NewGray(3, 8))
	add(baseline.NewRowMajor(2, 23))
	add(baseline.NewColumnMajor(3, 7))
	add(baseline.NewSnake(2, 19))
	add(baseline.NewSnake(3, 6))
	add(baseline.NewPeano(2, 27))
	// The opaque wrapper reaches the sorted fallback path.
	o, err := core.NewOnion2D(16)
	if err != nil {
		tb.Fatal(err)
	}
	cs = append(cs, opaque{o})
	return cs
}

// fuzzRect folds the six raw fuzz coordinates into a valid rectangle of
// the curve's dimensionality: 0 and side-1 stay reachable so 1-wide slabs
// touching each boundary and full-universe queries occur naturally.
func fuzzRect(u geom.Universe, raw [6]uint32) geom.Rect {
	lo := make(geom.Point, u.Dims())
	hi := make(geom.Point, u.Dims())
	for i := 0; i < u.Dims(); i++ {
		j := i
		if j >= 3 {
			j = 2 // reuse the z pair for dims beyond the third
		}
		a := raw[2*j] % u.Side()
		b := raw[2*j+1] % u.Side()
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func FuzzDecompose(f *testing.F) {
	cs := fuzzCurves(f)
	// Seed corpus: the degenerate shapes every planner must get right.
	for which := range cs {
		side := cs[which].Universe().Side()
		w := uint8(which)
		f.Add(w, uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0)) // 1-cell corner
		f.Add(w, side-1, side-1, side-1, side-1, side-1, side-1)                   // 1-cell far corner
		f.Add(w, uint32(0), side-1, uint32(0), side-1, uint32(0), side-1)          // full universe
		f.Add(w, uint32(0), uint32(0), uint32(0), side-1, uint32(0), side-1)       // 1-wide slab at low x
		f.Add(w, side-1, side-1, uint32(0), side-1, uint32(0), side-1)             // 1-wide slab at high x
		f.Add(w, uint32(0), side-1, uint32(0), uint32(0), uint32(0), side-1)       // 1-wide slab at low y
		f.Add(w, uint32(0), side-1, side-1, side-1, uint32(0), side-1)             // 1-wide slab at high y
		f.Add(w, uint32(1), side-2, uint32(1), side-2, uint32(1), side-2)          // inset (tail fast path)
		f.Add(w, side/2, side/2, side/2, side/2, side/2, side/2)                   // center cell
	}
	f.Fuzz(func(t *testing.T, which uint8, x0, x1, y0, y1, z0, z1 uint32) {
		c := cs[int(which)%len(cs)]
		u := c.Universe()
		r := fuzzRect(u, [6]uint32{x0, x1, y0, y1, z0, z1})
		got, err := Decompose(c, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := decomposeSorted(c, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !equalRanges(got, want) {
			t.Fatalf("%s %v: Decompose %v, sorted %v", c.Name(), r, got, want)
		}
		// The clustering number must agree with the decomposition for
		// every counting strategy that applies to this curve.
		n, err := cluster.Count(c, r)
		if err != nil {
			t.Fatal(err)
		}
		if n != uint64(len(want)) {
			t.Fatalf("%s %v: Count %d, want %d", c.Name(), r, n, len(want))
		}
		if curve.IsContinuous(c) {
			cc, err := cluster.CountContinuous(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if cc != uint64(len(want)) {
				t.Fatalf("%s %v: CountContinuous %d, want %d", c.Name(), r, cc, len(want))
			}
		}
		if _, ok := c.(cluster.JumpLister); ok {
			nc, err := cluster.CountNearContinuous(c, r)
			if err != nil {
				t.Fatal(err)
			}
			if nc != uint64(len(want)) {
				t.Fatalf("%s %v: CountNearContinuous %d, want %d", c.Name(), r, nc, len(want))
			}
		}
	})
}
