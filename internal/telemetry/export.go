package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteJSON writes the snapshot as a single expvar-style JSON object:
//
//	{"metrics": {"name": value | {histogram...}, ...}, "events": [...]}
//
// Metric order follows the snapshot (sorted by name) so output is
// stable across runs. Histograms render as
// {"count", "sum", "mean", "p50", "p99", "p999"}.
func (s Snapshot) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n  \"metrics\": {")
	for i, m := range s.Metrics {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    ")
		bw.WriteString(strconv.Quote(m.Name))
		bw.WriteString(": ")
		switch m.Kind {
		case KindCounter:
			bw.WriteString(strconv.FormatUint(m.Value, 10))
		case KindGauge:
			bw.WriteString(strconv.FormatInt(m.Int, 10))
		case KindFloatGauge:
			bw.WriteString(formatFloat(m.Float))
		case KindHistogram:
			writeHistJSON(bw, m.Hist)
		}
	}
	bw.WriteString("\n  },\n  \"events\": [")
	for i := range s.Events {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    ")
		writeEventJSON(bw, &s.Events[i])
	}
	bw.WriteString("\n  ]\n}\n")
	return bw.Flush()
}

func writeHistJSON(bw *bufio.Writer, h *HistogramSnapshot) {
	if h == nil {
		bw.WriteString("null")
		return
	}
	bw.WriteString(`{"count": `)
	bw.WriteString(strconv.FormatUint(h.Count, 10))
	bw.WriteString(`, "sum": `)
	bw.WriteString(strconv.FormatUint(h.Sum, 10))
	bw.WriteString(`, "mean": `)
	bw.WriteString(formatFloat(h.Mean()))
	bw.WriteString(`, "p50": `)
	bw.WriteString(strconv.FormatUint(h.Quantile(0.50), 10))
	bw.WriteString(`, "p99": `)
	bw.WriteString(strconv.FormatUint(h.Quantile(0.99), 10))
	bw.WriteString(`, "p999": `)
	bw.WriteString(strconv.FormatUint(h.Quantile(0.999), 10))
	bw.WriteByte('}')
}

func writeEventJSON(bw *bufio.Writer, e *Event) {
	bw.WriteString(`{"seq": `)
	bw.WriteString(strconv.FormatUint(e.Seq, 10))
	bw.WriteString(`, "time": `)
	bw.WriteString(strconv.Quote(e.Time.Format(time.RFC3339Nano)))
	bw.WriteString(`, "kind": `)
	bw.WriteString(strconv.Quote(e.Kind.String()))
	bw.WriteString(`, "phase": `)
	bw.WriteString(strconv.Quote(e.Phase.String()))
	bw.WriteString(`, "shard": `)
	bw.WriteString(strconv.Itoa(e.Shard))
	bw.WriteString(`, "dur_us": `)
	bw.WriteString(strconv.FormatInt(e.Dur.Microseconds(), 10))
	if e.Records != 0 {
		bw.WriteString(`, "records": `)
		bw.WriteString(strconv.FormatInt(e.Records, 10))
	}
	if e.Bytes != 0 {
		bw.WriteString(`, "bytes": `)
		bw.WriteString(strconv.FormatInt(e.Bytes, 10))
	}
	if e.Err != "" {
		bw.WriteString(`, "err": `)
		bw.WriteString(strconv.Quote(e.Err))
	}
	if e.Detail != "" {
		bw.WriteString(`, "detail": `)
		bw.WriteString(strconv.Quote(e.Detail))
	}
	bw.WriteByte('}')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WritePrometheus writes the snapshot's metrics in Prometheus text
// exposition format (version 0.0.4). Counters and gauges become single
// samples; histograms become the conventional _bucket/_sum/_count
// series with cumulative `le` bounds (only occupied buckets plus +Inf
// are emitted to keep the output compact). Events are not exported
// here — they are a stream, not a scrape target.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Group series by base name so each gets exactly one TYPE line even
	// when labeled variants are interleaved in sorted order.
	typed := make(map[string]bool)
	writeType := func(base, typ string) {
		if typed[base] {
			return
		}
		typed[base] = true
		bw.WriteString("# TYPE ")
		bw.WriteString(base)
		bw.WriteByte(' ')
		bw.WriteString(typ)
		bw.WriteByte('\n')
	}
	for _, m := range s.Metrics {
		base, lbl := splitName(m.Name)
		switch m.Kind {
		case KindCounter:
			writeType(base, "counter")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(m.Value, 10))
			bw.WriteByte('\n')
		case KindGauge:
			writeType(base, "gauge")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.Int, 10))
			bw.WriteByte('\n')
		case KindFloatGauge:
			writeType(base, "gauge")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(m.Float))
			bw.WriteByte('\n')
		case KindHistogram:
			if m.Hist == nil {
				continue
			}
			writeType(base, "histogram")
			writePromHist(bw, base, lbl, m.Hist)
		}
	}
	return bw.Flush()
}

func writePromHist(bw *bufio.Writer, base, lbl string, h *HistogramSnapshot) {
	writeSeries := func(suffix, extraLabel, value string) {
		bw.WriteString(base)
		bw.WriteString(suffix)
		if lbl != "" || extraLabel != "" {
			bw.WriteByte('{')
			bw.WriteString(lbl)
			if lbl != "" && extraLabel != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(extraLabel)
			bw.WriteByte('}')
		}
		bw.WriteByte(' ')
		bw.WriteString(value)
		bw.WriteByte('\n')
	}
	var cum uint64
	for i := range h.Buckets {
		if h.Buckets[i] == 0 {
			continue
		}
		cum += h.Buckets[i]
		le := `le="` + strconv.FormatUint(BucketBound(i), 10) + `"`
		writeSeries("_bucket", le, strconv.FormatUint(cum, 10))
	}
	writeSeries("_bucket", `le="+Inf"`, strconv.FormatUint(h.Count, 10))
	writeSeries("_sum", "", strconv.FormatUint(h.Sum, 10))
	writeSeries("_count", "", strconv.FormatUint(h.Count, 10))
}

// SortEventsByTime orders events by timestamp (stable, sequence number
// as tie-break) — used when merging per-shard streams whose sequence
// numbers are not comparable across shards.
func SortEventsByTime(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time.Equal(events[j].Time) {
			return events[i].Seq < events[j].Seq
		}
		return events[i].Time.Before(events[j].Time)
	})
}
