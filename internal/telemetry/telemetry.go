// Package telemetry is a dependency-free metrics layer for the engine.
//
// Design constraints, in priority order:
//
//  1. Recording on the hot path is allocation-free and lock-free:
//     Counter, Gauge, FloatGauge and Histogram record with plain atomic
//     operations on preallocated memory. No maps, no interface boxing,
//     no time formatting.
//  2. Snapshots are mergeable: a service-level view of N per-shard
//     registries is MergeMetrics/Rollup over their snapshots, and the
//     merge is associative, so any grouping of shards produces the same
//     aggregate.
//  3. Export is boring: expvar-style JSON and Prometheus text
//     exposition, both derived from the same stable-sorted Snapshot.
//
// Metric names may carry Prometheus-style labels inline, e.g.
// `engine_health_transitions_total{to="degraded"}`. The exporters split
// the base name from the label set; the registry treats the full string
// as the identity of the series.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable signed integer value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is a settable float64 value stored as atomic bits. The
// zero value is ready to use and reads as 0.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return floatFromBits(g.bits.Load()) }

// Kind identifies the type of a metric in a Snapshot.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindFloatGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindFloatGauge:
		return "float_gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Metric is one exported series in a Snapshot. Exactly one of the value
// fields is meaningful, selected by Kind.
type Metric struct {
	Name  string // full series name, possibly with inline {labels}
	Kind  Kind
	Value uint64             // KindCounter
	Int   int64              // KindGauge
	Float float64            // KindFloatGauge
	Hist  *HistogramSnapshot // KindHistogram
}

// registered is one live metric inside a Registry.
type registered struct {
	kind Kind
	c    *Counter
	g    *Gauge
	f    *FloatGauge
	h    *Histogram
	cf   func() uint64  // sampled counter, read at snapshot time
	gf   func() int64   // sampled gauge, read at snapshot time
	ff   func() float64 // sampled float gauge, read at snapshot time
}

// Registry is a named collection of metrics. Lookup/registration takes
// a mutex; the returned metric handles record without any locking, so
// callers should resolve handles once at startup and hold on to them.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*registered)}
}

func (r *Registry) getOrCreate(name string, kind Kind) *registered {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &registered{kind: kind}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindFloatGauge:
		m.f = &FloatGauge{}
	case KindHistogram:
		m.h = &Histogram{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns the counter with the given name, creating it if
// needed. Panics if the name is already registered with another kind.
func (r *Registry) Counter(name string) *Counter { return r.getOrCreate(name, KindCounter).c }

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge { return r.getOrCreate(name, KindGauge).g }

// FloatGauge returns the float gauge with the given name, creating it
// if needed.
func (r *Registry) FloatGauge(name string) *FloatGauge { return r.getOrCreate(name, KindFloatGauge).f }

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram { return r.getOrCreate(name, KindHistogram).h }

// CounterFunc registers a counter whose value is sampled by fn at
// snapshot time. Useful for exposing counters maintained elsewhere
// (e.g. page-cache hit totals) without double bookkeeping. fn must be
// safe for concurrent use.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	m := r.getOrCreate(name, KindCounter)
	r.mu.Lock()
	m.cf = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge sampled by fn at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	m := r.getOrCreate(name, KindGauge)
	r.mu.Lock()
	m.gf = fn
	r.mu.Unlock()
}

// FloatGaugeFunc registers a float gauge sampled by fn at snapshot
// time.
func (r *Registry) FloatGaugeFunc(name string, fn func() float64) {
	m := r.getOrCreate(name, KindFloatGauge)
	r.mu.Lock()
	m.ff = fn
	r.mu.Unlock()
}

// Snapshot returns a point-in-time copy of every metric, sorted by
// name. Counters and histograms observed mid-update may be off by the
// in-flight operations; each individual value is atomically read.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	regs := make([]*registered, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		regs = append(regs, r.metrics[name])
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(names))
	for i, m := range regs {
		mt := Metric{Name: names[i], Kind: m.kind}
		switch m.kind {
		case KindCounter:
			if m.cf != nil {
				mt.Value = m.cf()
			} else {
				mt.Value = m.c.Load()
			}
		case KindGauge:
			if m.gf != nil {
				mt.Int = m.gf()
			} else {
				mt.Int = m.g.Load()
			}
		case KindFloatGauge:
			if m.ff != nil {
				mt.Float = m.ff()
			} else {
				mt.Float = m.f.Load()
			}
		case KindHistogram:
			hs := m.h.Snapshot()
			mt.Hist = &hs
		}
		out = append(out, mt)
	}
	return Snapshot{Metrics: out}
}

// Snapshot is an immutable view of a registry (and optionally the
// recent maintenance events attached by the caller). Metrics are sorted
// by name.
type Snapshot struct {
	Metrics []Metric
	Events  []Event
}

// Metric returns the named series from the snapshot, if present.
func (s Snapshot) Metric(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	// Fall back to a linear scan in case the snapshot was assembled by
	// hand and is not sorted.
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Counter returns the value of the named counter, or 0 if absent.
func (s Snapshot) Counter(name string) uint64 {
	m, ok := s.Metric(name)
	if !ok || m.Kind != KindCounter {
		return 0
	}
	return m.Value
}

// Hist returns the named histogram snapshot, or nil if absent.
func (s Snapshot) Hist(name string) *HistogramSnapshot {
	m, ok := s.Metric(name)
	if !ok || m.Kind != KindHistogram {
		return nil
	}
	return m.Hist
}

// MergeMetrics element-wise combines the metrics of several snapshots
// into one sorted slice: counters and histograms sum, integer gauges
// sum, and float gauges average (the only generic choice for ratio
// gauges like seek amplification; per-source truth is preserved by
// Rollup's labeled copies). Series present in only some snapshots are
// carried through. The operation is associative for counters, gauges
// and histograms: merging A with (B merged with C) equals merging
// (A merged with B) with C.
func MergeMetrics(snaps ...Snapshot) []Metric {
	type acc struct {
		m Metric
		// Float gauges average over the number of sources that carried
		// the series; track the weight so the mean is grouping
		// independent.
		fsum    float64
		fweight float64
	}
	byName := make(map[string]*acc)
	order := make([]string, 0)
	for _, s := range snaps {
		for _, m := range s.Metrics {
			a, ok := byName[m.Name]
			if !ok {
				a = &acc{m: Metric{Name: m.Name, Kind: m.Kind}}
				if m.Kind == KindHistogram {
					a.m.Hist = &HistogramSnapshot{}
				}
				byName[m.Name] = a
				order = append(order, m.Name)
			}
			if a.m.Kind != m.Kind {
				continue // kind clash: first registration wins
			}
			switch m.Kind {
			case KindCounter:
				a.m.Value += m.Value
			case KindGauge:
				a.m.Int += m.Int
			case KindFloatGauge:
				a.fsum += m.Float * m.weightOf()
				a.fweight += m.weightOf()
			case KindHistogram:
				if m.Hist != nil {
					a.m.Hist.Merge(m.Hist)
				}
			}
		}
	}
	sort.Strings(order)
	out := make([]Metric, 0, len(order))
	for _, name := range order {
		a := byName[name]
		if a.m.Kind == KindFloatGauge && a.fweight > 0 {
			a.m.Float = a.fsum / a.fweight
			a.m.Value = uint64(a.fweight) // carry the weight for re-merging
		}
		out = append(out, a.m)
	}
	return out
}

// weightOf returns the number of underlying sources a float-gauge
// metric represents: 1 for a raw registry snapshot, or the carried
// weight for an already-merged aggregate. This keeps MergeMetrics
// associative for float-gauge means.
func (m Metric) weightOf() float64 {
	if m.Kind == KindFloatGauge && m.Value > 0 {
		return float64(m.Value)
	}
	return 1
}

// Rollup merges per-source snapshots into one service-level snapshot:
// each series appears once as the cross-source aggregate and once per
// source with an added label, e.g. Rollup("shard", snaps) turns
// `engine_queries_total` from source 2 into
// `engine_queries_total{shard="2"}` alongside the unlabeled sum.
// Events are not merged; attach them separately.
func Rollup(labelKey string, snaps []Snapshot) Snapshot {
	out := MergeMetrics(snaps...)
	for i, s := range snaps {
		val := fmt.Sprintf("%d", i)
		for _, m := range s.Metrics {
			lm := m
			lm.Name = WithLabel(m.Name, labelKey, val)
			out = append(out, lm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Snapshot{Metrics: out}
}

// WithLabel returns the series name with an added label, inserting into
// an existing label set if the name already carries one.
func WithLabel(name, key, value string) string {
	pair := key + `="` + value + `"`
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

// splitName separates a series name into its base name and the inline
// label body (without braces); lbl is "" when the name has no labels.
func splitName(name string) (base, lbl string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	base = name[:i]
	lbl = strings.TrimSuffix(name[i+1:], "}")
	return base, lbl
}
