package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies a maintenance event.
type EventKind uint8

const (
	EvFlush EventKind = iota
	EvCompaction
	EvSnapshot
	EvRestore
	EvRepair
	EvScrub
	EvHealth
	EvRepl
	NumEventKinds = 8
)

func (k EventKind) String() string {
	switch k {
	case EvFlush:
		return "flush"
	case EvCompaction:
		return "compaction"
	case EvSnapshot:
		return "snapshot"
	case EvRestore:
		return "restore"
	case EvRepair:
		return "repair"
	case EvScrub:
		return "scrub"
	case EvHealth:
		return "health"
	case EvRepl:
		return "repl"
	}
	return "unknown"
}

// EventPhase distinguishes the start and end of an operation, and
// instantaneous point events (health transitions, quarantines).
type EventPhase uint8

const (
	PhaseStart EventPhase = iota
	PhaseEnd
	PhasePoint
)

func (p EventPhase) String() string {
	switch p {
	case PhaseStart:
		return "start"
	case PhaseEnd:
		return "end"
	case PhasePoint:
		return "point"
	}
	return "unknown"
}

// Event is one entry in the maintenance event stream. Err is "" on
// success; Dur, Records and Bytes are meaningful on PhaseEnd events.
type Event struct {
	Seq     uint64 // 1-based, assigned by Emit, strictly increasing per stream
	Time    time.Time
	Kind    EventKind
	Phase   EventPhase
	Shard   int // -1 when the emitter is not a shard member
	Dur     time.Duration
	Err     string
	Detail  string
	Records int64
	Bytes   int64
}

// Events is a bounded ring of maintenance events plus an optional
// synchronous listener. Emit is cheap (one mutex, no allocation beyond
// the preallocated ring) but is only called on maintenance paths, never
// on the query or write hot path.
type Events struct {
	mu       sync.Mutex
	buf      []Event
	seq      uint64
	inflight [NumEventKinds]int
	listener func(Event)
}

// DefaultEventCap is the ring capacity used when NewEvents is given a
// non-positive capacity.
const DefaultEventCap = 256

// NewEvents returns an event stream retaining the last capacity events.
func NewEvents(capacity int) *Events {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &Events{buf: make([]Event, 0, capacity)}
}

// Emit stamps the event with the next sequence number (and the current
// time, unless already set), stores it in the ring, and invokes the
// listener if one is installed. It returns the stamped event.
func (ev *Events) Emit(e Event) Event {
	ev.mu.Lock()
	ev.seq++
	e.Seq = ev.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if int(e.Kind) < NumEventKinds {
		switch e.Phase {
		case PhaseStart:
			ev.inflight[e.Kind]++
		case PhaseEnd:
			if ev.inflight[e.Kind] > 0 {
				ev.inflight[e.Kind]--
			}
		}
	}
	if len(ev.buf) < cap(ev.buf) {
		ev.buf = append(ev.buf, e)
	} else {
		copy(ev.buf, ev.buf[1:])
		ev.buf[len(ev.buf)-1] = e
	}
	fn := ev.listener
	ev.mu.Unlock()
	if fn != nil {
		fn(e)
	}
	return e
}

// Recent appends the retained events, oldest first, to dst and returns
// the result.
func (ev *Events) Recent(dst []Event) []Event {
	ev.mu.Lock()
	dst = append(dst, ev.buf...)
	ev.mu.Unlock()
	return dst
}

// Total returns the number of events emitted over the stream's
// lifetime, including any that have rotated out of the ring.
func (ev *Events) Total() uint64 {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.seq
}

// InFlight returns the number of started-but-not-ended operations of
// the given kind.
func (ev *Events) InFlight(k EventKind) int {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if int(k) >= NumEventKinds {
		return 0
	}
	return ev.inflight[k]
}

// SetListener installs fn to be called synchronously, outside the ring
// lock, for every emitted event. Pass nil to remove. The listener must
// not block: it runs inline on maintenance paths.
func (ev *Events) SetListener(fn func(Event)) {
	ev.mu.Lock()
	ev.listener = fn
	ev.mu.Unlock()
}
