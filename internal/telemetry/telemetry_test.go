package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
	var f FloatGauge
	f.Set(1.5)
	if got := f.Load(); got != 1.5 {
		t.Fatalf("float gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketLayout(t *testing.T) {
	// Exact buckets for 0..3.
	for v := uint64(0); v < 4; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := BucketBound(int(v)); got != v {
			t.Fatalf("BucketBound(%d) = %d, want %d", v, got, v)
		}
	}
	// Every value maps to a bucket whose bound is >= the value, and the
	// bound over-estimates by at most 25%.
	check := func(v uint64) {
		t.Helper()
		i := bucketIndex(v)
		if i < 0 || i >= HistBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		b := BucketBound(i)
		if b < v {
			t.Fatalf("BucketBound(bucketIndex(%d)) = %d < value", v, b)
		}
		if v >= 4 && float64(b) > float64(v)*1.25 {
			t.Fatalf("bound %d over-estimates %d by more than 25%%", b, v)
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for _, v := range []uint64{1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, math.MaxUint64} {
		check(v)
	}
	// Bucket bounds are strictly increasing.
	for i := 1; i < HistBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("BucketBound(%d)=%d <= BucketBound(%d)=%d", i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}
	if bucketIndex(math.MaxUint64) != HistBuckets-1 {
		t.Fatalf("max uint64 should land in the last bucket, got %d", bucketIndex(math.MaxUint64))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if q := h.Snapshot(); q.Quantile(0.5) != 0 || q.Count != 0 {
		t.Fatalf("empty histogram should report 0")
	}
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Fatalf("sum = %d, want 500500", s.Sum)
	}
	p50 := s.Quantile(0.5)
	if p50 < 500 || float64(p50) > 500*1.25 {
		t.Fatalf("p50 = %d, want ~500 within 25%%", p50)
	}
	p999 := s.Quantile(0.999)
	if p999 < 999 || float64(p999) > 1000*1.25 {
		t.Fatalf("p999 = %d, want ~999..1250", p999)
	}
	if got := s.Quantile(0); got > 1 {
		t.Fatalf("p0 = %d, want <= 1", got)
	}
	if m := s.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total").Add(1)
	r.Gauge("aaa_gauge").Set(5)
	r.Histogram("mmm_hist").Record(10)
	r.FloatGauge("bbb_ratio").Set(2.5)
	r.CounterFunc("sampled_total", func() uint64 { return 99 })
	s := r.Snapshot()
	var names []string
	for _, m := range s.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"aaa_gauge", "bbb_ratio", "mmm_hist", "sampled_total", "zzz_total"}
	if len(names) != len(want) {
		t.Fatalf("got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
	if s.Counter("sampled_total") != 99 {
		t.Fatalf("sampled counter = %d, want 99", s.Counter("sampled_total"))
	}
	if m, _ := s.Metric("bbb_ratio"); m.Float != 2.5 {
		t.Fatalf("float gauge = %v, want 2.5", m.Float)
	}
	// Re-requesting the same name returns the same metric.
	if r.Counter("zzz_total").Load() != 1 {
		t.Fatalf("counter identity lost")
	}
	// Kind clash panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("kind clash should panic")
			}
		}()
		r.Gauge("zzz_total")
	}()
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10000
	var writers, snapper sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot continuously while recording.
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Snapshot()
				if h := s.Hist("lat_us"); h != nil {
					var n uint64
					for _, b := range h.Buckets {
						n += b
					}
					if n != h.Count {
						panic("snapshot count != bucket sum")
					}
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			c := r.Counter("ops_total")
			h := r.Histogram("lat_us")
			ga := r.Gauge("depth")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Record(uint64(rng.Intn(1 << 20)))
				ga.Add(1)
				ga.Add(-1)
			}
		}(int64(g))
	}
	writers.Wait()
	close(stop)
	snapper.Wait()
	s := r.Snapshot()
	if got := s.Counter("ops_total"); got != goroutines*perG {
		t.Fatalf("ops_total = %d, want %d", got, goroutines*perG)
	}
	if h := s.Hist("lat_us"); h == nil || h.Count != goroutines*perG {
		t.Fatalf("lat_us count = %v, want %d", h, goroutines*perG)
	}
	if m, _ := s.Metric("depth"); m.Int != 0 {
		t.Fatalf("depth = %d, want 0", m.Int)
	}
}

func TestMergeAssociativity(t *testing.T) {
	mk := func(seed int64) Snapshot {
		r := NewRegistry()
		rng := rand.New(rand.NewSource(seed))
		c := r.Counter("ops_total")
		g := r.Gauge("entries")
		f := r.FloatGauge("amp")
		h := r.Histogram("lat_us")
		for i := 0; i < 1000; i++ {
			c.Inc()
			g.Add(int64(rng.Intn(10)))
			h.Record(uint64(rng.Intn(100000)))
		}
		f.Set(rng.Float64() * 4)
		return r.Snapshot()
	}
	a, b, c := mk(1), mk(2), mk(3)

	// Reference: everything recorded into metrics merged flat.
	flat := MergeMetrics(a, b, c)
	left := MergeMetrics(Snapshot{Metrics: MergeMetrics(a, b)}, c)
	right := MergeMetrics(a, Snapshot{Metrics: MergeMetrics(b, c)})

	equal := func(x, y []Metric) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].Name != y[i].Name || x[i].Kind != y[i].Kind ||
				x[i].Value != y[i].Value || x[i].Int != y[i].Int ||
				math.Abs(x[i].Float-y[i].Float) > 1e-12 {
				return false
			}
			if (x[i].Hist == nil) != (y[i].Hist == nil) {
				return false
			}
			if x[i].Hist != nil && *x[i].Hist != *y[i].Hist {
				return false
			}
		}
		return true
	}
	if !equal(flat, left) {
		t.Fatalf("merge not associative: flat != (a+b)+c")
	}
	if !equal(flat, right) {
		t.Fatalf("merge not associative: flat != a+(b+c)")
	}

	// The aggregate equals a single registry that saw all the samples.
	single := NewRegistry()
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		c := single.Counter("ops_total")
		g := single.Gauge("entries")
		h := single.Histogram("lat_us")
		for i := 0; i < 1000; i++ {
			c.Inc()
			g.Add(int64(rng.Intn(10)))
			h.Record(uint64(rng.Intn(100000)))
		}
		_ = rng.Float64()
	}
	ref := single.Snapshot()
	merged := Snapshot{Metrics: flat}
	if merged.Counter("ops_total") != ref.Counter("ops_total") {
		t.Fatalf("rolled-up counter %d != single-registry reference %d",
			merged.Counter("ops_total"), ref.Counter("ops_total"))
	}
	mh, rh := merged.Hist("lat_us"), ref.Hist("lat_us")
	if mh == nil || rh == nil || *mh != *rh {
		t.Fatalf("rolled-up histogram != single-registry reference")
	}
}

func TestRollupLabels(t *testing.T) {
	mk := func(n uint64) Snapshot {
		r := NewRegistry()
		r.Counter("q_total").Add(n)
		r.Counter(`transitions_total{to="degraded"}`).Add(1)
		return r.Snapshot()
	}
	roll := Rollup("shard", []Snapshot{mk(3), mk(5)})
	if got := roll.Counter("q_total"); got != 8 {
		t.Fatalf("aggregate = %d, want 8", got)
	}
	if got := roll.Counter(`q_total{shard="0"}`); got != 3 {
		t.Fatalf("shard 0 = %d, want 3", got)
	}
	if got := roll.Counter(`q_total{shard="1"}`); got != 5 {
		t.Fatalf("shard 1 = %d, want 5", got)
	}
	// A label added to an already-labeled name merges into the braces.
	if got := roll.Counter(`transitions_total{to="degraded",shard="1"}`); got != 1 {
		t.Fatalf("labeled merge = %d, want 1", got)
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("depth")
	f := r.FloatGauge("amp")
	h := r.Histogram("lat_us")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(12)
		f.Set(1.25)
		h.Record(137)
	})
	if allocs != 0 {
		t.Fatalf("recording allocated %v allocs/op, want 0", allocs)
	}
}

func TestEventsRing(t *testing.T) {
	ev := NewEvents(4)
	var heard []Event
	ev.SetListener(func(e Event) { heard = append(heard, e) })
	for i := 0; i < 6; i++ {
		kind := EvFlush
		if i%2 == 1 {
			kind = EvCompaction
		}
		ev.Emit(Event{Kind: kind, Phase: PhaseStart, Shard: i})
	}
	got := ev.Recent(nil)
	if len(got) != 4 {
		t.Fatalf("ring retained %d, want 4", len(got))
	}
	// Oldest-first, and the oldest two rotated out.
	for i, e := range got {
		if e.Seq != uint64(i+3) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i+3)
		}
		if e.Shard != i+2 {
			t.Fatalf("event %d shard = %d, want %d", i, e.Shard, i+2)
		}
	}
	if ev.Total() != 6 {
		t.Fatalf("total = %d, want 6", ev.Total())
	}
	if len(heard) != 6 {
		t.Fatalf("listener heard %d, want 6", len(heard))
	}
	if ev.InFlight(EvFlush) != 3 || ev.InFlight(EvCompaction) != 3 {
		t.Fatalf("inflight = %d/%d, want 3/3", ev.InFlight(EvFlush), ev.InFlight(EvCompaction))
	}
	ev.Emit(Event{Kind: EvFlush, Phase: PhaseEnd})
	if ev.InFlight(EvFlush) != 2 {
		t.Fatalf("inflight after end = %d, want 2", ev.InFlight(EvFlush))
	}
	ev.SetListener(nil)
	ev.Emit(Event{Kind: EvScrub, Phase: PhasePoint})
	if len(heard) != 7 {
		// 7 because the end event above was heard too; the point event
		// after removal must not be.
		t.Fatalf("listener heard %d after removal, want 7", len(heard))
	}
}

func TestEventTimeStamping(t *testing.T) {
	ev := NewEvents(0)
	before := time.Now()
	e := ev.Emit(Event{Kind: EvSnapshot, Phase: PhaseStart})
	if e.Time.Before(before) {
		t.Fatalf("emit did not stamp time")
	}
	fixed := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	e2 := ev.Emit(Event{Kind: EvSnapshot, Phase: PhaseEnd, Time: fixed})
	if !e2.Time.Equal(fixed) {
		t.Fatalf("emit overwrote preset time")
	}
	if e2.Seq != e.Seq+1 {
		t.Fatalf("sequence not increasing: %d then %d", e.Seq, e2.Seq)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(12)
	r.Gauge("depth").Set(-2)
	r.FloatGauge("amp").Set(1.75)
	h := r.Histogram("lat_us")
	for i := 0; i < 100; i++ {
		h.Record(uint64(i))
	}
	s := r.Snapshot()
	s.Events = append(s.Events, Event{
		Seq: 1, Time: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		Kind: EvFlush, Phase: PhaseEnd, Shard: -1, Dur: 1500 * time.Microsecond,
		Records: 10, Detail: `say "hi"`,
	})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Metrics map[string]json.RawMessage `json:"metrics"`
		Events  []map[string]any           `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if string(decoded.Metrics["ops_total"]) != "12" {
		t.Fatalf("ops_total = %s", decoded.Metrics["ops_total"])
	}
	var hist struct {
		Count uint64 `json:"count"`
		P99   uint64 `json:"p99"`
	}
	if err := json.Unmarshal(decoded.Metrics["lat_us"], &hist); err != nil {
		t.Fatalf("histogram JSON: %v", err)
	}
	if hist.Count != 100 {
		t.Fatalf("histogram count = %d, want 100", hist.Count)
	}
	if len(decoded.Events) != 1 || decoded.Events[0]["kind"] != "flush" {
		t.Fatalf("events = %v", decoded.Events)
	}
	if decoded.Events[0]["detail"] != `say "hi"` {
		t.Fatalf("detail escaping broken: %v", decoded.Events[0]["detail"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_queries_total").Add(5)
	r.Counter(`engine_queries_total{shard="1"}`).Add(2)
	r.Gauge("engine_segments").Set(3)
	h := r.Histogram(`engine_query_latency_us{shard="1"}`)
	h.Record(10)
	h.Record(200)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE engine_queries_total counter",
		"engine_queries_total 5",
		`engine_queries_total{shard="1"} 2`,
		"# TYPE engine_segments gauge",
		"engine_segments 3",
		"# TYPE engine_query_latency_us histogram",
		`engine_query_latency_us_count{shard="1"} 2`,
		`engine_query_latency_us_bucket{shard="1",le="+Inf"} 2`,
		`engine_query_latency_us_sum{shard="1"} 210`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per base name.
	if strings.Count(out, "# TYPE engine_queries_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
	// Bucket lines are cumulative: le bound for the second sample
	// includes the first.
	if !strings.Contains(out, `le="11"} 1`) {
		t.Fatalf("expected cumulative bucket for first sample:\n%s", out)
	}
}

func TestSortEventsByTime(t *testing.T) {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	events := []Event{
		{Seq: 2, Time: t0.Add(2 * time.Second)},
		{Seq: 1, Time: t0.Add(time.Second)},
		{Seq: 3, Time: t0.Add(time.Second)},
	}
	SortEventsByTime(events)
	if events[0].Seq != 1 || events[1].Seq != 3 || events[2].Seq != 2 {
		t.Fatalf("sort order wrong: %+v", events)
	}
}
