package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram covers the full uint64 range with a fixed bucket
// layout: values 0..3 get exact buckets, and every octave [2^o, 2^(o+1))
// for o >= 2 is split into 4 sub-buckets, bounding the relative
// quantile error at 25% while keeping the array small enough to embed
// everywhere. 4 exact + 4*62 octave buckets = 252 total.
const (
	histExact   = 4
	histOctaves = 62 // o = 2..63
	HistBuckets = histExact + 4*histOctaves
)

// Histogram is a fixed-bucket log-scale histogram of uint64 samples
// (latencies in microseconds, sizes in bytes, counts — anything
// non-negative). Record is lock-free and allocation-free. The zero
// value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// bucketIndex maps a sample to its bucket.
func bucketIndex(v uint64) int {
	if v < histExact {
		return int(v)
	}
	o := bits.Len64(v) - 1          // 2..63
	sub := (v >> (uint(o) - 2)) & 3 // top two bits below the leading one
	return histExact + 4*(o-2) + int(sub)
}

// BucketBound returns the inclusive upper bound of bucket i. Reported
// quantiles are bucket upper bounds, so they over-estimate by at most
// 25%.
func BucketBound(i int) uint64 {
	if i < histExact {
		return uint64(i)
	}
	i -= histExact
	o := uint(2 + i/4)
	sub := uint64(i % 4)
	lo := uint64(1)<<o + sub<<(o-2)
	return lo + uint64(1)<<(o-2) - 1
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot returns a copy of the current bucket counts. Count is
// derived from the buckets, so Count always equals the sum of Buckets
// even when snapped concurrently with Record; Sum may lag or lead by
// the in-flight samples.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state,
// mergeable with other snapshots of the same layout.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistBuckets]uint64
}

// Merge adds other's samples into s.
func (s *HistogramSnapshot) Merge(other *HistogramSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns the value at quantile q in [0, 1] as the upper bound
// of the bucket holding that rank, or 0 for an empty histogram.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// Mean returns the arithmetic mean of the recorded samples, or 0 for an
// empty histogram.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
