package curvetest

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// SortedRanges is the brute-force reference decomposition: enumerate
// every cell of r, sort the keys, split into maximal runs. Every planner
// and decomposition strategy must reproduce it bit for bit.
func SortedRanges(c curve.Curve, r geom.Rect) []curve.KeyRange {
	keys := make([]uint64, 0, r.Cells())
	r.ForEach(func(p geom.Point) bool {
		keys = append(keys, c.Index(p))
		return true
	})
	slices.Sort(keys)
	var out []curve.KeyRange
	for i, k := range keys {
		if i == 0 || keys[i-1]+1 != k {
			out = append(out, curve.KeyRange{Lo: k, Hi: k})
		} else {
			out[len(out)-1].Hi = k
		}
	}
	return out
}

// CheckDecomposition verifies an externally produced decomposition of r
// under c against the full conformance contract: the ranges must be
// sorted ascending, disjoint, non-adjacent (minimal), cover exactly the
// cells of r — bit-identical to the brute-force reference — and count
// must equal their number. It accepts output from any strategy
// (RangePlanner, boundary sweep, sorted fallback), which is what lets one
// harness run over curves that do not implement RangePlanner.
func CheckDecomposition(t *testing.T, c curve.Curve, r geom.Rect, got []curve.KeyRange, count uint64) {
	t.Helper()
	n := c.Universe().Size()
	var covered uint64
	for i, kr := range got {
		if kr.Lo > kr.Hi || kr.Hi >= n {
			t.Fatalf("%s %v: range %d = %v outside key space [0,%d)", c.Name(), r, i, kr, n)
		}
		if i > 0 && kr.Lo <= got[i-1].Hi {
			t.Fatalf("%s %v: ranges %v and %v unsorted or overlapping", c.Name(), r, got[i-1], kr)
		}
		if i > 0 && kr.Lo == got[i-1].Hi+1 {
			t.Fatalf("%s %v: ranges %v and %v adjacent (not minimal)", c.Name(), r, got[i-1], kr)
		}
		covered += kr.Cells()
	}
	if covered != r.Cells() {
		t.Fatalf("%s %v: ranges cover %d cells, query has %d", c.Name(), r, covered, r.Cells())
	}
	want := SortedRanges(c, r)
	if !slices.Equal(got, want) {
		t.Fatalf("%s %v: decomposition %v, want %v", c.Name(), r, got, want)
	}
	if count != uint64(len(want)) {
		t.Fatalf("%s %v: count %d, want %d", c.Name(), r, count, len(want))
	}
}

// CheckPlanner verifies a curve.RangePlanner implementation on one
// rectangle: DecomposeRect must satisfy the full conformance contract
// and ClusterCount must match it without materializing the ranges.
func CheckPlanner(t *testing.T, c curve.Curve, r geom.Rect) {
	t.Helper()
	p, ok := c.(curve.RangePlanner)
	if !ok {
		t.Fatalf("%s does not implement curve.RangePlanner", c.Name())
	}
	CheckDecomposition(t, c, r, p.DecomposeRect(r), p.ClusterCount(r))
}

// DegenerateRects returns the corner cases every planner must survive:
// single cells at the corners and center, the full universe, 1-wide
// slabs touching and centered in each dimension, and (side >= 3) the
// inset rectangle that exercises interior-containment fast paths.
func DegenerateRects(u geom.Universe) []geom.Rect {
	d := u.Dims()
	s := u.Side()
	var rs []geom.Rect
	corner := func(v uint32) geom.Rect {
		p := make(geom.Point, d)
		for i := range p {
			p[i] = v
		}
		return geom.Rect{Lo: p, Hi: p.Clone()}
	}
	rs = append(rs, corner(0), corner(s-1), corner(s/2), u.Rect())
	for dim := 0; dim < d; dim++ {
		for _, at := range []uint32{0, s - 1, s / 2} {
			r := u.Rect()
			r.Lo[dim], r.Hi[dim] = at, at
			rs = append(rs, r)
		}
	}
	if s >= 3 {
		r := u.Rect()
		for i := 0; i < d; i++ {
			r.Lo[i], r.Hi[i] = 1, s-2
		}
		rs = append(rs, r)
	}
	return rs
}

// RandomRect draws a uniformly random axis-aligned rectangle inside u.
func RandomRect(rng *rand.Rand, u geom.Universe) geom.Rect {
	d := u.Dims()
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		a := uint32(rng.Int31n(int32(u.Side())))
		b := uint32(rng.Int31n(int32(u.Side())))
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// ExercisePlanner runs CheckPlanner over every degenerate rectangle of
// the curve's universe plus trials seeded random rectangles — the
// standard conformance sweep for a RangePlanner implementation.
func ExercisePlanner(t *testing.T, c curve.Curve, trials int, seed int64) {
	t.Helper()
	u := c.Universe()
	for _, r := range DegenerateRects(u) {
		CheckPlanner(t, c, r)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		CheckPlanner(t, c, RandomRect(rng, u))
	}
}
