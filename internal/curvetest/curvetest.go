// Package curvetest provides reusable conformance checks for space filling
// curve implementations: bijectivity, continuity (Definition 1 of the
// paper), and round-trip properties. Both the baseline curves and the onion
// curves run this suite.
package curvetest

import (
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// CheckBijectionExhaustive verifies Index and Coords are mutually inverse
// over the entire universe. Intended for universes up to ~10^6 cells.
func CheckBijectionExhaustive(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	if n > 1<<21 {
		t.Fatalf("universe %v too large for exhaustive check", u)
	}
	seen := make([]bool, n)
	p := make(geom.Point, u.Dims())
	u.Rect().ForEach(func(q geom.Point) bool {
		h := c.Index(q)
		if h >= n {
			t.Fatalf("%s: Index(%v) = %d out of range", c.Name(), q, h)
		}
		if seen[h] {
			t.Fatalf("%s: Index(%v) = %d already used", c.Name(), q, h)
		}
		seen[h] = true
		back := c.Coords(h, p)
		if !back.Equal(q) {
			t.Fatalf("%s: Coords(Index(%v)) = %v", c.Name(), q, back)
		}
		return true
	})
	for h, ok := range seen {
		if !ok {
			t.Fatalf("%s: index %d never produced", c.Name(), h)
		}
	}
}

// CheckBijectionSampled verifies the round trip on random indices and random
// points; suitable for large universes.
func CheckBijectionSampled(t *testing.T, c curve.Curve, samples int, seed int64) {
	t.Helper()
	u := c.Universe()
	rng := rand.New(rand.NewSource(seed))
	n := u.Size()
	p := make(geom.Point, u.Dims())
	q := make(geom.Point, u.Dims())
	for i := 0; i < samples; i++ {
		h := uint64(rng.Int63n(int64(n)))
		c.Coords(h, p)
		if got := c.Index(p); got != h {
			t.Fatalf("%s: Index(Coords(%d)) = %d", c.Name(), h, got)
		}
		for j := range q {
			q[j] = uint32(rng.Int63n(int64(u.Side())))
		}
		h2 := c.Index(q)
		back := c.Coords(h2, p)
		if !back.Equal(q) {
			t.Fatalf("%s: Coords(Index(%v)) = %v (h=%d)", c.Name(), q, back, h2)
		}
	}
}

// CheckContinuityExhaustive verifies that consecutive positions along the
// curve map to grid neighbors (Definition 1), for the entire key range.
func CheckContinuityExhaustive(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	if n > 1<<21 {
		t.Fatalf("universe %v too large for exhaustive continuity check", u)
	}
	prev := c.Coords(0, nil)
	cur := make(geom.Point, u.Dims())
	for h := uint64(1); h < n; h++ {
		c.Coords(h, cur)
		if !AreNeighbors(prev, cur) {
			t.Fatalf("%s: cells %v (h=%d) and %v (h=%d) are not neighbors",
				c.Name(), prev, h-1, cur, h)
		}
		copy(prev, cur)
	}
}

// CheckContinuitySampled spot-checks continuity at random positions in a
// large universe.
func CheckContinuitySampled(t *testing.T, c curve.Curve, samples int, seed int64) {
	t.Helper()
	u := c.Universe()
	rng := rand.New(rand.NewSource(seed))
	n := u.Size()
	a := make(geom.Point, u.Dims())
	b := make(geom.Point, u.Dims())
	for i := 0; i < samples; i++ {
		h := uint64(rng.Int63n(int64(n - 1)))
		c.Coords(h, a)
		c.Coords(h+1, b)
		if !AreNeighbors(a, b) {
			t.Fatalf("%s: cells %v (h=%d) and %v not neighbors", c.Name(), a, h, b)
		}
	}
}

// AreNeighbors reports whether two cells differ by exactly 1 in exactly one
// dimension.
func AreNeighbors(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	diff := 0
	for i := range a {
		switch {
		case a[i] == b[i]:
		case a[i]+1 == b[i] || b[i]+1 == a[i]:
			diff++
		default:
			return false
		}
	}
	return diff == 1
}

// CheckPanicsOnBadInput verifies the documented panic behavior for invalid
// points and out-of-range indices.
func CheckPanicsOnBadInput(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	bad := make(geom.Point, u.Dims())
	bad[0] = u.Side() // one past the edge
	mustPanic(t, c.Name()+"/Index-out-of-range", func() { c.Index(bad) })
	mustPanic(t, c.Name()+"/Index-wrong-dims", func() { c.Index(make(geom.Point, u.Dims()+1)) })
	mustPanic(t, c.Name()+"/Coords-out-of-range", func() { c.Coords(u.Size(), nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}
