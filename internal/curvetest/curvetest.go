// Package curvetest provides reusable conformance checks for space filling
// curve implementations: bijectivity, continuity (Definition 1 of the
// paper), and round-trip properties. Both the baseline curves and the onion
// curves run this suite.
package curvetest

import (
	"math/rand"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// CheckBijectionExhaustive verifies Index and Coords are mutually inverse
// over the entire universe. Intended for universes up to ~10^6 cells.
func CheckBijectionExhaustive(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	if n > 1<<21 {
		t.Fatalf("universe %v too large for exhaustive check", u)
	}
	seen := make([]bool, n)
	p := make(geom.Point, u.Dims())
	u.Rect().ForEach(func(q geom.Point) bool {
		h := c.Index(q)
		if h >= n {
			t.Fatalf("%s: Index(%v) = %d out of range", c.Name(), q, h)
		}
		if seen[h] {
			t.Fatalf("%s: Index(%v) = %d already used", c.Name(), q, h)
		}
		seen[h] = true
		back := c.Coords(h, p)
		if !back.Equal(q) {
			t.Fatalf("%s: Coords(Index(%v)) = %v", c.Name(), q, back)
		}
		return true
	})
	for h, ok := range seen {
		if !ok {
			t.Fatalf("%s: index %d never produced", c.Name(), h)
		}
	}
}

// CheckBijectionSampled verifies the round trip on random indices and random
// points; suitable for large universes.
func CheckBijectionSampled(t *testing.T, c curve.Curve, samples int, seed int64) {
	t.Helper()
	u := c.Universe()
	rng := rand.New(rand.NewSource(seed))
	n := u.Size()
	p := make(geom.Point, u.Dims())
	q := make(geom.Point, u.Dims())
	for i := 0; i < samples; i++ {
		h := uint64(rng.Int63n(int64(n)))
		c.Coords(h, p)
		if got := c.Index(p); got != h {
			t.Fatalf("%s: Index(Coords(%d)) = %d", c.Name(), h, got)
		}
		for j := range q {
			q[j] = uint32(rng.Int63n(int64(u.Side())))
		}
		h2 := c.Index(q)
		back := c.Coords(h2, p)
		if !back.Equal(q) {
			t.Fatalf("%s: Coords(Index(%v)) = %v (h=%d)", c.Name(), q, back, h2)
		}
	}
}

// CheckContinuityExhaustive verifies that consecutive positions along the
// curve map to grid neighbors (Definition 1), for the entire key range.
func CheckContinuityExhaustive(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	if n > 1<<21 {
		t.Fatalf("universe %v too large for exhaustive continuity check", u)
	}
	prev := c.Coords(0, nil)
	cur := make(geom.Point, u.Dims())
	for h := uint64(1); h < n; h++ {
		c.Coords(h, cur)
		if !AreNeighbors(prev, cur) {
			t.Fatalf("%s: cells %v (h=%d) and %v (h=%d) are not neighbors",
				c.Name(), prev, h-1, cur, h)
		}
		copy(prev, cur)
	}
}

// CheckContinuitySampled spot-checks continuity at random positions in a
// large universe.
func CheckContinuitySampled(t *testing.T, c curve.Curve, samples int, seed int64) {
	t.Helper()
	u := c.Universe()
	rng := rand.New(rand.NewSource(seed))
	n := u.Size()
	a := make(geom.Point, u.Dims())
	b := make(geom.Point, u.Dims())
	for i := 0; i < samples; i++ {
		h := uint64(rng.Int63n(int64(n - 1)))
		c.Coords(h, a)
		c.Coords(h+1, b)
		if !AreNeighbors(a, b) {
			t.Fatalf("%s: cells %v (h=%d) and %v not neighbors", c.Name(), a, h, b)
		}
	}
}

// AreNeighbors reports whether two cells differ by exactly 1 in exactly one
// dimension.
func AreNeighbors(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	diff := 0
	for i := range a {
		switch {
		case a[i] == b[i]:
		case a[i]+1 == b[i] || b[i]+1 == a[i]:
			diff++
		default:
			return false
		}
	}
	return diff == 1
}

// CheckWalker verifies a full walk from key 0 against the scalar Coords
// mapping: every key in order, every cell identical, exhaustion exactly at
// Size(). Intended for universes up to ~10^6 cells.
func CheckWalker(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	if n > 1<<21 {
		t.Fatalf("universe %v too large for exhaustive walker check", u)
	}
	w := curve.NewWalker(c, 0)
	want := make(geom.Point, u.Dims())
	for h := uint64(0); h < n; h++ {
		gh, p, ok := w.Next()
		if !ok {
			t.Fatalf("%s: walker exhausted at %d of %d", c.Name(), h, n)
		}
		if gh != h {
			t.Fatalf("%s: walker key %d, want %d", c.Name(), gh, h)
		}
		c.Coords(h, want)
		if !p.Equal(want) {
			t.Fatalf("%s: walker cell at %d = %v, want %v", c.Name(), h, p, want)
		}
	}
	if _, _, ok := w.Next(); ok {
		t.Fatalf("%s: walker did not exhaust after %d cells", c.Name(), n)
	}
}

// CheckWalkerSeeded verifies walkers seeded at random keys: each must
// reproduce the scalar mapping for a window of steps and exhaust exactly
// at the end of the curve. A walker seeded at Size() must be empty.
func CheckWalkerSeeded(t *testing.T, c curve.Curve, samples, window int, seed int64) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	rng := rand.New(rand.NewSource(seed))
	want := make(geom.Point, u.Dims())
	for i := 0; i < samples; i++ {
		start := uint64(rng.Int63n(int64(n)))
		w := curve.NewWalker(c, start)
		for k := 0; k < window; k++ {
			h := start + uint64(k)
			gh, p, ok := w.Next()
			if h >= n {
				if ok {
					t.Fatalf("%s: walker from %d returned key %d beyond size %d", c.Name(), start, gh, n)
				}
				break
			}
			if !ok || gh != h {
				t.Fatalf("%s: walker from %d: step %d gave (%d,%v), want key %d", c.Name(), start, k, gh, ok, h)
			}
			c.Coords(h, want)
			if !p.Equal(want) {
				t.Fatalf("%s: walker from %d: cell at %d = %v, want %v", c.Name(), start, h, p, want)
			}
		}
	}
	if _, _, ok := curve.NewWalker(c, n).Next(); ok {
		t.Fatalf("%s: walker seeded at Size() is not empty", c.Name())
	}
}

// CheckBatch cross-validates IndexBatch and CoordsBatch against the scalar
// mappings on random keys, and verifies that correctly sized destinations
// are reused rather than reallocated.
func CheckBatch(t *testing.T, c curve.Curve, samples int, seed int64) {
	t.Helper()
	u := c.Universe()
	n := u.Size()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, samples)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(int64(n)))
	}
	pts := curve.CoordsBatch(c, keys, nil)
	want := make(geom.Point, u.Dims())
	for i, h := range keys {
		c.Coords(h, want)
		if !pts[i].Equal(want) {
			t.Fatalf("%s: CoordsBatch[%d] = %v, want %v (h=%d)", c.Name(), i, pts[i], want, h)
		}
	}
	back := curve.IndexBatch(c, pts, nil)
	for i := range keys {
		if back[i] != keys[i] {
			t.Fatalf("%s: IndexBatch(CoordsBatch(%d)) = %d", c.Name(), keys[i], back[i])
		}
	}
	// Right-sized destinations must be filled in place.
	if got := curve.IndexBatch(c, pts, back); &got[0] != &back[0] {
		t.Fatalf("%s: IndexBatch reallocated a right-sized dst", c.Name())
	}
	if got := curve.CoordsBatch(c, keys, pts); &got[0] != &pts[0] {
		t.Fatalf("%s: CoordsBatch reallocated a right-sized dst", c.Name())
	}
}

// CheckRuns verifies a curve.RunVisitor implementation: expanding the runs
// and irregular edges of the full range (and of sampled sub-ranges) must
// reproduce exactly the scalar edge sequence (Coords(h), Coords(h+1)).
func CheckRuns(t *testing.T, c curve.Curve, seed int64) {
	t.Helper()
	rv, ok := c.(curve.RunVisitor)
	if !ok {
		t.Fatalf("%s does not implement curve.RunVisitor", c.Name())
	}
	u := c.Universe()
	n := u.Size()
	if n > 1<<21 {
		t.Fatalf("universe %v too large for exhaustive run check", u)
	}
	if n < 2 {
		return
	}
	ranges := [][2]uint64{{0, n - 1}}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 8; i++ {
		lo := uint64(rng.Int63n(int64(n - 1)))
		hi := lo + uint64(rng.Int63n(int64(n-1-lo)+1))
		ranges = append(ranges, [2]uint64{lo, hi})
	}
	wantA := make(geom.Point, u.Dims())
	wantB := make(geom.Point, u.Dims())
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		pos := lo
		checkEdge := func(a, b geom.Point) {
			if pos >= hi {
				t.Fatalf("%s: VisitRuns(%d,%d) produced extra edge %v->%v", c.Name(), lo, hi, a, b)
			}
			c.Coords(pos, wantA)
			c.Coords(pos+1, wantB)
			if !a.Equal(wantA) || !b.Equal(wantB) {
				t.Fatalf("%s: VisitRuns(%d,%d) edge %d = %v->%v, want %v->%v",
					c.Name(), lo, hi, pos, a, b, wantA, wantB)
			}
			pos++
		}
		cur := make(geom.Point, u.Dims())
		nxt := make(geom.Point, u.Dims())
		rv.VisitRuns(lo, hi,
			func(start geom.Point, dim, dir int, edges uint64) {
				if dir != 1 && dir != -1 {
					t.Fatalf("%s: run with dir %d", c.Name(), dir)
				}
				copy(cur, start)
				for e := uint64(0); e < edges; e++ {
					copy(nxt, cur)
					if dir > 0 {
						nxt[dim]++
					} else {
						nxt[dim]--
					}
					checkEdge(cur, nxt)
					copy(cur, nxt)
				}
			},
			checkEdge)
		if pos != hi {
			t.Fatalf("%s: VisitRuns(%d,%d) covered %d edges, want %d", c.Name(), lo, hi, pos-lo, hi-lo)
		}
	}
}

// CheckPanicsOnBadInput verifies the documented panic behavior for invalid
// points and out-of-range indices.
func CheckPanicsOnBadInput(t *testing.T, c curve.Curve) {
	t.Helper()
	u := c.Universe()
	bad := make(geom.Point, u.Dims())
	bad[0] = u.Side() // one past the edge
	mustPanic(t, c.Name()+"/Index-out-of-range", func() { c.Index(bad) })
	mustPanic(t, c.Name()+"/Index-wrong-dims", func() { c.Index(make(geom.Point, u.Dims()+1)) })
	mustPanic(t, c.Name()+"/Coords-out-of-range", func() { c.Coords(u.Size(), nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}
