package core

import (
	"errors"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
	"github.com/onioncurve/onion/internal/geom"
)

func TestOnion3DSegmentOrderValidation(t *testing.T) {
	if _, err := NewOnion3DWithSegmentOrder(8, [10]int{1, 1, 2, 3, 4, 5, 6, 7, 8, 9}); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("duplicate segment accepted")
	}
	if _, err := NewOnion3DWithSegmentOrder(8, [10]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("segment 0 accepted")
	}
	if _, err := NewOnion3DWithSegmentOrder(8, [10]int{11, 1, 2, 3, 4, 5, 6, 7, 8, 9}); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("segment 11 accepted")
	}
}

func TestOnion3DPermutedBijection(t *testing.T) {
	perms := [][10]int{
		{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{9, 1, 3, 4, 5, 2, 6, 7, 8, 10},
		{2, 4, 6, 8, 10, 1, 3, 5, 7, 9},
	}
	for _, perm := range perms {
		for _, side := range []uint32{2, 4, 8, 16} {
			o, err := NewOnion3DWithSegmentOrder(side, perm)
			if err != nil {
				t.Fatal(err)
			}
			curvetest.CheckBijectionExhaustive(t, o)
		}
	}
}

func TestOnion3DPermutedLayerMonotone(t *testing.T) {
	o, err := NewOnion3DWithSegmentOrder(12, [10]int{10, 9, 8, 7, 6, 5, 4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	n := o.Universe().Size()
	p := make(geom.Point, 3)
	prev := uint32(0)
	for h := uint64(0); h < n; h++ {
		o.Coords(h, p)
		l := o.Layer(p)
		if l < prev {
			t.Fatalf("layer drops from %d to %d at h=%d", prev, l, h)
		}
		prev = l
	}
}

func TestOnion3DPermutedSameLayerContents(t *testing.T) {
	// Whatever the permutation, each layer occupies the same contiguous
	// key span.
	a, _ := NewOnion3D(8)
	b, _ := NewOnion3DWithSegmentOrder(8, [10]int{5, 6, 7, 8, 9, 10, 1, 2, 3, 4})
	p := make(geom.Point, 3)
	q := make(geom.Point, 3)
	for h := uint64(0); h < a.Universe().Size(); h++ {
		a.Coords(h, p)
		b.Coords(h, q)
		if a.Layer(p) != b.Layer(q) {
			t.Fatalf("position %d: layer %d vs %d", h, a.Layer(p), b.Layer(q))
		}
	}
}
