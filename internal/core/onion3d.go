package core

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// Onion3D is the three-dimensional onion curve of Section VI-A. Writing
// s = 2m for the (even) side, layer t (1-based, t in [1, m]) consists of
// the cells whose L-infinity distance to the universe boundary is t-1. The
// curve numbers layer 1 completely, then layer 2, and so on; within a layer
// the ten segments S1..S10 of the paper are numbered in order, squares by
// the two-dimensional onion curve and lines by their natural order.
//
// The paper notes the within-layer segment order is immaterial ("we can
// actually adopt any permutation"); this implementation fixes the paper's
// S1..S10 sequence with the local coordinate conventions documented on
// segmentOf.
type Onion3D struct {
	curve.Base
	m uint32 // half side
	// perm[i] is the i-th segment (1..10) visited within each layer; the
	// paper proves any permutation preserves the clustering guarantees
	// ("we can actually adopt any permutation on that", Section VI-A).
	perm [10]int
	// rank[g-1] is the visit position of segment g.
	rank [10]int
}

// NewOnion3D constructs the three-dimensional onion curve with the paper's
// S1..S10 segment order; the side must be even and at least 2 (the paper's
// model).
func NewOnion3D(side uint32) (*Onion3D, error) {
	return NewOnion3DWithSegmentOrder(side, [10]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}

// NewOnion3DWithSegmentOrder constructs a 3D onion curve that visits the
// ten within-layer segments in the given order — the ablation knob for the
// paper's claim that the segment permutation is immaterial.
func NewOnion3DWithSegmentOrder(side uint32, perm [10]int) (*Onion3D, error) {
	if side < 2 || side%2 != 0 {
		return nil, fmt.Errorf("onion3d: %w: side must be even and >= 2, got %d",
			curve.ErrSideUnsupported, side)
	}
	u, err := geom.NewUniverse(3, side)
	if err != nil {
		return nil, fmt.Errorf("onion3d: %w", err)
	}
	var seen [10]bool
	var rank [10]int
	for pos, g := range perm {
		if g < 1 || g > 10 || seen[g-1] {
			return nil, fmt.Errorf("onion3d: %w: invalid segment permutation %v",
				curve.ErrSideUnsupported, perm)
		}
		seen[g-1] = true
		rank[g-1] = pos
	}
	return &Onion3D{
		Base: curve.Base{U: u, Id: "onion", Cont: false},
		m:    side / 2,
		perm: perm,
		rank: rank,
	}, nil
}

// Layer returns the paper's 1-based layer number of cell p.
func (o *Onion3D) Layer(p geom.Point) uint32 {
	o.CheckPoint(p)
	return o.layerOf(p) + 1
}

// layerOf returns the 0-based distance to the boundary.
func (o *Onion3D) layerOf(p geom.Point) uint32 {
	s := o.U.Side()
	t := p[0]
	for _, v := range p {
		if s-1-v < t {
			t = s - 1 - v
		}
		if v < t {
			t = v
		}
	}
	return t
}

// k1 returns the number of cells in layers 1..t-1 (t is 1-based): the total
// cube minus the sub-cube of side w = s-2(t-1), equal to the paper's
// K1(t) = 24 m^2 (t-1) - 24 m (t-1)^2 + 8 (t-1)^3.
func (o *Onion3D) k1(t uint32) uint64 {
	return cellsBeforeLayer3(o.U.Side(), t)
}

// cellsBeforeLayer3 is k1 as a free function on an s-side cube.
func cellsBeforeLayer3(s, t uint32) uint64 {
	s64 := uint64(s)
	w := s64 - 2*uint64(t-1)
	return s64*s64*s64 - w*w*w
}

// layerFromIndex3 returns the 1-based layer t with k1(t) <= h < k1(t+1),
// entirely in integer arithmetic: k1(t) <= h is equivalent to
// (s-2(t-1))^3 >= s^3-h, so t follows from the ceiling cube root of s^3-h
// rounded up to the parity of s (the side is even, so every layer cube side
// is even too). m is the layer count s/2.
func layerFromIndex3(s, m uint32, h uint64) uint32 {
	s64 := uint64(s)
	d := s64*s64*s64 - h // >= 1 because h < s^3
	w := curve.Icbrt(d)
	if w*w*w < d {
		w++ // ceil(cbrt(d))
	}
	if (s64-w)&1 == 1 {
		w++ // layer cube sides share the parity of s
	}
	t := (s64-w)/2 + 1
	if t < 1 {
		t = 1
	}
	if t > uint64(m) {
		t = uint64(m)
	}
	return uint32(t)
}

// Segment sizes within a layer of cube side w (w >= 2):
//
//	V1 = V2 = w^2          (full faces i = lo and i = hi)
//	V3 = V5 = V6 = V8 = w-2  (the four lines along i)
//	V4 = V7 = V9 = V10 = (w-2)^2 (the four side squares)
func segSize(g int, w uint32) uint64 {
	in := uint64(w) - 2
	switch g {
	case 1, 2:
		return uint64(w) * uint64(w)
	case 3, 5, 6, 8:
		return in
	default: // 4, 7, 9, 10
		return in * in
	}
}

// Index implements curve.Curve.
func (o *Onion3D) Index(p geom.Point) uint64 {
	o.CheckPoint(p)
	t0 := o.layerOf(p) // 0-based
	s := o.U.Side()
	lo := t0
	w := s - 2*t0
	li, lj, lk := p[0]-lo, p[1]-lo, p[2]-lo
	g, r := segmentOf(w, li, lj, lk)
	base := o.k1(t0 + 1)
	for pos := 0; pos < o.rank[g-1]; pos++ {
		base += segSize(o.perm[pos], w)
	}
	return base + r
}

// segmentOf classifies the local cell (li, lj, lk) of a layer cube of side
// w into its segment 1..10 and position within the segment.
//
// Local coordinate conventions: S1/S2 squares use (lj, lk) under the 2D
// onion curve of side w; S4/S7 squares use (li-1, lk-1) of side w-2; S9/S10
// squares use (li-1, lj-1) of side w-2; lines S3/S5/S6/S8 are ordered by
// increasing li.
func segmentOf(w, li, lj, lk uint32) (int, uint64) {
	switch {
	case li == 0:
		return 1, onionIndex2(w, lj, lk)
	case li == w-1:
		return 2, onionIndex2(w, lj, lk)
	case lj == 0 && lk == 0:
		return 3, uint64(li - 1)
	case lj == 0 && lk == w-1:
		return 5, uint64(li - 1)
	case lj == 0:
		return 4, onionIndex2(w-2, li-1, lk-1)
	case lj == w-1 && lk == 0:
		return 6, uint64(li - 1)
	case lj == w-1 && lk == w-1:
		return 8, uint64(li - 1)
	case lj == w-1:
		return 7, onionIndex2(w-2, li-1, lk-1)
	case lk == 0:
		return 9, onionIndex2(w-2, li-1, lj-1)
	default: // lk == w-1
		return 10, onionIndex2(w-2, li-1, lj-1)
	}
}

// Coords implements curve.Curve.
func (o *Onion3D) Coords(h uint64, dst geom.Point) geom.Point {
	o.CheckIndex(h)
	p := curve.Dst(dst, 3)
	s := o.U.Side()
	t := layerFromIndex3(s, o.m, h)
	lo := t - 1
	w := s - 2*(t-1)
	r := h - o.k1(t)
	g := o.perm[9]
	for pos := 0; pos < 10; pos++ {
		sz := segSize(o.perm[pos], w)
		if r < sz {
			g = o.perm[pos]
			break
		}
		r -= sz
	}
	li, lj, lk := segmentCoords(g, w, r)
	p[0], p[1], p[2] = li+lo, lj+lo, lk+lo
	return p
}

// segmentCoords inverts segmentOf.
func segmentCoords(g int, w uint32, r uint64) (li, lj, lk uint32) {
	switch g {
	case 1, 2:
		a, b := onionCoords2(w, r)
		li = 0
		if g == 2 {
			li = w - 1
		}
		return li, a, b
	case 3:
		return uint32(r) + 1, 0, 0
	case 5:
		return uint32(r) + 1, 0, w - 1
	case 6:
		return uint32(r) + 1, w - 1, 0
	case 8:
		return uint32(r) + 1, w - 1, w - 1
	case 4, 7:
		a, b := onionCoords2(w-2, r)
		lj = 0
		if g == 7 {
			lj = w - 1
		}
		return a + 1, lj, b + 1
	default: // 9, 10
		a, b := onionCoords2(w-2, r)
		lk = 0
		if g == 10 {
			lk = w - 1
		}
		return a + 1, b + 1, lk
	}
}

var _ curve.Curve = (*Onion3D)(nil)
