package core

import (
	"github.com/onioncurve/onion/internal/geom"
)

// Jumps returns, in increasing order, every curve position h such that the
// step from pi^-1(h) to pi^-1(h+1) is NOT a grid-neighbor move. The 3D
// onion curve is "almost continuous" (Section VI-C): discontinuities can
// only occur at segment boundaries (at most 10 per layer) and at layer
// boundaries, so the list has O(m) entries. This powers the boundary-based
// clustering counter for queries far too large to enumerate.
func (o *Onion3D) Jumps() []uint64 {
	var jumps []uint64
	s := o.U.Side()
	n := o.U.Size()
	a := make(geom.Point, 3)
	b := make(geom.Point, 3)
	for t := uint32(1); t <= o.m; t++ {
		w := s - 2*(t-1)
		base := o.k1(t)
		cum := base
		for pos := 0; pos < 10; pos++ {
			sz := segSize(o.perm[pos], w)
			if sz == 0 {
				continue
			}
			cum += sz
			// cum-1 is the last cell of segment g; check its transition.
			if cum-1+1 >= n {
				continue
			}
			o.Coords(cum-1, a)
			o.Coords(cum, b)
			if !neighbors3(a, b) {
				jumps = append(jumps, cum-1)
			}
		}
	}
	return jumps
}

func neighbors3(a, b geom.Point) bool {
	diff := 0
	for i := range a {
		switch {
		case a[i] == b[i]:
		case a[i]+1 == b[i] || b[i]+1 == a[i]:
			diff++
		default:
			return false
		}
	}
	return diff == 1
}
