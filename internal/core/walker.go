package core

// Incremental walkers for the onion-family curves. The scalar Coords path
// re-solves the ring quadratic (2D), the layer cubic (3D) or a layer binary
// search (ND, LayerLex) for every key; the walkers carry the decoded
// ring/segment/layer state across steps so a whole-curve sweep costs
// amortized O(1) per cell after an O(1) (2D/3D) or O(log s) (ND) seek.

import (
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// square2 steps through the 2D onion order of an s x s square, tracking the
// current ring and the position within it. It is the engine of the Onion2D
// walker and of the square segments (S1/S2, S4/S7, S9/S10) of the 3D
// walker. Callers must not step past the last cell of the square.
type square2 struct {
	s    uint32 // square side
	t    uint32 // current ring
	jm   uint64 // ring side minus one (0 for a 1x1 center)
	r    uint64 // position within the ring
	a, b uint32 // current cell, absolute within the square
}

// seek positions the stepper at overall 2D onion index h of side s.
func (q *square2) seek(s uint32, h uint64) {
	t := ringFromIndex2(s, h)
	q.s = s
	q.t = t
	q.jm = uint64(s-2*t) - 1
	q.r = h - cellsBeforeRing2(s, t)
	q.setFromR()
}

// setFromR derives the cell from the within-ring position (the five-case
// formula of onionCoords2, with the ring already known).
func (q *square2) setFromR() {
	t, jm, r := q.t, q.jm, q.r
	switch {
	case r <= jm:
		q.a, q.b = t+uint32(r), t
	case r <= 2*jm:
		q.a, q.b = t+uint32(jm), t+uint32(r-jm)
	case r <= 3*jm:
		q.a, q.b = t+uint32(3*jm-r), t+uint32(jm)
	default:
		q.a, q.b = t, t+uint32(4*jm-r)
	}
}

// step advances one cell along the square's onion order.
func (q *square2) step() {
	q.r++
	if q.jm == 0 || q.r == 4*q.jm {
		// Ring exhausted: move inward. The caller guarantees the inner
		// ring exists (the stepper is never advanced past the last cell).
		q.t++
		q.jm = uint64(q.s-2*q.t) - 1
		q.r = 0
		q.a, q.b = q.t, q.t
		return
	}
	q.setFromR()
}

// onion2Walker is the incremental Walker of the 2D onion curve.
type onion2Walker struct {
	h, n uint64
	sq   square2
	p    geom.Point
}

// Walk implements curve.WalkerProvider.
func (o *Onion2D) Walk(start uint64) curve.Walker {
	n := o.U.Size()
	if start > n {
		o.CheckIndex(start) // panics with the standard message
	}
	w := &onion2Walker{h: start, n: n, p: make(geom.Point, 2)}
	if start < n {
		w.sq.seek(o.U.Side(), start)
	}
	return w
}

func (w *onion2Walker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	w.p[0], w.p[1] = w.sq.a, w.sq.b
	h := w.h
	w.h++
	if w.h < w.n {
		w.sq.step()
	}
	return h, w.p, true
}

// VisitRuns implements curve.RunVisitor: every ring contributes four
// straight runs plus a one-edge inward transition, so the whole curve is
// O(s) runs and has no irregular edges (the 2D onion curve is continuous).
func (o *Onion2D) VisitRuns(lo, hi uint64, run func(start geom.Point, dim, dir int, edges uint64), edge func(a, b geom.Point)) {
	_ = edge // continuous: no irregular edges
	s := o.U.Side()
	n := o.U.Size()
	if hi >= n {
		hi = n - 1
	}
	p := make(geom.Point, 2)
	h := lo
	for h < hi {
		t := ringFromIndex2(s, h)
		base := cellsBeforeRing2(s, t)
		j := uint64(s - 2*t)
		if j <= 1 {
			break // 1x1 center: no outgoing edges
		}
		jm := j - 1
		end := base + 4*jm // exclusive bound of this ring's edge keys
		if end > hi {
			end = hi
		}
		tj := t + uint32(jm)
		// Runs in within-ring edge space [0, 4jm): the four sides, then
		// the single inward transition edge (t,t+1) -> (t+1,t+1). For the
		// innermost even ring the transition edge does not exist, but
		// there hi <= n-1 already excludes it.
		segs := [5]struct {
			k0, len  uint64
			dim, dir int
			x, y     uint32
		}{
			{0, jm, 0, +1, t, t},
			{jm, jm, 1, +1, tj, t},
			{2 * jm, jm, 0, -1, tj, tj},
			{3 * jm, jm - 1, 1, -1, t, tj},
			{4*jm - 1, 1, 0, +1, t, t + 1},
		}
		for _, sg := range segs {
			a := base + sg.k0
			b := a + sg.len
			if a < h {
				a = h
			}
			if b > end {
				b = end
			}
			if a >= b {
				continue
			}
			off := uint32(a - (base + sg.k0))
			x, y := sg.x, sg.y
			if sg.dim == 0 {
				if sg.dir > 0 {
					x += off
				} else {
					x -= off
				}
			} else {
				if sg.dir > 0 {
					y += off
				} else {
					y -= off
				}
			}
			p[0], p[1] = x, y
			run(p, sg.dim, sg.dir, b-a)
		}
		h = end
	}
}

// onion3Walker steps the 3D onion curve: layer by layer, segment by
// segment in the curve's permutation order, with a square2 stepping the 2D
// onion sub-squares.
type onion3Walker struct {
	o          *Onion3D
	h, n       uint64
	t0         uint32 // 0-based layer
	w          uint32 // layer cube side
	pos        int    // index into the segment permutation
	g          int    // current segment id (1..10)
	r, sz      uint64 // position within and size of the segment
	sq         square2
	li, lj, lk uint32 // current cell, local to the layer cube
	p          geom.Point
}

// Walk implements curve.WalkerProvider.
func (o *Onion3D) Walk(start uint64) curve.Walker {
	n := o.U.Size()
	if start > n {
		o.CheckIndex(start)
	}
	w := &onion3Walker{o: o, h: start, n: n, p: make(geom.Point, 3)}
	if start < n {
		w.seek(start)
	}
	return w
}

func (w *onion3Walker) seek(h uint64) {
	s := w.o.U.Side()
	t := layerFromIndex3(s, w.o.m, h) // 1-based
	w.t0 = t - 1
	w.w = s - 2*w.t0
	r := h - cellsBeforeLayer3(s, t)
	for pos := 0; pos < 10; pos++ {
		g := w.o.perm[pos]
		sz := segSize(g, w.w)
		if r < sz {
			w.pos, w.g, w.sz, w.r = pos, g, sz, r
			w.setSegCell()
			return
		}
		r -= sz
	}
}

// setSegCell derives the local cell from the current segment and the
// within-segment position w.r (the inverse conventions of segmentCoords).
func (w *onion3Walker) setSegCell() {
	switch w.g {
	case 1, 2:
		w.sq.seek(w.w, w.r)
		w.li = 0
		if w.g == 2 {
			w.li = w.w - 1
		}
		w.lj, w.lk = w.sq.a, w.sq.b
	case 3:
		w.li, w.lj, w.lk = uint32(w.r)+1, 0, 0
	case 5:
		w.li, w.lj, w.lk = uint32(w.r)+1, 0, w.w-1
	case 6:
		w.li, w.lj, w.lk = uint32(w.r)+1, w.w-1, 0
	case 8:
		w.li, w.lj, w.lk = uint32(w.r)+1, w.w-1, w.w-1
	case 4, 7:
		w.sq.seek(w.w-2, w.r)
		w.lj = 0
		if w.g == 7 {
			w.lj = w.w - 1
		}
		w.li, w.lk = w.sq.a+1, w.sq.b+1
	default: // 9, 10
		w.sq.seek(w.w-2, w.r)
		w.lk = 0
		if w.g == 10 {
			w.lk = w.w - 1
		}
		w.li, w.lj = w.sq.a+1, w.sq.b+1
	}
}

func (w *onion3Walker) advance() {
	w.r++
	if w.r < w.sz {
		switch w.g {
		case 1, 2:
			w.sq.step()
			w.lj, w.lk = w.sq.a, w.sq.b
		case 4, 7:
			w.sq.step()
			w.li, w.lk = w.sq.a+1, w.sq.b+1
		case 9, 10:
			w.sq.step()
			w.li, w.lj = w.sq.a+1, w.sq.b+1
		default: // 3, 5, 6, 8: a line along the first axis
			w.li++
		}
		return
	}
	// Segment exhausted: next non-empty segment, possibly next layer. The
	// caller guarantees another cell exists (h < n).
	w.pos++
	for {
		if w.pos == 10 {
			w.t0++
			w.w -= 2
			w.pos = 0
		}
		g := w.o.perm[w.pos]
		sz := segSize(g, w.w)
		if sz > 0 {
			w.g, w.sz, w.r = g, sz, 0
			break
		}
		w.pos++
	}
	w.setSegCell()
}

func (w *onion3Walker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	w.p[0], w.p[1], w.p[2] = w.li+w.t0, w.lj+w.t0, w.lk+w.t0
	h := w.h
	w.h++
	if w.h < w.n {
		w.advance()
	}
	return h, w.p, true
}

// ndCube and ndShell form the incremental walker of the d-dimensional
// onion order: a cube iterates its layers, each layer being a shell; a
// shell iterates its two full faces (each a (d-1)-cube in onion order) and
// then its tube slice by slice (each a (d-1)-shell). One cube and one
// shell object exist per dimensionality and are shared across the
// recursion — at most one walker per level is active at any time.
type ndCube struct {
	d      int
	y      []uint32 // the trailing d coordinates of the full cell
	w, off uint32
	t      uint32 // current layer
	ws     uint32 // current shell side, w - 2t
	shell  *ndShell
}

type ndShell struct {
	d      int
	y      []uint32
	w, off uint32
	phase  int    // 0: low face, 1: high face, 2: tube
	ly     uint32 // tube slice, local in [1, w-2]
	face   *ndCube
	tube   *ndShell
}

// newNDCubeWalker wires the per-level cube/shell pairs over a shared
// coordinate buffer and returns the top-level cube.
func newNDCubeWalker(d int) *ndCube {
	y := make([]uint32, d)
	var prevCube *ndCube
	var prevShell *ndShell
	for dims := 1; dims <= d; dims++ {
		sub := y[d-dims:]
		sh := &ndShell{d: dims, y: sub, face: prevCube, tube: prevShell}
		cu := &ndCube{d: dims, y: sub, shell: sh}
		prevCube, prevShell = cu, sh
	}
	return prevCube
}

// reset positions the cube walker at the first cell of the cube of side w
// at offset off (filling y).
func (c *ndCube) reset(w, off uint32) {
	c.w, c.off = w, off
	c.t, c.ws = 0, w
	c.shell.reset(w, off)
}

// next advances one cell; false once the cube is exhausted.
func (c *ndCube) next() bool {
	if c.shell.next() {
		return true
	}
	if c.ws <= 2 {
		return false
	}
	c.t++
	c.ws -= 2
	c.shell.reset(c.ws, c.off+c.t)
	return true
}

// seek positions the cube walker at cube-order index h.
func (c *ndCube) seek(w, off uint32, h uint64) {
	c.w, c.off = w, off
	total := powU(w, c.d)
	loT, hiT := uint32(0), (w-1)/2
	for loT < hiT {
		mid := (loT + hiT + 1) / 2
		if total-powU(w-2*mid, c.d) <= h {
			loT = mid
		} else {
			hiT = mid - 1
		}
	}
	c.t = loT
	c.ws = w - 2*c.t
	c.shell.seek(c.ws, off+c.t, h-(total-powU(c.ws, c.d)))
}

func (s *ndShell) reset(w, off uint32) {
	s.w, s.off = w, off
	s.phase = 0
	if s.d == 1 {
		s.y[0] = off
		return
	}
	if w == 1 {
		for i := range s.y {
			s.y[i] = off
		}
		return
	}
	s.y[0] = off
	s.face.reset(w, off)
}

func (s *ndShell) next() bool {
	if s.d == 1 {
		if s.w > 1 && s.phase == 0 {
			s.phase = 1
			s.y[0] = s.off + s.w - 1
			return true
		}
		return false
	}
	if s.w == 1 {
		return false
	}
	switch s.phase {
	case 0:
		if s.face.next() {
			return true
		}
		s.phase = 1
		s.y[0] = s.off + s.w - 1
		s.face.reset(s.w, s.off)
		return true
	case 1:
		if s.face.next() {
			return true
		}
		if s.w <= 2 {
			return false
		}
		s.phase = 2
		s.ly = 1
		s.y[0] = s.off + 1
		s.tube.reset(s.w, s.off)
		return true
	default:
		if s.tube.next() {
			return true
		}
		if s.ly+1 > s.w-2 {
			return false
		}
		s.ly++
		s.y[0] = s.off + s.ly
		s.tube.reset(s.w, s.off)
		return true
	}
}

func (s *ndShell) seek(w, off uint32, h uint64) {
	s.w, s.off = w, off
	if s.d == 1 {
		if h == 0 {
			s.phase = 0
			s.y[0] = off
		} else {
			s.phase = 1
			s.y[0] = off + w - 1
		}
		return
	}
	if w == 1 {
		s.phase = 0
		for i := range s.y {
			s.y[i] = off
		}
		return
	}
	face := powU(w, s.d-1)
	switch {
	case h < face:
		s.phase = 0
		s.y[0] = off
		s.face.seek(w, off, h)
	case h < 2*face:
		s.phase = 1
		s.y[0] = off + w - 1
		s.face.seek(w, off, h-face)
	default:
		h -= 2 * face
		sc := shellCountND(s.d-1, w)
		s.phase = 2
		s.ly = 1 + uint32(h/sc)
		s.y[0] = off + s.ly
		s.tube.seek(w, off, h%sc)
	}
}

// onionNDWalker adapts the cube walker to the Walker interface.
type onionNDWalker struct {
	h, n    uint64
	started bool
	cube    *ndCube
}

// Walk implements curve.WalkerProvider.
func (o *OnionND) Walk(start uint64) curve.Walker {
	n := o.U.Size()
	if start > n {
		o.CheckIndex(start)
	}
	w := &onionNDWalker{h: start, n: n, cube: newNDCubeWalker(o.U.Dims())}
	if start < n {
		w.cube.seek(o.U.Side(), 0, start)
	}
	return w
}

func (w *onionNDWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	if w.started {
		w.cube.next()
	} else {
		w.started = true
	}
	h := w.h
	w.h++
	return h, geom.Point(w.cube.y), true
}

// layerLexWalker steps the layer-lexicographic curve: a row-major odometer
// over the current layer cube that skips the open interior in O(1) per row.
type layerLexWalker struct {
	h, n           uint64
	started        bool
	s              uint32
	d              int
	t, w           uint32
	p              geom.Point
	othersInterior bool // all coordinates above dim 0 strictly inside the layer
}

// Walk implements curve.WalkerProvider.
func (l *LayerLex) Walk(start uint64) curve.Walker {
	n := l.U.Size()
	if start > n {
		l.CheckIndex(start)
	}
	w := &layerLexWalker{h: start, n: n, s: l.U.Side(), d: l.U.Dims(), p: make(geom.Point, l.U.Dims())}
	if start < n {
		l.Coords(start, w.p)
		w.t = layerND(w.s, w.p, 0)
		w.w = w.s - 2*w.t
		w.recomputeInterior()
	}
	return w
}

func (w *layerLexWalker) recomputeInterior() {
	hiC := w.t + w.w - 1
	oi := true
	for i := 1; i < w.d; i++ {
		if w.p[i] <= w.t || w.p[i] >= hiC {
			oi = false
			break
		}
	}
	w.othersInterior = oi
}

func (w *layerLexWalker) advance() {
	hiC := w.t + w.w - 1
	if w.p[0] < hiC {
		w.p[0]++
		if w.othersInterior && w.p[0] != hiC {
			// The rest of the row is interior; hop to its far shell cell.
			w.p[0] = hiC
		}
		return
	}
	w.p[0] = w.t
	i := 1
	for ; i < w.d; i++ {
		if w.p[i] < hiC {
			w.p[i]++
			break
		}
		w.p[i] = w.t
	}
	if i == w.d {
		// Layer exhausted; the caller guarantees a next layer exists.
		w.t++
		w.w -= 2
		for j := range w.p {
			w.p[j] = w.t
		}
		w.othersInterior = w.d == 1
		return
	}
	w.recomputeInterior()
}

func (w *layerLexWalker) Next() (uint64, geom.Point, bool) {
	if w.h >= w.n {
		return 0, nil, false
	}
	if w.started {
		w.advance()
	} else {
		w.started = true
	}
	h := w.h
	w.h++
	return h, w.p, true
}

var (
	_ curve.WalkerProvider = (*Onion2D)(nil)
	_ curve.WalkerProvider = (*Onion3D)(nil)
	_ curve.WalkerProvider = (*OnionND)(nil)
	_ curve.WalkerProvider = (*LayerLex)(nil)
	_ curve.RunVisitor     = (*Onion2D)(nil)
)
