package core

import (
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
)

// onionFamily builds one instance of every onion-family curve for the test
// sweeps, covering odd and even sides and the 3D even-side constraint.
func onionFamily(t *testing.T) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	for _, side := range []uint32{1, 2, 3, 4, 5, 7, 8, 16, 17, 33} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, o)
	}
	for _, side := range []uint32{2, 4, 6, 8, 10, 16} {
		o, err := NewOnion3D(side)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, o)
	}
	perm, err := NewOnion3DWithSegmentOrder(8, [10]int{2, 9, 4, 3, 10, 5, 1, 6, 8, 7})
	if err != nil {
		t.Fatal(err)
	}
	cs = append(cs, perm)
	for _, tc := range []struct {
		dims int
		side uint32
	}{{1, 1}, {1, 6}, {2, 5}, {2, 8}, {3, 3}, {3, 6}, {4, 5}, {5, 3}} {
		o, err := NewOnionND(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, o)
		l, err := NewLayerLex(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, l)
	}
	return cs
}

func TestWalkerMatchesScalar(t *testing.T) {
	for _, c := range onionFamily(t) {
		curvetest.CheckWalker(t, c)
	}
}

func TestWalkerSeeded(t *testing.T) {
	for _, c := range onionFamily(t) {
		curvetest.CheckWalkerSeeded(t, c, 50, 64, 42)
	}
	// Large universes: seeded windows only.
	big2, err := NewOnion2D(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, big2, 100, 128, 7)
	big3, err := NewOnion3D(1 << 7)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, big3, 100, 128, 8)
	bigND, err := NewOnionND(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, bigND, 50, 128, 9)
	bigLex, err := NewLayerLex(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckWalkerSeeded(t, bigLex, 50, 128, 10)
}

func TestBatchMatchesScalar(t *testing.T) {
	for _, c := range onionFamily(t) {
		curvetest.CheckBatch(t, c, 200, 11)
	}
}

func TestOnion2DRuns(t *testing.T) {
	for _, side := range []uint32{2, 3, 4, 5, 8, 17, 32} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckRuns(t, o, int64(side))
	}
}

func TestWalkerStartBeyondSizePanics(t *testing.T) {
	o, err := NewOnion2D(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Walk(Size()+1) did not panic")
		}
	}()
	curve.NewWalker(o, o.Universe().Size()+1)
}
