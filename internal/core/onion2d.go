// Package core implements the paper's primary contribution: the onion
// curve in two dimensions (Section III), in three dimensions (Section VI),
// the natural d-dimensional generalization the paper sketches as future
// work (Section VIII), and a layer-lexicographic ablation curve used to
// demonstrate that the precise within-layer order is immaterial to the
// clustering behaviour.
//
// All onion-family curves share the defining property the paper identifies
// as the source of near-optimal clustering: cells are ordered by layers,
// where the layer of a cell is its L-infinity distance to the boundary of
// the universe, and each layer is numbered completely before the next
// begins ("organize different layers sequentially rather than intercross
// them", Section VI-A).
package core

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// Onion2D is the two-dimensional onion curve of Section III-A. It orders
// the cells of the boundary ring first (counter-clockwise starting from the
// bottom-left corner, per the paper's five-case definition), then recurses
// into the (side-2)x(side-2) interior. It is continuous and supports any
// side length >= 1 (the paper assumes an even side; odd sides simply end in
// a 1x1 center).
type Onion2D struct {
	curve.Base
}

// NewOnion2D constructs the two-dimensional onion curve.
func NewOnion2D(side uint32) (*Onion2D, error) {
	u, err := geom.NewUniverse(2, side)
	if err != nil {
		return nil, fmt.Errorf("onion2d: %w", err)
	}
	return &Onion2D{Base: curve.Base{U: u, Id: "onion", Cont: true}}, nil
}

// Index implements curve.Curve using the closed form: the ring of a cell is
// t = min(x, s-1-x, y, s-1-y), rings 0..t-1 hold 4*t*(s-t) cells, and the
// paper's five-case formula resolves the position within the ring.
func (o *Onion2D) Index(p geom.Point) uint64 {
	o.CheckPoint(p)
	return onionIndex2(o.U.Side(), p[0], p[1])
}

// Coords implements curve.Curve.
func (o *Onion2D) Coords(h uint64, dst geom.Point) geom.Point {
	o.CheckIndex(h)
	p := curve.Dst(dst, 2)
	p[0], p[1] = onionCoords2(o.U.Side(), h)
	return p
}

// Ring returns the 0-based ring number of cell p (the paper's layer number
// minus one): its L-infinity distance to the universe boundary.
func (o *Onion2D) Ring(p geom.Point) uint32 {
	o.CheckPoint(p)
	return ringOf2(o.U.Side(), p[0], p[1])
}

func ringOf2(s, x, y uint32) uint32 {
	t := x
	if s-1-x < t {
		t = s - 1 - x
	}
	if y < t {
		t = y
	}
	if s-1-y < t {
		t = s - 1 - y
	}
	return t
}

// cellsBeforeRing2 returns the number of cells in rings 0..t-1 of an s-side
// square: 4*t*(s-t).
func cellsBeforeRing2(s, t uint32) uint64 {
	return 4 * uint64(t) * uint64(s-t)
}

// onionIndex2 is the raw forward mapping on an s x s square, usable on
// sub-squares by the 3D curve.
func onionIndex2(s, x, y uint32) uint64 {
	t := ringOf2(s, x, y)
	base := cellsBeforeRing2(s, t)
	j := s - 2*t // ring side
	if j == 1 {
		return base
	}
	a, b := x-t, y-t // local coordinates on the ring, in [0, j-1]
	jm := uint64(j - 1)
	switch {
	case b == 0:
		return base + uint64(a)
	case a == uint32(jm):
		return base + jm + uint64(b)
	case b == uint32(jm):
		return base + 3*jm - uint64(a)
	default: // a == 0, 1 <= b <= j-2
		return base + 4*jm - uint64(b)
	}
}

// onionCoords2 inverts onionIndex2.
func onionCoords2(s uint32, h uint64) (x, y uint32) {
	t := ringFromIndex2(s, h)
	r := h - cellsBeforeRing2(s, t)
	j := s - 2*t
	if j == 1 {
		return t, t
	}
	jm := uint64(j - 1)
	var a, b uint64
	switch {
	case r <= jm:
		a, b = r, 0
	case r <= 2*jm:
		a, b = jm, r-jm
	case r <= 3*jm:
		a, b = 3*jm-r, jm
	default:
		a, b = 0, 4*jm-r
	}
	return uint32(a) + t, uint32(b) + t
}

// ringFromIndex2 returns the ring t with cellsBefore(t) <= h <
// cellsBefore(t+1), entirely in integer arithmetic: 4t(s-t) <= h is
// equivalent to (s-2t)^2 >= s^2-h, so t follows from the ceiling square
// root of s^2-h rounded up to the parity of s.
func ringFromIndex2(s uint32, h uint64) uint32 {
	d := uint64(s)*uint64(s) - h // >= 1 because h < s^2
	w := curve.Isqrt(d)
	if w*w < d {
		w++ // ceil(sqrt(d))
	}
	if (uint64(s)-w)&1 == 1 {
		w++ // ring sides share the parity of s
	}
	t := (uint64(s) - w) / 2
	maxT := uint64(s-1) / 2
	if t > maxT {
		t = maxT
	}
	return uint32(t)
}

var _ curve.Curve = (*Onion2D)(nil)
