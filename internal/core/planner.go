package core

// Analytic range planners for the onion family (curve.RangePlanner).
//
// The operational query path used to recover a query's clusters from an
// O(surface) boundary sweep: two forward curve evaluations per boundary
// face pair. The onion curves do not need any curve evaluations at all —
// a layer is a hollow shell with a closed-form key layout, so the
// intersection of a rectangle with each ring/segment is itself closed-form.
// Each planner walks the layers the query touches, intersects the query
// with every ring or segment analytically, and emits key runs in ascending
// order; a curve.RangeEmitter merges adjacent runs, so the output is the
// minimal decomposition, bit-identical to sorting every cell's key.
//
// Output sensitivity: each intersected layer contributes O(1) (2D rings),
// O(segments) (3D) or O(rows) (LayerLex / the ND tube) work and at least
// one range unless it merges, so the cost is O(layers + clusters) for the
// 2D/3D curves. The decisive fast path is interior containment: as soon as
// the query contains the entire sub-cube [t, s-1-t]^d, every remaining
// layer is fully covered and the whole tail of the key space is emitted as
// a single range in O(1). A paper-scale query inset a few cells from the
// universe boundary (10^8+ cells) therefore decomposes in nanoseconds
// where the boundary sweep pays millions of curve evaluations.

import (
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// axisBand reports, for one axis of an s-side cube and the query interval
// [lo, hi] (absolute coordinates inside the cube), the minimum and maximum
// of f(x) = min(x, s-1-x) over the interval — the per-axis contribution to
// the layer range the query spans.
func axisBand(s, lo, hi uint32) (fmin, fmax uint32) {
	flo := lo
	if s-1-lo < flo {
		flo = s - 1 - lo
	}
	fhi := hi
	if s-1-hi < fhi {
		fhi = s - 1 - hi
	}
	fmin = flo
	if fhi < fmin {
		fmin = fhi
	}
	// f rises on [0, (s-1)/2] and falls after; the max is at the peak when
	// the interval straddles it, at an endpoint otherwise.
	peak := (s - 1) / 2
	switch {
	case hi <= peak:
		fmax = fhi // increasing region: f(hi)
	case lo >= s-1-peak:
		fmax = flo // decreasing region: f(lo)
	default:
		fmax = peak
	}
	return fmin, fmax
}

// layerSpan computes, for a cube of side s whose cells are [0, s-1]^d and a
// query with per-axis bounds lo[i], hi[i], the span of layers the query
// touches (tmin..tmax, 0-based boundary distance) and t0, the smallest t
// such that the query contains the entire sub-cube [t, s-1-t]^d (t0 may
// exceed the deepest layer (s-1)/2, meaning no full sub-cube is covered).
func layerSpan(s uint32, lo, hi []uint32) (tmin, tmax, t0 uint32) {
	tmin = s // larger than any layer
	tmax = s
	t0 = 0
	for i := range lo {
		fmin, fmax := axisBand(s, lo[i], hi[i])
		if fmin < tmin {
			tmin = fmin
		}
		if fmax < tmax {
			tmax = fmax
		}
		if lo[i] > t0 {
			t0 = lo[i]
		}
		if need := s - 1 - hi[i]; need > t0 {
			t0 = need
		}
	}
	return tmin, tmax, t0
}

// partialSpan resolves the layer loop for a planner: layers in
// [tmin, upTo] are partially covered and must be intersected one by one;
// when tail is true every layer from t0 inward is fully covered and the
// whole key tail is emitted as a single range. upTo is int64 so that an
// empty loop (upTo < tmin) needs no special casing.
func partialSpan(tmax, t0, maxT uint32) (upTo int64, tail bool) {
	if t0 <= maxT {
		return int64(t0) - 1, true
	}
	return int64(tmax), false
}

// planOnion2 emits the decomposition of the query [xl,xh] x [yl,yh]
// (inclusive, coordinates local to an s x s square whose onion keys start
// at base) under the 2D onion order of onionIndex2. Runs are emitted in
// ascending key order.
func planOnion2(s uint32, base uint64, xl, xh, yl, yh uint32, e *curve.RangeEmitter) {
	tmin, tmax, t0 := layerSpan(s, []uint32{xl, yl}, []uint32{xh, yh})
	planOnion2Span(s, base, xl, xh, yl, yh, tmin, tmax, t0, e)
}

// planOnion2Span is planOnion2 with the layer span precomputed (the 3D
// planner reuses per-face spans). The ring loop covers partially covered
// rings; the tail [t0, maxRing] is fully covered and emitted as one range.
func planOnion2Span(s uint32, base uint64, xl, xh, yl, yh, tmin, tmax, t0 uint32, e *curve.RangeEmitter) {
	upTo, tail := partialSpan(tmax, t0, (s-1)/2)
	for t := int64(tmin); t <= upTo; t++ {
		planRing2(s, base, uint32(t), xl, xh, yl, yh, e)
	}
	if tail {
		e.Emit(base+cellsBeforeRing2(s, t0), base+uint64(s)*uint64(s)-1)
	}
}

// planRing2 emits the intersection of the query with ring t of the s-side
// square: up to four arcs (bottom row, right column, top row, left column
// of the ring, in that key order).
func planRing2(s uint32, base uint64, t, xl, xh, yl, yh uint32, e *curve.RangeEmitter) {
	j := s - 2*t // ring side
	b := base + cellsBeforeRing2(s, t)
	if j == 1 {
		e.Emit(b, b)
		return
	}
	// Local coordinates on the ring square [t, s-1-t]^2; the layer span
	// guarantees both clamped intervals are non-empty.
	axl, axh := clampLocal(xl, xh, t, j)
	ayl, ayh := clampLocal(yl, yh, t, j)
	jm := uint64(j - 1)
	// Bottom row (b-local y = 0): keys base + a.
	if ayl == 0 {
		e.Emit(b+uint64(axl), b+uint64(axh))
	}
	// Right column (a = j-1): keys base + jm + b, b in [1, jm].
	if uint64(axh) == jm {
		blo := ayl
		if blo < 1 {
			blo = 1
		}
		if uint64(blo) <= uint64(ayh) {
			e.Emit(b+jm+uint64(blo), b+jm+uint64(ayh))
		}
	}
	// Top row (b-local y = j-1): keys base + 3*jm - a, a in [0, jm-1].
	if uint64(ayh) == jm {
		ahg := uint64(axh)
		if ahg > jm-1 {
			ahg = jm - 1
		}
		if uint64(axl) <= ahg {
			e.Emit(b+3*jm-ahg, b+3*jm-uint64(axl))
		}
	}
	// Left column (a = 0): keys base + 4*jm - b, b in [1, jm-1].
	if axl == 0 {
		blo := uint64(ayl)
		if blo < 1 {
			blo = 1
		}
		bhg := uint64(ayh)
		if bhg > jm-1 {
			bhg = jm - 1
		}
		if blo <= bhg {
			e.Emit(b+4*jm-bhg, b+4*jm-blo)
		}
	}
}

// clampLocal clamps the absolute interval [lo, hi] to the ring square
// [t, t+j-1] and shifts it to local coordinates [0, j-1].
func clampLocal(lo, hi, t, j uint32) (uint32, uint32) {
	if lo < t {
		lo = t
	}
	if hi > t+j-1 {
		hi = t + j - 1
	}
	return lo - t, hi - t
}

// DecomposeRect implements curve.RangePlanner: O(rings + clusters), zero
// curve evaluations.
func (o *Onion2D) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return o.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (o *Onion2D) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	planOnion2(o.U.Side(), 0, r.Lo[0], r.Hi[0], r.Lo[1], r.Hi[1], &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner without materializing ranges.
func (o *Onion2D) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	planOnion2(o.U.Side(), 0, r.Lo[0], r.Hi[0], r.Lo[1], r.Hi[1], e)
	return e.Count()
}

// planRect3 emits the decomposition of r under the 3D onion order,
// honoring the curve's segment permutation.
func (o *Onion3D) planRect3(r geom.Rect, e *curve.RangeEmitter) {
	s := o.U.Side()
	tmin, tmax, t0 := layerSpan(s, r.Lo, r.Hi)
	upTo, tail := partialSpan(tmax, t0, o.m-1)
	for t := int64(tmin); t <= upTo; t++ {
		o.planLayer3(uint32(t), r, e)
	}
	if tail {
		e.Emit(o.k1(t0+1), o.U.Size()-1)
	}
}

// planLayer3 emits the intersection of r with the (partially covered)
// 0-based layer t: the ten segments of the layer cube, visited in the
// curve's permutation order, each intersected analytically.
func (o *Onion3D) planLayer3(t uint32, r geom.Rect, e *curve.RangeEmitter) {
	s := o.U.Side()
	w := s - 2*t // layer cube side, >= 2 (side even)
	// Local query bounds on the layer cube [0, w-1]^3; per-axis intervals
	// are non-empty for every layer in the span.
	lxl, lxh := clampLocal(r.Lo[0], r.Hi[0], t, w)
	lyl, lyh := clampLocal(r.Lo[1], r.Hi[1], t, w)
	lzl, lzh := clampLocal(r.Lo[2], r.Hi[2], t, w)
	base := o.k1(t + 1)
	wm := w - 1
	for pos := 0; pos < 10; pos++ {
		g := o.perm[pos]
		sz := segSize(g, w)
		if sz == 0 {
			continue
		}
		switch g {
		case 1: // face li == 0, 2D onion on (lj, lk) of side w
			if lxl == 0 {
				planOnion2(w, base, lyl, lyh, lzl, lzh, e)
			}
		case 2: // face li == w-1
			if lxh == wm {
				planOnion2(w, base, lyl, lyh, lzl, lzh, e)
			}
		case 3: // line lj == 0, lk == 0, keys by li-1
			if lyl == 0 && lzl == 0 {
				planSegLine3(base, w, lxl, lxh, e)
			}
		case 5: // line lj == 0, lk == w-1
			if lyl == 0 && lzh == wm {
				planSegLine3(base, w, lxl, lxh, e)
			}
		case 4: // side square lj == 0, 2D onion on (li-1, lk-1) of side w-2
			if lyl == 0 {
				planSegSquare3(base, w, lxl, lxh, lzl, lzh, e)
			}
		case 6: // line lj == w-1, lk == 0
			if lyh == wm && lzl == 0 {
				planSegLine3(base, w, lxl, lxh, e)
			}
		case 8: // line lj == w-1, lk == w-1
			if lyh == wm && lzh == wm {
				planSegLine3(base, w, lxl, lxh, e)
			}
		case 7: // side square lj == w-1
			if lyh == wm {
				planSegSquare3(base, w, lxl, lxh, lzl, lzh, e)
			}
		case 9: // side square lk == 0, 2D onion on (li-1, lj-1) of side w-2
			if lzl == 0 {
				planSegSquare3(base, w, lxl, lxh, lyl, lyh, e)
			}
		default: // 10: side square lk == w-1
			if lzh == wm {
				planSegSquare3(base, w, lxl, lxh, lyl, lyh, e)
			}
		}
		base += sz
	}
}

// planSegLine3 emits the intersection of a line segment (cells li in
// [1, w-2], key base + li - 1) with the local interval [lxl, lxh].
func planSegLine3(base uint64, w, lxl, lxh uint32, e *curve.RangeEmitter) {
	lo := lxl
	if lo < 1 {
		lo = 1
	}
	hi := lxh
	if hi > w-2 {
		hi = w - 2
	}
	if lo <= hi {
		e.Emit(base+uint64(lo)-1, base+uint64(hi)-1)
	}
}

// planSegSquare3 emits the intersection of a side square segment (2D onion
// of side w-2 on local coordinates (a-1, b-1) for a, b in [1, w-2]) with
// the local intervals [al, ah] x [bl, bh].
func planSegSquare3(base uint64, w, al, ah, bl, bh uint32, e *curve.RangeEmitter) {
	if w < 3 {
		return // no interior
	}
	if ah < 1 || al > w-2 || bh < 1 || bl > w-2 {
		return
	}
	aql, aqh := clampLocal(al, ah, 1, w-2)
	bql, bqh := clampLocal(bl, bh, 1, w-2)
	planOnion2(w-2, base, aql, aqh, bql, bqh, e)
}

// DecomposeRect implements curve.RangePlanner: O(layers*segments + rings +
// clusters), zero curve evaluations, exact for every segment permutation.
func (o *Onion3D) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return o.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (o *Onion3D) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	o.planRect3(r, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner; the result matches the
// Lemma 1 boundary counter bit for bit.
func (o *Onion3D) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	o.planRect3(r, e)
	return e.Count()
}

// planND emits the decomposition of the query (absolute per-axis bounds
// lo, hi, already clamped inside the cube of side w at offset off in every
// dimension) under the d-dimensional onion order of ndIndex, with keys
// starting at base.
func planND(w, off uint32, lo, hi []uint32, base uint64, e *curve.RangeEmitter) {
	d := len(lo)
	// Layer span in cube-local coordinates.
	locLo := make([]uint32, d)
	locHi := make([]uint32, d)
	for i := range lo {
		locLo[i] = lo[i] - off
		locHi[i] = hi[i] - off
	}
	tmin, tmax, t0 := layerSpan(w, locLo, locHi)
	upTo, tail := partialSpan(tmax, t0, (w-1)/2)
	if upTo >= int64(tmin) {
		clo := make([]uint32, d)
		chi := make([]uint32, d)
		for ti := int64(tmin); ti <= upTo; ti++ {
			t := uint32(ti)
			ws := w - 2*t
			for i := range lo {
				clo[i], chi[i] = lo[i], hi[i]
				if clo[i] < off+t {
					clo[i] = off + t
				}
				if chi[i] > off+t+ws-1 {
					chi[i] = off + t + ws - 1
				}
			}
			planShellND(ws, off+t, clo, chi, base+powU(w, d)-powU(ws, d), e)
		}
	}
	if tail {
		e.Emit(base+powU(w, d)-powU(w-2*t0, d), base+powU(w, d)-1)
	}
}

// planShellND emits the intersection of the query (bounds clamped inside
// the cube of side w at offset off, non-empty per axis) with the cube's
// boundary shell, in the shell order of shellIndexND: the face at the low
// side of dimension 0 (full (d-1)-dim onion), the face at the high side,
// then the tube slice by slice (recursive (d-1)-dim shells).
func planShellND(w, off uint32, lo, hi []uint32, base uint64, e *curve.RangeEmitter) {
	d := len(lo)
	if w == 1 {
		e.Emit(base, base)
		return
	}
	if d == 1 {
		if lo[0] <= off {
			e.Emit(base, base)
		}
		if hi[0] >= off+w-1 {
			e.Emit(base+1, base+1)
		}
		return
	}
	// Full containment: the query covers the whole cube, hence the whole
	// shell — one range, O(1).
	full := true
	for i := range lo {
		if lo[i] > off || hi[i] < off+w-1 {
			full = false
			break
		}
	}
	if full {
		e.Emit(base, base+shellCountND(d, w)-1)
		return
	}
	face := powU(w, d-1)
	if lo[0] <= off {
		planND(w, off, lo[1:], hi[1:], base, e)
	}
	if hi[0] >= off+w-1 {
		planND(w, off, lo[1:], hi[1:], base+face, e)
	}
	vlo := lo[0]
	if vlo < off+1 {
		vlo = off + 1
	}
	vhi := hi[0]
	if vhi > off+w-2 {
		vhi = off + w - 2
	}
	if vlo > vhi {
		return
	}
	sc := shellCountND(d-1, w)
	for v := vlo; v <= vhi; v++ {
		planShellND(w, off, lo[1:], hi[1:], base+2*face+uint64(v-off-1)*sc, e)
	}
}

// DecomposeRect implements curve.RangePlanner: recursive shell/face
// intersection, zero curve evaluations. Cost is proportional to the slices
// the query cuts — which is also how the curve fragments, so the work
// tracks the cluster count.
func (o *OnionND) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return o.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (o *OnionND) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	planND(o.U.Side(), 0, r.Lo, r.Hi, 0, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner.
func (o *OnionND) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	planND(o.U.Side(), 0, r.Lo, r.Hi, 0, e)
	return e.Count()
}

// planLayerLex emits the decomposition of r under the layer-lexicographic
// order: per layer, the query rows (combinations of the local coordinates
// of dimensions 1..d-1, in row-major significance order) each contribute
// at most one run of consecutive shell ranks.
func (l *LayerLex) planLayerLex(r geom.Rect, e *curve.RangeEmitter) {
	s := l.U.Side()
	d := l.U.Dims()
	tmin, tmax, t0 := layerSpan(s, r.Lo, r.Hi)
	upTo, tail := partialSpan(tmax, t0, (s-1)/2)
	for t := int64(tmin); t <= upTo; t++ {
		l.planLexLayer(uint32(t), r, e)
	}
	if tail {
		e.Emit(powU(s, d)-powU(s-2*t0, d), powU(s, d)-1)
	}
}

// planLexLayer emits the runs of the (partially covered) layer t.
func (l *LayerLex) planLexLayer(t uint32, r geom.Rect, e *curve.RangeEmitter) {
	s := l.U.Side()
	d := l.U.Dims()
	w := s - 2*t
	base := powU(s, d) - powU(w, d)
	// Local query bounds on the layer cube [0, w-1]^d.
	lo := make([]uint32, d)
	hi := make([]uint32, d)
	for i := 0; i < d; i++ {
		lo[i], hi[i] = clampLocal(r.Lo[i], r.Hi[i], t, w)
	}
	emitRow := func(rowBase uint64, rowOnShell bool) {
		if rowOnShell {
			// Every cell of the row is on the shell: consecutive row-major
			// keys are consecutive shell ranks.
			rm := rowBase + uint64(lo[0])
			rank := rm - interiorBelow(w, d, rm)
			e.Emit(base+rank, base+rank+uint64(hi[0]-lo[0]))
			return
		}
		// Interior row: only the endpoints x0 = 0 and x0 = w-1 are shell
		// cells, and their shell ranks are consecutive (the interior cells
		// between them are skipped).
		if lo[0] == 0 {
			rank := rowBase - interiorBelow(w, d, rowBase)
			if hi[0] == w-1 {
				e.Emit(base+rank, base+rank+1)
			} else {
				e.Emit(base+rank, base+rank)
			}
			return
		}
		if hi[0] == w-1 {
			rm := rowBase + uint64(w) - 1
			rank := rm - interiorBelow(w, d, rm)
			e.Emit(base+rank, base+rank)
		}
	}
	if d == 1 {
		emitRow(0, w == 1)
		return
	}
	// Iterate rows in ascending row-major order: dimension 1 fastest among
	// the row dimensions, dimension d-1 most significant.
	p := make([]uint32, d)
	for i := 1; i < d; i++ {
		p[i] = lo[i]
	}
	for {
		var rowBase uint64
		onShell := w == 1
		for i := d - 1; i >= 1; i-- {
			rowBase = rowBase*uint64(w) + uint64(p[i])
			if p[i] == 0 || p[i] == w-1 {
				onShell = true
			}
		}
		rowBase *= uint64(w)
		emitRow(rowBase, onShell)
		i := 1
		for i < d {
			if p[i] < hi[i] {
				p[i]++
				break
			}
			p[i] = lo[i]
			i++
		}
		if i == d {
			return
		}
	}
}

// DecomposeRect implements curve.RangePlanner: O(layers + query rows),
// zero curve evaluations (each row costs one O(d) interior-rank lookup).
func (l *LayerLex) DecomposeRect(r geom.Rect) []curve.KeyRange {
	return l.DecomposeRectAppend(r, nil)
}

// DecomposeRectAppend implements curve.RangeAppender.
func (l *LayerLex) DecomposeRectAppend(r geom.Rect, dst []curve.KeyRange) []curve.KeyRange {
	e := curve.RangeEmitter{Ranges: dst[:0]}
	l.planLayerLex(r, &e)
	return e.Ranges
}

// ClusterCount implements curve.RangePlanner.
func (l *LayerLex) ClusterCount(r geom.Rect) uint64 {
	e := curve.NewRangeCounter()
	l.planLayerLex(r, e)
	return e.Count()
}

var (
	_ curve.RangePlanner = (*Onion2D)(nil)
	_ curve.RangePlanner = (*Onion3D)(nil)
	_ curve.RangePlanner = (*OnionND)(nil)
	_ curve.RangePlanner = (*LayerLex)(nil)

	_ curve.RangeAppender = (*Onion2D)(nil)
	_ curve.RangeAppender = (*Onion3D)(nil)
	_ curve.RangeAppender = (*OnionND)(nil)
	_ curve.RangeAppender = (*LayerLex)(nil)
)
