package core

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// LayerLex is an ablation curve: like the onion curve it numbers layers
// (L-infinity boundary distance classes) sequentially, but inside each
// layer it simply orders cells lexicographically (dimension d-1 most
// significant). The paper argues the "essential rule" behind the onion
// curve's near-optimal clustering is only the layer-sequential structure
// (Section VI-A); comparing LayerLex against the real onion curves measures
// exactly how much the careful within-layer traversal contributes.
type LayerLex struct {
	curve.Base
}

// NewLayerLex constructs the layer-lexicographic curve for any dims >= 1
// and side >= 1.
func NewLayerLex(dims int, side uint32) (*LayerLex, error) {
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("layerlex: %w", err)
	}
	return &LayerLex{Base: curve.Base{U: u, Id: "layerlex", Cont: false}}, nil
}

// Index implements curve.Curve: cells before this layer, plus the rank of
// the cell among shell cells in row-major order (dimension 0 fastest).
func (l *LayerLex) Index(p geom.Point) uint64 {
	l.CheckPoint(p)
	s := l.U.Side()
	d := l.U.Dims()
	t := layerND(s, p, 0)
	w := s - 2*t
	before := powU(s, d) - powU(w, d)
	// Rank within the shell = row-major rank within the layer cube minus
	// the number of interior cells with a smaller row-major key.
	var rm uint64
	for i := d - 1; i >= 0; i-- {
		rm = rm*uint64(w) + uint64(p[i]-t)
	}
	return before + rm - interiorBelow(w, d, rm)
}

// interiorBelow counts cells z of the open interior [1, w-2]^d whose
// row-major key (dimension 0 fastest, d-1 most significant) is strictly
// below rm. Digits of rm are the local coordinates of the cell at that key.
func interiorBelow(w uint32, d int, rm uint64) uint64 {
	if w <= 2 {
		return 0
	}
	// Extract digits: digit i = coordinate of dimension i.
	digits := make([]uint64, d)
	for i := 0; i < d; i++ {
		digits[i] = rm % uint64(w)
		rm /= uint64(w)
	}
	in := uint64(w) - 2 // interior choices per digit
	var count uint64
	// Scan from most significant digit (dimension d-1) downward.
	for i := d - 1; i >= 0; i-- {
		y := digits[i]
		// Choices for z_i in [1, w-2] with z_i < y.
		var below uint64
		if y > 1 {
			below = y - 1
			if below > in {
				below = in
			}
		}
		count += below * powU(uint32(in), i)
		// Continue only if z_i == y_i is possible for an interior z.
		if y < 1 || y > uint64(w)-2 {
			return count
		}
	}
	return count
}

// Coords implements curve.Curve by binary searching the layer and then the
// shell rank.
func (l *LayerLex) Coords(h uint64, dst geom.Point) geom.Point {
	l.CheckIndex(h)
	s := l.U.Side()
	d := l.U.Dims()
	p := curve.Dst(dst, d)
	total := powU(s, d)
	// Find layer t: largest with total - (s-2t)^d <= h.
	loT, hiT := uint32(0), (s-1)/2
	for loT < hiT {
		mid := (loT + hiT + 1) / 2
		if total-powU(s-2*mid, d) <= h {
			loT = mid
		} else {
			hiT = mid - 1
		}
	}
	t := loT
	w := s - 2*t
	target := h - (total - powU(w, d)) // shell rank within the layer
	// Binary search the row-major key k of the shell cell with rank
	// target. shellRank(k) = k - interiorBelow(k) counts shell cells with
	// key < k; the wanted cell is the smallest k with
	// shellRank(k+1) == target+1, which is necessarily on the shell.
	loK, hiK := uint64(0), powU(w, d)-1
	for loK < hiK {
		mid := (loK + hiK) / 2
		if mid+1-interiorBelow(w, d, mid+1) < target+1 {
			loK = mid + 1
		} else {
			hiK = mid
		}
	}
	k := loK
	for i := 0; i < d; i++ {
		p[i] = uint32(k%uint64(w)) + t
		k /= uint64(w)
	}
	return p
}

var _ curve.Curve = (*LayerLex)(nil)
