package core

import (
	"errors"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/curvetest"
	"github.com/onioncurve/onion/internal/geom"
)

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewOnion2D(0); err == nil {
		t.Error("onion2d accepted side=0")
	}
	if _, err := NewOnion3D(7); !errors.Is(err, curve.ErrSideUnsupported) {
		t.Error("onion3d accepted odd side")
	}
	if _, err := NewOnion3D(0); err == nil {
		t.Error("onion3d accepted side=0")
	}
	if _, err := NewOnionND(0, 4); err == nil {
		t.Error("onionnd accepted dims=0")
	}
	if _, err := NewLayerLex(2, 0); err == nil {
		t.Error("layerlex accepted side=0")
	}
	if _, err := NewOnionND(3, 1<<21); !errors.Is(err, geom.ErrTooLarge) {
		t.Error("oversized onionnd accepted")
	}
}

// TestOnion2DFigure3 pins the exact orders shown in Figure 3 of the paper
// for the 2x2 and 4x4 universes.
func TestOnion2DFigure3(t *testing.T) {
	o2, err := NewOnion2D(2)
	if err != nil {
		t.Fatal(err)
	}
	// O2(0,0)=0, O2(1,0)=1, O2(1,1)=2, O2(0,1)=3.
	want2 := map[[2]uint32]uint64{{0, 0}: 0, {1, 0}: 1, {1, 1}: 2, {0, 1}: 3}
	for xy, h := range want2 {
		if got := o2.Index(geom.Point{xy[0], xy[1]}); got != h {
			t.Errorf("O2(%v) = %d, want %d", xy, got, h)
		}
	}

	o4, err := NewOnion2D(4)
	if err != nil {
		t.Fatal(err)
	}
	// Derived from the five-case definition for j=4 plus the recursive
	// interior O2: bottom row 0-3, right column 4-6, top row 7-9, left
	// column 10-11, then the 2x2 interior 12-15.
	want4 := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {2, 0}: 2, {3, 0}: 3,
		{3, 1}: 4, {3, 2}: 5, {3, 3}: 6,
		{2, 3}: 7, {1, 3}: 8, {0, 3}: 9,
		{0, 2}: 10, {0, 1}: 11,
		{1, 1}: 12, {2, 1}: 13, {2, 2}: 14, {1, 2}: 15,
	}
	for xy, h := range want4 {
		if got := o4.Index(geom.Point{xy[0], xy[1]}); got != h {
			t.Errorf("O4(%v) = %d, want %d", xy, got, h)
		}
	}
}

// TestOnion2DMatchesRecursiveDefinition checks the closed form against a
// direct implementation of the paper's recursive five-case definition.
func TestOnion2DMatchesRecursiveDefinition(t *testing.T) {
	var recursive func(j, x, y uint32) uint64
	recursive = func(j, x, y uint32) uint64 {
		if j == 1 {
			return 0
		}
		switch {
		case y == 0:
			return uint64(x)
		case x == j-1:
			return uint64(j) - 1 + uint64(y)
		case y == j-1:
			return uint64(3*(j-1)) - uint64(x)
		case x == 0:
			return uint64(4*(j-1)) - uint64(y)
		default:
			return uint64(4*(j-1)) + recursive(j-2, x-1, y-1)
		}
	}
	for _, side := range []uint32{1, 2, 3, 4, 5, 6, 7, 8, 16, 17, 32} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		o.Universe().Rect().ForEach(func(p geom.Point) bool {
			want := recursive(side, p[0], p[1])
			if got := o.Index(p); got != want {
				t.Fatalf("side %d: Index(%v) = %d, recursive def = %d", side, p, got, want)
			}
			return true
		})
	}
}

func TestOnionBijection(t *testing.T) {
	for _, side := range []uint32{1, 2, 3, 4, 5, 8, 15, 16, 31, 64, 101} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckBijectionExhaustive(t, o)
	}
	for _, side := range []uint32{2, 4, 6, 8, 10, 16, 32} {
		o, err := NewOnion3D(side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckBijectionExhaustive(t, o)
	}
	for _, cfg := range []struct {
		dims int
		side uint32
	}{{1, 1}, {1, 9}, {2, 6}, {2, 7}, {3, 5}, {3, 6}, {4, 4}, {4, 5}, {5, 3}, {5, 4}} {
		o, err := NewOnionND(cfg.dims, cfg.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckBijectionExhaustive(t, o)
	}
	for _, cfg := range []struct {
		dims int
		side uint32
	}{{1, 8}, {2, 5}, {2, 8}, {3, 4}, {3, 7}, {4, 4}} {
		o, err := NewLayerLex(cfg.dims, cfg.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckBijectionExhaustive(t, o)
	}
}

func TestOnionBijectionSampledLarge(t *testing.T) {
	o2, err := NewOnion2D(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, o2, 3000, 11)
	o3, err := NewOnion3D(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, o3, 3000, 12)
	ond, err := NewOnionND(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, ond, 1500, 13)
	ll, err := NewLayerLex(3, 512)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckBijectionSampled(t, ll, 1500, 14)
}

func TestOnion2DContinuity(t *testing.T) {
	for _, side := range []uint32{2, 3, 4, 5, 8, 16, 33, 64} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.CheckContinuityExhaustive(t, o)
	}
	oBig, err := NewOnion2D(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	curvetest.CheckContinuitySampled(t, oBig, 3000, 21)
	if !curve.IsContinuous(oBig) {
		t.Error("onion2d must declare continuity")
	}
}

// layerMonotone asserts the defining onion invariant: the layer number of
// pi^-1(h) never decreases as h grows.
func layerMonotone(t *testing.T, c curve.Curve, layer func(geom.Point) uint32) {
	t.Helper()
	n := c.Universe().Size()
	p := make(geom.Point, c.Universe().Dims())
	prev := uint32(0)
	for h := uint64(0); h < n; h++ {
		c.Coords(h, p)
		l := layer(p)
		if l < prev {
			t.Fatalf("%s: layer drops from %d to %d at h=%d (%v)", c.Name(), prev, l, h, p)
		}
		prev = l
	}
}

func TestLayerMonotonicity(t *testing.T) {
	o2, _ := NewOnion2D(32)
	layerMonotone(t, o2, func(p geom.Point) uint32 { return o2.Ring(p) })
	o3, _ := NewOnion3D(16)
	layerMonotone(t, o3, func(p geom.Point) uint32 { return o3.Layer(p) })
	o4, _ := NewOnionND(4, 8)
	layerMonotone(t, o4, func(p geom.Point) uint32 { return o4.Layer(p) })
	ll, _ := NewLayerLex(3, 12)
	layerMonotone(t, ll, func(p geom.Point) uint32 { return layerND(12, p, 0) })
}

// TestOnion3DLayerSizes checks K1 against the paper's closed form and the
// segment sizes against Vt'.
func TestOnion3DLayerSizes(t *testing.T) {
	o, _ := NewOnion3D(16)
	m := uint64(8)
	for t1 := uint32(1); t1 <= 8; t1++ {
		tau := uint64(t1 - 1)
		paper := 24*m*m*tau - 24*m*tau*tau + 8*tau*tau*tau
		if got := o.k1(t1); got != paper {
			t.Errorf("K1(%d) = %d, paper closed form %d", t1, got, paper)
		}
	}
	// Sum of segment sizes must equal the shell size for each layer.
	s := uint64(16)
	for t1 := uint32(1); t1 <= 8; t1++ {
		w := uint32(s) - 2*(t1-1)
		var sum uint64
		for g := 1; g <= 10; g++ {
			sum += segSize(g, w)
		}
		shell := uint64(w)*uint64(w)*uint64(w) - uint64(w-2)*uint64(w-2)*uint64(w-2)
		if w == 2 {
			shell = 8
		}
		if sum != shell {
			t.Errorf("layer %d: segment sizes sum to %d, shell has %d", t1, sum, shell)
		}
	}
}

// TestOnion3DSegmentOrder verifies the curve indexes segments in the
// S1..S10 order within each layer: positions are grouped by segment.
func TestOnion3DSegmentOrder(t *testing.T) {
	o, _ := NewOnion3D(8)
	n := o.Universe().Size()
	p := make(geom.Point, 3)
	prevLayer, prevSeg := uint32(1), 0
	for h := uint64(0); h < n; h++ {
		o.Coords(h, p)
		l := o.Layer(p)
		lo := l - 1
		w := o.Universe().Side() - 2*(l-1)
		g, _ := segmentOf(w, p[0]-lo, p[1]-lo, p[2]-lo)
		if l == prevLayer && g < prevSeg {
			t.Fatalf("segment order violated at h=%d: layer %d segment %d after %d", h, l, g, prevSeg)
		}
		if l != prevLayer {
			prevSeg = 0
		}
		prevLayer, prevSeg = l, g
	}
}

func TestOnionNDMatches1D(t *testing.T) {
	// The 1-dimensional onion orders cells endpoints-inward:
	// 0, s-1, 1, s-2, 2, ...
	o, _ := NewOnionND(1, 7)
	want := []uint32{0, 6, 1, 5, 2, 4, 3}
	for h, x := range want {
		if got := o.Coords(uint64(h), nil); got[0] != x {
			t.Fatalf("onion1d Coords(%d) = %v, want %d", h, got, x)
		}
	}
}

func TestOnionNDLayerCounts(t *testing.T) {
	// The number of cells in layers < t must be s^d - (s-2t)^d.
	for _, cfg := range []struct {
		dims int
		side uint32
	}{{2, 8}, {3, 6}, {4, 4}} {
		o, _ := NewOnionND(cfg.dims, cfg.side)
		counts := map[uint32]uint64{}
		o.Universe().Rect().ForEach(func(p geom.Point) bool {
			counts[o.Layer(p)]++
			return true
		})
		var cum uint64
		for t0 := uint32(0); t0 <= (cfg.side-1)/2; t0++ {
			want := powU(cfg.side, cfg.dims) - powU(cfg.side-2*t0, cfg.dims)
			if cum != want {
				t.Errorf("dims %d side %d: cells before layer %d = %d, want %d",
					cfg.dims, cfg.side, t0, cum, want)
			}
			cum += counts[t0]
		}
	}
}

func TestPanicBehavior(t *testing.T) {
	o2, _ := NewOnion2D(8)
	o3, _ := NewOnion3D(8)
	ond, _ := NewOnionND(3, 8)
	ll, _ := NewLayerLex(2, 8)
	for _, c := range []curve.Curve{o2, o3, ond, ll} {
		curvetest.CheckPanicsOnBadInput(t, c)
	}
}

func TestRingFromIndexBoundaries(t *testing.T) {
	// Exact boundaries: first and last index of every ring.
	for _, s := range []uint32{4, 5, 64, 1024} {
		for tt := uint32(0); tt <= (s-1)/2; tt++ {
			first := cellsBeforeRing2(s, tt)
			if got := ringFromIndex2(s, first); got != tt {
				t.Fatalf("side %d: ringFromIndex(first=%d) = %d, want %d", s, first, got, tt)
			}
			var last uint64
			if tt == (s-1)/2 {
				last = uint64(s)*uint64(s) - 1
			} else {
				last = cellsBeforeRing2(s, tt+1) - 1
			}
			if got := ringFromIndex2(s, last); got != tt {
				t.Fatalf("side %d: ringFromIndex(last=%d) = %d, want %d", s, last, got, tt)
			}
		}
	}
}

func TestCoordsDstReuse(t *testing.T) {
	o, _ := NewOnion3D(8)
	dst := make(geom.Point, 3)
	got := o.Coords(100, dst)
	if &got[0] != &dst[0] {
		t.Error("Coords did not reuse dst")
	}
}
