package core

// Batch fast paths for the onion curves: one validation + raw closed-form
// mapping per cell, no interface dispatch, no allocation.

import (
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// IndexBatch implements curve.IndexBatcher.
func (o *Onion2D) IndexBatch(pts []geom.Point, dst []uint64) {
	s := o.U.Side()
	for i, p := range pts {
		o.CheckPoint(p)
		dst[i] = onionIndex2(s, p[0], p[1])
	}
}

// CoordsBatch implements curve.CoordsBatcher.
func (o *Onion2D) CoordsBatch(keys []uint64, dst []geom.Point) {
	s := o.U.Side()
	for i, h := range keys {
		o.CheckIndex(h)
		dst[i][0], dst[i][1] = onionCoords2(s, h)
	}
}

// IndexBatch implements curve.IndexBatcher.
func (o *Onion3D) IndexBatch(pts []geom.Point, dst []uint64) {
	for i, p := range pts {
		dst[i] = o.Index(p)
	}
}

// CoordsBatch implements curve.CoordsBatcher.
func (o *Onion3D) CoordsBatch(keys []uint64, dst []geom.Point) {
	for i, h := range keys {
		o.Coords(h, dst[i])
	}
}

var (
	_ curve.IndexBatcher  = (*Onion2D)(nil)
	_ curve.CoordsBatcher = (*Onion2D)(nil)
	_ curve.IndexBatcher  = (*Onion3D)(nil)
	_ curve.CoordsBatcher = (*Onion3D)(nil)
)
