package core

import (
	"fmt"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// OnionND is the natural d-dimensional generalization of the onion curve
// that the paper proposes as future work (Section VIII): "ordering points
// according to increasing distance from the edge of the universe".
//
// Cells are ordered by layer (L-infinity distance to the boundary). Each
// layer is a hollow hyper-cube shell of side w, ordered recursively:
//
//  1. the full (d-1)-dimensional face at coordinate lo of dimension d-1...
//     more precisely of the first dimension, ordered by the (d-1)-dim onion
//     curve of side w;
//  2. the full face at the opposite side, same order;
//  3. the remaining "tube": for each interior value of the first
//     coordinate in increasing order, the (d-1)-dimensional shell of the
//     cross-section, ordered recursively by the same shell rule.
//
// For d = 1 a shell is the two endpoints of a segment, ordered low-then-
// high. For d >= 2 the curve shares the paper's layer decomposition but
// NOT its within-layer segment structure: the tube is visited slice by
// slice, so a query spanning the tube is cut once per slice. The ablation
// experiment (internal/experiments.Ablation) quantifies the consequence:
// layer-sequentiality alone keeps the curve correct but loses the paper's
// constant-factor clustering guarantee, which additionally needs the
// within-segment 2D onion ordering of Section VI-A. A faithful d > 3
// generalization would recurse over segment products and is left, as in
// the paper, to future work.
//
// Any side length >= 1 and any dimension 1 <= d are supported (subject to
// the global 2^62-cell limit).
type OnionND struct {
	curve.Base
}

// NewOnionND constructs the d-dimensional onion curve.
func NewOnionND(dims int, side uint32) (*OnionND, error) {
	u, err := geom.NewUniverse(dims, side)
	if err != nil {
		return nil, fmt.Errorf("onionnd: %w", err)
	}
	return &OnionND{Base: curve.Base{U: u, Id: "onionnd", Cont: false}}, nil
}

// Layer returns the 0-based layer (L-infinity boundary distance) of p.
func (o *OnionND) Layer(p geom.Point) uint32 {
	o.CheckPoint(p)
	return layerND(o.U.Side(), p, 0)
}

// Index implements curve.Curve.
func (o *OnionND) Index(p geom.Point) uint64 {
	o.CheckPoint(p)
	return ndIndex(o.U.Side(), p, 0)
}

// Coords implements curve.Curve.
func (o *OnionND) Coords(h uint64, dst geom.Point) geom.Point {
	o.CheckIndex(h)
	p := curve.Dst(dst, o.U.Dims())
	ndCoords(o.U.Side(), h, p, 0)
	return p
}

// layerND returns min_i min(y_i-off, w-1-(y_i-off)) for local coordinates.
func layerND(w uint32, y []uint32, off uint32) uint32 {
	t := w // larger than any possible distance
	for _, v := range y {
		lv := v - off
		if lv < t {
			t = lv
		}
		if w-1-lv < t {
			t = w - 1 - lv
		}
	}
	return t
}

// powU returns w^d.
func powU(w uint32, d int) uint64 {
	r := uint64(1)
	for i := 0; i < d; i++ {
		r *= uint64(w)
	}
	return r
}

// shellCountND returns the number of cells of a d-dimensional shell of
// side w: w^d - (w-2)^d (with (w-2)^d = 0 when w <= 2).
func shellCountND(d int, w uint32) uint64 {
	if w <= 2 {
		return powU(w, d)
	}
	return powU(w, d) - powU(w-2, d)
}

// ndIndex maps a cell of the sub-cube of side w at offset off (all
// dimensions) to its d-dimensional onion position.
func ndIndex(w uint32, y []uint32, off uint32) uint64 {
	d := len(y)
	if d == 0 || w == 0 {
		return 0
	}
	t := layerND(w, y, off)
	ws := w - 2*t
	before := powU(w, d) - powU(ws, d)
	return before + shellIndexND(ws, y, off+t)
}

// shellIndexND maps a cell on the shell of the sub-cube of side w at offset
// off to its position in the shell order described on OnionND.
func shellIndexND(w uint32, y []uint32, off uint32) uint64 {
	d := len(y)
	if d == 0 || w == 1 {
		return 0
	}
	ly := y[0] - off
	if d == 1 {
		if ly == 0 {
			return 0
		}
		return 1
	}
	face := powU(w, d-1)
	switch {
	case ly == 0:
		return ndIndex(w, y[1:], off)
	case ly == w-1:
		return face + ndIndex(w, y[1:], off)
	default:
		return 2*face + uint64(ly-1)*shellCountND(d-1, w) + shellIndexND(w, y[1:], off)
	}
}

// ndCoords inverts ndIndex.
func ndCoords(w uint32, h uint64, y []uint32, off uint32) {
	d := len(y)
	if d == 0 {
		return
	}
	// Find the layer t: largest t with w^d - (w-2t)^d <= h.
	total := powU(w, d)
	loT, hiT := uint32(0), (w-1)/2
	for loT < hiT {
		mid := (loT + hiT + 1) / 2
		if total-powU(w-2*mid, d) <= h {
			loT = mid
		} else {
			hiT = mid - 1
		}
	}
	t := loT
	ws := w - 2*t
	r := h - (total - powU(ws, d))
	shellCoordsND(ws, r, y, off+t)
}

// shellCoordsND inverts shellIndexND.
func shellCoordsND(w uint32, h uint64, y []uint32, off uint32) {
	d := len(y)
	if d == 0 {
		return
	}
	if w == 1 {
		for i := range y {
			y[i] = off
		}
		return
	}
	if d == 1 {
		if h == 0 {
			y[0] = off
		} else {
			y[0] = off + w - 1
		}
		return
	}
	face := powU(w, d-1)
	switch {
	case h < face:
		y[0] = off
		ndCoords(w, h, y[1:], off)
	case h < 2*face:
		y[0] = off + w - 1
		ndCoords(w, h-face, y[1:], off)
	default:
		h -= 2 * face
		sc := shellCountND(d-1, w)
		v := h / sc
		y[0] = off + 1 + uint32(v)
		shellCoordsND(w, h%sc, y[1:], off)
	}
}

var _ curve.Curve = (*OnionND)(nil)
