package core

import (
	"testing"

	"github.com/onioncurve/onion/internal/curvetest"
	"github.com/onioncurve/onion/internal/geom"
)

// The planner conformance logic (brute-force reference, structural
// invariants, degenerate + random rectangle sweeps) lives in the shared
// curvetest.CheckPlanner harness; these tests only pick instances.

func TestOnion2DPlanner(t *testing.T) {
	for _, side := range []uint32{1, 2, 3, 4, 5, 7, 8, 16, 33, 64} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, o, 120, int64(side))
	}
}

func TestOnion3DPlanner(t *testing.T) {
	for _, side := range []uint32{2, 4, 6, 8, 10, 16} {
		o, err := NewOnion3D(side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, o, 60, int64(side))
	}
}

func TestOnion3DPlannerSegmentPermutations(t *testing.T) {
	perms := [][10]int{
		{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{2, 1, 4, 3, 6, 5, 8, 7, 10, 9},
		{5, 3, 9, 1, 7, 10, 2, 8, 4, 6},
	}
	for pi, perm := range perms {
		for _, side := range []uint32{4, 6, 12} {
			o, err := NewOnion3DWithSegmentOrder(side, perm)
			if err != nil {
				t.Fatal(err)
			}
			curvetest.ExercisePlanner(t, o, 40, int64(side)*100+int64(pi))
		}
	}
}

func TestOnionNDPlanner(t *testing.T) {
	cases := []struct {
		dims int
		side uint32
	}{
		{1, 1}, {1, 2}, {1, 9}, {1, 16},
		{2, 5}, {2, 16}, {2, 31},
		{3, 3}, {3, 7}, {3, 8}, {3, 12},
		{4, 5}, {4, 6},
	}
	for _, tc := range cases {
		o, err := NewOnionND(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, o, 50, int64(tc.dims)*1000+int64(tc.side))
	}
}

func TestLayerLexPlanner(t *testing.T) {
	cases := []struct {
		dims int
		side uint32
	}{
		{1, 1}, {1, 2}, {1, 8}, {1, 13},
		{2, 1}, {2, 5}, {2, 8}, {2, 31},
		{3, 4}, {3, 7}, {3, 9},
	}
	for _, tc := range cases {
		l, err := NewLayerLex(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		curvetest.ExercisePlanner(t, l, 50, int64(tc.dims)*1000+int64(tc.side))
	}
}

// TestPlannerPaperScaleTail checks the O(1) interior-containment fast path
// on paper-scale queries: a query inset a few cells from the boundary of a
// 10^8+-cell universe must decompose instantly into very few ranges whose
// total size equals the query, with the tail range ending at the last key.
func TestPlannerPaperScaleTail(t *testing.T) {
	o2, err := NewOnion2D(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	s2 := o2.Universe().Side()
	r2 := geom.Rect{Lo: geom.Point{16, 16}, Hi: geom.Point{s2 - 17, s2 - 17}}
	rs := o2.DecomposeRect(r2)
	if len(rs) != 1 {
		t.Fatalf("2D inset query: %d ranges, want 1", len(rs))
	}
	if rs[0].Hi != o2.Universe().Size()-1 {
		t.Fatalf("2D inset query tail ends at %d, want %d", rs[0].Hi, o2.Universe().Size()-1)
	}
	if rs[0].Cells() != r2.Cells() {
		t.Fatalf("2D inset query covers %d cells, want %d", rs[0].Cells(), r2.Cells())
	}
	if n := o2.ClusterCount(r2); n != 1 {
		t.Fatalf("2D inset query ClusterCount %d", n)
	}

	o3, err := NewOnion3D(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	s3 := o3.Universe().Side()
	r3 := geom.Rect{Lo: geom.Point{8, 8, 8}, Hi: geom.Point{s3 - 9, s3 - 9, s3 - 9}}
	rs3 := o3.DecomposeRect(r3)
	if len(rs3) != 1 {
		t.Fatalf("3D inset query: %d ranges, want 1", len(rs3))
	}
	if rs3[0].Cells() != r3.Cells() || rs3[0].Hi != o3.Universe().Size()-1 {
		t.Fatalf("3D inset query tail = %v (query %d cells)", rs3[0], r3.Cells())
	}
	if n := o3.ClusterCount(r3); n != 1 {
		t.Fatalf("3D inset query ClusterCount %d", n)
	}
}
