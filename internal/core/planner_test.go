package core

import (
	"math/rand"
	"slices"
	"testing"

	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/geom"
)

// sortedRanges is the brute-force reference: enumerate, sort, split runs.
func sortedRanges(c curve.Curve, r geom.Rect) []curve.KeyRange {
	keys := make([]uint64, 0, r.Cells())
	r.ForEach(func(p geom.Point) bool {
		keys = append(keys, c.Index(p))
		return true
	})
	slices.Sort(keys)
	var out []curve.KeyRange
	for i, k := range keys {
		if i == 0 || keys[i-1]+1 != k {
			out = append(out, curve.KeyRange{Lo: k, Hi: k})
		} else {
			out[len(out)-1].Hi = k
		}
	}
	return out
}

func checkPlanner(t *testing.T, c curve.Curve, r geom.Rect) {
	t.Helper()
	p, ok := c.(curve.RangePlanner)
	if !ok {
		t.Fatalf("%s does not implement curve.RangePlanner", c.Name())
	}
	got := p.DecomposeRect(r)
	want := sortedRanges(c, r)
	if !slices.Equal(got, want) {
		t.Fatalf("%s %v: planner %v, want %v", c.Name(), r, got, want)
	}
	if n := p.ClusterCount(r); n != uint64(len(want)) {
		t.Fatalf("%s %v: ClusterCount %d, want %d", c.Name(), r, n, len(want))
	}
}

// degenerateRects returns the corner cases every planner must survive:
// single cells at the corners and center, the full universe, and 1-wide
// slabs touching each boundary.
func degenerateRects(u geom.Universe) []geom.Rect {
	d := u.Dims()
	s := u.Side()
	var rs []geom.Rect
	corner := func(v uint32) geom.Rect {
		p := make(geom.Point, d)
		for i := range p {
			p[i] = v
		}
		return geom.Rect{Lo: p, Hi: p.Clone()}
	}
	rs = append(rs, corner(0), corner(s-1), corner(s/2), u.Rect())
	for dim := 0; dim < d; dim++ {
		for _, at := range []uint32{0, s - 1, s / 2} {
			r := u.Rect()
			r.Lo[dim], r.Hi[dim] = at, at
			rs = append(rs, r)
		}
	}
	// Inset rectangle (exercises the interior-containment tail).
	if s >= 3 {
		r := u.Rect()
		for i := 0; i < d; i++ {
			r.Lo[i], r.Hi[i] = 1, s-2
		}
		rs = append(rs, r)
	}
	return rs
}

func randPlannerRect(rng *rand.Rand, dims int, side uint32) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := 0; i < dims; i++ {
		a := uint32(rng.Int31n(int32(side)))
		b := uint32(rng.Int31n(int32(side)))
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func exercisePlanner(t *testing.T, c curve.Curve, trials int, seed int64) {
	t.Helper()
	u := c.Universe()
	for _, r := range degenerateRects(u) {
		checkPlanner(t, c, r)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		checkPlanner(t, c, randPlannerRect(rng, u.Dims(), u.Side()))
	}
}

func TestOnion2DPlanner(t *testing.T) {
	for _, side := range []uint32{1, 2, 3, 4, 5, 7, 8, 16, 33, 64} {
		o, err := NewOnion2D(side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, o, 120, int64(side))
	}
}

func TestOnion3DPlanner(t *testing.T) {
	for _, side := range []uint32{2, 4, 6, 8, 10, 16} {
		o, err := NewOnion3D(side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, o, 60, int64(side))
	}
}

func TestOnion3DPlannerSegmentPermutations(t *testing.T) {
	perms := [][10]int{
		{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{2, 1, 4, 3, 6, 5, 8, 7, 10, 9},
		{5, 3, 9, 1, 7, 10, 2, 8, 4, 6},
	}
	for pi, perm := range perms {
		for _, side := range []uint32{4, 6, 12} {
			o, err := NewOnion3DWithSegmentOrder(side, perm)
			if err != nil {
				t.Fatal(err)
			}
			exercisePlanner(t, o, 40, int64(side)*100+int64(pi))
		}
	}
}

func TestOnionNDPlanner(t *testing.T) {
	cases := []struct {
		dims int
		side uint32
	}{
		{1, 1}, {1, 2}, {1, 9}, {1, 16},
		{2, 5}, {2, 16}, {2, 31},
		{3, 3}, {3, 7}, {3, 8}, {3, 12},
		{4, 5}, {4, 6},
	}
	for _, tc := range cases {
		o, err := NewOnionND(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, o, 50, int64(tc.dims)*1000+int64(tc.side))
	}
}

func TestLayerLexPlanner(t *testing.T) {
	cases := []struct {
		dims int
		side uint32
	}{
		{1, 1}, {1, 2}, {1, 8}, {1, 13},
		{2, 1}, {2, 5}, {2, 8}, {2, 31},
		{3, 4}, {3, 7}, {3, 9},
	}
	for _, tc := range cases {
		l, err := NewLayerLex(tc.dims, tc.side)
		if err != nil {
			t.Fatal(err)
		}
		exercisePlanner(t, l, 50, int64(tc.dims)*1000+int64(tc.side))
	}
}

// TestPlannerPaperScaleTail checks the O(1) interior-containment fast path
// on paper-scale queries: a query inset a few cells from the boundary of a
// 10^8+-cell universe must decompose instantly into very few ranges whose
// total size equals the query, with the tail range ending at the last key.
func TestPlannerPaperScaleTail(t *testing.T) {
	o2, err := NewOnion2D(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	s2 := o2.Universe().Side()
	r2 := geom.Rect{Lo: geom.Point{16, 16}, Hi: geom.Point{s2 - 17, s2 - 17}}
	rs := o2.DecomposeRect(r2)
	if len(rs) != 1 {
		t.Fatalf("2D inset query: %d ranges, want 1", len(rs))
	}
	if rs[0].Hi != o2.Universe().Size()-1 {
		t.Fatalf("2D inset query tail ends at %d, want %d", rs[0].Hi, o2.Universe().Size()-1)
	}
	if rs[0].Cells() != r2.Cells() {
		t.Fatalf("2D inset query covers %d cells, want %d", rs[0].Cells(), r2.Cells())
	}
	if n := o2.ClusterCount(r2); n != 1 {
		t.Fatalf("2D inset query ClusterCount %d", n)
	}

	o3, err := NewOnion3D(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	s3 := o3.Universe().Side()
	r3 := geom.Rect{Lo: geom.Point{8, 8, 8}, Hi: geom.Point{s3 - 9, s3 - 9, s3 - 9}}
	rs3 := o3.DecomposeRect(r3)
	if len(rs3) != 1 {
		t.Fatalf("3D inset query: %d ranges, want 1", len(rs3))
	}
	if rs3[0].Cells() != r3.Cells() || rs3[0].Hi != o3.Universe().Size()-1 {
		t.Fatalf("3D inset query tail = %v (query %d cells)", rs3[0], r3.Cells())
	}
	if n := o3.ClusterCount(r3); n != 1 {
		t.Fatalf("3D inset query ClusterCount %d", n)
	}
}
