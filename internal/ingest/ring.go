package ingest

import (
	"sync/atomic"
)

// ring is a bounded lock-free multi-producer multi-consumer queue of ops
// (Dmitry Vyukov's bounded MPMC algorithm). Each slot carries a sequence
// number that encodes its state relative to the enqueue/dequeue cursors:
// a producer may claim a slot when slot.seq equals the enqueue position,
// a consumer when it equals position+1. The atomic sequence store that
// publishes a slot is also the happens-before edge that makes the op
// payload visible, so the data path needs no locks at all.
//
// Capacity is a power of two fixed at construction: the ring IS the
// ingest pipeline's memory bound, so it never grows.
type ring struct {
	mask  uint64
	slots []rslot

	_   [56]byte // keep the hot cursors on separate cache lines
	enq atomic.Uint64
	_   [56]byte
	deq atomic.Uint64
	_   [56]byte

	// space wakes producers blocked on a full ring: a broadcast
	// edge-signal notified on every dequeue while waiters are parked, so
	// a blocked producer wakes the moment a slot frees — no poll. items
	// wakes the idle consumer on enqueue; with a single consumer (the
	// router) a capacity-1 token cannot lose a wakeup.
	space *signal
	items chan struct{}
}

type rslot struct {
	seq atomic.Uint64
	op  op
	_   [8]byte // pad to discourage false sharing between adjacent slots
}

// newRing builds a ring with capacity rounded up to a power of two, at
// least 2.
func newRing(capacity int) *ring {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	r := &ring{
		mask:  n - 1,
		slots: make([]rslot, n),
		space: newSignal(),
		items: make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// cap returns the ring's fixed capacity.
func (r *ring) cap() int { return len(r.slots) }

// len approximates the current queue depth (racy by nature; exact only
// when producers and consumers are quiescent).
func (r *ring) len() int {
	d := int64(r.enq.Load()) - int64(r.deq.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(r.slots)) {
		d = int64(len(r.slots))
	}
	return int(d)
}

// tryEnqueue claims the next slot and publishes v. It fails (false) only
// when the ring is full.
func (r *ring) tryEnqueue(v op) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch dif := int64(s.seq.Load()) - int64(pos); {
		case dif == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.op = v
				s.seq.Store(pos + 1)
				// Edge-signal the consumer; a full channel means it is
				// already scheduled to wake.
				select {
				case r.items <- struct{}{}:
				default:
				}
				return true
			}
			pos = r.enq.Load()
		case dif < 0:
			// The slot still holds an unconsumed op a full lap behind:
			// the ring is full.
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// tryDequeue pops the oldest op into out. It fails (false) only when the
// ring is empty.
func (r *ring) tryDequeue(out *op) bool {
	pos := r.deq.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch dif := int64(s.seq.Load()) - int64(pos+1); {
		case dif == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				*out = s.op
				s.op = op{} // drop references so acked ops are collectable
				s.seq.Store(pos + r.mask + 1)
				// The slot is free (seq published above); wake parked
				// producers. A no-op unless someone is actually waiting.
				r.space.notify()
				return true
			}
			pos = r.deq.Load()
		case dif < 0:
			return false
		default:
			pos = r.deq.Load()
		}
	}
}
