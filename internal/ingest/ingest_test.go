package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/curve"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
	"github.com/onioncurve/onion/internal/vfs"
)

const igSide = 64

type igOp struct {
	pt  geom.Point
	pay uint64
	del bool
}

func igCurve(t testing.TB) curve.Curve {
	t.Helper()
	o, err := core.NewOnion2D(igSide)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func igPoint(i int) geom.Point {
	return geom.Point{uint32(i*7) % igSide, uint32(i*13+5) % igSide}
}

// igWorkload is a deterministic op log with recurring points (so
// coalescing and newest-wins resolution both fire) and deletes that chase
// recent puts across batch boundaries.
func igWorkload(n int) []igOp {
	ops := make([]igOp, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%9 == 8:
			ops = append(ops, igOp{pt: igPoint(i - 4), del: true})
		default:
			ops = append(ops, igOp{pt: igPoint(i % 48), pay: uint64(1000 + i)})
		}
	}
	return ops
}

// igOpts: tiny pages and caches, no background maintenance — the
// deterministic shape the cross-checks need.
func igOpts() engine.Options {
	return engine.Options{PageBytes: 256, FlushEntries: -1, CompactFanout: -1,
		Shards: 2, CacheBytes: 4096}
}

// igApplySerial drives ops through the synchronous write path in log
// order — the reference the pipeline is checked against.
func igApplySerial(t testing.TB, e *engine.Engine, ops []igOp) {
	t.Helper()
	for i, op := range ops {
		var err error
		if op.del {
			err = e.Delete(op.pt)
		} else {
			err = e.Put(op.pt, op.pay)
		}
		if err != nil {
			t.Fatalf("serial op %d: %v", i, err)
		}
	}
}

// igProduce fans ops out to `workers` producers partitioned by curve key
// (each key's ops stay on one producer, preserving per-key order — the
// same invariant any real per-key-sessioned client has), enqueues them
// asynchronously, and waits for every ack.
func igProduce(t testing.TB, p *Pipeline, c curve.Curve, ops []igOp, workers int) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			handles := make([]*Handle, 0, len(ops))
			for _, op := range ops {
				if int(c.Index(op.pt)%uint64(workers)) != w {
					continue
				}
				var h *Handle
				var err error
				if op.del {
					h, err = p.DeleteAsync(ctx, op.pt)
				} else {
					h, err = p.PutAsync(ctx, op.pt, op.pay)
				}
				if err != nil {
					t.Errorf("worker %d enqueue: %v", w, err)
					return
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				if err := h.Wait(ctx); err != nil {
					t.Errorf("worker %d ack: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// igCompare asserts two engines hold bit-identical query results: same
// records in the same order AND the same logical query stats.
func igCompare(t testing.TB, label string, o curve.Curve, ref, got *engine.Engine) {
	t.Helper()
	full := o.Universe().Rect()
	rRecs, rSt, err := ref.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	gRecs, gSt, err := got.Query(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(rRecs) != len(gRecs) {
		t.Fatalf("%s: record counts differ: ref %d, got %d", label, len(rRecs), len(gRecs))
	}
	for i := range rRecs {
		if !rRecs[i].Point.Equal(gRecs[i].Point) || rRecs[i].Payload != gRecs[i].Payload {
			t.Fatalf("%s: record %d differs: ref %+v, got %+v", label, i, rRecs[i], gRecs[i])
		}
	}
	if rSt.Stats != gSt.Stats || rSt.MemEntries != gSt.MemEntries ||
		rSt.Segments != gSt.Segments || rSt.Planned != gSt.Planned {
		t.Fatalf("%s: stats differ:\n  ref %+v\n  got %+v", label, rSt, gSt)
	}
}

// TestIngestCrossCheck: concurrent producers through the async pipeline
// against the same op log applied serially through Put/Delete. After an
// identical flush+compact epilogue the disk state is canonical, so
// records and query stats must be bit-identical at every worker count.
func TestIngestCrossCheck(t *testing.T) {
	ops := igWorkload(600)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			o := igCurve(t)
			ref, err := engine.Open(t.TempDir(), o, igOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			igApplySerial(t, ref, ops)

			eng, err := engine.Open(t.TempDir(), o, igOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			p, err := NewEngine(eng, Config{Ring: 64, MaxBatch: 32})
			if err != nil {
				t.Fatal(err)
			}
			igProduce(t, p, o, ops, workers)
			if err := p.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			for _, e := range []*engine.Engine{ref, eng} {
				if err := e.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := e.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			igCompare(t, fmt.Sprintf("w%d", workers), o, ref, eng)

			snap := p.Telemetry().Snapshot()
			if enq, acked := snap.Counter("ingest_enqueued_total"), snap.Counter("ingest_acked_total"); enq != acked || enq == 0 {
				t.Fatalf("telemetry: enqueued %d, acked %d", enq, acked)
			}
			if snap.Counter("ingest_batches_total") == 0 {
				t.Fatal("telemetry: no batches recorded")
			}
			if h := snap.Hist("ingest_batch_ops"); h == nil || h.Count == 0 {
				t.Fatal("telemetry: batch-size histogram empty")
			}
		})
	}
}

// gateTarget blocks every ApplyBatch until released — the tool for
// filling the pipeline deterministically.
type gateTarget struct {
	release chan struct{}
}

func (g *gateTarget) Stripes() int                          { return 1 }
func (g *gateTarget) StripeOf(uint64) int                   { return 0 }
func (g *gateTarget) ApplyBatch(int, []engine.BatchOp) error { <-g.release; return nil }

// TestIngestBackpressure: with the sink wedged, the pipeline absorbs at
// most ring + 3×MaxBatch ops (the documented memory bound), then sheds:
// TryPut rejects with ErrBackpressure and a blocking Put obeys its
// context deadline. Releasing the sink acks everything absorbed.
func TestIngestBackpressure(t *testing.T) {
	o := igCurve(t)
	gate := &gateTarget{release: make(chan struct{})}
	cfg := Config{Ring: 4, MaxBatch: 4}
	p, err := New(o, gate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var handles []*Handle
	absorbed := 0
	bound := 4 + 3*4 // ring + router pending + handoff + in-flight batch
	for i := 0; i < 10*bound; i++ {
		h, err := p.TryPut(igPoint(i%48), uint64(i))
		if err != nil {
			if !errors.Is(err, ErrBackpressure) {
				t.Fatalf("TryPut error = %v, want ErrBackpressure", err)
			}
			// The router may still be mid-drain: only a repeated reject
			// with no progress is steady-state backpressure.
			if p.QueueDepth() >= cfg.Ring {
				break
			}
			time.Sleep(100 * time.Microsecond)
			continue
		}
		absorbed++
		handles = append(handles, h)
	}
	if absorbed == 0 {
		t.Fatal("nothing absorbed before backpressure")
	}
	if absorbed > bound {
		t.Fatalf("absorbed %d ops with a wedged sink, bound is %d", absorbed, bound)
	}
	if snap := p.Telemetry().Snapshot(); snap.Counter("ingest_backpressure_rejects_total") == 0 {
		t.Fatal("rejects counter did not move")
	}

	// A blocking Put under full backpressure respects its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Put(ctx, igPoint(0), 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocking Put under backpressure = %v, want DeadlineExceeded", err)
	}

	close(gate.release)
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := p.Drain(dctx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	for i, h := range handles {
		if err := h.Wait(dctx); err != nil {
			t.Fatalf("absorbed op %d ack = %v, want nil", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestIngestCloseDrains: Close flushes everything already accepted —
// every handle completes nil and the records are durable in the engine —
// and afterwards every enqueue path reports ErrClosed.
func TestIngestCloseDrains(t *testing.T) {
	o := igCurve(t)
	eng, err := engine.Open(t.TempDir(), o, igOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := NewEngine(eng, Config{Ring: 128, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var handles []*Handle
	for i := 0; i < 50; i++ {
		h, err := p.PutAsync(ctx, igPoint(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, h := range handles {
		if err := h.Wait(ctx); err != nil {
			t.Fatalf("op %d after close: %v, want nil (accepted before close)", i, err)
		}
	}
	recs, _, err := eng.Query(o.Universe().Rect())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("engine has %d records after close, want 50", len(recs))
	}
	if err := p.Put(ctx, igPoint(0), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if _, err := p.TryPut(igPoint(0), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPut after close = %v, want ErrClosed", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close = %v, want ErrClosed", err)
	}
}

// TestIngestValidation: an out-of-universe point is rejected at the ring,
// not deep in a batch where it would poison unrelated ops.
func TestIngestValidation(t *testing.T) {
	o := igCurve(t)
	eng, err := engine.Open(t.TempDir(), o, igOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := NewEngine(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	if _, err := p.TryPut(geom.Point{igSide + 1, 0}, 1); !errors.Is(err, engine.ErrPoint) {
		t.Fatalf("out-of-universe TryPut = %v, want ErrPoint", err)
	}
	if err := p.Put(context.Background(), geom.Point{0, igSide}, 1); !errors.Is(err, engine.ErrPoint) {
		t.Fatalf("out-of-universe Put = %v, want ErrPoint", err)
	}
}

// TestIngestApplyErrorFansOut: a WAL fsync fault under a batch fails
// every handle in it with the engine's ReadOnly error, the sticky
// pipeline error is set, and Close surfaces it.
func TestIngestApplyErrorFansOut(t *testing.T) {
	inj := vfs.NewInjecting(vfs.OS{})
	o := igCurve(t)
	opts := igOpts()
	opts.SyncWrites = true
	opts.FS = inj
	eng, err := engine.Open(t.TempDir(), o, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck
	p, err := NewEngine(eng, Config{Ring: 64, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	inj.SetFaults(vfs.Fault{Op: vfs.OpSync, Path: "wal-", N: 1, Repeat: true})
	ctx := context.Background()
	var handles []*Handle
	for i := 0; i < 20; i++ {
		h, err := p.PutAsync(ctx, igPoint(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, h := range handles {
		if err := h.Wait(ctx); err != nil {
			if !errors.Is(err, engine.ErrReadOnly) {
				t.Fatalf("handle error = %v, want ErrReadOnly", err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no handle saw the injected WAL failure")
	}
	if p.Err() == nil {
		t.Fatal("pipeline sticky error not set")
	}
	if err := p.Close(); err == nil {
		t.Fatal("close after batch failure = nil, want the sticky error")
	}
}

// TestIngestBackpressureWakeup: producers parked on a full ring wake the
// moment a slot frees. The wait path is an armed broadcast signal with
// no poll fallback, so this test is sharp: a lost wakeup does not cost
// 200µs of latency, it hangs a producer forever and times the test out.
// The sink releases one batch at a time, freeing slots one dequeue at a
// time — every parked producer must ride one of those edges.
func TestIngestBackpressureWakeup(t *testing.T) {
	o := igCurve(t)
	gate := &gateTarget{release: make(chan struct{})}
	p, err := New(o, gate, Config{Ring: 2, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}

	const producers = 16
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make(chan error, producers)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- p.Put(ctx, igPoint(i), uint64(i))
		}(i)
	}

	// Wait until producers are actually parked on the space signal, so
	// the drip below exercises wake-on-dequeue rather than a fast path.
	for deadline := time.Now().Add(5 * time.Second); p.ring.space.waiters.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no producer ever parked on the full ring")
		}
		time.Sleep(50 * time.Microsecond)
	}

	// Drip-release batches one at a time; each ApplyBatch return frees
	// ring slots one dequeue at a time. Close the gate at the end so any
	// residual batches drain unimpeded.
	go func() {
		for i := 0; i < producers; i++ {
			select {
			case gate.release <- struct{}{}:
			case <-ctx.Done():
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		close(gate.release)
	}()

	wg.Wait()
	for i := 0; i < producers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("parked producer failed: %v", err)
		}
	}
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	hist := p.Telemetry().Snapshot().Hist("ingest_enqueue_wait_us")
	if hist == nil || hist.Count == 0 {
		t.Fatal("no enqueue waits recorded: the test never parked a producer")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
