package ingest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/onioncurve/onion/internal/core"
	"github.com/onioncurve/onion/internal/engine"
	"github.com/onioncurve/onion/internal/geom"
)

// BenchmarkIngestPipeline measures durable async ingest end to end:
// every op is acknowledged only after its coalesced batch's WAL fsync,
// but each producer keeps a window of acks in flight instead of blocking
// per op — the open-loop client shape the pipeline exists for. Compare
// against BenchmarkEngineIngestSyncGroup at the same producer count: the
// delta is what batch coalescing buys over per-op group commit at equal
// durability.
func BenchmarkIngestPipeline(b *testing.B) {
	for _, p := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) { benchPipeline(b, p) })
	}
}

func benchPipeline(b *testing.B, producers int) {
	o, err := core.NewOnion2D(1 << 9)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.Open(b.TempDir(), o,
		engine.Options{PageBytes: 4096, FlushEntries: 1 << 15, CompactFanout: 4, SyncWrites: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	p, err := NewEngine(e, Config{Ring: 1 << 14, MaxBatch: 1 << 10})
	if err != nil {
		b.Fatal(err)
	}
	const window = 256 // per-producer in-flight acks
	side := int32(o.Universe().Side())
	ctx := context.Background()
	base, extra := b.N/producers, b.N%producers
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		n := base
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			win := make([]*Handle, window)
			for i := 0; i < n; i++ {
				slot := i % window
				if win[slot] != nil {
					if err := win[slot].Wait(ctx); err != nil {
						b.Error(err)
						return
					}
				}
				pt := geom.Point{uint32(rng.Int31n(side)), uint32(rng.Int31n(side))}
				h, err := p.PutAsync(ctx, pt, rng.Uint64())
				if err != nil {
					b.Error(err)
					return
				}
				win[slot] = h
			}
			for _, h := range win {
				if h != nil {
					if err := h.Wait(ctx); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	snap := p.Telemetry().Snapshot()
	if err := p.Close(); err != nil {
		b.Fatal(err)
	}
	if h := snap.Hist("ingest_batch_ops"); h != nil && h.Count > 0 {
		b.ReportMetric(h.Mean(), "ops/batch")
	}
	if h := snap.Hist("ingest_ack_latency_us"); h != nil && h.Count > 0 {
		b.ReportMetric(float64(h.Quantile(0.99)), "p99ack-us")
	}
	if n := snap.Counter("ingest_acked_total"); n > 0 {
		b.ReportMetric(float64(snap.Counter("ingest_coalesced_total"))/float64(n), "coalesced/op")
	}
}
