package ingest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {8192, 8192},
	} {
		if got := newRing(tc.in).cap(); got != tc.want {
			t.Errorf("newRing(%d).cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingFIFOWraparound pushes many ops through a tiny ring one at a
// time, crossing the wraparound boundary dozens of times, and checks
// strict FIFO order plus exact full/empty behavior.
func TestRingFIFOWraparound(t *testing.T) {
	r := newRing(8)
	var o op
	if r.tryDequeue(&o) {
		t.Fatal("dequeue from empty ring succeeded")
	}
	next := uint64(0)
	for pushed := uint64(0); pushed < 1000; {
		// Fill to capacity...
		for r.tryEnqueue(op{pay: pushed}) {
			pushed++
		}
		if got := r.len(); got != r.cap() {
			t.Fatalf("full ring len = %d, want %d", got, r.cap())
		}
		// ...then drain half, checking order.
		for i := 0; i < r.cap()/2; i++ {
			if !r.tryDequeue(&o) {
				t.Fatal("dequeue from non-empty ring failed")
			}
			if o.pay != next {
				t.Fatalf("dequeued %d, want %d (FIFO violated)", o.pay, next)
			}
			next++
		}
	}
	for r.tryDequeue(&o) {
		if o.pay != next {
			t.Fatalf("dequeued %d, want %d", o.pay, next)
		}
		next++
	}
	if r.len() != 0 {
		t.Fatalf("drained ring len = %d, want 0", r.len())
	}
}

// TestRingConcurrentSPC: many producers, one consumer — every op arrives
// exactly once and each producer's ops arrive in its enqueue order (the
// property the pipeline's per-key ordering contract is built on).
func TestRingConcurrentSPC(t *testing.T) {
	const producers, perProducer = 4, 2000
	r := newRing(16)
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !r.tryEnqueue(op{key: uint64(pr), pay: uint64(i)}) {
					runtime.Gosched()
				}
			}
		}(pr)
	}
	lastSeen := make([]int64, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var o op
	for n := 0; n < producers*perProducer; {
		if !r.tryDequeue(&o) {
			runtime.Gosched()
			continue
		}
		n++
		if int64(o.pay) <= lastSeen[o.key] {
			t.Fatalf("producer %d: op %d arrived after %d", o.key, o.pay, lastSeen[o.key])
		}
		lastSeen[o.key] = int64(o.pay)
	}
	wg.Wait()
	if r.tryDequeue(&o) {
		t.Fatal("ring not empty after all ops consumed")
	}
}

// TestRingConcurrentMPMC: multiple producers AND consumers — the full
// multiset of ops comes out exactly once, with no loss or duplication
// across the contended CAS paths.
func TestRingConcurrentMPMC(t *testing.T) {
	const producers, consumers, perProducer = 4, 3, 1500
	r := newRing(8) // tiny: maximal contention and wraparound
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !r.tryEnqueue(op{key: uint64(pr), pay: uint64(i)}) {
					runtime.Gosched()
				}
			}
		}(pr)
	}
	total := producers * perProducer
	got := make([]map[uint64]int, consumers)
	var done sync.WaitGroup
	var count atomic.Int64
	for c := 0; c < consumers; c++ {
		got[c] = make(map[uint64]int)
		done.Add(1)
		go func(c int) {
			defer done.Done()
			var o op
			for count.Load() < int64(total) {
				if r.tryDequeue(&o) {
					count.Add(1)
					got[c][o.key<<32|o.pay]++
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()
	done.Wait()
	merged := make(map[uint64]int)
	for _, m := range got {
		for k, n := range m {
			merged[k] += n
		}
	}
	if len(merged) != total {
		t.Fatalf("consumed %d distinct ops, want %d", len(merged), total)
	}
	for k, n := range merged {
		if n != 1 {
			t.Fatalf("op %x consumed %d times", k, n)
		}
	}
}
