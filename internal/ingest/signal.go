package ingest

import (
	"sync"
	"sync/atomic"
)

// signal is a broadcast edge-signal for wait-until-predicate loops. A
// waiter registers (waiters.Add(1)), arms the current generation channel,
// re-checks its predicate, and only then blocks on the armed channel; a
// notifier that changes the predicate closes the current generation,
// waking every armed waiter at once. Because the waiter arms before the
// re-check, any state change after the check necessarily happens after
// the arm and broadcasts the armed generation — there is no window for a
// lost wakeup, so waiters need no poll fallback.
//
// notify is cheap when nobody waits: a single atomic load. Broadcast
// wakes all waiters rather than one, trading a thundering herd (bounded
// by the producer count) for the guarantee that the waiter the freed
// resource was meant for is among the woken.
type signal struct {
	waiters atomic.Int32

	mu sync.Mutex
	ch chan struct{}
}

func newSignal() *signal { return &signal{ch: make(chan struct{})} }

// arm returns the channel the current generation closes. Arm before
// re-checking the predicate; block on the result only after the re-check
// fails.
func (s *signal) arm() <-chan struct{} {
	s.mu.Lock()
	ch := s.ch
	s.mu.Unlock()
	return ch
}

// notify broadcasts to the armed generation if anyone is waiting.
// Callers must change the waited-on state before notifying.
func (s *signal) notify() {
	if s.waiters.Load() == 0 {
		return
	}
	s.mu.Lock()
	close(s.ch)
	s.ch = make(chan struct{})
	s.mu.Unlock()
}
